// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark corresponds to one entry of DESIGN.md's per-experiment
// index; cmd/grape-bench prints the same data as formatted tables.
//
// Custom metrics reported alongside ns/op:
//
//	sim-ms/run   simulated cluster milliseconds under the BSP cost model
//	comm-KB/run  bytes crossing worker boundaries
//	steps/run    BSP supersteps
//
// Absolute wall times are single-core and meaningless for cluster claims;
// the sim/comm/steps metrics carry the paper's shapes (see EXPERIMENTS.md).
package grape_test

import (
	"context"
	"fmt"
	"testing"

	"grape"
	"grape/internal/blockcentric"
	"grape/internal/engine"
	"grape/internal/experiments"
	"grape/internal/gen"
	"grape/internal/gpar"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
	"grape/internal/queries"
	"grape/internal/seq"
	"grape/internal/simulate"
	"grape/internal/vertexcentric"
)

// benchScale sizes the datasets so the full -bench=. matrix completes in a
// couple of minutes on one core while keeping the structural properties.
func benchScale() experiments.Scale {
	return experiments.Scale{
		RoadRows: 96, RoadCols: 96,
		SocialN: 10000, SocialDeg: 5,
		People: 1500, Products: 15,
		Users: 300, Items: 60,
		Seed: 1,
	}
}

func report(b *testing.B, st *metrics.Stats) {
	b.Helper()
	cm := metrics.DefaultCostModel()
	b.ReportMetric(cm.SimSeconds(st)*1e3, "sim-ms/run")
	b.ReportMetric(float64(st.Bytes)/1e3, "comm-KB/run")
	b.ReportMetric(float64(st.Supersteps), "steps/run")
}

// BenchmarkTable1SSSP is Table 1: SSSP over the road network on 24 workers,
// one sub-benchmark per system.
func BenchmarkTable1SSSP(b *testing.B) {
	sc := benchScale()
	g := sc.Road()
	const workers = 24
	spatial := partition.TwoD{Cols: sc.RoadCols}

	b.Run("giraph-like", func(b *testing.B) {
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = vertexcentric.Run(g, vertexcentric.SSSPProgram{Source: 0},
				vertexcentric.Config{Workers: workers, EngineName: "giraph-like"})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
	})
	b.Run("graphlab-like", func(b *testing.B) {
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = vertexcentric.RunGAS(g, vertexcentric.GASSSSP{Source: 0},
				vertexcentric.GASConfig{Workers: workers, EngineName: "graphlab-like"})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
	})
	b.Run("blogel-like", func(b *testing.B) {
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = blockcentric.Run(g, blockcentric.SSSPBlock{Source: 0},
				blockcentric.Config{Workers: workers, Strategy: spatial, BlocksPerWorker: 8})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
	})
	b.Run("grape", func(b *testing.B) {
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0},
				engine.Options{Workers: workers, Strategy: spatial})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
	})
}

// BenchmarkPartitionImpact is the Section 3 partition experiment: GRAPE SSSP
// on the social graph under each strategy, 16 workers.
func BenchmarkPartitionImpact(b *testing.B) {
	sc := benchScale()
	g := sc.Social()
	for _, strat := range []partition.Strategy{partition.MetisLike{}, partition.Fennel{}, partition.Hash{}} {
		b.Run(strat.Name(), func(b *testing.B) {
			asg, err := strat.Partition(g, 16)
			if err != nil {
				b.Fatal(err)
			}
			layout := partition.Build(g, asg)
			var st *metrics.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err = engine.RunOnLayout(context.Background(), layout, queries.SSSP{}, queries.SSSPQuery{Source: 0}, engine.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, st)
			b.ReportMetric(float64(st.Messages), "msgs/run")
		})
	}
}

// BenchmarkScaleUp is the Fig. 3(4) analytics: GRAPE SSSP while the worker
// count grows.
func BenchmarkScaleUp(b *testing.B) {
	sc := benchScale()
	g := sc.Road()
	for _, n := range []int{4, 8, 16, 24, 32} {
		b.Run(workersName(n), func(b *testing.B) {
			var st *metrics.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0},
					engine.Options{Workers: n, Strategy: partition.TwoD{Cols: sc.RoadCols}})
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, st)
		})
	}
}

// BenchmarkBoundedIncEval is Example 1(d): bounded incremental evaluation
// against full per-superstep recomputation on identical layouts.
func BenchmarkBoundedIncEval(b *testing.B) {
	sc := benchScale()
	g := sc.Road()
	asg, err := partition.TwoD{Cols: sc.RoadCols}.Partition(g, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bounded", func(b *testing.B) {
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			layout := partition.Build(g, asg)
			var err error
			_, st, err = engine.RunOnLayout(context.Background(), layout, queries.SSSP{}, queries.SSSPQuery{Source: 0}, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
		b.ReportMetric(float64(st.TotalWork()), "work/run")
	})
	b.Run("recompute", func(b *testing.B) {
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			layout := partition.Build(g, asg)
			var err error
			_, st, err = engine.RunOnLayout(context.Background(), layout, experiments.RecomputeSSSP{}, queries.SSSPQuery{Source: 0}, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
		b.ReportMetric(float64(st.TotalWork()), "work/run")
	})
}

// BenchmarkGPARMarketing is Fig. 4: GPAR customer discovery, one
// sub-benchmark per worker count — more workers, smaller sim-ms.
func BenchmarkGPARMarketing(b *testing.B) {
	sc := benchScale()
	g := sc.Commerce()
	rule := gpar.Example2Rule(0.8)
	for _, n := range []int{1, 4, 16} {
		b.Run(workersName(n), func(b *testing.B) {
			var st *metrics.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = gpar.Eval(context.Background(), g, rule, engine.Options{Workers: n})
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, st)
		})
	}
}

// BenchmarkSimulationTheorem compares a Pregel SSSP run natively and under
// the GRAPE adapter — superstep parity is the theorem's operational claim.
func BenchmarkSimulationTheorem(b *testing.B) {
	sc := benchScale()
	g := sc.Social()
	b.Run("pregel-native", func(b *testing.B) {
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = vertexcentric.Run(g, vertexcentric.SSSPProgram{Source: 0}, vertexcentric.Config{Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
	})
	b.Run("pregel-on-grape", func(b *testing.B) {
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = simulate.Run(context.Background(), g, vertexcentric.SSSPProgram{Source: 0}, engine.Options{Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
	})
}

// BenchmarkIndexAblation is the graph-level-optimization experiment:
// keyword search PEval with and without the inverted index.
func BenchmarkIndexAblation(b *testing.B) {
	sc := benchScale()
	g := sc.Social()
	gen.AttachKeywords(g, []string{"db", "graph", "ml", "sys", "net"}, 2, 0.05, sc.Seed)
	q := queries.KeywordQuery{Keywords: []string{"db", "graph", "ml"}, Bound: 4, UseIndex: true}
	b.Run("indexed", func(b *testing.B) {
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = engine.Run(context.Background(), g, queries.Keyword{}, q, engine.Options{Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
		b.ReportMetric(float64(st.TotalWork()), "work/run")
	})
	b.Run("scan", func(b *testing.B) {
		qs := q
		qs.UseIndex = false
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = engine.Run(context.Background(), g, queries.Keyword{}, qs, engine.Options{Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
		b.ReportMetric(float64(st.TotalWork()), "work/run")
	})
}

// BenchmarkQueryClass runs each of the six registered query classes — the
// Section 3 walk-through as a benchmark.
func BenchmarkQueryClass(b *testing.B) {
	sc := benchScale()
	road := sc.Road()
	commerce := sc.Commerce()
	social := sc.Social()
	gen.AttachKeywords(social, []string{"db", "graph", "ml"}, 2, 0.05, sc.Seed)
	ratings := gen.Ratings(gen.RatingsConfig{Users: sc.Users, Items: sc.Items, RatingsPerUser: 12, Factors: 4, Noise: 0.1, Seed: sc.Seed})
	pattern, err := queries.PatternByName("follows-recommend")
	if err != nil {
		b.Fatal(err)
	}

	cases := []struct {
		name string
		run  func() (*metrics.Stats, error)
	}{
		{"sssp", func() (*metrics.Stats, error) {
			_, st, err := engine.Run(context.Background(), road, queries.SSSP{}, queries.SSSPQuery{Source: 0},
				engine.Options{Workers: 8, Strategy: partition.TwoD{Cols: sc.RoadCols}})
			return st, err
		}},
		{"cc", func() (*metrics.Stats, error) {
			_, st, err := engine.Run(context.Background(), road, queries.CC{}, queries.CCQuery{},
				engine.Options{Workers: 8, Strategy: partition.TwoD{Cols: sc.RoadCols}})
			return st, err
		}},
		{"sim", func() (*metrics.Stats, error) {
			_, st, err := engine.Run(context.Background(), commerce, queries.Sim{}, queries.SimQuery{Pattern: pattern},
				engine.Options{Workers: 8})
			return st, err
		}},
		{"subiso", func() (*metrics.Stats, error) {
			_, st, err := queries.RunSubIso(context.Background(), commerce, queries.SubIsoQuery{Pattern: pattern},
				engine.Options{Workers: 8})
			return st, err
		}},
		{"keyword", func() (*metrics.Stats, error) {
			_, st, err := engine.Run(context.Background(), social, queries.Keyword{},
				queries.KeywordQuery{Keywords: []string{"db", "graph"}, Bound: 4, UseIndex: true},
				engine.Options{Workers: 8})
			return st, err
		}},
		{"cf", func() (*metrics.Stats, error) {
			cfg := seq.DefaultCFConfig()
			cfg.Epochs = 10
			_, st, err := engine.Run(context.Background(), ratings, queries.CF{}, queries.CFQuery{Cfg: cfg},
				engine.Options{Workers: 8})
			return st, err
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var st *metrics.Stats
			for i := 0; i < b.N; i++ {
				var err error
				st, err = tc.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, st)
		})
	}
}

// BenchmarkCoordinatorFold isolates the coordinator hot path: SSSP and CC on
// a prebuilt 8-worker layout, so partitioning is paid once outside the timed
// loop and ns/op + allocs/op track the per-superstep fold + route machinery
// (worker compute is identical across runs of the same layout). This is the
// guardrail benchmark for the sharded-aggregation coordinator.
func BenchmarkCoordinatorFold(b *testing.B) {
	sc := benchScale()
	g := sc.Road()
	asg, err := partition.TwoD{Cols: sc.RoadCols}.Partition(g, 8)
	if err != nil {
		b.Fatal(err)
	}
	layout := partition.Build(g, asg)
	b.Run("sssp", func(b *testing.B) {
		b.ReportAllocs()
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = engine.RunOnLayout(context.Background(), layout, queries.SSSP{}, queries.SSSPQuery{Source: 0}, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
	})
	b.Run("cc", func(b *testing.B) {
		b.ReportAllocs()
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = engine.RunOnLayout(context.Background(), layout, queries.CC{}, queries.CCQuery{}, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
	})
}

// BenchmarkAsyncAblation contrasts the BSP engine with the barrier-free
// asynchronous mode on a skewed layout (the AAP follow-up's trade-off).
func BenchmarkAsyncAblation(b *testing.B) {
	sc := benchScale()
	g := sc.Social()
	asg, err := partition.Range{}.Partition(g, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sync", func(b *testing.B) {
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			layout := partition.Build(g, asg)
			var err error
			_, st, err = engine.RunOnLayout(context.Background(), layout, queries.SSSP{}, queries.SSSPQuery{Source: 0}, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
	})
	b.Run("async", func(b *testing.B) {
		var st *metrics.Stats
		for i := 0; i < b.N; i++ {
			layout := partition.Build(g, asg)
			var err error
			_, st, err = engine.RunAsync(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0}, engine.Options{Layout: layout})
			if err != nil {
				b.Fatal(err)
			}
		}
		report(b, st)
	})
}

// BenchmarkScalingGap sweeps grid sizes and reports the Giraph/GRAPE
// communication ratio — the perimeter-vs-area effect behind Table 1's
// absolute numbers.
func BenchmarkScalingGap(b *testing.B) {
	for _, side := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("grid-%d", side), func(b *testing.B) {
			var rows []experiments.GapRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.ScalingGap(context.Background(), []int{side}, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].Ratio, "comm-ratio")
			b.ReportMetric(float64(rows[0].GiraphSteps), "giraph-steps")
			b.ReportMetric(float64(rows[0].GrapeSteps), "grape-steps")
		})
	}
}

// BenchmarkTriCount exercises the second locality-bounded query class.
func BenchmarkTriCount(b *testing.B) {
	g := benchScale().Social()
	var st *metrics.Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = queries.RunTriCount(context.Background(), g, engine.Options{Workers: 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, st)
}

// BenchmarkContinuousUpdates measures the session layer: cost of a small
// update batch against a standing SSSP query (Example 1(d) over graph
// updates).
func BenchmarkContinuousUpdates(b *testing.B) {
	sc := benchScale()
	g := sc.Road()
	session, _, _, err := engine.NewSession(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0},
		engine.Options{Workers: 16, Strategy: partition.TwoD{Cols: sc.RoadCols}})
	if err != nil {
		b.Fatal(err)
	}
	far := graph.ID(sc.RoadRows*sc.RoadCols - 1)
	b.ResetTimer()
	var st *metrics.Stats
	for i := 0; i < b.N; i++ {
		// weight decreases on the same edge keep the workload stationary
		w := 2.0 / float64(i+1)
		_, st, err = session.Update(context.Background(), []engine.EdgeUpdate{{From: far - 1, To: far, W: w}})
		if err != nil {
			b.Fatal(err)
		}
	}
	if st != nil {
		report(b, st)
	}
}

// BenchmarkPartitioners measures the partition strategies themselves (build
// time and the quality that drives the partition-impact experiment).
func BenchmarkPartitioners(b *testing.B) {
	g := benchScale().Social()
	for _, strat := range partition.Strategies() {
		b.Run(strat.Name(), func(b *testing.B) {
			var asg *partition.Assignment
			for i := 0; i < b.N; i++ {
				var err error
				asg, err = strat.Partition(g, 16)
				if err != nil {
					b.Fatal(err)
				}
			}
			q := partition.Measure(strat.Name(), asg)
			b.ReportMetric(float64(q.EdgeCut), "edgecut")
			b.ReportMetric(q.Balance, "balance")
		})
	}
}

// BenchmarkSequentialBaselines measures the raw sequential algorithms that
// PEval plugs in — the single-worker floor all parallel numbers compare
// against.
func BenchmarkSequentialBaselines(b *testing.B) {
	g := benchScale().Road()
	b.Run("dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if d := seq.Dijkstra(g, 0); len(d) == 0 {
				b.Fatal("empty result")
			}
		}
	})
	b.Run("components", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if c := seq.Components(g); len(c) == 0 {
				b.Fatal("empty result")
			}
		}
	})
}

// BenchmarkPublicAPI exercises the facade the examples use, so API overhead
// stays visible.
func BenchmarkPublicAPI(b *testing.B) {
	g := grape.RoadGrid(48, 48, 1)
	b.Run("run-sssp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := grape.RunSSSP(context.Background(), g, 0, grape.Options{Workers: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("run-program-by-name", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := grape.RunProgram(context.Background(), "sssp", g, grape.Options{Workers: 8}, "source=0"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func workersName(n int) string { return fmt.Sprintf("workers-%02d", n) }
