module grape

go 1.24
