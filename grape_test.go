package grape_test

import (
	"context"
	"math"
	"testing"

	"grape"
	"grape/internal/seq"
)

func TestFacadeSSSP(t *testing.T) {
	g := grape.RoadGrid(20, 20, 1)
	dists, stats, err := grape.RunSSSP(context.Background(), g, 0, grape.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Dijkstra(g, 0)
	if len(dists) != len(want) {
		t.Fatalf("reach: %d vs %d", len(dists), len(want))
	}
	for v, d := range want {
		if math.Abs(dists[v]-d) > 1e-9 {
			t.Fatalf("vertex %d: %g vs %g", v, dists[v], d)
		}
	}
	if stats == nil || stats.Supersteps < 1 {
		t.Fatal("stats missing")
	}
}

func TestFacadeCC(t *testing.T) {
	g := grape.SocialNetwork(300, 3, 2)
	comp, _, err := grape.RunCC(context.Background(), g, grape.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Components(g)
	for v, c := range want {
		if comp[v] != c {
			t.Fatalf("vertex %d: %d vs %d", v, comp[v], c)
		}
	}
}

func TestFacadeSimAndSubIso(t *testing.T) {
	g := grape.SocialCommerce(300, 10, 3)
	p, err := grape.PatternByName("follows-recommend")
	if err != nil {
		t.Fatal(err)
	}
	sim, _, err := grape.RunSim(context.Background(), g, p, grape.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	matches, _, err := grape.RunSubIso(context.Background(), g, p, 0, grape.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("expected matches on the commerce graph")
	}
	// embedding images must appear in the simulation result (sim ⊇ subiso)
	inSim := map[grape.ID]map[grape.ID]bool{}
	for u, vs := range sim {
		inSim[u] = map[grape.ID]bool{}
		for _, v := range vs {
			inSim[u][v] = true
		}
	}
	for _, m := range matches {
		for u, v := range m {
			if !inSim[u][v] {
				t.Fatalf("subiso image %d of %d not in simulation", v, u)
			}
		}
	}
}

func TestFacadeKeyword(t *testing.T) {
	g := grape.SocialNetwork(500, 4, 4)
	grape.AttachKeywords(g, []string{"db", "ml"}, 2, 0.1, 4)
	roots, _, err := grape.RunKeyword(context.Background(), g, []string{"db", "ml"}, 5, grape.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(roots); i++ {
		if roots[i-1].Score > roots[i].Score {
			t.Fatal("keyword results not ranked")
		}
	}
}

func TestFacadeCF(t *testing.T) {
	g := grape.Ratings(120, 40, 10, 5)
	res, _, err := grape.RunCF(context.Background(), g, 12, grape.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE <= 0 || res.RMSE > 1.5 {
		t.Fatalf("implausible RMSE %.3f", res.RMSE)
	}
}

func TestFacadeGPAR(t *testing.T) {
	g := grape.SocialCommerce(600, 10, 6)
	res, _, err := grape.EvalRule(context.Background(), g, grape.Example2Rule(0.8), grape.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Support == 0 {
		t.Fatal("rule should fire on the planted graph")
	}
}

func TestFacadeRegistryAndStrategies(t *testing.T) {
	if len(grape.Library()) < 6 {
		t.Fatalf("library too small: %d", len(grape.Library()))
	}
	if len(grape.Strategies()) != 6 {
		t.Fatalf("want 6 strategies, got %d", len(grape.Strategies()))
	}
	if _, err := grape.StrategyByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
	g := grape.RoadGrid(10, 10, 1)
	res, _, err := grape.RunProgram(context.Background(), "cc", g, grape.Options{Workers: 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.(map[grape.ID]grape.ID); !ok {
		t.Fatalf("unexpected result type %T", res)
	}
}

func TestFacadeSessions(t *testing.T) {
	g := grape.RoadGrid(15, 15, 2)
	s, dists, _, err := grape.NewSSSPSession(context.Background(), g, 0, grape.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	far := grape.ID(15*15 - 1)
	before := dists[far]
	after, _, err := s.Update(context.Background(), []grape.EdgeUpdate{{From: 0, To: far, W: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if after[far] != 0.5 || before <= 0.5 {
		t.Fatalf("shortcut not applied: before %.1f after %.1f", before, after[far])
	}

	cs, comp, _, err := grape.NewCCSession(context.Background(), grape.New(), grape.Options{})
	if err == nil {
		_ = cs
		_ = comp
		t.Fatal("empty graph should fail to partition")
	}
}

// minProg is a tiny custom PIE program exercising the generic facade
// surface (Run, RunAsync, Register, NewSession): it floods the minimum
// vertex ID through the graph.
type minProg struct{}

type minQuery struct{}

func (minProg) Name() string { return "facade-minflood" }
func (minProg) Spec() grape.VarSpec[int64] {
	return grape.VarSpec[int64]{
		Default: 1 << 40,
		Agg: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		Eq:   func(a, b int64) bool { return a == b },
		Less: func(a, b int64) bool { return a < b },
	}
}
func (minProg) PEval(_ minQuery, ctx *grape.Context[int64]) error {
	for _, v := range ctx.Frag.G.Vertices() {
		ctx.Set(v, int64(v))
	}
	return flood(ctx, ctx.Frag.G.Vertices())
}
func (minProg) IncEval(_ minQuery, ctx *grape.Context[int64]) error {
	return flood(ctx, ctx.Updated())
}
func flood(ctx *grape.Context[int64], seeds []grape.ID) error {
	queue := append([]grape.ID(nil), seeds...)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range ctx.Frag.G.Out(u) {
			ctx.AddWork(1)
			if ctx.Get(u) < ctx.Get(e.To) {
				ctx.Set(e.To, ctx.Get(u))
				queue = append(queue, e.To)
			}
		}
	}
	return nil
}
func (minProg) Assemble(_ minQuery, ctxs []*grape.Context[int64]) (map[grape.ID]int64, error) {
	out := map[grape.ID]int64{}
	for _, ctx := range ctxs {
		ctx.Vars(func(id grape.ID, v int64) {
			if ctx.Frag.IsInner(id) {
				out[id] = v
			}
		})
	}
	return out, nil
}

func TestFacadeCustomProgramSyncAsyncSession(t *testing.T) {
	g := grape.RoadGrid(10, 10, 3)
	syncRes, _, err := grape.Run(context.Background(), g, minProg{}, minQuery{}, grape.Options{Workers: 4, CheckMonotonic: true})
	if err != nil {
		t.Fatal(err)
	}
	asyncRes, _, err := grape.RunAsync(context.Background(), g, minProg{}, minQuery{}, grape.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v, x := range syncRes {
		if x != 0 {
			t.Fatalf("grid floods to 0 everywhere, vertex %d got %d", v, x)
		}
		if asyncRes[v] != x {
			t.Fatalf("async differs at %d: %d vs %d", v, asyncRes[v], x)
		}
	}
	// generic session constructor (no Updater: Update falls back to a
	// from-scratch reseed and still brings the answer up to date)
	s, res, _, err := grape.NewSession(context.Background(), g, minProg{}, minQuery{}, grape.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != g.NumVertices() {
		t.Fatalf("session assembled %d of %d", len(res), g.NumVertices())
	}
	upd, _, err := s.Update(context.Background(), []grape.EdgeUpdate{{From: 0, To: 5, W: 1}})
	if err != nil {
		t.Fatalf("reseed fallback must absorb updates for hook-less programs: %v", err)
	}
	if s.Broken() {
		t.Fatal("successful reseed must not break the session")
	}
	if len(upd) != g.NumVertices() {
		t.Fatalf("post-update answer covers %d of %d vertices", len(upd), g.NumVertices())
	}
	for v, x := range upd {
		if x != 0 {
			t.Fatalf("grid still floods to 0 after insert, vertex %d got %d", v, x)
		}
	}
}

func TestFacadeRegisterAndCostModel(t *testing.T) {
	grape.Register(grape.MakeEntry(grape.EntrySpec[minQuery, int64, map[grape.ID]int64]{
		Prog:        minProg{},
		Description: "test",
		QueryHelp:   "(none)",
		Parse:       func(string) (minQuery, error) { return minQuery{}, nil },
		Canonical:   func(minQuery) string { return "" },
	}))
	g := grape.RoadGrid(6, 6, 1)
	// the typed accessor — no any-assertion at the call site
	res, stats, err := grape.RunProgramAs[map[grape.ID]int64](context.Background(), "facade-minflood", g, grape.Options{Workers: 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 36 {
		t.Fatal("registered program misbehaved")
	}
	// asking for the wrong result type errors instead of panicking
	if _, _, err := grape.RunProgramAs[[]string](context.Background(), "facade-minflood", g, grape.Options{Workers: 2}, ""); err == nil {
		t.Fatal("RunProgramAs with the wrong type parameter must fail")
	}
	cm := grape.DefaultCostModel()
	if cm.SimSeconds(stats) <= 0 {
		t.Fatal("cost model produced non-positive time for a real run")
	}
}

func TestFacadeDiscoverRules(t *testing.T) {
	g := grape.SocialCommerce(600, 8, 11)
	rules, err := grape.DiscoverRules(context.Background(), g, 5, 0.3, grape.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("mining should find the planted rule")
	}
}

func TestFacadeGraphConstruction(t *testing.T) {
	g := grape.New()
	g.AddLabeledEdge(1, 2, 1.5, "knows")
	if g.NumEdges() != 1 || !g.Directed() {
		t.Fatal("facade graph construction broken")
	}
	u := grape.NewUndirected()
	u.AddEdge(1, 2, 1)
	if u.Directed() {
		t.Fatal("undirected constructor broken")
	}
}
