package grape_test

import (
	"context"
	"fmt"

	"grape"
)

// The canonical GRAPE workflow: generate a graph, pick a worker count and a
// partition strategy, run a registered PIE program.
func ExampleRunSSSP() {
	g := grape.New()
	g.AddEdge(0, 1, 4)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 1, 2)
	g.AddEdge(1, 3, 1)

	dists, _, err := grape.RunSSSP(context.Background(), g, 0, grape.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(dists[1], dists[3])
	// Output: 3 4
}

// Connected components label every vertex with the smallest vertex ID in
// its weakly connected component.
func ExampleRunCC() {
	g := grape.New()
	g.AddEdge(5, 9, 1)
	g.AddEdge(9, 7, 1)
	g.AddEdge(2, 4, 1)

	comp, _, err := grape.RunCC(context.Background(), g, grape.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(comp[7], comp[4])
	// Output: 5 2
}

// Subgraph isomorphism ships d-hop neighborhoods in PEval and finishes in a
// single parallel superstep.
func ExampleRunSubIso() {
	g := grape.New()
	g.AddVertex(1, "person")
	g.AddVertex(2, "person")
	g.AddVertex(3, "product")
	g.AddLabeledEdge(1, 2, 1, "follow")
	g.AddLabeledEdge(2, 3, 1, "recommend")

	pattern, err := grape.PatternByName("follows-recommend")
	if err != nil {
		panic(err)
	}
	matches, stats, err := grape.RunSubIso(context.Background(), g, pattern, 0, grape.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(matches), stats.Supersteps)
	// Output: 1 1
}

// The registry drives programs by name with textual queries — the demo's
// play panel.
func ExampleRunProgram() {
	g := grape.RoadGrid(8, 8, 1)
	res, _, err := grape.RunProgram(context.Background(), "sssp", g, grape.Options{Workers: 2}, "source=0")
	if err != nil {
		panic(err)
	}
	dists := res.(map[grape.ID]float64)
	fmt.Println(dists[0])
	// Output: 0
}

// Sessions answer a standing query over an evolving graph: edge insertions
// re-run only the bounded incremental step.
func ExampleNewSSSPSession() {
	g := grape.New()
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 10)

	session, dists, _, err := grape.NewSSSPSession(context.Background(), g, 0, grape.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(dists[2])

	dists, _, err = session.Update(context.Background(), []grape.EdgeUpdate{{From: 0, To: 2, W: 3}})
	if err != nil {
		panic(err)
	}
	fmt.Println(dists[2])
	// Output:
	// 20
	// 3
}

// Strategies lists the built-in partition library of the play panel.
func ExampleStrategies() {
	for _, s := range grape.Strategies() {
		fmt.Println(s.Name())
	}
	// Output:
	// hash
	// range
	// fennel
	// ldg
	// metis
	// 2d
}
