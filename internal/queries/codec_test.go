package queries

import (
	"math"
	"reflect"
	"testing"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/seq"
)

// roundTrip asserts Decode(Encode(x)) == x under eq for every sample, that
// DecodeVal consumes exactly the bytes AppendVal produced, and that batch
// encoding via engine.AppendUpdates — whose length is precisely the byte
// count a wire transport reports for the batch (see engine/codec.go) —
// round-trips too.
func roundTrip[V any](t *testing.T, c engine.Codec[V], eq func(a, b V) bool, samples []V) {
	t.Helper()
	for _, v := range samples {
		buf := c.AppendVal(nil, v)
		got, used, err := c.DecodeVal(buf)
		if err != nil {
			t.Fatalf("decode(%v): %v", v, err)
		}
		if used != len(buf) {
			t.Fatalf("decode(%v) consumed %d of %d bytes", v, used, len(buf))
		}
		if !eq(got, v) {
			t.Fatalf("round trip: want %v, got %v", v, got)
		}
	}
	ups := make([]engine.VarUpdate[V], len(samples))
	for i, v := range samples {
		ups[i] = engine.VarUpdate[V]{ID: graph.ID(i * 7), Val: v}
	}
	buf := engine.AppendUpdates(c, nil, ups)
	got, used, err := engine.DecodeUpdates(c, buf)
	if err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	if used != len(buf) {
		t.Fatalf("batch decode consumed %d of %d bytes — transport-reported size would drift", used, len(buf))
	}
	if len(got) != len(ups) {
		t.Fatalf("batch round trip: want %d updates, got %d", len(ups), len(got))
	}
	for i := range ups {
		if got[i].ID != ups[i].ID || !eq(got[i].Val, ups[i].Val) {
			t.Fatalf("batch round trip at %d: want %v, got %v", i, ups[i], got[i])
		}
	}
	// A batch's transport-reported size is its encoded length: re-encoding
	// the decoded batch must reproduce it exactly.
	if re := engine.AppendUpdates(c, nil, got); len(re) != len(buf) {
		t.Fatalf("re-encoded batch is %d bytes, original %d", len(re), len(buf))
	}
}

func TestCodecRoundTrips(t *testing.T) {
	t.Run("sssp", func(t *testing.T) {
		roundTrip[float64](t, SSSP{}.WireCodec(), func(a, b float64) bool { return a == b || (math.IsNaN(a) && math.IsNaN(b)) },
			[]float64{0, 1.5, -3.25, seq.Inf, math.MaxFloat64, math.SmallestNonzeroFloat64})
	})
	t.Run("cc", func(t *testing.T) {
		roundTrip[graph.ID](t, CC{}.WireCodec(), func(a, b graph.ID) bool { return a == b },
			[]graph.ID{0, 1, 127, 128, 1 << 20, noComponent})
	})
	t.Run("sim", func(t *testing.T) {
		roundTrip[seq.SimBits](t, Sim{}.WireCodec(), func(a, b seq.SimBits) bool { return a == b },
			[]seq.SimBits{0, 1, fullMask, 0xdeadbeef})
	})
	t.Run("subiso", func(t *testing.T) {
		roundTrip[uint8](t, SubIso{}.WireCodec(), func(a, b uint8) bool { return a == b },
			[]uint8{0, 1, 255})
	})
	t.Run("tricount", func(t *testing.T) {
		roundTrip[uint8](t, TriCount{}.WireCodec(), func(a, b uint8) bool { return a == b },
			[]uint8{0, 42})
	})
	vecEq := func(a, b []float64) bool { return reflect.DeepEqual(a, b) }
	t.Run("keyword", func(t *testing.T) {
		roundTrip[kwVec](t, Keyword{}.WireCodec(), vecEq,
			[]kwVec{nil, {0}, {1.5, seq.Inf}, {0, 0, 0, 0}})
	})
	t.Run("cf", func(t *testing.T) {
		roundTrip[[]float64](t, CF{}.WireCodec(), vecEq,
			[][]float64{nil, {0.25}, {1, 2, 3, 4, 5, 6, 7, 8}})
	})
}

// TestVectorCodecNilSentinel pins the nil/empty distinction the Keyword and
// CF aggregates rely on: length 0 must decode to nil, not an empty slice.
func TestVectorCodecNilSentinel(t *testing.T) {
	c := Keyword{}.WireCodec()
	buf := c.AppendVal(nil, nil)
	v, _, err := c.DecodeVal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("nil vector decoded to non-nil %v", v)
	}
}

func TestQueryCodecRoundTrips(t *testing.T) {
	t.Run("sssp", func(t *testing.T) {
		blob, err := SSSP{}.EncodeQuery(SSSPQuery{Source: 42})
		if err != nil {
			t.Fatal(err)
		}
		q, err := SSSP{}.DecodeQuery(blob)
		if err != nil || q.Source != 42 {
			t.Fatalf("got %+v, %v", q, err)
		}
	})
	t.Run("sim", func(t *testing.T) {
		p, err := PatternByName("triangle")
		if err != nil {
			t.Fatal(err)
		}
		blob, err := Sim{}.EncodeQuery(SimQuery{Pattern: p})
		if err != nil {
			t.Fatal(err)
		}
		q, err := Sim{}.DecodeQuery(blob)
		if err != nil {
			t.Fatal(err)
		}
		if q.Pattern.NumVertices() != p.NumVertices() || q.Pattern.NumEdges() != p.NumEdges() {
			t.Fatalf("pattern shape changed: %d/%d vs %d/%d",
				q.Pattern.NumVertices(), q.Pattern.NumEdges(), p.NumVertices(), p.NumEdges())
		}
	})
	t.Run("keyword", func(t *testing.T) {
		in := KeywordQuery{Keywords: []string{"db", "graph"}, Bound: 7.5, UseIndex: true}
		blob, err := Keyword{}.EncodeQuery(in)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Keyword{}.DecodeQuery(blob)
		if err != nil || !reflect.DeepEqual(q, in) {
			t.Fatalf("got %+v, %v", q, err)
		}
	})
	t.Run("cf", func(t *testing.T) {
		in := CFQuery{Cfg: seq.CFConfig{Factors: 8, Epochs: 20, LR: 0.02, Reg: 0.05, Seed: -3}}
		blob, err := CF{}.EncodeQuery(in)
		if err != nil {
			t.Fatal(err)
		}
		q, err := CF{}.DecodeQuery(blob)
		if err != nil || !reflect.DeepEqual(q, in) {
			t.Fatalf("got %+v, %v", q, err)
		}
	})
	t.Run("subiso", func(t *testing.T) {
		p, err := PatternByName("chain3")
		if err != nil {
			t.Fatal(err)
		}
		blob, err := SubIso{}.EncodeQuery(SubIsoQuery{Pattern: p, MaxMatches: 9})
		if err != nil {
			t.Fatal(err)
		}
		q, err := SubIso{}.DecodeQuery(blob)
		if err != nil || q.MaxMatches != 9 || q.Pattern.NumVertices() != p.NumVertices() {
			t.Fatalf("got %+v, %v", q, err)
		}
	})
}

// FuzzCodecRoundTrip feeds arbitrary bytes to every registered codec's
// DecodeVal. Decoders must never panic; whatever they do decode must
// re-encode and decode back to the same value (no lossy or ambiguous
// encodings on the wire).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(engine.AppendUpdates(SSSP{}.WireCodec(), nil, []engine.VarUpdate[float64]{{ID: 3, Val: 1.5}}))
	f.Add(CF{}.WireCodec().AppendVal(nil, []float64{1, 2, 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzOne[float64](t, SSSP{}.WireCodec(), func(a, b float64) bool {
			return a == b || (math.IsNaN(a) && math.IsNaN(b))
		}, data)
		fuzzOne[graph.ID](t, CC{}.WireCodec(), func(a, b graph.ID) bool { return a == b }, data)
		fuzzOne[seq.SimBits](t, Sim{}.WireCodec(), func(a, b seq.SimBits) bool { return a == b }, data)
		fuzzOne[uint8](t, SubIso{}.WireCodec(), func(a, b uint8) bool { return a == b }, data)
		// bitwise: arbitrary bytes can decode to NaN, where == would lie
		vecEq := func(a, b []float64) bool {
			if len(a) != len(b) || (a == nil) != (b == nil) {
				return false
			}
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					return false
				}
			}
			return true
		}
		fuzzOne[kwVec](t, Keyword{}.WireCodec(), vecEq, data)
		// batch layer over an arbitrary prefix
		if ups, _, err := engine.DecodeUpdates(CC{}.WireCodec(), data); err == nil {
			re := engine.AppendUpdates(CC{}.WireCodec(), nil, ups)
			ups2, _, err := engine.DecodeUpdates(CC{}.WireCodec(), re)
			if err != nil {
				t.Fatalf("re-encoded batch failed to decode: %v", err)
			}
			if !reflect.DeepEqual(ups, ups2) {
				t.Fatalf("batch not stable: %v vs %v", ups, ups2)
			}
		}
	})
}

func fuzzOne[V any](t *testing.T, c engine.Codec[V], eq func(a, b V) bool, data []byte) {
	t.Helper()
	v, used, err := c.DecodeVal(data)
	if err != nil {
		return
	}
	if used < 0 || used > len(data) {
		t.Fatalf("decoder consumed %d of %d bytes", used, len(data))
	}
	buf := c.AppendVal(nil, v)
	v2, used2, err := c.DecodeVal(buf)
	if err != nil {
		t.Fatalf("re-decode failed: %v", err)
	}
	if used2 != len(buf) || !eq(v, v2) {
		t.Fatalf("unstable encoding: %v -> %v (consumed %d of %d)", v, v2, used2, len(buf))
	}
}
