package queries

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/seq"
)

// SubIsoQuery asks for subgraph-isomorphism embeddings of Pattern.
type SubIsoQuery struct {
	Pattern *graph.Graph
	// MaxMatches caps the global number of embeddings (0 = unlimited).
	// Workers each enumerate at most this many; Assemble re-truncates.
	MaxMatches int
	// name is the library name the pattern was parsed from, if any (see
	// SimQuery.name).
	name string
}

// SubIso is the PIE program for subgraph isomorphism. Unlike the iterative
// classes, SubIso is locality-bounded: a match anchored at a vertex v lies
// entirely within the d-hop neighborhood of v, where d is the pattern's
// radius. GRAPE therefore ships data in PEval instead of iterating: run it
// with Options.ExpandHops = Radius(q) so fragments carry the d-hop
// neighborhoods of their inner vertices, and
//
//	PEval    — a VF2-style sequential enumeration restricted to matches
//	           whose anchor lands on an inner vertex (each match is counted
//	           by exactly one fragment);
//	IncEval  — nothing to do: no update parameters change, so the fixpoint
//	           is reached after one superstep;
//	Assemble — concatenates and sorts the per-fragment match lists.
type SubIso struct{}

// Name implements engine.Program.
func (SubIso) Name() string { return "subiso" }

// Radius returns the fragment expansion (Options.ExpandHops) the query
// needs: the pattern's undirected eccentricity from the anchor vertex.
func (SubIso) Radius(q SubIsoQuery) int {
	return seq.PatternRadius(q.Pattern, anchorOf(q.Pattern))
}

// anchorOf designates the pattern vertex whose image decides match
// ownership: the first vertex of the matching order (most constrained).
func anchorOf(p *graph.Graph) graph.ID {
	vs := p.SortedVertices()
	if len(vs) == 0 {
		return graph.NoID
	}
	best := vs[0]
	bestDeg := -1
	for _, u := range vs {
		d := p.OutDegree(u) + p.InDegree(u)
		if d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

// Spec implements engine.Program. SubIso exchanges no update parameters;
// the dummy byte variable never changes, so the engine terminates after
// PEval — one parallel superstep, exactly the paper's behaviour for
// data-shipped locality queries.
func (SubIso) Spec() engine.VarSpec[uint8] {
	return engine.VarSpec[uint8]{
		Default: 0,
		Agg:     func(a, b uint8) uint8 { return a | b },
		Eq:      func(a, b uint8) bool { return a == b },
		Size:    func(uint8) int { return 1 },
	}
}

// PEval implements engine.Program.
func (SubIso) PEval(q SubIsoQuery, ctx *engine.Context[uint8]) error {
	if q.Pattern == nil || q.Pattern.NumVertices() == 0 {
		return fmt.Errorf("subiso: empty pattern")
	}
	f := ctx.Frag
	opts := seq.SubIsoOptions{
		MaxMatches: q.MaxMatches,
		AnchorVar:  anchorOf(q.Pattern),
	}
	if f.G.Frozen() {
		opts.AnchorAt = f.IsInnerAt
	} else {
		opts.Anchor = f.IsInner
	}
	matches, work := seq.SubIso(q.Pattern, f.G, opts)
	ctx.AddWork(work)
	ctx.Partial = matches
	return nil
}

// IncEval implements engine.Program; it never runs (no parameters change).
func (SubIso) IncEval(q SubIsoQuery, ctx *engine.Context[uint8]) error { return nil }

// Assemble implements engine.Program.
func (SubIso) Assemble(q SubIsoQuery, ctxs []*engine.Context[uint8]) ([]seq.Match, error) {
	var all []seq.Match
	for _, ctx := range ctxs {
		if ctx.Partial == nil {
			continue
		}
		all = append(all, ctx.Partial.([]seq.Match)...)
	}
	sortMatches(q.Pattern, all)
	if q.MaxMatches > 0 && len(all) > q.MaxMatches {
		all = all[:q.MaxMatches]
	}
	return all, nil
}

// sortMatches orders embeddings lexicographically by the images of the
// pattern vertices (in sorted pattern-vertex order) so results are
// deterministic regardless of fragmentation.
func sortMatches(p *graph.Graph, ms []seq.Match) {
	pv := p.SortedVertices()
	sort.Slice(ms, func(i, j int) bool {
		for _, u := range pv {
			if ms[i][u] != ms[j][u] {
				return ms[i][u] < ms[j][u]
			}
		}
		return false
	})
}

// RunSubIso runs the SubIso program with the fragment expansion the pattern
// requires. It is the helper the registry, GPAR and benches share.
func RunSubIso(ctx context.Context, g *graph.Graph, q SubIsoQuery, opts engine.Options) ([]seq.Match, *metrics.Stats, error) {
	opts.ExpandHops = (SubIso{}).Radius(q)
	return engine.Run(ctx, g, SubIso{}, q, opts)
}

func parseSubIso(query string) (SubIsoQuery, error) {
	kv, err := parseKV(query)
	if err != nil {
		return SubIsoQuery{}, err
	}
	p, err := PatternByName(kv["pattern"])
	if err != nil {
		return SubIsoQuery{}, err
	}
	max := 0
	if s, ok := kv["max"]; ok {
		if max, err = strconv.Atoi(s); err != nil {
			return SubIsoQuery{}, fmt.Errorf("subiso: bad max: %v", err)
		}
		// a negative cap would enumerate nothing yet canonicalize like the
		// unlimited query, poisoning any cache keyed on the canonical form
		if max < 0 {
			return SubIsoQuery{}, fmt.Errorf("subiso: max must be >= 0, got %d", max)
		}
	}
	return SubIsoQuery{Pattern: p, MaxMatches: max, name: kv["pattern"]}, nil
}

func canonicalSubIso(q SubIsoQuery) string {
	if q.MaxMatches > 0 {
		return fmt.Sprintf("pattern=%s max=%d", q.name, q.MaxMatches)
	}
	return "pattern=" + q.name
}

func init() {
	engine.Register(entry(SubIso{},
		"subgraph isomorphism (VF2-style PEval on d-hop expanded fragments; single superstep)",
		"pattern=<name> [max=<k>]",
		parseSubIso, canonicalSubIso,
		func(q SubIsoQuery) int { return (SubIso{}).Radius(q) }))
}
