package queries

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/seq"
)

// SubIsoQuery asks for subgraph-isomorphism embeddings of Pattern.
type SubIsoQuery struct {
	Pattern *graph.Graph
	// MaxMatches caps the global number of embeddings (0 = unlimited).
	// Workers each enumerate at most this many; Assemble re-truncates.
	MaxMatches int
	// name is the library name the pattern was parsed from, if any (see
	// SimQuery.name).
	name string
}

// SubIso is the PIE program for subgraph isomorphism. Unlike the iterative
// classes, SubIso is locality-bounded: a match anchored at a vertex v lies
// entirely within the d-hop neighborhood of v, where d is the pattern's
// radius. GRAPE therefore ships data in PEval instead of iterating: run it
// with Options.ExpandHops = Radius(q) so fragments carry the d-hop
// neighborhoods of their inner vertices, and
//
//	PEval    — a VF2-style sequential enumeration restricted to matches
//	           whose anchor lands on an inner vertex (each match is counted
//	           by exactly one fragment);
//	IncEval  — nothing to do: no update parameters change, so the fixpoint
//	           is reached after one superstep;
//	Assemble — concatenates and sorts the per-fragment match lists.
type SubIso struct{}

// Name implements engine.Program.
func (SubIso) Name() string { return "subiso" }

// Radius returns the fragment expansion (Options.ExpandHops) the query
// needs: the pattern's undirected eccentricity from the anchor vertex.
func (SubIso) Radius(q SubIsoQuery) int {
	return seq.PatternRadius(q.Pattern, anchorOf(q.Pattern))
}

// anchorOf designates the pattern vertex whose image decides match
// ownership: the first vertex of the matching order (most constrained).
func anchorOf(p *graph.Graph) graph.ID {
	vs := p.SortedVertices()
	if len(vs) == 0 {
		return graph.NoID
	}
	best := vs[0]
	bestDeg := -1
	for _, u := range vs {
		d := p.OutDegree(u) + p.InDegree(u)
		if d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

// Spec implements engine.Program. SubIso exchanges no update parameters;
// the dummy byte variable never changes, so the engine terminates after
// PEval — one parallel superstep, exactly the paper's behaviour for
// data-shipped locality queries.
func (SubIso) Spec() engine.VarSpec[uint8] {
	return engine.VarSpec[uint8]{
		Default: 0,
		Agg:     func(a, b uint8) uint8 { return a | b },
		Eq:      func(a, b uint8) bool { return a == b },
		Size:    func(uint8) int { return 1 },
	}
}

// PEval implements engine.Program.
func (SubIso) PEval(q SubIsoQuery, ctx *engine.Context[uint8]) error {
	if q.Pattern == nil || q.Pattern.NumVertices() == 0 {
		return fmt.Errorf("subiso: empty pattern")
	}
	f := ctx.Frag
	opts := seq.SubIsoOptions{
		MaxMatches: q.MaxMatches,
		AnchorVar:  anchorOf(q.Pattern),
	}
	if f.G.Frozen() {
		opts.AnchorAt = f.IsInnerAt
	} else {
		opts.Anchor = f.IsInner
	}
	matches, work := seq.SubIso(q.Pattern, f.G, opts)
	ctx.AddWork(work)
	ctx.Partial = matches
	return nil
}

// IncEval implements engine.Program; it never runs (no parameters change).
func (SubIso) IncEval(q SubIsoQuery, ctx *engine.Context[uint8]) error { return nil }

// Assemble implements engine.Program.
func (SubIso) Assemble(q SubIsoQuery, ctxs []*engine.Context[uint8]) ([]seq.Match, error) {
	var all []seq.Match
	for _, ctx := range ctxs {
		if ctx.Partial == nil {
			continue
		}
		all = append(all, ctx.Partial.([]seq.Match)...)
	}
	sortMatches(q.Pattern, all)
	if q.MaxMatches > 0 && len(all) > q.MaxMatches {
		all = all[:q.MaxMatches]
	}
	return all, nil
}

// subIsoPatch is the session-retained state of the SubIso patcher: every
// match of the *uncapped* query, keyed by its image tuple, plus the pattern
// eccentricity bound that limits how far an edge update can matter.
type subIsoPatch struct {
	// diam is the largest undirected eccentricity over all pattern vertices:
	// whatever pattern vertex an updated edge's endpoint is the image of,
	// every other image of that match lies within diam undirected hops.
	diam    int
	matches map[string]seq.Match
}

// SessionQuery implements engine.SessionPatcher: the session enumerates the
// full match set internally. A MaxMatches cap cannot be patched — a new
// match may sort before retained ones, and a deleted match must be replaced
// by one the cap dropped — so the cap is applied per result in PatchResult.
func (SubIso) SessionQuery(q SubIsoQuery) SubIsoQuery {
	q.MaxMatches = 0
	return q
}

// InitPatch implements engine.SessionPatcher.
func (SubIso) InitPatch(q SubIsoQuery, g *graph.Graph, res []seq.Match) (any, error) {
	diam := 0
	for _, u := range q.Pattern.SortedVertices() {
		if r := seq.PatternRadius(q.Pattern, u); r > diam {
			diam = r
		}
	}
	st := &subIsoPatch{diam: diam, matches: make(map[string]seq.Match, len(res))}
	pv := q.Pattern.SortedVertices()
	for _, m := range res {
		st.matches[matchKey(pv, m)] = m
	}
	return st, nil
}

// ApplyPatch implements engine.SessionPatcher by re-matching the affected
// region: every match gaining or losing validity through edge {u, v}
// contains both endpoints, so its images lie within diam undirected hops of
// u and of v — measured on the graph that *contains* the edge (the match's
// own edges form the connecting paths). The region's matches are therefore
// re-enumerated from scratch on the induced subgraph and swapped wholesale
// into the retained set; matches reaching outside the region cannot involve
// the edge and stay untouched.
func (SubIso) ApplyPatch(q SubIsoQuery, g *graph.Graph, state any, upd engine.EdgeUpdate, apply func()) (any, error) {
	st := state.(*subIsoPatch)
	if upd.Del {
		// region on the pre-delete graph, which still has the edge
		region := ballUnion(g, upd.From, upd.To, st.diam)
		apply()
		st.rematch(q, g, region)
		return st, nil
	}
	apply()
	region := ballUnion(g, upd.From, upd.To, st.diam)
	st.rematch(q, g, region)
	return st, nil
}

// rematch replaces the retained matches lying fully inside region with a
// fresh enumeration over the region's induced subgraph.
func (st *subIsoPatch) rematch(q SubIsoQuery, g *graph.Graph, region map[graph.ID]bool) {
	pv := q.Pattern.SortedVertices()
	for k, m := range st.matches {
		inside := true
		for _, u := range pv {
			if !region[m[u]] {
				inside = false
				break
			}
		}
		if inside {
			delete(st.matches, k)
		}
	}
	sub := inducedSubgraph(g, region)
	found, _ := seq.SubIso(q.Pattern, sub, seq.SubIsoOptions{})
	for _, m := range found {
		st.matches[matchKey(pv, m)] = m
	}
}

// PatchResult implements engine.SessionPatcher: sort like Assemble and apply
// the user's cap globally.
func (SubIso) PatchResult(q SubIsoQuery, state any) ([]seq.Match, error) {
	st := state.(*subIsoPatch)
	var all []seq.Match
	for _, m := range st.matches {
		all = append(all, m)
	}
	sortMatches(q.Pattern, all)
	if q.MaxMatches > 0 && len(all) > q.MaxMatches {
		all = all[:q.MaxMatches]
	}
	return all, nil
}

// matchKey renders a match's image tuple (in sorted pattern-vertex order) as
// a map key.
func matchKey(pv []graph.ID, m seq.Match) string {
	buf := make([]byte, 0, 16*len(pv))
	for _, u := range pv {
		buf = strconv.AppendInt(buf, int64(m[u]), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// ballUnion returns the union of the undirected d-hop balls around a and b.
// Each ball is walked with its own visited set: the balls overlap, and a
// vertex reached at depth k from one source may still open fresh territory
// from the other.
func ballUnion(g *graph.Graph, a, b graph.ID, d int) map[graph.ID]bool {
	region := make(map[graph.ID]bool)
	for _, src := range []graph.ID{a, b} {
		seen := map[graph.ID]bool{src: true}
		region[src] = true
		frontier := []graph.ID{src}
		for hop := 0; hop < d && len(frontier) > 0; hop++ {
			var next []graph.ID
			visit := func(v graph.ID) {
				if !seen[v] {
					seen[v] = true
					region[v] = true
					next = append(next, v)
				}
			}
			for _, v := range frontier {
				for _, e := range g.Out(v) {
					visit(e.To)
				}
				for _, e := range g.In(v) {
					visit(e.To)
				}
			}
			frontier = next
		}
	}
	return region
}

// inducedSubgraph copies the region's vertices (with labels and properties)
// and every edge running between them. A match confined to the region uses
// only such edges, so enumeration on the copy is exact.
func inducedSubgraph(g *graph.Graph, region map[graph.ID]bool) *graph.Graph {
	sub := graph.New()
	ids := make([]graph.ID, 0, len(region))
	for v := range region {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, v := range ids {
		sub.AddVertex(v, g.Label(v))
		if ps := g.Props(v); len(ps) > 0 {
			sub.SetProps(v, append([]string(nil), ps...))
		}
	}
	for _, v := range ids {
		for _, e := range g.Out(v) {
			if region[e.To] {
				sub.AddLabeledEdge(v, e.To, e.W, e.Label)
			}
		}
	}
	return sub
}

// sortMatches orders embeddings lexicographically by the images of the
// pattern vertices (in sorted pattern-vertex order) so results are
// deterministic regardless of fragmentation.
func sortMatches(p *graph.Graph, ms []seq.Match) {
	pv := p.SortedVertices()
	sort.Slice(ms, func(i, j int) bool {
		for _, u := range pv {
			if ms[i][u] != ms[j][u] {
				return ms[i][u] < ms[j][u]
			}
		}
		return false
	})
}

// RunSubIso runs the SubIso program with the fragment expansion the pattern
// requires. It is the helper the registry, GPAR and benches share.
func RunSubIso(ctx context.Context, g *graph.Graph, q SubIsoQuery, opts engine.Options) ([]seq.Match, *metrics.Stats, error) {
	opts.ExpandHops = (SubIso{}).Radius(q)
	return engine.Run(ctx, g, SubIso{}, q, opts)
}

func parseSubIso(query string) (SubIsoQuery, error) {
	kv, err := parseKV(query)
	if err != nil {
		return SubIsoQuery{}, err
	}
	p, err := PatternByName(kv["pattern"])
	if err != nil {
		return SubIsoQuery{}, err
	}
	max := 0
	if s, ok := kv["max"]; ok {
		if max, err = strconv.Atoi(s); err != nil {
			return SubIsoQuery{}, fmt.Errorf("subiso: bad max: %v", err)
		}
		// a negative cap would enumerate nothing yet canonicalize like the
		// unlimited query, poisoning any cache keyed on the canonical form
		if max < 0 {
			return SubIsoQuery{}, fmt.Errorf("subiso: max must be >= 0, got %d", max)
		}
	}
	return SubIsoQuery{Pattern: p, MaxMatches: max, name: kv["pattern"]}, nil
}

func canonicalSubIso(q SubIsoQuery) string {
	if q.MaxMatches > 0 {
		return fmt.Sprintf("pattern=%s max=%d", q.name, q.MaxMatches)
	}
	return "pattern=" + q.name
}

func init() {
	engine.Register(entry(SubIso{},
		"subgraph isomorphism (VF2-style PEval on d-hop expanded fragments; single superstep)",
		"pattern=<name> [max=<k>]",
		parseSubIso, canonicalSubIso,
		func(q SubIsoQuery) int { return (SubIso{}).Radius(q) }))
}
