package queries

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/seq"
)

func ssspGround(g *graph.Graph, src graph.ID) map[graph.ID]float64 {
	return seq.Dijkstra(g, src)
}

func runSSSP(t *testing.T, g *graph.Graph, src graph.ID, opts engine.Options) map[graph.ID]float64 {
	t.Helper()
	res, stats, err := engine.Run(context.Background(), g, SSSP{}, SSSPQuery{Source: src}, opts)
	if err != nil {
		t.Fatalf("engine.Run: %v", err)
	}
	if stats.Supersteps < 1 {
		t.Fatalf("expected at least one superstep, got %d", stats.Supersteps)
	}
	return res
}

func sameDistances(t *testing.T, want, got map[graph.ID]float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: reach set size: want %d got %d", label, len(want), len(got))
	}
	for v, d := range want {
		gd, ok := got[v]
		if !ok {
			t.Fatalf("%s: vertex %d missing", label, v)
		}
		if math.Abs(gd-d) > 1e-9 {
			t.Fatalf("%s: vertex %d: want %g got %g", label, v, d, gd)
		}
	}
}

func TestSSSPMatchesDijkstraAcrossStrategiesAndWorkers(t *testing.T) {
	g := gen.ConnectedRandom(300, 900, 42)
	want := ssspGround(g, 0)
	for _, strat := range partition.Strategies() {
		for _, n := range []int{1, 2, 3, 8} {
			got := runSSSP(t, g, 0, engine.Options{Workers: n, Strategy: strat, CheckMonotonic: true})
			sameDistances(t, want, got, strat.Name())
		}
	}
}

func TestSSSPOnRoadGrid(t *testing.T) {
	g := gen.RoadGrid(20, 30, 7)
	want := ssspGround(g, 0)
	got := runSSSP(t, g, 0, engine.Options{Workers: 6, Strategy: partition.MetisLike{}, CheckMonotonic: true})
	sameDistances(t, want, got, "road grid")
}

func TestSSSPUnreachableSource(t *testing.T) {
	g := gen.Random(50, 100, 3)
	g.AddVertex(999, "") // isolated
	got := runSSSP(t, g, 999, engine.Options{Workers: 4})
	if len(got) != 1 || got[999] != 0 {
		t.Fatalf("isolated source should reach only itself, got %v", got)
	}
}

func TestSSSPSourceAbsent(t *testing.T) {
	g := gen.Random(20, 40, 3)
	got := runSSSP(t, g, 777777, engine.Options{Workers: 4})
	if len(got) != 0 {
		t.Fatalf("absent source should reach nothing, got %v", got)
	}
}

func TestSSSPPropertyRandomGraphs(t *testing.T) {
	// Property: for random graphs, GRAPE-SSSP equals sequential Dijkstra,
	// which in turn equals Bellman-Ford, for every partition strategy.
	f := func(seed int64, nw uint8) bool {
		n := 3 + int(uint(seed)%60)
		m := 2 * n
		g := gen.ConnectedRandom(n, m, seed)
		src := graph.ID(int(uint(seed) % uint(n)))
		want := seq.BellmanFord(g, src)
		workers := 1 + int(nw%6)
		res, _, err := engine.Run(context.Background(), g, SSSP{}, SSSPQuery{Source: src},
			engine.Options{Workers: workers, Strategy: partition.Fennel{}, CheckMonotonic: true})
		if err != nil {
			t.Logf("engine error: %v", err)
			return false
		}
		if len(res) != len(want) {
			return false
		}
		for v, d := range want {
			if math.Abs(res[v]-d) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSSSPCommunicationIsBorderBounded(t *testing.T) {
	// Example 1(c): communication is confined to update parameters of
	// border nodes — total messages cannot exceed supersteps × border set,
	// and bytes stay minuscule relative to shipping the graph.
	g := gen.RoadGrid(30, 30, 5)
	asg, err := partition.Range{}.Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	layout := partition.Build(g, asg)
	_, stats, err := engine.RunOnLayout(context.Background(), layout, SSSP{}, SSSPQuery{Source: 0}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	border := asg.BorderCount()
	// every data message carries at least one update of a border variable
	maxUpdates := int64(border) * int64(stats.Supersteps) * 2 // both directions
	if stats.Bytes > maxUpdates*16+int64(stats.Supersteps)*64 {
		t.Fatalf("communication not border-bounded: %d bytes for %d border nodes over %d supersteps",
			stats.Bytes, border, stats.Supersteps)
	}
}

func TestSSSPWithLoadBalancedFragments(t *testing.T) {
	// Over-partition into 16 fragments packed onto 4 workers: the answer is
	// partition-independent and must match Dijkstra exactly.
	g := gen.PreferentialAttachment(800, 4, 15)
	want := ssspGround(g, 0)
	got := runSSSP(t, g, 0, engine.Options{Workers: 4, Fragments: 16, Strategy: partition.Fennel{}})
	sameDistances(t, want, got, "balanced fragments")
}

func TestSSSPRegistryRun(t *testing.T) {
	g := gen.ConnectedRandom(100, 300, 9)
	e, err := engine.Lookup("sssp")
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := e.Run(context.Background(), g, engine.Options{Workers: 3}, "source=0")
	if err != nil {
		t.Fatal(err)
	}
	dists := res.(map[graph.ID]float64)
	sameDistances(t, ssspGround(g, 0), dists, "registry")
	if stats == nil || stats.Workers != 3 {
		t.Fatalf("stats missing or wrong workers: %+v", stats)
	}
	if _, _, err := e.Run(context.Background(), g, engine.Options{}, "source=notanumber"); err == nil {
		t.Fatal("expected parse error")
	}
}
