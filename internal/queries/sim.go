package queries

import (
	"fmt"
	"math/bits"
	"sort"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/seq"
)

// SimQuery asks for the graph-simulation relation of a pattern.
type SimQuery struct {
	Pattern *graph.Graph
	// name is the library name the pattern was parsed from, if any; it is
	// what the canonical query form spells (patterns themselves have no
	// canonical text).
	name string
}

// SimResult maps each pattern vertex to the sorted data vertices simulating
// it.
type SimResult map[graph.ID][]graph.ID

// Sim is the PIE program for graph pattern matching via simulation. The
// update parameter of a border node v is the bitmask of pattern vertices v
// may still simulate; it only ever loses bits, aggregated by AND — a
// monotonically decreasing set, so the Assurance Theorem applies.
//
//	PEval    — the Henzinger–Henzinger–Kopke refinement on the fragment,
//	           treating outer copies optimistically (their out-edges are
//	           remote, so their bits cannot be refuted locally).
//	IncEval  — re-refinement seeded only by the nodes whose masks shrank —
//	           the incremental simulation algorithm; work is proportional
//	           to the affected area.
//	Assemble — per pattern vertex, the union of inner vertices holding its
//	           bit.
type Sim struct{}

// Name implements engine.Program.
func (Sim) Name() string { return "sim" }

// fullMask is the "everything still possible" default; any real mask is a
// subset of the pattern's bits.
const fullMask = ^seq.SimBits(0)

// Spec implements engine.Program: masks ∈ (2^pattern, ∩, ⊊).
func (Sim) Spec() engine.VarSpec[seq.SimBits] {
	return engine.VarSpec[seq.SimBits]{
		Default: fullMask,
		Agg:     func(a, b seq.SimBits) seq.SimBits { return a & b },
		Eq:      func(a, b seq.SimBits) bool { return a == b },
		Less:    func(a, b seq.SimBits) bool { return a&b == a && a != b }, // strict subset
		Size:    func(seq.SimBits) int { return 8 },
	}
}

// PEval implements engine.Program.
func (Sim) PEval(q SimQuery, ctx *engine.Context[seq.SimBits]) error {
	if q.Pattern == nil || q.Pattern.NumVertices() == 0 {
		return fmt.Errorf("sim: empty pattern")
	}
	if q.Pattern.NumVertices() > 64 {
		return fmt.Errorf("sim: pattern has %d vertices, max 64", q.Pattern.NumVertices())
	}
	f := ctx.Frag
	// Initial candidates by label. Every replica of a node derives the same
	// mask from its replicated label, so the initialization itself need not
	// be shipped — only refinements are. Outer copies stay optimistic and
	// frozen; their truth arrives from their owner.
	if g := f.G; g.Frozen() {
		// Dense path: label bits come from a table indexed by interned
		// label, the refinement runs over the CSR form.
		tab := seq.LabelBitsIdx(q.Pattern, g)
		for i := int32(0); i < int32(g.NumVertices()); i++ {
			ctx.SetLocalAt(i, tab[g.LabelIDAt(i)])
			ctx.AddWork(1)
		}
		work := seq.RefineSimIdx(q.Pattern, g, ctx.GetAt, ctx.SetAt,
			func(i int32) bool { return !f.IsInnerAt(i) }, nil, true, func(int32) {})
		ctx.AddWork(work)
		return nil
	}
	for _, v := range f.G.Vertices() {
		ctx.SetLocal(v, seq.LabelBits(q.Pattern, f.G.Label(v)))
		ctx.AddWork(1)
	}
	work := seq.RefineSim(q.Pattern, f.G, ctx.Get, ctx.Set,
		func(v graph.ID) bool { return !f.IsInner(v) }, nil, func(graph.ID) {})
	ctx.AddWork(work)
	return nil
}

// IncEval implements engine.Program: incremental refinement from the shrunk
// masks.
func (Sim) IncEval(q SimQuery, ctx *engine.Context[seq.SimBits]) error {
	f := ctx.Frag
	if g := f.G; g.Frozen() {
		work := seq.RefineSimIdx(q.Pattern, g, ctx.GetAt, ctx.SetAt,
			func(i int32) bool { return !f.IsInnerAt(i) }, ctx.UpdatedAt(), false, func(int32) {})
		ctx.AddWork(work)
		return nil
	}
	work := seq.RefineSim(q.Pattern, f.G, ctx.Get, ctx.Set,
		func(v graph.ID) bool { return !f.IsInner(v) }, ctx.Updated(), func(graph.ID) {})
	ctx.AddWork(work)
	return nil
}

// CanRepair implements engine.DeleteRepairer: deletions only, and only when
// the batch has no insertions. Removing an edge can only shrink simulation
// masks — the same monotone direction as refinement — so re-refining from
// the deleted edges' tails is exact. An insertion can *grow* masks, which
// the AND-aggregated variables cannot express; mixed batches reseed.
func (Sim) CanRepair(q SimQuery, batch []engine.EdgeUpdate) bool {
	for _, u := range batch {
		if !u.Del {
			return false
		}
	}
	return true
}

// RepairBatch implements engine.DeleteRepairer by seeding the follow-up
// refinement at each deleted edge's tail: only the tail lost a successor, so
// only its mask can be directly refuted; the refinement cascades to
// ancestors as usual. The retained masks and fold need no surgery — every
// change the repair causes is a shrink, which the monotone machinery
// propagates exactly.
func (Sim) RepairBatch(q SimQuery, sc *engine.RepairScope[seq.SimBits], batch []engine.EdgeUpdate) (map[int][]graph.ID, error) {
	dirty := make(map[int][]graph.ID)
	for _, u := range batch {
		w := sc.Owner(u.From)
		dirty[w] = append(dirty[w], u.From)
	}
	return dirty, nil
}

// Assemble implements engine.Program. Every pattern vertex gets an entry,
// empty when nothing simulates it — matching the sequential Sim's shape.
func (Sim) Assemble(q SimQuery, ctxs []*engine.Context[seq.SimBits]) (SimResult, error) {
	pv := q.Pattern.Vertices()
	res := make(SimResult, len(pv))
	for _, u := range pv {
		res[u] = nil
	}
	for _, ctx := range ctxs {
		g := ctx.Frag.G
		ctx.VarsAt(func(i int32, m seq.SimBits) {
			if !ctx.IsInnerAt(i) || m == 0 {
				return
			}
			v := g.IDAt(i)
			for m != 0 {
				k := bits.TrailingZeros64(m)
				m &^= 1 << uint(k)
				u := pv[k]
				res[u] = append(res[u], v)
			}
		})
	}
	for u := range res {
		vs := res[u]
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
	return res, nil
}

func parseSim(query string) (SimQuery, error) {
	kv, err := parseKV(query)
	if err != nil {
		return SimQuery{}, err
	}
	p, err := PatternByName(kv["pattern"])
	if err != nil {
		return SimQuery{}, err
	}
	return SimQuery{Pattern: p, name: kv["pattern"]}, nil
}

func init() {
	engine.Register(entry(Sim{},
		"graph pattern matching via simulation (HHK refinement PEval, incremental refinement IncEval, ∩ aggregate)",
		"pattern=<name from queries.Patterns>",
		parseSim,
		func(q SimQuery) string { return "pattern=" + q.name }, nil))
}
