package queries

import (
	"fmt"
	"sort"

	"grape/internal/gen"
	"grape/internal/graph"
)

// Patterns returns the named pattern graphs available to the sim/subiso/gpar
// registry entries — the "enter queries Q ∈ Q" part of the play panel.
// Pattern vertex IDs are small integers; labels reference the generators'
// vocabulary (person/product for social-commerce graphs, empty for unlabeled
// graphs).
func Patterns() map[string]*graph.Graph {
	ps := make(map[string]*graph.Graph)

	// chain3: x -> y -> z (unlabeled)
	chain := graph.New()
	chain.AddVertex(0, "")
	chain.AddVertex(1, "")
	chain.AddVertex(2, "")
	chain.AddEdge(0, 1, 1)
	chain.AddEdge(1, 2, 1)
	ps["chain3"] = chain

	// triangle: directed 3-cycle (unlabeled)
	tri := graph.New()
	tri.AddVertex(0, "")
	tri.AddVertex(1, "")
	tri.AddVertex(2, "")
	tri.AddEdge(0, 1, 1)
	tri.AddEdge(1, 2, 1)
	tri.AddEdge(2, 0, 1)
	ps["triangle"] = tri

	// star3: hub with three out-neighbors (unlabeled)
	star := graph.New()
	star.AddVertex(0, "")
	for i := graph.ID(1); i <= 3; i++ {
		star.AddVertex(i, "")
		star.AddEdge(0, i, 1)
	}
	ps["star3"] = star

	// follows-recommend: person -follow-> person -recommend-> product
	fr := graph.New()
	fr.AddVertex(0, gen.LabelPerson)
	fr.AddVertex(1, gen.LabelPerson)
	fr.AddVertex(2, gen.LabelProduct)
	fr.AddLabeledEdge(0, 1, 1, gen.EdgeFollow)
	fr.AddLabeledEdge(1, 2, 1, gen.EdgeRecommend)
	ps["follows-recommend"] = fr

	// co-recommend: two people who both recommend the same product and one
	// follows the other.
	co := graph.New()
	co.AddVertex(0, gen.LabelPerson)
	co.AddVertex(1, gen.LabelPerson)
	co.AddVertex(2, gen.LabelProduct)
	co.AddLabeledEdge(0, 1, 1, gen.EdgeFollow)
	co.AddLabeledEdge(0, 2, 1, gen.EdgeRecommend)
	co.AddLabeledEdge(1, 2, 1, gen.EdgeRecommend)
	ps["co-recommend"] = co

	return ps
}

// PatternByName resolves a pattern name, with a helpful error listing the
// library.
func PatternByName(name string) (*graph.Graph, error) {
	ps := Patterns()
	if p, ok := ps[name]; ok {
		return p, nil
	}
	names := make([]string, 0, len(ps))
	for n := range ps {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("queries: unknown pattern %q (have %v)", name, names)
}
