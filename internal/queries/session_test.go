package queries

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/seq"
	"grape/internal/transport"
)

// TestSSSPSessionTracksEvolvingGraph drives the paper's actual IncEval
// definition: Q(G ⊕ M) computed from Q(G) and updates M, never re-running
// PEval. Every batch of random edge insertions must leave the session's
// answer equal to Dijkstra on the mutated graph.
func TestSSSPSessionTracksEvolvingGraph(t *testing.T) {
	g := gen.ConnectedRandom(200, 500, 55)
	shadow := g.Clone() // mutated in lockstep, used for ground truth
	s, res, _, err := engine.NewSession(context.Background(), g, SSSP{}, SSSPQuery{Source: 0},
		engine.Options{Workers: 5, Strategy: partition.Fennel{}})
	if err != nil {
		t.Fatal(err)
	}
	check := func(round int, got map[graph.ID]float64) {
		want := seq.Dijkstra(shadow, 0)
		if len(got) != len(want) {
			t.Fatalf("round %d: reach %d vs %d", round, len(got), len(want))
		}
		for v, d := range want {
			if math.Abs(got[v]-d) > 1e-9 {
				t.Fatalf("round %d: vertex %d: %g vs %g", round, v, got[v], d)
			}
		}
	}
	check(0, res)

	rng := rand.New(rand.NewSource(99))
	for round := 1; round <= 5; round++ {
		var batch []engine.EdgeUpdate
		for i := 0; i < 10; i++ {
			u := graph.ID(rng.Intn(200))
			v := graph.ID(rng.Intn(200))
			if u == v {
				continue
			}
			w := 0.5 + rng.Float64()*3
			batch = append(batch, engine.EdgeUpdate{From: u, To: v, W: w})
			shadow.AddEdge(u, v, w)
		}
		got, _, err := s.Update(context.Background(), batch)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		check(round, got)
	}
}

func TestSSSPSessionIncrementalIsCheaperThanRerun(t *testing.T) {
	g := gen.RoadGrid(40, 40, 5)
	s, _, initStats, err := engine.NewSession(context.Background(), g, SSSP{}, SSSPQuery{Source: 0},
		engine.Options{Workers: 8, Strategy: partition.TwoD{Cols: 40}})
	if err != nil {
		t.Fatal(err)
	}
	// one local shortcut in a far corner
	_, updStats, err := s.Update(context.Background(), []engine.EdgeUpdate{{From: 1599, To: 1558, W: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if updStats.TotalWork()*5 > initStats.TotalWork() {
		t.Fatalf("incremental update not bounded: %d vs initial %d",
			updStats.TotalWork(), initStats.TotalWork())
	}
}

func TestSSSPSessionRejectsNegativeWeight(t *testing.T) {
	g := gen.ConnectedRandom(30, 90, 1)
	s, before, _, err := engine.NewSession(context.Background(), g, SSSP{}, SSSPQuery{Source: 0}, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.NumEdges()
	if _, _, err := s.Update(context.Background(), []engine.EdgeUpdate{{From: 0, To: 1, W: -2}}); err == nil {
		t.Fatal("negative weights must be rejected")
	}
	// The rejection happens in the pre-mutation validation (ValidateUpdate),
	// so the graph is untouched and the session stays fully usable — bad
	// input must not cost a long-lived session.
	if s.Broken() {
		t.Fatal("a rejected batch must not break the session")
	}
	if g.NumEdges() != edges {
		t.Fatalf("rejected update mutated the graph: %d edges, had %d", g.NumEdges(), edges)
	}
	after, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("rejected update changed the answer")
	}
	if _, _, err := s.Update(context.Background(), []engine.EdgeUpdate{{From: 0, To: 1, W: 0.5}}); err != nil {
		t.Fatalf("session must keep accepting valid updates after a rejection: %v", err)
	}
}

func TestCCSessionMergesComponents(t *testing.T) {
	// two separate random clusters; an inserted bridge must merge labels
	g := graph.New()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ { // cluster A: 0..49
		g.AddEdge(graph.ID(rng.Intn(50)), graph.ID(rng.Intn(50)), 1)
	}
	for i := 0; i < 50; i++ { // cluster B: 100..149
		g.AddEdge(graph.ID(100+rng.Intn(50)), graph.ID(100+rng.Intn(50)), 1)
	}
	shadow := g.Clone()
	s, res, _, err := engine.NewSession(context.Background(), g, CC{}, CCQuery{}, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst := func(round int, got map[graph.ID]graph.ID) {
		want := seq.Components(shadow)
		for v, c := range want {
			if got[v] != c {
				t.Fatalf("round %d: vertex %d: %d vs %d", round, v, got[v], c)
			}
		}
	}
	checkAgainst(0, res)

	// bridge the clusters
	shadow.AddEdge(40, 110, 1)
	res, _, err = s.Update(context.Background(), []engine.EdgeUpdate{{From: 40, To: 110, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(1, res)

	// a few more random inserts, including intra-cluster no-ops
	for round := 2; round <= 4; round++ {
		u := graph.ID(rng.Intn(50))
		v := graph.ID(100 + rng.Intn(50))
		shadow.AddEdge(u, v, 1)
		res, _, err = s.Update(context.Background(), []engine.EdgeUpdate{{From: u, To: v, W: 1}})
		if err != nil {
			t.Fatal(err)
		}
		checkAgainst(round, res)
	}
}

func TestCCSessionEvolvingProperty(t *testing.T) {
	// randomized: repeatedly insert edges between random vertices and
	// compare against sequential CC on the shadow graph
	g := gen.Random(120, 150, 77) // sparse: many components
	shadow := g.Clone()
	s, _, _, err := engine.NewSession(context.Background(), g, CC{}, CCQuery{}, engine.Options{Workers: 6, Strategy: partition.Hash{}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 8; round++ {
		var batch []engine.EdgeUpdate
		for i := 0; i < 5; i++ {
			u := graph.ID(rng.Intn(120))
			v := graph.ID(rng.Intn(120))
			if u == v {
				continue
			}
			batch = append(batch, engine.EdgeUpdate{From: u, To: v, W: 1})
			shadow.AddEdge(u, v, 1)
		}
		got, _, err := s.Update(context.Background(), batch)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := seq.Components(shadow)
		for v, c := range want {
			if got[v] != c {
				t.Fatalf("round %d: vertex %d: got %d want %d", round, v, got[v], c)
			}
		}
	}
}

// sessionCase is one class's session-equivalence run: a deterministic graph
// builder, a query, and an update-stream shape. Cases with DeleteP 0 pin
// the seeded-IncEval insert path, DeleteP 1 the delete-repair path, and
// mixed streams whatever route each class picks per batch (repair, patch,
// or reseed).
type sessionCase struct {
	name    string
	program string
	query   string
	build   func() *graph.Graph
	stream  gen.StreamConfig
}

func sessionCases() []sessionCase {
	social := func() *graph.Graph {
		g := gen.PreferentialAttachment(220, 3, 7)
		gen.AttachKeywords(g, []string{"db", "graph", "ml"}, 2, 0.3, 7)
		return g
	}
	commerce := func() *graph.Graph {
		return gen.SocialCommerce(gen.SocialCommerceConfig{People: 90, Products: 3, Follows: 3, AdoptP: 0.9, Seed: 3})
	}
	road := func() *graph.Graph { return gen.RoadGrid(10, 10, 1) }
	return []sessionCase{
		{"sssp", "sssp", "source=0", road,
			gen.StreamConfig{Batches: 4, BatchSize: 6, DeleteP: 0.4, Seed: 11}},
		{"sssp/inserts", "sssp", "source=0", road,
			gen.StreamConfig{Batches: 3, BatchSize: 6, DeleteP: 0, Seed: 18}},
		{"cc", "cc", "", func() *graph.Graph { return gen.Random(120, 220, 5) },
			gen.StreamConfig{Batches: 4, BatchSize: 6, DeleteP: 0.5, Seed: 12}},
		{"sim", "sim", "pattern=follows-recommend", commerce,
			gen.StreamConfig{Batches: 4, BatchSize: 5, DeleteP: 0.5, Seed: 13}},
		{"sim/deletes", "sim", "pattern=follows-recommend", commerce,
			gen.StreamConfig{Batches: 3, BatchSize: 5, DeleteP: 1, Seed: 19}},
		{"subiso", "subiso", "pattern=follows-recommend", commerce,
			gen.StreamConfig{Batches: 3, BatchSize: 4, DeleteP: 0.5, Seed: 14}},
		{"keyword", "keyword", "k=db,graph bound=4", social,
			gen.StreamConfig{Batches: 4, BatchSize: 6, DeleteP: 0.4, Seed: 15}},
		{"keyword/inserts", "keyword", "k=db,graph bound=4", social,
			gen.StreamConfig{Batches: 3, BatchSize: 6, DeleteP: 0, Seed: 20}},
		{"cf", "cf", "epochs=3", func() *graph.Graph {
			return gen.DirectedRatings(gen.RatingsConfig{Users: 30, Items: 12, RatingsPerUser: 6, Factors: 3, Noise: 0.1, Seed: 5})
		}, gen.StreamConfig{Batches: 3, BatchSize: 5, DeleteP: 0.4, Seed: 16, MaxW: 5}},
		{"tricount", "tricount", "", social,
			gen.StreamConfig{Batches: 4, BatchSize: 6, DeleteP: 0.5, Seed: 17}},
	}
}

// startSessionWorkers brings up n in-process workers on real TCP sockets —
// the socket-substrate half of the equivalence check, running the same code
// path as cmd/grape-worker (engine.ServeWorker over transport.Dial).
func startSessionWorkers(t *testing.T, n int) (*transport.Coordinator, func()) {
	t.Helper()
	l, err := transport.NewListener("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := transport.Dial("tcp", addr, 5*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			errs[i] = engine.ServeWorker(context.Background(), conn)
		}(i)
	}
	tr, err := l.AcceptWorkers(n, 10*time.Second)
	if err != nil {
		l.Close()
		t.Fatal(err)
	}
	finish := func() {
		tr.Close()
		l.Close()
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}
	}
	return tr, finish
}

// TestSessionEquivalence is the session-equivalence harness over every
// registered query class: replay a random insert/delete stream through an
// incremental session and require its answer after every batch to be
// identical (reflect.DeepEqual) to a from-scratch engine run on a shadow
// graph mutated in lockstep — and, after the final batch, to a from-scratch
// run over the socket transport as well.
func TestSessionEquivalence(t *testing.T) {
	const workers = 4
	for _, c := range sessionCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			e, err := engine.Lookup(c.program)
			if err != nil {
				t.Fatal(err)
			}
			pq, err := e.Parse(c.query)
			if err != nil {
				t.Fatal(err)
			}
			opts := engine.Options{Workers: workers, Strategy: partition.Hash{}}
			g := c.build()
			shadow := g.Clone()
			fresh := func(tg *graph.Graph, o engine.Options) any {
				t.Helper()
				want, _, err := e.Run(context.Background(), tg, o, c.query)
				if err != nil {
					t.Fatalf("fresh run: %v", err)
				}
				return want
			}
			stream := gen.UpdateStream(g, c.stream)
			sess, res0, _, err := e.Session(context.Background(), g, opts, pq)
			if err != nil {
				t.Fatal(err)
			}
			if want := fresh(shadow, opts); !reflect.DeepEqual(res0, want) {
				t.Fatal("initial session result differs from a fresh run")
			}
			var want any
			for bi, batch := range stream {
				ups := make([]engine.EdgeUpdate, len(batch))
				for i, u := range batch {
					ups[i] = engine.EdgeUpdate{From: u.From, To: u.To, W: u.W, Label: u.Label, Del: u.Del}
				}
				res, _, err := sess.Update(context.Background(), ups)
				if err != nil {
					t.Fatalf("batch %d: %v", bi, err)
				}
				// the shadow replays the same operations in the same order,
				// so first-instance deletion resolves identically
				for _, u := range batch {
					if u.Del {
						if _, ok := shadow.RemoveEdge(u.From, u.To, u.Label); !ok {
							t.Fatalf("batch %d: shadow delete found no edge %+v", bi, u)
						}
					} else {
						shadow.AddLabeledEdge(u.From, u.To, u.W, u.Label)
					}
				}
				want = fresh(shadow, opts)
				if !reflect.DeepEqual(res, want) {
					t.Fatalf("batch %d: session update result differs from a fresh run on the mutated graph", bi)
				}
				got, err := sess.Result()
				if err != nil {
					t.Fatalf("batch %d: Result: %v", bi, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("batch %d: retained session result differs from a fresh run", bi)
				}
			}
			if sess.Broken() {
				t.Fatal("session broken after a clean stream")
			}
			// socket substrate: the final retained answer must also match a
			// from-scratch distributed run on the mutated graph
			tr, finish := startSessionWorkers(t, workers)
			defer finish()
			wireWant := fresh(shadow, engine.Options{Workers: workers, Strategy: partition.Hash{}, Transport: tr})
			if !reflect.DeepEqual(want, wireWant) {
				t.Fatal("bus and wire fresh runs disagree on the mutated graph")
			}
			final, err := sess.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(final, wireWant) {
				t.Fatal("final session result differs from a from-scratch socket-substrate run")
			}
		})
	}
}

// FuzzSessionUpdateStream throws arbitrary update streams — mixed inserts,
// deletions, unknown vertices, dead edges — at a CC session. Invariants:
// no panic; a rejected batch (error without Broken) leaves the graph
// unmutated and the session usable; an accepted batch leaves the session's
// answer identical to sequential union-find on a shadow graph; once Broken,
// every further Update fails with ErrSessionBroken.
func FuzzSessionUpdateStream(f *testing.F) {
	f.Add([]byte{1, 2, 30, 0, 3, 4, 31, 1})
	f.Add([]byte{0, 1, 5, 0, 0, 1, 5, 1, 0, 1, 5, 1})       // insert, delete it, delete again (dead)
	f.Add([]byte{200, 1, 5, 0})                             // unknown vertex
	f.Add([]byte{9, 9, 1, 0, 7, 3, 0, 1, 2, 2, 2, 0, 1, 1}) // self-loop, delete, trailing garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		g := gen.Random(24, 60, 1)
		shadow := g.Clone()
		sess, _, _, err := engine.NewSession(context.Background(), g, CC{}, CCQuery{},
			engine.Options{Workers: 3, Strategy: partition.Hash{}})
		if err != nil {
			t.Fatal(err)
		}
		const rec = 4 // from, to, weight, flags
		for off := 0; off+rec <= len(data); {
			var batch []engine.EdgeUpdate
			for len(batch) < 3 && off+rec <= len(data) {
				b := data[off : off+rec]
				off += rec
				batch = append(batch, engine.EdgeUpdate{
					From: graph.ID(b[0] % 32), // 24..31 are unknown vertices
					To:   graph.ID(b[1] % 32),
					W:    float64(b[2]),
					Del:  b[3]&1 == 1,
				})
			}
			edgesBefore := g.NumEdges()
			res, _, err := sess.Update(context.Background(), batch)
			if err != nil {
				if !sess.Broken() {
					// validation rejection: nothing may have been applied
					if g.NumEdges() != edgesBefore {
						t.Fatalf("rejected batch mutated the graph: %d -> %d edges", edgesBefore, g.NumEdges())
					}
					continue
				}
				// broken sessions must stay broken with the sentinel error
				if _, _, err := sess.Update(context.Background(), []engine.EdgeUpdate{{From: 0, To: 1, W: 1}}); !errorsIsSessionBroken(err) {
					t.Fatalf("broken session Update returned %v, want ErrSessionBroken", err)
				}
				return
			}
			for _, u := range batch {
				if u.Del {
					if _, ok := shadow.RemoveEdge(u.From, u.To, u.Label); !ok {
						t.Fatalf("session accepted deletion of dead edge %+v", u)
					}
				} else {
					shadow.AddLabeledEdge(u.From, u.To, u.W, u.Label)
				}
			}
			want := seq.Components(shadow)
			got := res
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("session CC diverged from sequential union-find after batch %+v", batch)
			}
		}
	})
}

func errorsIsSessionBroken(err error) bool {
	for ; err != nil; err = func() error {
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil
		}
		return u.Unwrap()
	}() {
		if err == engine.ErrSessionBroken {
			return true
		}
	}
	return false
}
