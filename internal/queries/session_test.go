package queries

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/seq"
)

// TestSSSPSessionTracksEvolvingGraph drives the paper's actual IncEval
// definition: Q(G ⊕ M) computed from Q(G) and updates M, never re-running
// PEval. Every batch of random edge insertions must leave the session's
// answer equal to Dijkstra on the mutated graph.
func TestSSSPSessionTracksEvolvingGraph(t *testing.T) {
	g := gen.ConnectedRandom(200, 500, 55)
	shadow := g.Clone() // mutated in lockstep, used for ground truth
	s, res, _, err := engine.NewSession(context.Background(), g, SSSP{}, SSSPQuery{Source: 0},
		engine.Options{Workers: 5, Strategy: partition.Fennel{}})
	if err != nil {
		t.Fatal(err)
	}
	check := func(round int, got map[graph.ID]float64) {
		want := seq.Dijkstra(shadow, 0)
		if len(got) != len(want) {
			t.Fatalf("round %d: reach %d vs %d", round, len(got), len(want))
		}
		for v, d := range want {
			if math.Abs(got[v]-d) > 1e-9 {
				t.Fatalf("round %d: vertex %d: %g vs %g", round, v, got[v], d)
			}
		}
	}
	check(0, res)

	rng := rand.New(rand.NewSource(99))
	for round := 1; round <= 5; round++ {
		var batch []engine.EdgeUpdate
		for i := 0; i < 10; i++ {
			u := graph.ID(rng.Intn(200))
			v := graph.ID(rng.Intn(200))
			if u == v {
				continue
			}
			w := 0.5 + rng.Float64()*3
			batch = append(batch, engine.EdgeUpdate{From: u, To: v, W: w})
			shadow.AddEdge(u, v, w)
		}
		got, _, err := s.Update(context.Background(), batch)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		check(round, got)
	}
}

func TestSSSPSessionIncrementalIsCheaperThanRerun(t *testing.T) {
	g := gen.RoadGrid(40, 40, 5)
	s, _, initStats, err := engine.NewSession(context.Background(), g, SSSP{}, SSSPQuery{Source: 0},
		engine.Options{Workers: 8, Strategy: partition.TwoD{Cols: 40}})
	if err != nil {
		t.Fatal(err)
	}
	// one local shortcut in a far corner
	_, updStats, err := s.Update(context.Background(), []engine.EdgeUpdate{{From: 1599, To: 1558, W: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if updStats.TotalWork()*5 > initStats.TotalWork() {
		t.Fatalf("incremental update not bounded: %d vs initial %d",
			updStats.TotalWork(), initStats.TotalWork())
	}
}

func TestSSSPSessionRejectsNegativeWeight(t *testing.T) {
	g := gen.ConnectedRandom(30, 90, 1)
	s, before, _, err := engine.NewSession(context.Background(), g, SSSP{}, SSSPQuery{Source: 0}, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.NumEdges()
	if _, _, err := s.Update(context.Background(), []engine.EdgeUpdate{{From: 0, To: 1, W: -2}}); err == nil {
		t.Fatal("negative weights must be rejected")
	}
	// The rejection happens in the pre-mutation validation (ValidateUpdate),
	// so the graph is untouched and the session stays fully usable — bad
	// input must not cost a long-lived session.
	if s.Broken() {
		t.Fatal("a rejected batch must not break the session")
	}
	if g.NumEdges() != edges {
		t.Fatalf("rejected update mutated the graph: %d edges, had %d", g.NumEdges(), edges)
	}
	after, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("rejected update changed the answer")
	}
	if _, _, err := s.Update(context.Background(), []engine.EdgeUpdate{{From: 0, To: 1, W: 0.5}}); err != nil {
		t.Fatalf("session must keep accepting valid updates after a rejection: %v", err)
	}
}

func TestCCSessionMergesComponents(t *testing.T) {
	// two separate random clusters; an inserted bridge must merge labels
	g := graph.New()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ { // cluster A: 0..49
		g.AddEdge(graph.ID(rng.Intn(50)), graph.ID(rng.Intn(50)), 1)
	}
	for i := 0; i < 50; i++ { // cluster B: 100..149
		g.AddEdge(graph.ID(100+rng.Intn(50)), graph.ID(100+rng.Intn(50)), 1)
	}
	shadow := g.Clone()
	s, res, _, err := engine.NewSession(context.Background(), g, CC{}, CCQuery{}, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst := func(round int, got map[graph.ID]graph.ID) {
		want := seq.Components(shadow)
		for v, c := range want {
			if got[v] != c {
				t.Fatalf("round %d: vertex %d: %d vs %d", round, v, got[v], c)
			}
		}
	}
	checkAgainst(0, res)

	// bridge the clusters
	shadow.AddEdge(40, 110, 1)
	res, _, err = s.Update(context.Background(), []engine.EdgeUpdate{{From: 40, To: 110, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainst(1, res)

	// a few more random inserts, including intra-cluster no-ops
	for round := 2; round <= 4; round++ {
		u := graph.ID(rng.Intn(50))
		v := graph.ID(100 + rng.Intn(50))
		shadow.AddEdge(u, v, 1)
		res, _, err = s.Update(context.Background(), []engine.EdgeUpdate{{From: u, To: v, W: 1}})
		if err != nil {
			t.Fatal(err)
		}
		checkAgainst(round, res)
	}
}

func TestCCSessionEvolvingProperty(t *testing.T) {
	// randomized: repeatedly insert edges between random vertices and
	// compare against sequential CC on the shadow graph
	g := gen.Random(120, 150, 77) // sparse: many components
	shadow := g.Clone()
	s, _, _, err := engine.NewSession(context.Background(), g, CC{}, CCQuery{}, engine.Options{Workers: 6, Strategy: partition.Hash{}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 8; round++ {
		var batch []engine.EdgeUpdate
		for i := 0; i < 5; i++ {
			u := graph.ID(rng.Intn(120))
			v := graph.ID(rng.Intn(120))
			if u == v {
				continue
			}
			batch = append(batch, engine.EdgeUpdate{From: u, To: v, W: 1})
			shadow.AddEdge(u, v, 1)
		}
		got, _, err := s.Update(context.Background(), batch)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := seq.Components(shadow)
		for v, c := range want {
			if got[v] != c {
				t.Fatalf("round %d: vertex %d: got %d want %d", round, v, got[v], c)
			}
		}
	}
}
