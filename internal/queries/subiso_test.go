package queries

import (
	"context"
	"testing"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/seq"
)

func matchesEqual(a, b []seq.Match, p *graph.Graph) bool {
	if len(a) != len(b) {
		return false
	}
	pv := p.SortedVertices()
	for i := range a {
		for _, u := range pv {
			if a[i][u] != b[i][u] {
				return false
			}
		}
	}
	return true
}

func TestSubIsoMatchesSequential(t *testing.T) {
	labels := []string{"a", "b", "c"}
	g := labeledRandom(80, 240, 13, labels)
	p := graph.New()
	p.AddVertex(0, "a")
	p.AddVertex(1, "b")
	p.AddVertex(2, "c")
	p.AddEdge(0, 1, 1)
	p.AddEdge(1, 2, 1)

	want, _ := seq.SubIso(p, g, seq.SubIsoOptions{})
	sortMatches(p, want)
	for _, n := range []int{1, 2, 4, 6} {
		got, stats, err := RunSubIso(context.Background(), g, SubIsoQuery{Pattern: p}, engine.Options{Workers: n, Strategy: partition.Hash{}})
		if err != nil {
			t.Fatalf("workers=%d: %v", n, err)
		}
		if !matchesEqual(want, got, p) {
			t.Fatalf("workers=%d: %d matches, want %d", n, len(got), len(want))
		}
		if stats.Supersteps != 1 {
			t.Fatalf("subiso should finish in one superstep, took %d", stats.Supersteps)
		}
	}
}

func TestSubIsoTriangleOnDirectedCycle(t *testing.T) {
	// a single directed 6-cycle contains no triangle; adding chords creates
	// exactly the expected ones
	g := graph.New()
	for i := graph.ID(0); i < 6; i++ {
		g.AddVertex(i, "")
	}
	for i := graph.ID(0); i < 6; i++ {
		g.AddEdge(i, (i+1)%6, 1)
	}
	p, _ := PatternByName("triangle")
	got, _, err := RunSubIso(context.Background(), g, SubIsoQuery{Pattern: p}, engine.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("6-cycle has no directed triangle, got %d", len(got))
	}
	g.AddEdge(2, 0, 1) // 0->1->2->0
	got, _, err = RunSubIso(context.Background(), g, SubIsoQuery{Pattern: p}, engine.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// each directed triangle is found 3 times (rotations are distinct maps)
	if len(got) != 3 {
		t.Fatalf("want 3 rotated embeddings of the triangle, got %d", len(got))
	}
}

func TestSubIsoMaxMatches(t *testing.T) {
	g := labeledRandom(60, 240, 17, []string{"a", "b"})
	p := graph.New()
	p.AddVertex(0, "a")
	p.AddVertex(1, "b")
	p.AddEdge(0, 1, 1)
	all, _ := seq.SubIso(p, g, seq.SubIsoOptions{})
	if len(all) < 5 {
		t.Skip("graph too sparse for this seed")
	}
	got, _, err := RunSubIso(context.Background(), g, SubIsoQuery{Pattern: p, MaxMatches: 5}, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("want capped 5 matches, got %d", len(got))
	}
}

func TestSubIsoAnchorsPartitionMatchesExactlyOnce(t *testing.T) {
	// The same match must not be reported by two fragments. Compare against
	// sequential with heavy fragmentation.
	g := labeledRandom(50, 200, 23, []string{"a", "b"})
	p := graph.New()
	p.AddVertex(0, "a")
	p.AddVertex(1, "a")
	p.AddVertex(2, "b")
	p.AddEdge(0, 1, 1)
	p.AddEdge(1, 2, 1)
	want, _ := seq.SubIso(p, g, seq.SubIsoOptions{})
	sortMatches(p, want)
	got, _, err := RunSubIso(context.Background(), g, SubIsoQuery{Pattern: p}, engine.Options{Workers: 10, Strategy: partition.Hash{}})
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(want, got, p) {
		t.Fatalf("duplicate or missing matches: got %d want %d", len(got), len(want))
	}
}
