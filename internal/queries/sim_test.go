package queries

import (
	"context"
	"testing"
	"testing/quick"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/seq"
)

func labeledRandom(n, m int, seed int64, labels []string) *graph.Graph {
	g := gen.Random(n, m, seed)
	for i, v := range g.SortedVertices() {
		// deterministic label assignment
		g.AddVertex(v, labels[(uint(i)*7+uint(seed))%uint(len(labels))])
	}
	return g
}

func simEqual(a, b map[graph.ID][]graph.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for u, va := range a {
		vb := b[u]
		if len(va) != len(vb) {
			return false
		}
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
	}
	return true
}

func TestSimMatchesSequential(t *testing.T) {
	labels := []string{"a", "b", "c"}
	g := labeledRandom(150, 450, 21, labels)

	p := graph.New()
	p.AddVertex(0, "a")
	p.AddVertex(1, "b")
	p.AddVertex(2, "c")
	p.AddEdge(0, 1, 1)
	p.AddEdge(1, 2, 1)
	p.AddEdge(2, 1, 1)

	want := seq.Sim(p, g)
	for _, strat := range partition.Strategies() {
		for _, n := range []int{1, 2, 4, 7} {
			got, _, err := engine.Run(context.Background(), g, Sim{}, SimQuery{Pattern: p},
				engine.Options{Workers: n, Strategy: strat, CheckMonotonic: true})
			if err != nil {
				t.Fatalf("%s/%d: %v", strat.Name(), n, err)
			}
			if !simEqual(want, map[graph.ID][]graph.ID(got)) {
				t.Fatalf("%s/%d: sim mismatch: want %v got %v", strat.Name(), n, want, got)
			}
		}
	}
}

func TestSimEmptyResult(t *testing.T) {
	g := labeledRandom(40, 60, 5, []string{"x", "y"})
	p := graph.New()
	p.AddVertex(0, "zzz") // label absent from g
	p.AddVertex(1, "x")
	p.AddEdge(0, 1, 1)
	got, _, err := engine.Run(context.Background(), g, Sim{}, SimQuery{Pattern: p}, engine.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 0 {
		t.Fatalf("expected empty sim for absent label, got %v", got[0])
	}
	// regression: pattern vertices with empty sim sets must still appear as
	// keys, matching the sequential result's shape
	if _, ok := got[0]; !ok {
		t.Fatal("empty sim set must be present in the result map")
	}
	if len(got) != p.NumVertices() {
		t.Fatalf("result should cover all %d pattern vertices, got %d", p.NumVertices(), len(got))
	}
}

func TestSimRejectsBadPatterns(t *testing.T) {
	g := labeledRandom(10, 10, 1, []string{"a"})
	if _, _, err := engine.Run(context.Background(), g, Sim{}, SimQuery{}, engine.Options{Workers: 2}); err == nil {
		t.Fatal("expected error for nil pattern")
	}
	big := graph.New()
	for i := graph.ID(0); i < 70; i++ {
		big.AddVertex(i, "a")
	}
	if _, _, err := engine.Run(context.Background(), g, Sim{}, SimQuery{Pattern: big}, engine.Options{Workers: 2}); err == nil {
		t.Fatal("expected error for oversized pattern")
	}
}

func TestSimPropertyMatchesSequential(t *testing.T) {
	labels := []string{"a", "b"}
	p := graph.New()
	p.AddVertex(0, "a")
	p.AddVertex(1, "b")
	p.AddEdge(0, 1, 1)

	f := func(seed int64, nw uint8) bool {
		n := 5 + int(uint(seed)%40)
		g := labeledRandom(n, 2*n, seed, labels)
		want := seq.Sim(p, g)
		got, _, err := engine.Run(context.Background(), g, Sim{}, SimQuery{Pattern: p},
			engine.Options{Workers: 1 + int(nw%5), Strategy: partition.Fennel{}, CheckMonotonic: true})
		if err != nil {
			return false
		}
		return simEqual(want, map[graph.ID][]graph.ID(got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSimOnSocialCommerce(t *testing.T) {
	g := gen.SocialCommerce(gen.SocialCommerceConfig{People: 200, Products: 10, Follows: 3, AdoptP: 0.8, Seed: 3})
	p, err := PatternByName("follows-recommend")
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Sim(p, g)
	got, _, err := engine.Run(context.Background(), g, Sim{}, SimQuery{Pattern: p}, engine.Options{Workers: 4, CheckMonotonic: true})
	if err != nil {
		t.Fatal(err)
	}
	if !simEqual(want, map[graph.ID][]graph.ID(got)) {
		t.Fatal("sim mismatch on social-commerce graph")
	}
	if len(got[2]) == 0 {
		t.Fatal("expected some recommended products in simulation result")
	}
}
