package queries

import (
	"context"
	"testing"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/partition"
	"grape/internal/seq"
)

func ratingsGraph(seed int64) *gen.RatingsConfig {
	return &gen.RatingsConfig{Users: 120, Items: 40, RatingsPerUser: 12, Factors: 4, Noise: 0.1, Seed: seed}
}

func TestCFLearnsSignal(t *testing.T) {
	g := gen.Ratings(*ratingsGraph(5))
	cfg := seq.DefaultCFConfig()
	cfg.Epochs = 15
	res, stats, err := engine.Run(context.Background(), g, CF{}, CFQuery{Cfg: cfg}, engine.Options{Workers: 4, Strategy: partition.Hash{}})
	if err != nil {
		t.Fatal(err)
	}
	// Initial factors ~0.05 predict ~0.02 for ratings centered at 3:
	// RMSE ~3. After training it must be far below that.
	if res.RMSE > 1.5 {
		t.Fatalf("CF failed to learn: RMSE %.3f", res.RMSE)
	}
	if stats.Supersteps < cfg.Epochs {
		t.Fatalf("expected ~one superstep per epoch, got %d for %d epochs", stats.Supersteps, cfg.Epochs)
	}
	if len(res.Factors) != g.NumVertices() {
		t.Fatalf("factors for %d vertices, want %d", len(res.Factors), g.NumVertices())
	}
}

func TestCFSingleWorkerMatchesSequentialShape(t *testing.T) {
	g := gen.Ratings(*ratingsGraph(9))
	cfg := seq.DefaultCFConfig()
	cfg.Epochs = 10
	res, stats, err := engine.Run(context.Background(), g, CF{}, CFQuery{Cfg: cfg}, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, seqRMSE := seq.TrainCF(g, seq.UsersOf(g), cfg)
	// Different init path but same algorithm class: both should converge to
	// a similar fit on planted data.
	if res.RMSE > seqRMSE*2+0.5 {
		t.Fatalf("parallel CF (%.3f) far from sequential (%.3f)", res.RMSE, seqRMSE)
	}
	if stats.Supersteps != 1 {
		t.Fatalf("single borderless worker should finish in PEval, got %d supersteps", stats.Supersteps)
	}
}

func TestCFMoreEpochsFitBetter(t *testing.T) {
	g := gen.Ratings(*ratingsGraph(7))
	short := seq.DefaultCFConfig()
	short.Epochs = 2
	long := seq.DefaultCFConfig()
	long.Epochs = 25
	rShort, _, err := engine.Run(context.Background(), g, CF{}, CFQuery{Cfg: short}, engine.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	rLong, _, err := engine.Run(context.Background(), g, CF{}, CFQuery{Cfg: long}, engine.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rLong.RMSE >= rShort.RMSE {
		t.Fatalf("more epochs should fit better: %d epochs %.3f vs %d epochs %.3f",
			long.Epochs, rLong.RMSE, short.Epochs, rShort.RMSE)
	}
}

func TestCFRejectsBadConfig(t *testing.T) {
	g := gen.Ratings(*ratingsGraph(1))
	if _, _, err := engine.Run(context.Background(), g, CF{}, CFQuery{}, engine.Options{Workers: 2}); err == nil {
		t.Fatal("expected error for zero config")
	}
}

func TestCFDeterministicAcrossRuns(t *testing.T) {
	g := gen.Ratings(*ratingsGraph(3))
	cfg := seq.DefaultCFConfig()
	cfg.Epochs = 5
	r1, _, err := engine.Run(context.Background(), g, CF{}, CFQuery{Cfg: cfg}, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := engine.Run(context.Background(), g, CF{}, CFQuery{Cfg: cfg}, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1.RMSE != r2.RMSE {
		t.Fatalf("nondeterministic CF: %.9f vs %.9f", r1.RMSE, r2.RMSE)
	}
}
