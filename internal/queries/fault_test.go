package queries_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/queries"
	"grape/internal/seq"
)

// faultCase is one query class run end to end; run is substrate-agnostic so
// the same closure drives the clean reference and every faulted variant.
type faultCase struct {
	name string
	run  func(opts engine.Options) (any, *metrics.Stats, error)
}

// faultCases mirrors the seven-class equivalence matrix of the wire tests
// (internal/transport/wire_test.go) with smaller graphs: the sweep runs
// every class against several fault plans under -race.
func faultCases() []faultCase {
	ssspG := gen.RoadGrid(16, 16, 1)
	ccG := gen.PreferentialAttachment(300, 3, 2)
	simG := gen.Random(120, 360, 21)
	simLabels := []string{"a", "b", "c"}
	for i, v := range simG.SortedVertices() {
		simG.AddVertex(v, simLabels[i%len(simLabels)])
	}
	simP := graph.New()
	simP.AddVertex(0, "a")
	simP.AddVertex(1, "b")
	simP.AddEdge(0, 1, 1)
	simP.AddEdge(1, 0, 1)
	subG := gen.Random(80, 240, 3)
	subLabels := []string{"x", "y"}
	for i, v := range subG.SortedVertices() {
		subG.AddVertex(v, subLabels[i%len(subLabels)])
	}
	subP := graph.New()
	subP.AddVertex(0, "x")
	subP.AddVertex(1, "y")
	subP.AddEdge(0, 1, 1)
	kwG := gen.PreferentialAttachment(250, 3, 5)
	gen.AttachKeywords(kwG, []string{"db", "graph", "ml"}, 2, 0.15, 31)
	kwQ := queries.KeywordQuery{Keywords: []string{"db", "graph"}, Bound: 12, UseIndex: true}
	cfG := gen.Ratings(gen.RatingsConfig{Users: 40, Items: 12, RatingsPerUser: 6, Factors: 4, Noise: 0.1, Seed: 5})
	cfCfg := seq.DefaultCFConfig()
	cfCfg.Epochs = 3
	triG := gen.Random(100, 400, 7)
	return []faultCase{
		{"sssp", func(opts engine.Options) (any, *metrics.Stats, error) {
			return wrapAny(engine.Run(context.Background(), ssspG, queries.SSSP{}, queries.SSSPQuery{Source: 0}, opts))
		}},
		{"cc", func(opts engine.Options) (any, *metrics.Stats, error) {
			return wrapAny(engine.Run(context.Background(), ccG, queries.CC{}, queries.CCQuery{}, opts))
		}},
		{"sim", func(opts engine.Options) (any, *metrics.Stats, error) {
			return wrapAny(engine.Run(context.Background(), simG, queries.Sim{}, queries.SimQuery{Pattern: simP}, opts))
		}},
		{"subiso", func(opts engine.Options) (any, *metrics.Stats, error) {
			return wrapAny(queries.RunSubIso(context.Background(), subG, queries.SubIsoQuery{Pattern: subP}, opts))
		}},
		{"keyword", func(opts engine.Options) (any, *metrics.Stats, error) {
			return wrapAny(engine.Run(context.Background(), kwG, queries.Keyword{}, kwQ, opts))
		}},
		{"cf", func(opts engine.Options) (any, *metrics.Stats, error) {
			return wrapAny(engine.Run(context.Background(), cfG, queries.CF{}, queries.CFQuery{Cfg: cfCfg}, opts))
		}},
		{"tricount", func(opts engine.Options) (any, *metrics.Stats, error) {
			return wrapAny(queries.RunTriCount(context.Background(), triG, opts))
		}},
	}
}

func wrapAny[R any](res R, stats *metrics.Stats, err error) (any, *metrics.Stats, error) {
	return res, stats, err
}

// checkFaultedRun asserts a faulted-but-recovered run is indistinguishable
// from the clean one: same result bytes and the same superstep schedule,
// message count, and traffic profile — recovery must not leak into any
// deterministic observable.
func checkFaultedRun(t *testing.T, label string, cleanRes, res any, clean, stats *metrics.Stats) {
	t.Helper()
	if !reflect.DeepEqual(cleanRes, res) {
		t.Fatalf("%s: result differs from the failure-free run:\nclean: %v\ngot:   %v", label, cleanRes, res)
	}
	if clean.Supersteps != stats.Supersteps {
		t.Fatalf("%s: supersteps %d, clean run took %d", label, stats.Supersteps, clean.Supersteps)
	}
	if clean.Messages != stats.Messages || clean.Bytes != stats.Bytes {
		t.Fatalf("%s: traffic %d msgs / %d bytes, clean run %d / %d",
			label, stats.Messages, stats.Bytes, clean.Messages, clean.Bytes)
	}
	if !reflect.DeepEqual(clean.WorkPerStep, stats.WorkPerStep) {
		t.Fatalf("%s: work profile differs:\nclean: %v\ngot:   %v", label, clean.WorkPerStep, stats.WorkPerStep)
	}
	if !reflect.DeepEqual(clean.BytesPerStep, stats.BytesPerStep) {
		t.Fatalf("%s: per-step traffic differs:\nclean: %v\ngot:   %v", label, clean.BytesPerStep, stats.BytesPerStep)
	}
}

// TestFaultRecoveryEquivalence kills (or delays) one worker at a planned
// superstep in every query class and asserts the recovered run is
// byte-identical to the failure-free one: same result, same superstep count,
// same message/byte totals and per-step profiles. Deaths must be recorded in
// stats.Recoveries; a delay is a straggler, not a death, and must not be.
func TestFaultRecoveryEquivalence(t *testing.T) {
	const workers = 4
	plans := []struct {
		name   string
		faults []mpi.Fault
		deaths int
	}{
		{"sever-w1-s2", []mpi.Fault{{Step: 2, Worker: 1, Kind: mpi.Sever}}, 1},
		{"drop-w2-s2", []mpi.Fault{{Step: 2, Worker: 2, Kind: mpi.Drop}}, 1},
		{"delay-w0-s2", []mpi.Fault{{Step: 2, Worker: 0, Kind: mpi.Delay, Delay: 2 * time.Millisecond}}, 0},
		{"sever-w3-s3", []mpi.Fault{{Step: 3, Worker: 3, Kind: mpi.Sever}}, 1},
		{"sever-w1-s1", []mpi.Fault{{Step: 1, Worker: 1, Kind: mpi.Sever}}, 1},
	}
	for _, c := range faultCases() {
		t.Run(c.name, func(t *testing.T) {
			cleanRes, clean, err := c.run(engine.Options{Workers: workers})
			if err != nil {
				t.Fatalf("clean run: %v", err)
			}
			for _, p := range plans {
				t.Run(p.name, func(t *testing.T) {
					var ft *mpi.FaultTransport
					res, stats, err := c.run(engine.Options{
						Workers: workers,
						Recover: true,
						Fault: func(tr mpi.Transport) mpi.Transport {
							ft = mpi.NewFaultTransport(tr, p.faults...)
							return ft
						},
					})
					if err != nil {
						t.Fatalf("faulted run: %v", err)
					}
					checkFaultedRun(t, p.name, cleanRes, res, clean, stats)
					// A fault can only strike a run that reaches its
					// superstep (tricount converges in one step, so
					// step-2 plans never fire there).
					canFire := clean.Supersteps >= p.faults[0].Step
					if p.deaths > 0 && canFire {
						if ft.Fired() == 0 {
							t.Fatalf("fault never fired (run took %d supersteps)", stats.Supersteps)
						}
						if len(stats.Recoveries) == 0 {
							t.Fatalf("worker died but stats.Recoveries is empty")
						}
					} else if len(stats.Recoveries) != 0 {
						t.Fatalf("no-death plan triggered recoveries: %+v", stats.Recoveries)
					}
				})
			}
		})
	}
}

// TestFaultWithoutRecoveryFailsClassified: with Options.Recover off, a
// worker death must fail the run with the classified worker-fatal error —
// never hang, never return a partial answer.
func TestFaultWithoutRecoveryFailsClassified(t *testing.T) {
	g := gen.RoadGrid(16, 16, 1)
	_, _, err := engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0},
		engine.Options{
			Workers: 4,
			Fault: func(tr mpi.Transport) mpi.Transport {
				return mpi.NewFaultTransport(tr, mpi.Fault{Step: 2, Worker: 1, Kind: mpi.Sever})
			},
		})
	if err == nil {
		t.Fatal("worker death with recovery disabled did not fail the run")
	}
	var wf *mpi.WorkerFatalError
	if !errors.As(err, &wf) || wf.Worker != 1 {
		t.Fatalf("error not classified worker-fatal for worker 1: %v", err)
	}
	if !errors.Is(err, mpi.ErrInjectedFault) {
		t.Fatalf("error lost the injected-fault sentinel: %v", err)
	}
}

// TestFaultRecoveryMultipleDeaths kills two different workers at different
// supersteps in one run.
func TestFaultRecoveryMultipleDeaths(t *testing.T) {
	g := gen.RoadGrid(16, 16, 1)
	run := func(opts engine.Options) (map[graph.ID]float64, *metrics.Stats, error) {
		return engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0}, opts)
	}
	cleanRes, clean, err := run(engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := run(engine.Options{
		Workers: 4,
		Recover: true,
		Fault: func(tr mpi.Transport) mpi.Transport {
			return mpi.NewFaultTransport(tr,
				mpi.Fault{Step: 2, Worker: 1, Kind: mpi.Sever},
				mpi.Fault{Step: 4, Worker: 3, Kind: mpi.Drop},
			)
		},
	})
	if err != nil {
		t.Fatalf("faulted run: %v", err)
	}
	checkFaultedRun(t, "two deaths", cleanRes, res, clean, stats)
	if len(stats.Recoveries) < 2 {
		t.Fatalf("expected two recoveries, got %+v", stats.Recoveries)
	}
}

// epochLog records CheckpointStore callbacks for inspection.
type epochLog struct {
	steps  []int
	frames [][]byte
}

func (l *epochLog) AppendEpoch(step int, frame []byte) error {
	l.steps = append(l.steps, step)
	l.frames = append(l.frames, frame)
	return nil
}

// TestCheckpointStoreReceivesEveryEpoch: with a store plugged in, the
// coordinator streams one encoded epoch frame per superstep, in order, and
// the run's answer is unchanged.
func TestCheckpointStoreReceivesEveryEpoch(t *testing.T) {
	g := gen.RoadGrid(12, 12, 1)
	want, clean, err := engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0},
		engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	log := &epochLog{}
	got, stats, err := engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0},
		engine.Options{Workers: 4, Recover: true, CheckpointStore: log})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("checkpointed run changed the answer")
	}
	if stats.Supersteps != clean.Supersteps {
		t.Fatalf("checkpointing changed the schedule: %d vs %d supersteps", stats.Supersteps, clean.Supersteps)
	}
	if len(log.steps) != stats.Supersteps {
		t.Fatalf("store got %d epochs for a %d-superstep run", len(log.steps), stats.Supersteps)
	}
	for i, s := range log.steps {
		if s != i+1 {
			t.Fatalf("epoch order broken: %v", log.steps)
		}
	}
	for i, f := range log.frames {
		if len(f) == 0 {
			t.Fatalf("epoch %d frame is empty", i+1)
		}
	}
}

// TestCheckpointStoreNeedsRecover: a store without Recover is a
// configuration error, reported before the run starts.
func TestCheckpointStoreNeedsRecover(t *testing.T) {
	g := gen.RoadGrid(4, 4, 1)
	_, _, err := engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0},
		engine.Options{Workers: 2, CheckpointStore: &epochLog{}})
	if err == nil {
		t.Fatal("CheckpointStore without Recover accepted")
	}
}

// FuzzFaultRecovery derives a single-fault plan from the seed and asserts
// the recovered run matches the failure-free one exactly.
func FuzzFaultRecovery(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	g := gen.RoadGrid(12, 12, 1)
	run := func(opts engine.Options) (map[graph.ID]float64, *metrics.Stats, error) {
		return engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0}, opts)
	}
	cleanRes, clean, err := run(engine.Options{Workers: 4})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		plan := mpi.Plan(seed, 4, clean.Supersteps)
		res, stats, err := run(engine.Options{
			Workers: 4,
			Recover: true,
			Fault: func(tr mpi.Transport) mpi.Transport {
				return mpi.NewFaultTransport(tr, plan...)
			},
		})
		if err != nil {
			t.Fatalf("plan %+v: %v", plan, err)
		}
		if !reflect.DeepEqual(cleanRes, res) {
			t.Fatalf("plan %+v: result differs from the failure-free run", plan)
		}
		if clean.Supersteps != stats.Supersteps || clean.Bytes != stats.Bytes || clean.Messages != stats.Messages {
			t.Fatalf("plan %+v: schedule diverged: %d steps / %d msgs / %d bytes, clean %d / %d / %d",
				plan, stats.Supersteps, stats.Messages, stats.Bytes, clean.Supersteps, clean.Messages, clean.Bytes)
		}
		if plan[0].Kind != mpi.Delay && len(stats.Recoveries) == 0 {
			t.Fatalf("plan %+v: death without recovery record", plan)
		}
	})
}
