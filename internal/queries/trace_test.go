package queries

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/trace"
)

// The flight-recorder acceptance sweep: every registered query class runs
// once per substrate (in-process bus, socket wire) with a recorder on the
// context, and the recorded trace must agree with the run's Stats — one
// superstep span per counted superstep, per-worker phase timings inside
// every span (shipped back in the reply frames on wire runs), and a Chrome
// export whose worker spans nest inside their superstep spans.

type traceCase struct {
	name    string
	program string
	query   string
	build   func() *graph.Graph
}

func traceCases() []traceCase {
	social := func() *graph.Graph {
		g := gen.PreferentialAttachment(220, 3, 7)
		gen.AttachKeywords(g, []string{"db", "graph", "ml"}, 2, 0.3, 7)
		return g
	}
	commerce := func() *graph.Graph {
		return gen.SocialCommerce(gen.SocialCommerceConfig{People: 90, Products: 3, Follows: 3, AdoptP: 0.9, Seed: 3})
	}
	return []traceCase{
		{"sssp", "sssp", "source=0", func() *graph.Graph { return gen.RoadGrid(10, 10, 1) }},
		{"cc", "cc", "", func() *graph.Graph { return gen.Random(120, 220, 5) }},
		{"sim", "sim", "pattern=follows-recommend", commerce},
		{"subiso", "subiso", "pattern=follows-recommend", commerce},
		{"keyword", "keyword", "k=db,graph bound=4", social},
		{"cf", "cf", "epochs=3", func() *graph.Graph {
			return gen.DirectedRatings(gen.RatingsConfig{Users: 30, Items: 12, RatingsPerUser: 6, Factors: 3, Noise: 0.1, Seed: 5})
		}},
		{"tricount", "tricount", "", social},
	}
}

// checkTrace asserts one recorded run agrees with its stats and exports to
// well-formed, well-nested Chrome trace JSON.
func checkTrace(t *testing.T, run *trace.Run, supersteps, workers int, substrate string) {
	t.Helper()
	if run.Substrate != substrate || run.Workers != workers {
		t.Fatalf("run header = %s/%d workers, want %s/%d", run.Substrate, run.Workers, substrate, workers)
	}
	if len(run.Steps) != supersteps {
		t.Fatalf("recorded %d superstep spans, stats counted %d", len(run.Steps), supersteps)
	}
	for i, s := range run.Steps {
		if s.Start.IsZero() || s.Barrier.IsZero() || s.End.IsZero() {
			t.Fatalf("step %d has open timestamps: %+v", i, s)
		}
		if s.Barrier.Before(s.Start) || s.End.Before(s.Barrier) {
			t.Fatalf("step %d phases out of order: start %v barrier %v end %v", i, s.Start, s.Barrier, s.End)
		}
		if len(s.Workers) == 0 || len(s.Workers) != s.Sched {
			t.Fatalf("step %d: %d worker timing rows for %d scheduled workers", i, len(s.Workers), s.Sched)
		}
		for _, wt := range s.Workers {
			if wt.Worker < 0 || wt.Worker >= workers {
				t.Fatalf("step %d: timing row for out-of-range worker %d", i, wt.Worker)
			}
		}
	}
	// The first superstep (PEval) schedules the whole fleet.
	if run.Steps[0].Sched != workers {
		t.Fatalf("PEval scheduled %d of %d workers", run.Steps[0].Sched, workers)
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, run); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	type span struct{ ts, end int64 }
	var steps []span
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "superstep ") {
			steps = append(steps, span{ev.Ts, ev.Ts + ev.Dur})
		}
	}
	if len(steps) != supersteps {
		t.Fatalf("chrome export has %d superstep spans, want %d", len(steps), supersteps)
	}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" || ev.Tid == 0 {
			continue
		}
		// A worker-thread span (apply/compute) must nest inside some
		// superstep span on the coordinator thread.
		nested := false
		for _, s := range steps {
			if s.ts <= ev.Ts && ev.Ts+ev.Dur <= s.end {
				nested = true
				break
			}
		}
		if !nested {
			t.Fatalf("worker span %q [%d,%d] not nested in any superstep span", ev.Name, ev.Ts, ev.Ts+ev.Dur)
		}
	}
}

func TestFlightRecorderAllClasses(t *testing.T) {
	const workers = 4
	for _, c := range traceCases() {
		c := c
		t.Run(c.name+"/bus", func(t *testing.T) {
			t.Parallel()
			e, err := engine.Lookup(c.program)
			if err != nil {
				t.Fatal(err)
			}
			rec := trace.NewRecorder("bus-" + c.name)
			defer rec.Release()
			ctx := trace.WithRecorder(context.Background(), rec)
			_, st, err := e.Run(ctx, c.build(), engine.Options{Workers: workers, Strategy: partition.Hash{}}, c.query)
			if err != nil {
				t.Fatal(err)
			}
			checkTrace(t, rec.Snapshot(), st.Supersteps, workers, "bus")
		})
		t.Run(c.name+"/wire", func(t *testing.T) {
			e, err := engine.Lookup(c.program)
			if err != nil {
				t.Fatal(err)
			}
			tr, finish := startSessionWorkers(t, workers)
			defer finish()
			rec := trace.NewRecorder("wire-" + c.name)
			defer rec.Release()
			ctx := trace.WithRecorder(context.Background(), rec)
			_, st, err := e.Run(ctx, c.build(), engine.Options{Workers: workers, Strategy: partition.Hash{}, Transport: tr}, c.query)
			if err != nil {
				t.Fatal(err)
			}
			checkTrace(t, rec.Snapshot(), st.Supersteps, workers, "wire")
		})
	}
}

// TestFlightRecorderCheckpointEvents pins that a Recover run records one
// checkpoint event per superstep barrier.
func TestFlightRecorderCheckpointEvents(t *testing.T) {
	rec := trace.NewRecorder("ckpt")
	defer rec.Release()
	ctx := trace.WithRecorder(context.Background(), rec)
	g := gen.RoadGrid(10, 10, 1)
	_, st, err := engine.Run(ctx, g, SSSP{}, SSSPQuery{Source: 0}, engine.Options{Workers: 4, Strategy: partition.Hash{}, Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	run := rec.Snapshot()
	ckpts := 0
	for _, ev := range run.Events {
		if ev.Kind == "checkpoint" {
			ckpts++
		}
	}
	if ckpts != st.Supersteps {
		t.Fatalf("%d checkpoint events over %d supersteps", ckpts, st.Supersteps)
	}
}

// TestFlightRecorderSessionEvents pins that a session update with a recorder
// on its context records a session-update event.
func TestFlightRecorderSessionEvents(t *testing.T) {
	rec := trace.NewRecorder("sess")
	defer rec.Release()
	ctx := trace.WithRecorder(context.Background(), rec)
	e, err := engine.Lookup("sssp")
	if err != nil {
		t.Fatal(err)
	}
	pq, err := e.Parse("source=0")
	if err != nil {
		t.Fatal(err)
	}
	g := gen.RoadGrid(8, 8, 1)
	sess, _, _, err := e.Session(ctx, g, engine.Options{Workers: 2, Strategy: partition.Hash{}}, pq)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Update(ctx, []engine.EdgeUpdate{{From: 0, To: 63, W: 0.5}}); err != nil {
		t.Fatal(err)
	}
	var saw bool
	for _, ev := range rec.Snapshot().Events {
		if ev.Kind == "session-update" && strings.Contains(ev.Detail, "1 edge updates") {
			saw = true
		}
	}
	if !saw {
		t.Fatalf("no session-update event recorded: %+v", rec.Snapshot().Events)
	}
}
