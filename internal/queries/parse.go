package queries

import (
	"errors"
	"fmt"
	"strconv"

	"grape/internal/engine"
)

// ErrNoParser wraps Parse failures for entries without a Parse hook.
// engine.Register has required the hook since the MakeEntry unification,
// so for registered programs this is unreachable; the check stays as a
// guard against Entry values constructed by hand and never registered.
var ErrNoParser = errors.New("queries: program registered no query parser")

// Query-string parsing is a first-class step shared by every consumer: the
// CLI's -program/-query flags, the serving layer's POST /query bodies, and
// tests all resolve text through the same per-program parse functions, so a
// query cannot mean one thing on the command line and another over HTTP.
// Each program file defines parseX (text -> typed query) and canonicalX
// (typed query -> normalized string, the cache-key form with defaults
// resolved); entry() wires them into the registry so Entry.Run, Entry.Parse
// and Entry.Resident are all derived from the same pair.

// Parse resolves a textual query against a registered program: typed query,
// canonical form, required fragment expansion.
func Parse(program, query string) (engine.ParsedQuery, error) {
	e, err := engine.Lookup(program)
	if err != nil {
		return engine.ParsedQuery{}, err
	}
	if e.Parse == nil {
		return engine.ParsedQuery{}, fmt.Errorf("%w: %q", ErrNoParser, program)
	}
	return e.Parse(query)
}

// entry builds a registry Entry from a program and its parse/canonical pair
// through engine.MakeEntry — the unified typed constructor that derives
// Run, Parse, Resident and Wire from one spec, so a one-shot run, a
// resident layout and a distributed worker agree on what every query
// string means (including the fragment expansion hops reports).
func entry[Q, V, R any](prog engine.WireProgram[Q, V, R], desc, help string,
	parse func(string) (Q, error), canonical func(Q) string, hops func(Q) int) engine.Entry {
	return engine.MakeEntry(engine.EntrySpec[Q, V, R]{
		Prog:        prog,
		Description: desc,
		QueryHelp:   help,
		Parse:       parse,
		Canonical:   canonical,
		Hops:        hops,
	})
}

// fmtFloat renders a float the shortest way that round-trips — the one
// canonical spelling per value, so "bound=4" and "bound=4.0" key identically.
func fmtFloat(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
