package queries

import (
	"errors"
	"fmt"
	"strconv"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
)

// ErrNoParser wraps Parse failures for programs registered without a Parse
// hook (Entry.Parse is optional for externally Registered programs; every
// built-in class has one). Callers that can fall back to Entry.Run — which
// does its own parsing — should treat this as "parse later", not "bad
// query".
var ErrNoParser = errors.New("queries: program registered no query parser")

// Query-string parsing is a first-class step shared by every consumer: the
// CLI's -program/-query flags, the serving layer's POST /query bodies, and
// tests all resolve text through the same per-program parse functions, so a
// query cannot mean one thing on the command line and another over HTTP.
// Each program file defines parseX (text -> typed query) and canonicalX
// (typed query -> normalized string, the cache-key form with defaults
// resolved); entry() wires them into the registry so Entry.Run, Entry.Parse
// and Entry.Resident are all derived from the same pair.

// Parse resolves a textual query against a registered program: typed query,
// canonical form, required fragment expansion.
func Parse(program, query string) (engine.ParsedQuery, error) {
	e, err := engine.Lookup(program)
	if err != nil {
		return engine.ParsedQuery{}, err
	}
	if e.Parse == nil {
		return engine.ParsedQuery{}, fmt.Errorf("%w: %q", ErrNoParser, program)
	}
	return e.Parse(query)
}

// entry builds a registry Entry from a program and its parse/canonical pair.
// hops reports the fragment expansion a query needs (nil means none) — it
// drives both Entry.Run's Options.ExpandHops and ParsedQuery.Hops, so a
// one-shot run and a resident layout agree on fragment shape.
func entry[Q, V, R any](prog engine.WireProgram[Q, V, R], desc, help string,
	parse func(string) (Q, error), canonical func(Q) string, hops func(Q) int) engine.Entry {
	name := prog.Name()
	doParse := func(query string) (engine.ParsedQuery, error) {
		q, err := parse(query)
		if err != nil {
			return engine.ParsedQuery{}, err
		}
		pq := engine.ParsedQuery{Program: name, Query: q, Canonical: canonical(q)}
		if hops != nil {
			pq.Hops = hops(q)
		}
		return pq, nil
	}
	return engine.Entry{
		Name:        name,
		Description: desc,
		QueryHelp:   help,
		Parse:       doParse,
		Wire:        engine.WireServe(prog),
		Run: func(g *graph.Graph, opts engine.Options, query string) (any, *metrics.Stats, error) {
			pq, err := doParse(query)
			if err != nil {
				return nil, nil, err
			}
			// Programs that declare an expansion requirement own
			// Options.ExpandHops (as RunSubIso/RunTriCount always did); for
			// the rest a caller-supplied expansion passes through untouched.
			if hops != nil {
				opts.ExpandHops = pq.Hops
			}
			res, stats, err := engine.Run(g, prog, pq.Query.(Q), opts)
			return any(res), stats, err
		},
		Resident: func(layout *partition.Layout, opts engine.Options) (engine.ResidentRunner, error) {
			r, err := engine.NewResident(layout, prog, opts)
			if err != nil {
				return nil, err
			}
			return residentAdapter[Q, V, R]{name: name, r: r}, nil
		},
	}
}

// residentAdapter erases a typed Resident into engine.ResidentRunner for the
// registry.
type residentAdapter[Q, V, R any] struct {
	name string
	r    *engine.Resident[Q, V, R]
}

func (a residentAdapter[Q, V, R]) RunParsed(pq engine.ParsedQuery) (any, *metrics.Stats, error) {
	q, ok := pq.Query.(Q)
	if !ok {
		return nil, nil, fmt.Errorf("queries: %s: parsed query has type %T, want %T", a.name, pq.Query, q)
	}
	res, stats, err := a.r.Run(q)
	return any(res), stats, err
}

// fmtFloat renders a float the shortest way that round-trips — the one
// canonical spelling per value, so "bound=4" and "bound=4.0" key identically.
func fmtFloat(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
