package queries

import (
	"context"
	"math"
	"testing"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/partition"
	"grape/internal/seq"
)

func TestKeywordMatchesSequential(t *testing.T) {
	vocab := []string{"db", "graph", "ml", "sys"}
	g := gen.ConnectedRandom(200, 600, 31)
	gen.AttachKeywords(g, vocab, 2, 0.15, 31)
	q := KeywordQuery{Keywords: []string{"db", "graph"}, Bound: 12, UseIndex: true}
	want := seq.KeywordSearch(g, q.Keywords, q.Bound)
	for _, n := range []int{1, 3, 6} {
		got, _, err := engine.Run(context.Background(), g, Keyword{}, q,
			engine.Options{Workers: n, Strategy: partition.Fennel{}, CheckMonotonic: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", n, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d roots, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i].Root != want[i].Root || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("workers=%d: rank %d: got (%d,%g) want (%d,%g)",
					n, i, got[i].Root, got[i].Score, want[i].Root, want[i].Score)
			}
		}
	}
}

func TestKeywordIndexAndScanAgree(t *testing.T) {
	vocab := []string{"a", "b", "c"}
	g := gen.ConnectedRandom(120, 360, 7)
	gen.AttachKeywords(g, vocab, 2, 0.2, 7)
	qi := KeywordQuery{Keywords: []string{"a", "c"}, Bound: 10, UseIndex: true}
	qs := qi
	qs.UseIndex = false
	ri, _, err := engine.Run(context.Background(), g, Keyword{}, qi, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := engine.Run(context.Background(), g, Keyword{}, qs, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ri) != len(rs) {
		t.Fatalf("index vs scan: %d vs %d roots", len(ri), len(rs))
	}
	for i := range ri {
		if ri[i].Root != rs[i].Root {
			t.Fatalf("rank %d differs: %d vs %d", i, ri[i].Root, rs[i].Root)
		}
	}
}

func TestKeywordIndexReducesWork(t *testing.T) {
	// E9: the inverted index is built once and spares PEval a full property
	// scan per keyword, so its advantage grows with the keyword count.
	vocab := []string{"w1", "w2", "w3", "w4", "rare"}
	g := gen.ConnectedRandom(2000, 6000, 13)
	gen.AttachKeywords(g, vocab, 1, 0.01, 13)
	q := KeywordQuery{Keywords: []string{"rare", "w1", "w2", "w3"}, Bound: 3, UseIndex: true}
	_, si, err := engine.Run(context.Background(), g, Keyword{}, q, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	q.UseIndex = false
	_, ss, err := engine.Run(context.Background(), g, Keyword{}, q, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if si.TotalWork() >= ss.TotalWork() {
		t.Fatalf("indexed PEval should do less work: %d vs %d", si.TotalWork(), ss.TotalWork())
	}
}

func TestKeywordNoHolders(t *testing.T) {
	g := gen.ConnectedRandom(50, 150, 3)
	got, _, err := engine.Run(context.Background(), g, Keyword{}, KeywordQuery{Keywords: []string{"missing"}, Bound: 5, UseIndex: true},
		engine.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("no holders -> no roots, got %d", len(got))
	}
}

func TestKeywordEmptyQueryRejected(t *testing.T) {
	g := gen.ConnectedRandom(10, 20, 1)
	if _, _, err := engine.Run(context.Background(), g, Keyword{}, KeywordQuery{}, engine.Options{Workers: 2}); err == nil {
		t.Fatal("expected error for empty keyword list")
	}
}
