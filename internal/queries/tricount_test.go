package queries

import (
	"context"
	"testing"
	"testing/quick"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
)

func TestTriCountKnownGraphs(t *testing.T) {
	// K4 has 4 triangles
	k4 := graph.New()
	for i := graph.ID(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4.AddEdge(i, j, 1)
		}
	}
	res, stats, err := RunTriCount(context.Background(), k4, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 4 {
		t.Fatalf("K4 has 4 triangles, got %d", res.Total)
	}
	if stats.Supersteps != 1 {
		t.Fatalf("tricount is one superstep, got %d", stats.Supersteps)
	}
	// a 4-cycle has none
	c4 := graph.New()
	for i := graph.ID(0); i < 4; i++ {
		c4.AddEdge(i, (i+1)%4, 1)
	}
	res, _, err = RunTriCount(context.Background(), c4, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 0 {
		t.Fatalf("C4 has no triangles, got %d", res.Total)
	}
}

func TestTriCountMatchesSequential(t *testing.T) {
	g := gen.Random(120, 600, 19)
	want := SeqTriangles(g)
	if want == 0 {
		t.Skip("unlucky seed: no triangles")
	}
	for _, n := range []int{1, 3, 8} {
		res, _, err := RunTriCount(context.Background(), g, engine.Options{Workers: n, Strategy: partition.Hash{}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Total != want {
			t.Fatalf("workers=%d: %d triangles, want %d", n, res.Total, want)
		}
	}
}

func TestTriCountPivotCountsSumToTotal(t *testing.T) {
	g := gen.PreferentialAttachment(300, 4, 23)
	res, _, err := RunTriCount(context.Background(), g, engine.Options{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range res.PerPivot {
		sum += c
	}
	if sum != res.Total {
		t.Fatalf("pivot counts sum to %d, total %d", sum, res.Total)
	}
}

func TestTriCountProperty(t *testing.T) {
	f := func(seed int64, nw uint8) bool {
		n := 10 + int(uint(seed)%40)
		g := gen.Random(n, 4*n, seed)
		want := SeqTriangles(g)
		res, _, err := RunTriCount(context.Background(), g, engine.Options{Workers: 1 + int(nw%5)})
		if err != nil {
			return false
		}
		return res.Total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTriCountIgnoresSelfLoopsAndParallelEdges(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 0, 1) // self loop
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1) // parallel
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	res, _, err := RunTriCount(context.Background(), g, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 1 {
		t.Fatalf("want exactly 1 triangle, got %d", res.Total)
	}
}
