package queries

import (
	"context"
	"sort"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/metrics"
)

// TriCountQuery asks for the number of triangles in the undirected view of
// the graph: unordered vertex triples {a, b, c} pairwise connected by an
// edge in either direction.
type TriCountQuery struct{}

// TriCountResult carries the global count and the per-vertex counts of
// triangles pivoted at each vertex.
type TriCountResult struct {
	Total    int64
	PerPivot map[graph.ID]int64
}

// TriCount is a second locality-bounded PIE program (beyond SubIso),
// demonstrating that the data-shipping pattern generalizes: a triangle
// through v lies inside v's 1-hop neighborhood, so with fragments expanded
// by one hop (Options.ExpandHops = 1),
//
//	PEval    — the textbook pivot enumeration: for each inner pivot v and
//	           neighbor pair (a, b) of v, count the triangle iff a and b are
//	           adjacent and v is the smallest endpoint (each triangle has
//	           exactly one smallest vertex, so the global count needs no
//	           deduplication);
//	IncEval  — nothing to do: one superstep;
//	Assemble — sums the per-fragment counts.
type TriCount struct{}

// Name implements engine.Program.
func (TriCount) Name() string { return "tricount" }

// Spec implements engine.Program (no update parameters are exchanged).
func (TriCount) Spec() engine.VarSpec[uint8] {
	return engine.VarSpec[uint8]{
		Default: 0,
		Agg:     func(a, b uint8) uint8 { return a | b },
		Eq:      func(a, b uint8) bool { return a == b },
		Size:    func(uint8) int { return 1 },
	}
}

// PEval implements engine.Program. On a frozen fragment graph the pivot
// enumeration runs over the CSR form with epoch-stamped scratch arrays for
// neighbor dedup and adjacency tests — no per-pivot map allocation and no
// hash per traversed edge.
func (TriCount) PEval(q TriCountQuery, ctx *engine.Context[uint8]) error {
	f := ctx.Frag
	if f.G.Frozen() {
		return triCountIdx(ctx)
	}
	counts := make(map[graph.ID]int64)
	var total int64
	for _, v := range f.Inner {
		nbrs := undirectedNeighbors(f.G, v)
		ctx.AddWork(int64(len(nbrs)))
		// only pivot at the smallest vertex of the triangle
		var bigger []graph.ID
		for _, u := range nbrs {
			if u > v {
				bigger = append(bigger, u)
			}
		}
		sort.Slice(bigger, func(i, j int) bool { return bigger[i] < bigger[j] })
		for i := 0; i < len(bigger); i++ {
			ai := undirectedNeighborSet(f.G, bigger[i])
			for j := i + 1; j < len(bigger); j++ {
				ctx.AddWork(1)
				if ai[bigger[j]] {
					counts[v]++
					total++
				}
			}
		}
	}
	ctx.Partial = TriCountResult{Total: total, PerPivot: counts}
	return nil
}

func triCountIdx(ctx *engine.Context[uint8]) error {
	f := ctx.Frag
	g := f.G
	nv := g.NumVertices()
	counts := make(map[graph.ID]int64)
	var total int64
	// epoch-stamped scratch: seen dedups a pivot's neighborhood, adj marks
	// the neighborhood of one `bigger` candidate for O(1) adjacency tests.
	seen := make([]int32, nv)
	adj := make([]int32, nv)
	epoch, adjEpoch := int32(0), int32(0)
	var bigger []int32
	iidx := f.InnerIndices()
	for k, v := range f.Inner {
		vi := iidx[k]
		epoch++
		nbrs := 0
		bigger = bigger[:0]
		collect := func(t int32) {
			if t == vi || seen[t] == epoch {
				return
			}
			seen[t] = epoch
			nbrs++
			if g.IDAt(t) > v {
				bigger = append(bigger, t)
			}
		}
		for _, e := range g.OutAt(vi) {
			collect(e.To)
		}
		for _, e := range g.InAt(vi) {
			collect(e.To)
		}
		ctx.AddWork(int64(nbrs))
		sort.Slice(bigger, func(a, b int) bool { return g.IDAt(bigger[a]) < g.IDAt(bigger[b]) })
		for i := 0; i < len(bigger); i++ {
			adjEpoch++
			bi := bigger[i]
			for _, e := range g.OutAt(bi) {
				if e.To != bi {
					adj[e.To] = adjEpoch
				}
			}
			for _, e := range g.InAt(bi) {
				if e.To != bi {
					adj[e.To] = adjEpoch
				}
			}
			for j := i + 1; j < len(bigger); j++ {
				ctx.AddWork(1)
				if adj[bigger[j]] == adjEpoch {
					counts[v]++
					total++
				}
			}
		}
	}
	ctx.Partial = TriCountResult{Total: total, PerPivot: counts}
	return nil
}

// IncEval implements engine.Program; it never runs.
func (TriCount) IncEval(q TriCountQuery, ctx *engine.Context[uint8]) error { return nil }

// Assemble implements engine.Program.
func (TriCount) Assemble(q TriCountQuery, ctxs []*engine.Context[uint8]) (TriCountResult, error) {
	out := TriCountResult{PerPivot: make(map[graph.ID]int64)}
	for _, ctx := range ctxs {
		if ctx.Partial == nil {
			continue
		}
		p := ctx.Partial.(TriCountResult)
		out.Total += p.Total
		for v, c := range p.PerPivot {
			out.PerPivot[v] += c
		}
	}
	return out, nil
}

// SessionQuery implements engine.SessionPatcher; the query carries no
// parameters to widen.
func (TriCount) SessionQuery(q TriCountQuery) TriCountQuery { return q }

// InitPatch implements engine.SessionPatcher: retain a private copy of the
// assembled counts (the caller keeps the returned result).
func (TriCount) InitPatch(q TriCountQuery, g *graph.Graph, res TriCountResult) (any, error) {
	st := TriCountResult{Total: res.Total, PerPivot: make(map[graph.ID]int64, len(res.PerPivot))}
	for v, c := range res.PerPivot {
		st.PerPivot[v] = c
	}
	return st, nil
}

// ApplyPatch implements engine.SessionPatcher with the exact delta of one
// edge update: a triangle through edge {u, v} is a common undirected
// neighbor of u and v, so the update changes the count by |N(u) ∩ N(v)| —
// and only when it changes the undirected adjacency at all (a parallel or
// reverse instance means the neighbor *sets* the enumeration works on are
// unchanged). Insertions count common neighbors before the edge lands;
// deletions after the instance is gone, so both sides see the graph without
// the {u, v} connection. Each affected triangle is credited to its smallest
// vertex, matching PEval's pivot rule.
func (TriCount) ApplyPatch(q TriCountQuery, g *graph.Graph, state any, upd engine.EdgeUpdate, apply func()) (any, error) {
	st := state.(TriCountResult)
	u, v := upd.From, upd.To
	if u == v {
		apply()
		return st, nil // self-loops touch no triangle
	}
	adjacent := func() bool { return undirectedNeighborSet(g, u)[v] }
	pivotOf := func(w graph.ID) graph.ID {
		p := u
		if v < p {
			p = v
		}
		if w < p {
			p = w
		}
		return p
	}
	if upd.Del {
		apply()
		if adjacent() {
			return st, nil // another instance still connects u and v
		}
		nu := undirectedNeighborSet(g, u)
		for w := range undirectedNeighborSet(g, v) {
			if !nu[w] {
				continue
			}
			st.Total--
			p := pivotOf(w)
			if st.PerPivot[p]--; st.PerPivot[p] == 0 {
				delete(st.PerPivot, p)
			}
		}
		return st, nil
	}
	if adjacent() {
		apply()
		return st, nil // set-semantics: adjacency unchanged
	}
	nu := undirectedNeighborSet(g, u)
	for w := range undirectedNeighborSet(g, v) {
		if !nu[w] {
			continue
		}
		st.Total++
		st.PerPivot[pivotOf(w)]++
	}
	apply()
	return st, nil
}

// PatchResult implements engine.SessionPatcher: hand out a copy, matching
// Assemble's fresh-maps-per-call contract.
func (TriCount) PatchResult(q TriCountQuery, state any) (TriCountResult, error) {
	st := state.(TriCountResult)
	out := TriCountResult{Total: st.Total, PerPivot: make(map[graph.ID]int64, len(st.PerPivot))}
	for v, c := range st.PerPivot {
		out.PerPivot[v] = c
	}
	return out, nil
}

// RunTriCount runs the program with the 1-hop expansion it needs.
func RunTriCount(ctx context.Context, g *graph.Graph, opts engine.Options) (TriCountResult, *metrics.Stats, error) {
	opts.ExpandHops = 1
	return engine.Run(ctx, g, TriCount{}, TriCountQuery{}, opts)
}

// undirectedNeighbors returns the distinct neighbors of v over both edge
// directions in the local graph.
func undirectedNeighbors(g *graph.Graph, v graph.ID) []graph.ID {
	set := undirectedNeighborSet(g, v)
	out := make([]graph.ID, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	return out
}

func undirectedNeighborSet(g *graph.Graph, v graph.ID) map[graph.ID]bool {
	set := make(map[graph.ID]bool)
	for _, e := range g.Out(v) {
		if e.To != v {
			set[e.To] = true
		}
	}
	for _, e := range g.In(v) {
		if e.To != v {
			set[e.To] = true
		}
	}
	return set
}

// SeqTriangles is the sequential ground truth: direct enumeration over the
// whole graph with the same smallest-pivot rule.
func SeqTriangles(g *graph.Graph) int64 {
	var total int64
	for _, v := range g.SortedVertices() {
		var bigger []graph.ID
		for u := range undirectedNeighborSet(g, v) {
			if u > v {
				bigger = append(bigger, u)
			}
		}
		for i := 0; i < len(bigger); i++ {
			ai := undirectedNeighborSet(g, bigger[i])
			for j := i + 1; j < len(bigger); j++ {
				if ai[bigger[j]] {
					total++
				}
			}
		}
	}
	return total
}

func init() {
	engine.Register(entry(TriCount{},
		"triangle counting (pivot enumeration on 1-hop expanded fragments; single superstep)",
		"(no parameters)",
		func(string) (TriCountQuery, error) { return TriCountQuery{}, nil },
		func(TriCountQuery) string { return "" },
		func(TriCountQuery) int { return 1 }))
}
