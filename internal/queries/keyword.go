package queries

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/index"
	"grape/internal/seq"
)

// KeywordQuery asks for the roots from which a holder of every keyword is
// reachable within Bound (weighted distance over out-edges).
type KeywordQuery struct {
	Keywords []string
	Bound    float64
	// UseIndex enables the per-fragment inverted keyword index built by the
	// Index Manager; disabling it makes PEval scan all vertex properties —
	// the ablation of experiment E9 (graph-level optimization).
	UseIndex bool
}

// Keyword is the PIE program for keyword search. The update parameter of a
// border node v is the vector of its distances to the nearest holder of each
// query keyword; vectors shrink element-wise (aggregate: element-wise min),
// so the computation is monotonic.
//
//	PEval    — per keyword, multi-source Dijkstra from the local keyword
//	           holders relaxing along in-edges (propagating "I can reach
//	           keyword k at cost d" to predecessors). Holders are found via
//	           the inverted index when enabled.
//	IncEval  — bounded incremental relaxation from the border nodes whose
//	           vectors shrank.
//	Assemble — roots whose vectors are within the bound, ranked by total
//	           distance.
type Keyword struct{}

// Name implements engine.Program.
func (Keyword) Name() string { return "keyword" }

// kwVec is a keyword-distance vector; nil means "all unreached".
type kwVec = []float64

// Spec implements engine.Program: vectors over (ℝ≥0 ∪ {∞}, min, <) pointwise.
func (Keyword) Spec() engine.VarSpec[kwVec] {
	at := func(v kwVec, i int) float64 {
		if v == nil {
			return seq.Inf
		}
		return v[i]
	}
	return engine.VarSpec[kwVec]{
		Default: nil,
		Agg: func(a, b kwVec) kwVec {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			out := make(kwVec, len(a))
			for i := range a {
				out[i] = at(a, i)
				if bi := at(b, i); bi < out[i] {
					out[i] = bi
				}
			}
			return out
		},
		Eq: func(a, b kwVec) bool {
			if len(a) != len(b) {
				return a == nil && b == nil
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		},
		Less: func(a, b kwVec) bool {
			// a < b iff a ≤ b pointwise and a ≠ b (nil = all ∞, the top).
			if a == nil {
				return false
			}
			if b == nil {
				return true
			}
			strict := false
			for i := range a {
				if a[i] > b[i] {
					return false
				}
				if a[i] < b[i] {
					strict = true
				}
			}
			return strict
		},
		Size: func(v kwVec) int { return 8 * len(v) },
	}
}

// kwSlot adapts the vector variables to seq.RelaxEdges's scalar interface
// for the thawed fallback path. The ID is resolved to its dense index once
// per access and the ...At accessors do the rest — the old Get-then-Set
// spelling hashed twice per relaxation. Vertices outside the fragment graph
// (the overflow map) keep the sparse path; relaxation never produces them.
func kwSlot(ctx *engine.Context[kwVec], nk, k int) (get func(graph.ID) float64, set func(graph.ID, float64)) {
	g := ctx.Frag.G
	get = func(id graph.ID) float64 {
		var v kwVec
		if i, ok := g.Index(id); ok {
			v = ctx.GetAt(i)
		} else {
			v = ctx.Get(id)
		}
		if v == nil {
			return seq.Inf
		}
		return v[k]
	}
	set = func(id graph.ID, d float64) {
		i, ok := g.Index(id)
		var old kwVec
		if ok {
			old = ctx.GetAt(i)
		} else {
			old = ctx.Get(id)
		}
		nv := make(kwVec, nk)
		for j := range nv {
			if old == nil {
				nv[j] = seq.Inf
			} else {
				nv[j] = old[j]
			}
		}
		nv[k] = d
		if ok {
			ctx.SetAt(i, nv)
		} else {
			ctx.Set(id, nv)
		}
	}
	return get, set
}

// kwSlotAt is kwSlot addressed by dense vertex index, for seq.RelaxIdx over
// frozen fragment graphs.
func kwSlotAt(ctx *engine.Context[kwVec], nk, k int) (get func(int32) float64, set func(int32, float64)) {
	get = func(i int32) float64 {
		v := ctx.GetAt(i)
		if v == nil {
			return seq.Inf
		}
		return v[k]
	}
	set = func(i int32, d float64) {
		old := ctx.GetAt(i)
		nv := make(kwVec, nk)
		for j := range nv {
			if old == nil {
				nv[j] = seq.Inf
			} else {
				nv[j] = old[j]
			}
		}
		nv[k] = d
		ctx.SetAt(i, nv)
	}
	return get, set
}

// PEval implements engine.Program.
func (Keyword) PEval(q KeywordQuery, ctx *engine.Context[kwVec]) error {
	if len(q.Keywords) == 0 {
		return fmt.Errorf("keyword: empty keyword list")
	}
	f := ctx.Frag
	var inv *index.Inverted
	if q.UseIndex {
		inv = index.BuildInverted(f.G)
		ctx.AddWork(int64(f.G.NumVertices())) // one-time index build
	}
	frozen := f.G.Frozen()
	for k, w := range q.Keywords {
		var seeds []graph.ID
		if inv != nil {
			seeds = inv.Lookup(w)
			ctx.AddWork(1)
		} else {
			for _, v := range f.G.Vertices() {
				ctx.AddWork(1)
				if seq.HasKeyword(f.G, v, w) {
					seeds = append(seeds, v)
				}
			}
		}
		if frozen {
			// Dense path: seeds resolve to dense indices once, the per-edge
			// relaxation then runs hash-free along the reverse CSR.
			g := f.G
			sidx := make([]int32, 0, len(seeds))
			for _, s := range seeds {
				if i, ok := g.Index(s); ok {
					sidx = append(sidx, i)
				}
			}
			get, set := kwSlotAt(ctx, len(q.Keywords), k)
			for _, s := range sidx {
				set(s, 0)
			}
			ctx.AddWork(seq.RelaxIdx(g, true, sidx, get, set))
			continue
		}
		get, set := kwSlot(ctx, len(q.Keywords), k)
		for _, s := range seeds {
			set(s, 0)
		}
		work := seq.RelaxEdges(f.G, f.G.In, seeds, get, set)
		ctx.AddWork(work)
	}
	return nil
}

// IncEval implements engine.Program.
func (Keyword) IncEval(q KeywordQuery, ctx *engine.Context[kwVec]) error {
	f := ctx.Frag
	if g := f.G; g.Frozen() {
		updated := ctx.UpdatedAt()
		for k := range q.Keywords {
			get, set := kwSlotAt(ctx, len(q.Keywords), k)
			ctx.AddWork(seq.RelaxIdx(g, true, updated, get, set))
		}
		return nil
	}
	updated := ctx.Updated()
	for k := range q.Keywords {
		get, set := kwSlot(ctx, len(q.Keywords), k)
		work := seq.RelaxEdges(f.G, f.G.In, updated, get, set)
		ctx.AddWork(work)
	}
	return nil
}

// ApplyUpdate implements engine.Updater: keyword distances relax along
// reverse edges, so inserting (u, v) can only improve u (and its ancestors)
// via v's vector. Seeding the next IncEval round at v re-relaxes exactly the
// affected region; if v's vector is still unset (nil = all-∞), the new edge
// cannot improve anything yet and there is nothing to seed.
func (Keyword) ApplyUpdate(q KeywordQuery, ctx *engine.Context[kwVec], upd engine.EdgeUpdate) ([]graph.ID, error) {
	if upd.W < 0 {
		return nil, fmt.Errorf("keyword: negative edge weight %g", upd.W)
	}
	//grapevet:keep once per update, not a vertex loop — GetAt would pay the same Index hash to resolve upd.To first
	if ctx.Get(upd.To) == nil {
		return nil, nil
	}
	return []graph.ID{upd.To}, nil
}

// ValidateUpdate implements engine.UpdateValidator: distances need
// non-negative weights, checkable before the engine mutates anything.
// Deletions carry no weight of their own.
func (Keyword) ValidateUpdate(q KeywordQuery, upd engine.EdgeUpdate) error {
	if !upd.Del && upd.W < 0 {
		return fmt.Errorf("keyword: negative edge weight %g", upd.W)
	}
	return nil
}

// Assemble implements engine.Program.
func (Keyword) Assemble(q KeywordQuery, ctxs []*engine.Context[kwVec]) ([]seq.KeywordMatch, error) {
	var out []seq.KeywordMatch
	for _, ctx := range ctxs {
		g := ctx.Frag.G
		ctx.VarsAt(func(i int32, vec kwVec) {
			if !ctx.IsInnerAt(i) || vec == nil {
				return
			}
			m := seq.KeywordMatch{Root: g.IDAt(i), Dists: make([]float64, len(q.Keywords))}
			for j := range q.Keywords {
				if vec[j] > q.Bound {
					return
				}
				m.Dists[j] = vec[j]
				m.Score += vec[j]
			}
			out = append(out, m)
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].Root < out[j].Root
	})
	return out, nil
}

func parseKeyword(query string) (KeywordQuery, error) {
	kv, err := parseKV(query)
	if err != nil {
		return KeywordQuery{}, err
	}
	if kv["k"] == "" {
		return KeywordQuery{}, fmt.Errorf("keyword: missing k=<keywords>")
	}
	bound, err := strconv.ParseFloat(kv["bound"], 64)
	if err != nil {
		return KeywordQuery{}, fmt.Errorf("keyword: bad bound: %v", err)
	}
	return KeywordQuery{Keywords: strings.Split(kv["k"], ","), Bound: bound, UseIndex: kv["noindex"] == ""}, nil
}

// canonicalKeyword keeps the keyword order as given — it determines the
// order of the per-keyword distance vectors in the answer.
func canonicalKeyword(q KeywordQuery) string {
	s := "k=" + strings.Join(q.Keywords, ",") + " bound=" + fmtFloat(q.Bound)
	if !q.UseIndex {
		s += " noindex=1"
	}
	return s
}

func init() {
	engine.Register(entry(Keyword{},
		"keyword search (multi-source Dijkstra per keyword via the inverted index, element-wise min aggregate)",
		"k=<w1,w2,...> bound=<d> [noindex=1]",
		parseKeyword, canonicalKeyword, nil))
}
