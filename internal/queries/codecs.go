package queries

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/seq"
)

// Wire codecs for the registered query classes: every program declares how
// its update-parameter values and (where Assemble needs more than the node
// variables) its partial answers are encoded, so runs can cross process
// boundaries over internal/transport and traffic can be metered from real
// encoded bytes. All encodings round-trip exactly — floats travel as raw
// IEEE-754 bits, IDs and counts as varints — so a distributed run folds the
// very same values as an in-process run and lands on the identical fixpoint
// in the identical number of supersteps.

// float64Codec encodes values as 8 little-endian IEEE-754 bytes. Used by
// SSSP distances.
type float64Codec struct{}

func (float64Codec) AppendVal(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func (float64Codec) DecodeVal(data []byte) (float64, int, error) {
	if len(data) < 8 {
		return 0, 0, fmt.Errorf("codec: truncated float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), 8, nil
}

// idCodec encodes vertex IDs as unsigned varints. Used by CC labels.
type idCodec struct{}

func (idCodec) AppendVal(buf []byte, v graph.ID) []byte {
	return binary.AppendUvarint(buf, uint64(v))
}

func (idCodec) DecodeVal(data []byte) (graph.ID, int, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, fmt.Errorf("codec: bad ID varint")
	}
	return graph.ID(v), n, nil
}

// bitsCodec encodes Sim's 64-bit candidate masks as 8 fixed bytes (masks
// start at all-ones, where a varint would cost 10).
type bitsCodec struct{}

func (bitsCodec) AppendVal(buf []byte, v seq.SimBits) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func (bitsCodec) DecodeVal(data []byte) (seq.SimBits, int, error) {
	if len(data) < 8 {
		return 0, 0, fmt.Errorf("codec: truncated mask")
	}
	return binary.LittleEndian.Uint64(data), 8, nil
}

// byteCodec encodes the dummy one-byte variables of the locality-bounded
// programs (SubIso, TriCount).
type byteCodec struct{}

func (byteCodec) AppendVal(buf []byte, v uint8) []byte { return append(buf, v) }

func (byteCodec) DecodeVal(data []byte) (uint8, int, error) {
	if len(data) < 1 {
		return 0, 0, fmt.Errorf("codec: truncated byte")
	}
	return data[0], 1, nil
}

// vecCodec encodes float64 vectors (Keyword distance vectors, CF latent
// factors) as a uvarint length followed by raw IEEE-754 bytes. Length 0
// decodes to nil, preserving the programs' "nil = unreached/uninitialized"
// sentinel.
type vecCodec struct{}

func (vecCodec) AppendVal(buf []byte, v []float64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

func (vecCodec) DecodeVal(data []byte) ([]float64, int, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, 0, fmt.Errorf("codec: bad vector length")
	}
	if n > uint64(len(data)-used)/8 {
		return nil, 0, fmt.Errorf("codec: truncated vector of %d floats", n)
	}
	if n == 0 {
		return nil, used, nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[used+8*i:]))
	}
	return out, used + int(n)*8, nil
}

// ---- SSSP ----

// WireCodec implements engine.WireProgram.
func (SSSP) WireCodec() engine.Codec[float64] { return float64Codec{} }

// EncodeQuery implements engine.WireProgram.
func (SSSP) EncodeQuery(q SSSPQuery) ([]byte, error) {
	return binary.AppendUvarint(nil, uint64(q.Source)), nil
}

// DecodeQuery implements engine.WireProgram.
func (SSSP) DecodeQuery(data []byte) (SSSPQuery, error) {
	src, n := binary.Uvarint(data)
	if n <= 0 {
		return SSSPQuery{}, fmt.Errorf("sssp: bad query encoding")
	}
	return SSSPQuery{Source: graph.ID(src)}, nil
}

// ---- CC ----

// WireCodec implements engine.WireProgram.
func (CC) WireCodec() engine.Codec[graph.ID] { return idCodec{} }

// EncodeQuery implements engine.WireProgram (CC has no parameters).
func (CC) EncodeQuery(q CCQuery) ([]byte, error) { return nil, nil }

// DecodeQuery implements engine.WireProgram.
func (CC) DecodeQuery(data []byte) (CCQuery, error) { return CCQuery{}, nil }

// EncodePartial implements engine.PartialCodec: CC's Assemble reads labels
// off the worker's union-find, so the worker materializes one (vertex,
// label) pair per inner vertex.
func (CC) EncodePartial(q CCQuery, ctx *engine.Context[graph.ID]) ([]byte, error) {
	st, ok := ctx.State.(*ccState)
	if !ok {
		return nil, fmt.Errorf("cc: no state to assemble (PEval has not run)")
	}
	inner := ctx.Frag.Inner
	iidx := ctx.Frag.InnerIndices()
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(inner)))
	for k, v := range inner {
		buf = binary.AppendUvarint(buf, uint64(v))
		buf = binary.AppendUvarint(buf, uint64(st.rootLabel[st.uf.Find(iidx[k])]))
	}
	return buf, nil
}

// DecodePartial implements engine.PartialCodec: reconstitute a degenerate
// ccState (every vertex its own set, already labeled) that Assemble reads
// exactly like the worker's original.
func (CC) DecodePartial(q CCQuery, ctx *engine.Context[graph.ID], data []byte) error {
	g := ctx.Frag.G
	nv := g.NumVertices()
	st := &ccState{
		uf:        seq.NewDenseUnionFind(nv),
		rootLabel: make([]graph.ID, nv),
		rootHas:   make([]bool, nv),
		borderOf:  map[int32][]int32{},
	}
	pos := 0
	n, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return fmt.Errorf("cc: partial: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		v, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return fmt.Errorf("cc: partial: %w", err)
		}
		l, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return fmt.Errorf("cc: partial: %w", err)
		}
		vi, ok := g.Index(graph.ID(v))
		if !ok {
			return fmt.Errorf("cc: partial labels unknown vertex %d", v)
		}
		st.rootLabel[vi] = graph.ID(l)
		st.rootHas[vi] = true
	}
	ctx.State = st
	return nil
}

// ---- Sim ----

// WireCodec implements engine.WireProgram.
func (Sim) WireCodec() engine.Codec[seq.SimBits] { return bitsCodec{} }

// EncodeQuery implements engine.WireProgram: the query is the pattern graph.
func (Sim) EncodeQuery(q SimQuery) ([]byte, error) {
	if q.Pattern == nil {
		return nil, fmt.Errorf("sim: empty pattern")
	}
	return graph.AppendGraph(nil, q.Pattern), nil
}

// DecodeQuery implements engine.WireProgram.
func (Sim) DecodeQuery(data []byte) (SimQuery, error) {
	p, _, err := graph.DecodeGraph(data)
	if err != nil {
		return SimQuery{}, fmt.Errorf("sim: decoding pattern: %w", err)
	}
	return SimQuery{Pattern: p}, nil
}

// ---- SubIso ----

// WireCodec implements engine.WireProgram.
func (SubIso) WireCodec() engine.Codec[uint8] { return byteCodec{} }

// EncodeQuery implements engine.WireProgram.
func (SubIso) EncodeQuery(q SubIsoQuery) ([]byte, error) {
	if q.Pattern == nil {
		return nil, fmt.Errorf("subiso: empty pattern")
	}
	buf := binary.AppendUvarint(nil, uint64(q.MaxMatches))
	return graph.AppendGraph(buf, q.Pattern), nil
}

// DecodeQuery implements engine.WireProgram.
func (SubIso) DecodeQuery(data []byte) (SubIsoQuery, error) {
	pos := 0
	max, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return SubIsoQuery{}, fmt.Errorf("subiso: bad query encoding: %w", err)
	}
	p, _, err := graph.DecodeGraph(data[pos:])
	if err != nil {
		return SubIsoQuery{}, fmt.Errorf("subiso: decoding pattern: %w", err)
	}
	return SubIsoQuery{Pattern: p, MaxMatches: int(max)}, nil
}

// EncodePartial implements engine.PartialCodec: the per-fragment match list
// (Context.Partial), each match as its (pattern vertex, data vertex) pairs
// in sorted pattern-vertex order.
func (SubIso) EncodePartial(q SubIsoQuery, ctx *engine.Context[uint8]) ([]byte, error) {
	var matches []seq.Match
	if ctx.Partial != nil {
		matches = ctx.Partial.([]seq.Match)
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(matches)))
	for _, m := range matches {
		keys := make([]graph.ID, 0, len(m))
		for u := range m {
			keys = append(keys, u)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		buf = binary.AppendUvarint(buf, uint64(len(keys)))
		for _, u := range keys {
			buf = binary.AppendUvarint(buf, uint64(u))
			buf = binary.AppendUvarint(buf, uint64(m[u]))
		}
	}
	return buf, nil
}

// DecodePartial implements engine.PartialCodec.
func (SubIso) DecodePartial(q SubIsoQuery, ctx *engine.Context[uint8], data []byte) error {
	pos := 0
	n, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return fmt.Errorf("subiso: partial: %w", err)
	}
	matches := []seq.Match{}
	for i := uint64(0); i < n; i++ {
		np, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return fmt.Errorf("subiso: partial: %w", err)
		}
		if np > uint64(len(data)-pos)/2 {
			return fmt.Errorf("subiso: partial: truncated match of %d pairs", np)
		}
		m := make(seq.Match, np)
		for j := uint64(0); j < np; j++ {
			u, err := graph.ReadUvarint(data, &pos)
			if err != nil {
				return fmt.Errorf("subiso: partial: %w", err)
			}
			v, err := graph.ReadUvarint(data, &pos)
			if err != nil {
				return fmt.Errorf("subiso: partial: %w", err)
			}
			m[graph.ID(u)] = graph.ID(v)
		}
		matches = append(matches, m)
	}
	ctx.Partial = matches
	return nil
}

// ---- Keyword ----

// WireCodec implements engine.WireProgram.
func (Keyword) WireCodec() engine.Codec[kwVec] { return vecCodec{} }

// EncodeQuery implements engine.WireProgram.
func (Keyword) EncodeQuery(q KeywordQuery) ([]byte, error) {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(q.Keywords)))
	for _, w := range q.Keywords {
		buf = binary.AppendUvarint(buf, uint64(len(w)))
		buf = append(buf, w...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(q.Bound))
	if q.UseIndex {
		return append(buf, 1), nil
	}
	return append(buf, 0), nil
}

// DecodeQuery implements engine.WireProgram.
func (Keyword) DecodeQuery(data []byte) (KeywordQuery, error) {
	pos := 0
	n, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return KeywordQuery{}, fmt.Errorf("keyword: bad query encoding: %w", err)
	}
	var q KeywordQuery
	for i := uint64(0); i < n; i++ {
		l, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return KeywordQuery{}, fmt.Errorf("keyword: bad query encoding: %w", err)
		}
		if uint64(len(data)-pos) < l {
			return KeywordQuery{}, fmt.Errorf("keyword: truncated query encoding")
		}
		q.Keywords = append(q.Keywords, string(data[pos:pos+int(l)]))
		pos += int(l)
	}
	if len(data)-pos < 9 {
		return KeywordQuery{}, fmt.Errorf("keyword: truncated query encoding")
	}
	q.Bound = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
	q.UseIndex = data[pos+8] != 0
	return q, nil
}

// ---- CF ----

// WireCodec implements engine.WireProgram.
func (CF) WireCodec() engine.Codec[[]float64] { return vecCodec{} }

// EncodeQuery implements engine.WireProgram.
func (CF) EncodeQuery(q CFQuery) ([]byte, error) {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(q.Cfg.Factors))
	buf = binary.AppendUvarint(buf, uint64(q.Cfg.Epochs))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(q.Cfg.LR))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(q.Cfg.Reg))
	return binary.AppendVarint(buf, q.Cfg.Seed), nil
}

// DecodeQuery implements engine.WireProgram.
func (CF) DecodeQuery(data []byte) (CFQuery, error) {
	pos := 0
	factors, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return CFQuery{}, fmt.Errorf("cf: bad query encoding: %w", err)
	}
	epochs, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return CFQuery{}, fmt.Errorf("cf: bad query encoding: %w", err)
	}
	if len(data)-pos < 16 {
		return CFQuery{}, fmt.Errorf("cf: truncated query encoding")
	}
	lr := math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
	reg := math.Float64frombits(binary.LittleEndian.Uint64(data[pos+8:]))
	pos += 16
	seed, n := binary.Varint(data[pos:])
	if n <= 0 {
		return CFQuery{}, fmt.Errorf("cf: bad query encoding: truncated seed")
	}
	return CFQuery{Cfg: seq.CFConfig{Factors: int(factors), Epochs: int(epochs), LR: lr, Reg: reg, Seed: seed}}, nil
}

// EncodePartial implements engine.PartialCodec: CF's Assemble reads the
// trained factor table and the inner-user list off the worker state, so both
// ship (factors of outer items included — the global RMSE evaluates each
// rating under its owner fragment's model).
func (CF) EncodePartial(q CFQuery, ctx *engine.Context[[]float64]) ([]byte, error) {
	st, ok := ctx.State.(*cfState)
	if !ok {
		return nil, fmt.Errorf("cf: no state to assemble (PEval has not run)")
	}
	g := ctx.Frag.G
	ids := make([]graph.ID, 0, len(st.factors))
	byID := make(map[graph.ID]int32, len(st.factors))
	for i, vec := range st.factors {
		if vec != nil {
			v := g.IDAt(int32(i))
			ids = append(ids, v)
			byID[v] = int32(i)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	c := vecCodec{}
	for _, v := range ids {
		buf = binary.AppendUvarint(buf, uint64(v))
		buf = c.AppendVal(buf, st.factors[byID[v]])
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.users)))
	for _, u := range st.users {
		buf = binary.AppendUvarint(buf, uint64(g.IDAt(u)))
	}
	return buf, nil
}

// DecodePartial implements engine.PartialCodec.
func (CF) DecodePartial(q CFQuery, ctx *engine.Context[[]float64], data []byte) error {
	g := ctx.Frag.G
	st := &cfState{factors: make([][]float64, g.NumVertices())}
	pos := 0
	n, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return fmt.Errorf("cf: partial: %w", err)
	}
	c := vecCodec{}
	for i := uint64(0); i < n; i++ {
		v, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return fmt.Errorf("cf: partial: %w", err)
		}
		vec, used, err := c.DecodeVal(data[pos:])
		if err != nil {
			return fmt.Errorf("cf: partial: %w", err)
		}
		pos += used
		vi, ok := g.Index(graph.ID(v))
		if !ok {
			return fmt.Errorf("cf: partial factors for unknown vertex %d", v)
		}
		st.factors[vi] = vec
	}
	nu, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return fmt.Errorf("cf: partial: %w", err)
	}
	for i := uint64(0); i < nu; i++ {
		u, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return fmt.Errorf("cf: partial: %w", err)
		}
		ui, ok := g.Index(graph.ID(u))
		if !ok {
			return fmt.Errorf("cf: partial user %d unknown", u)
		}
		st.users = append(st.users, ui)
	}
	ctx.State = st
	return nil
}

// ---- TriCount ----

// WireCodec implements engine.WireProgram.
func (TriCount) WireCodec() engine.Codec[uint8] { return byteCodec{} }

// EncodeQuery implements engine.WireProgram (TriCount has no parameters).
func (TriCount) EncodeQuery(q TriCountQuery) ([]byte, error) { return nil, nil }

// DecodeQuery implements engine.WireProgram.
func (TriCount) DecodeQuery(data []byte) (TriCountQuery, error) { return TriCountQuery{}, nil }

// EncodePartial implements engine.PartialCodec: the fragment's total and
// per-pivot triangle counts (Context.Partial).
func (TriCount) EncodePartial(q TriCountQuery, ctx *engine.Context[uint8]) ([]byte, error) {
	var res TriCountResult
	if ctx.Partial != nil {
		res = ctx.Partial.(TriCountResult)
	}
	var buf []byte
	buf = binary.AppendVarint(buf, res.Total)
	ids := make([]graph.ID, 0, len(res.PerPivot))
	for v := range res.PerPivot {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, v := range ids {
		buf = binary.AppendUvarint(buf, uint64(v))
		buf = binary.AppendVarint(buf, res.PerPivot[v])
	}
	return buf, nil
}

// DecodePartial implements engine.PartialCodec.
func (TriCount) DecodePartial(q TriCountQuery, ctx *engine.Context[uint8], data []byte) error {
	res := TriCountResult{PerPivot: make(map[graph.ID]int64)}
	total, pos := binary.Varint(data)
	if pos <= 0 {
		return fmt.Errorf("tricount: partial: bad total")
	}
	res.Total = total
	n, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return fmt.Errorf("tricount: partial: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		v, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return fmt.Errorf("tricount: partial: %w", err)
		}
		c, used := binary.Varint(data[pos:])
		if used <= 0 {
			return fmt.Errorf("tricount: partial: bad count")
		}
		pos += used
		res.PerPivot[graph.ID(v)] = c
	}
	ctx.Partial = res
	return nil
}
