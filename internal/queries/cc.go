package queries

import (
	"fmt"
	"math"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/seq"
)

// CCQuery asks for the weakly connected components of the graph (edge
// direction ignored). It carries no parameters.
type CCQuery struct{}

// ccState is the per-worker state CC keeps between supersteps: the fragment's
// local connectivity never changes, so it is computed once by PEval as a
// union-find, and IncEval only moves component labels, never re-walks edges —
// a bounded IncEval. Everything is addressed by the fragment graph's dense
// vertex index: the union-find is flat arrays, and labels/border lists key on
// dense root indices.
type ccState struct {
	uf *seq.DenseUnionFind
	// rootLabel is the current (global) component label of each local set,
	// indexed by dense root index; rootHas marks which entries are live.
	rootLabel []graph.ID
	rootHas   []bool
	// borderOf lists the border nodes (dense indices) in each local set;
	// lowering a set's label means re-shipping exactly these.
	borderOf map[int32][]int32
}

// grow extends the dense state to cover nv vertices; the session layer
// appends outer copies to the fragment graph.
func (st *ccState) grow(nv int) {
	st.uf.Grow(nv)
	for len(st.rootLabel) < nv {
		st.rootLabel = append(st.rootLabel, 0)
		st.rootHas = append(st.rootHas, false)
	}
}

// CC is the PIE program for connected components: PEval labels local
// components with their minimum vertex ID (textbook union-find CC); the
// labels of border nodes are the update parameters with min as the
// aggregate; IncEval merges incoming lower labels into whole local sets.
// Labels decrease monotonically, so termination and correctness follow from
// the Assurance Theorem.
type CC struct{}

// Name implements engine.Program.
func (CC) Name() string { return "cc" }

// noComponent is the label of a node that has not been assigned yet.
const noComponent = graph.ID(math.MaxInt64)

// Spec implements engine.Program: labels ∈ (vertex IDs, min, <).
func (CC) Spec() engine.VarSpec[graph.ID] {
	return engine.VarSpec[graph.ID]{
		Default: noComponent,
		Agg: func(a, b graph.ID) graph.ID {
			if a < b {
				return a
			}
			return b
		},
		Eq:   func(a, b graph.ID) bool { return a == b },
		Less: func(a, b graph.ID) bool { return a < b },
		Size: func(graph.ID) int { return 8 },
	}
}

// PEval implements engine.Program: local union-find over the fragment. On a
// frozen fragment graph every edge hop unions packed dense indices directly;
// otherwise each target pays one index lookup.
func (CC) PEval(q CCQuery, ctx *engine.Context[graph.ID]) error {
	f := ctx.Frag
	g := f.G
	nv := g.NumVertices()
	st := &ccState{
		uf:        seq.NewDenseUnionFind(nv),
		rootLabel: make([]graph.ID, nv),
		rootHas:   make([]bool, nv),
		borderOf:  map[int32][]int32{},
	}
	ctx.State = st
	if g.Frozen() {
		for i := int32(0); i < int32(nv); i++ {
			for _, e := range g.OutAt(i) {
				st.uf.Union(i, e.To)
				ctx.AddWork(1)
			}
		}
	} else {
		for i := int32(0); i < int32(nv); i++ {
			for _, e := range g.Out(g.IDAt(i)) {
				vi, _ := g.Index(e.To)
				st.uf.Union(i, vi)
				ctx.AddWork(1)
			}
		}
	}
	// label each set with its minimum member
	for i := int32(0); i < int32(nv); i++ {
		r := st.uf.Find(i)
		if v := g.IDAt(i); !st.rootHas[r] || v < st.rootLabel[r] {
			st.rootLabel[r] = v
			st.rootHas[r] = true
		}
		ctx.AddWork(1)
	}
	for _, b := range f.BorderIndices() {
		if b < 0 { // border ID not (yet) in the fragment graph
			continue
		}
		r := st.uf.Find(b)
		st.borderOf[r] = append(st.borderOf[r], b)
	}
	for _, b := range f.BorderIndices() {
		if b < 0 {
			continue
		}
		ctx.SetAt(b, st.rootLabel[st.uf.Find(b)])
	}
	return nil
}

// IncEval implements engine.Program: a lowered border label lowers the label
// of its entire local set and re-ships that set's border nodes. Work is
// proportional to the sets touched, independent of |F_i|.
//
// All incoming values are folded per local set before any variable is
// written: writing while reading would let a set's relabel overwrite a
// not-yet-processed (lower) update on a shared border node.
func (CC) IncEval(q CCQuery, ctx *engine.Context[graph.ID]) error {
	st := ctx.State.(*ccState)
	best := make(map[int32]graph.ID) // root -> lowest incoming label
	for _, u := range ctx.UpdatedAt() {
		l := ctx.GetAt(u)
		r := st.uf.Find(u)
		if cur, ok := best[r]; !ok || l < cur {
			best[r] = l
		}
		ctx.AddWork(1)
	}
	for r, l := range best {
		if l >= st.rootLabel[r] {
			continue
		}
		st.rootLabel[r] = l
		st.rootHas[r] = true
		for _, b := range st.borderOf[r] {
			if l < ctx.GetAt(b) {
				ctx.SetAt(b, l)
			}
			ctx.AddWork(1)
		}
	}
	return nil
}

// ApplyUpdate implements engine.Updater: inserting edge (u, v) merges the
// local sets of u and v; labels only decrease (toward the new minimum), so
// the computation stays monotone and the follow-up IncEval is bounded.
func (CC) ApplyUpdate(q CCQuery, ctx *engine.Context[graph.ID], upd engine.EdgeUpdate) ([]graph.ID, error) {
	st, ok := ctx.State.(*ccState)
	if !ok {
		return nil, fmt.Errorf("cc: session state missing (PEval has not run)")
	}
	f := ctx.Frag
	g := f.G
	st.grow(g.NumVertices())
	fi, ok := g.Index(upd.From)
	if !ok {
		return nil, fmt.Errorf("cc: update source %d missing from fragment", upd.From)
	}
	ti, ok := g.Index(upd.To)
	if !ok {
		return nil, fmt.Errorf("cc: update target %d missing from fragment", upd.To)
	}
	ru, rv := st.uf.Find(fi), st.uf.Find(ti)
	labelOf := func(r, i int32, v graph.ID) graph.ID {
		if st.rootHas[r] {
			return st.rootLabel[r]
		}
		// a vertex first seen now (new outer copy): its best-known label is
		// its variable (seeded from the coordinator) or, if inner, itself
		l := ctx.GetAt(i)
		if l == noComponent && f.IsInnerAt(i) {
			l = v
		}
		return l
	}
	lu, lv := labelOf(ru, fi, upd.From), labelOf(rv, ti, upd.To)
	min := lu
	if lv < min {
		min = lv
	}
	if ru != rv {
		st.uf.Union(fi, ti)
		nr := st.uf.Find(fi)
		// merge bookkeeping of both old roots into the new one
		borders := append(st.borderOf[ru], st.borderOf[rv]...)
		delete(st.borderOf, ru)
		delete(st.borderOf, rv)
		// newly-border endpoints must be tracked too
		for _, i := range []int32{fi, ti} {
			if ctx.IsBorderAt(i) && !containsBorder(borders, i) {
				borders = append(borders, i)
			}
		}
		st.borderOf[nr] = borders
		st.rootHas[ru], st.rootHas[rv] = false, false
		st.rootLabel[ru], st.rootLabel[rv] = 0, 0
		st.rootLabel[nr] = min
		st.rootHas[nr] = true
		for _, b := range borders {
			if min < ctx.GetAt(b) {
				ctx.SetAt(b, min)
			}
			ctx.AddWork(1)
		}
	}
	return nil, nil
}

// PublishBorder implements engine.BorderPublisher: when a graph update turns
// an inner node into a border node, materialize and ship its current label
// (CC keeps labels per local set, not per node, so Context.touch would find
// nothing to re-ship).
func (CC) PublishBorder(q CCQuery, ctx *engine.Context[graph.ID], id graph.ID) {
	st, ok := ctx.State.(*ccState)
	if !ok {
		return
	}
	g := ctx.Frag.G
	st.grow(g.NumVertices())
	i, ok := g.Index(id)
	if !ok {
		return
	}
	r := st.uf.Find(i)
	if !containsBorder(st.borderOf[r], i) {
		st.borderOf[r] = append(st.borderOf[r], i)
	}
	l := st.rootLabel[r]
	if !st.rootHas[r] {
		l = id
		st.rootLabel[r] = l
		st.rootHas[r] = true
	}
	if l < ctx.GetAt(i) {
		ctx.SetAt(i, l)
	}
}

// CanRepair implements engine.DeleteRepairer: the region relabel below is
// exact for any mix of insertions and deletions.
func (CC) CanRepair(q CCQuery, batch []engine.EdgeUpdate) bool { return true }

// RepairBatch implements engine.DeleteRepairer. Deleting an edge can split a
// component, which no monotone label propagation can express — labels only
// decrease. Instead the repair recomputes connectivity exactly on the region
// the batch can possibly affect: the union of the old components of every
// batch endpoint. That region is closed under new-graph adjacency (old edges
// connect vertices of one old component; inserted edges connect batch
// endpoints), so a union-find over the region's vertices against the mutated
// global graph yields their exact new components, labeled min-member as
// everywhere else. Fragment states are then re-aligned: fragments whose
// local adjacency changed (they own a batch edge) rebuild their union-find
// from scratch, the rest only relabel the local sets containing region
// members. Variables and the coordinator's fold are overwritten with the new
// labels — a split raises labels, which the monotone machinery would reject.
// The returned dirty map is empty: the repair is already exact, so the
// follow-up fixpoint converges immediately.
func (CC) RepairBatch(q CCQuery, sc *engine.RepairScope[graph.ID], batch []engine.EdgeUpdate) (map[int][]graph.ID, error) {
	g := sc.Global()
	oldLabelOf := func(id graph.ID) graph.ID {
		ctx := sc.Ctx(sc.Owner(id))
		st, ok := ctx.State.(*ccState)
		if !ok {
			return id
		}
		i, ok := ctx.Frag.G.Index(id)
		if !ok || int(i) >= len(st.rootLabel) {
			return id
		}
		r := st.uf.Find(i)
		if !st.rootHas[r] {
			return id
		}
		return st.rootLabel[r]
	}
	touched := make(map[graph.ID]bool)
	for _, u := range batch {
		touched[oldLabelOf(u.From)] = true
		touched[oldLabelOf(u.To)] = true
	}
	// region: every vertex of a touched old component, in ascending ID order
	var region []graph.ID
	pos := make(map[graph.ID]int)
	for _, id := range g.Vertices() {
		if touched[oldLabelOf(id)] {
			pos[id] = len(region)
			region = append(region, id)
		}
	}
	// exact new connectivity of the region against the mutated graph
	ruf := seq.NewDenseUnionFind(len(region))
	for k, id := range region {
		for _, e := range g.Out(id) {
			if j, ok := pos[e.To]; ok {
				ruf.Union(int32(k), int32(j))
			}
		}
	}
	minLabel := make([]graph.ID, len(region))
	for k := range region {
		minLabel[k] = noComponent
	}
	for k, id := range region {
		r := ruf.Find(int32(k))
		if id < minLabel[r] {
			minLabel[r] = id
		}
	}
	newLabel := func(k int) graph.ID { return minLabel[ruf.Find(int32(k))] }

	mutated := make(map[int]bool)
	for _, u := range batch {
		mutated[sc.Owner(u.From)] = true
	}
	for w := 0; w < sc.Workers(); w++ {
		ctx := sc.Ctx(w)
		st, ok := ctx.State.(*ccState)
		if !ok {
			continue
		}
		fg := ctx.Frag.G
		st.grow(fg.NumVertices())
		if mutated[w] {
			// local adjacency changed: rebuild the union-find over the
			// mutated fragment graph, carrying each member's exact global
			// label (new for region members, unchanged for the rest — every
			// local set is globally connected, so its members agree)
			old := *st
			nv := fg.NumVertices()
			fresh := &ccState{
				uf:        seq.NewDenseUnionFind(nv),
				rootLabel: make([]graph.ID, nv),
				rootHas:   make([]bool, nv),
				borderOf:  map[int32][]int32{},
			}
			for i := int32(0); i < int32(nv); i++ {
				for _, e := range fg.Out(fg.IDAt(i)) {
					vi, _ := fg.Index(e.To)
					fresh.uf.Union(i, vi)
				}
			}
			for i := int32(0); i < int32(nv); i++ {
				id := fg.IDAt(i)
				var l graph.ID
				if k, ok := pos[id]; ok {
					l = newLabel(k)
				} else {
					or := old.uf.Find(i)
					if old.rootHas[or] {
						l = old.rootLabel[or]
					} else {
						l = id
					}
				}
				r := fresh.uf.Find(i)
				if !fresh.rootHas[r] || l < fresh.rootLabel[r] {
					fresh.rootLabel[r] = l
					fresh.rootHas[r] = true
				}
			}
			for _, b := range ctx.Frag.BorderIndices() {
				if b < 0 {
					continue
				}
				r := fresh.uf.Find(b)
				fresh.borderOf[r] = append(fresh.borderOf[r], b)
			}
			ctx.State = fresh
			continue
		}
		// adjacency untouched: only relabel the local sets holding region
		// members (a local set is globally connected, so one member's new
		// label is the whole set's)
		for k, id := range region {
			if i, ok := fg.Index(id); ok {
				r := st.uf.Find(i)
				st.rootLabel[r] = newLabel(k)
				st.rootHas[r] = true
			}
		}
	}
	// re-align the shipped variables and the coordinator's baseline: a split
	// raises labels, which Agg/min would refuse
	for k, id := range region {
		sc.ForceValue(id, newLabel(k))
	}
	return nil, nil
}

func containsBorder(idxs []int32, i int32) bool {
	for _, x := range idxs {
		if x == i {
			return true
		}
	}
	return false
}

// Assemble implements engine.Program: read each inner vertex's label off its
// local set, via the fragment's cached dense inner indices.
func (CC) Assemble(q CCQuery, ctxs []*engine.Context[graph.ID]) (map[graph.ID]graph.ID, error) {
	out := make(map[graph.ID]graph.ID)
	for _, ctx := range ctxs {
		st := ctx.State.(*ccState)
		inner := ctx.Frag.Inner
		iidx := ctx.Frag.InnerIndices()
		for k, v := range inner {
			out[v] = st.rootLabel[st.uf.Find(iidx[k])]
		}
	}
	return out, nil
}

func init() {
	engine.Register(entry(CC{},
		"weakly connected components (union-find PEval, label-merging bounded IncEval, min aggregate)",
		"(no parameters)",
		func(string) (CCQuery, error) { return CCQuery{}, nil },
		func(CCQuery) string { return "" }, nil))
}
