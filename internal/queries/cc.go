package queries

import (
	"fmt"
	"math"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/seq"
)

// CCQuery asks for the weakly connected components of the graph (edge
// direction ignored). It carries no parameters.
type CCQuery struct{}

// ccState is the per-worker state CC keeps between supersteps: the fragment's
// local connectivity never changes, so it is computed once by PEval as a
// union-find, and IncEval only moves component labels, never re-walks edges —
// a bounded IncEval.
type ccState struct {
	uf *seq.UnionFind
	// rootLabel is the current (global) component label of each local set.
	rootLabel map[graph.ID]graph.ID
	// borderOf lists the border nodes in each local set; lowering a set's
	// label means re-shipping exactly these.
	borderOf map[graph.ID][]graph.ID
}

// CC is the PIE program for connected components: PEval labels local
// components with their minimum vertex ID (textbook union-find CC); the
// labels of border nodes are the update parameters with min as the
// aggregate; IncEval merges incoming lower labels into whole local sets.
// Labels decrease monotonically, so termination and correctness follow from
// the Assurance Theorem.
type CC struct{}

// Name implements engine.Program.
func (CC) Name() string { return "cc" }

// noComponent is the label of a node that has not been assigned yet.
const noComponent = graph.ID(math.MaxInt64)

// Spec implements engine.Program: labels ∈ (vertex IDs, min, <).
func (CC) Spec() engine.VarSpec[graph.ID] {
	return engine.VarSpec[graph.ID]{
		Default: noComponent,
		Agg: func(a, b graph.ID) graph.ID {
			if a < b {
				return a
			}
			return b
		},
		Eq:   func(a, b graph.ID) bool { return a == b },
		Less: func(a, b graph.ID) bool { return a < b },
		Size: func(graph.ID) int { return 8 },
	}
}

// PEval implements engine.Program: local union-find over the fragment.
func (CC) PEval(q CCQuery, ctx *engine.Context[graph.ID]) error {
	f := ctx.Frag
	st := &ccState{uf: seq.NewUnionFind(), rootLabel: map[graph.ID]graph.ID{}, borderOf: map[graph.ID][]graph.ID{}}
	ctx.State = st
	for _, v := range f.G.Vertices() {
		st.uf.Add(v)
	}
	for _, u := range f.G.Vertices() {
		for _, e := range f.G.Out(u) {
			st.uf.Union(u, e.To)
			ctx.AddWork(1)
		}
	}
	// label each set with its minimum member
	for _, v := range f.G.Vertices() {
		r := st.uf.Find(v)
		if cur, ok := st.rootLabel[r]; !ok || v < cur {
			st.rootLabel[r] = v
		}
		ctx.AddWork(1)
	}
	for _, b := range f.Border() {
		r := st.uf.Find(b)
		st.borderOf[r] = append(st.borderOf[r], b)
	}
	for _, b := range f.Border() {
		ctx.Set(b, st.rootLabel[st.uf.Find(b)])
	}
	return nil
}

// IncEval implements engine.Program: a lowered border label lowers the label
// of its entire local set and re-ships that set's border nodes. Work is
// proportional to the sets touched, independent of |F_i|.
//
// All incoming values are folded per local set before any variable is
// written: writing while reading would let a set's relabel overwrite a
// not-yet-processed (lower) update on a shared border node.
func (CC) IncEval(q CCQuery, ctx *engine.Context[graph.ID]) error {
	st := ctx.State.(*ccState)
	best := make(map[graph.ID]graph.ID) // root -> lowest incoming label
	for _, u := range ctx.Updated() {
		l := ctx.Get(u)
		r := st.uf.Find(u)
		if cur, ok := best[r]; !ok || l < cur {
			best[r] = l
		}
		ctx.AddWork(1)
	}
	for r, l := range best {
		if l >= st.rootLabel[r] {
			continue
		}
		st.rootLabel[r] = l
		for _, b := range st.borderOf[r] {
			if l < ctx.Get(b) {
				ctx.Set(b, l)
			}
			ctx.AddWork(1)
		}
	}
	return nil
}

// ApplyUpdate implements engine.Updater: inserting edge (u, v) merges the
// local sets of u and v; labels only decrease (toward the new minimum), so
// the computation stays monotone and the follow-up IncEval is bounded.
func (CC) ApplyUpdate(q CCQuery, ctx *engine.Context[graph.ID], upd engine.EdgeUpdate) ([]graph.ID, error) {
	st, ok := ctx.State.(*ccState)
	if !ok {
		return nil, fmt.Errorf("cc: session state missing (PEval has not run)")
	}
	f := ctx.Frag
	st.uf.Add(upd.From)
	st.uf.Add(upd.To)
	ru, rv := st.uf.Find(upd.From), st.uf.Find(upd.To)
	labelOf := func(r graph.ID, v graph.ID) graph.ID {
		if l, ok := st.rootLabel[r]; ok {
			return l
		}
		// a vertex first seen now (new outer copy): its best-known label is
		// its variable (seeded from the coordinator) or, if inner, itself
		l := ctx.Get(v)
		if l == noComponent && f.IsInner(v) {
			l = v
		}
		return l
	}
	lu, lv := labelOf(ru, upd.From), labelOf(rv, upd.To)
	min := lu
	if lv < min {
		min = lv
	}
	if ru != rv {
		st.uf.Union(upd.From, upd.To)
		nr := st.uf.Find(upd.From)
		// merge bookkeeping of both old roots into the new one
		borders := append(st.borderOf[ru], st.borderOf[rv]...)
		delete(st.borderOf, ru)
		delete(st.borderOf, rv)
		// newly-border endpoints must be tracked too
		for _, v := range []graph.ID{upd.From, upd.To} {
			if ctx.IsBorder(v) && !containsBorder(borders, v) {
				borders = append(borders, v)
			}
		}
		st.borderOf[nr] = borders
		delete(st.rootLabel, ru)
		delete(st.rootLabel, rv)
		st.rootLabel[nr] = min
		for _, b := range borders {
			if min < ctx.Get(b) {
				ctx.Set(b, min)
			}
			ctx.AddWork(1)
		}
	}
	return nil, nil
}

// PublishBorder implements engine.BorderPublisher: when a graph update turns
// an inner node into a border node, materialize and ship its current label
// (CC keeps labels per local set, not per node, so Context.touch would find
// nothing to re-ship).
func (CC) PublishBorder(q CCQuery, ctx *engine.Context[graph.ID], id graph.ID) {
	st, ok := ctx.State.(*ccState)
	if !ok {
		return
	}
	st.uf.Add(id)
	r := st.uf.Find(id)
	if !containsBorder(st.borderOf[r], id) {
		st.borderOf[r] = append(st.borderOf[r], id)
	}
	l, ok := st.rootLabel[r]
	if !ok {
		l = id
		st.rootLabel[r] = l
	}
	if l < ctx.Get(id) {
		ctx.Set(id, l)
	}
}

func containsBorder(ids []graph.ID, id graph.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Assemble implements engine.Program: read each inner vertex's label off its
// local set.
func (CC) Assemble(q CCQuery, ctxs []*engine.Context[graph.ID]) (map[graph.ID]graph.ID, error) {
	out := make(map[graph.ID]graph.ID)
	for _, ctx := range ctxs {
		st := ctx.State.(*ccState)
		for _, v := range ctx.Frag.Inner {
			out[v] = st.rootLabel[st.uf.Find(v)]
		}
	}
	return out, nil
}

func init() {
	engine.Register(engine.Entry{
		Name:        "cc",
		Description: "weakly connected components (union-find PEval, label-merging bounded IncEval, min aggregate)",
		QueryHelp:   "(no parameters)",
		Wire:        engine.WireServe(CC{}),
		Run: func(g *graph.Graph, opts engine.Options, query string) (any, *metrics.Stats, error) {
			return engine.Run(g, CC{}, CCQuery{}, opts)
		},
	})
}
