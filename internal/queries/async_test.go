package queries

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/seq"
)

func TestAsyncSSSPMatchesDijkstra(t *testing.T) {
	g := gen.ConnectedRandom(300, 900, 61)
	want := seq.Dijkstra(g, 0)
	for _, n := range []int{1, 4, 8} {
		got, stats, err := engine.RunAsync(context.Background(), g, SSSP{}, SSSPQuery{Source: 0},
			engine.Options{Workers: n, Strategy: partition.Fennel{}})
		if err != nil {
			t.Fatalf("workers=%d: %v", n, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: reach %d vs %d", n, len(got), len(want))
		}
		for v, d := range want {
			if math.Abs(got[v]-d) > 1e-9 {
				t.Fatalf("workers=%d vertex %d: %g vs %g", n, v, got[v], d)
			}
		}
		if stats.Engine != "grape-async/sssp" {
			t.Fatalf("engine label: %s", stats.Engine)
		}
	}
}

func TestAsyncCCMatchesSequential(t *testing.T) {
	g := gen.Random(200, 260, 67)
	want := seq.Components(g)
	got, _, err := engine.RunAsync(context.Background(), g, CC{}, CCQuery{}, engine.Options{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range want {
		if got[v] != c {
			t.Fatalf("vertex %d: %d vs %d", v, got[v], c)
		}
	}
}

func TestAsyncSimMatchesSync(t *testing.T) {
	g := labeledRandom(120, 360, 71, []string{"a", "b", "c"})
	p, err := PatternByName("chain3")
	if err != nil {
		t.Fatal(err)
	}
	p.AddVertex(0, "a")
	p.AddVertex(1, "b")
	p.AddVertex(2, "c")
	syncRes, _, err := engine.Run(context.Background(), g, Sim{}, SimQuery{Pattern: p}, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	asyncRes, _, err := engine.RunAsync(context.Background(), g, Sim{}, SimQuery{Pattern: p}, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !simEqual(map[graph.ID][]graph.ID(syncRes), map[graph.ID][]graph.ID(asyncRes)) {
		t.Fatal("async sim differs from sync")
	}
}

func TestAsyncSSSPProperty(t *testing.T) {
	f := func(seed int64, nw uint8) bool {
		n := 5 + int(uint(seed)%50)
		g := gen.ConnectedRandom(n, 3*n, seed)
		want := seq.Dijkstra(g, 0)
		got, _, err := engine.RunAsync(context.Background(), g, SSSP{}, SSSPQuery{Source: 0},
			engine.Options{Workers: 1 + int(nw%6)})
		if err != nil || len(got) != len(want) {
			return false
		}
		for v, d := range want {
			if math.Abs(got[v]-d) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
