// Package queries is the GRAPE API library of the demo: PIE programs for the
// six query classes registered in Section 3 — single-source shortest paths
// (SSSP), connected components (CC), graph simulation (Sim), subgraph
// isomorphism (SubIso), keyword search (Keyword), and collaborative
// filtering (CF). Each program is exactly the paper's recipe: a textbook
// sequential PEval, a (bounded where possible) incremental IncEval, an
// Assemble, plus the two declarations GRAPE needs — update parameters and an
// aggregate function.
package queries

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/seq"
)

// SSSPQuery asks for shortest distances from Source to every vertex.
type SSSPQuery struct {
	Source graph.ID
}

// SSSP is the PIE program of the paper's Example 1:
//
//	PEval    — Dijkstra's algorithm on the fragment, with an integer-like
//	           variable x_v per node (∞ unless v is the source) declared as
//	           the update parameter of the border nodes, aggregated by min.
//	IncEval  — the bounded incremental shortest-path algorithm of
//	           Ramalingam–Reps for the decrease-only case: relax outward
//	           from the border nodes whose x_v dropped; cost is a function
//	           of |M_i| + |ΔO_i|, not |F_i|.
//	Assemble — the union of the partial results.
//
// The update parameters decrease monotonically (Less = <), so the Assurance
// Theorem applies: the fixpoint terminates with exactly Dijkstra's answer.
type SSSP struct{}

// Name implements engine.Program.
func (SSSP) Name() string { return "sssp" }

// Spec implements engine.Program: x_v ∈ (ℝ≥0 ∪ {∞}, min, <).
func (SSSP) Spec() engine.VarSpec[float64] {
	return engine.VarSpec[float64]{
		Default: seq.Inf,
		Agg:     math.Min,
		Eq:      func(a, b float64) bool { return a == b },
		Less:    func(a, b float64) bool { return a < b },
		Size:    func(float64) int { return 8 },
	}
}

// PEval implements engine.Program with sequential Dijkstra. On a frozen
// fragment graph (the partition layer freezes at build time) the relaxation
// runs over the CSR form through the hash-free dense accessors.
func (SSSP) PEval(q SSSPQuery, ctx *engine.Context[float64]) error {
	f := ctx.Frag
	if g := f.G; g.Frozen() {
		si, ok := g.Index(q.Source)
		if !ok {
			return nil
		}
		ctx.SetAt(si, 0)
		ctx.AddWork(seq.RelaxIdx(g, false, []int32{si}, ctx.GetAt, ctx.SetAt))
		return nil
	}
	if !f.G.Has(q.Source) {
		return nil
	}
	ctx.Set(q.Source, 0)
	work := seq.Relax(f.G, []graph.ID{q.Source}, ctx.Get, ctx.Set)
	ctx.AddWork(work)
	return nil
}

// IncEval implements engine.Program with bounded incremental relaxation from
// the changed border nodes.
func (SSSP) IncEval(q SSSPQuery, ctx *engine.Context[float64]) error {
	if g := ctx.Frag.G; g.Frozen() {
		ctx.AddWork(seq.RelaxIdx(g, false, ctx.UpdatedAt(), ctx.GetAt, ctx.SetAt))
		return nil
	}
	work := seq.Relax(ctx.Frag.G, ctx.Updated(), ctx.Get, ctx.Set)
	ctx.AddWork(work)
	return nil
}

// ValidateUpdate implements engine.UpdateValidator: the decrease-only
// invariant is checkable from the update alone, so a negative weight is
// rejected before the engine touches the graph. Deletions carry no weight of
// their own (the engine fills in the removed instance's), so they pass.
func (SSSP) ValidateUpdate(q SSSPQuery, upd engine.EdgeUpdate) error {
	if !upd.Del && upd.W < 0 {
		return fmt.Errorf("sssp: negative edge weight %g", upd.W)
	}
	return nil
}

// ApplyUpdate implements engine.Updater for continuous queries over an
// evolving graph: inserting edge (u, v) (or lowering its weight) can only
// decrease distances downstream of u, so seeding the next IncEval round at u
// re-relaxes exactly the affected region — the decrease-only case of
// Ramalingam–Reps, still bounded.
func (SSSP) ApplyUpdate(q SSSPQuery, ctx *engine.Context[float64], upd engine.EdgeUpdate) ([]graph.ID, error) {
	if upd.W < 0 {
		return nil, fmt.Errorf("sssp: negative edge weight %g", upd.W)
	}
	i, ok := ctx.Frag.G.Index(upd.From)
	if !ok || ctx.GetAt(i) >= seq.Inf {
		return nil, nil // unknown or unreached source: nothing can improve yet
	}
	return []graph.ID{upd.From}, nil
}

// CanRepair implements engine.DeleteRepairer: the invalidate-and-repropagate
// repair below is exact for any mix of insertions and deletions.
func (SSSP) CanRepair(q SSSPQuery, batch []engine.EdgeUpdate) bool { return true }

// RepairBatch implements engine.DeleteRepairer with invalidation and
// re-propagation. Deleting an edge can only break distances it supported:
// the affected region is seeded by the heads of deleted edges that were
// *tight* (dist(u) + w == dist(v)) and closed under tight out-edges of the
// mutated graph — at a shortest-path fixpoint every vertex's distance is
// supported by some tight in-edge, so a vertex whose tight in-edges all lead
// back into the region cannot keep its value. The region's variables are
// erased everywhere (including the coordinator's fold, so re-derived values
// are not suppressed as non-improvements), and the follow-up fixpoint
// re-relaxes from the region's surviving in-frontier plus any inserted
// edges' tails. Over-invalidation is harmless — re-propagation restores
// every distance the new graph still supports, and min over an identical
// set of path sums is bit-identical to a from-scratch run.
func (SSSP) RepairBatch(q SSSPQuery, sc *engine.RepairScope[float64], batch []engine.EdgeUpdate) (map[int][]graph.ID, error) {
	g := sc.Global()
	affected := make(map[graph.ID]float64) // vertex -> its invalidated old distance
	var queue []graph.ID
	suspect := func(v graph.ID, dv float64) {
		affected[v] = dv
		queue = append(queue, v)
	}
	for _, u := range batch {
		if !u.Del || u.To == q.Source {
			continue
		}
		if _, ok := affected[u.To]; ok {
			continue
		}
		du, dv := sc.Value(u.From), sc.Value(u.To)
		if du < seq.Inf && dv < seq.Inf && du+u.W == dv {
			suspect(u.To, dv)
		}
	}
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		dx := affected[x]
		for _, e := range g.Out(x) {
			if e.To == q.Source {
				continue
			}
			if _, ok := affected[e.To]; ok {
				continue
			}
			if dz := sc.Value(e.To); dz < seq.Inf && dx+e.W == dz {
				suspect(e.To, dz)
			}
		}
	}
	dirty := make(map[int][]graph.ID)
	for x := range affected {
		// the region's in-frontier re-proposes distances; the edge y->x
		// lives on y's owner, so that worker relaxes it
		for _, e := range g.In(x) {
			y := e.To
			if _, ok := affected[y]; ok {
				continue
			}
			if sc.Value(y) < seq.Inf {
				w := sc.Owner(y)
				dirty[w] = append(dirty[w], y)
			}
		}
	}
	for _, u := range batch {
		if u.Del {
			continue
		}
		if _, ok := affected[u.From]; ok {
			continue
		}
		if sc.Value(u.From) < seq.Inf {
			w := sc.Owner(u.From)
			dirty[w] = append(dirty[w], u.From)
		}
	}
	for x := range affected {
		sc.Invalidate(x)
	}
	return dirty, nil
}

// Assemble implements engine.Program: union of the inner-vertex distances.
// Ownership is tested by dense index — no per-vertex hash.
func (SSSP) Assemble(q SSSPQuery, ctxs []*engine.Context[float64]) (map[graph.ID]float64, error) {
	out := make(map[graph.ID]float64)
	for _, ctx := range ctxs {
		g := ctx.Frag.G
		ctx.VarsAt(func(i int32, d float64) {
			if ctx.IsInnerAt(i) && d < seq.Inf {
				out[g.IDAt(i)] = d
			}
		})
	}
	return out, nil
}

func parseSSSP(query string) (SSSPQuery, error) {
	kv, err := parseKV(query)
	if err != nil {
		return SSSPQuery{}, err
	}
	src, err := strconv.ParseInt(kv["source"], 10, 64)
	if err != nil {
		return SSSPQuery{}, fmt.Errorf("sssp: bad or missing source: %v", err)
	}
	return SSSPQuery{Source: graph.ID(src)}, nil
}

func canonicalSSSP(q SSSPQuery) string { return fmt.Sprintf("source=%d", q.Source) }

func init() {
	engine.Register(entry(SSSP{},
		"single-source shortest paths (Example 1: Dijkstra + bounded incremental relaxation, min aggregate)",
		"source=<vertex id>",
		parseSSSP, canonicalSSSP, nil))
}

// parseKV parses "k1=v1 k2=v2" query strings used by the registry.
func parseKV(query string) (map[string]string, error) {
	kv := make(map[string]string)
	for _, tok := range strings.Fields(query) {
		i := strings.IndexByte(tok, '=')
		if i < 0 {
			return nil, fmt.Errorf("queries: bad token %q, want key=value", tok)
		}
		kv[tok[:i]] = tok[i+1:]
	}
	return kv, nil
}
