package queries

import (
	"context"
	"testing"
	"testing/quick"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/seq"
)

func sameLabels(t *testing.T, want, got map[graph.ID]graph.ID, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: label count: want %d got %d", label, len(want), len(got))
	}
	for v, c := range want {
		if got[v] != c {
			t.Fatalf("%s: vertex %d: want component %d got %d", label, v, c, got[v])
		}
	}
}

func TestCCMatchesSequentialAcrossStrategies(t *testing.T) {
	// a graph with several components: random clusters plus isolated nodes
	g := gen.Random(200, 260, 11)
	for v := 1000; v < 1010; v++ {
		g.AddVertex(graph.ID(v), "")
	}
	want := seq.Components(g)
	for _, strat := range partition.Strategies() {
		for _, n := range []int{1, 2, 5} {
			res, _, err := engine.Run(context.Background(), g, CC{}, CCQuery{}, engine.Options{Workers: n, Strategy: strat, CheckMonotonic: true})
			if err != nil {
				t.Fatalf("%s/%d: %v", strat.Name(), n, err)
			}
			sameLabels(t, want, res, strat.Name())
		}
	}
}

func TestCCSingleComponent(t *testing.T) {
	g := gen.RoadGrid(12, 12, 1)
	res, _, err := engine.Run(context.Background(), g, CC{}, CCQuery{}, engine.Options{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range res {
		if c != 0 {
			t.Fatalf("grid is connected; vertex %d labeled %d", v, c)
		}
	}
}

func TestCCProperty(t *testing.T) {
	f := func(seed int64, nw uint8) bool {
		n := 2 + int(uint(seed)%80)
		g := gen.Random(n, n, seed)
		want := seq.Components(g)
		res, _, err := engine.Run(context.Background(), g, CC{}, CCQuery{},
			engine.Options{Workers: 1 + int(nw%5), Strategy: partition.Hash{}, CheckMonotonic: true})
		if err != nil {
			return false
		}
		if len(res) != len(want) {
			return false
		}
		for v, c := range want {
			if res[v] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCCLabelsAreComponentMinima(t *testing.T) {
	// Invariant: every component label is the minimum vertex ID of the
	// component, so a label must label itself.
	g := gen.PreferentialAttachment(300, 2, 4)
	res, _, err := engine.Run(context.Background(), g, CC{}, CCQuery{}, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range res {
		if c > v {
			t.Fatalf("label %d exceeds member %d", c, v)
		}
		if res[c] != c {
			t.Fatalf("label %d is not its own label (%d)", c, res[c])
		}
	}
}
