package queries

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
)

// TestResidentConcurrentPrograms is the serving-layer safety argument made
// executable: several different programs run simultaneously over ONE shared
// frozen layout through the resident-run entry point, each result asserted
// equal to a solo engine.Run. CI runs the whole test suite under -race, so
// any write to the shared fragments (or unsynchronized lazy cache) fails
// loudly here.
func TestResidentConcurrentPrograms(t *testing.T) {
	// one graph every hops-0 program can answer: labeled person/product
	// commerce topology with keyword props sprinkled on top
	g := gen.SocialCommerce(gen.SocialCommerceConfig{People: 300, Products: 10, Follows: 4, AdoptP: 0.9, Seed: 11})
	gen.AttachKeywords(g, []string{"db", "graph"}, 2, 0.1, 11)
	const workers = 6
	opts := engine.Options{Workers: workers, Strategy: partition.Hash{}}

	layout, err := engine.BuildLayout(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range layout.Fragments {
		if !f.G.Frozen() {
			t.Fatalf("fragment %d not frozen", f.Index)
		}
	}

	progs := []struct {
		program, query string
	}{
		{"sssp", "source=0"},
		{"cc", ""},
		{"sim", "pattern=follows-recommend"},
		{"keyword", "k=db,graph bound=6"},
	}

	// solo runs on a private layout are the reference
	want := map[string]any{}
	for _, p := range progs {
		e, err := engine.Lookup(p.program)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := e.Run(context.Background(), g, opts, p.query)
		if err != nil {
			t.Fatal(err)
		}
		want[p.program] = res
	}

	// one pooled runner per program, shared by several goroutines each —
	// exercises both cross-program concurrency on the layout and scratch
	// pooling within a runner
	runners := map[string]engine.ResidentRunner{}
	parsed := map[string]engine.ParsedQuery{}
	for _, p := range progs {
		e, _ := engine.Lookup(p.program)
		pq, err := e.Parse(p.query)
		if err != nil {
			t.Fatal(err)
		}
		if pq.Hops != 0 {
			t.Fatalf("%s needs hops=%d, cannot share the hops-0 layout", p.program, pq.Hops)
		}
		r, err := e.Resident(layout, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		runners[p.program] = r
		parsed[p.program] = pq
	}

	const goroutinesPerProgram = 3
	const runsPerGoroutine = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(progs)*goroutinesPerProgram)
	for _, p := range progs {
		for i := 0; i < goroutinesPerProgram; i++ {
			wg.Add(1)
			go func(program string) {
				defer wg.Done()
				for j := 0; j < runsPerGoroutine; j++ {
					res, stats, err := runners[program].RunParsed(context.Background(), parsed[program])
					if err != nil {
						errs <- fmt.Errorf("%s: %w", program, err)
						return
					}
					if stats.Workers != workers {
						errs <- fmt.Errorf("%s: ran on %d workers, want %d", program, stats.Workers, workers)
						return
					}
					if !reflect.DeepEqual(res, want[program]) {
						errs <- fmt.Errorf("%s: concurrent resident result differs from solo engine.Run", program)
						return
					}
				}
			}(p.program)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestResidentExpandedLayouts runs the locality-bounded programs (their
// fragments are d-hop expanded) concurrently over a shared expanded layout.
func TestResidentExpandedLayouts(t *testing.T) {
	g := gen.SocialCommerce(gen.SocialCommerceConfig{People: 300, Products: 10, Follows: 4, AdoptP: 0.9, Seed: 11})
	opts := engine.Options{Workers: 4, Strategy: partition.Hash{}}

	for _, p := range []struct {
		program, query string
	}{
		{"subiso", "pattern=follows-recommend max=100"},
		{"tricount", ""},
	} {
		t.Run(p.program, func(t *testing.T) {
			e, err := engine.Lookup(p.program)
			if err != nil {
				t.Fatal(err)
			}
			pq, err := e.Parse(p.query)
			if err != nil {
				t.Fatal(err)
			}
			if pq.Hops == 0 {
				t.Fatalf("%s should need expanded fragments", p.program)
			}
			expOpts := opts
			expOpts.ExpandHops = pq.Hops
			layout, err := engine.BuildLayout(g, expOpts)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := e.Run(context.Background(), g, opts, p.query)
			if err != nil {
				t.Fatal(err)
			}
			r, err := e.Resident(layout, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, _, err := r.RunParsed(context.Background(), pq)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res, want) {
						errs <- fmt.Errorf("concurrent resident result differs from solo run")
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestResidentRejectsUnfrozenLayout pins the safety precondition.
func TestResidentRejectsUnfrozenLayout(t *testing.T) {
	g := gen.RoadGrid(8, 8, 1)
	layout, err := engine.BuildLayout(g, engine.Options{Workers: 2, Strategy: partition.Hash{}})
	if err != nil {
		t.Fatal(err)
	}
	// thaw one fragment by mutating it
	layout.Fragments[0].G.AddVertex(graph.ID(10_000), "")
	e, err := engine.Lookup("sssp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Resident(layout, engine.Options{}); err == nil {
		t.Fatal("resident runner accepted a thawed fragment")
	}
}

// TestParseCanonicalization pins the shared parser's canonical forms — the
// cache-key contract of the serving layer.
func TestParseCanonicalization(t *testing.T) {
	cases := []struct {
		program, query, canonical string
		hops                      int
	}{
		{"sssp", "  source=7 ", "source=7", 0},
		{"cc", "", "", 0},
		{"cc", "ignored=yes", "", 0},
		{"sim", "pattern=triangle", "pattern=triangle", 0},
		{"subiso", "pattern=triangle", "pattern=triangle", 1},
		{"subiso", "max=5 pattern=triangle", "pattern=triangle max=5", 1},
		{"keyword", "bound=4.0 k=db,graph", "k=db,graph bound=4", 0},
		{"keyword", "k=db bound=2 noindex=1", "k=db bound=2 noindex=1", 0},
		{"cf", "", "epochs=20 k=8 lr=0.02 reg=0.05", 0},
		{"cf", "epochs=20 lr=0.020", "epochs=20 k=8 lr=0.02 reg=0.05", 0},
		{"tricount", "", "", 1},
	}
	for _, c := range cases {
		pq, err := Parse(c.program, c.query)
		if err != nil {
			t.Fatalf("%s %q: %v", c.program, c.query, err)
		}
		if pq.Canonical != c.canonical {
			t.Errorf("%s %q: canonical %q, want %q", c.program, c.query, pq.Canonical, c.canonical)
		}
		if pq.Hops != c.hops {
			t.Errorf("%s %q: hops %d, want %d", c.program, c.query, pq.Hops, c.hops)
		}
		if pq.Program != c.program {
			t.Errorf("%s: parsed program %q", c.program, pq.Program)
		}
	}
	if _, err := Parse("sssp", "source=abc"); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := Parse("nope", ""); err == nil {
		t.Error("unknown program accepted")
	}
}
