package queries

import (
	"fmt"
	"math"
	"strconv"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/seq"
)

// CFQuery asks for a matrix factorization of the bipartite ratings graph.
type CFQuery struct {
	Cfg seq.CFConfig
}

// CFResult is the trained model and its fit.
type CFResult struct {
	// RMSE is the root-mean-square error over all ratings under the final
	// factors.
	RMSE float64
	// Factors holds the latent vector of every user and item (owner copy).
	Factors seq.Factors
}

// cfState is CF's per-worker state: the true factor matrices (the node
// variables only mirror the border subset) and the epoch counter. Factors
// live in a flat slice indexed by the fragment graph's dense vertex index so
// every rating edge of an SGD epoch lands on its operands without hashing.
type cfState struct {
	factors [][]float64 // dense vertex index -> latent vector (nil = unset)
	users   []int32     // dense indices of inner users, ascending by ID
	epoch   int
}

// CF is the PIE program for collaborative filtering via stochastic gradient
// descent — the demo's machine-learning query class. Each fragment trains on
// the ratings of its inner users; the latent vectors of border vertices
// (items rated from several fragments, mostly) are the update parameters,
// reconciled by parameter averaging.
//
// CF is the one program in the library without a monotonic order (SGD is
// not monotone); it terminates instead because every worker stops changing
// its parameters after a fixed number of epochs — GRAPE still reaches its
// fixpoint, it just cannot invoke the Assurance Theorem for it.
type CF struct{}

// Name implements engine.Program.
func (CF) Name() string { return "cf" }

// Spec implements engine.Program: factor vectors under parameter averaging.
func (CF) Spec() engine.VarSpec[[]float64] {
	return engine.VarSpec[[]float64]{
		Default: nil,
		Agg: func(a, b []float64) []float64 {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			out := make([]float64, len(a))
			for i := range a {
				out[i] = (a[i] + b[i]) / 2
			}
			return out
		},
		Eq: func(a, b []float64) bool {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		},
		Size: func(v []float64) int { return 8 * len(v) },
	}
}

// initVec derives a deterministic pseudo-random initial factor vector from
// (seed, vertex); every replica of a vertex computes the same vector, so
// initialization ships nothing.
func initVec(seed int64, id graph.ID, k int) []float64 {
	v := make([]float64, k)
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(id)*0xbf58476d1ce4e5b9
	for i := range v {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		v[i] = float64(x%1000) / 10000.0 // [0, 0.1)
	}
	return v
}

// PEval implements engine.Program: initialize factors and run the first
// epoch (or all of them when the fragment shares nothing with others).
func (CF) PEval(q CFQuery, ctx *engine.Context[[]float64]) error {
	cfg := q.Cfg
	if cfg.Factors <= 0 || cfg.Epochs <= 0 {
		return fmt.Errorf("cf: need positive Factors and Epochs, got %+v", cfg)
	}
	f := ctx.Frag
	g := f.G
	st := &cfState{factors: make([][]float64, g.NumVertices())}
	ctx.State = st
	for _, v := range g.SortedVertices() {
		i, _ := g.Index(v)
		st.factors[i] = initVec(cfg.Seed, v, cfg.Factors)
	}
	iidx := f.InnerIndices()
	for k, u := range f.Inner {
		if g.Label(u) == "user" {
			st.users = append(st.users, iidx[k])
		}
	}
	epochs := 1
	if len(f.Border()) == 0 {
		epochs = cfg.Epochs // nothing to synchronize with
	}
	for e := 0; e < epochs; e++ {
		work := cfEpoch(g, st, cfg)
		ctx.AddWork(work)
		st.epoch++
	}
	cfShipBorder(ctx, st)
	return nil
}

// cfEpoch runs one SGD pass, over the CSR form when the fragment graph is
// frozen and through the boundary API otherwise (a thawed session graph).
// Both visit the ratings in the same order.
func cfEpoch(g *graph.Graph, st *cfState, cfg seq.CFConfig) int64 {
	if g.Frozen() {
		work, _, _ := seq.SGDEpochIdx(g, st.users, st.factors, cfg)
		return work
	}
	var work int64
	for _, u := range st.users {
		pu := st.factors[u]
		for _, e := range g.Out(g.IDAt(u)) {
			i, _ := g.Index(e.To)
			qi := st.factors[i]
			if qi == nil || pu == nil {
				continue
			}
			seq.SGDStep(pu, qi, e.W, cfg)
			work += int64(len(pu))
		}
	}
	return work
}

// IncEval implements engine.Program: adopt the averaged border factors and
// run one more epoch, until the epoch budget is exhausted.
func (CF) IncEval(q CFQuery, ctx *engine.Context[[]float64]) error {
	st := ctx.State.(*cfState)
	for _, u := range ctx.UpdatedAt() {
		st.factors[u] = append([]float64(nil), ctx.GetAt(u)...)
		ctx.AddWork(1)
	}
	if st.epoch >= q.Cfg.Epochs {
		return nil // trained out; stop changing parameters
	}
	work := cfEpoch(ctx.Frag.G, st, q.Cfg)
	ctx.AddWork(work)
	st.epoch++
	cfShipBorder(ctx, st)
	return nil
}

func cfShipBorder(ctx *engine.Context[[]float64], st *cfState) {
	for _, b := range ctx.Frag.BorderIndices() {
		if b < 0 || int(b) >= len(st.factors) {
			continue // border ID not (yet) in the fragment graph / state
		}
		if vec := st.factors[b]; vec != nil {
			ctx.SetAt(b, append([]float64(nil), vec...))
		}
	}
}

// Assemble implements engine.Program: collect owner factors and compute the
// global RMSE with each rating evaluated under its owner fragment's model.
func (CF) Assemble(q CFQuery, ctxs []*engine.Context[[]float64]) (CFResult, error) {
	res := CFResult{Factors: make(seq.Factors)}
	var sq float64
	n := 0
	for _, ctx := range ctxs {
		st := ctx.State.(*cfState)
		g := ctx.Frag.G
		iidx := ctx.Frag.InnerIndices()
		for k, v := range ctx.Frag.Inner {
			if vec := st.factors[iidx[k]]; vec != nil {
				res.Factors[v] = vec
			}
		}
		for _, u := range st.users {
			pu := st.factors[u]
			if g.Frozen() {
				for _, e := range g.OutAt(u) {
					qi := st.factors[e.To]
					if qi == nil {
						continue
					}
					d := e.W - dotVec(pu, qi)
					sq += d * d
					n++
				}
				continue
			}
			for _, e := range g.Out(g.IDAt(u)) {
				i, _ := g.Index(e.To)
				qi := st.factors[i]
				if qi == nil {
					continue
				}
				d := e.W - dotVec(pu, qi)
				sq += d * d
				n++
			}
		}
	}
	if n > 0 {
		res.RMSE = math.Sqrt(sq / float64(n))
	}
	return res, nil
}

func dotVec(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func parseCF(query string) (CFQuery, error) {
	kv, err := parseKV(query)
	if err != nil {
		return CFQuery{}, err
	}
	cfg := seq.DefaultCFConfig()
	if s, ok := kv["epochs"]; ok {
		if cfg.Epochs, err = strconv.Atoi(s); err != nil {
			return CFQuery{}, fmt.Errorf("cf: bad epochs: %v", err)
		}
	}
	if s, ok := kv["k"]; ok {
		if cfg.Factors, err = strconv.Atoi(s); err != nil {
			return CFQuery{}, fmt.Errorf("cf: bad k: %v", err)
		}
	}
	if s, ok := kv["lr"]; ok {
		if cfg.LR, err = strconv.ParseFloat(s, 64); err != nil {
			return CFQuery{}, fmt.Errorf("cf: bad lr: %v", err)
		}
	}
	if s, ok := kv["reg"]; ok {
		if cfg.Reg, err = strconv.ParseFloat(s, 64); err != nil {
			return CFQuery{}, fmt.Errorf("cf: bad reg: %v", err)
		}
	}
	return CFQuery{Cfg: cfg}, nil
}

// canonicalCF spells out every hyperparameter, so a query relying on a
// default and one naming it explicitly share a cache entry.
func canonicalCF(q CFQuery) string {
	return fmt.Sprintf("epochs=%d k=%d lr=%s reg=%s", q.Cfg.Epochs, q.Cfg.Factors, fmtFloat(q.Cfg.LR), fmtFloat(q.Cfg.Reg))
}

func init() {
	engine.Register(entry(CF{},
		"collaborative filtering via SGD matrix factorization (one epoch per superstep, parameter averaging)",
		"[epochs=<n>] [k=<factors>] [lr=<rate>] [reg=<lambda>]",
		parseCF, canonicalCF, nil))
}
