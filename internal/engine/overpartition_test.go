package engine

import (
	"context"
	"testing"

	"grape/internal/gen"
	"grape/internal/graph"
)

// floodProg labels every vertex with the minimum vertex ID among its
// ancestors (including itself) by flooding IDs along out-edges. Unlike
// countdown, its fixpoint is independent of how the graph is partitioned,
// so it can assert result equivalence between a direct n-way partition and
// the over-partition + LPT-rebalance path of partitionFor.
type floodProg struct{}

func (floodProg) Name() string { return "floodmin" }

func (floodProg) Spec() VarSpec[int64] {
	return VarSpec[int64]{
		Default: 1 << 62,
		Agg: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		Eq:   func(a, b int64) bool { return a == b },
		Less: func(a, b int64) bool { return a < b },
	}
}

func floodRelax(ctx *Context[int64], seeds []graph.ID) {
	queue := append([]graph.ID(nil), seeds...)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := ctx.Get(u)
		for _, e := range ctx.Frag.G.Out(u) {
			if du < ctx.Get(e.To) {
				ctx.Set(e.To, du)
				queue = append(queue, e.To)
			}
		}
		ctx.AddWork(1)
	}
}

func (floodProg) PEval(q cdQuery, ctx *Context[int64]) error {
	vs := ctx.Frag.G.Vertices()
	for _, v := range vs {
		if int64(v) < ctx.Get(v) {
			ctx.Set(v, int64(v))
		}
	}
	floodRelax(ctx, vs)
	return nil
}

func (floodProg) IncEval(q cdQuery, ctx *Context[int64]) error {
	floodRelax(ctx, ctx.Updated())
	return nil
}

func (floodProg) Assemble(q cdQuery, ctxs []*Context[int64]) (map[graph.ID]int64, error) {
	out := map[graph.ID]int64{}
	for _, ctx := range ctxs {
		ctx.Vars(func(id graph.ID, v int64) {
			if ctx.Frag.IsInner(id) {
				out[id] = v
			}
		})
	}
	return out, nil
}

// TestOverPartitionMatchesDirectRun drives the Load Balancer branch of
// partitionFor (Options.Fragments > Options.Workers: over-partition, then
// LPT-pack onto the workers) and asserts the engine returns exactly the
// results of the direct n-way partition.
func TestOverPartitionMatchesDirectRun(t *testing.T) {
	g := gen.PreferentialAttachment(800, 3, 11)
	direct, _, err := Run(context.Background(), g, floodProg{}, cdQuery{}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	over, stats, err := Run(context.Background(), g, floodProg{}, cdQuery{}, Options{Workers: 4, Fragments: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 4 {
		t.Fatalf("rebalance must pack onto 4 workers, got %d", stats.Workers)
	}
	if len(over) != len(direct) {
		t.Fatalf("over-partitioned run assembled %d vertices, direct %d", len(over), len(direct))
	}
	for v, want := range direct {
		if got := over[v]; got != want {
			t.Fatalf("vertex %d: over-partitioned %d, direct %d", v, got, want)
		}
	}
}
