package engine

import (
	"encoding/binary"
	"errors"
	"fmt"

	"grape/internal/graph"
	"grape/internal/partition"
)

// Superstep checkpoints. At every barrier the coordinator already holds
// exactly the state a failed fragment needs to be rebuilt: the folded
// update-parameter changes of each superstep (what buildRoute shipped) and
// each worker's keep-active flag. A checkpoint retains a copy of both per
// superstep ("epoch"), so when a worker dies the coordinator can derive, for
// any fragment, the precise command sequence the fragment saw — PEval, then
// per superstep the sorted update batch it was sent — and replay it on a
// fresh context hosted by a survivor. Programs are deterministic functions
// of that sequence, so the replayed context is byte-identical to the lost
// one and the resumed fixpoint converges to the failure-free answer.
//
// Checkpoints are coordinator-side and in-memory: they cost no extra
// communication (the records are copies of what the fold already computed)
// and die with the run. Options.CheckpointStore additionally streams each
// epoch out as an encoded frame, the hook a durable store can implement
// without the engine knowing about storage.

// CheckpointStore receives every superstep checkpoint epoch of a run as an
// opaque encoded frame (see appendEpochFrame for the layout). AppendEpoch is
// called once per superstep, in order, from the coordinator's barrier; an
// error fails the run. Implementations that persist frames can rebuild the
// coordinator's recovery state offline.
type CheckpointStore interface {
	AppendEpoch(step int, frame []byte) error
}

// ckptEpoch is one superstep's snapshot: the folded changes (in fold shard
// order, exactly as buildRoute walked them) and the post-superstep
// keep-active flag of every worker.
type ckptEpoch[V any] struct {
	recs   []changeRec[V]
	active []bool
}

// checkpoint accumulates epochs across a run's supersteps. epochs[k] is the
// snapshot taken at the barrier of superstep k+1 (supersteps start at 1).
type checkpoint[V any] struct {
	spec   VarSpec[V] //grapevet:keep construction-time identity: fixed per run, like foldState.spec
	layout *partition.Layout
	n      int
	epochs []ckptEpoch[V]
	store  CheckpointStore
	codec  Codec[V]
}

func newCheckpoint[V any](spec VarSpec[V], layout *partition.Layout, store CheckpointStore, codec Codec[V]) *checkpoint[V] {
	return &checkpoint[V]{spec: spec, layout: layout, n: len(layout.Fragments), store: store, codec: codec}
}

// append snapshots superstep step from the just-completed fold. Steps are
// sequential from 1; the fold's changed shards are copied (the fold reuses
// its buffers next superstep), the stillActive set is flattened to a dense
// flag slice.
func (c *checkpoint[V]) append(step int, fold *foldState[V], stillActive map[int]bool) error {
	if step != len(c.epochs)+1 {
		return fmt.Errorf("engine: checkpoint epoch %d out of order (have %d)", step, len(c.epochs))
	}
	total := 0
	for s := 0; s < fold.shards; s++ {
		total += len(fold.changed[s])
	}
	recs := make([]changeRec[V], 0, total)
	for s := 0; s < fold.shards; s++ {
		recs = append(recs, fold.changed[s]...)
	}
	active := make([]bool, c.n)
	for w := 0; w < c.n; w++ {
		active[w] = stillActive[w]
	}
	ep := ckptEpoch[V]{recs: recs, active: active}
	c.epochs = append(c.epochs, ep)
	if c.store != nil {
		if err := c.store.AppendEpoch(step, appendEpochFrame(c.codec, nil, ep)); err != nil {
			return fmt.Errorf("engine: checkpoint store at superstep %d: %w", step, err)
		}
	}
	return nil
}

// replayStep is one superstep of a fragment's derived command log: the
// update batch the coordinator sent the fragment at that superstep.
type replayStep[V any] struct {
	step    int
	updates []VarUpdate[V]
}

// replayFor derives fragment frag's command log for supersteps 2..through
// (superstep 1 is always PEval and needs no epoch). For each superstep it
// re-runs buildRoute's routing rule against the epoch's folded records —
// queue variables to the owner, converged variables to every host except the
// winner — and keeps the superstep iff the fragment was scheduled (non-empty
// batch, or it had asked to stay active). The result is exactly the frame
// sequence the lost worker consumed.
func (c *checkpoint[V]) replayFor(frag, through int) []replayStep[V] {
	var steps []replayStep[V]
	for s := 2; s <= through && s-2 < len(c.epochs); s++ {
		ep := c.epochs[s-2]
		var batch []VarUpdate[V]
		for _, rec := range ep.recs {
			if c.spec.Consume {
				if c.layout.Asg.Owner(rec.id) == frag {
					batch = append(batch, VarUpdate[V]{ID: rec.id, Val: rec.val})
				}
				continue
			}
			if rec.winner == frag {
				continue
			}
			for _, h := range c.layout.Hosts(rec.id) {
				if h == frag {
					batch = append(batch, VarUpdate[V]{ID: rec.id, Val: rec.val})
					break
				}
			}
		}
		if len(batch) == 0 && !ep.active[frag] {
			continue
		}
		sortUpdates(batch)
		steps = append(steps, replayStep[V]{step: s, updates: batch})
	}
	return steps
}

// Epoch frame layout (the CheckpointStore encoding): uvarint record count;
// per record a uvarint node ID, the codec-encoded value, and a uvarint
// winning worker; then a uvarint worker count followed by one active flag
// byte per worker.

func appendEpochFrame[V any](c Codec[V], buf []byte, ep ckptEpoch[V]) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ep.recs)))
	for _, rec := range ep.recs {
		buf = binary.AppendUvarint(buf, uint64(rec.id))
		buf = c.AppendVal(buf, rec.val)
		buf = binary.AppendUvarint(buf, uint64(rec.winner))
	}
	buf = binary.AppendUvarint(buf, uint64(len(ep.active)))
	for _, a := range ep.active {
		if a {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

func decodeEpochFrame[V any](c Codec[V], frame []byte) (ckptEpoch[V], error) {
	var ep ckptEpoch[V]
	pos := 0
	n, err := graph.ReadUvarint(frame, &pos)
	if err != nil {
		return ep, err
	}
	for i := uint64(0); i < n; i++ {
		var rec changeRec[V]
		id, err := graph.ReadUvarint(frame, &pos)
		if err != nil {
			return ep, err
		}
		rec.id = graph.ID(id)
		v, used, err := c.DecodeVal(frame[pos:])
		if err != nil {
			return ep, err
		}
		pos += used
		rec.val = v
		w, err := graph.ReadUvarint(frame, &pos)
		if err != nil {
			return ep, err
		}
		rec.winner = int(w)
		ep.recs = append(ep.recs, rec)
	}
	workers, err := graph.ReadUvarint(frame, &pos)
	if err != nil {
		return ep, err
	}
	if uint64(len(frame)-pos) < workers {
		return ep, errors.New("engine: truncated checkpoint epoch frame")
	}
	ep.active = make([]bool, workers)
	for i := range ep.active {
		ep.active[i] = frame[pos+i] != 0
	}
	return ep, nil
}
