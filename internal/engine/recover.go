package engine

// Fragment recovery. When a transport surfaces a worker-fatal error (see
// internal/mpi's classification) at a superstep barrier, the coordinator
// does not fail the run: it revives the dead worker's fragment on a
// survivor — a fresh context, rebuilt by replaying the checkpoint-derived
// command log — and resumes the fixpoint as if nothing happened. The
// replayed context is byte-identical to the lost one (programs are
// deterministic functions of their command sequence), so results, superstep
// counts and traffic accounting all match the failure-free run.

// recoverer is the hook collectStep uses to survive worker-fatal envelopes.
// sched aliases the run loop's per-superstep scheduling flags: a dead worker
// that was scheduled this superstep and has not replied yet still owes the
// barrier one reply, which the revived fragment must produce (owe = the
// superstep number; 0 = nothing owed). revive re-homes the fragment and
// returns the worker index that adopted it.
type recoverer[V any] struct {
	ckpt   *checkpoint[V]
	sched  []bool
	revive func(frag, through, owe int) (host int, err error)
}

// replayFragment rebuilds ctx to the state the lost fragment held after
// superstep max(through), mirroring workerLoop/serveWire exactly: PEval,
// then per logged superstep apply-then-IncEval under the same
// updated-or-active gate. Flushes and work counters of replayed supersteps
// are discarded — the coordinator already folded those replies — except at
// the owed superstep, whose flush the caller ships as the reply the barrier
// is still waiting for (replayFragment leaves it queued in ctx).
func replayFragment[Q, V, R any](prog Program[Q, V, R], q Q, ctx *Context[V], steps []replayStep[V], owe int) error {
	discard := func() {
		ctx.flush()
		ctx.takeWork()
	}
	ctx.active = false
	if err := prog.PEval(q, ctx); err != nil {
		return err
	}
	if owe != 1 {
		discard()
	}
	for _, st := range steps {
		wasActive := ctx.active
		ctx.active = false
		ctx.apply(st.updates)
		var err error
		if len(ctx.Updated()) > 0 || wasActive {
			err = prog.IncEval(q, ctx)
		}
		if err != nil {
			return err
		}
		if st.step != owe {
			discard()
		}
	}
	return nil
}
