package engine

import (
	"math"
	"reflect"
	"testing"
)

func TestEdgeUpdateCodecRoundTrip(t *testing.T) {
	batches := [][]EdgeUpdate{
		nil,
		{{From: 1, To: 2, W: 1.5}},
		{
			{From: 0, To: 0, W: 0, Label: ""},
			{From: 1 << 40, To: 7, W: -3.25, Label: "rates", Del: true},
			{From: 3, To: 9, W: math.Inf(1), Label: "likes"},
			{From: 9, To: 3, W: math.MaxFloat64, Del: true},
		},
	}
	for _, ups := range batches {
		buf := AppendEdgeUpdates(nil, ups)
		got, used, err := DecodeEdgeUpdates(buf)
		if err != nil {
			t.Fatalf("decode(%v): %v", ups, err)
		}
		if used != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", used, len(buf))
		}
		if len(got) != len(ups) {
			t.Fatalf("round trip: want %d updates, got %d", len(ups), len(got))
		}
		for i := range ups {
			if !reflect.DeepEqual(got[i], ups[i]) {
				t.Fatalf("round trip at %d: want %+v, got %+v", i, ups[i], got[i])
			}
		}
	}
}

func TestEdgeUpdateCodecRejectsMalformed(t *testing.T) {
	good := AppendEdgeUpdates(nil, []EdgeUpdate{{From: 5, To: 6, W: 2, Label: "x", Del: true}})
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeEdgeUpdates(good[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d decoded cleanly", cut, len(good))
		}
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] = 7 // delete flag must be 0 or 1
	if _, _, err := DecodeEdgeUpdates(bad); err == nil {
		t.Fatal("bad delete flag decoded cleanly")
	}
}
