package engine

import (
	"context"
	"strings"
	"testing"

	"grape/internal/gen"
	"grape/internal/graph"
)

// sessionProg is countdown extended with an Updater so the session machinery
// can be tested without pulling in the queries package (which would create
// an import cycle for engine tests).
type sessionProg struct{ countdown }

// ApplyUpdate lowers the target endpoint's value to the edge weight if that
// improves it (a decrease-only toy update rule).
func (sessionProg) ApplyUpdate(q cdQuery, ctx *Context[int64], upd EdgeUpdate) ([]graph.ID, error) {
	w := int64(upd.W)
	if w < ctx.Get(upd.To) {
		ctx.Set(upd.To, w)
		return []graph.ID{upd.To}, nil
	}
	return nil, nil
}

func TestSessionInitialRunMatchesRun(t *testing.T) {
	g := gen.Random(60, 180, 21)
	want, _, err := Run(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, got, _, err := NewSession(context.Background(), g, sessionProg{}, cdQuery{}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("session initial run differs: %d vs %d", len(got), len(want))
	}
	for v, x := range want {
		if got[v] != x {
			t.Fatalf("vertex %d: %d vs %d", v, got[v], x)
		}
	}
}

func TestSessionUpdatePropagatesAcrossFragments(t *testing.T) {
	// chain 0 -> 1 -> 2 -> 3 spread over fragments; lowering one node's
	// value via an update must reach its copies and halve onward.
	g := graph.New()
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	s, res, _, err := NewSession(context.Background(), g, sessionProg{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("want 4 vertices, got %d", len(res))
	}
	// insert an edge 0 -> 3 with weight 2: ApplyUpdate lowers 3's value to 2,
	// then the halving fixpoint brings it to 1
	res2, stats, err := s.Update(context.Background(), []EdgeUpdate{{From: 0, To: 3, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res2[3] != 1 {
		t.Fatalf("update did not converge: vertex 3 = %d", res2[3])
	}
	if stats.Supersteps < 1 {
		t.Fatal("incremental run should have at least one superstep")
	}
	// Result() re-assembles without recomputation
	res3, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res3[3] != res2[3] {
		t.Fatal("Result() differs from Update()'s answer")
	}
}

func TestSessionUpdateCreatesOuterCopy(t *testing.T) {
	// an update whose target was never on the source's fragment forces a
	// new outer copy + placement extension
	g := graph.New()
	g.AddVertex(0, "")
	g.AddVertex(100, "")
	g.AddEdge(0, 1, 1) // fragment of 0 knows 1
	s, _, _, err := NewSession(context.Background(), g, sessionProg{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Update(context.Background(), []EdgeUpdate{{From: 0, To: 100, W: 3}}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res[100] != 1 { // 3 halves to 1
		t.Fatalf("vertex 100 should have converged to 1, got %d", res[100])
	}
}

func TestSessionRejectsUnknownVertices(t *testing.T) {
	g := gen.Random(20, 40, 1)
	s, _, _, err := NewSession(context.Background(), g, sessionProg{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Update(context.Background(), []EdgeUpdate{{From: 0, To: 99999, W: 1}}); err == nil {
		t.Fatal("expected error for unknown vertex")
	}
}

func TestSessionRejectsNonUpdaterProgram(t *testing.T) {
	g := gen.Random(20, 40, 2)
	s, _, _, err := NewSession(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Update(context.Background(), []EdgeUpdate{{From: 0, To: 1, W: 1}})
	if err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Fatalf("want unsupported error, got %v", err)
	}
}

func TestSessionRejectsUndirected(t *testing.T) {
	g := graph.NewUndirected()
	g.AddEdge(0, 1, 1)
	if _, _, _, err := NewSession(context.Background(), g, sessionProg{}, cdQuery{}, Options{Workers: 2}); err == nil {
		t.Fatal("expected undirected rejection")
	}
}
