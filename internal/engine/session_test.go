package engine

import (
	"context"
	"strings"
	"testing"

	"grape/internal/gen"
	"grape/internal/graph"
)

// sessionProg is countdown extended with an Updater so the session machinery
// can be tested without pulling in the queries package (which would create
// an import cycle for engine tests).
type sessionProg struct{ countdown }

// ApplyUpdate lowers the target endpoint's value to the edge weight if that
// improves it (a decrease-only toy update rule).
func (sessionProg) ApplyUpdate(q cdQuery, ctx *Context[int64], upd EdgeUpdate) ([]graph.ID, error) {
	w := int64(upd.W)
	if w < ctx.Get(upd.To) {
		ctx.Set(upd.To, w)
		return []graph.ID{upd.To}, nil
	}
	return nil, nil
}

func TestSessionInitialRunMatchesRun(t *testing.T) {
	g := gen.Random(60, 180, 21)
	want, _, err := Run(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, got, _, err := NewSession(context.Background(), g, sessionProg{}, cdQuery{}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("session initial run differs: %d vs %d", len(got), len(want))
	}
	for v, x := range want {
		if got[v] != x {
			t.Fatalf("vertex %d: %d vs %d", v, got[v], x)
		}
	}
}

func TestSessionUpdatePropagatesAcrossFragments(t *testing.T) {
	// chain 0 -> 1 -> 2 -> 3 spread over fragments; lowering one node's
	// value via an update must reach its copies and halve onward.
	g := graph.New()
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	s, res, _, err := NewSession(context.Background(), g, sessionProg{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("want 4 vertices, got %d", len(res))
	}
	// insert an edge 0 -> 3 with weight 2: ApplyUpdate lowers 3's value to 2,
	// then the halving fixpoint brings it to 1
	res2, stats, err := s.Update(context.Background(), []EdgeUpdate{{From: 0, To: 3, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res2[3] != 1 {
		t.Fatalf("update did not converge: vertex 3 = %d", res2[3])
	}
	if stats.Supersteps < 1 {
		t.Fatal("incremental run should have at least one superstep")
	}
	// Result() re-assembles without recomputation
	res3, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res3[3] != res2[3] {
		t.Fatal("Result() differs from Update()'s answer")
	}
}

func TestSessionUpdateCreatesOuterCopy(t *testing.T) {
	// an update whose target was never on the source's fragment forces a
	// new outer copy + placement extension
	g := graph.New()
	g.AddVertex(0, "")
	g.AddVertex(100, "")
	g.AddEdge(0, 1, 1) // fragment of 0 knows 1
	s, _, _, err := NewSession(context.Background(), g, sessionProg{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Update(context.Background(), []EdgeUpdate{{From: 0, To: 100, W: 3}}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res[100] != 1 { // 3 halves to 1
		t.Fatalf("vertex 100 should have converged to 1, got %d", res[100])
	}
}

func TestSessionRejectsUnknownVertices(t *testing.T) {
	g := gen.Random(20, 40, 1)
	s, _, _, err := NewSession(context.Background(), g, sessionProg{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Update(context.Background(), []EdgeUpdate{{From: 0, To: 99999, W: 1}}); err == nil {
		t.Fatal("expected error for unknown vertex")
	}
}

func TestSessionNonUpdaterProgramReseeds(t *testing.T) {
	// a program with no incremental hooks still takes updates: the session
	// falls back to reseeding, which must match a from-scratch run on the
	// mutated graph
	g := gen.Random(20, 40, 2)
	s, _, _, err := NewSession(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Update(context.Background(), []EdgeUpdate{{From: 0, To: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Run(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, x := range want {
		if got[v] != x {
			t.Fatalf("vertex %d after reseed: %d vs fresh run %d", v, got[v], x)
		}
	}
}

func TestSessionReseedHandlesDeletes(t *testing.T) {
	g := gen.Random(20, 60, 3)
	s, _, _, err := NewSession(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := g.Out(g.Vertices()[0])[0]
	batch := []EdgeUpdate{{From: g.Vertices()[0], To: e.To, Label: e.Label, Del: true}}
	got, _, err := s.Update(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Run(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, x := range want {
		if got[v] != x {
			t.Fatalf("vertex %d after delete reseed: %d vs fresh run %d", v, got[v], x)
		}
	}
}

func TestSessionValidateRejectsMissingDelete(t *testing.T) {
	g := gen.Random(20, 40, 4)
	s, _, _, err := NewSession(context.Background(), g, sessionProg{}, cdQuery{}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	vs := g.Vertices()
	var u, v graph.ID = vs[0], vs[1]
	for _, e := range g.Out(u) { // ensure u->v does not exist
		if e.To == v {
			t.Skip("random graph happens to contain the edge")
		}
	}
	edges := g.NumEdges()
	_, _, err = s.Update(context.Background(), []EdgeUpdate{{From: u, To: v, Del: true}})
	if err == nil || !strings.Contains(err.Error(), "no matching edge") {
		t.Fatalf("want missing-edge rejection, got %v", err)
	}
	if g.NumEdges() != edges {
		t.Fatal("rejected batch must not mutate the graph")
	}
	if s.Broken() {
		t.Fatal("rejected batch must not break the session")
	}
	// a batch may delete an edge it inserted earlier in the same batch
	if _, _, err := s.Update(context.Background(), []EdgeUpdate{
		{From: u, To: v, W: 1},
		{From: u, To: v, Del: true},
	}); err != nil {
		t.Fatalf("insert-then-delete within one batch should validate: %v", err)
	}
}

func TestSessionRejectsUndirected(t *testing.T) {
	g := graph.NewUndirected()
	g.AddEdge(0, 1, 1)
	if _, _, _, err := NewSession(context.Background(), g, sessionProg{}, cdQuery{}, Options{Workers: 2}); err == nil {
		t.Fatal("expected undirected rejection")
	}
}

// TestThawMutateRefreezeKeepsResidentStable is the regression pinning the
// session/serving interaction with the CSR lifecycle: mutating the base
// graph (which thaws it) and refreezing must keep the graph's dense vertex
// indices stable, and a pooled Resident built over the pre-mutation layout
// must keep producing bit-identical results — its recycled contexts, fold
// state and fragment graphs may not alias storage the mutation touched.
func TestThawMutateRefreezeKeepsResidentStable(t *testing.T) {
	g := ring(64)
	idx := make(map[graph.ID]int32, g.NumVertices())
	for _, v := range g.Vertices() {
		i, ok := g.Index(v)
		if !ok {
			t.Fatalf("frozen graph has no index for %d", v)
		}
		idx[v] = i
	}
	layout, err := BuildLayout(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	steps := make(chan struct{}, 4096)
	r, err := NewResident(layout, stepper{steps: steps}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := stepQuery{limit: 40}
	want, _, err := r.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		u, v := graph.ID(round), graph.ID(63-round)
		g.AddLabeledEdge(u, v, 1, "tmp") // thaws the CSR form
		if g.Frozen() {
			t.Fatalf("round %d: mutation left the graph frozen", round)
		}
		if _, ok := g.RemoveEdge(u, v, "tmp"); !ok {
			t.Fatalf("round %d: temporary edge vanished", round)
		}
		g.Freeze()
		if g.NumVertices() != len(idx) {
			t.Fatalf("round %d: vertex count changed: %d", round, g.NumVertices())
		}
		for id, wantIdx := range idx {
			got, ok := g.Index(id)
			if !ok || got != wantIdx {
				t.Fatalf("round %d: dense index of %d moved: %d -> %d (ok=%v)", round, id, wantIdx, got, ok)
			}
		}
		got, _, err := r.Run(context.Background(), q)
		if err != nil {
			t.Fatalf("round %d: pooled run after thaw/refreeze: %v", round, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d vertices, want %d", round, len(got), len(want))
		}
		for id, val := range want {
			if got[id] != val {
				t.Fatalf("round %d: vertex %d = %d, want %d (pooled scratch not bit-identical after base-graph mutation)",
					round, id, got[id], val)
			}
		}
	}
}
