package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
)

// RunAsync executes a PIE program without BSP barriers: workers exchange
// changed update parameters peer-to-peer and re-run IncEval the moment a
// batch arrives, instead of waiting for a global superstep. This is the
// direction GRAPE's follow-up work (adaptive asynchronous parallelization)
// took; for programs with a monotonic update-parameter order the fixpoint
// is unique, so the asynchronous schedule reaches exactly the same answer —
// property tests assert RunAsync ≡ Run.
//
// Asynchrony changes the cost profile, not the answer: there are no
// straggler barriers (the simulated time of an async run is the busiest
// worker's total work plus traffic, with a single startup latency), at the
// price of potentially more re-computation and traffic because workers act
// on stale values. Programs relying on coordinated rounds (CF's epoch
// lockstep, the Simulation Theorem adapter) need the synchronous engine;
// RunAsync rejects Consume-typed programs.
//
// Termination uses Dijkstra–Scholten-style credit counting: a shared
// counter tracks unprocessed tasks (the initial PEval tasks plus every
// routed batch); a worker decrements only after it has finished processing
// a task and enqueued all resulting batches, so the counter cannot reach
// zero while work is still in flight.
//
// Cancellation: ctx is observed at every delivery round — a cancelled
// context closes the shutdown channel, every mailbox wakes, and workers
// exit before processing another batch (a worker mid-IncEval finishes that
// one activation first). RunAsync then returns ctx's error.
func RunAsync[Q, V, R any](ctx context.Context, g *graph.Graph, prog Program[Q, V, R], q Q, opts Options) (R, *metrics.Stats, error) {
	var zero R
	opts = opts.withDefaults()
	spec := prog.Spec()
	if spec.Consume {
		return zero, nil, fmt.Errorf("engine: %s uses consumable message queues; async mode requires convergent state", prog.Name())
	}
	if opts.Transport != nil {
		return zero, nil, fmt.Errorf("engine: async mode runs on the in-process bus only (peer-to-peer mailboxes have no wire framing)")
	}
	layout := opts.Layout
	if layout == nil {
		asg, err := opts.Strategy.Partition(g, opts.Workers)
		if err != nil {
			return zero, nil, err
		}
		if opts.ExpandHops > 0 {
			layout = partition.BuildExpanded(g, asg, opts.ExpandHops)
		} else {
			layout = partition.Build(g, asg)
		}
	}
	n := len(layout.Fragments)
	start := time.Now()
	stats := &metrics.Stats{Engine: "grape-async/" + prog.Name(), Workers: n}

	ctxs := make([]*Context[V], n)
	boxes := make([]*mailbox[V], n)
	for i, f := range layout.Fragments {
		ctxs[i] = newContext(f, spec)
		boxes[i] = newMailbox[V]()
	}

	var (
		pending     atomic.Int64 // unprocessed tasks (credits)
		msgs, bytes atomic.Int64
		workTotal   = make([]int64, n)
		firstErr    atomic.Value
		doneOnce    sync.Once
		done        = make(chan struct{})
	)
	finish := func() { doneOnce.Do(func() { close(done) }) }
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, error(err))
		finish()
	}

	// route fans a worker's flushed changes out to the hosting fragments.
	// Hosts reads the layout's dense host index, and batches are gathered in
	// a dense per-host table (host order is naturally ascending) — batch
	// slices themselves are fresh per call because mailboxes retain them
	// until the receiver drains.
	route := func(w int, changes []VarUpdate[V]) {
		if len(changes) == 0 {
			return
		}
		byHost := make([][]VarUpdate[V], n)
		for _, u := range changes {
			for _, h := range layout.Hosts(u.ID) {
				if h == w {
					continue
				}
				byHost[h] = append(byHost[h], u)
			}
		}
		for h, batch := range byHost {
			if len(batch) == 0 {
				continue
			}
			msgs.Add(1)
			bytes.Add(int64(shipSize(spec, batch)))
			pending.Add(1)
			boxes[h].push(batch)
		}
	}

	// Cancellation watcher: a cancelled run context fails the run, which
	// closes done and wakes every mailbox below.
	go func() {
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-done:
		}
	}()

	// Shutdown broadcaster: sync.Cond cannot select on a channel, so wake
	// every mailbox under its lock once done closes (the lock serializes
	// against the check-then-Wait in pop, preventing missed wakeups).
	go func() {
		<-done
		for _, b := range boxes {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		}
	}()

	pending.Add(int64(n)) // one PEval task per worker
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(w int) {
			defer wg.Done()
			ctx := ctxs[w]
			// PEval task
			if err := prog.PEval(q, ctx); err != nil {
				fail(fmt.Errorf("worker %d peval: %w", w, err))
				return
			}
			workTotal[w] += ctx.takeWork()
			route(w, ctx.flush())
			if pending.Add(-1) == 0 {
				finish()
			}
			for {
				// Drain the whole inbox per activation: reacting to one
				// batch at a time multiplies stale recomputation, so real
				// asynchronous engines coalesce pending updates.
				batches, ok := boxes[w].popAll(done)
				if !ok {
					return
				}
				merged := batches[0]
				for _, b := range batches[1:] {
					merged = append(merged, b...)
				}
				ctx.apply(merged)
				if len(ctx.Updated()) > 0 {
					if err := prog.IncEval(q, ctx); err != nil {
						fail(fmt.Errorf("worker %d inceval: %w", w, err))
						return
					}
				}
				workTotal[w] += ctx.takeWork()
				route(w, ctx.flush())
				if pending.Add(int64(-len(batches))) == 0 {
					finish()
				}
			}
		}(i)
	}
	<-done
	wg.Wait()

	if err, _ := firstErr.Load().(error); err != nil {
		// wrap only genuine cancellations: a worker error that races with a
		// ctx that happens to be done must keep its own identity
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("engine: async %s cancelled: %w", prog.Name(), err)
		}
		return zero, stats, err
	}
	// One "superstep" row per worker: async has no barriers, so the cost
	// model charges max total work + one latency + total bytes — the
	// barrier-free profile that is the point of asynchronous execution.
	stats.Supersteps = 1
	stats.WorkPerStep = [][]int64{workTotal}
	stats.BytesPerStep = []int64{bytes.Load()}
	stats.Messages = msgs.Load()
	stats.Bytes = bytes.Load()
	res, err := prog.Assemble(q, ctxs)
	stats.WallTime = time.Since(start)
	if err != nil {
		return zero, stats, fmt.Errorf("engine: assemble: %w", err)
	}
	return res, stats, nil
}

// mailbox is an unbounded MPSC queue with blocking pop; unboundedness is
// what makes the peer-to-peer routing deadlock-free.
type mailbox[V any] struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    [][]VarUpdate[V]
}

func newMailbox[V any]() *mailbox[V] {
	m := &mailbox[V]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox[V]) push(batch []VarUpdate[V]) {
	m.mu.Lock()
	m.q = append(m.q, batch)
	m.mu.Unlock()
	m.cond.Signal()
}

// popAll blocks until at least one batch is queued (or done closes, second
// return false) and drains the entire queue.
func (m *mailbox[V]) popAll(done <-chan struct{}) ([][]VarUpdate[V], bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.q) == 0 {
		select {
		case <-done:
			return nil, false
		default:
		}
		// The shutdown broadcaster wakes every mailbox when done closes;
		// Cond cannot select on channels directly.
		m.cond.Wait()
	}
	batches := m.q
	m.q = nil
	return batches, true
}
