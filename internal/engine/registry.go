package engine

import (
	"fmt"
	"sort"
	"sync"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
)

// Entry describes a PIE program registered in the GRAPE API library — the
// demo's "plug" panel. Run erases the program's generic types so that the
// CLI and examples can pick programs by name and drive them with a textual
// query (the "play" panel).
type Entry struct {
	// Name is the registry key, e.g. "sssp".
	Name string
	// Description is a one-line summary shown by the library listing.
	Description string
	// QueryHelp documents the query string syntax accepted by Run.
	QueryHelp string
	// Run parses query, executes the program on g, and returns its result.
	// With a wire transport in opts.Transport the run is distributed; the
	// worker half of that protocol is Wire below.
	Run func(g *graph.Graph, opts Options, query string) (any, *metrics.Stats, error)
	// Wire serves the worker side of a distributed run: decode the query
	// from the setup frame, run PEval/IncEval on the shipped fragment as
	// commanded, ship encoded replies and the final partial answer.
	// Programs register it with WireServe; nil means the program has no
	// wire codec and cannot run distributed.
	Wire func(link WorkerLink, query []byte, f *partition.Fragment) error
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Entry)
)

// Register adds a program to the library. It panics on duplicate names:
// registration happens in package init, where a duplicate is a programming
// error.
func Register(e Entry) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate program %q", e.Name))
	}
	registry[e.Name] = e
}

// Lookup returns the registered program with the given name.
func Lookup(name string) (Entry, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return Entry{}, fmt.Errorf("engine: no program %q registered (have %v)", name, names())
	}
	return e, nil
}

// Library lists all registered programs sorted by name.
func Library() []Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Entry, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func names() []string {
	ns := make([]string, 0, len(registry))
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}
