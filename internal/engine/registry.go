package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
)

// ParsedQuery is a textual query resolved into a program's typed query plus
// the two facts a serving layer needs before running it: a canonical string
// (two query strings with the same semantics canonicalize identically, so it
// is safe cache-key material) and the fragment expansion the query requires
// (Options.ExpandHops; e.g. SubIso needs fragments expanded to the pattern
// radius, so a resident layout must have been built with the same hops).
type ParsedQuery struct {
	// Program is the registry name of the program that parsed the query.
	Program string
	// Query is the typed query value (e.g. queries.SSSPQuery).
	Query any
	// Canonical is the normalized query string: defaults resolved, numbers
	// reformatted, parameter order fixed.
	Canonical string
	// Hops is the d-hop fragment expansion this query needs (0 for most
	// programs; locality-bounded ones like SubIso and TriCount need > 0).
	Hops int
}

// ResidentRunner answers parsed queries over a prebuilt layout that stays
// resident between calls — the serving layer's handle on one (program,
// layout) pair. Implementations are safe for concurrent use: every call
// runs on its own contexts over the shared frozen fragments. The context
// bounds one call; a cancelled or expired context aborts the run at the
// next superstep barrier.
type ResidentRunner interface {
	RunParsed(ctx context.Context, pq ParsedQuery) (any, *metrics.Stats, error)
}

// SessionHandle is the erased view of a Session the serving layer drives:
// apply update batches, re-read the retained answer, and detect divergence.
// Implementations are NOT safe for concurrent use — the serving layer
// serializes mutations per graph.
type SessionHandle interface {
	// Update applies a batch of mixed edge insertions and deletions and
	// returns the brought-up-to-date result (see Session.Update).
	Update(ctx context.Context, updates []EdgeUpdate) (any, *metrics.Stats, error)
	// Result re-assembles the current answer without recomputation.
	Result() (any, error)
	// Broken reports whether an aborted update diverged the retained state;
	// a broken session must be dropped and rebuilt.
	Broken() bool
}

// Entry describes a PIE program registered in the GRAPE API library — the
// demo's "plug" panel. Its function fields erase the program's generic
// types so that the CLI, the serving layer and examples can pick programs
// by name and drive them with a textual query (the "play" panel).
//
// Entries are built with MakeEntry, which derives every hook from one typed
// source (the program plus its parse/canonical pair), so the hooks cannot
// drift apart: Run always parses through the same Parse the serving layer
// uses, Resident always answers exactly the queries Parse produces, and
// Wire is present exactly when the program has a wire codec. Register
// rejects hand-assembled entries with missing hooks.
type Entry struct {
	// Name is the registry key, e.g. "sssp".
	Name string
	// Description is a one-line summary shown by the library listing.
	Description string
	// QueryHelp documents the query string syntax accepted by Run.
	QueryHelp string
	// Run parses query, executes the program on g, and returns its result.
	// The context bounds the run exactly as in the generic Run. With a wire
	// transport in opts.Transport the run is distributed; the worker half
	// of that protocol is Wire below.
	Run func(ctx context.Context, g *graph.Graph, opts Options, query string) (any, *metrics.Stats, error)
	// Parse resolves a textual query without running it: typed query,
	// canonical form, required fragment expansion. The CLI, the serving
	// layer and tests all parse through here so they cannot drift.
	Parse func(query string) (ParsedQuery, error)
	// Resident builds a runner answering this program's parsed queries over
	// a caller-owned prebuilt layout, without re-partitioning and with
	// per-run scratch pooled across calls. The layout's fragments must be
	// frozen and built with the expansion Parse reported for the queries it
	// will see.
	Resident func(layout *partition.Layout, opts Options) (ResidentRunner, error)
	// Session runs the initial fixpoint for a parsed query on g and retains
	// the distributed state for incremental updates (NewSession). Every
	// program has one: programs without incremental hooks fall back to
	// reseeding inside the session on each update batch. Sessions partition g
	// themselves (with the expansion pq.Hops requires), own their fragments,
	// and run on the in-process bus.
	Session func(ctx context.Context, g *graph.Graph, opts Options, pq ParsedQuery) (SessionHandle, any, *metrics.Stats, error)
	// Wire serves the worker side of a distributed run: decode the query
	// from the setup frame, run PEval/IncEval on the shipped fragment as
	// commanded, ship encoded replies and the final partial answer, honoring
	// the deadline the coordinator propagated in the setup frame. This is
	// the one capability-gated hook: MakeEntry fills it only when the
	// program implements WireProgram; nil means the program cannot run
	// distributed.
	Wire func(ctx context.Context, link WorkerLink, query []byte, f *partition.Fragment) error
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Entry)
)

// Register adds a program to the library. It panics on duplicate names and
// on entries with missing hooks: registration happens in package init,
// where both are programming errors. Build entries with MakeEntry — it
// derives a coherent set of hooks from the typed program; the only hook
// allowed to be nil is Wire (a genuine capability: no wire codec, no
// distributed runs).
func Register(e Entry) {
	regMu.Lock()
	defer regMu.Unlock()
	if e.Name == "" {
		panic("engine: Register: empty program name")
	}
	if e.Run == nil || e.Parse == nil || e.Resident == nil || e.Session == nil {
		panic(fmt.Sprintf("engine: Register(%q): incomplete entry (build it with MakeEntry)", e.Name))
	}
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate program %q", e.Name))
	}
	registry[e.Name] = e
}

// Lookup returns the registered program with the given name.
func Lookup(name string) (Entry, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return Entry{}, fmt.Errorf("engine: no program %q registered (have %v)", name, names())
	}
	return e, nil
}

// Library lists all registered programs sorted by name.
func Library() []Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Entry, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func names() []string {
	ns := make([]string, 0, len(registry))
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}
