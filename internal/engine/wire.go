package engine

import (
	"errors"
	"fmt"
	"time"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/partition"
)

// This file is the engine's wire layer: everything needed to run the PIE
// fixpoint with each worker in its own OS process on the far side of a
// socket transport (internal/transport). The superstep schedule, fold order
// and routing are byte-for-byte the machinery of run.go/fold.go — only the
// envelope contents change, from Go values passed by reference to frames
// encoded by the program's Codec. Results, superstep counts and the
// coordinator's aggregation are therefore identical across transports; what
// differs is metering, which switches from the VarSpec.Size estimate to the
// actual encoded lengths.

// WireProgram is a Program that can run distributed: it provides a wire
// codec for its update-parameter values and an encoding for its query, so
// the coordinator can ship both to worker processes. Programs whose Assemble
// reads more than the node variables additionally implement PartialCodec.
type WireProgram[Q, V, R any] interface {
	Program[Q, V, R]
	// WireCodec returns the update-parameter value codec.
	WireCodec() Codec[V]
	// EncodeQuery serializes q for the setup frame.
	EncodeQuery(q Q) ([]byte, error)
	// DecodeQuery is the worker-side inverse of EncodeQuery.
	DecodeQuery(data []byte) (Q, error)
}

// PartialCodec is implemented by wire programs whose Assemble reads
// program-private state (Context.State or Context.Partial) rather than just
// the node variables. EncodePartial runs on the worker after the fixpoint;
// DecodePartial reconstitutes a coordinator-side Context that Assemble can
// consume. Programs without it get the default: the worker ships all set
// node variables and the coordinator replays them with SetLocal.
type PartialCodec[Q, V any] interface {
	EncodePartial(q Q, ctx *Context[V]) ([]byte, error)
	DecodePartial(q Q, ctx *Context[V], data []byte) error
}

// WorkerLink is a worker's end of a wire transport: the mirror image of the
// coordinator's mpi.Transport. internal/transport's WorkerConn implements it
// over a socket; tests implement it over channels.
type WorkerLink interface {
	// Recv blocks until a frame from the coordinator arrives.
	Recv() (mpi.Envelope, error)
	// Send delivers a frame to the coordinator.
	Send(e mpi.Envelope) error
}

// ErrNoWireSupport is returned (wrapped) when a distributed run is requested
// for a program that does not implement WireProgram, or whose registry entry
// lacks a Wire hook.
var ErrNoWireSupport = errors.New("program has no wire codec")

// runWire is RunOnLayout's body for wire transports: the same coordinator
// fixpoint, driving remote workers through opts.Transport instead of
// spawning goroutines. Each worker process receives a setup frame (program
// name, encoded query, its fragment), runs PEval/IncEval on command, and
// finally ships its encoded partial answer back for Assemble.
func runWire[Q, V, R any](layout *partition.Layout, prog Program[Q, V, R], q Q, opts Options) (R, *metrics.Stats, error) {
	var zero R
	wp, ok := any(prog).(WireProgram[Q, V, R])
	if !ok {
		return zero, nil, fmt.Errorf("engine: %s: %w", prog.Name(), ErrNoWireSupport)
	}
	tr := opts.Transport
	n := len(layout.Fragments)
	if tr.Workers() != n {
		return zero, nil, fmt.Errorf("engine: transport has %d workers but the layout has %d fragments", tr.Workers(), n)
	}
	spec := prog.Spec()
	codec := wp.WireCodec()

	start := time.Now()
	stats := &metrics.Stats{Engine: "grape/" + prog.Name(), Workers: n, Transport: "wire"}

	qblob, err := wp.EncodeQuery(q)
	if err != nil {
		return zero, stats, fmt.Errorf("engine: encoding query: %w", err)
	}
	for i, f := range layout.Fragments {
		setup := encodeSetup(prog.Name(), qblob, partition.AppendFragment(nil, f))
		tr.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Frame: setup})
	}

	fold := newFoldState(spec, n)
	stillActive := make(map[int]bool)
	replies := make([]*workerReply[V], n)
	collect := func(expect, step int) ([][]VarUpdate[V], int, error) {
		return collectStep(tr, codec, fold, replies, stillActive, stats, layout, expect, step, opts.CheckMonotonic)
	}
	stopFrame, _ := encodeCmd(codec, workerCmd[V]{kind: cmdStop})
	stop := func() {
		for i := 0; i < n; i++ {
			tr.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Frame: stopFrame})
		}
	}

	if layout.ReplicationBytes > 0 {
		tr.AddTraffic(int64(n), layout.ReplicationBytes)
	}

	// Superstep 1: PEval everywhere.
	peFrame, _ := encodeCmd(codec, workerCmd[V]{kind: cmdPEval})
	for i := 0; i < n; i++ {
		tr.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Step: 1, Frame: peFrame})
	}
	stats.Supersteps = 1
	route, scheduled, err := collect(n, 1)
	if err != nil {
		stop()
		return zero, stats, err
	}
	if layout.ReplicationBytes > 0 && len(stats.BytesPerStep) > 0 {
		stats.BytesPerStep[0] += layout.ReplicationBytes
	}

	// Supersteps 2..: IncEval on fragments with pending updates, exactly as
	// in RunOnLayout.
	for scheduled > 0 || len(stillActive) > 0 {
		if stats.Supersteps >= opts.MaxSupersteps {
			stop()
			return zero, stats, fmt.Errorf("engine: %s after %d supersteps: %w", prog.Name(), stats.Supersteps, ErrSuperstepLimit)
		}
		stats.Supersteps++
		active := 0
		for w := 0; w < n; w++ {
			ups := route[w]
			if len(ups) == 0 && !stillActive[w] {
				continue
			}
			active++
			frame, dataLen := encodeCmd(codec, workerCmd[V]{kind: cmdIncEval, updates: ups})
			tr.Send(mpi.Envelope{From: mpi.Coordinator, To: w, Step: stats.Supersteps, Frame: frame, Size: dataLen})
		}
		route, scheduled, err = collect(active, stats.Supersteps)
		if err != nil {
			stop()
			return zero, stats, err
		}
	}

	// Fixpoint reached: pull every worker's encoded partial answer,
	// reconstitute coordinator-side contexts, release the workers, Assemble.
	asmFrame, _ := encodeCmd(codec, workerCmd[V]{kind: cmdAssemble})
	for i := 0; i < n; i++ {
		tr.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Frame: asmFrame})
	}
	ctxs := make([]*Context[V], n)
	for i, f := range layout.Fragments {
		ctxs[i] = newContext(f, spec)
	}
	seen := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		env := tr.Recv(mpi.Coordinator)
		blob, err := wireFrame(env)
		if err == nil {
			blob, err = decodePartialFrame(blob)
		}
		if err != nil {
			stop()
			return zero, stats, fmt.Errorf("engine: worker %d partial result: %w", env.From, err)
		}
		if env.From < 0 || env.From >= n || seen[env.From] {
			stop()
			return zero, stats, fmt.Errorf("engine: unexpected partial result from worker %d", env.From)
		}
		seen[env.From] = true
		if err := decodePartial(wp, codec, q, ctxs[env.From], blob); err != nil {
			stop()
			return zero, stats, fmt.Errorf("engine: worker %d partial result: %w", env.From, err)
		}
	}
	stop()

	res, err := prog.Assemble(q, ctxs)
	stats.Messages = tr.Messages()
	stats.Bytes = tr.Bytes()
	stats.WallTime = time.Since(start)
	if err != nil {
		return zero, stats, fmt.Errorf("engine: assemble: %w", err)
	}
	return res, stats, nil
}

// wireFrame unwraps an envelope from a wire transport, surfacing link
// failures (delivered as a nil Frame with the error in Payload).
func wireFrame(env mpi.Envelope) ([]byte, error) {
	if env.Frame != nil {
		return env.Frame, nil
	}
	if err, ok := env.Payload.(error); ok {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return nil, errors.New("transport: link closed")
}

// serveWire is the worker half of runWire: one fragment, one context, one
// connection; commands in, encoded replies out. It mirrors workerLoop.
func serveWire[Q, V, R any](prog WireProgram[Q, V, R], link WorkerLink, q Q, f *partition.Fragment) error {
	spec := prog.Spec()
	codec := prog.WireCodec()
	ctx := newContext(f, spec)
	for {
		env, err := link.Recv()
		if err != nil {
			return fmt.Errorf("engine: worker %d: %w", f.Index, err)
		}
		cmd, err := decodeCmd(codec, env.Frame)
		if err != nil {
			return fmt.Errorf("engine: worker %d: %w", f.Index, err)
		}
		switch cmd.kind {
		case cmdStop:
			return nil
		case cmdAssemble:
			blob, perr := encodePartial(prog, codec, q, ctx)
			size := 0
			if perr == nil {
				size = len(blob)
			}
			err = link.Send(mpi.Envelope{From: f.Index, To: mpi.Coordinator, Step: env.Step, Frame: encodePartialFrame(blob, perr), Size: size})
		case cmdPEval:
			ctx.active = false
			perr := prog.PEval(q, ctx)
			err = replyWire(link, codec, f.Index, env.Step, ctx, perr)
		case cmdIncEval:
			wasActive := ctx.active
			ctx.active = false
			ctx.apply(cmd.updates)
			var perr error
			if len(ctx.Updated()) > 0 || wasActive {
				perr = prog.IncEval(q, ctx)
			}
			err = replyWire(link, codec, f.Index, env.Step, ctx, perr)
		default:
			return fmt.Errorf("engine: worker %d: command %d is not supported over a wire transport", f.Index, cmd.kind)
		}
		if err != nil {
			return fmt.Errorf("engine: worker %d: %w", f.Index, err)
		}
	}
}

func replyWire[V any](link WorkerLink, codec Codec[V], w, step int, ctx *Context[V], perr error) error {
	changes := ctx.flush()
	frame, dataLen := encodeReply(codec, workerReply[V]{changes: changes, work: ctx.takeWork(), active: ctx.active, err: perr})
	return link.Send(mpi.Envelope{From: w, To: mpi.Coordinator, Step: step, Frame: frame, Size: dataLen})
}

// encodePartial produces the worker's post-fixpoint payload for Assemble:
// the program's PartialCodec encoding when it has one, else the default —
// every set node variable, sorted by ID.
func encodePartial[Q, V, R any](prog WireProgram[Q, V, R], codec Codec[V], q Q, ctx *Context[V]) ([]byte, error) {
	if pc, ok := any(prog).(PartialCodec[Q, V]); ok {
		return pc.EncodePartial(q, ctx)
	}
	var ups []VarUpdate[V]
	ctx.Vars(func(id graph.ID, v V) {
		ups = append(ups, VarUpdate[V]{ID: id, Val: v})
	})
	sortUpdates(ups)
	return AppendUpdates(codec, nil, ups), nil
}

// decodePartial is the coordinator-side inverse of encodePartial.
func decodePartial[Q, V, R any](prog WireProgram[Q, V, R], codec Codec[V], q Q, ctx *Context[V], blob []byte) error {
	if pc, ok := any(prog).(PartialCodec[Q, V]); ok {
		return pc.DecodePartial(q, ctx, blob)
	}
	ups, _, err := DecodeUpdates(codec, blob)
	if err != nil {
		return err
	}
	for _, u := range ups {
		ctx.SetLocal(u.ID, u.Val)
	}
	return nil
}

// WireServe adapts a WireProgram into the type-erased worker hook registered
// in Entry.Wire: it decodes the query from the setup frame and serves the
// fixpoint on the given fragment until the coordinator sends stop.
func WireServe[Q, V, R any](prog WireProgram[Q, V, R]) func(WorkerLink, []byte, *partition.Fragment) error {
	return func(link WorkerLink, query []byte, f *partition.Fragment) error {
		q, err := prog.DecodeQuery(query)
		if err != nil {
			return fmt.Errorf("engine: %s: decoding query: %w", prog.Name(), err)
		}
		return serveWire(prog, link, q, f)
	}
}

// ServeWorker runs one distributed worker session on an established link: it
// reads the setup frame, instantiates the registered program's worker loop
// on the decoded fragment, and serves until the coordinator releases it.
// cmd/grape-worker calls this after dialing the coordinator.
func ServeWorker(link WorkerLink) error {
	env, err := link.Recv()
	if err != nil {
		return fmt.Errorf("engine: reading setup frame: %w", err)
	}
	name, query, fragBlob, err := decodeSetup(env.Frame)
	if err != nil {
		return fmt.Errorf("engine: decoding setup frame: %w", err)
	}
	e, err := Lookup(name)
	if err != nil {
		return err
	}
	if e.Wire == nil {
		return fmt.Errorf("engine: %s: %w", name, ErrNoWireSupport)
	}
	f, _, err := partition.DecodeFragment(fragBlob)
	if err != nil {
		return fmt.Errorf("engine: decoding fragment: %w", err)
	}
	return e.Wire(link, query, f)
}
