package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"grape/internal/balance"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/partition"
	"grape/internal/trace"
)

// This file is the engine's wire layer: everything needed to run the PIE
// fixpoint with each worker in its own OS process on the far side of a
// socket transport (internal/transport). The superstep schedule, fold order
// and routing are byte-for-byte the machinery of run.go/fold.go — only the
// envelope contents change, from Go values passed by reference to frames
// encoded by the program's Codec. Results, superstep counts and the
// coordinator's aggregation are therefore identical across transports; what
// differs is metering, which switches from the VarSpec.Size estimate to the
// actual encoded lengths.

// WireProgram is a Program that can run distributed: it provides a wire
// codec for its update-parameter values and an encoding for its query, so
// the coordinator can ship both to worker processes. Programs whose Assemble
// reads more than the node variables additionally implement PartialCodec.
type WireProgram[Q, V, R any] interface {
	Program[Q, V, R]
	// WireCodec returns the update-parameter value codec.
	WireCodec() Codec[V]
	// EncodeQuery serializes q for the setup frame.
	EncodeQuery(q Q) ([]byte, error)
	// DecodeQuery is the worker-side inverse of EncodeQuery.
	DecodeQuery(data []byte) (Q, error)
}

// PartialCodec is implemented by wire programs whose Assemble reads
// program-private state (Context.State or Context.Partial) rather than just
// the node variables. EncodePartial runs on the worker after the fixpoint;
// DecodePartial reconstitutes a coordinator-side Context that Assemble can
// consume. Programs without it get the default: the worker ships all set
// node variables and the coordinator replays them with SetLocal.
type PartialCodec[Q, V any] interface {
	EncodePartial(q Q, ctx *Context[V]) ([]byte, error)
	DecodePartial(q Q, ctx *Context[V], data []byte) error
}

// WorkerLink is a worker's end of a wire transport: the mirror image of the
// coordinator's mpi.Transport. internal/transport's WorkerConn implements it
// over a socket; tests implement it over channels.
type WorkerLink interface {
	// Recv blocks until a frame from the coordinator arrives.
	Recv() (mpi.Envelope, error)
	// Send delivers a frame to the coordinator.
	Send(e mpi.Envelope) error
}

// ErrNoWireSupport is returned (wrapped) when a distributed run is requested
// for a program that does not implement WireProgram, or whose registry entry
// lacks a Wire hook.
var ErrNoWireSupport = errors.New("program has no wire codec")

// abortDrainTimeout bounds how long a cancelled coordinator waits for the
// in-flight superstep's replies after broadcasting abort frames. Normal
// runs drain within one superstep; the timeout only fires for pathological
// programs, whose workers then see a closed link instead of the abort.
const abortDrainTimeout = 30 * time.Second

// ErrAborted is returned (wrapped) by the worker side of a distributed run
// when the coordinator sends an abort frame: the run was cancelled (client
// gone, deadline expired), the partial state is garbage, and the worker
// should discard it and exit. cmd/grape-worker treats it as a clean exit.
var ErrAborted = errors.New("run aborted by coordinator")

// runWire is RunOnLayout's body for wire transports: the same coordinator
// fixpoint, driving remote workers through opts.Transport instead of
// spawning goroutines. Each worker process receives a setup frame (program
// name, encoded query, the run deadline if ctx carries one, its fragment),
// runs PEval/IncEval on command, and finally ships its encoded partial
// answer back for Assemble.
//
// Cancellation crosses the process boundary twice: the coordinator checks
// ctx at every superstep barrier and, when it fires, broadcasts an abort
// frame that makes each worker process discard its run and exit; and the
// deadline shipped in the setup frame lets a worker bound its own run even
// if the coordinator dies before it can send the abort.
func runWire[Q, V, R any](ctx context.Context, layout *partition.Layout, prog Program[Q, V, R], q Q, opts Options) (R, *metrics.Stats, error) {
	var zero R
	wp, ok := any(prog).(WireProgram[Q, V, R])
	if !ok {
		return zero, nil, fmt.Errorf("engine: %s: %w", prog.Name(), ErrNoWireSupport)
	}
	tr := opts.Transport
	n := len(layout.Fragments)
	if tr.Workers() != n {
		return zero, nil, fmt.Errorf("engine: transport has %d workers but the layout has %d fragments", tr.Workers(), n)
	}
	if opts.Fault != nil {
		tr = opts.Fault(tr)
	}
	var reassign mpi.Reassigner
	if opts.Recover {
		var ok bool
		if reassign, ok = tr.(mpi.Reassigner); !ok {
			return zero, nil, errors.New("engine: Options.Recover needs a transport that can reassign fragments (mpi.Reassigner)")
		}
	} else if opts.CheckpointStore != nil {
		return zero, nil, fmt.Errorf("engine: %s: Options.CheckpointStore requires Options.Recover", prog.Name())
	}
	spec := prog.Spec()
	codec := wp.WireCodec()

	start := time.Now()
	stats := &metrics.Stats{Engine: "grape/" + prog.Name(), Workers: n, Transport: "wire"}

	rec := trace.FromContext(ctx)
	rec.BeginRun(prog.Name(), "wire", n)
	defer rec.EndRun()
	lg := trace.LoggerFrom(ctx)
	if lg != nil {
		lg = lg.With("run", rec.ID(), "class", prog.Name(), "substrate", "wire")
		lg.Debug("run started", "workers", n)
	}

	qblob, err := wp.EncodeQuery(q)
	if err != nil {
		return zero, stats, fmt.Errorf("engine: encoding query: %w", err)
	}
	var deadlineMicros int64
	if dl, ok := ctx.Deadline(); ok {
		deadlineMicros = dl.UnixMicro()
	}
	for i, f := range layout.Fragments {
		setup := encodeSetup(prog.Name(), qblob, deadlineMicros, partition.AppendFragment(nil, f))
		tr.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Frame: setup})
	}

	fold := newFoldState(spec, n)
	stillActive := make(map[int]bool)
	replies := make([]*workerReply[V], n)
	// sched marks the workers commanded this superstep: the abort drain
	// waits on scheduled workers whose replies are still in flight, and the
	// recovery path uses it to decide whether a dead worker still owes the
	// barrier a reply.
	sched := make([]bool, n)

	// Recovery over the wire: each fragment starts on its own worker process
	// (host). When a host's link dies, every fragment assigned to it gets a
	// worker-fatal envelope; revive re-homes the fragment onto the least
	// loaded surviving host (the balancer's workload estimate, greedily —
	// the same quantity LPT packs), points the transport's routing at it,
	// and ships an adopt frame carrying the fragment plus its checkpoint
	// replay log. A host that dies during the reassignment is marked dead
	// and the pick repeats; with no survivors the run fails.
	var rc *recoverer[V]
	if opts.Recover {
		loads := balance.Estimate(layout, balance.DefaultWeights())
		hostOf := make([]int, n)
		aliveHost := make([]bool, n)
		hostLoad := make([]float64, n)
		for i := 0; i < n; i++ {
			hostOf[i] = i
			aliveHost[i] = true
			hostLoad[i] = loads[i]
		}
		rc = &recoverer[V]{ckpt: newCheckpoint(spec, layout, opts.CheckpointStore, codec), sched: sched}
		rc.revive = func(frag, through, owe int) (int, error) {
			aliveHost[hostOf[frag]] = false
			for {
				host := -1
				for h := 0; h < n; h++ {
					if aliveHost[h] && (host < 0 || hostLoad[h] < hostLoad[host]) {
						host = h
					}
				}
				if host < 0 {
					return 0, errors.New("no surviving workers to adopt the fragment")
				}
				if err := reassign.Reassign(frag, host); err != nil {
					aliveHost[host] = false
					continue
				}
				hostOf[frag] = host
				hostLoad[host] += loads[frag]
				frame := encodeAdopt(codec, partition.AppendFragment(nil, layout.Fragments[frag]), rc.ckpt.replayFor(frag, through), owe)
				tr.Send(mpi.Envelope{From: mpi.Coordinator, To: frag, Frame: frame})
				return host, nil
			}
		}
	}

	collect := func(expect, step int) ([][]VarUpdate[V], int, error) {
		return collectStep(ctx, tr, codec, fold, rc, replies, stillActive, stats, layout, rec, expect, step, opts.CheckMonotonic)
	}
	stopFrame, _ := encodeCmd(codec, workerCmd[V]{kind: cmdStop})
	abortFrame, _ := encodeCmd(codec, workerCmd[V]{kind: cmdAbort})
	// outstanding lists the workers that were commanded this superstep but
	// whose replies the failed collect did not drain — the writes still in
	// flight when a run is cancelled.
	outstanding := func() map[int]bool {
		waitFor := make(map[int]bool)
		for w := 0; w < n; w++ {
			if sched[w] && replies[w] == nil {
				waitFor[w] = true
			}
		}
		return waitFor
	}
	// stop releases workers after a completed run or a run error: plain
	// stop frames, workers exit cleanly. abort releases a *cancelled* run:
	// broadcast abort frames (workers discard state and surface
	// ErrAborted), then drain one frame from every worker whose reply is
	// still in flight — a worker mid-PEval/IncEval finishes and ships that
	// one reply, and consuming it keeps the coordinator's socket clean
	// until the worker reads the abort; returning (and closing) with
	// unread data in the receive buffer would RST the link and turn the
	// clean abort into a broken-pipe error on the worker. A worker whose
	// link errors (nil Frame) is gone and counts as drained; frames from
	// other workers (e.g. their link teardown as they exit on the abort)
	// are ignored. Bounded by one superstep of compute, with a hard
	// timeout as the backstop for pathological programs.
	stop := func() {
		for i := 0; i < n; i++ {
			tr.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Frame: stopFrame})
		}
	}
	abort := func(waitFor map[int]bool) {
		for i := 0; i < n; i++ {
			tr.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Frame: abortFrame})
		}
		//grapevet:keep the run ctx is already cancelled here; the drain needs its own fresh bound or Recv would return immediately
		dctx, cancel := context.WithTimeout(context.Background(), abortDrainTimeout)
		defer cancel()
		for len(waitFor) > 0 {
			e, err := tr.Recv(dctx, mpi.Coordinator)
			if err != nil {
				return
			}
			delete(waitFor, e.From)
		}
	}

	if layout.ReplicationBytes > 0 {
		tr.AddTraffic(int64(n), layout.ReplicationBytes)
	}

	// Superstep 1: PEval everywhere.
	rec.BeginStep(1, n)
	peFrame, _ := encodeCmd(codec, workerCmd[V]{kind: cmdPEval})
	for i := 0; i < n; i++ {
		tr.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Step: 1, Frame: peFrame})
	}
	// A worker that observes the propagated deadline before the coordinator
	// does replies with its context error, but that error crosses the wire
	// as a string and loses its errors.Is identity — re-attach the
	// coordinator-side sentinel so Run's contract ("returns ctx's error")
	// holds no matter which side noticed first.
	wrapCtx := func(err error) error {
		if cerr := ctx.Err(); cerr != nil && !errors.Is(err, cerr) {
			// both identities survive: a genuine worker error (e.g.
			// ErrNotMonotonic) racing the deadline stays errors.Is-able
			return fmt.Errorf("%w: %w", err, cerr)
		}
		return err
	}

	stats.Supersteps = 1
	for w := 0; w < n; w++ {
		sched[w] = true
	}
	route, scheduled, err := collect(n, 1)
	if err != nil {
		if ctx.Err() != nil {
			abort(outstanding())
		} else {
			stop()
		}
		return zero, stats, wrapCtx(err)
	}
	if layout.ReplicationBytes > 0 && len(stats.BytesPerStep) > 0 {
		stats.BytesPerStep[0] += layout.ReplicationBytes
	}

	// Supersteps 2..: IncEval on fragments with pending updates, exactly as
	// in RunOnLayout.
	for scheduled > 0 || len(stillActive) > 0 {
		if err := ctx.Err(); err != nil {
			abort(nil) // barrier reached: nothing in flight
			return zero, stats, cancelled(prog.Name(), stats.Supersteps, err)
		}
		if stats.Supersteps >= opts.MaxSupersteps {
			stop()
			return zero, stats, fmt.Errorf("engine: %s after %d supersteps: %w", prog.Name(), stats.Supersteps, ErrSuperstepLimit)
		}
		stats.Supersteps++
		active := 0
		for w := 0; w < n; w++ {
			if len(route[w]) > 0 || stillActive[w] {
				active++
			}
		}
		rec.BeginStep(stats.Supersteps, active)
		for w := 0; w < n; w++ {
			sched[w] = false
			ups := route[w]
			if len(ups) == 0 && !stillActive[w] {
				continue
			}
			sched[w] = true
			frame, dataLen := encodeCmd(codec, workerCmd[V]{kind: cmdIncEval, updates: ups})
			tr.Send(mpi.Envelope{From: mpi.Coordinator, To: w, Step: stats.Supersteps, Frame: frame, Size: dataLen})
		}
		route, scheduled, err = collect(active, stats.Supersteps)
		if err != nil {
			if ctx.Err() != nil {
				abort(outstanding())
			} else {
				stop()
			}
			return zero, stats, wrapCtx(err)
		}
	}

	// Fixpoint reached: pull every worker's encoded partial answer,
	// reconstitute coordinator-side contexts, release the workers, Assemble.
	asmFrame, _ := encodeCmd(codec, workerCmd[V]{kind: cmdAssemble})
	for i := 0; i < n; i++ {
		tr.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Frame: asmFrame})
	}
	ctxs := make([]*Context[V], n)
	for i, f := range layout.Fragments {
		ctxs[i] = newContext(f, spec)
	}
	seen := make(map[int]bool, n)
	for got := 0; got < n; got++ {
		env, rerr := tr.Recv(ctx, mpi.Coordinator)
		if rerr != nil {
			waitFor := make(map[int]bool)
			for w := 0; w < n; w++ {
				if !seen[w] {
					waitFor[w] = true
				}
			}
			abort(waitFor)
			return zero, stats, cancelled(prog.Name(), stats.Supersteps, rerr)
		}
		if perr, ok := env.Payload.(error); ok && env.Frame == nil {
			// A worker died between the fixpoint and shipping its partial.
			// Its fragment's full command log is checkpointed, so revive it
			// (nothing is owed — the fixpoint's replies all landed) and ask
			// the adopting worker for the partial instead.
			got--
			w, workerFatal := mpi.WorkerFatalOf(perr)
			if workerFatal && rc != nil && w >= 0 && w < n {
				if seen[w] {
					continue // this fragment's partial already landed; the death is moot
				}
				host, verr := rc.revive(w, stats.Supersteps, 0)
				if verr != nil {
					stop()
					return zero, stats, fmt.Errorf("engine: worker %d partial result: recovering from %v: %w", w, perr, verr)
				}
				stats.Recoveries = append(stats.Recoveries, metrics.Recovery{Superstep: stats.Supersteps, Fragment: w, Host: host})
				if rec != nil {
					rec.Event("recovery", fmt.Sprintf("assemble: fragment %d revived on worker %d", w, host))
				}
				tr.Send(mpi.Envelope{From: mpi.Coordinator, To: w, Frame: asmFrame})
				continue
			}
			stop()
			return zero, stats, fmt.Errorf("engine: worker %d partial result: %w", env.From, perr)
		}
		blob, err := wireFrame(env)
		if err == nil {
			blob, err = decodePartialFrame(blob)
		}
		if err != nil {
			stop()
			return zero, stats, fmt.Errorf("engine: worker %d partial result: %w", env.From, err)
		}
		if env.From < 0 || env.From >= n || seen[env.From] {
			stop()
			return zero, stats, fmt.Errorf("engine: unexpected partial result from worker %d", env.From)
		}
		seen[env.From] = true
		if err := decodePartial(wp, codec, q, ctxs[env.From], blob); err != nil {
			stop()
			return zero, stats, fmt.Errorf("engine: worker %d partial result: %w", env.From, err)
		}
	}
	stop()

	res, err := prog.Assemble(q, ctxs)
	stats.Messages = tr.Messages()
	stats.Bytes = tr.Bytes()
	stats.WallTime = time.Since(start)
	if lg != nil {
		lg.Info("run complete", "supersteps", stats.Supersteps, "wall_ms", stats.WallTime.Seconds()*1e3, "recoveries", len(stats.Recoveries))
	}
	if err != nil {
		return zero, stats, fmt.Errorf("engine: assemble: %w", err)
	}
	return res, stats, nil
}

// wireFrame unwraps an envelope from a wire transport, surfacing link
// failures (delivered as a nil Frame with the error in Payload).
func wireFrame(env mpi.Envelope) ([]byte, error) {
	if env.Frame != nil {
		return env.Frame, nil
	}
	if err, ok := env.Payload.(error); ok {
		//grapevet:keep the payload error was classified by the transport that emitted the fatal envelope
		return nil, fmt.Errorf("transport: %w", err)
	}
	return nil, mpi.RunFatal(errors.New("transport: link closed"))
}

// serveWire is the worker half of runWire: commands in, encoded replies
// out, mirroring workerLoop. A worker starts hosting the one fragment the
// setup frame assigned it, but recovery can hand it more: an adopt frame
// carries a dead peer's fragment plus its checkpoint replay log, and from
// then on commands are dispatched to the addressed fragment (Envelope.To,
// protocol v3's frag header field). The worker exits when every fragment it
// hosts has been released by a stop frame.
// runCtx carries the deadline the coordinator shipped in the setup frame
// (plus whatever the worker process layered on, e.g. a signal context): an
// expired context is reported back to the coordinator as this worker's
// error instead of silently computing past the deadline, and an abort
// frame makes the worker discard the run and return ErrAborted.
func serveWire[Q, V, R any](runCtx context.Context, prog WireProgram[Q, V, R], link WorkerLink, q Q, f *partition.Fragment) error {
	spec := prog.Spec()
	codec := prog.WireCodec()
	ctxs := map[int]*Context[V]{f.Index: newContext(f, spec)}
	for {
		env, err := link.Recv()
		if err != nil {
			return fmt.Errorf("engine: worker %d: %w", f.Index, err)
		}
		cmd, err := decodeCmd(codec, env.Frame)
		if err != nil {
			return fmt.Errorf("engine: worker %d: %w", f.Index, err)
		}
		if cmd.kind == cmdAdopt {
			ad := cmd.adopt
			nf, _, err := partition.DecodeFragment(ad.frag)
			if err != nil {
				return fmt.Errorf("engine: worker %d: decoding adopted fragment: %w", f.Index, err)
			}
			nc := newContext(nf, spec)
			rerr := replayFragment(prog, q, nc, ad.steps, ad.owe)
			ctxs[nf.Index] = nc
			if ad.owe > 0 || rerr != nil {
				if err := replyWire(link, codec, nf.Index, ad.owe, nc, 0, 0, rerr); err != nil {
					return fmt.Errorf("engine: worker %d: %w", f.Index, err)
				}
			}
			continue
		}
		ctx := ctxs[env.To]
		if ctx == nil {
			return mpi.RunFatal(fmt.Errorf("engine: worker %d: command for fragment %d, which this worker does not host", f.Index, env.To))
		}
		// The deadline gate: computing past an expired run context would
		// burn CPU the coordinator has already written off. Reply with the
		// context error so the coordinator fails the run cleanly even if
		// its own clock has not fired yet.
		if cerr := runCtx.Err(); cerr != nil && (cmd.kind == cmdPEval || cmd.kind == cmdIncEval) {
			if err := replyWire(link, codec, env.To, env.Step, ctx, 0, 0, cerr); err != nil {
				return fmt.Errorf("engine: worker %d: %w", f.Index, err)
			}
			continue
		}
		switch cmd.kind {
		case cmdStop:
			delete(ctxs, env.To)
			if len(ctxs) == 0 {
				return nil
			}
		case cmdAbort:
			//grapevet:keep ErrAborted is a cooperative shutdown the worker main matches with errors.Is, not a link fault
			return fmt.Errorf("engine: worker %d: %w", f.Index, ErrAborted)
		case cmdAssemble:
			blob, perr := encodePartial(prog, codec, q, ctx)
			size := 0
			if perr == nil {
				size = len(blob)
			}
			err = link.Send(mpi.Envelope{From: env.To, To: mpi.Coordinator, Step: env.Step, Frame: encodePartialFrame(blob, perr), Size: size})
		case cmdPEval:
			ctx.active = false
			t0 := time.Now()
			perr := prog.PEval(q, ctx)
			err = replyWire(link, codec, env.To, env.Step, ctx, time.Since(t0).Nanoseconds(), 0, perr)
		case cmdIncEval:
			wasActive := ctx.active
			ctx.active = false
			t0 := time.Now()
			ctx.apply(cmd.updates)
			applyNS := time.Since(t0).Nanoseconds()
			var perr error
			t1 := time.Now()
			if len(ctx.Updated()) > 0 || wasActive {
				perr = prog.IncEval(q, ctx)
			}
			err = replyWire(link, codec, env.To, env.Step, ctx, time.Since(t1).Nanoseconds(), applyNS, perr)
		default:
			return mpi.RunFatal(fmt.Errorf("engine: worker %d: command %d is not supported over a wire transport", f.Index, cmd.kind))
		}
		if err != nil {
			return fmt.Errorf("engine: worker %d: %w", f.Index, err)
		}
	}
}

func replyWire[V any](link WorkerLink, codec Codec[V], w, step int, ctx *Context[V], computeNS, applyNS int64, perr error) error {
	changes := ctx.flush()
	frame, dataLen := encodeReply(codec, workerReply[V]{changes: changes, work: ctx.takeWork(), active: ctx.active, err: perr, computeNS: computeNS, applyNS: applyNS})
	return link.Send(mpi.Envelope{From: w, To: mpi.Coordinator, Step: step, Frame: frame, Size: dataLen})
}

// encodePartial produces the worker's post-fixpoint payload for Assemble:
// the program's PartialCodec encoding when it has one, else the default —
// every set node variable, sorted by ID.
func encodePartial[Q, V, R any](prog WireProgram[Q, V, R], codec Codec[V], q Q, ctx *Context[V]) ([]byte, error) {
	if pc, ok := any(prog).(PartialCodec[Q, V]); ok {
		return pc.EncodePartial(q, ctx)
	}
	var ups []VarUpdate[V]
	ctx.Vars(func(id graph.ID, v V) {
		ups = append(ups, VarUpdate[V]{ID: id, Val: v})
	})
	sortUpdates(ups)
	return AppendUpdates(codec, nil, ups), nil
}

// decodePartial is the coordinator-side inverse of encodePartial.
func decodePartial[Q, V, R any](prog WireProgram[Q, V, R], codec Codec[V], q Q, ctx *Context[V], blob []byte) error {
	if pc, ok := any(prog).(PartialCodec[Q, V]); ok {
		return pc.DecodePartial(q, ctx, blob)
	}
	ups, _, err := DecodeUpdates(codec, blob)
	if err != nil {
		return err
	}
	for _, u := range ups {
		ctx.SetLocal(u.ID, u.Val)
	}
	return nil
}

// WireServe adapts a WireProgram into the type-erased worker hook registered
// in Entry.Wire: it decodes the query from the setup frame and serves the
// fixpoint on the given fragment until the coordinator releases (or aborts)
// it.
func WireServe[Q, V, R any](prog WireProgram[Q, V, R]) func(context.Context, WorkerLink, []byte, *partition.Fragment) error {
	return func(ctx context.Context, link WorkerLink, query []byte, f *partition.Fragment) error {
		q, err := prog.DecodeQuery(query)
		if err != nil {
			return fmt.Errorf("engine: %s: decoding query: %w", prog.Name(), err)
		}
		return serveWire(ctx, prog, link, q, f)
	}
}

// ServeWorker runs one distributed worker session on an established link: it
// reads the setup frame, instantiates the registered program's worker loop
// on the decoded fragment, and serves until the coordinator releases it —
// or aborts it (ErrAborted, a clean outcome for a cancelled run), or the
// propagated run deadline expires. ctx is the worker process's own bound
// (signal handling in cmd/grape-worker); the deadline the coordinator
// shipped in the setup frame is layered on top, so cancellation reaches the
// worker even when the abort frame cannot (coordinator death).
func ServeWorker(ctx context.Context, link WorkerLink) error {
	env, err := link.Recv()
	if err != nil {
		return fmt.Errorf("engine: reading setup frame: %w", err)
	}
	name, query, deadlineMicros, fragBlob, err := decodeSetup(env.Frame)
	if err != nil {
		return fmt.Errorf("engine: decoding setup frame: %w", err)
	}
	if deadlineMicros > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.UnixMicro(deadlineMicros))
		defer cancel()
		// A worker blocked in link.Recv would never observe the deadline —
		// the serve loop only checks the context between commands — so the
		// deadline also closes the link when the transport supports it,
		// unblocking the read. This is what makes the shipped deadline bind
		// even when the coordinator netsplits or wedges instead of dying
		// cleanly (a dead coordinator already breaks the link on its own).
		if c, ok := link.(interface{ Close() error }); ok {
			defer context.AfterFunc(ctx, func() { c.Close() })()
		}
	}
	e, err := Lookup(name)
	if err != nil {
		return err
	}
	if e.Wire == nil {
		//grapevet:keep ErrNoWireSupport is a setup rejection callers match with errors.Is, not a link fault
		return fmt.Errorf("engine: %s: %w", name, ErrNoWireSupport)
	}
	f, _, err := partition.DecodeFragment(fragBlob)
	if err != nil {
		return fmt.Errorf("engine: decoding fragment: %w", err)
	}
	err = e.Wire(ctx, link, query, f)
	if err != nil && ctx.Err() != nil && !errors.Is(err, ErrAborted) {
		// the deadline (or the process context) fired and tore the link
		// down; surface the bound, not the resulting read error
		//grapevet:keep the run bound firing is the engine's own outcome, not a link fault to classify
		return fmt.Errorf("engine: worker run cut short: %w", ctx.Err())
	}
	return err
}
