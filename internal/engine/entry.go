package engine

import (
	"context"
	"fmt"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
)

// EntrySpec is the one typed source an Entry is derived from: the PIE
// program plus its query-string parse/canonical pair. MakeEntry turns it
// into the registry's erased hooks, replacing the earlier scheme where
// Run, Parse, Resident and Wire accreted independently (half of them
// nil-able with "predates X" caveats) — now they are all views of the same
// spec and cannot disagree about what a query string means.
type EntrySpec[Q, V, R any] struct {
	// Prog is the PIE program. If it also implements WireProgram, the entry
	// gains the Wire hook and can run distributed.
	Prog Program[Q, V, R]
	// Description is a one-line summary shown by the library listing.
	Description string
	// QueryHelp documents the query string syntax Parse accepts.
	QueryHelp string
	// Parse resolves a query string into the typed query.
	Parse func(query string) (Q, error)
	// Canonical renders a typed query as its normalized string — the
	// cache-key form with defaults resolved, numbers reformatted and
	// parameter order fixed.
	Canonical func(q Q) string
	// Hops, if non-nil, reports the d-hop fragment expansion a query needs
	// (Options.ExpandHops); locality-bounded programs like SubIso set it,
	// most programs leave it nil (no expansion).
	Hops func(q Q) int
}

// MakeEntry derives the full erased hook set of an Entry from one typed
// spec. It panics on an incomplete spec — entries are built in package
// init, where that is a programming error.
func MakeEntry[Q, V, R any](s EntrySpec[Q, V, R]) Entry {
	if s.Prog == nil {
		panic("engine: MakeEntry: nil program")
	}
	if s.Parse == nil || s.Canonical == nil {
		panic(fmt.Sprintf("engine: MakeEntry(%q): Parse and Canonical are required", s.Prog.Name()))
	}
	name := s.Prog.Name()
	doParse := func(query string) (ParsedQuery, error) {
		q, err := s.Parse(query)
		if err != nil {
			return ParsedQuery{}, err
		}
		pq := ParsedQuery{Program: name, Query: q, Canonical: s.Canonical(q)}
		if s.Hops != nil {
			pq.Hops = s.Hops(q)
		}
		return pq, nil
	}
	e := Entry{
		Name:        name,
		Description: s.Description,
		QueryHelp:   s.QueryHelp,
		Parse:       doParse,
		Run: func(ctx context.Context, g *graph.Graph, opts Options, query string) (any, *metrics.Stats, error) {
			pq, err := doParse(query)
			if err != nil {
				return nil, nil, err
			}
			// Programs that declare an expansion requirement own
			// Options.ExpandHops; for the rest a caller-supplied expansion
			// passes through untouched.
			if s.Hops != nil {
				opts.ExpandHops = pq.Hops
			}
			res, stats, err := Run(ctx, g, s.Prog, pq.Query.(Q), opts)
			return any(res), stats, err
		},
		Resident: func(layout *partition.Layout, opts Options) (ResidentRunner, error) {
			r, err := NewResident(layout, s.Prog, opts)
			if err != nil {
				return nil, err
			}
			return residentAdapter[Q, V, R]{name: name, r: r}, nil
		},
		Session: func(ctx context.Context, g *graph.Graph, opts Options, pq ParsedQuery) (SessionHandle, any, *metrics.Stats, error) {
			q, ok := pq.Query.(Q)
			if !ok {
				var want Q
				return nil, nil, nil, fmt.Errorf("engine: %s: parsed query has type %T, want %T", name, pq.Query, want)
			}
			if s.Hops != nil {
				opts.ExpandHops = pq.Hops
			}
			sess, res, stats, err := NewSession(ctx, g, s.Prog, q, opts)
			if err != nil {
				return nil, nil, stats, err
			}
			return sessionAdapter[Q, V, R]{s: sess}, any(res), stats, nil
		},
	}
	if wp, ok := any(s.Prog).(WireProgram[Q, V, R]); ok {
		e.Wire = WireServe(wp)
	}
	return e
}

// residentAdapter erases a typed Resident into ResidentRunner for the
// registry.
type residentAdapter[Q, V, R any] struct {
	name string
	r    *Resident[Q, V, R]
}

func (a residentAdapter[Q, V, R]) RunParsed(ctx context.Context, pq ParsedQuery) (any, *metrics.Stats, error) {
	q, ok := pq.Query.(Q)
	if !ok {
		return nil, nil, fmt.Errorf("engine: %s: parsed query has type %T, want %T", a.name, pq.Query, q)
	}
	res, stats, err := a.r.Run(ctx, q)
	return any(res), stats, err
}

// sessionAdapter erases a typed Session into SessionHandle for the registry.
type sessionAdapter[Q, V, R any] struct {
	s *Session[Q, V, R]
}

func (a sessionAdapter[Q, V, R]) Update(ctx context.Context, updates []EdgeUpdate) (any, *metrics.Stats, error) {
	res, stats, err := a.s.Update(ctx, updates)
	return any(res), stats, err
}

func (a sessionAdapter[Q, V, R]) Result() (any, error) {
	res, err := a.s.Result()
	return any(res), err
}

func (a sessionAdapter[Q, V, R]) Broken() bool { return a.s.Broken() }
