package engine

import (
	"context"
	"errors"
	"grape/internal/partition"
	"strings"
	"sync"
	"testing"
	"time"

	"grape/internal/graph"
	"grape/internal/mpi"
)

// stepper is a purpose-built PIE program for cancellation tests: every
// superstep it raises all border values by one, so the fixpoint runs until
// the values reach the query's limit — or forever when the limit is huge,
// which is exactly the abandoned-run shape cancellation must kill. Each
// PEval/IncEval activation signals steps, letting a test cancel
// deterministically "during superstep k" and then verify the workers went
// quiet.
type stepQuery struct{ limit int64 }

type stepper struct{ steps chan struct{} }

func (stepper) Name() string { return "cancel-stepper" }

func (stepper) Spec() VarSpec[int64] {
	return VarSpec[int64]{
		Default: 0,
		Agg: func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		},
		Eq: func(a, b int64) bool { return a == b },
	}
}

func (s stepper) signal() {
	select {
	case s.steps <- struct{}{}:
	default:
	}
}

func (s stepper) bump(q stepQuery, ctx *Context[int64]) {
	s.signal()
	var m int64
	for _, id := range ctx.Frag.Border() {
		if v := ctx.Get(id); v > m {
			m = v
		}
	}
	if m >= q.limit {
		return
	}
	for _, id := range ctx.Frag.Border() {
		ctx.Set(id, m+1)
	}
	ctx.AddWork(1)
}

// PEval seeds the wave from vertex 0's owner only: with a single seeder,
// every later superstep some fragment holds a strictly larger value than
// its peers, so changes keep flowing until the limit — the engine cannot
// converge early.
func (s stepper) PEval(q stepQuery, ctx *Context[int64]) error {
	s.signal()
	if ctx.Frag.IsInner(0) {
		for _, id := range ctx.Frag.Border() {
			ctx.Set(id, 1)
		}
	}
	return nil
}

func (s stepper) IncEval(q stepQuery, ctx *Context[int64]) error { s.bump(q, ctx); return nil }

func (s stepper) Assemble(q stepQuery, ctxs []*Context[int64]) (map[graph.ID]int64, error) {
	out := map[graph.ID]int64{}
	for _, ctx := range ctxs {
		ctx.Vars(func(id graph.ID, v int64) {
			if ctx.Frag.IsInner(id) {
				out[id] = v
			}
		})
	}
	return out, nil
}

// ring returns a directed cycle, which hash-partitions into fragments whose
// border is essentially every vertex — each superstep touches every worker.
func ring(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddEdge(graph.ID(i), graph.ID((i+1)%n), 1)
	}
	g.Freeze()
	return g
}

// drainThenCount empties steps, waits, and reports how many new signals
// arrived afterwards — after a cancelled Run returns there must be none,
// because runFixpoint waits for every worker goroutine to exit.
func drainThenCount(steps chan struct{}, wait time.Duration) int {
	for {
		select {
		case <-steps:
			continue
		default:
		}
		break
	}
	time.Sleep(wait)
	return len(steps)
}

// TestCancelMidFixpoint cancels an effectively endless run during superstep
// k on the in-process bus and asserts the run fails with the context error,
// records the superstep it died at, and leaves no worker goroutine still
// computing.
func TestCancelMidFixpoint(t *testing.T) {
	g := ring(64)
	steps := make(chan struct{}, 4096)
	prog := stepper{steps: steps}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	var gotErr error
	var gotSteps int
	go func() {
		_, st, err := Run(ctx, g, prog, stepQuery{limit: 1 << 40}, Options{Workers: 4, MaxSupersteps: 1 << 30})
		if st != nil {
			gotSteps = st.Supersteps
		}
		gotErr = err
		done <- err
	}()

	// superstep k: let a few rounds of activations through, then cancel.
	for i := 0; i < 16; i++ {
		select {
		case <-steps:
		case <-time.After(10 * time.Second):
			t.Fatal("stepper never ran")
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return")
	}
	if !errors.Is(gotErr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", gotErr)
	}
	if !strings.Contains(gotErr.Error(), "cancelled at superstep") {
		t.Fatalf("error should carry the superstep it died at: %v", gotErr)
	}
	if gotSteps < 2 {
		t.Fatalf("expected the run to have been mid-fixpoint, died at superstep %d", gotSteps)
	}
	// Workers observed the cancellation: once Run returned, every worker
	// goroutine has exited (stop waits), so no further activations may land.
	if extra := drainThenCount(steps, 100*time.Millisecond); extra != 0 {
		t.Fatalf("%d worker activations after the cancelled run returned", extra)
	}
}

// TestCancelledResidentRunLeavesPoolClean cancels runs mid-fixpoint on a
// pooled Resident and asserts (a) the cancelled runs error with the context
// error, and (b) subsequent runs on the same layout — which recycle the
// very contexts and fold state the cancelled runs abandoned — still produce
// the exact fixpoint a fresh engine produces.
func TestCancelledResidentRunLeavesPoolClean(t *testing.T) {
	g := ring(64)
	layout, err := BuildLayout(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	steps := make(chan struct{}, 4096)
	prog := stepper{steps: steps}
	r, err := NewResident(layout, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := stepQuery{limit: 40}

	want, _, err := r.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline run assembled nothing")
	}

	for round := 0; round < 4; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		errCh := make(chan error, 1)
		go func() {
			_, _, err := r.Run(ctx, stepQuery{limit: 1 << 40})
			errCh <- err
		}()
		for i := 0; i < 8; i++ {
			select {
			case <-steps:
			case <-time.After(10 * time.Second):
				t.Fatal("stepper never ran")
			}
		}
		cancel()
		if err := <-errCh; !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: want context.Canceled, got %v", round, err)
		}
		drainThenCount(steps, 0)

		got, _, err := r.Run(context.Background(), q)
		if err != nil {
			t.Fatalf("round %d: run after cancellation: %v", round, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d vertices, want %d", round, len(got), len(want))
		}
		for id, v := range want {
			if got[id] != v {
				t.Fatalf("round %d: vertex %d = %d, want %d (pooled scratch leaked state)", round, id, got[id], v)
			}
		}
	}
}

// chanLink is an in-process WorkerLink over channels, for exercising the
// worker side of the wire protocol without sockets.
type chanLink struct {
	in  chan mpi.Envelope
	out chan mpi.Envelope
}

func (l chanLink) Recv() (mpi.Envelope, error) { return <-l.in, nil }
func (l chanLink) Send(e mpi.Envelope) error   { l.out <- e; return nil }

// TestWorkerHonorsPropagatedDeadline drives serveWire directly with an
// already-expired run context — the shape a worker process is in once the
// deadline the coordinator shipped in the setup frame fires — and asserts
// the worker refuses to compute: the PEval command comes back as an error
// reply carrying the deadline error instead of a result.
func TestWorkerHonorsPropagatedDeadline(t *testing.T) {
	g := ring(8)
	layout, err := BuildLayout(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	prog := wireStepper{stepper{steps: make(chan struct{}, 16)}}
	codec := prog.WireCodec()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	link := chanLink{in: make(chan mpi.Envelope, 4), out: make(chan mpi.Envelope, 4)}
	served := make(chan error, 1)
	go func() {
		served <- serveWire(ctx, prog, link, stepQuery{limit: 1 << 40}, layout.Fragments[0])
	}()

	peFrame, _ := encodeCmd(codec, workerCmd[int64]{kind: cmdPEval})
	link.in <- mpi.Envelope{From: mpi.Coordinator, To: 0, Step: 1, Frame: peFrame}
	env := <-link.out
	rep, err := decodeReply(codec, env.Frame)
	if err != nil {
		t.Fatal(err)
	}
	if rep.err == nil || !strings.Contains(rep.err.Error(), "deadline") {
		t.Fatalf("expired worker must reply with the deadline error, got %v", rep.err)
	}
	// the abort frame releases the worker with ErrAborted
	abFrame, _ := encodeCmd(codec, workerCmd[int64]{kind: cmdAbort})
	link.in <- mpi.Envelope{From: mpi.Coordinator, To: 0, Frame: abFrame}
	if err := <-served; !errors.Is(err, ErrAborted) {
		t.Fatalf("abort frame must surface ErrAborted, got %v", err)
	}
}

// wireStepper gives stepper the wire codec the deadline test needs.
type wireStepper struct{ stepper }

type int64Codec struct{}

func (int64Codec) AppendVal(buf []byte, v int64) []byte {
	return append(buf, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func (int64Codec) DecodeVal(data []byte) (int64, int, error) {
	if len(data) < 8 {
		return 0, 0, errors.New("short int64")
	}
	v := int64(data[0])<<56 | int64(data[1])<<48 | int64(data[2])<<40 | int64(data[3])<<32 |
		int64(data[4])<<24 | int64(data[5])<<16 | int64(data[6])<<8 | int64(data[7])
	return v, 8, nil
}

func (wireStepper) WireCodec() Codec[int64] { return int64Codec{} }

func (wireStepper) EncodeQuery(q stepQuery) ([]byte, error) {
	return int64Codec{}.AppendVal(nil, q.limit), nil
}

func (wireStepper) DecodeQuery(data []byte) (stepQuery, error) {
	v, _, err := int64Codec{}.DecodeVal(data)
	return stepQuery{limit: v}, err
}

// TestCancelledUpdateBreaksSession: an aborted incremental fixpoint leaves
// the session's retained fold diverged from the fragments, so the session
// must refuse further use instead of returning silently stale answers.
func TestCancelledUpdateBreaksSession(t *testing.T) {
	g := graph.New()
	for i := 0; i < 32; i++ {
		g.AddEdge(graph.ID(i), graph.ID(i+1), 1)
	}
	prog := updStepper{stepper{steps: make(chan struct{}, 1024)}}
	s, _, _, err := NewSession(context.Background(), g, prog, stepQuery{limit: 6}, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Update(ctx, []EdgeUpdate{{From: 0, To: 5, W: 1}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from the aborted update, got %v", err)
	}
	if _, _, err := s.Update(context.Background(), []EdgeUpdate{{From: 1, To: 6, W: 1}}); !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("a broken session must refuse further updates, got %v", err)
	}
	if _, err := s.Result(); !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("a broken session must refuse Result, got %v", err)
	}
}

// updStepper adds the Updater hook so stepper can drive a Session; negative
// weights are rejected (after the edge insertion, like SSSP's check) so
// tests can trigger a mid-batch apply failure.
type updStepper struct{ stepper }

func (u updStepper) ApplyUpdate(q stepQuery, ctx *Context[int64], upd EdgeUpdate) ([]graph.ID, error) {
	if upd.W < 0 {
		return nil, errors.New("negative weight")
	}
	return []graph.ID{upd.From, upd.To}, nil
}

// TestFailedApplyBreaksSession: an error partway through an update batch has
// already mutated the graph (earlier entries, and the failing edge itself),
// so the session must mark itself broken exactly like an aborted fixpoint.
func TestFailedApplyBreaksSession(t *testing.T) {
	g := graph.New()
	for i := 0; i < 32; i++ {
		g.AddEdge(graph.ID(i), graph.ID(i+1), 1)
	}
	prog := updStepper{stepper{steps: make(chan struct{}, 1024)}}
	s, _, _, err := NewSession(context.Background(), g, prog, stepQuery{limit: 6}, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Invalid input (unknown vertex) at index >= 1 is rejected by the
	// pre-mutation validation pass: the batch fails but the session stays
	// usable — bad input must not cost a long-lived session.
	if _, _, err := s.Update(context.Background(), []EdgeUpdate{{From: 0, To: 5, W: 1}, {From: 0, To: 999, W: 1}}); err == nil {
		t.Fatal("unknown vertex must fail the batch")
	}
	if _, _, err := s.Update(context.Background(), []EdgeUpdate{{From: 0, To: 5, W: 1}}); err != nil {
		t.Fatalf("rejected input must not break the session: %v", err)
	}
	_, _, err = s.Update(context.Background(), []EdgeUpdate{{From: 0, To: 6, W: 1}, {From: 1, To: 7, W: -1}})
	if err == nil || !strings.Contains(err.Error(), "negative weight") {
		t.Fatalf("want the apply error, got %v", err)
	}
	if _, _, err := s.Update(context.Background(), []EdgeUpdate{{From: 2, To: 8, W: 1}}); !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("a session with a half-applied batch must refuse further updates, got %v", err)
	}
}

// closableLink is a chanLink whose Close unblocks Recv — the shape of a real
// socket link, letting tests exercise the deadline-closes-the-link path.
type closableLink struct {
	ch        chan mpi.Envelope
	closeOnce sync.Once
	closed    chan struct{}
}

func (l *closableLink) Recv() (mpi.Envelope, error) {
	select {
	case e := <-l.ch:
		return e, nil
	case <-l.closed:
		return mpi.Envelope{}, errors.New("link closed")
	}
}

func (l *closableLink) Send(e mpi.Envelope) error { return nil }

func (l *closableLink) Close() error {
	l.closeOnce.Do(func() { close(l.closed) })
	return nil
}

var registerWireStepper = sync.OnceFunc(func() {
	Register(MakeEntry(EntrySpec[stepQuery, int64, map[graph.ID]int64]{
		Prog:        wireStepper{stepper{steps: make(chan struct{}, 16)}},
		Description: "endless stepper for worker deadline tests",
		QueryHelp:   "(none)",
		Parse:       func(string) (stepQuery, error) { return stepQuery{limit: 1 << 40}, nil },
		Canonical:   func(stepQuery) string { return "" },
	}))
})

// TestIdleWorkerDeadlineUnblocks pins the netsplit half of deadline
// propagation: a worker that received its setup frame (with a deadline) and
// then hears nothing more — a wedged, not dead, coordinator — must still
// end at the deadline. The deadline context closes the link, unblocking the
// idle Recv.
func TestIdleWorkerDeadlineUnblocks(t *testing.T) {
	registerWireStepper()
	g := ring(8)
	layout, err := BuildLayout(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	prog := wireStepper{stepper{}}
	qblob, err := prog.EncodeQuery(stepQuery{limit: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(150 * time.Millisecond)
	setup := encodeSetup("cancel-stepper", qblob, deadline.UnixMicro(), partition.AppendFragment(nil, layout.Fragments[0]))

	link := &closableLink{ch: make(chan mpi.Envelope, 1), closed: make(chan struct{})}
	done := make(chan error, 1)
	go func() { done <- ServeWorker(context.Background(), link) }()
	link.ch <- mpi.Envelope{From: mpi.Coordinator, To: 0, Frame: setup}

	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want context.DeadlineExceeded, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle worker hung past its propagated deadline")
	}
}
