package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/partition"
	"grape/internal/trace"
)

// The paper defines IncEval over *updates M to G*: given Q, G, Q(G) and M,
// compute the change to the output. The demo exercises it with M = changed
// update parameters flowing between fragments, but the same machinery
// answers continuous queries over an evolving graph: keep the fragments and
// partial results of the last run, apply edge updates to the fragments,
// seed IncEval with the dirty nodes, and iterate the fixpoint again —
// without re-running PEval from scratch.
//
// A Session holds that retained state. Each update batch takes the cheapest
// execution path its program supports:
//
//   - insert-only batches of an Updater program run the seeded IncEval
//     fixpoint (the bounded incremental run of Example 1(d));
//   - batches containing deletions go to the program's DeleteRepairer, which
//     patches the retained state coordinator-side (sessions run on the
//     in-process bus, so every fragment is addressable) and seeds a follow-up
//     fixpoint where needed;
//   - locality-bounded programs (SubIso, TriCount) implement SessionPatcher:
//     the session retains their assembled answer and patches it exactly per
//     update, mutating only the global graph;
//   - everything else — and any batch a repairer declines — falls back to a
//     reseed: re-partition the mutated global graph and run the full
//     PEval/IncEval fixpoint again inside the same session. A reseed is the
//     from-scratch pipeline verbatim, so it is correct for every program;
//     the capability hooks above exist to beat it, not to replace it.

// EdgeUpdate is one graph mutation: an edge insertion (or, equivalently for
// weighted graphs, a weight decrease when the edge already exists), or —
// with Del set — the deletion of one edge instance matching (From, To,
// Label). For deletions W is ignored on input; the session rewrites it to
// the removed instance's weight before the update reaches program hooks, so
// repairers can reason about the exact edge that disappeared.
type EdgeUpdate struct {
	From, To graph.ID
	W        float64
	Label    string
	Del      bool
}

// Updater is implemented by PIE programs that support incremental
// re-evaluation over edge insertions. ApplyUpdate mutates the fragment-local
// state for one update whose source vertex lives on this fragment and
// returns the nodes whose variables may need re-relaxation; the edge has
// already been added to ctx.Frag.G when it is called. Deletions never reach
// ApplyUpdate — they go through DeleteRepairer or force a reseed.
type Updater[Q, V any] interface {
	ApplyUpdate(q Q, ctx *Context[V], upd EdgeUpdate) ([]graph.ID, error)
}

// UpdateValidator is optionally implemented by Updater programs to reject
// invalid updates *before* the engine mutates any graph state. ApplyUpdate
// runs after the edge has been inserted, so a rejection there necessarily
// leaves the graph changed and the session broken; checks that need no
// engine state (e.g. SSSP's negative-weight rule) belong here, where a
// failure costs nothing.
type UpdateValidator[Q any] interface {
	ValidateUpdate(q Q, upd EdgeUpdate) error
}

// BorderPublisher is optionally implemented by programs whose node variables
// do not mirror every node's current value (e.g. CC keeps labels in a
// union-find and only materializes border variables). When a graph update
// turns a node into a border node, the session asks its owner to publish the
// node's current value so the new copy holders receive it; programs without
// this method get Context.touch, which re-ships the stored variable.
type BorderPublisher[Q, V any] interface {
	PublishBorder(q Q, ctx *Context[V], id graph.ID)
}

// DeleteRepairer is implemented by PIE programs that can repair their
// retained session state after a batch containing edge deletions, instead of
// paying a full reseed. The session applies all structural mutations
// (fragment and global graphs, border bookkeeping) first, then calls
// RepairBatch with coordinator-side access to every fragment's context; the
// returned per-worker dirty sets seed a follow-up IncEval fixpoint (an empty
// map means the repair is already exact). CanRepair is consulted before
// anything is mutated: returning false sends the batch down the reseed path
// (e.g. Sim repairs deletions, whose masks only shrink, but must reseed when
// the batch also inserts).
type DeleteRepairer[Q, V any] interface {
	CanRepair(q Q, batch []EdgeUpdate) bool
	RepairBatch(q Q, sc *RepairScope[V], batch []EdgeUpdate) (map[int][]graph.ID, error)
}

// SessionPatcher is implemented by locality-bounded programs (SubIso,
// TriCount) whose sessions retain the assembled answer and patch it exactly
// per update instead of re-running any fixpoint. SessionQuery may widen the
// user's query for the initial run (SubIso drops MaxMatches: a truncated
// match list cannot be patched); PatchResult narrows the retained state back
// to the user's answer. ApplyPatch receives the update and an apply closure
// that performs the graph mutation — the patcher decides whether to inspect
// the graph before or after calling it (exactly once).
type SessionPatcher[Q, R any] interface {
	SessionQuery(q Q) Q
	InitPatch(q Q, g *graph.Graph, res R) (any, error)
	ApplyPatch(q Q, g *graph.Graph, state any, upd EdgeUpdate, apply func()) (any, error)
	PatchResult(q Q, state any) (R, error)
}

// RepairScope is a DeleteRepairer's coordinator-side view of the session:
// the global graph, every fragment's context, and the value/invalidation
// plumbing that keeps the per-host variables and the coordinator's fold in
// step. It is only valid for the duration of one RepairBatch call.
type RepairScope[V any] struct {
	layout *partition.Layout
	ctxs   []*Context[V]
	fold   *foldState[V]
}

// Global returns the global (whole) graph, already mutated by the batch.
func (sc *RepairScope[V]) Global() *graph.Graph { return sc.layout.Asg.G }

// Workers returns the number of fragments.
func (sc *RepairScope[V]) Workers() int { return len(sc.ctxs) }

// Owner returns the worker owning id.
func (sc *RepairScope[V]) Owner(id graph.ID) int { return sc.layout.Asg.Owner(id) }

// Ctx returns worker w's retained context (fragment, variables, program
// state).
func (sc *RepairScope[V]) Ctx(w int) *Context[V] { return sc.ctxs[w] }

// Value returns the owner's view of id's variable — the authoritative
// converged value.
func (sc *RepairScope[V]) Value(id graph.ID) V {
	return sc.ctxs[sc.layout.Asg.Owner(id)].Get(id)
}

// Invalidate erases id's variable at every hosting fragment and drops the
// coordinator's folded baseline, so a follow-up fixpoint re-derives the
// value from scratch (or leaves it at the default if nothing reaches it).
func (sc *RepairScope[V]) Invalidate(id graph.ID) {
	for _, h := range sc.layout.Hosts(id) {
		sc.ctxs[h].clearVar(id)
	}
	sc.fold.forget(id)
}

// ForceValue overwrites id's variable at every hosting fragment and the
// coordinator's folded baseline, bypassing aggregation — for repaired values
// that may sit above the old ones in the order (e.g. CC labels after a
// component split).
func (sc *RepairScope[V]) ForceValue(id graph.ID, v V) {
	for _, h := range sc.layout.Hosts(id) {
		sc.ctxs[h].SetLocal(id, v)
	}
	sc.fold.force(id, v)
}

// Session retains a query's distributed state across graph updates.
type Session[Q, V, R any] struct {
	prog Program[Q, V, R]
	// q is the user's query; iq the query the fixpoints actually run —
	// identical unless a SessionPatcher widened it (see SessionQuery).
	q      Q
	iq     Q
	layout *partition.Layout
	ctxs   []*Context[V]
	opts   Options
	spec   VarSpec[V]
	// fold retains the coordinator's sharded border state between runs.
	fold *foldState[V]
	// patcher/patch carry SessionPatcher mode: the retained patched answer
	// replaces the fixpoint machinery after the initial run.
	patcher SessionPatcher[Q, R]
	patch   any
	// broken marks a session whose incremental fixpoint did not complete
	// (cancelled or errored mid-Update): the retained fold and fragment
	// state have diverged, so later Updates would return silently stale
	// answers. Once set, Update and Result fail loudly instead.
	broken bool
}

// ErrSessionBroken is returned (wrapped) by Update and Result after an
// incremental fixpoint was cancelled or failed partway: the retained state
// is not trustworthy. Start a fresh session over the (already mutated)
// graph.
var ErrSessionBroken = errors.New("session state diverged by an aborted update; start a new session")

// NewSession runs the initial PEval/IncEval fixpoint and retains the state
// for incremental updates. Every registered program can run in a session:
// programs without incremental capabilities fall back to reseeding on
// Update, which re-runs the from-scratch pipeline on the mutated graph
// inside the same session. The context bounds the initial fixpoint only;
// each Update call carries its own.
func NewSession[Q, V, R any](ctx context.Context, g *graph.Graph, prog Program[Q, V, R], q Q, opts Options) (*Session[Q, V, R], R, *metrics.Stats, error) {
	var zero R
	if !g.Directed() {
		return nil, zero, nil, fmt.Errorf("engine: sessions support directed graphs only (undirected cut edges live on both fragments)")
	}
	if opts.Transport != nil {
		return nil, zero, nil, fmt.Errorf("engine: sessions run on the in-process bus only (graph updates mutate shared fragments)")
	}
	opts = opts.withDefaults()
	patcher, _ := any(prog).(SessionPatcher[Q, R])
	if opts.ExpandHops > 0 && patcher == nil {
		return nil, zero, nil, fmt.Errorf("engine: %s: expanded fragments replicate edges across workers, which incremental updates cannot keep consistent; only SessionPatcher programs run sessions with ExpandHops > 0", prog.Name())
	}
	layout, err := BuildLayout(g, opts)
	if err != nil {
		return nil, zero, nil, err
	}
	s := &Session[Q, V, R]{
		prog:    prog,
		q:       q,
		iq:      q,
		layout:  layout,
		opts:    opts,
		spec:    prog.Spec(),
		patcher: patcher,
	}
	if patcher != nil {
		s.iq = patcher.SessionQuery(q)
	}
	s.fold = newFoldState(s.spec, len(layout.Fragments))
	res, stats, err := s.fixpoint(ctx, true, nil)
	if err != nil {
		return nil, zero, stats, err
	}
	if patcher != nil {
		st, err := patcher.InitPatch(q, layout.Asg.G, res)
		if err != nil {
			return nil, zero, stats, err
		}
		s.patch = st
		if res, err = patcher.PatchResult(q, st); err != nil {
			return nil, zero, stats, err
		}
	}
	return s, res, stats, nil
}

// Broken reports whether an aborted or failed incremental fixpoint has
// diverged the session's retained state (see ErrSessionBroken). A rejected
// update batch — caught by the pre-mutation validation — does not break the
// session; callers like the serving layer use this to tell "bad input,
// nothing happened" from "state diverged, drop the session".
func (s *Session[Q, V, R]) Broken() bool { return s.broken }

// Result re-assembles the current answer without recomputation.
func (s *Session[Q, V, R]) Result() (R, error) {
	if s.broken {
		var zero R
		return zero, fmt.Errorf("engine: %s: %w", s.prog.Name(), ErrSessionBroken)
	}
	if s.patcher != nil {
		return s.patcher.PatchResult(s.q, s.patch)
	}
	return s.prog.Assemble(s.q, s.ctxs)
}

// Update applies a batch of mixed edge insertions and deletions and brings
// the retained answer up to date — the paper's Q(G ⊕ M) = Q(G) ⊕ ΔO. The
// whole batch is validated before anything is mutated, so a rejected batch
// leaves the session (and the graph) untouched. The execution path depends
// on the program's capabilities: seeded IncEval for insert-only batches of
// an Updater, coordinator-side repair plus follow-up fixpoint for a
// DeleteRepairer, exact answer patching for a SessionPatcher, and a full
// reseed of the mutated graph for everything else. A cancelled ctx aborts
// an incremental fixpoint at the next superstep barrier; the graph mutation
// has already been applied by then and the retained state has diverged, so
// the session marks itself broken — further Update/Result calls fail with
// ErrSessionBroken instead of returning silently stale answers.
func (s *Session[Q, V, R]) Update(ctx context.Context, updates []EdgeUpdate) (R, *metrics.Stats, error) {
	var zero R
	if s.broken {
		return zero, nil, fmt.Errorf("engine: %s: %w", s.prog.Name(), ErrSessionBroken)
	}
	if err := s.validate(updates); err != nil {
		return zero, nil, err
	}
	if rec := trace.FromContext(ctx); rec != nil {
		rec.Event("session-update", fmt.Sprintf("%s: %d edge updates", s.prog.Name(), len(updates)))
	}
	// Deletions get W rewritten to the removed instance's weight; work on a
	// copy so the caller's batch stays untouched.
	ups := make([]EdgeUpdate, len(updates))
	copy(ups, updates)
	if s.patcher != nil {
		return s.patchBatch(ups)
	}
	hasDelete := false
	for _, u := range ups {
		if u.Del {
			hasDelete = true
			break
		}
	}
	if up, ok := any(s.prog).(Updater[Q, V]); ok && !hasDelete {
		return s.incremental(ctx, up, ups)
	}
	if rep, ok := any(s.prog).(DeleteRepairer[Q, V]); ok && rep.CanRepair(s.q, ups) {
		return s.repair(ctx, rep, ups)
	}
	return s.reseed(ctx, ups)
}

// validate rejects a bad batch before any state is mutated: unknown
// endpoints, program-specific rules (UpdateValidator), and deletions of
// edges that do not exist — counted against a per-batch multiset, so a
// batch may delete an edge it inserted earlier, and two deletions of the
// same edge need two live instances.
func (s *Session[Q, V, R]) validate(updates []EdgeUpdate) error {
	g := s.layout.Asg.G
	validator, hasValidator := any(s.prog).(UpdateValidator[Q])
	type ekey struct {
		from, to graph.ID
		label    string
	}
	counts := make(map[ekey]int)
	liveCount := func(k ekey) int {
		if c, ok := counts[k]; ok {
			return c
		}
		c := 0
		for _, e := range g.Out(k.from) {
			if e.To == k.to && e.Label == k.label {
				c++
			}
		}
		counts[k] = c
		return c
	}
	for _, u := range updates {
		if !g.Has(u.From) || !g.Has(u.To) {
			return fmt.Errorf("engine: update %v references unknown vertices (vertex additions are not supported)", u)
		}
		if hasValidator {
			if err := validator.ValidateUpdate(s.q, u); err != nil {
				return fmt.Errorf("engine: rejecting %v: %w", u, err)
			}
		}
		k := ekey{u.From, u.To, u.Label}
		if u.Del {
			if liveCount(k) <= 0 {
				return fmt.Errorf("engine: deleting %v: no matching edge (%d->%d label %q)", u, u.From, u.To, u.Label)
			}
			counts[k]--
		} else {
			counts[k] = liveCount(k) + 1
		}
	}
	return nil
}

// applyInsert routes one insertion to the owner of its source vertex (where
// the edge is stored) and mutates that fragment plus the global graph. New
// endpoints may enlarge the border: placement, border variables and the
// coordinator's fold are kept in sync, and workers whose queued values must
// flush are marked in dirtyByWorker (with no dirty nodes of their own).
func (s *Session[Q, V, R]) applyInsert(u EdgeUpdate, dirtyByWorker map[int][]graph.ID) int {
	w := s.layout.Asg.Owner(u.From)
	f := s.layout.Fragments[w]
	if w != s.layout.Asg.Owner(u.To) && !f.G.Has(u.To) {
		// new outer copy: replicate the vertex, extend the border on
		// both sides, and bring the copy up to date with the
		// coordinator's folded value so no historic routing is missed.
		g := s.layout.Asg.G
		f.G.AddVertex(u.To, g.Label(u.To))
		if ps := g.Props(u.To); len(ps) > 0 {
			f.G.SetProps(u.To, append([]string(nil), ps...))
		}
		f.AddOuter(u.To)
		s.layout.AddHost(u.To, w)
		s.ctxs[w].addBorder(u.To)
		if gv, ok := s.fold.lookup(u.To); ok {
			s.ctxs[w].SetLocal(u.To, s.spec.Agg(s.ctxs[w].Get(u.To), gv))
		}
		owner := s.layout.Asg.Owner(u.To)
		of := s.layout.Fragments[owner]
		if of.AddInnerBorder(u.To) {
			s.ctxs[owner].addBorder(u.To)
		}
		// the owner's current value never shipped if the node was not
		// border before; force it onto the wire
		if pub, ok := any(s.prog).(BorderPublisher[Q, V]); ok {
			pub.PublishBorder(s.q, s.ctxs[owner], u.To)
		} else {
			s.ctxs[owner].touch(u.To)
		}
		if _, ok := dirtyByWorker[owner]; !ok {
			dirtyByWorker[owner] = nil
		}
	}
	f.G.AddLabeledEdge(u.From, u.To, u.W, u.Label)
	// mirror into the global graph so later sessions/partitions see it
	s.layout.Asg.G.AddLabeledEdge(u.From, u.To, u.W, u.Label)
	if _, ok := dirtyByWorker[w]; !ok {
		dirtyByWorker[w] = nil
	}
	return w
}

// applyDelete removes one matching edge instance from the owner fragment and
// the global graph, rewriting u.W to the removed instance's weight. Both
// adjacencies were built in the same order, so "first match" picks the same
// instance in each.
func (s *Session[Q, V, R]) applyDelete(u *EdgeUpdate) error {
	w := s.layout.Asg.Owner(u.From)
	f := s.layout.Fragments[w]
	removed, ok := f.G.RemoveEdge(u.From, u.To, u.Label)
	if !ok {
		return fmt.Errorf("engine: deleting %v: edge missing from owner fragment %d", *u, w)
	}
	if _, ok := s.layout.Asg.G.RemoveEdge(u.From, u.To, u.Label); !ok {
		return fmt.Errorf("engine: deleting %v: edge missing from global graph", *u)
	}
	u.W = removed.W
	return nil
}

// incremental is the insert-only Updater path: mutate fragments, collect the
// program's dirty nodes, and re-run the seeded IncEval fixpoint. An error
// once mutation has begun leaves earlier batch entries applied locally but
// never propagated — the same divergence as an aborted fixpoint — so it
// breaks the session.
func (s *Session[Q, V, R]) incremental(ctx context.Context, up Updater[Q, V], ups []EdgeUpdate) (R, *metrics.Stats, error) {
	var zero R
	dirtyByWorker := make(map[int][]graph.ID)
	for _, u := range ups {
		w := s.applyInsert(u, dirtyByWorker)
		dirty, err := up.ApplyUpdate(s.q, s.ctxs[w], u)
		if err != nil {
			// the edge itself was already inserted above; the session's
			// retained state no longer matches a clean graph
			s.broken = true
			return zero, nil, fmt.Errorf("engine: applying %v: %w", u, err)
		}
		dirtyByWorker[w] = append(dirtyByWorker[w], dirty...)
	}
	res, stats, err := s.fixpoint(ctx, false, dirtyByWorker)
	if err != nil {
		// partial routing: the fold may hold values never shipped to all
		// hosts, and re-running cannot recover them (only improvements over
		// the fold's state are routed)
		s.broken = true
	}
	return res, stats, err
}

// repair is the DeleteRepairer path: apply every structural mutation, let
// the program patch its retained state coordinator-side, and run a follow-up
// fixpoint seeded with whatever the repair dirtied.
func (s *Session[Q, V, R]) repair(ctx context.Context, rep DeleteRepairer[Q, V], ups []EdgeUpdate) (R, *metrics.Stats, error) {
	var zero R
	dirtyByWorker := make(map[int][]graph.ID)
	for i := range ups {
		if ups[i].Del {
			if err := s.applyDelete(&ups[i]); err != nil {
				s.broken = true
				return zero, nil, err
			}
		} else {
			s.applyInsert(ups[i], dirtyByWorker)
		}
	}
	repDirty, err := rep.RepairBatch(s.q, &RepairScope[V]{layout: s.layout, ctxs: s.ctxs, fold: s.fold}, ups)
	if err != nil {
		s.broken = true
		return zero, nil, fmt.Errorf("engine: %s: repairing batch: %w", s.prog.Name(), err)
	}
	for w, ids := range repDirty {
		dirtyByWorker[w] = append(dirtyByWorker[w], ids...)
	}
	res, stats, err := s.fixpoint(ctx, false, dirtyByWorker)
	if err != nil {
		s.broken = true
	}
	return res, stats, err
}

// reseed is the universal fallback: mutate the global graph only, rebuild
// the layout from it, and run the from-scratch PEval/IncEval fixpoint inside
// the session — the exact pipeline Run would execute on the mutated graph.
// Old fragments, contexts and fold state are discarded wholesale.
func (s *Session[Q, V, R]) reseed(ctx context.Context, ups []EdgeUpdate) (R, *metrics.Stats, error) {
	var zero R
	g := s.layout.Asg.G
	for i := range ups {
		u := &ups[i]
		if u.Del {
			removed, ok := g.RemoveEdge(u.From, u.To, u.Label)
			if !ok {
				s.broken = true
				return zero, nil, fmt.Errorf("engine: deleting %v: edge missing from global graph", *u)
			}
			u.W = removed.W
		} else {
			g.AddLabeledEdge(u.From, u.To, u.W, u.Label)
		}
	}
	layout, err := BuildLayout(g, s.opts)
	if err != nil {
		s.broken = true
		return zero, nil, err
	}
	s.layout = layout
	s.fold = newFoldState(s.spec, len(layout.Fragments))
	res, stats, err := s.fixpoint(ctx, true, nil)
	if err != nil {
		s.broken = true
	}
	return res, stats, err
}

// patchBatch is the SessionPatcher path: per update, hand the patcher the
// global graph plus an apply closure performing the mutation, and retain the
// patched state. No fixpoint runs; the per-fragment machinery of the initial
// run is left behind (a patched answer never consults it).
func (s *Session[Q, V, R]) patchBatch(ups []EdgeUpdate) (R, *metrics.Stats, error) {
	var zero R
	start := time.Now()
	g := s.layout.Asg.G
	for i := range ups {
		u := &ups[i]
		applied := false
		apply := func() {
			applied = true
			if u.Del {
				removed, ok := g.RemoveEdge(u.From, u.To, u.Label)
				if ok {
					u.W = removed.W
				}
			} else {
				g.AddLabeledEdge(u.From, u.To, u.W, u.Label)
			}
		}
		st, err := s.patcher.ApplyPatch(s.q, g, s.patch, *u, apply)
		if err != nil {
			s.broken = true
			return zero, nil, fmt.Errorf("engine: %s: patching %v: %w", s.prog.Name(), *u, err)
		}
		if !applied {
			apply()
		}
		s.patch = st
	}
	stats := &metrics.Stats{Engine: "grape/" + s.prog.Name(), Workers: len(s.layout.Fragments), WallTime: time.Since(start)}
	res, err := s.patcher.PatchResult(s.q, s.patch)
	if err != nil {
		s.broken = true
		return zero, stats, err
	}
	return res, stats, nil
}

// fixpoint runs the engine loop. With init=true it spawns fresh contexts and
// runs PEval; otherwise it resumes the retained contexts, invoking IncEval on
// the workers whose fragments were dirtied.
func (s *Session[Q, V, R]) fixpoint(ctx context.Context, init bool, dirtyByWorker map[int][]graph.ID) (R, *metrics.Stats, error) {
	var zero R
	n := len(s.layout.Fragments)
	start := time.Now()
	stats := &metrics.Stats{Engine: "grape/" + s.prog.Name(), Workers: n}
	bus := mpi.NewBus(n, 4*n+16)
	if init {
		s.ctxs = make([]*Context[V], n)
		for i, f := range s.layout.Fragments {
			s.ctxs[i] = newContext(f, s.spec)
		}
	}

	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(w int) {
			workerLoop(ctx, bus, w, s.prog, s.iq, s.ctxs[w], s.spec)
			done <- struct{}{}
		}(i)
	}
	stop := func() {
		for i := 0; i < n; i++ {
			bus.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Payload: workerCmd[V]{kind: cmdStop}})
		}
		for i := 0; i < n; i++ {
			<-done
		}
	}

	stillActive := make(map[int]bool)
	replies := make([]*workerReply[V], n)
	collect := func(expect int, step int) ([][]VarUpdate[V], int, error) {
		return collectStep[V](ctx, bus, nil, s.fold, nil, replies, stillActive, stats, s.layout, nil, expect, step, s.opts.CheckMonotonic)
	}

	var route [][]VarUpdate[V]
	var scheduled int
	var err error
	if init {
		for i := 0; i < n; i++ {
			bus.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Step: 1, Payload: workerCmd[V]{kind: cmdPEval}})
		}
		stats.Supersteps = 1
		route, scheduled, err = collect(n, 1)
	} else {
		// Seed the fixpoint by running IncEval on the dirtied workers with
		// their own dirty nodes as the "updated" set.
		workers := make([]int, 0, len(dirtyByWorker))
		for w := range dirtyByWorker {
			workers = append(workers, w)
		}
		sort.Ints(workers)
		for _, w := range workers {
			bus.Send(mpi.Envelope{From: mpi.Coordinator, To: w, Step: 1, Payload: workerCmd[V]{kind: cmdLocalInc, dirty: dedupeIDs(dirtyByWorker[w])}})
		}
		stats.Supersteps = 1
		route, scheduled, err = collect(len(workers), 1)
	}
	if err != nil {
		stop()
		return zero, stats, err
	}

	for scheduled > 0 || len(stillActive) > 0 {
		if err := ctx.Err(); err != nil {
			stop()
			return zero, stats, cancelled(s.prog.Name(), stats.Supersteps, err)
		}
		if stats.Supersteps >= s.opts.MaxSupersteps {
			stop()
			return zero, stats, fmt.Errorf("engine: %s after %d supersteps: %w", s.prog.Name(), stats.Supersteps, ErrSuperstepLimit)
		}
		stats.Supersteps++
		active := 0
		for w := 0; w < n; w++ {
			ups := route[w]
			if len(ups) == 0 && !stillActive[w] {
				continue
			}
			active++
			bus.Send(mpi.Envelope{From: mpi.Coordinator, To: w, Step: stats.Supersteps, Payload: workerCmd[V]{kind: cmdIncEval, updates: ups}, Size: shipSize(s.spec, ups)})
		}
		route, scheduled, err = collect(active, stats.Supersteps)
		if err != nil {
			stop()
			return zero, stats, err
		}
	}
	stop()
	res, err := s.prog.Assemble(s.iq, s.ctxs)
	stats.Messages = bus.Messages()
	stats.Bytes = bus.Bytes()
	stats.WallTime = time.Since(start)
	if err != nil {
		return zero, stats, err
	}
	return res, stats, nil
}

func dedupeIDs(ids []graph.ID) []graph.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || ids[i-1] != id {
			out = append(out, id)
		}
	}
	return out
}
