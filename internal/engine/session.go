package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/partition"
)

// The paper defines IncEval over *updates M to G*: given Q, G, Q(G) and M,
// compute the change to the output. The demo exercises it with M = changed
// update parameters flowing between fragments, but the same machinery
// answers continuous queries over an evolving graph: keep the fragments and
// partial results of the last run, apply edge updates to the fragments,
// seed IncEval with the dirty nodes, and iterate the fixpoint again —
// without re-running PEval from scratch.
//
// A Session holds that retained state. Monotone decrease-only programs
// (SSSP, CC, Reach …) support insertions and weight decreases, where the
// incremental run is bounded in the sense of Example 1(d); updates that
// would move values up the order (deletions, weight increases) are rejected
// by the program's Updater.

// EdgeUpdate is one graph mutation: an edge insertion (or, equivalently for
// weighted graphs, a weight decrease when the edge already exists).
type EdgeUpdate struct {
	From, To graph.ID
	W        float64
	Label    string
}

// Updater is implemented by PIE programs that support incremental
// re-evaluation over graph updates. ApplyUpdate mutates the fragment-local
// state for one update whose source vertex lives on this fragment and
// returns the nodes whose variables may need re-relaxation; the edge has
// already been added to ctx.Frag.G when it is called.
type Updater[Q, V any] interface {
	ApplyUpdate(q Q, ctx *Context[V], upd EdgeUpdate) ([]graph.ID, error)
}

// UpdateValidator is optionally implemented by Updater programs to reject
// invalid updates *before* the engine mutates any graph state. ApplyUpdate
// runs after the edge has been inserted, so a rejection there necessarily
// leaves the graph changed and the session broken; checks that need no
// engine state (e.g. SSSP's negative-weight rule) belong here, where a
// failure costs nothing.
type UpdateValidator[Q any] interface {
	ValidateUpdate(q Q, upd EdgeUpdate) error
}

// BorderPublisher is optionally implemented by programs whose node variables
// do not mirror every node's current value (e.g. CC keeps labels in a
// union-find and only materializes border variables). When a graph update
// turns a node into a border node, the session asks its owner to publish the
// node's current value so the new copy holders receive it; programs without
// this method get Context.touch, which re-ships the stored variable.
type BorderPublisher[Q, V any] interface {
	PublishBorder(q Q, ctx *Context[V], id graph.ID)
}

// Session retains a query's distributed state across graph updates.
type Session[Q, V, R any] struct {
	prog   Program[Q, V, R]
	q      Q
	layout *partition.Layout
	ctxs   []*Context[V]
	opts   Options
	spec   VarSpec[V]
	// fold retains the coordinator's sharded border state between runs.
	fold *foldState[V]
	// broken marks a session whose incremental fixpoint did not complete
	// (cancelled or errored mid-Update): the retained fold and fragment
	// state have diverged, so later Updates would return silently stale
	// answers. Once set, Update and Result fail loudly instead.
	broken bool
}

// ErrSessionBroken is returned (wrapped) by Update and Result after an
// incremental fixpoint was cancelled or failed partway: the retained state
// is not trustworthy. Start a fresh session over the (already mutated)
// graph.
var ErrSessionBroken = errors.New("session state diverged by an aborted update; start a new session")

// NewSession runs the initial PEval/IncEval fixpoint and retains the state
// for incremental updates. The context bounds the initial fixpoint only;
// each Update call carries its own.
func NewSession[Q, V, R any](ctx context.Context, g *graph.Graph, prog Program[Q, V, R], q Q, opts Options) (*Session[Q, V, R], R, *metrics.Stats, error) {
	var zero R
	if !g.Directed() {
		return nil, zero, nil, fmt.Errorf("engine: sessions support directed graphs only (undirected cut edges live on both fragments)")
	}
	if opts.Transport != nil {
		return nil, zero, nil, fmt.Errorf("engine: sessions run on the in-process bus only (graph updates mutate shared fragments)")
	}
	opts = opts.withDefaults()
	asg, err := opts.Strategy.Partition(g, opts.Workers)
	if err != nil {
		return nil, zero, nil, err
	}
	layout := partition.Build(g, asg)
	s := &Session[Q, V, R]{
		prog:   prog,
		q:      q,
		layout: layout,
		opts:   opts,
		spec:   prog.Spec(),
	}
	s.fold = newFoldState(s.spec, len(layout.Fragments))
	res, stats, err := s.fixpoint(ctx, true, nil)
	if err != nil {
		return nil, zero, stats, err
	}
	return s, res, stats, nil
}

// Broken reports whether an aborted or failed incremental fixpoint has
// diverged the session's retained state (see ErrSessionBroken). A rejected
// update batch — caught by the pre-mutation validation — does not break the
// session; callers like the serving layer use this to tell "bad input,
// nothing happened" from "state diverged, drop the session".
func (s *Session[Q, V, R]) Broken() bool { return s.broken }

// Result re-assembles the current answer without recomputation.
func (s *Session[Q, V, R]) Result() (R, error) {
	if s.broken {
		var zero R
		return zero, fmt.Errorf("engine: %s: %w", s.prog.Name(), ErrSessionBroken)
	}
	return s.prog.Assemble(s.q, s.ctxs)
}

// Update applies a batch of edge updates and re-runs only IncEval, seeded at
// the dirty nodes — the paper's Q(G ⊕ M) = Q(G) ⊕ ΔO. The program must
// implement Updater. A cancelled ctx aborts the incremental fixpoint at the
// next superstep barrier; the graph mutation itself has already been applied
// by then and the retained state has diverged, so the session marks itself
// broken — further Update/Result calls fail with ErrSessionBroken instead
// of returning silently stale answers. Drop the session and start a new one
// over the (mutated) graph.
func (s *Session[Q, V, R]) Update(ctx context.Context, updates []EdgeUpdate) (R, *metrics.Stats, error) {
	var zero R
	if s.broken {
		return zero, nil, fmt.Errorf("engine: %s: %w", s.prog.Name(), ErrSessionBroken)
	}
	up, ok := any(s.prog).(Updater[Q, V])
	if !ok {
		return zero, nil, fmt.Errorf("engine: program %s does not support incremental graph updates", s.prog.Name())
	}
	// Validate the whole batch before mutating anything: rejecting a bad
	// entry after earlier ones were applied would force the session broken
	// for what is merely invalid input.
	validator, hasValidator := any(s.prog).(UpdateValidator[Q])
	for _, u := range updates {
		if !s.layout.Asg.G.Has(u.From) || !s.layout.Asg.G.Has(u.To) {
			return zero, nil, fmt.Errorf("engine: update %v references unknown vertices (vertex additions are not supported)", u)
		}
		if hasValidator {
			if err := validator.ValidateUpdate(s.q, u); err != nil {
				return zero, nil, fmt.Errorf("engine: rejecting %v: %w", u, err)
			}
		}
	}
	// Route each update to the owner of its source vertex (where the edge
	// is stored) and mutate that fragment. New endpoints may enlarge the
	// border: keep placement in sync. An error once this loop has begun
	// mutating leaves earlier batch entries applied locally but never
	// propagated — the same divergence as an aborted fixpoint — so it
	// breaks the session.
	dirtyByWorker := make(map[int][]graph.ID)
	for _, u := range updates {
		w := s.layout.Asg.Owner(u.From)
		f := s.layout.Fragments[w]
		if w != s.layout.Asg.Owner(u.To) && !f.G.Has(u.To) {
			// new outer copy: replicate the vertex, extend the border on
			// both sides, and bring the copy up to date with the
			// coordinator's folded value so no historic routing is missed.
			g := s.layout.Asg.G
			f.G.AddVertex(u.To, g.Label(u.To))
			if ps := g.Props(u.To); len(ps) > 0 {
				f.G.SetProps(u.To, append([]string(nil), ps...))
			}
			f.AddOuter(u.To)
			s.layout.AddHost(u.To, w)
			s.ctxs[w].addBorder(u.To)
			if gv, ok := s.fold.lookup(u.To); ok {
				s.ctxs[w].SetLocal(u.To, s.spec.Agg(s.ctxs[w].Get(u.To), gv))
			}
			owner := s.layout.Asg.Owner(u.To)
			of := s.layout.Fragments[owner]
			if of.AddInnerBorder(u.To) {
				s.ctxs[owner].addBorder(u.To)
			}
			// the owner's current value never shipped if the node was not
			// border before; force it onto the wire
			if pub, ok := any(s.prog).(BorderPublisher[Q, V]); ok {
				pub.PublishBorder(s.q, s.ctxs[owner], u.To)
			} else {
				s.ctxs[owner].touch(u.To)
			}
			if _, ok := dirtyByWorker[owner]; !ok {
				dirtyByWorker[owner] = nil
			}
		}
		f.G.AddLabeledEdge(u.From, u.To, u.W, u.Label)
		// mirror into the global graph so later sessions/partitions see it
		s.layout.Asg.G.AddLabeledEdge(u.From, u.To, u.W, u.Label)
		if _, ok := dirtyByWorker[w]; !ok {
			dirtyByWorker[w] = nil
		}
		dirty, err := up.ApplyUpdate(s.q, s.ctxs[w], u)
		if err != nil {
			// the edge itself was already inserted above; the session's
			// retained state no longer matches a clean graph
			s.broken = true
			return zero, nil, fmt.Errorf("engine: applying %v: %w", u, err)
		}
		dirtyByWorker[w] = append(dirtyByWorker[w], dirty...)
	}
	res, stats, err := s.fixpoint(ctx, false, dirtyByWorker)
	if err != nil {
		// partial routing: the fold may hold values never shipped to all
		// hosts, and re-running cannot recover them (only improvements over
		// the fold's state are routed)
		s.broken = true
	}
	return res, stats, err
}

// fixpoint runs the engine loop. With init=true it spawns fresh contexts and
// runs PEval; otherwise it resumes the retained contexts, invoking IncEval on
// the workers whose fragments were dirtied.
func (s *Session[Q, V, R]) fixpoint(ctx context.Context, init bool, dirtyByWorker map[int][]graph.ID) (R, *metrics.Stats, error) {
	var zero R
	n := len(s.layout.Fragments)
	start := time.Now()
	stats := &metrics.Stats{Engine: "grape/" + s.prog.Name(), Workers: n}
	bus := mpi.NewBus(n, 4*n+16)
	if init {
		s.ctxs = make([]*Context[V], n)
		for i, f := range s.layout.Fragments {
			s.ctxs[i] = newContext(f, s.spec)
		}
	}

	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(w int) {
			workerLoop(ctx, bus, w, s.prog, s.q, s.ctxs[w], s.spec)
			done <- struct{}{}
		}(i)
	}
	stop := func() {
		for i := 0; i < n; i++ {
			bus.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Payload: workerCmd[V]{kind: cmdStop}})
		}
		for i := 0; i < n; i++ {
			<-done
		}
	}

	stillActive := make(map[int]bool)
	replies := make([]*workerReply[V], n)
	collect := func(expect int, step int) ([][]VarUpdate[V], int, error) {
		return collectStep[V](ctx, bus, nil, s.fold, replies, stillActive, stats, s.layout, expect, step, s.opts.CheckMonotonic)
	}

	var route [][]VarUpdate[V]
	var scheduled int
	var err error
	if init {
		for i := 0; i < n; i++ {
			bus.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Step: 1, Payload: workerCmd[V]{kind: cmdPEval}})
		}
		stats.Supersteps = 1
		route, scheduled, err = collect(n, 1)
	} else {
		// Seed the fixpoint by running IncEval on the dirtied workers with
		// their own dirty nodes as the "updated" set.
		workers := make([]int, 0, len(dirtyByWorker))
		for w := range dirtyByWorker {
			workers = append(workers, w)
		}
		sort.Ints(workers)
		for _, w := range workers {
			bus.Send(mpi.Envelope{From: mpi.Coordinator, To: w, Step: 1, Payload: workerCmd[V]{kind: cmdLocalInc, dirty: dedupeIDs(dirtyByWorker[w])}})
		}
		stats.Supersteps = 1
		route, scheduled, err = collect(len(workers), 1)
	}
	if err != nil {
		stop()
		return zero, stats, err
	}

	for scheduled > 0 || len(stillActive) > 0 {
		if err := ctx.Err(); err != nil {
			stop()
			return zero, stats, cancelled(s.prog.Name(), stats.Supersteps, err)
		}
		if stats.Supersteps >= s.opts.MaxSupersteps {
			stop()
			return zero, stats, fmt.Errorf("engine: %s after %d supersteps: %w", s.prog.Name(), stats.Supersteps, ErrSuperstepLimit)
		}
		stats.Supersteps++
		active := 0
		for w := 0; w < n; w++ {
			ups := route[w]
			if len(ups) == 0 && !stillActive[w] {
				continue
			}
			active++
			bus.Send(mpi.Envelope{From: mpi.Coordinator, To: w, Step: stats.Supersteps, Payload: workerCmd[V]{kind: cmdIncEval, updates: ups}, Size: shipSize(s.spec, ups)})
		}
		route, scheduled, err = collect(active, stats.Supersteps)
		if err != nil {
			stop()
			return zero, stats, err
		}
	}
	stop()
	res, err := s.prog.Assemble(s.q, s.ctxs)
	stats.Messages = bus.Messages()
	stats.Bytes = bus.Bytes()
	stats.WallTime = time.Since(start)
	if err != nil {
		return zero, stats, err
	}
	return res, stats, nil
}

func dedupeIDs(ids []graph.ID) []graph.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || ids[i-1] != id {
			out = append(out, id)
		}
	}
	return out
}
