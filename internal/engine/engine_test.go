package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
)

// countdown is a minimal monotone PIE program used to exercise the engine
// machinery in isolation. PEval stamps every local vertex with
// 64 + fragment index, so replicas of a border node disagree and the
// coordinator must route updates; each IncEval round halves the updated
// values, shipping the changes, until everything reaches 1. The aggregate
// is last-writer-wins so the declared order (<) does real work — a program
// that ships an increase is caught by the monotonicity checker rather than
// silently absorbed.
type countdown struct {
	failPEval   bool
	failIncEval bool
	breakOrder  bool // violate the declared partial order on purpose
}

type cdQuery struct{}

func (countdown) Name() string { return "countdown" }

func (c countdown) Spec() VarSpec[int64] {
	return VarSpec[int64]{
		Default: 1 << 30,
		Agg:     func(a, b int64) int64 { return b }, // last writer wins
		Eq:      func(a, b int64) bool { return a == b },
		Less:    func(a, b int64) bool { return a < b },
	}
}

func (c countdown) PEval(q cdQuery, ctx *Context[int64]) error {
	if c.failPEval {
		return errors.New("peval boom")
	}
	for _, v := range ctx.Frag.G.Vertices() {
		ctx.Set(v, 64+int64(ctx.Frag.Index))
		ctx.AddWork(1)
	}
	return nil
}

func (c countdown) IncEval(q cdQuery, ctx *Context[int64]) error {
	if c.failIncEval {
		return errors.New("inceval boom")
	}
	for _, u := range ctx.Updated() {
		v := ctx.Get(u)
		if c.breakOrder {
			ctx.Set(u, v+1) // moves up the order: monotonicity violation
			continue
		}
		if v > 1 {
			ctx.Set(u, v/2)
		}
		ctx.AddWork(1)
	}
	return nil
}

func (countdown) Assemble(q cdQuery, ctxs []*Context[int64]) (map[graph.ID]int64, error) {
	out := map[graph.ID]int64{}
	for _, ctx := range ctxs {
		ctx.Vars(func(id graph.ID, v int64) {
			if ctx.Frag.IsInner(id) {
				out[id] = v
			}
		})
	}
	return out, nil
}

func TestEngineRunsToFixpoint(t *testing.T) {
	g := gen.Random(60, 180, 1)
	res, stats, err := Run(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != g.NumVertices() {
		t.Fatalf("assembled %d of %d vertices", len(res), g.NumVertices())
	}
	if stats.Supersteps < 2 {
		t.Fatalf("halving needs several supersteps, got %d", stats.Supersteps)
	}
	if stats.WallTime <= 0 || len(stats.WorkPerStep) != stats.Supersteps {
		t.Fatalf("stats incomplete: %+v", stats)
	}
}

func TestEngineSurfacesPEvalError(t *testing.T) {
	g := gen.Random(20, 40, 1)
	_, _, err := Run(context.Background(), g, countdown{failPEval: true}, cdQuery{}, Options{Workers: 3})
	if err == nil || !contains(err.Error(), "peval boom") {
		t.Fatalf("want peval error, got %v", err)
	}
}

func TestEngineSurfacesIncEvalError(t *testing.T) {
	g := gen.Random(40, 120, 2)
	_, _, err := Run(context.Background(), g, countdown{failIncEval: true}, cdQuery{}, Options{Workers: 3})
	if err == nil || !contains(err.Error(), "inceval boom") {
		t.Fatalf("want inceval error, got %v", err)
	}
}

func TestEngineDetectsMonotonicityViolation(t *testing.T) {
	g := gen.Random(40, 120, 3)
	_, _, err := Run(context.Background(), g, countdown{breakOrder: true}, cdQuery{}, Options{Workers: 3, CheckMonotonic: true, MaxSupersteps: 50})
	if !errors.Is(err, ErrNotMonotonic) {
		t.Fatalf("want ErrNotMonotonic, got %v", err)
	}
	// Without checking, the violation shows up as a superstep-limit blowup
	// instead (values keep climbing): the Assurance Theorem's contrapositive.
	_, _, err = Run(context.Background(), g, countdown{breakOrder: true}, cdQuery{}, Options{Workers: 3, MaxSupersteps: 20})
	if !errors.Is(err, ErrSuperstepLimit) {
		t.Fatalf("want ErrSuperstepLimit, got %v", err)
	}
}

func TestEngineSuperstepLimit(t *testing.T) {
	g := gen.Random(60, 180, 4)
	_, _, err := Run(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 4, MaxSupersteps: 2})
	if !errors.Is(err, ErrSuperstepLimit) {
		t.Fatalf("want ErrSuperstepLimit, got %v", err)
	}
}

func TestEngineSingleWorkerNoTraffic(t *testing.T) {
	g := gen.Random(50, 150, 5)
	_, stats, err := Run(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 0 || stats.Bytes != 0 {
		t.Fatalf("one worker has no border, but shipped %d msgs / %d bytes", stats.Messages, stats.Bytes)
	}
}

func TestEngineEmptyFragmentTolerated(t *testing.T) {
	// more workers than vertices: some fragments are empty
	g := graph.New()
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	res, _, err := Run(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("want 3 assembled vertices, got %d", len(res))
	}
}

func TestEngineDeterministicStats(t *testing.T) {
	g := gen.Random(80, 240, 6)
	_, a, err := Run(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Run(context.Background(), g, countdown{}, cdQuery{}, Options{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Supersteps != b.Supersteps || a.Messages != b.Messages || a.Bytes != b.Bytes {
		t.Fatalf("nondeterministic engine: %+v vs %+v", a, b)
	}
}

var registryTestSeq atomic.Int64

func TestEngineOverPartitionWithBalancer(t *testing.T) {
	// countdown's fixpoint depends on fragment indices, so this test checks
	// the balancer wiring (worker count, coverage); result equivalence for
	// a partition-independent program is asserted in the queries package.
	g := gen.PreferentialAttachment(500, 4, 8)
	balanced, stats, err := Run(context.Background(), g, asyncProg{}, cdQuery{}, Options{Workers: 4, Fragments: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 4 {
		t.Fatalf("balancer must keep %d workers, got %d", 4, stats.Workers)
	}
	if len(balanced) != g.NumVertices() {
		t.Fatalf("balanced run assembled %d of %d", len(balanced), g.NumVertices())
	}
}

func TestRegistryLifecycle(t *testing.T) {
	// unique per invocation: the registry is process-global and -count=N
	// reruns the test in one process
	name := fmt.Sprintf("test-prog-registry-%d", registryTestSeq.Add(1))
	Register(Entry{
		Name:        name,
		Description: "test",
		Run: func(ctx context.Context, g *graph.Graph, opts Options, query string) (any, *metrics.Stats, error) {
			return query, &metrics.Stats{}, nil
		},
		Parse:    func(query string) (ParsedQuery, error) { return ParsedQuery{Program: name, Canonical: query}, nil },
		Resident: func(layout *partition.Layout, opts Options) (ResidentRunner, error) { return nil, nil },
		Session: func(ctx context.Context, g *graph.Graph, opts Options, pq ParsedQuery) (SessionHandle, any, *metrics.Stats, error) {
			return nil, nil, nil, nil
		},
	})
	e, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.Run(context.Background(), nil, Options{}, "hello")
	if err != nil || res != "hello" {
		t.Fatalf("entry run broken: %v %v", res, err)
	}
	found := false
	for _, le := range Library() {
		if le.Name == name {
			found = true
		}
	}
	if !found {
		t.Fatal("library listing missing the entry")
	}
	if _, err := Lookup("definitely-not-registered"); err == nil {
		t.Fatal("expected lookup error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register(Entry{Name: name})
}

func TestContextSemantics(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	asg := partition.NewAssignment(g, 2)
	asg.SetOwner(1, 0)
	asg.SetOwner(2, 1)
	asg.SetOwner(3, 1)
	layout := partition.Build(g, asg)
	spec := countdown{}.Spec()
	ctx := newContext(layout.Fragments[0], spec)

	// default until set
	if ctx.Get(1) != 1<<30 {
		t.Fatal("default value wrong")
	}
	// setting a non-border node queues nothing
	ctx.Set(1, 5)
	if len(ctx.flush()) != 0 {
		t.Fatal("non-border change should not ship")
	}
	// setting a border node (2 is outer in fragment 0) queues exactly once
	ctx.Set(2, 7)
	ctx.Set(2, 7) // idempotent
	ups := ctx.flush()
	if len(ups) != 1 || ups[0].ID != 2 || ups[0].Val != 7 {
		t.Fatalf("border flush wrong: %v", ups)
	}
	if len(ctx.flush()) != 0 {
		t.Fatal("flush must clear the queue")
	}
	// SetLocal never ships
	ctx.SetLocal(2, 9)
	if len(ctx.flush()) != 0 {
		t.Fatal("SetLocal must not ship")
	}
	// apply folds with the aggregate and records only real changes
	ctx.apply([]VarUpdate[int64]{{ID: 2, Val: 9}}) // same value: no change
	if len(ctx.Updated()) != 0 {
		t.Fatalf("unchanged value must not count as an update: %v", ctx.Updated())
	}
	ctx.apply([]VarUpdate[int64]{{ID: 2, Val: 3}})
	if len(ctx.Updated()) != 1 || ctx.Get(2) != 3 {
		t.Fatal("apply did not fold the improvement")
	}
	// work accounting drains
	ctx.AddWork(5)
	if ctx.takeWork() != 5 || ctx.takeWork() != 0 {
		t.Fatal("work accounting broken")
	}
	if !ctx.IsBorder(2) || ctx.IsBorder(1) {
		t.Fatal("IsBorder wrong")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
