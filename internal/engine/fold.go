package engine

import (
	"context"
	"fmt"
	"sync"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/partition"
	"grape/internal/trace"
)

// The coordinator's per-superstep work — folding every worker's reported
// update-parameter changes and routing the survivors — used to be a single
// map-based loop, so worker parallelism was capped by one serial aggregation
// step. foldState shards that work: changed IDs hash into one shard per
// worker, each folded by its own goroutine. Within a shard the fold still
// walks replies in worker order, so aggregation stays deterministic even for
// non-commutative aggregates (e.g. CF's parameter averaging) — shards
// partition the ID space, so per-ID fold order is exactly what the serial
// loop produced.

// changeRec is one folded change of a superstep: the node, its new global
// value, and the worker whose report set the final value (routing skips that
// worker — it already holds the value).
type changeRec[V any] struct {
	id     graph.ID
	val    V
	winner int
}

// foldState carries the coordinator's aggregation machinery across
// supersteps: the sharded global border state, per-shard change lists, and
// per-worker routing buffers, all reused between supersteps so the hot path
// stops reallocating.
type foldState[V any] struct {
	spec   VarSpec[V] //grapevet:keep construction-time identity: fixed per Resident, like Context.spec
	n      int        //grapevet:keep construction-time shape: worker count is a property of the layout the scratch was built for
	shards int        //grapevet:keep construction-time shape: derived from n at construction

	global  []map[graph.ID]V   // best-known border values, by shard
	pos     []map[graph.ID]int // scratch: id -> index into changed[s]
	changed [][]changeRec[V]   // this superstep's folded changes, by shard
	errs    []error            // per-shard fold errors (parallel path)
	buckets [][]VarUpdate[V]   // n*shards scratch for the parallel fold
	route   [][]VarUpdate[V]   // per-worker routing buffers
}

func newFoldState[V any](spec VarSpec[V], n int) *foldState[V] {
	s := n
	if s < 1 {
		s = 1
	}
	fs := &foldState[V]{
		spec:    spec,
		n:       n,
		shards:  s,
		global:  make([]map[graph.ID]V, s),
		pos:     make([]map[graph.ID]int, s),
		changed: make([][]changeRec[V], s),
		errs:    make([]error, s),
		buckets: make([][]VarUpdate[V], n*s),
		route:   make([][]VarUpdate[V], n),
	}
	for i := 0; i < s; i++ {
		fs.global[i] = make(map[graph.ID]V)
		fs.pos[i] = make(map[graph.ID]int)
	}
	return fs
}

func (f *foldState[V]) shardOf(id graph.ID) int {
	return int((uint64(id) * 0x9e3779b97f4a7c15) % uint64(f.shards))
}

// lookup returns the folded global value of id, if any. The session layer
// uses it to bring new outer copies up to date.
func (f *foldState[V]) lookup(id graph.ID) (V, bool) {
	v, ok := f.global[f.shardOf(id)][id]
	return v, ok
}

// forget drops the coordinator's folded value of id. Delete repair uses it
// when a node's value is invalidated: the retained baseline would otherwise
// suppress (via Eq) or reject (via the monotonicity check) the re-derived
// value of the node.
func (f *foldState[V]) forget(id graph.ID) {
	delete(f.global[f.shardOf(id)], id)
}

// force overwrites the coordinator's folded value of id, bypassing Agg and
// the monotonicity check. Delete repair uses it to re-align the baseline
// with a repaired value that may sit above the old one in the order (e.g. a
// CC label after a component split).
func (f *foldState[V]) force(id graph.ID, v V) {
	f.global[f.shardOf(id)][id] = v
}

// parallelFoldThreshold is the changed-value count below which sharded
// goroutines cost more than they save and the fold runs serially (over the
// same shard structures, in the same order).
const parallelFoldThreshold = 256

// fold aggregates one superstep's reports. replies is indexed by worker;
// nil entries are workers that were not scheduled. checkMono enables the
// Assurance Theorem verification of Options.CheckMonotonic.
func (f *foldState[V]) fold(replies []*workerReply[V], checkMono bool) error {
	total := 0
	for _, rep := range replies {
		if rep != nil {
			total += len(rep.changes)
		}
	}
	for s := 0; s < f.shards; s++ {
		f.changed[s] = f.changed[s][:0]
		clear(f.pos[s])
		f.errs[s] = nil
	}
	if f.shards == 1 || total < parallelFoldThreshold {
		for w := 0; w < f.n; w++ {
			if replies[w] == nil {
				continue
			}
			for _, u := range replies[w].changes {
				if err := f.foldOne(f.shardOf(u.ID), w, u, checkMono); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Bucket phase: split each worker's (ID-sorted) report by shard, workers
	// in parallel, preserving per-worker order within every bucket.
	var wg sync.WaitGroup
	for w := 0; w < f.n; w++ {
		base := w * f.shards
		for s := 0; s < f.shards; s++ {
			f.buckets[base+s] = f.buckets[base+s][:0]
		}
		if replies[w] == nil || len(replies[w].changes) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * f.shards
			for _, u := range replies[w].changes {
				s := f.shardOf(u.ID)
				f.buckets[base+s] = append(f.buckets[base+s], u)
			}
		}(w)
	}
	wg.Wait()
	// Fold phase: one goroutine per shard, walking buckets in worker order —
	// the same deterministic order as the serial path.
	for s := 0; s < f.shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for w := 0; w < f.n; w++ {
				for _, u := range f.buckets[w*f.shards+s] {
					if err := f.foldOne(s, w, u, checkMono); err != nil {
						f.errs[s] = err
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range f.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// foldOne merges one reported value into shard s's state, recording the
// change (and its winning worker) when the global value moves.
func (f *foldState[V]) foldOne(s, w int, u VarUpdate[V], checkMono bool) error {
	if f.spec.Consume {
		// queue semantics: fold this superstep's reports only, deliver to
		// the owner; nothing persists at the coordinator
		if p, ok := f.pos[s][u.ID]; ok {
			f.changed[s][p].val = f.spec.Agg(f.changed[s][p].val, u.Val)
			return nil
		}
		f.pos[s][u.ID] = len(f.changed[s])
		f.changed[s] = append(f.changed[s], changeRec[V]{id: u.ID, val: f.spec.Agg(f.spec.Default, u.Val), winner: w})
		return nil
	}
	old, has := f.global[s][u.ID]
	if !has {
		old = f.spec.Default
	}
	merged := f.spec.Agg(old, u.Val)
	if f.spec.Eq(old, merged) {
		return nil
	}
	if checkMono && f.spec.Less != nil && has && !f.spec.Less(merged, old) {
		return fmt.Errorf("engine: node %d: %v -> %v: %w", u.ID, old, merged, ErrNotMonotonic)
	}
	f.global[s][u.ID] = merged
	if p, ok := f.pos[s][u.ID]; ok {
		f.changed[s][p].val = merged
		f.changed[s][p].winner = w
		return nil
	}
	f.pos[s][u.ID] = len(f.changed[s])
	f.changed[s] = append(f.changed[s], changeRec[V]{id: u.ID, val: merged, winner: w})
	return nil
}

// collectStep is the coordinator's end-of-superstep sequence, shared by
// RunOnLayout, Session.fixpoint and runWire: drain expect worker replies
// from the transport, update stillActive, fold the reports, append the
// superstep's work and byte rows to stats, and build the routing table.
// replies is caller-owned scratch of length workers. codec is nil on the
// in-process bus (replies arrive as Go values); wire transports deliver
// frames that are decoded with it. A cancelled ctx unblocks the barrier
// wait mid-superstep and surfaces as the context's error, wrapped with the
// run's provenance.
//
// rc, when non-nil, makes the barrier survive worker-fatal envelopes: the
// dead worker's fragment is revived on a survivor (rc.revive), and if it
// still owed this superstep a reply, the replayed fragment produces it —
// the drain keeps waiting for exactly the replies the superstep is due, so
// a fatal envelope never consumes a reply slot. With rc nil (sessions,
// recovery disabled) a fatal envelope fails the run with its classified
// error.
// rec is the flight recorder (nil when tracing is off): the barrier, each
// worker's piggybacked phase timings, checkpoint/recovery events, and the
// span close are recorded here because collectStep is the one place all
// three run loops share.
func collectStep[V any](ctx context.Context, tr mpi.Transport, codec Codec[V], fold *foldState[V], rc *recoverer[V], replies []*workerReply[V], stillActive map[int]bool, stats *metrics.Stats, layout *partition.Layout, rec *trace.Recorder, expect, step int, checkMono bool) ([][]VarUpdate[V], int, error) {
	n := fold.n
	perWorker := make([]int64, n)
	var stepBytes int64
	// Drain all replies first, then fold them in worker order so that
	// aggregation is deterministic even for non-commutative aggregates
	// (e.g. CF's parameter averaging).
	clear(replies)
	for remaining := expect; remaining > 0; {
		env, err := tr.Recv(ctx, mpi.Coordinator)
		if err != nil {
			return nil, 0, cancelled(stats.Engine, step, err)
		}
		if perr, ok := env.Payload.(error); ok && env.Frame == nil {
			// A terminal link envelope: a worker (or the link to it) died.
			w, workerFatal := mpi.WorkerFatalOf(perr)
			if !workerFatal || rc == nil || w < 0 || w >= n {
				// Run-fatal, or recovery is off. Record the empty reply so a
				// concurrent cancellation does not wait out the abort-drain
				// timeout on a frame that already arrived.
				if env.From >= 0 && env.From < n && replies[env.From] == nil {
					replies[env.From] = &workerReply[V]{}
				}
				return nil, 0, fmt.Errorf("worker %d superstep %d: %w", env.From, step, perr)
			}
			owe := 0
			if rc.sched[w] && replies[w] == nil {
				owe = step
			}
			host, rerr := rc.revive(w, step, owe)
			if rerr != nil {
				return nil, 0, fmt.Errorf("worker %d superstep %d: recovering from %v: %w", w, step, perr, rerr)
			}
			stats.Recoveries = append(stats.Recoveries, metrics.Recovery{Superstep: step, Fragment: w, Host: host})
			if rec != nil {
				rec.Event("recovery", fmt.Sprintf("superstep %d: fragment %d revived on worker %d", step, w, host))
			}
			// remaining is untouched: if a reply was owed, the revived
			// fragment ships it and the drain picks it up below.
			continue
		}
		var rep workerReply[V]
		// A terminal envelope (broken link, undecodable frame, worker-side
		// error reply) still counts as this worker's frame for the
		// superstep: record it before failing, so a concurrent cancellation
		// does not wait out the abort-drain timeout on a frame that already
		// arrived.
		if codec != nil {
			frame, err := wireFrame(env)
			if err == nil {
				rep, err = decodeReply(codec, frame)
			}
			if err != nil {
				if env.From >= 0 && env.From < n {
					replies[env.From] = &workerReply[V]{}
				}
				return nil, 0, fmt.Errorf("worker %d superstep %d: %w", env.From, step, err)
			}
		} else {
			rep = env.Payload.(workerReply[V])
		}
		if rep.err != nil {
			if env.From >= 0 && env.From < n {
				replies[env.From] = &rep
			}
			return nil, 0, fmt.Errorf("worker %d superstep %d: %w", env.From, step, rep.err)
		}
		if env.From < 0 || env.From >= n || replies[env.From] != nil {
			return nil, 0, fmt.Errorf("superstep %d: unexpected reply from worker %d", step, env.From)
		}
		replies[env.From] = &rep
		perWorker[env.From] = rep.work
		stepBytes += int64(env.Size)
		rec.WorkerTiming(step, env.From, rep.computeNS, rep.applyNS)
		remaining--
	}
	rec.BarrierDone(step)
	for w := 0; w < n; w++ {
		rep := replies[w]
		if rep == nil {
			continue
		}
		if rep.active {
			stillActive[w] = true
		} else {
			delete(stillActive, w)
		}
	}
	if err := fold.fold(replies, checkMono); err != nil {
		return nil, 0, err
	}
	if rc != nil {
		if err := rc.ckpt.append(step, fold, stillActive); err != nil {
			return nil, 0, err
		}
		if rec != nil {
			rec.Event("checkpoint", fmt.Sprintf("superstep %d", step))
		}
	}
	stats.WorkPerStep = append(stats.WorkPerStep, perWorker)
	stats.BytesPerStep = append(stats.BytesPerStep, stepBytes)
	route, scheduled := fold.buildRoute(layout)
	rec.EndStep(step)
	return route, scheduled, nil
}

// buildRoute turns the folded changes into per-worker update batches: each
// changed value goes to every fragment hosting the node except the winner
// (queue variables go to the owner only: they are messages, not state).
// Buffers are reused across supersteps — workers are done with the previous
// batch before their replies reach the coordinator, so nothing aliases.
// Returns the routing table (indexed by worker; empty slices mean "not
// scheduled") and the number of workers with pending updates.
func (f *foldState[V]) buildRoute(layout *partition.Layout) ([][]VarUpdate[V], int) {
	for w := 0; w < f.n; w++ {
		f.route[w] = f.route[w][:0]
	}
	for s := 0; s < f.shards; s++ {
		for _, rec := range f.changed[s] {
			if f.spec.Consume {
				o := layout.Asg.Owner(rec.id)
				f.route[o] = append(f.route[o], VarUpdate[V]{ID: rec.id, Val: rec.val})
				continue
			}
			for _, h := range layout.Hosts(rec.id) {
				if h == rec.winner {
					continue
				}
				f.route[h] = append(f.route[h], VarUpdate[V]{ID: rec.id, Val: rec.val})
			}
		}
	}
	scheduled := 0
	for w := 0; w < f.n; w++ {
		if len(f.route[w]) > 0 {
			sortUpdates(f.route[w])
			scheduled++
		}
	}
	return f.route, scheduled
}
