package engine

import (
	"context"
	"strings"
	"testing"

	"grape/internal/gen"
	"grape/internal/graph"
)

// asyncProg gives countdown a min aggregate so it is genuinely monotone
// (async execution requires a confluent fixpoint, which last-writer-wins
// does not give).
type asyncProg struct{ countdown }

func (asyncProg) Spec() VarSpec[int64] {
	return VarSpec[int64]{
		Default: 1 << 30,
		Agg: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		Eq:   func(a, b int64) bool { return a == b },
		Less: func(a, b int64) bool { return a < b },
	}
}

func TestAsyncMatchesSyncFixpoint(t *testing.T) {
	g := gen.Random(100, 300, 31)
	sync, _, err := Run(context.Background(), g, asyncProg{}, cdQuery{}, Options{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	async, stats, err := RunAsync(context.Background(), g, asyncProg{}, cdQuery{}, Options{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(async) != len(sync) {
		t.Fatalf("async assembled %d, sync %d", len(async), len(sync))
	}
	for v, x := range sync {
		if async[v] != x {
			t.Fatalf("vertex %d: async %d sync %d", v, async[v], x)
		}
	}
	if stats.Messages == 0 && len(g.Vertices()) > 0 {
		t.Log("note: no cross-worker traffic (possible but unusual)")
	}
	if stats.WallTime <= 0 {
		t.Fatal("stats incomplete")
	}
}

func TestAsyncSingleWorker(t *testing.T) {
	g := gen.Random(40, 80, 7)
	res, stats, err := RunAsync(context.Background(), g, asyncProg{}, cdQuery{}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != g.NumVertices() {
		t.Fatalf("assembled %d of %d", len(res), g.NumVertices())
	}
	if stats.Messages != 0 {
		t.Fatalf("single worker sent %d messages", stats.Messages)
	}
}

func TestAsyncSurfacesErrors(t *testing.T) {
	g := gen.Random(30, 60, 9)
	_, _, err := RunAsync(context.Background(), g, struct {
		asyncProg
	}{asyncProg{countdown{failPEval: true}}}, cdQuery{}, Options{Workers: 3})
	if err == nil || !strings.Contains(err.Error(), "peval boom") {
		t.Fatalf("want peval error, got %v", err)
	}
}

func TestAsyncRejectsConsumePrograms(t *testing.T) {
	g := gen.Random(10, 20, 1)
	_, _, err := RunAsync(context.Background(), g, consumeProg{}, cdQuery{}, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "async") {
		t.Fatalf("want consume rejection, got %v", err)
	}
}

// consumeProg is a do-nothing program with queue-typed variables, used only
// to check RunAsync's rejection path.
type consumeProg struct{}

func (consumeProg) Name() string { return "consume-test" }
func (consumeProg) Spec() VarSpec[int64] {
	return VarSpec[int64]{
		Default: 0,
		Agg:     func(a, b int64) int64 { return a + b },
		Eq:      func(a, b int64) bool { return a == b },
		Consume: true,
	}
}
func (consumeProg) PEval(cdQuery, *Context[int64]) error   { return nil }
func (consumeProg) IncEval(cdQuery, *Context[int64]) error { return nil }
func (consumeProg) Assemble(_ cdQuery, _ []*Context[int64]) (map[graph.ID]int64, error) {
	return nil, nil
}
