package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"testing"

	"grape/internal/graph"
	"grape/internal/partition"
)

// f64Codec mirrors the SSSP wire codec shape without importing queries
// (which would cycle): fixed 8-byte IEEE754 values.
type f64Codec struct{}

func (f64Codec) AppendVal(buf []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
}

func (f64Codec) DecodeVal(b []byte) (float64, int, error) {
	if len(b) < 8 {
		return 0, 0, fmt.Errorf("short value")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), 8, nil
}

func TestEpochFrameRoundTrip(t *testing.T) {
	ep := ckptEpoch[float64]{
		recs: []changeRec[float64]{
			{id: 3, val: 1.5, winner: 0},
			{id: 7, val: math.Inf(1), winner: 2},
			{id: 900, val: -0.25, winner: 3},
		},
		active: []bool{true, false, false, true},
	}
	frame := appendEpochFrame[float64](f64Codec{}, nil, ep)
	got, err := decodeEpochFrame[float64](f64Codec{}, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ep.recs, got.recs) || !reflect.DeepEqual(ep.active, got.active) {
		t.Fatalf("epoch mangled:\nwant %+v\ngot  %+v", ep, got)
	}
}

func TestEpochFrameEmpty(t *testing.T) {
	ep := ckptEpoch[float64]{active: []bool{false, false}}
	frame := appendEpochFrame[float64](f64Codec{}, nil, ep)
	got, err := decodeEpochFrame[float64](f64Codec{}, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.recs) != 0 || !reflect.DeepEqual(ep.active, got.active) {
		t.Fatalf("empty epoch mangled: %+v", got)
	}
}

func TestEpochFrameRejectsTruncation(t *testing.T) {
	ep := ckptEpoch[float64]{
		recs:   []changeRec[float64]{{id: 1, val: 2, winner: 1}},
		active: []bool{true, true},
	}
	frame := appendEpochFrame[float64](f64Codec{}, nil, ep)
	for cut := 1; cut < len(frame); cut++ {
		if _, err := decodeEpochFrame[float64](f64Codec{}, frame[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(frame))
		}
	}
}

func TestCheckpointRejectsOutOfOrderEpoch(t *testing.T) {
	g := graph.New()
	g.AddVertex(0, "")
	layout := partition.Build(g, partition.NewAssignment(g, 1))
	c := newCheckpoint[float64](VarSpec[float64]{}, layout, nil, nil)
	fold := newFoldState[float64](VarSpec[float64]{}, 1)
	if err := c.append(2, fold, nil); err == nil {
		t.Fatal("epoch 2 accepted before epoch 1")
	}
	if err := c.append(1, fold, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.append(1, fold, nil); err == nil {
		t.Fatal("epoch 1 accepted twice")
	}
}
