// Package engine is the core of the reproduction: GRAPE's parallel query
// engine. It executes PIE programs — a triple (PEval, IncEval, Assemble) of
// sequential algorithms — as a simultaneous fixpoint over graph fragments,
// following the BSP workflow of Fig. 1 of the paper:
//
//	superstep 1:  every worker runs PEval on its fragment and ships the
//	              changed update parameters of its border nodes to the
//	              coordinator;
//	superstep r+1: the coordinator folds incoming values with the program's
//	              aggregate function, routes each changed value to every
//	              fragment hosting the node, and the workers that received
//	              messages run IncEval treating them as updates;
//	termination:  when no update parameter changes anywhere, the coordinator
//	              pulls partial results and runs Assemble.
//
// Under a monotonic condition on the update parameters (a strict partial
// order the values descend along, declared via VarSpec.Less) this fixpoint is
// guaranteed to terminate with the correct answer as long as the plugged-in
// sequential algorithms are correct — the paper's Assurance Theorem. The
// engine can check the condition at run time (Options.CheckMonotonic).
package engine

import (
	"sort"

	"grape/internal/graph"
	"grape/internal/partition"
)

// VarSpec declares the update parameters of a PIE program: the variables
// attached to border nodes, their conflict-resolution aggregate, and
// (optionally) the partial order that makes the computation monotonic.
// This declaration is the only addition GRAPE requires on top of the
// sequential algorithms.
type VarSpec[V any] struct {
	// Default is the initial value of every node's variable (e.g. +∞ for
	// shortest-path distances).
	Default V
	// Agg resolves conflicts when a variable receives multiple values
	// (e.g. min). It must be commutative and associative.
	Agg func(old, new V) V
	// Eq reports whether two values are equal; it drives change detection
	// and hence termination.
	Eq func(a, b V) bool
	// Less, if non-nil, is a strict partial order that aggregated values
	// must descend along. Programs satisfying it enjoy the Assurance
	// Theorem; the engine verifies it when Options.CheckMonotonic is set.
	Less func(a, b V) bool
	// Size returns the serialized size of a value in bytes for traffic
	// accounting. If nil, 8 bytes is assumed.
	Size func(v V) int
	// Consume marks the variables as consumable message queues rather than
	// convergent state (used by the vertex-centric simulation adapter):
	// shipped values are deleted at the sender, folded across workers
	// without the coordinator's persistent state, and routed only to the
	// node's owner. Regular PIE programs leave this false.
	Consume bool
}

func (s VarSpec[V]) sizeOf(v V) int {
	if s.Size == nil {
		return 8
	}
	return s.Size(v)
}

// shipSize is the in-process traffic estimate for a batch of updates: an
// 8-byte node ID plus the declared Size per value. It is the fallback
// metering used by the bus and the async engine; wire transports charge
// len(AppendUpdates(codec, ...)) instead — the actual encoded length.
func shipSize[V any](spec VarSpec[V], ups []VarUpdate[V]) int {
	size := 0
	for _, u := range ups {
		size += 8 + spec.sizeOf(u.Val)
	}
	return size
}

// Program is a PIE program for a query class Q with update-parameter values
// of type V and results of type R.
type Program[Q, V, R any] interface {
	// Name identifies the program in reports and the registry.
	Name() string
	// Spec declares the update parameters.
	Spec() VarSpec[V]
	// PEval computes the partial answer Q(F_i) on the local fragment. It is
	// an ordinary sequential algorithm; it reads and writes node variables
	// through ctx.
	PEval(q Q, ctx *Context[V]) error
	// IncEval incrementally updates the partial answer after the engine
	// applied a batch of update-parameter changes; ctx.Updated() lists the
	// nodes whose variables changed. A bounded IncEval touches work
	// proportional to the changes, not to |F_i|.
	IncEval(q Q, ctx *Context[V]) error
	// Assemble combines the per-fragment partial answers into Q(G). It runs
	// on the coordinator after the fixpoint is reached.
	Assemble(q Q, ctxs []*Context[V]) (R, error)
}

// VarUpdate is one (node, value) pair of update-parameter traffic.
type VarUpdate[V any] struct {
	ID  graph.ID
	Val V
}

// Context is a worker's view of its fragment during a run: the node
// variables, change tracking for border nodes, work accounting, and
// scratch space for the program.
type Context[V any] struct {
	// Frag is the fragment this worker owns.
	Frag *partition.Fragment //grapevet:keep construction-time identity: the pooled scratch is bound to its fragment; reset clears run state, not the binding
	// State is program-private per-worker state that persists across
	// supersteps (e.g. CF's epoch counter and factor matrices).
	State any
	// Partial is the program's per-fragment partial answer when it is not
	// representable in the node variables (e.g. SubIso's match list).
	// Assemble reads it.
	Partial any

	spec VarSpec[V] //grapevet:keep construction-time identity: one Resident serves one program, so the spec never varies across pooled runs
	// Node variables live in dense slices indexed by the fragment graph's
	// dense vertex index — the fragment is fixed during a run, and the
	// session layer's vertex additions are absorbed by ensure(). vars is the
	// overflow path for IDs a program addresses without hosting them; it is
	// nil until first needed and such nodes are never border, so they never
	// ship.
	vals       []V
	has        []bool
	border     []bool
	changedAt  []bool  // border vars changed since last flush, by dense index
	changedIdx []int32 // dense indices of queued changes, insertion order
	vars       map[graph.ID]V
	flushBuf   []VarUpdate[V] // reused across supersteps; see flush
	updated    []graph.ID     // nodes changed by the last message application
	updatedIdx []int32        // dense indices of updated (overflow nodes omitted)
	work       int64
	active     bool // worker requests another superstep even without messages
}

func newContext[V any](f *partition.Fragment, spec VarSpec[V]) *Context[V] {
	nv := f.G.NumVertices()
	c := &Context[V]{
		Frag:      f,
		spec:      spec,
		vals:      make([]V, nv),
		has:       make([]bool, nv),
		border:    make([]bool, nv),
		changedAt: make([]bool, nv),
	}
	for _, i := range f.BorderIndices() {
		if i >= 0 {
			c.border[i] = true
		}
	}
	return c
}

// ensure grows the dense arrays to cover dense index i; the session layer
// appends vertices to the fragment graph after context creation.
func (c *Context[V]) ensure(i int32) {
	for int(i) >= len(c.vals) {
		var zero V
		c.vals = append(c.vals, zero)
		c.has = append(c.has, false)
		c.border = append(c.border, false)
		c.changedAt = append(c.changedAt, false)
	}
}

// Get returns the variable of id, or the declared default if it was never
// set.
func (c *Context[V]) Get(id graph.ID) V {
	if i, ok := c.Frag.G.Index(id); ok {
		if int(i) < len(c.vals) && c.has[i] {
			return c.vals[i]
		}
		return c.spec.Default
	}
	if v, ok := c.vars[id]; ok {
		return v
	}
	return c.spec.Default
}

// Set assigns v to id's variable. If the value changed and id is a border
// node, the change is queued for shipping at the end of the superstep.
func (c *Context[V]) Set(id graph.ID, v V) {
	i, ok := c.Frag.G.Index(id)
	if !ok {
		old, had := c.vars[id]
		if had && c.spec.Eq(old, v) {
			return
		}
		if !had && c.spec.Eq(c.spec.Default, v) {
			return
		}
		if c.vars == nil {
			c.vars = make(map[graph.ID]V)
		}
		c.vars[id] = v
		return
	}
	c.ensure(i)
	if c.has[i] && c.spec.Eq(c.vals[i], v) {
		return
	}
	if !c.has[i] && c.spec.Eq(c.spec.Default, v) {
		return
	}
	c.vals[i] = v
	c.has[i] = true
	if c.border[i] && !c.changedAt[i] {
		c.changedAt[i] = true
		c.changedIdx = append(c.changedIdx, i)
	}
}

// SetLocal assigns v to id's variable without queueing it for shipment.
// It is for initializations every replica derives identically from the
// replicated vertex data (e.g. Sim's label-candidate masks): shipping them
// would tell the other hosts nothing new. Subsequent Set calls that change
// the value still ship normally.
func (c *Context[V]) SetLocal(id graph.ID, v V) {
	if i, ok := c.Frag.G.Index(id); ok {
		c.ensure(i)
		c.vals[i] = v
		c.has[i] = true
		return
	}
	if c.vars == nil {
		c.vars = make(map[graph.ID]V)
	}
	c.vars[id] = v
}

// GetAt is Get addressed by the fragment graph's dense vertex index — the
// hash-free accessor kernels traversing a frozen graph use per edge hop.
func (c *Context[V]) GetAt(i int32) V {
	if int(i) < len(c.vals) && c.has[i] {
		return c.vals[i]
	}
	return c.spec.Default
}

// SetAt is Set addressed by dense vertex index.
func (c *Context[V]) SetAt(i int32, v V) {
	c.ensure(i)
	if c.has[i] && c.spec.Eq(c.vals[i], v) {
		return
	}
	if !c.has[i] && c.spec.Eq(c.spec.Default, v) {
		return
	}
	c.vals[i] = v
	c.has[i] = true
	if c.border[i] && !c.changedAt[i] {
		c.changedAt[i] = true
		c.changedIdx = append(c.changedIdx, i)
	}
}

// SetLocalAt is SetLocal addressed by dense vertex index.
func (c *Context[V]) SetLocalAt(i int32, v V) {
	c.ensure(i)
	c.vals[i] = v
	c.has[i] = true
}

// IsBorderAt is IsBorder addressed by dense vertex index.
func (c *Context[V]) IsBorderAt(i int32) bool {
	return int(i) < len(c.border) && c.border[i]
}

// IsInnerAt reports whether the vertex at dense index i is owned by this
// fragment, without hashing.
func (c *Context[V]) IsInnerAt(i int32) bool { return c.Frag.IsInnerAt(i) }

// IsBorder reports whether id carries an update parameter (it is an outer
// copy here or has copies on other fragments).
func (c *Context[V]) IsBorder(id graph.ID) bool {
	if i, ok := c.Frag.G.Index(id); ok && int(i) < len(c.border) {
		return c.border[i]
	}
	return false
}

// Updated returns the nodes whose variables were changed by the message
// batch that triggered the current IncEval call, in ascending ID order.
func (c *Context[V]) Updated() []graph.ID { return c.updated }

// UpdatedAt returns the dense indices of the changed nodes that live in the
// fragment graph (nodes a program addressed without hosting — the vars
// overflow — are omitted; they carry no edges here, so index-based IncEval
// kernels could not traverse from them anyway).
func (c *Context[V]) UpdatedAt() []int32 { return c.updatedIdx }

// VarsAt iterates the set variables of nodes in the fragment graph by dense
// index. Unlike Vars it skips the overflow map — overflow nodes are never
// inner nor border, so Assemble implementations filtering on ownership lose
// nothing. The callback must not mutate the context.
func (c *Context[V]) VarsAt(f func(i int32, v V)) {
	for i, ok := range c.has {
		if ok {
			f(int32(i), c.vals[i])
		}
	}
}

// AddWork charges n elementary work units (heap operation, edge relaxation,
// …) to this worker in the current superstep; the cost model converts work
// into simulated time.
func (c *Context[V]) AddWork(n int64) { c.work += n }

// KeepActive asks the engine to schedule this worker again next superstep
// even if no update parameters arrive. BSP-lockstep programs (the
// vertex-centric simulation adapter) use it when local computation remains;
// convergent PIE programs never need it. The flag resets before every
// PEval/IncEval invocation.
func (c *Context[V]) KeepActive() { c.active = true }

// Vars exposes a copy-free iteration over all set variables; Assemble
// implementations use it. The callback must not mutate the context.
func (c *Context[V]) Vars(f func(id graph.ID, v V)) {
	g := c.Frag.G
	for i, ok := range c.has {
		if ok {
			f(g.IDAt(int32(i)), c.vals[i])
		}
	}
	for id, v := range c.vars {
		f(id, v)
	}
}

// flush returns and clears the queued border changes, sorted by ID for
// deterministic aggregation at the coordinator. The returned slice is reused
// by the next flush; the coordinator consumes it within one collect, before
// this worker can be scheduled again.
func (c *Context[V]) flush() []VarUpdate[V] {
	if len(c.changedIdx) == 0 {
		return nil
	}
	g := c.Frag.G
	ups := c.flushBuf[:0]
	for _, i := range c.changedIdx {
		ups = append(ups, VarUpdate[V]{ID: g.IDAt(i), Val: c.vals[i]})
		c.changedAt[i] = false
		if c.spec.Consume {
			var zero V
			c.vals[i] = zero // shipped messages leave the sender
			c.has[i] = false
		}
	}
	c.changedIdx = c.changedIdx[:0]
	sortUpdates(ups)
	c.flushBuf = ups
	return ups
}

// apply folds a batch of routed updates into the variables using Agg and
// records which nodes actually changed; those become Updated() for IncEval.
// Applied values are not re-queued for shipping: the coordinator already
// knows them. Each node is resolved to its dense index once, not once per
// Get/Set as the public accessors would.
func (c *Context[V]) apply(ups []VarUpdate[V]) {
	c.updated = c.updated[:0]
	c.updatedIdx = c.updatedIdx[:0]
	for _, u := range ups {
		i, ok := c.Frag.G.Index(u.ID)
		if !ok {
			// overflow node (addressed but not hosted): fold into the map
			old, had := c.vars[u.ID]
			if !had {
				old = c.spec.Default
			}
			merged := c.spec.Agg(old, u.Val)
			if c.spec.Eq(old, merged) {
				continue
			}
			if c.vars == nil {
				c.vars = make(map[graph.ID]V)
			}
			c.vars[u.ID] = merged
			c.updated = append(c.updated, u.ID)
			continue
		}
		c.ensure(i)
		old := c.spec.Default
		if c.has[i] {
			old = c.vals[i]
		}
		merged := c.spec.Agg(old, u.Val)
		if c.spec.Eq(old, merged) {
			continue
		}
		c.vals[i] = merged
		c.has[i] = true
		c.updated = append(c.updated, u.ID)
		c.updatedIdx = append(c.updatedIdx, i)
	}
}

// addBorder marks id as carrying an update parameter from now on; the
// session layer calls it when graph updates enlarge the border.
func (c *Context[V]) addBorder(id graph.ID) {
	if i, ok := c.Frag.G.Index(id); ok {
		c.ensure(i)
		c.border[i] = true
	}
}

// touch re-queues id's current value for shipping even though it did not
// change — used when a node newly becomes border and its existing value must
// reach the new copy holders.
func (c *Context[V]) touch(id graph.ID) {
	i, ok := c.Frag.G.Index(id)
	if !ok || int(i) >= len(c.vals) {
		return
	}
	if c.has[i] && c.border[i] && !c.changedAt[i] {
		c.changedAt[i] = true
		c.changedIdx = append(c.changedIdx, i)
	}
}

// clearVar erases id's variable entirely — afterwards Get returns the
// declared default, exactly as if the node had never been set. A queued
// border change for the node is dropped too: shipping the zeroed slot would
// leak a meaningless value to the coordinator. The session layer's delete
// repair uses this to invalidate the nodes whose values a removed edge may
// have supported, before re-seeding the fixpoint.
func (c *Context[V]) clearVar(id graph.ID) {
	i, ok := c.Frag.G.Index(id)
	if !ok {
		delete(c.vars, id)
		return
	}
	if int(i) >= len(c.vals) {
		return
	}
	var zero V
	c.vals[i] = zero
	c.has[i] = false
	if c.changedAt[i] {
		c.changedAt[i] = false
		for k, j := range c.changedIdx {
			if j == i {
				c.changedIdx = append(c.changedIdx[:k], c.changedIdx[k+1:]...)
				break
			}
		}
	}
}

// setUpdated overrides the updated set; the session layer uses it to seed
// IncEval with locally-dirtied nodes after graph updates.
func (c *Context[V]) setUpdated(ids []graph.ID) {
	c.updated = ids
	c.updatedIdx = c.updatedIdx[:0]
	for _, id := range ids {
		if i, ok := c.Frag.G.Index(id); ok {
			c.updatedIdx = append(c.updatedIdx, i)
		}
	}
}

func (c *Context[V]) takeWork() int64 {
	w := c.work
	c.work = 0
	return w
}

func sortUpdates[V any](ups []VarUpdate[V]) {
	sort.Slice(ups, func(i, j int) bool { return ups[i].ID < ups[j].ID })
}
