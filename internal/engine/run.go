package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"grape/internal/balance"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/partition"
	"grape/internal/trace"
)

// Options configures one engine run.
type Options struct {
	// Workers is the number of fragments/workers n. Default 4.
	Workers int
	// Strategy picks the graph partitioner. Default partition.Hash.
	Strategy partition.Strategy
	// Layout, if non-nil, bypasses partitioning and runs on a prebuilt
	// layout (used by benches that partition once and query many times).
	Layout *partition.Layout
	// ExpandHops > 0 builds d-hop expanded fragments (data-shipping; used by
	// locality-bounded queries such as subgraph isomorphism).
	ExpandHops int
	// MaxSupersteps caps the fixpoint; exceeding it is an error. Default
	// 100000 — effectively "trust the monotonicity argument".
	MaxSupersteps int
	// CheckMonotonic makes the coordinator verify that every aggregated
	// update-parameter change descends along the program's declared partial
	// order, surfacing Assurance Theorem violations as errors.
	CheckMonotonic bool
	// Fragments, when larger than Workers, over-partitions the graph into
	// this many fragments and lets the Load Balancer pack them onto the
	// Workers with the LPT heuristic (workload estimated from vertex, edge
	// and border counts). Over-partitioning evens skewed graphs out — one
	// of the graph-level optimizations of Fig. 2's balancer tier.
	Fragments int
	// Transport, if non-nil, must be a wire transport (Transport.Wire() ==
	// true) and runs the fixpoint distributed: workers are separate
	// processes on the far side of the transport (see internal/transport),
	// the program must implement WireProgram, and byte metrics come from
	// actual encoded frame lengths. Nil selects the in-process bus, where
	// workers are goroutines and bytes are VarSpec.Size estimates; a
	// non-nil non-wire transport is rejected rather than silently ignored.
	Transport mpi.Transport
	// Recover enables superstep-checkpoint fault tolerance: the coordinator
	// snapshots each barrier's folded changes, classifies transport failures
	// (see internal/mpi), and on a worker-fatal error reassigns the dead
	// worker's fragments to survivors, replays them from the checkpoint, and
	// resumes the fixpoint — results stay byte-identical to a failure-free
	// run, and Stats.Recoveries records each revival. On a wire transport
	// the transport must implement mpi.Reassigner. Run-fatal errors (program
	// errors, cancellation, monotonicity violations) still fail the run.
	Recover bool
	// CheckpointStore, if non-nil (requires Recover), additionally streams
	// every checkpoint epoch out as an encoded frame — the hook a durable
	// store implements. The program must expose a wire codec (WireProgram's
	// WireCodec) so epochs can be encoded; bus runs without one reject the
	// store rather than silently skipping it.
	CheckpointStore CheckpointStore
	// Fault, if non-nil, wraps the run's data transport — the seam fault
	// injection uses (mpi.NewFaultTransport) in tests and benches. Control
	// traffic that must not be lost (worker release on the in-process bus)
	// bypasses the wrapper.
	Fault func(mpi.Transport) mpi.Transport
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Strategy == nil {
		o.Strategy = partition.Hash{}
	}
	if o.MaxSupersteps == 0 {
		o.MaxSupersteps = 100000
	}
	return o
}

// ErrNotMonotonic is returned (wrapped) when CheckMonotonic detects an
// update parameter moving against the program's declared partial order.
var ErrNotMonotonic = errors.New("update parameter violated the declared partial order")

// ErrSuperstepLimit is returned (wrapped) when the fixpoint fails to
// stabilize within Options.MaxSupersteps.
var ErrSuperstepLimit = errors.New("superstep limit exceeded")

// control commands sent from the coordinator to workers.
type cmdKind int

const (
	cmdPEval cmdKind = iota
	cmdIncEval
	cmdLocalInc // session resume: IncEval seeded with locally-dirtied nodes
	cmdStop
	cmdAssemble // wire transports only: ship the encoded partial answer
	cmdAbort    // wire transports only: run cancelled, discard and exit
	cmdAdopt    // recovery: adopt a dead worker's fragment, replay it from the checkpoint
)

type workerCmd[V any] struct {
	kind    cmdKind
	updates []VarUpdate[V]
	dirty   []graph.ID
	adopt   *adoptCmd[V]
}

// adoptCmd carries a fragment revival: the checkpoint-derived command log to
// replay, and the superstep whose reply the barrier is still owed (0 =
// none). On the in-process bus the coordinator constructs the fresh context
// and the adopting goroutine swaps it in; over a wire the fragment crosses
// encoded (frag) and the worker process builds the context itself.
type adoptCmd[V any] struct {
	ctx   *Context[V] // bus: the fresh context to adopt
	frag  []byte      // wire: the encoded fragment
	steps []replayStep[V]
	owe   int
}

type workerReply[V any] struct {
	changes   []VarUpdate[V]
	work      int64
	active    bool // worker wants another superstep regardless of messages
	err       error
	computeNS int64 // PEval/IncEval wall time, for the flight recorder
	applyNS   int64 // inbound-update apply wall time
}

// Run executes prog on g with query q: it partitions g, spawns one goroutine
// per worker plus a coordinator loop on the calling goroutine, runs the
// PEval/IncEval fixpoint of Section 2.2, and returns Assemble's result along
// with the run's measurements.
//
// The context bounds the whole run: cancellation (or a deadline) is observed
// at every superstep barrier, the fold is abandoned, workers are released,
// and Run returns ctx's error — an abandoned query stops consuming worker
// CPU within one superstep instead of burning cores until its fixpoint
// converges. Pass context.Background() for an unbounded run.
func Run[Q, V, R any](ctx context.Context, g *graph.Graph, prog Program[Q, V, R], q Q, opts Options) (R, *metrics.Stats, error) {
	var zero R
	opts = opts.withDefaults()
	layout := opts.Layout
	if layout == nil {
		var err error
		layout, err = BuildLayout(g, opts)
		if err != nil {
			return zero, nil, err
		}
	}
	return RunOnLayout(ctx, layout, prog, q, opts)
}

// BuildLayout is the partition-once step of a resident service: it cuts g per
// opts (Workers, Strategy, Fragments for over-partitioning, ExpandHops for
// data-shipping expansion) and returns the frozen layout, which many
// subsequent runs — concurrent ones included, see Resident — can share.
func BuildLayout(g *graph.Graph, opts Options) (*partition.Layout, error) {
	opts = opts.withDefaults()
	asg, err := partitionFor(g, opts)
	if err != nil {
		return nil, err
	}
	if opts.ExpandHops > 0 {
		return partition.BuildExpanded(g, asg, opts.ExpandHops), nil
	}
	return partition.Build(g, asg), nil
}

// partitionFor computes the worker-level assignment, optionally via the
// Load Balancer: over-partition into Options.Fragments and LPT-pack onto
// Options.Workers.
func partitionFor(g *graph.Graph, opts Options) (*partition.Assignment, error) {
	if opts.Fragments <= opts.Workers {
		return opts.Strategy.Partition(g, opts.Workers)
	}
	fine, err := opts.Strategy.Partition(g, opts.Fragments)
	if err != nil {
		return nil, err
	}
	coarse, _, err := balance.Rebalance(partition.Build(g, fine), opts.Workers, balance.DefaultWeights())
	return coarse, err
}

// RunOnLayout is Run on a prebuilt layout. With a wire transport in
// Options.Transport the fixpoint drives remote worker processes (see
// wire.go); otherwise workers are goroutines on an in-process bus. The
// context is honored as in Run.
func RunOnLayout[Q, V, R any](ctx context.Context, layout *partition.Layout, prog Program[Q, V, R], q Q, opts Options) (R, *metrics.Stats, error) {
	var zero R
	opts = opts.withDefaults()
	if opts.Transport != nil {
		if opts.Transport.Wire() {
			return runWire(ctx, layout, prog, q, opts)
		}
		// Refuse rather than silently run on a hidden internal bus.
		return zero, nil, errors.New("engine: custom non-wire transports are not supported; leave Options.Transport nil for the in-process bus")
	}
	n := len(layout.Fragments)
	spec := prog.Spec()
	ctxs := make([]*Context[V], n)
	for i, f := range layout.Fragments {
		ctxs[i] = newContext(f, spec)
	}
	return runFixpoint(ctx, layout, prog, q, opts, ctxs, newFoldState(spec, n))
}

// runFixpoint is the engine loop proper, shared by RunOnLayout (fresh
// contexts and fold state per run) and Resident.Run (both pooled across
// runs): spawn one worker goroutine per fragment on an in-process bus, run
// the PEval/IncEval fixpoint, Assemble.
//
// Cancellation: ctx is checked at every superstep barrier — while waiting
// for worker replies (the context-aware bus receive) and before scheduling
// the next superstep. On cancellation the coordinator abandons the fold,
// releases every worker via cmdStop, and waits for them to exit before
// returning, so pooled contexts handed back to Resident's scratch pool are
// never still being written by a straggler goroutine.
func runFixpoint[Q, V, R any](ctx context.Context, layout *partition.Layout, prog Program[Q, V, R], q Q, opts Options, ctxs []*Context[V], fold *foldState[V]) (R, *metrics.Stats, error) {
	var zero R
	n := len(layout.Fragments)
	spec := prog.Spec()

	var ckptCodec Codec[V]
	if opts.CheckpointStore != nil {
		if !opts.Recover {
			return zero, nil, fmt.Errorf("engine: %s: Options.CheckpointStore requires Options.Recover", prog.Name())
		}
		wc, ok := any(prog).(interface{ WireCodec() Codec[V] })
		if !ok {
			return zero, nil, fmt.Errorf("engine: %s: Options.CheckpointStore needs a wire codec to encode epochs: %w", prog.Name(), ErrNoWireSupport)
		}
		ckptCodec = wc.WireCodec()
	}

	start := time.Now()
	stats := &metrics.Stats{Engine: "grape/" + prog.Name(), Workers: n}

	// Flight recorder + structured logging ride the context; both are nil
	// (and free) unless the caller attached them.
	rec := trace.FromContext(ctx)
	rec.BeginRun(prog.Name(), "bus", n)
	defer rec.EndRun()
	lg := trace.LoggerFrom(ctx)
	if lg != nil {
		lg = lg.With("run", rec.ID(), "class", prog.Name(), "substrate", "bus")
		lg.Debug("run started", "workers", n)
	}

	bus := mpi.NewBus(n, 4*n+16)
	// The data path runs through the (optionally fault-wrapped) transport;
	// worker release below stays on the raw bus, so an unconsumed planned
	// fault can never swallow a stop command and hang the teardown.
	var tr mpi.Transport = bus
	if opts.Fault != nil {
		tr = opts.Fault(bus)
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(w int) {
			defer wg.Done()
			workerLoop(ctx, bus, w, prog, q, ctxs[w], spec)
		}(i)
	}
	stop := func() {
		for i := 0; i < n; i++ {
			bus.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Payload: workerCmd[V]{kind: cmdStop}})
		}
		wg.Wait()
	}

	// Coordinator state: the globally best-known value of every border
	// variable, folded with the program's aggregate and sharded across
	// worker-count goroutines (see fold.go). Routing only values that
	// improve the global state is what makes the fixpoint terminate and
	// communication proportional to real change. (Consumable queue
	// variables bypass this state: they are folded per superstep and
	// delivered to the owner, not converged.)
	stillActive := make(map[int]bool)
	replies := make([]*workerReply[V], n)
	sched := make([]bool, n)

	// Recovery on the in-process bus: the dead worker's goroutine is not
	// actually gone — only the coordinator's view of it faulted — and it is
	// provably idle (its command was dropped, or its reply already left), so
	// revival hands the *same* goroutine a fresh context plus the replay log
	// via cmdAdopt. Channel delivery orders the context handoff, and the
	// coordinator's ctxs[frag] write is safe because the goroutine only ever
	// touches the context it was handed.
	var rc *recoverer[V]
	if opts.Recover {
		rc = &recoverer[V]{ckpt: newCheckpoint(spec, layout, opts.CheckpointStore, ckptCodec), sched: sched}
		rc.revive = func(frag, through, owe int) (int, error) {
			if r, ok := tr.(mpi.Reassigner); ok {
				if err := r.Reassign(frag, frag); err != nil {
					return 0, err
				}
			}
			nc := newContext(layout.Fragments[frag], spec)
			ctxs[frag] = nc
			bus.Send(mpi.Envelope{From: mpi.Coordinator, To: frag, Payload: workerCmd[V]{kind: cmdAdopt, adopt: &adoptCmd[V]{ctx: nc, steps: rc.ckpt.replayFor(frag, through), owe: owe}}})
			return frag, nil
		}
	}

	collect := func(expect, step int) ([][]VarUpdate[V], int, error) {
		return collectStep[V](ctx, tr, nil, fold, rc, replies, stillActive, stats, layout, rec, expect, step, opts.CheckMonotonic)
	}

	// Fragment construction that replicated data (d-hop expansion) is
	// communication of this run: charge it before superstep 1.
	if layout.ReplicationBytes > 0 {
		bus.AddTraffic(int64(n), layout.ReplicationBytes)
	}

	// Superstep 1: PEval everywhere.
	rec.BeginStep(1, n)
	for i := 0; i < n; i++ {
		sched[i] = true
		tr.Send(mpi.Envelope{From: mpi.Coordinator, To: i, Step: 1, Payload: workerCmd[V]{kind: cmdPEval}})
	}
	stats.Supersteps = 1
	route, scheduled, err := collect(n, 1)
	if err != nil {
		stop()
		return zero, stats, err
	}
	if layout.ReplicationBytes > 0 && len(stats.BytesPerStep) > 0 {
		stats.BytesPerStep[0] += layout.ReplicationBytes
	}

	// Supersteps 2..: IncEval on fragments that received messages (or asked
	// to stay active), until no update parameter changes anywhere and every
	// worker is quiescent — the simultaneous fixpoint.
	active := 0
	for scheduled > 0 || len(stillActive) > 0 {
		if err := ctx.Err(); err != nil {
			stop()
			return zero, stats, cancelled(prog.Name(), stats.Supersteps, err)
		}
		if stats.Supersteps >= opts.MaxSupersteps {
			stop()
			return zero, stats, fmt.Errorf("engine: %s after %d supersteps: %w", prog.Name(), stats.Supersteps, ErrSuperstepLimit)
		}
		stats.Supersteps++
		active = 0
		for w := 0; w < n; w++ {
			if len(route[w]) > 0 || stillActive[w] {
				active++
			}
		}
		rec.BeginStep(stats.Supersteps, active)
		for w := 0; w < n; w++ {
			sched[w] = false
			ups := route[w]
			if len(ups) == 0 && !stillActive[w] {
				continue
			}
			sched[w] = true
			tr.Send(mpi.Envelope{From: mpi.Coordinator, To: w, Step: stats.Supersteps, Payload: workerCmd[V]{kind: cmdIncEval, updates: ups}, Size: shipSize(spec, ups)})
		}
		route, scheduled, err = collect(active, stats.Supersteps)
		if err != nil {
			stop()
			return zero, stats, err
		}
	}

	stop()
	res, err := prog.Assemble(q, ctxs)
	stats.Messages = bus.Messages()
	stats.Bytes = bus.Bytes()
	stats.WallTime = time.Since(start)
	if lg != nil {
		lg.Info("run complete", "supersteps", stats.Supersteps, "wall_ms", stats.WallTime.Seconds()*1e3, "recoveries", len(stats.Recoveries))
	}
	if err != nil {
		return zero, stats, fmt.Errorf("engine: assemble: %w", err)
	}
	return res, stats, nil
}

// cancelled wraps a context error with run provenance so callers can both
// errors.Is(err, context.Canceled/DeadlineExceeded) and see where the run
// stopped. Engine labels like "grape/sssp" are normalized to the bare
// program name, so the message is the same whether the cancellation landed
// at the barrier wait (collectStep, which has only the stats label) or at
// the pre-superstep check (which has the program).
func cancelled(name string, step int, err error) error {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Errorf("engine: %s cancelled at superstep %d: %w", name, step, err)
}

func workerLoop[Q, V, R any](runCtx context.Context, bus *mpi.Bus, w int, prog Program[Q, V, R], q Q, ctx *Context[V], spec VarSpec[V]) {
	for {
		env, err := bus.Recv(runCtx, w)
		if err != nil {
			// run cancelled while idle at the barrier; the coordinator stops
			// waiting on this worker through the same context
			return
		}
		cmd := env.Payload.(workerCmd[V])
		switch cmd.kind {
		case cmdStop:
			return
		case cmdAdopt:
			// Revival after an injected fault: discard the poisoned context,
			// adopt the fresh one and replay it from the checkpoint. Only the
			// owed superstep's reply (or a replay error) goes back — every
			// earlier reply was already folded by the coordinator.
			ad := cmd.adopt
			ctx = ad.ctx
			rerr := replayFragment(prog, q, ctx, ad.steps, ad.owe)
			if ad.owe > 0 || rerr != nil {
				reply(bus, w, ad.owe, ctx, spec, 0, 0, rerr)
			}
		case cmdPEval:
			ctx.active = false
			t0 := time.Now()
			err := prog.PEval(q, ctx)
			reply(bus, w, env.Step, ctx, spec, time.Since(t0).Nanoseconds(), 0, err)
		case cmdIncEval:
			wasActive := ctx.active
			ctx.active = false
			t0 := time.Now()
			ctx.apply(cmd.updates)
			applyNS := time.Since(t0).Nanoseconds()
			var err error
			t1 := time.Now()
			if len(ctx.Updated()) > 0 || wasActive {
				err = prog.IncEval(q, ctx)
			}
			reply(bus, w, env.Step, ctx, spec, time.Since(t1).Nanoseconds(), applyNS, err)
		case cmdLocalInc:
			ctx.active = false
			ctx.setUpdated(cmd.dirty)
			var err error
			t0 := time.Now()
			if len(cmd.dirty) > 0 {
				err = prog.IncEval(q, ctx)
			}
			reply(bus, w, env.Step, ctx, spec, time.Since(t0).Nanoseconds(), 0, err)
		}
	}
}

func reply[V any](bus *mpi.Bus, w, step int, ctx *Context[V], spec VarSpec[V], computeNS, applyNS int64, err error) {
	changes := ctx.flush()
	bus.Send(mpi.Envelope{From: w, To: mpi.Coordinator, Step: step, Payload: workerReply[V]{changes: changes, work: ctx.takeWork(), active: ctx.active, err: err, computeNS: computeNS, applyNS: applyNS}, Size: shipSize(spec, changes)})
}
