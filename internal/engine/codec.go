package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"grape/internal/graph"
)

// A Codec gives a program's update-parameter values a wire format, so runs
// can cross process boundaries and traffic can be metered from real encoded
// bytes instead of the VarSpec.Size estimate. AppendVal and DecodeVal must
// round-trip exactly (Decode(Encode(x)) == x under the program's Eq), and
// DecodeVal must reject malformed input with an error rather than panic —
// frames arrive from the network.
type Codec[V any] interface {
	// AppendVal appends the encoding of v to buf and returns the extended
	// buffer.
	AppendVal(buf []byte, v V) []byte
	// DecodeVal decodes one value from the front of data, returning the
	// value and the number of bytes consumed.
	DecodeVal(data []byte) (V, int, error)
}

// Update batches are the unit of traffic metering: the engine charges
// len(AppendUpdates(...)) as the Size of every data message on a wire
// transport, so "bytes" in metrics.Stats is exactly the encoded length of
// the update-parameter payloads (framing overhead excluded, mirroring the
// in-process accounting which also counts payloads only).

// AppendUpdates appends the encoding of a batch of update-parameter changes:
// uvarint count, then per update a uvarint node ID followed by the
// codec-encoded value.
func AppendUpdates[V any](c Codec[V], buf []byte, ups []VarUpdate[V]) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ups)))
	for _, u := range ups {
		buf = binary.AppendUvarint(buf, uint64(u.ID))
		buf = c.AppendVal(buf, u.Val)
	}
	return buf
}

// DecodeUpdates decodes a batch encoded by AppendUpdates from the front of
// data, returning the updates and the number of bytes consumed.
func DecodeUpdates[V any](c Codec[V], data []byte) ([]VarUpdate[V], int, error) {
	pos := 0
	n, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return nil, 0, err
	}
	var ups []VarUpdate[V]
	for i := uint64(0); i < n; i++ {
		id, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return nil, 0, err
		}
		v, used, err := c.DecodeVal(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += used
		ups = append(ups, VarUpdate[V]{ID: graph.ID(id), Val: v})
	}
	return ups, pos, nil
}

// Edge-update frames carry graph mutations (session update batches) across
// process boundaries — the socket substrate's half of incremental serving.
// The format is value-independent, so one implementation covers every
// program: uvarint count, then per update a uvarint From, uvarint To, the
// weight as 8 fixed little-endian bytes (floats do not varint well), a
// length-prefixed label, and a delete flag byte (0 = insert, 1 = delete).

// AppendEdgeUpdates appends the encoding of a session update batch to buf.
func AppendEdgeUpdates(buf []byte, ups []EdgeUpdate) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ups)))
	for _, u := range ups {
		buf = binary.AppendUvarint(buf, uint64(u.From))
		buf = binary.AppendUvarint(buf, uint64(u.To))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.W))
		buf = binary.AppendUvarint(buf, uint64(len(u.Label)))
		buf = append(buf, u.Label...)
		if u.Del {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// DecodeEdgeUpdates decodes a batch encoded by AppendEdgeUpdates from the
// front of data, returning the updates and the number of bytes consumed.
func DecodeEdgeUpdates(data []byte) ([]EdgeUpdate, int, error) {
	pos := 0
	n, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return nil, 0, err
	}
	var ups []EdgeUpdate
	for i := uint64(0); i < n; i++ {
		var u EdgeUpdate
		from, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return nil, 0, err
		}
		to, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return nil, 0, err
		}
		u.From, u.To = graph.ID(from), graph.ID(to)
		if len(data)-pos < 8 {
			return nil, 0, errors.New("engine: truncated edge-update weight")
		}
		u.W = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
		if u.Label, err = graph.ReadString(data, &pos); err != nil {
			return nil, 0, err
		}
		if pos >= len(data) {
			return nil, 0, errors.New("engine: truncated edge-update delete flag")
		}
		switch data[pos] {
		case 0:
			u.Del = false
		case 1:
			u.Del = true
		default:
			return nil, 0, fmt.Errorf("engine: bad edge-update delete flag %d", data[pos])
		}
		pos++
		ups = append(ups, u)
	}
	return ups, pos, nil
}

// Worker-command frame: kind byte, the update batch (IncEval), and the dirty
// ID list (session LocalInc; unused over the wire but kept for symmetry).
// encodeCmd also returns the encoded length of the update batch alone — the
// metered data size of the message.

func encodeCmd[V any](c Codec[V], cmd workerCmd[V]) (frame []byte, dataLen int) {
	frame = append(frame, byte(cmd.kind))
	mark := len(frame)
	frame = AppendUpdates(c, frame, cmd.updates)
	dataLen = len(frame) - mark
	frame = binary.AppendUvarint(frame, uint64(len(cmd.dirty)))
	for _, id := range cmd.dirty {
		frame = binary.AppendUvarint(frame, uint64(id))
	}
	if len(cmd.updates) == 0 {
		dataLen = 0 // a bare count is control, not data
	}
	return frame, dataLen
}

func decodeCmd[V any](c Codec[V], frame []byte) (workerCmd[V], error) {
	var cmd workerCmd[V]
	if len(frame) == 0 {
		return cmd, errors.New("engine: empty command frame")
	}
	k := cmdKind(frame[0])
	if k < cmdPEval || k > cmdAdopt {
		return cmd, fmt.Errorf("engine: unknown command kind %d", frame[0])
	}
	cmd.kind = k
	if k == cmdAdopt {
		ad, err := decodeAdopt(c, frame[1:])
		if err != nil {
			return cmd, err
		}
		cmd.adopt = ad
		return cmd, nil
	}
	pos := 1
	ups, used, err := DecodeUpdates(c, frame[pos:])
	if err != nil {
		return cmd, err
	}
	pos += used
	cmd.updates = ups
	n, err := graph.ReadUvarint(frame, &pos)
	if err != nil {
		return cmd, err
	}
	for i := uint64(0); i < n; i++ {
		id, err := graph.ReadUvarint(frame, &pos)
		if err != nil {
			return cmd, err
		}
		cmd.dirty = append(cmd.dirty, graph.ID(id))
	}
	return cmd, nil
}

// Adopt frame (coordinator → worker, recovery): kind byte, length-prefixed
// encoded fragment, uvarint owed superstep, uvarint replay-step count, then
// per replay step a uvarint superstep number and its update batch. Adopt
// frames are control traffic (metered size 0): the checkpoint records they
// carry are copies of updates the run already paid for.

func encodeAdopt[V any](c Codec[V], fragBlob []byte, steps []replayStep[V], owe int) []byte {
	frame := []byte{byte(cmdAdopt)}
	frame = binary.AppendUvarint(frame, uint64(len(fragBlob)))
	frame = append(frame, fragBlob...)
	frame = binary.AppendUvarint(frame, uint64(owe))
	frame = binary.AppendUvarint(frame, uint64(len(steps)))
	for _, st := range steps {
		frame = binary.AppendUvarint(frame, uint64(st.step))
		frame = AppendUpdates(c, frame, st.updates)
	}
	return frame
}

// decodeAdopt decodes the body of an adopt frame (the kind byte already
// consumed).
func decodeAdopt[V any](c Codec[V], body []byte) (*adoptCmd[V], error) {
	ad := &adoptCmd[V]{}
	pos := 0
	fn, err := graph.ReadUvarint(body, &pos)
	if err != nil {
		return nil, err
	}
	if uint64(len(body)-pos) < fn {
		return nil, errors.New("engine: truncated adopt frame fragment")
	}
	ad.frag = body[pos : pos+int(fn)]
	pos += int(fn)
	owe, err := graph.ReadUvarint(body, &pos)
	if err != nil {
		return nil, err
	}
	ad.owe = int(owe)
	count, err := graph.ReadUvarint(body, &pos)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		step, err := graph.ReadUvarint(body, &pos)
		if err != nil {
			return nil, err
		}
		ups, used, err := DecodeUpdates(c, body[pos:])
		if err != nil {
			return nil, err
		}
		pos += used
		ad.steps = append(ad.steps, replayStep[V]{step: int(step), updates: ups})
	}
	return ad, nil
}

// Worker-reply frame: the flushed change batch, the superstep's work units,
// the keep-active flag, the error string ("" = nil), and — since protocol
// v4 — the worker's compute/apply nanoseconds for the flight recorder.
// encodeReply also returns the encoded length of the change batch — the
// metered data size; the timing tail is framing overhead and never counts
// toward comm bytes.

func encodeReply[V any](c Codec[V], rep workerReply[V]) (frame []byte, dataLen int) {
	frame = AppendUpdates(c, frame, rep.changes)
	if len(rep.changes) > 0 {
		dataLen = len(frame)
	}
	frame = binary.AppendVarint(frame, rep.work)
	if rep.active {
		frame = append(frame, 1)
	} else {
		frame = append(frame, 0)
	}
	msg := ""
	if rep.err != nil {
		msg = rep.err.Error()
		if msg == "" {
			msg = "worker error"
		}
	}
	frame = binary.AppendUvarint(frame, uint64(len(msg)))
	frame = append(frame, msg...)
	frame = binary.AppendUvarint(frame, uint64(rep.computeNS))
	frame = binary.AppendUvarint(frame, uint64(rep.applyNS))
	return frame, dataLen
}

func decodeReply[V any](c Codec[V], frame []byte) (workerReply[V], error) {
	var rep workerReply[V]
	changes, pos, err := DecodeUpdates(c, frame)
	if err != nil {
		return rep, err
	}
	rep.changes = changes
	work, n := binary.Varint(frame[pos:])
	if n <= 0 {
		return rep, errors.New("engine: bad work count in reply frame")
	}
	pos += n
	rep.work = work
	if pos >= len(frame) {
		return rep, errors.New("engine: truncated reply frame")
	}
	rep.active = frame[pos] != 0
	pos++
	msg, err := graph.ReadString(frame, &pos)
	if err != nil {
		return rep, err
	}
	if msg != "" {
		rep.err = errors.New(msg)
	}
	// The timing tail is optional: a v3 worker's reply simply ends here, and
	// the coordinator records zero timings for it (handshake compat).
	if pos < len(frame) {
		compute, err := graph.ReadUvarint(frame, &pos)
		if err != nil {
			return rep, err
		}
		apply, err := graph.ReadUvarint(frame, &pos)
		if err != nil {
			return rep, err
		}
		rep.computeNS = int64(compute)
		rep.applyNS = int64(apply)
	}
	return rep, nil
}

// Partial-result frame (worker → coordinator after the fixpoint): status
// byte, then either the program's encoded partial answer or an error string.

func encodePartialFrame(blob []byte, err error) []byte {
	if err != nil {
		frame := []byte{0}
		msg := err.Error()
		frame = binary.AppendUvarint(frame, uint64(len(msg)))
		return append(frame, msg...)
	}
	frame := []byte{1}
	frame = binary.AppendUvarint(frame, uint64(len(blob)))
	return append(frame, blob...)
}

func decodePartialFrame(frame []byte) ([]byte, error) {
	if len(frame) == 0 {
		return nil, errors.New("engine: empty partial-result frame")
	}
	pos := 1
	n, err := graph.ReadUvarint(frame, &pos)
	if err != nil {
		return nil, err
	}
	if uint64(len(frame)-pos) < n {
		return nil, errors.New("engine: truncated partial-result frame")
	}
	body := frame[pos : pos+int(n)]
	if frame[0] == 0 {
		return nil, errors.New(string(body))
	}
	return body, nil
}

// Setup frame (coordinator → worker, first frame of a run): program name,
// program-encoded query, the run deadline as microseconds since the Unix
// epoch (0 = unbounded; this is how a coordinator-side context deadline
// propagates into the worker process), and the worker's fragment encoding.

func encodeSetup(name string, query []byte, deadlineMicros int64, fragment []byte) []byte {
	var frame []byte
	frame = binary.AppendUvarint(frame, uint64(len(name)))
	frame = append(frame, name...)
	frame = binary.AppendUvarint(frame, uint64(len(query)))
	frame = append(frame, query...)
	frame = binary.AppendUvarint(frame, uint64(deadlineMicros))
	return append(frame, fragment...)
}

func decodeSetup(frame []byte) (name string, query []byte, deadlineMicros int64, fragment []byte, err error) {
	pos := 0
	if name, err = graph.ReadString(frame, &pos); err != nil {
		return "", nil, 0, nil, err
	}
	n, err := graph.ReadUvarint(frame, &pos)
	if err != nil {
		return "", nil, 0, nil, err
	}
	if uint64(len(frame)-pos) < n {
		return "", nil, 0, nil, errors.New("engine: truncated setup frame")
	}
	query = frame[pos : pos+int(n)]
	pos += int(n)
	dl, err := graph.ReadUvarint(frame, &pos)
	if err != nil {
		return "", nil, 0, nil, err
	}
	return name, query, int64(dl), frame[pos:], nil
}
