package engine

import (
	"context"
	"fmt"
	"sync"

	"grape/internal/metrics"
	"grape/internal/partition"
)

// Resident executes one program over one prebuilt layout many times — the
// serving half of the paper's Fig. 2 system, where a graph is loaded and
// partitioned once and then answers a stream of user queries. The layout is
// never re-partitioned and its fragments are never written: every Run gets
// its own Contexts, so concurrent Runs over the same Resident (or over
// distinct Residents sharing the layout) are safe — frozen graphs are
// race-tested for concurrent reads, and the fragments' dense caches are
// finalized at build time.
//
// Per-run scratch (the n worker contexts with their dense variable arrays,
// and the coordinator's fold state) is recycled through a sync.Pool: a query
// service answering many small queries would otherwise spend its time
// reallocating O(|V|) arrays per request.
type Resident[Q, V, R any] struct {
	layout *partition.Layout
	prog   Program[Q, V, R]
	opts   Options
	spec   VarSpec[V]
	pool   sync.Pool // *runScratch[V]
}

type runScratch[V any] struct {
	ctxs []*Context[V]
	fold *foldState[V]
}

// NewResident validates the layout for resident use (frozen fragments, no
// wire transport — resident runs share in-process fragments) and returns
// the reusable runner. Options.Workers and Options.Layout are implied by the
// layout and ignored.
func NewResident[Q, V, R any](layout *partition.Layout, prog Program[Q, V, R], opts Options) (*Resident[Q, V, R], error) {
	opts = opts.withDefaults()
	if opts.Transport != nil {
		return nil, fmt.Errorf("engine: resident runs use the in-process bus (wire workers cannot share a resident layout)")
	}
	for _, f := range layout.Fragments {
		if !f.G.Frozen() {
			return nil, fmt.Errorf("engine: resident layout fragment %d is not frozen (concurrent reads need the CSR form)", f.Index)
		}
	}
	opts.Workers = len(layout.Fragments)
	opts.Layout = layout
	r := &Resident[Q, V, R]{layout: layout, prog: prog, opts: opts, spec: prog.Spec()}
	r.pool.New = func() any {
		ctxs := make([]*Context[V], len(layout.Fragments))
		for i, f := range layout.Fragments {
			ctxs[i] = newContext(f, r.spec)
		}
		return &runScratch[V]{ctxs: ctxs, fold: newFoldState(r.spec, len(ctxs))}
	}
	return r, nil
}

// Run executes one query over the resident layout. Safe for concurrent use.
// A cancelled ctx aborts the fixpoint at the next superstep barrier; the
// run's scratch still goes back to the pool — runFixpoint waits for every
// worker goroutine to exit before returning, and scratch is reset on the
// next Get, so a cancelled run can never leak half-written state into a
// later one.
func (r *Resident[Q, V, R]) Run(ctx context.Context, q Q) (R, *metrics.Stats, error) {
	sc := r.pool.Get().(*runScratch[V])
	for _, c := range sc.ctxs {
		c.reset()
	}
	sc.fold.reset()
	res, stats, err := runFixpoint(ctx, r.layout, r.prog, q, r.opts, sc.ctxs, sc.fold)
	r.pool.Put(sc)
	return res, stats, err
}

// reset returns a pooled context to its just-constructed state so the next
// resident run starts from the program's declared defaults. The fragment is
// shared and untouched; only this run's variable arrays are cleared.
func (c *Context[V]) reset() {
	nv := c.Frag.G.NumVertices()
	if len(c.vals) < nv {
		// the fragment grew (a session mutated it) since this scratch was
		// built; resize like newContext would
		c.vals = make([]V, nv)
		c.has = make([]bool, nv)
		c.border = make([]bool, nv)
		c.changedAt = make([]bool, nv)
	} else {
		clear(c.vals)
		clear(c.has)
		clear(c.border)
		clear(c.changedAt)
	}
	for _, i := range c.Frag.BorderIndices() {
		if i >= 0 {
			c.border[i] = true
		}
	}
	c.changedIdx = c.changedIdx[:0]
	c.vars = nil
	c.flushBuf = c.flushBuf[:0]
	c.updated = c.updated[:0]
	c.updatedIdx = c.updatedIdx[:0]
	c.work = 0
	c.active = false
	c.State = nil
	c.Partial = nil
}

// reset clears a pooled fold state for the next run, keeping shard and
// buffer capacity.
func (f *foldState[V]) reset() {
	for s := 0; s < f.shards; s++ {
		clear(f.global[s])
		clear(f.pos[s])
		f.changed[s] = f.changed[s][:0]
		f.errs[s] = nil
	}
	for i := range f.buckets {
		f.buckets[i] = f.buckets[i][:0]
	}
	for i := range f.route {
		f.route[i] = f.route[i][:0]
	}
}
