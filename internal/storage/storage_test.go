package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
)

func tempStore(t *testing.T) *Store {
	t.Helper()
	return &Store{Root: t.TempDir()}
}

func TestGraphRoundTrip(t *testing.T) {
	s := tempStore(t)
	g := gen.SocialCommerce(gen.SocialCommerceConfig{People: 200, Products: 10, Follows: 3, AdoptP: 0.5, Seed: 2})
	if err := s.SaveGraph("weibo", g); err != nil {
		t.Fatal(err)
	}
	r, err := s.LoadGraph("weibo")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumVertices() != g.NumVertices() || r.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			r.NumVertices(), r.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for _, v := range g.Vertices() {
		if r.Label(v) != g.Label(v) {
			t.Fatalf("vertex %d label lost", v)
		}
		if len(r.Props(v)) != len(g.Props(v)) {
			t.Fatalf("vertex %d props lost", v)
		}
		if len(r.Out(v)) != len(g.Out(v)) {
			t.Fatalf("vertex %d adjacency differs", v)
		}
	}
}

func TestGraphShardsIntoParts(t *testing.T) {
	s := tempStore(t)
	s.PartLines = 100 // force many DFS chunks
	g := gen.Random(200, 800, 3)
	if err := s.SaveGraph("chunked", g); err != nil {
		t.Fatal(err)
	}
	parts, err := filepath.Glob(filepath.Join(s.Root, "chunked", "part-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 5 {
		t.Fatalf("expected several part files, got %d", len(parts))
	}
	r, err := s.LoadGraph("chunked")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != g.NumEdges() {
		t.Fatalf("edges lost across chunks: %d vs %d", r.NumEdges(), g.NumEdges())
	}
}

func TestUndirectedGraphRoundTrip(t *testing.T) {
	s := tempStore(t)
	g := gen.Ratings(gen.RatingsConfig{Users: 30, Items: 10, RatingsPerUser: 5, Factors: 2, Noise: 0.1, Seed: 1})
	if err := s.SaveGraph("ratings", g); err != nil {
		t.Fatal(err)
	}
	r, err := s.LoadGraph("ratings")
	if err != nil {
		t.Fatal(err)
	}
	if r.Directed() {
		t.Fatal("directedness lost")
	}
	if r.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count: %d vs %d", r.NumEdges(), g.NumEdges())
	}
}

func TestLoadGraphMissing(t *testing.T) {
	s := tempStore(t)
	if _, err := s.LoadGraph("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	s := tempStore(t)
	g := gen.Random(150, 450, 7)
	asg, err := partition.Fennel{}.Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveAssignment("p6", asg); err != nil {
		t.Fatal(err)
	}
	r, err := s.LoadAssignment("p6", g)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 6 {
		t.Fatalf("workers lost: %d", r.N)
	}
	for _, v := range g.Vertices() {
		if r.Owner(v) != asg.Owner(v) {
			t.Fatalf("owner of %d changed", v)
		}
	}
}

func TestLoadAssignmentRejectsGarbage(t *testing.T) {
	s := tempStore(t)
	g := gen.Random(10, 20, 1)
	path := filepath.Join(s.Root, "bad.asg")
	if err := os.MkdirAll(s.Root, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("0 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadAssignment("bad", g); err == nil {
		t.Fatal("missing header should fail")
	}
	if err := os.WriteFile(path, []byte("# workers=2\nnot numbers\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadAssignment("bad", g); err == nil {
		t.Fatal("garbage line should fail")
	}
}

func TestSavedGraphValidates(t *testing.T) {
	s := tempStore(t)
	g := graph.New()
	g.AddVertex(1, "x")
	g.SetProps(1, []string{"kw"})
	g.AddEdge(1, 2, 2.5)
	if err := s.SaveGraph("tiny", g); err != nil {
		t.Fatal(err)
	}
	r, err := s.LoadGraph("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Label(1) != "x" || len(r.Props(1)) != 1 {
		t.Fatal("metadata lost")
	}
}

func TestListGraphs(t *testing.T) {
	s := tempStore(t)
	if names, err := s.ListGraphs(); err != nil || len(names) != 0 {
		t.Fatalf("empty store: %v, %v", names, err)
	}
	g := graph.New()
	g.AddVertex(1, "x")
	g.AddEdge(1, 2, 1)
	for _, name := range []string{"beta", "alpha"} {
		if err := s.SaveGraph(name, g); err != nil {
			t.Fatal(err)
		}
	}
	// a stray directory without a meta file is not a graph
	if err := os.MkdirAll(filepath.Join(s.Root, "junk"), 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := s.ListGraphs()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "beta"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("ListGraphs = %v, want %v", names, want)
	}
	// a store rooted at a missing directory lists nothing
	missing := &Store{Root: filepath.Join(s.Root, "nope")}
	if names, err := missing.ListGraphs(); err != nil || len(names) != 0 {
		t.Fatalf("missing root: %v, %v", names, err)
	}
}

// TestPartCorruptionDetected flips bytes in and truncates a checksummed part
// file: every kind of damage must fail the load loudly, not produce a
// silently wrong graph.
func TestPartCorruptionDetected(t *testing.T) {
	s := tempStore(t)
	g := gen.Random(80, 300, 4)
	if err := s.SaveGraph("frag", g); err != nil {
		t.Fatal(err)
	}
	part := filepath.Join(s.Root, "frag", "part-0000")
	pristine, err := os.ReadFile(part)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(part, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// sanity: pristine loads
	if _, err := s.LoadGraph("frag"); err != nil {
		t.Fatal(err)
	}
	// a flipped byte anywhere in the payload
	for _, off := range []int{0, len(pristine) / 3, len(pristine) / 2} {
		data := append([]byte(nil), pristine...)
		data[off] ^= 0x01
		if err := os.WriteFile(part, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadGraph("frag"); err == nil {
			t.Fatalf("flipped byte at %d not detected", off)
		}
	}
	// a truncated tail (footer gone entirely, or half a footer left)
	for _, cut := range []int{len(pristine) - 1, len(pristine) - 10, len(pristine) / 2} {
		restore()
		if err := os.Truncate(part, int64(cut)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadGraph("frag"); err == nil {
			t.Fatalf("truncation to %d bytes not detected", cut)
		}
	}
	// a lost record with a rewritten-but-stale footer (count mismatch)
	restore()
	lines := bytes.SplitAfter(pristine, []byte("\n"))
	if err := os.WriteFile(part, bytes.Join(append(lines[1:len(lines)-2], lines[len(lines)-2]), nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadGraph("frag"); err == nil {
		t.Fatal("dropped record not detected")
	}
	restore()
	if _, err := s.LoadGraph("frag"); err != nil {
		t.Fatalf("pristine part fails after restore: %v", err)
	}
}

// TestLegacyStoreWithoutChecksums loads a store written before part footers
// existed: no "checksums=1" in meta, no footer lines, and loading must still
// work (the footer is strictly additive).
func TestLegacyStoreWithoutChecksums(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "old")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	part := "v 0 a\nv 1 b\ne 0 1 2.5\ne 1 0 1\n"
	if err := os.WriteFile(filepath.Join(dir, "part-0000"), []byte(part), 0o644); err != nil {
		t.Fatal(err)
	}
	meta := "directed=true parts=1 vertices=2 edges=2\n"
	if err := os.WriteFile(filepath.Join(dir, "meta"), []byte(meta), 0o644); err != nil {
		t.Fatal(err)
	}
	s := &Store{Root: root}
	g, err := s.LoadGraph("old")
	if err != nil {
		t.Fatalf("legacy store without footers must load: %v", err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 2 {
		t.Fatalf("legacy load lost data: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
}
