// Package storage is the reproduction's stand-in for the paper's storage
// layer: graph data managed in a DFS (distributed file system), accessible to
// the query engine, Index Manager, Partition Manager and Load Balancer. A
// Store is a directory tree; graphs are sharded into part files (as a DFS
// would chunk them) and partitions persist as assignment files so a "cluster
// restart" can reload fragments without re-partitioning.
package storage

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"grape/internal/graph"
	"grape/internal/partition"
)

// Store roots a simulated DFS at a directory.
type Store struct {
	// Root is the base directory; it is created on first write.
	Root string
	// PartLines caps the number of records per part file (DFS chunk size).
	// Zero means 1 << 16.
	PartLines int
}

func (s *Store) partLines() int {
	if s.PartLines <= 0 {
		return 1 << 16
	}
	return s.PartLines
}

// SaveGraph shards g under Root/name/: a "meta" file with the graph kind and
// part count, and part-NNNN files in the graph text format.
func (s *Store) SaveGraph(name string, g *graph.Graph) error {
	dir := filepath.Join(s.Root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var records []string
	for _, id := range g.Vertices() {
		if g.Label(id) == "" && len(g.Props(id)) == 0 {
			continue
		}
		rec := fmt.Sprintf("v %d %s", id, dashIfEmpty(g.Label(id)))
		if ps := g.Props(id); len(ps) > 0 {
			rec += " " + strings.Join(ps, " ")
		}
		records = append(records, rec)
	}
	for _, u := range g.Vertices() {
		for _, e := range g.Out(u) {
			if !g.Directed() && u > e.To {
				continue
			}
			if e.Label != "" {
				records = append(records, fmt.Sprintf("e %d %d %g %s", u, e.To, e.W, e.Label))
			} else {
				records = append(records, fmt.Sprintf("e %d %d %g", u, e.To, e.W))
			}
		}
	}
	per := s.partLines()
	parts := (len(records) + per - 1) / per
	if parts == 0 {
		parts = 1
	}
	for p := 0; p < parts; p++ {
		lo := p * per
		hi := lo + per
		if hi > len(records) {
			hi = len(records)
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("part-%04d", p)))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for _, rec := range records[lo:hi] {
			fmt.Fprintln(w, rec)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	meta := fmt.Sprintf("directed=%v parts=%d vertices=%d edges=%d\n", g.Directed(), parts, g.NumVertices(), g.NumEdges())
	return os.WriteFile(filepath.Join(dir, "meta"), []byte(meta), 0o644)
}

// LoadGraph reads a graph sharded by SaveGraph.
func (s *Store) LoadGraph(name string) (*graph.Graph, error) {
	dir := filepath.Join(s.Root, name)
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta"))
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", name, err)
	}
	meta := parseMeta(string(metaBytes))
	directed := meta["directed"] == "true"
	parts, err := strconv.Atoi(meta["parts"])
	if err != nil {
		return nil, fmt.Errorf("storage: %s: bad parts in meta: %v", name, err)
	}
	var g *graph.Graph
	if directed {
		g = graph.New()
	} else {
		g = graph.NewUndirected()
	}
	for p := 0; p < parts; p++ {
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("part-%04d", p)))
		if err != nil {
			return nil, err
		}
		pg, err := graph.ReadText(f, directed)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("storage: %s part %d: %w", name, p, err)
		}
		merge(g, pg)
	}
	// cross-part edges may reference vertices declared in other parts; all
	// parts are merged now, so validate the result.
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("storage: %s: %w", name, err)
	}
	return g, nil
}

// ListGraphs returns the names of the graphs saved under Root (directories
// carrying a meta file), sorted. A missing root is an empty store.
func (s *Store) ListGraphs() ([]string, error) {
	entries, err := os.ReadDir(s.Root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.Root, e.Name(), "meta")); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// SaveAssignment persists a partition assignment as "v owner" lines.
func (s *Store) SaveAssignment(name string, a *partition.Assignment) error {
	if err := os.MkdirAll(s.Root, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(s.Root, name+".asg"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# workers=%d\n", a.N)
	for _, id := range a.G.SortedVertices() {
		fmt.Fprintf(w, "%d %d\n", id, a.Owner(id))
	}
	return w.Flush()
}

// LoadAssignment reads an assignment saved by SaveAssignment; g must be the
// same graph it was computed for.
func (s *Store) LoadAssignment(name string, g *graph.Graph) (*partition.Assignment, error) {
	f, err := os.Open(filepath.Join(s.Root, name+".asg"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var a *partition.Assignment
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			n, err := strconv.Atoi(strings.TrimPrefix(line, "# workers="))
			if err != nil {
				return nil, fmt.Errorf("storage: bad assignment header %q", line)
			}
			a = partition.NewAssignment(g, n)
			continue
		}
		if a == nil {
			return nil, fmt.Errorf("storage: assignment missing header")
		}
		var id, owner int64
		if _, err := fmt.Sscanf(line, "%d %d", &id, &owner); err != nil {
			return nil, fmt.Errorf("storage: bad assignment line %q", line)
		}
		a.SetOwner(graph.ID(id), int(owner))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if a == nil {
		return nil, fmt.Errorf("storage: empty assignment file")
	}
	return a, a.Validate()
}

func merge(dst, src *graph.Graph) {
	for _, id := range src.Vertices() {
		dst.AddVertex(id, src.Label(id))
		if ps := src.Props(id); len(ps) > 0 {
			dst.SetProps(id, append([]string(nil), ps...))
		}
	}
	for _, u := range src.Vertices() {
		for _, e := range src.Out(u) {
			if !src.Directed() && u > e.To {
				continue
			}
			dst.AddLabeledEdge(u, e.To, e.W, e.Label)
		}
	}
}

func parseMeta(s string) map[string]string {
	out := map[string]string{}
	for _, tok := range strings.Fields(s) {
		if i := strings.IndexByte(tok, '='); i >= 0 {
			out[tok[:i]] = tok[i+1:]
		}
	}
	return out
}

func dashIfEmpty(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
