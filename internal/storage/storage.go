// Package storage is the reproduction's stand-in for the paper's storage
// layer: graph data managed in a DFS (distributed file system), accessible to
// the query engine, Index Manager, Partition Manager and Load Balancer. A
// Store is a directory tree; graphs are sharded into part files (as a DFS
// would chunk them) and partitions persist as assignment files so a "cluster
// restart" can reload fragments without re-partitioning.
package storage

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"grape/internal/graph"
	"grape/internal/partition"
)

// Part files end with an integrity footer — a comment line so every existing
// reader (graph.ReadText skips "#" lines) stays compatible:
//
//	# grape-part records=<n> crc32c=<hex>
//
// crc32c covers every byte of the part before the footer line. Stores written
// before footers existed lack the "checksums=1" meta key and load without
// verification; new stores fail loudly on any corrupted or truncated part.
const partFooterPrefix = "# grape-part "

var partCRC = crc32.MakeTable(crc32.Castagnoli)

// Store roots a simulated DFS at a directory.
type Store struct {
	// Root is the base directory; it is created on first write.
	Root string
	// PartLines caps the number of records per part file (DFS chunk size).
	// Zero means 1 << 16.
	PartLines int
}

func (s *Store) partLines() int {
	if s.PartLines <= 0 {
		return 1 << 16
	}
	return s.PartLines
}

// SaveGraph shards g under Root/name/: a "meta" file with the graph kind and
// part count, and part-NNNN files in the graph text format.
func (s *Store) SaveGraph(name string, g *graph.Graph) error {
	dir := filepath.Join(s.Root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var records []string
	for _, id := range g.Vertices() {
		if g.Label(id) == "" && len(g.Props(id)) == 0 {
			continue
		}
		rec := fmt.Sprintf("v %d %s", id, dashIfEmpty(g.Label(id)))
		if ps := g.Props(id); len(ps) > 0 {
			rec += " " + strings.Join(ps, " ")
		}
		records = append(records, rec)
	}
	for _, u := range g.Vertices() {
		for _, e := range g.Out(u) {
			if !g.Directed() && u > e.To {
				continue
			}
			if e.Label != "" {
				records = append(records, fmt.Sprintf("e %d %d %g %s", u, e.To, e.W, e.Label))
			} else {
				records = append(records, fmt.Sprintf("e %d %d %g", u, e.To, e.W))
			}
		}
	}
	per := s.partLines()
	parts := (len(records) + per - 1) / per
	if parts == 0 {
		parts = 1
	}
	for p := 0; p < parts; p++ {
		lo := p * per
		hi := lo + per
		if hi > len(records) {
			hi = len(records)
		}
		var buf bytes.Buffer
		for _, rec := range records[lo:hi] {
			fmt.Fprintln(&buf, rec)
		}
		fmt.Fprintf(&buf, "%srecords=%d crc32c=%08x\n", partFooterPrefix, hi-lo, crc32.Checksum(buf.Bytes(), partCRC))
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("part-%04d", p)), buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	meta := fmt.Sprintf("directed=%v parts=%d vertices=%d edges=%d checksums=1\n", g.Directed(), parts, g.NumVertices(), g.NumEdges())
	return os.WriteFile(filepath.Join(dir, "meta"), []byte(meta), 0o644)
}

// LoadGraph reads a graph sharded by SaveGraph.
func (s *Store) LoadGraph(name string) (*graph.Graph, error) {
	dir := filepath.Join(s.Root, name)
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta"))
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", name, err)
	}
	meta := parseMeta(string(metaBytes))
	directed := meta["directed"] == "true"
	parts, err := strconv.Atoi(meta["parts"])
	if err != nil {
		return nil, fmt.Errorf("storage: %s: bad parts in meta: %v", name, err)
	}
	var g *graph.Graph
	if directed {
		g = graph.New()
	} else {
		g = graph.NewUndirected()
	}
	checksums := meta["checksums"] == "1"
	for p := 0; p < parts; p++ {
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("part-%04d", p)))
		if err != nil {
			return nil, err
		}
		if checksums {
			if err := verifyPartFooter(data); err != nil {
				return nil, fmt.Errorf("storage: %s part %d: %w", name, p, err)
			}
		}
		pg, err := graph.ReadText(bytes.NewReader(data), directed)
		if err != nil {
			return nil, fmt.Errorf("storage: %s part %d: %w", name, p, err)
		}
		merge(g, pg)
	}
	// cross-part edges may reference vertices declared in other parts; all
	// parts are merged now, so validate the result.
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("storage: %s: %w", name, err)
	}
	return g, nil
}

// ListGraphs returns the names of the graphs saved under Root (directories
// carrying a meta file), sorted. A missing root is an empty store.
func (s *Store) ListGraphs() ([]string, error) {
	entries, err := os.ReadDir(s.Root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.Root, e.Name(), "meta")); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// SaveAssignment persists a partition assignment as "v owner" lines.
func (s *Store) SaveAssignment(name string, a *partition.Assignment) error {
	if err := os.MkdirAll(s.Root, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(s.Root, name+".asg"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# workers=%d\n", a.N)
	for _, id := range a.G.SortedVertices() {
		fmt.Fprintf(w, "%d %d\n", id, a.Owner(id))
	}
	return w.Flush()
}

// LoadAssignment reads an assignment saved by SaveAssignment; g must be the
// same graph it was computed for.
func (s *Store) LoadAssignment(name string, g *graph.Graph) (*partition.Assignment, error) {
	f, err := os.Open(filepath.Join(s.Root, name+".asg"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var a *partition.Assignment
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			n, err := strconv.Atoi(strings.TrimPrefix(line, "# workers="))
			if err != nil {
				return nil, fmt.Errorf("storage: bad assignment header %q", line)
			}
			a = partition.NewAssignment(g, n)
			continue
		}
		if a == nil {
			return nil, fmt.Errorf("storage: assignment missing header")
		}
		var id, owner int64
		if _, err := fmt.Sscanf(line, "%d %d", &id, &owner); err != nil {
			return nil, fmt.Errorf("storage: bad assignment line %q", line)
		}
		a.SetOwner(graph.ID(id), int(owner))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if a == nil {
		return nil, fmt.Errorf("storage: empty assignment file")
	}
	return a, a.Validate()
}

// verifyPartFooter checks a part file's trailing integrity footer: the last
// line must be the footer, its crc32c must match the preceding bytes, and the
// record count must match the payload's line count. Any mismatch — a flipped
// byte, a truncated tail, a missing footer — is an error.
func verifyPartFooter(data []byte) error {
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return fmt.Errorf("truncated: no footer line (store written with checksums)")
	}
	cut := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	footer := strings.TrimSpace(string(data[cut : len(data)-1]))
	if !strings.HasPrefix(footer, partFooterPrefix) {
		return fmt.Errorf("truncated: last line %q is not an integrity footer", footer)
	}
	var records int
	var sum uint32
	if _, err := fmt.Sscanf(footer[len(partFooterPrefix):], "records=%d crc32c=%08x", &records, &sum); err != nil {
		return fmt.Errorf("bad integrity footer %q: %v", footer, err)
	}
	payload := data[:cut]
	if got := crc32.Checksum(payload, partCRC); got != sum {
		return fmt.Errorf("checksum mismatch: crc32c %08x, footer says %08x", got, sum)
	}
	if got := bytes.Count(payload, []byte("\n")); got != records {
		return fmt.Errorf("record count mismatch: %d lines, footer says %d", got, records)
	}
	return nil
}

func merge(dst, src *graph.Graph) {
	for _, id := range src.Vertices() {
		dst.AddVertex(id, src.Label(id))
		if ps := src.Props(id); len(ps) > 0 {
			dst.SetProps(id, append([]string(nil), ps...))
		}
	}
	for _, u := range src.Vertices() {
		for _, e := range src.Out(u) {
			if !src.Directed() && u > e.To {
				continue
			}
			dst.AddLabeledEdge(u, e.To, e.W, e.Label)
		}
	}
}

func parseMeta(s string) map[string]string {
	out := map[string]string{}
	for _, tok := range strings.Fields(s) {
		if i := strings.IndexByte(tok, '='); i >= 0 {
			out[tok[:i]] = tok[i+1:]
		}
	}
	return out
}

func dashIfEmpty(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
