// Package mpi is the reproduction's stand-in for the paper's MPI Controller
// (MPICH2 in the C++ prototype): a message-passing substrate between one
// coordinator and n workers. Workers are goroutines; channels replace network
// sockets. All cross-party traffic flows through a Bus, which meters message
// and byte counts — the communication columns of Table 1 are measurements of
// what crosses this bus.
package mpi

import (
	"fmt"
	"sync/atomic"
)

// Coordinator is the party index of the coordinator P0. Workers are 0..n-1.
const Coordinator = -1

// Envelope is a routed message. Payload is engine-defined; Size is the
// payload's serialized size in bytes as reported by the sender (IDs are 8
// bytes, values sized by the program's Size function).
type Envelope struct {
	From    int
	To      int
	Step    int // superstep the message belongs to
	Payload any
	Size    int
}

// Bus connects a coordinator with n workers. Each party has an unbounded
// inbox drained by Recv. A Bus is single-use per engine run.
type Bus struct {
	n        int
	toWorker []chan Envelope
	toCoord  chan Envelope

	msgs  atomic.Int64
	bytes atomic.Int64
}

// NewBus returns a Bus for n workers. buf sets per-inbox channel capacity;
// engines size it so that a full superstep of traffic never blocks.
func NewBus(n, buf int) *Bus {
	b := &Bus{n: n, toWorker: make([]chan Envelope, n), toCoord: make(chan Envelope, buf)}
	for i := range b.toWorker {
		b.toWorker[i] = make(chan Envelope, buf)
	}
	return b
}

// Workers returns the number of workers on the bus.
func (b *Bus) Workers() int { return b.n }

// Send routes e to e.To (Coordinator or a worker index) and meters it.
// Coordinator-to-worker control messages with Size 0 are not counted as
// communication; the paper's numbers measure data shipped, not BSP barriers.
func (b *Bus) Send(e Envelope) {
	if e.Size > 0 {
		b.msgs.Add(1)
		b.bytes.Add(int64(e.Size))
	}
	if e.To == Coordinator {
		b.toCoord <- e
		return
	}
	if e.To < 0 || e.To >= b.n {
		panic(fmt.Sprintf("mpi: send to unknown party %d", e.To))
	}
	b.toWorker[e.To] <- e
}

// Recv blocks until a message for the given party arrives.
func (b *Bus) Recv(party int) Envelope {
	if party == Coordinator {
		return <-b.toCoord
	}
	return <-b.toWorker[party]
}

// Messages returns the number of data messages sent so far.
func (b *Bus) Messages() int64 { return b.msgs.Load() }

// Bytes returns the number of data bytes sent so far.
func (b *Bus) Bytes() int64 { return b.bytes.Load() }

// AddTraffic meters communication that bypasses Send, e.g. engines that
// account batched per-vertex messages analytically.
func (b *Bus) AddTraffic(msgs, bytes int64) {
	b.msgs.Add(msgs)
	b.bytes.Add(bytes)
}
