// Package mpi defines the message-passing substrate between one coordinator
// and n workers — the reproduction's stand-in for the paper's MPI Controller
// (MPICH2 in the C++ prototype). All cross-party traffic flows through a
// Transport, which meters message and byte counts; the communication columns
// of Table 1 are measurements of what crosses it.
//
// Two implementations exist:
//
//   - Bus (this package): the in-process transport. Workers are goroutines,
//     channels replace network sockets, and payloads travel by reference, so
//     byte counts are estimates derived from each program's VarSpec.Size.
//   - transport.Coordinator / transport.WorkerConn (package
//     internal/transport): the wire transport. Workers are separate OS
//     processes connected over TCP or Unix sockets; payloads travel as
//     length-prefixed binary frames encoded by each program's wire codec, so
//     byte counts are the actual encoded lengths.
//
// The engine chooses how to fill an Envelope based on Transport.Wire: wire
// transports require Frame (encoded bytes), the in-process bus carries
// Payload (a Go value).
//
// Receives are context-aware: a party blocked at a superstep barrier
// unblocks the moment its run's context is cancelled or its deadline
// expires, which is how the engine sheds abandoned runs instead of letting
// them converge on dead air (see "Cancellation & deadlines" in
// ARCHITECTURE.md).
package mpi

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Coordinator is the party index of the coordinator P0. Workers are 0..n-1.
const Coordinator = -1

// Envelope is a routed message. Exactly one of Payload and Frame carries the
// content: Payload is an engine-defined Go value (in-process bus), Frame is
// its wire encoding (socket transports). Size is the payload's data size in
// bytes — the serialized-size estimate from the program's Size function on
// the in-process bus, the actual encoded length of the data section on a
// wire transport.
type Envelope struct {
	From    int
	To      int
	Step    int // superstep the message belongs to
	Payload any
	Frame   []byte
	Size    int
}

// Transport connects a coordinator with n workers and meters the data
// traffic crossing it. The engine drives one run over one Transport; both
// the coordinator loop and (for the in-process Bus) the worker goroutines
// speak through it.
type Transport interface {
	// Workers returns the number of workers on the transport.
	Workers() int
	// Send routes e to e.To (Coordinator or a worker index) and meters it
	// when e.Size > 0. Control messages with Size 0 are not counted as
	// communication; the paper's numbers measure data shipped, not BSP
	// barriers.
	Send(e Envelope)
	// Recv blocks until a message for the given party arrives or ctx is
	// done, in which case it returns ctx's error — cancellation and deadline
	// expiry unblock a party waiting at a superstep barrier. Wire transports
	// serve only party == Coordinator (remote workers hold their own
	// WorkerConn); on a broken worker link they deliver an Envelope with a
	// nil Frame whose Payload is the error.
	Recv(ctx context.Context, party int) (Envelope, error)
	// Messages returns the number of data messages sent so far.
	Messages() int64
	// Bytes returns the number of data bytes sent so far.
	Bytes() int64
	// AddTraffic meters communication that bypasses Send, e.g. engines that
	// account batched per-vertex messages analytically, or the d-hop
	// fragment replication charged before superstep 1.
	AddTraffic(msgs, bytes int64)
	// Wire reports whether payloads cross a process boundary. When true the
	// engine must fill Envelope.Frame with the program's wire encoding and
	// Size with its measured data length; when false Payload travels by
	// reference and Size falls back to the VarSpec.Size estimate.
	Wire() bool
}

// Bus is the in-process Transport: it connects a coordinator with n worker
// goroutines over channels. Each party has an unbounded inbox drained by
// Recv. A Bus is single-use per engine run.
type Bus struct {
	n        int
	toWorker []chan Envelope
	toCoord  chan Envelope

	msgs  atomic.Int64
	bytes atomic.Int64
}

var _ Transport = (*Bus)(nil)

// NewBus returns a Bus for n workers. buf sets per-inbox channel capacity;
// engines size it so that a full superstep of traffic never blocks.
func NewBus(n, buf int) *Bus {
	b := &Bus{n: n, toWorker: make([]chan Envelope, n), toCoord: make(chan Envelope, buf)}
	for i := range b.toWorker {
		b.toWorker[i] = make(chan Envelope, buf)
	}
	return b
}

// Workers returns the number of workers on the bus.
func (b *Bus) Workers() int { return b.n }

// Send routes e to e.To (Coordinator or a worker index) and meters it.
// Coordinator-to-worker control messages with Size 0 are not counted as
// communication; the paper's numbers measure data shipped, not BSP barriers.
func (b *Bus) Send(e Envelope) {
	if e.Size > 0 {
		b.msgs.Add(1)
		b.bytes.Add(int64(e.Size))
	}
	if e.To == Coordinator {
		b.toCoord <- e
		return
	}
	if e.To < 0 || e.To >= b.n {
		panic(fmt.Sprintf("mpi: send to unknown party %d", e.To))
	}
	b.toWorker[e.To] <- e
}

// Recv blocks until a message for the given party arrives or ctx is done.
// A context that can never be done (context.Background) reports a nil done
// channel, and that case takes a plain channel receive — the uncancellable
// hot path is exactly what it was before cancellation existed.
func (b *Bus) Recv(ctx context.Context, party int) (Envelope, error) {
	ch := b.toCoord
	if party != Coordinator {
		ch = b.toWorker[party]
	}
	done := ctx.Done()
	if done == nil {
		return <-ch, nil
	}
	select {
	case e := <-ch:
		return e, nil
	case <-done:
		return Envelope{}, ctx.Err()
	}
}

// Messages returns the number of data messages sent so far.
func (b *Bus) Messages() int64 { return b.msgs.Load() }

// Bytes returns the number of data bytes sent so far.
func (b *Bus) Bytes() int64 { return b.bytes.Load() }

// AddTraffic meters communication that bypasses Send, e.g. engines that
// account batched per-vertex messages analytically.
func (b *Bus) AddTraffic(msgs, bytes int64) {
	b.msgs.Add(msgs)
	b.bytes.Add(bytes)
}

// Wire reports that Bus payloads stay in-process.
func (b *Bus) Wire() bool { return false }
