package mpi

import (
	"errors"
	"fmt"
)

// Failure classification. Every error surfaced by a transport's recv/send
// paths is wrapped as one of two kinds, because the engine's recovery
// machinery reacts to them in opposite ways:
//
//   - worker-fatal: one worker (or the link to it) is gone — a broken socket,
//     a liveness timeout, an undecodable frame, an injected fault. The run
//     can survive: the coordinator reassigns the dead worker's fragments to
//     survivors and replays them from the last superstep checkpoint.
//   - run-fatal: the run itself is broken — a program error, a violated
//     monotonicity check, a cancelled context, a coordinator-side failure.
//     No amount of reassignment helps; the run fails.
//
// The grapevet errclass analyzer enforces that recv/send paths in
// internal/transport and the engine's wire layer return only classified
// errors.

// ErrInjectedFault is the cause recorded by FaultTransport when it severs a
// worker: tests and benches can errors.Is for it to distinguish injected
// failures from real ones.
var ErrInjectedFault = errors.New("injected fault")

// WorkerFatalError marks an error that killed one worker but is survivable
// by the run: the coordinator may reassign the worker's fragments and resume
// from the last checkpoint.
type WorkerFatalError struct {
	Worker int
	Err    error
}

func (e *WorkerFatalError) Error() string {
	return fmt.Sprintf("worker %d failed: %v", e.Worker, e.Err)
}

func (e *WorkerFatalError) Unwrap() error { return e.Err }

// WorkerFatal classifies err as fatal to worker w. A nil err stays nil; an
// already worker-fatal err is returned unchanged (re-wrapping would shadow
// the original worker index).
func WorkerFatal(w int, err error) error {
	if err == nil {
		return nil
	}
	var wf *WorkerFatalError
	if errors.As(err, &wf) {
		return err
	}
	return &WorkerFatalError{Worker: w, Err: err}
}

// WorkerFatalOf reports whether err is classified worker-fatal, and for
// which worker.
func WorkerFatalOf(err error) (int, bool) {
	var wf *WorkerFatalError
	if errors.As(err, &wf) {
		return wf.Worker, true
	}
	return 0, false
}

// RunFatalError marks an error no reassignment can survive: the run fails.
type RunFatalError struct {
	Err error
}

func (e *RunFatalError) Error() string { return e.Err.Error() }

func (e *RunFatalError) Unwrap() error { return e.Err }

// RunFatal classifies err as fatal to the whole run. A nil err stays nil; a
// worker-fatal err is escalated (the RunFatal wrapper wins — callers that
// deliberately escalate mean it).
func RunFatal(err error) error {
	if err == nil {
		return nil
	}
	var rf *RunFatalError
	if errors.As(err, &rf) {
		return err
	}
	return &RunFatalError{Err: err}
}

// Reassigner is the optional transport capability the engine's recovery path
// needs: re-home fragment frag onto the link of worker host, so commands
// addressed to frag reach its new owner. Wire transports implement it by
// re-routing frames; wrappers (FaultTransport) use it to stand down a
// consumed fault and delegate inward.
type Reassigner interface {
	Reassign(frag, host int) error
}
