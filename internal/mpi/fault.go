package mpi

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultTransport wraps a Transport and injects worker failures at exact
// superstep boundaries, so recovery tests and benches are deterministic:
// "worker w dies at superstep k" is a plan, not a race. Three shapes cover
// the interesting interleavings of a real crash:
//
//   - Drop: the command frame to the worker is lost and the worker is
//     declared dead — the worker died *before* computing the superstep.
//   - Sever: the worker's reply frame is eaten and the worker is declared
//     dead — it died *after* computing, with its reply in flight.
//   - Delay: the worker's reply is held for Delay before delivery — a
//     straggler, not a death; nothing is injected and no recovery fires.
//
// Each fault fires at most once, on the first matching frame with
// Step >= the fault's Step. Control frames (Step 0: setup, stop, abort,
// assemble, adopt) never match, so recovery traffic and run teardown flow
// even through a transport with unconsumed faults. A dropped command is
// still metered — from the coordinator's perspective it was sent — keeping
// the byte accounting of a faulted run identical to a failure-free one.
//
// The wrapper only intercepts the coordinator's side (Send to workers, Recv
// from workers); on the in-process bus the worker goroutines keep their
// direct bus handles, mirroring how a wire fault hits the coordinator's view
// of the link, not the remote process's code.
type FaultTransport struct {
	inner Transport

	mu       sync.Mutex
	faults   []Fault
	fired    int
	injected []Envelope
}

// FaultKind selects the failure shape of a Fault.
type FaultKind int

const (
	// Drop loses the command to the worker and declares the worker dead.
	Drop FaultKind = iota
	// Sever eats the worker's reply and declares the worker dead.
	Sever
	// Delay holds the worker's reply for Fault.Delay, then delivers it.
	Delay
)

func (k FaultKind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Sever:
		return "sever"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("faultkind(%d)", int(k))
}

// Fault is one planned failure: Kind strikes Worker at the first superstep
// >= Step. Step must be >= 1 (superstep 1 is PEval); control frames carry
// step 0 and are never faulted.
type Fault struct {
	Step   int
	Worker int
	Kind   FaultKind
	Delay  time.Duration
}

// NewFaultTransport wraps inner with the given fault plan.
func NewFaultTransport(inner Transport, faults ...Fault) *FaultTransport {
	for _, f := range faults {
		if f.Step < 1 {
			panic(fmt.Sprintf("mpi: fault step %d: faults strike supersteps, which start at 1", f.Step))
		}
	}
	return &FaultTransport{inner: inner, faults: faults}
}

// Plan derives a deterministic single-fault plan from a seed: kind, victim
// and superstep are pseudo-random but reproducible, which is what the fault
// fuzz harness feeds the engine.
func Plan(seed int64, workers, maxStep int) []Fault {
	rng := rand.New(rand.NewSource(seed))
	f := Fault{
		Step:   1 + rng.Intn(maxStep),
		Worker: rng.Intn(workers),
		Kind:   FaultKind(rng.Intn(3)),
	}
	if f.Kind == Delay {
		f.Delay = time.Duration(1+rng.Intn(10)) * time.Millisecond
	}
	return []Fault{f}
}

var _ Transport = (*FaultTransport)(nil)
var _ Reassigner = (*FaultTransport)(nil)

// Workers returns the inner transport's worker count.
func (f *FaultTransport) Workers() int { return f.inner.Workers() }

// Wire reports the inner transport's substrate.
func (f *FaultTransport) Wire() bool { return f.inner.Wire() }

// Messages returns the inner transport's data-message count.
func (f *FaultTransport) Messages() int64 { return f.inner.Messages() }

// Bytes returns the inner transport's data-byte count.
func (f *FaultTransport) Bytes() int64 { return f.inner.Bytes() }

// AddTraffic meters through to the inner transport.
func (f *FaultTransport) AddTraffic(msgs, bytes int64) { f.inner.AddTraffic(msgs, bytes) }

// Fired returns how many planned faults have struck so far.
func (f *FaultTransport) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// take consumes the first unfired fault matching kind/worker/step, if any.
func (f *FaultTransport) take(kind FaultKind, worker, step int) (Fault, bool) {
	if step < 1 {
		return Fault{}, false
	}
	for i, ft := range f.faults {
		if ft.Kind == kind && ft.Worker == worker && step >= ft.Step {
			f.faults = append(f.faults[:i], f.faults[i+1:]...)
			f.fired++
			return ft, true
		}
	}
	return Fault{}, false
}

// Send forwards e unless a Drop fault strikes the destination worker at this
// superstep: the frame is lost (but still metered — the coordinator did send
// it) and a worker-fatal envelope is queued for the next Recv.
func (f *FaultTransport) Send(e Envelope) {
	if e.To >= 0 && e.Step >= 1 {
		f.mu.Lock()
		if ft, ok := f.take(Drop, e.To, e.Step); ok {
			if e.Size > 0 {
				f.inner.AddTraffic(1, int64(e.Size))
			}
			f.injected = append(f.injected, Envelope{
				From:    e.To,
				To:      Coordinator,
				Payload: WorkerFatal(e.To, fmt.Errorf("%w: command dropped at superstep %d", ErrInjectedFault, ft.Step)),
			})
			f.mu.Unlock()
			return
		}
		f.mu.Unlock()
	}
	f.inner.Send(e)
}

// Recv drains injected failures first, then forwards to the inner transport.
// A Sever fault replaces the worker's reply with a worker-fatal envelope and
// un-meters it — recovery regenerates the identical reply, which is metered
// when it flows, so the faulted run's traffic stays equal to a failure-free
// run's. A Delay fault sleeps before delivery.
func (f *FaultTransport) Recv(ctx context.Context, party int) (Envelope, error) {
	f.mu.Lock()
	if party == Coordinator && len(f.injected) > 0 {
		env := f.injected[0]
		f.injected = f.injected[1:]
		f.mu.Unlock()
		return env, nil
	}
	f.mu.Unlock()
	env, err := f.inner.Recv(ctx, party)
	if err != nil || party != Coordinator || env.From < 0 || env.Step < 1 {
		return env, err
	}
	f.mu.Lock()
	if ft, ok := f.take(Sever, env.From, env.Step); ok {
		f.mu.Unlock()
		// The eaten reply was metered when the dying worker sent it, but
		// recovery will regenerate and re-send exactly that reply (the owed
		// reply of the replayed fragment). Un-meter the original so the
		// faulted run's traffic equals the failure-free run's.
		if env.Size > 0 {
			f.inner.AddTraffic(-1, -int64(env.Size))
		}
		return Envelope{
			From:    env.From,
			To:      Coordinator,
			Payload: WorkerFatal(env.From, fmt.Errorf("%w: link severed at superstep %d", ErrInjectedFault, ft.Step)),
		}, nil
	}
	if ft, ok := f.take(Delay, env.From, env.Step); ok {
		f.mu.Unlock()
		time.Sleep(ft.Delay)
		return env, nil
	}
	f.mu.Unlock()
	return env, nil
}

// Reassign delegates to the inner transport when it can reassign (wire
// substrates); on the bus there is nothing to re-route — the recovered
// fragment's replacement listens on the same channel index.
func (f *FaultTransport) Reassign(frag, host int) error {
	if r, ok := f.inner.(Reassigner); ok {
		return r.Reassign(frag, host)
	}
	return nil
}
