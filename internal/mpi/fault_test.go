package mpi

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestFaultDropMetersAndInjects(t *testing.T) {
	bus := NewBus(2, 16)
	ft := NewFaultTransport(bus, Fault{Step: 2, Worker: 1, Kind: Drop})

	// Step 1 is below the fault's step: delivered normally.
	ft.Send(Envelope{From: Coordinator, To: 1, Step: 1, Payload: "peval", Size: 10})
	env, err := ft.Recv(context.Background(), 1)
	if err != nil || env.Payload != "peval" {
		t.Fatalf("pre-fault send mangled: %+v %v", env, err)
	}
	before := bus.Bytes()

	// Step 2 strikes: the frame is lost but its bytes are still metered.
	ft.Send(Envelope{From: Coordinator, To: 1, Step: 2, Payload: "inceval", Size: 7})
	if got := bus.Bytes() - before; got != 7 {
		t.Fatalf("dropped command metered %d bytes, want 7", got)
	}
	if ft.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", ft.Fired())
	}

	// The coordinator's next Recv surfaces the classified failure.
	env, err = ft.Recv(context.Background(), Coordinator)
	if err != nil {
		t.Fatal(err)
	}
	perr, ok := env.Payload.(error)
	if !ok || env.Frame != nil {
		t.Fatalf("injected envelope not a fatal: %+v", env)
	}
	if w, ok := WorkerFatalOf(perr); !ok || w != 1 {
		t.Fatalf("fatal payload %v classifies to (%d, %v), want worker 1", perr, w, ok)
	}
	if !errors.Is(perr, ErrInjectedFault) {
		t.Fatalf("fatal %v does not wrap ErrInjectedFault", perr)
	}

	// The fault is one-shot: step 3 to the same worker flows.
	ft.Send(Envelope{From: Coordinator, To: 1, Step: 3, Payload: "again", Size: 1})
	env, err = ft.Recv(context.Background(), 1)
	if err != nil || env.Payload != "again" {
		t.Fatalf("post-fault send mangled: %+v %v", env, err)
	}
}

func TestFaultSeverEatsReply(t *testing.T) {
	bus := NewBus(2, 16)
	ft := NewFaultTransport(bus, Fault{Step: 2, Worker: 0, Kind: Sever})

	bus.Send(Envelope{From: 0, To: Coordinator, Step: 2, Payload: "reply", Size: 5})
	env, err := ft.Recv(context.Background(), Coordinator)
	if err != nil {
		t.Fatal(err)
	}
	perr, ok := env.Payload.(error)
	if !ok {
		t.Fatalf("severed reply delivered: %+v", env)
	}
	if w, ok := WorkerFatalOf(perr); !ok || w != 0 {
		t.Fatalf("fatal %v classifies to (%d, %v), want worker 0", perr, w, ok)
	}
	// The eaten reply is un-metered: recovery regenerates the identical
	// reply and meters it when it flows, so counting the severed one too
	// would double it relative to a failure-free run.
	if bus.Bytes() != 0 {
		t.Fatalf("severed reply left %d metered bytes, want 0", bus.Bytes())
	}
}

func TestFaultDelayIsNotADeath(t *testing.T) {
	bus := NewBus(2, 16)
	ft := NewFaultTransport(bus, Fault{Step: 1, Worker: 0, Kind: Delay, Delay: 20 * time.Millisecond})

	bus.Send(Envelope{From: 0, To: Coordinator, Step: 1, Payload: "slow", Size: 3})
	start := time.Now()
	env, err := ft.Recv(context.Background(), Coordinator)
	if err != nil || env.Payload != "slow" {
		t.Fatalf("delayed reply mangled: %+v %v", env, err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("reply arrived after %v, want >= 20ms", elapsed)
	}
	if ft.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", ft.Fired())
	}
}

func TestFaultControlFramesImmune(t *testing.T) {
	bus := NewBus(2, 16)
	ft := NewFaultTransport(bus, Fault{Step: 1, Worker: 1, Kind: Drop})

	// Step 0 control traffic (setup, stop, abort, adopt) never matches.
	ft.Send(Envelope{From: Coordinator, To: 1, Step: 0, Payload: "stop"})
	env, err := ft.Recv(context.Background(), 1)
	if err != nil || env.Payload != "stop" {
		t.Fatalf("control frame faulted: %+v %v", env, err)
	}
	if ft.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", ft.Fired())
	}
}

func TestFaultStrikesLaterStep(t *testing.T) {
	// A fault planned for step 2 must also strike a worker first heard from
	// at step 3 (its step-2 frame may not exist for inactive workers).
	bus := NewBus(2, 16)
	ft := NewFaultTransport(bus, Fault{Step: 2, Worker: 1, Kind: Drop})
	ft.Send(Envelope{From: Coordinator, To: 1, Step: 5, Payload: "cmd", Size: 2})
	env, err := ft.Recv(context.Background(), Coordinator)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Payload.(error); !ok {
		t.Fatalf("step-5 frame did not trigger the step-2 fault: %+v", env)
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := Plan(seed, 8, 4), Plan(seed, 8, 4)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: %+v != %+v", seed, a, b)
		}
		f := a[0]
		if f.Step < 1 || f.Step > 4 || f.Worker < 0 || f.Worker >= 8 {
			t.Fatalf("seed %d: plan %+v out of range", seed, f)
		}
		if f.Kind == Delay && f.Delay <= 0 {
			t.Fatalf("seed %d: delay fault with no delay: %+v", seed, f)
		}
	}
}

func TestFaultStepZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("fault at step 0 accepted")
		}
	}()
	NewFaultTransport(NewBus(1, 16), Fault{Step: 0, Worker: 0, Kind: Drop})
}
