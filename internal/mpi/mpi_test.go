package mpi

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBusRoutesAndMeters(t *testing.T) {
	b := NewBus(3, 8)
	if b.Workers() != 3 {
		t.Fatalf("workers: %d", b.Workers())
	}
	b.Send(Envelope{From: Coordinator, To: 1, Payload: "hi", Size: 10})
	e, _ := b.Recv(context.Background(), 1)
	if e.Payload != "hi" || e.From != Coordinator {
		t.Fatalf("bad envelope: %+v", e)
	}
	if b.Messages() != 1 || b.Bytes() != 10 {
		t.Fatalf("metering wrong: %d msgs %d bytes", b.Messages(), b.Bytes())
	}
}

func TestControlMessagesNotMetered(t *testing.T) {
	b := NewBus(2, 4)
	b.Send(Envelope{From: Coordinator, To: 0, Payload: "barrier", Size: 0})
	b.Recv(context.Background(), 0)
	if b.Messages() != 0 || b.Bytes() != 0 {
		t.Fatal("zero-size control traffic must not count as communication")
	}
}

func TestWorkerToCoordinator(t *testing.T) {
	b := NewBus(2, 4)
	b.Send(Envelope{From: 1, To: Coordinator, Payload: 42, Size: 8})
	e, _ := b.Recv(context.Background(), Coordinator)
	if e.From != 1 || e.Payload != 42 {
		t.Fatalf("bad envelope: %+v", e)
	}
}

func TestSendToUnknownPartyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBus(2, 1).Send(Envelope{To: 7})
}

func TestAddTraffic(t *testing.T) {
	b := NewBus(1, 1)
	b.AddTraffic(5, 500)
	if b.Messages() != 5 || b.Bytes() != 500 {
		t.Fatal("AddTraffic not accounted")
	}
}

func TestConcurrentSendersAreSafe(t *testing.T) {
	b := NewBus(4, 1024)
	var wg sync.WaitGroup
	const per = 100
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Send(Envelope{From: w, To: Coordinator, Size: 1})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 4*per; i++ {
			b.Recv(context.Background(), Coordinator)
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if b.Messages() != 4*per || b.Bytes() != 4*per {
		t.Fatalf("lost traffic: %d msgs", b.Messages())
	}
}

func TestRecvUnblocksOnCancel(t *testing.T) {
	b := NewBus(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv(ctx, Coordinator)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on cancellation")
	}
}
