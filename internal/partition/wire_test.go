package partition

import (
	"reflect"
	"testing"

	"grape/internal/graph"
)

func TestFragmentWireRoundTrip(t *testing.T) {
	g := graph.New()
	for i := 0; i < 20; i++ {
		g.AddVertex(graph.ID(i), "v")
	}
	for i := 0; i < 20; i++ {
		g.AddEdge(graph.ID(i), graph.ID((i+1)%20), float64(i)+0.5)
		g.AddEdge(graph.ID(i), graph.ID((i*7)%20), 1)
	}
	asg, err := Hash{}.Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	layout := Build(g, asg)
	for _, f := range layout.Fragments {
		buf := AppendFragment(nil, f)
		got, used, err := DecodeFragment(buf)
		if err != nil {
			t.Fatalf("fragment %d: %v", f.Index, err)
		}
		if used != len(buf) {
			t.Fatalf("fragment %d: consumed %d of %d bytes", f.Index, used, len(buf))
		}
		if got.Index != f.Index {
			t.Fatalf("fragment index changed: %d vs %d", got.Index, f.Index)
		}
		if !reflect.DeepEqual(got.Inner, f.Inner) || !reflect.DeepEqual(got.Outer, f.Outer) || !reflect.DeepEqual(got.InnerBorder, f.InnerBorder) {
			t.Fatalf("fragment %d: vertex role lists changed", f.Index)
		}
		if !reflect.DeepEqual(got.Border(), f.Border()) {
			t.Fatalf("fragment %d: border set changed", f.Index)
		}
		// dense order, labels and adjacency preserved exactly
		if !reflect.DeepEqual(got.G.Vertices(), f.G.Vertices()) {
			t.Fatalf("fragment %d: dense vertex order changed", f.Index)
		}
		for _, v := range f.G.Vertices() {
			if !reflect.DeepEqual(got.G.Out(v), f.G.Out(v)) {
				t.Fatalf("fragment %d: adjacency of %d changed", f.Index, v)
			}
			if got.IsInner(v) != f.IsInner(v) {
				t.Fatalf("fragment %d: inner flag of %d changed", f.Index, v)
			}
			if got.Owner(v) != f.Owner(v) {
				t.Fatalf("fragment %d: owner of %d changed", f.Index, v)
			}
		}
	}
}

func TestDecodeFragmentRejectsTruncation(t *testing.T) {
	g := graph.New()
	g.AddVertex(1, "a")
	g.AddVertex(2, "b")
	g.AddEdge(1, 2, 1)
	asg, err := Hash{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	layout := Build(g, asg)
	buf := AppendFragment(nil, layout.Fragments[0])
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeFragment(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(buf))
		}
	}
}
