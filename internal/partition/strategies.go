package partition

import (
	"fmt"
	"math"

	"grape/internal/graph"
)

// Hash is the 1D hash partitioner: owner(v) = hash(v) mod n. It ignores
// structure entirely, so it maximizes cross edges — the worst case the
// partition-impact experiment contrasts against.
type Hash struct{}

// Name implements Strategy.
func (Hash) Name() string { return "hash" }

// Partition implements Strategy.
func (Hash) Partition(g *graph.Graph, n int) (*Assignment, error) {
	if err := checkN(g, n); err != nil {
		return nil, err
	}
	a := NewAssignment(g, n)
	for _, id := range g.Vertices() {
		a.SetOwner(id, int(mix(uint64(id))%uint64(n)))
	}
	return a, nil
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Range is the 1D range partitioner: vertices sorted by ID are split into n
// equal contiguous chunks. For generators that assign IDs with spatial
// locality (e.g. the road grid's row-major IDs) this is a cheap locality-
// aware baseline.
type Range struct{}

// Name implements Strategy.
func (Range) Name() string { return "range" }

// Partition implements Strategy.
func (Range) Partition(g *graph.Graph, n int) (*Assignment, error) {
	if err := checkN(g, n); err != nil {
		return nil, err
	}
	ids := g.SortedVertices()
	a := NewAssignment(g, n)
	per := (len(ids) + n - 1) / n
	for i, id := range ids {
		w := i / per
		if w >= n {
			w = n - 1
		}
		a.SetOwner(id, w)
	}
	return a, nil
}

// TwoD partitions a grid-shaped graph into spatial 2D blocks. It assumes
// vertex IDs encode row-major grid coordinates (id = r*Cols + c), which holds
// for gen.RoadGrid. If Cols is zero it infers a near-square grid from the
// maximum ID. Non-grid graphs degrade gracefully to stripes.
type TwoD struct {
	Cols int // columns of the underlying grid; 0 = infer
}

// Name implements Strategy.
func (TwoD) Name() string { return "2d" }

// Partition implements Strategy.
func (t TwoD) Partition(g *graph.Graph, n int) (*Assignment, error) {
	if err := checkN(g, n); err != nil {
		return nil, err
	}
	var maxID graph.ID
	for _, id := range g.Vertices() {
		if id > maxID {
			maxID = id
		}
	}
	cols := t.Cols
	if cols <= 0 {
		cols = int(math.Sqrt(float64(maxID + 1)))
		if cols < 1 {
			cols = 1
		}
	}
	rows := int(maxID)/cols + 1
	// Arrange workers in a pr×pc grid as square as possible.
	pr := int(math.Sqrt(float64(n)))
	for n%pr != 0 {
		pr--
	}
	pc := n / pr
	a := NewAssignment(g, n)
	for _, id := range g.Vertices() {
		r := int(id) / cols
		c := int(id) % cols
		br := r * pr / rows
		if br >= pr {
			br = pr - 1
		}
		bc := c * pc / cols
		if bc >= pc {
			bc = pc - 1
		}
		a.SetOwner(id, br*pc+bc)
	}
	return a, nil
}

// Fennel is the streaming partitioner of Stanton & Kliot / Tsourakakis et
// al., the "streaming-style partition algorithm [8]" the demo registers.
// Vertices arrive one at a time (in ID order) and are placed greedily on the
// worker maximizing |N(v) ∩ S_i| − α·γ·|S_i|^(γ−1), with a hard balance cap.
type Fennel struct {
	Gamma float64 // default 1.5
	Slack float64 // max part size multiplier over ideal, default 1.1
}

// Name implements Strategy.
func (Fennel) Name() string { return "fennel" }

// Partition implements Strategy.
func (f Fennel) Partition(g *graph.Graph, n int) (*Assignment, error) {
	if err := checkN(g, n); err != nil {
		return nil, err
	}
	gamma := f.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	slack := f.Slack
	if slack == 0 {
		slack = 1.1
	}
	nv := g.NumVertices()
	ne := g.NumEdges()
	alpha := math.Sqrt(float64(n)) * float64(ne) / math.Pow(float64(nv), gamma)
	if alpha == 0 {
		alpha = 1
	}
	cap := int(math.Ceil(slack * float64(nv) / float64(n)))
	ids := g.SortedVertices()
	a := NewAssignment(g, n)
	placed := make(map[graph.ID]int, nv)
	sizes := make([]int, n)
	neighborCount := make([]int, n) // scratch
	for _, v := range ids {
		for i := range neighborCount {
			neighborCount[i] = 0
		}
		for _, e := range g.Out(v) {
			if w, ok := placed[e.To]; ok {
				neighborCount[w]++
			}
		}
		for _, e := range g.In(v) {
			if w, ok := placed[e.To]; ok {
				neighborCount[w]++
			}
		}
		best, bestScore := -1, math.Inf(-1)
		for w := 0; w < n; w++ {
			if sizes[w] >= cap {
				continue
			}
			score := float64(neighborCount[w]) - alpha*gamma*math.Pow(float64(sizes[w]), gamma-1)
			if score > bestScore {
				best, bestScore = w, score
			}
		}
		if best < 0 { // all at cap (can't happen with slack > 1, but be safe)
			best = argmin(sizes)
		}
		placed[v] = best
		sizes[best]++
		a.SetOwner(v, best)
	}
	return a, nil
}

func argmin(xs []int) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// LDG is the linear deterministic greedy streaming partitioner of Stanton &
// Kliot (KDD 2012) — the paper's citation [8] for its "streaming-style
// partition algorithm". A vertex goes to the part with the most neighbors,
// scaled by the part's remaining capacity: score = |N(v) ∩ S_i| · (1 −
// |S_i|/C). Compared to Fennel it penalizes imbalance multiplicatively
// rather than additively.
type LDG struct {
	Slack float64 // capacity multiplier over ideal, default 1.1
}

// Name implements Strategy.
func (LDG) Name() string { return "ldg" }

// Partition implements Strategy.
func (l LDG) Partition(g *graph.Graph, n int) (*Assignment, error) {
	if err := checkN(g, n); err != nil {
		return nil, err
	}
	slack := l.Slack
	if slack == 0 {
		slack = 1.1
	}
	capacity := slack * float64(g.NumVertices()) / float64(n)
	a := NewAssignment(g, n)
	placed := make(map[graph.ID]int, g.NumVertices())
	sizes := make([]int, n)
	neighborCount := make([]int, n)
	for _, v := range g.SortedVertices() {
		for i := range neighborCount {
			neighborCount[i] = 0
		}
		for _, e := range g.Out(v) {
			if w, ok := placed[e.To]; ok {
				neighborCount[w]++
			}
		}
		for _, e := range g.In(v) {
			if w, ok := placed[e.To]; ok {
				neighborCount[w]++
			}
		}
		best, bestScore := -1, math.Inf(-1)
		for w := 0; w < n; w++ {
			if float64(sizes[w]) >= capacity {
				continue
			}
			score := float64(neighborCount[w]) * (1 - float64(sizes[w])/capacity)
			// deterministic tie-break toward the lighter part
			if score > bestScore || (score == bestScore && best >= 0 && sizes[w] < sizes[best]) {
				best, bestScore = w, score
			}
		}
		if best < 0 {
			best = argmin(sizes)
		}
		placed[v] = best
		sizes[best]++
		a.SetOwner(v, best)
	}
	return a, nil
}

// MetisLike approximates the edge-cut quality of METIS with pure Go: it seeds
// n parts by multi-source BFS region growing (which yields contiguous,
// balanced blocks) and then runs boundary refinement passes that move border
// vertices to the neighboring part with the highest cut gain subject to a
// balance constraint — a Kernighan–Lin/Fiduccia–Mattheyses flavored sweep.
// It is the stand-in for the METIS option in the demo's strategy library.
type MetisLike struct {
	Passes float64 // refinement passes; 0 = default 4
	Slack  float64 // balance slack, default 1.05
}

// Name implements Strategy.
func (MetisLike) Name() string { return "metis" }

// Partition implements Strategy.
func (m MetisLike) Partition(g *graph.Graph, n int) (*Assignment, error) {
	if err := checkN(g, n); err != nil {
		return nil, err
	}
	passes := int(m.Passes)
	if passes == 0 {
		passes = 4
	}
	slack := m.Slack
	if slack == 0 {
		slack = 1.05
	}
	nv := g.NumVertices()
	cap := int(math.Ceil(slack * float64(nv) / float64(n)))

	owner := make(map[graph.ID]int, nv)
	sizes := make([]int, n)

	// Phase 1: region growing. Seeds spread across the ID space; each BFS
	// claims unassigned vertices until its part reaches the ideal size.
	ids := g.SortedVertices()
	ideal := (nv + n - 1) / n
	seedStep := nv / n
	var queues [][]graph.ID
	for w := 0; w < n; w++ {
		queues = append(queues, []graph.ID{ids[min(w*seedStep, nv-1)]})
	}
	assigned := 0
	for assigned < nv {
		progress := false
		for w := 0; w < n && assigned < nv; w++ {
			if sizes[w] >= ideal && assigned < nv {
				// still allowed to grow if others are stuck
			}
			grew := 0
			for len(queues[w]) > 0 && grew < 8 && sizes[w] < cap {
				v := queues[w][0]
				queues[w] = queues[w][1:]
				if _, ok := owner[v]; ok {
					continue
				}
				owner[v] = w
				sizes[w]++
				assigned++
				grew++
				progress = true
				for _, e := range g.Out(v) {
					if _, ok := owner[e.To]; !ok {
						queues[w] = append(queues[w], e.To)
					}
				}
				for _, e := range g.In(v) {
					if _, ok := owner[e.To]; !ok {
						queues[w] = append(queues[w], e.To)
					}
				}
			}
		}
		if !progress {
			// Disconnected remainder: reseed the smallest part with the first
			// unassigned vertex.
			w := argmin(sizes)
			for _, v := range ids {
				if _, ok := owner[v]; !ok {
					queues[w] = append(queues[w], v)
					break
				}
			}
			// If even that fails to grow next round, fall back to direct fill.
			stuck := true
			for _, q := range queues {
				if len(q) > 0 {
					stuck = false
					break
				}
			}
			if stuck {
				for _, v := range ids {
					if _, ok := owner[v]; !ok {
						w := argmin(sizes)
						owner[v] = w
						sizes[w]++
						assigned++
					}
				}
			}
		}
	}

	// Phase 2: boundary refinement. For each border vertex compute the gain
	// of moving it to the neighboring part where it has the most edges.
	degTo := make([]int, n) // scratch
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for _, v := range ids {
			cur := owner[v]
			for i := range degTo {
				degTo[i] = 0
			}
			for _, e := range g.Out(v) {
				degTo[owner[e.To]]++
			}
			for _, e := range g.In(v) {
				degTo[owner[e.To]]++
			}
			best, bestGain := cur, 0
			for w := 0; w < n; w++ {
				if w == cur || sizes[w]+1 > cap {
					continue
				}
				gain := degTo[w] - degTo[cur]
				if gain > bestGain {
					best, bestGain = w, gain
				}
			}
			if best != cur {
				owner[v] = best
				sizes[cur]--
				sizes[best]++
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}

	a := NewAssignment(g, n)
	for v, w := range owner {
		a.SetOwner(v, w)
	}
	return a, nil
}

func checkN(g *graph.Graph, n int) error {
	if n < 1 {
		return fmt.Errorf("partition: need at least one worker, got %d", n)
	}
	if g.NumVertices() == 0 {
		return fmt.Errorf("partition: empty graph")
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Quality summarizes a partition for reports.
type Quality struct {
	Strategy    string
	Workers     int
	EdgeCut     int
	CutFraction float64
	Balance     float64
	BorderNodes int
}

// Measure computes Quality for an assignment produced by the named strategy.
func Measure(name string, a *Assignment) Quality {
	cut := a.EdgeCut()
	frac := 0.0
	if a.G.NumEdges() > 0 {
		frac = float64(cut) / float64(a.G.NumEdges())
	}
	return Quality{
		Strategy:    name,
		Workers:     a.N,
		EdgeCut:     cut,
		CutFraction: frac,
		Balance:     a.Balance(),
		BorderNodes: a.BorderCount(),
	}
}
