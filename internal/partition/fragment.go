package partition

import (
	"sort"

	"grape/internal/graph"
)

// Fragment is the unit of data a GRAPE worker computes on: the subgraph
// F_i = (V_i ∪ O_i, E_i) where V_i are the inner vertices owned by worker i
// together with all of their out-edges, and O_i are outer copies — remote
// endpoints of cut edges, carried with their labels and properties but
// without out-edges of their own.
//
// Border nodes, in the paper's sense, are the vertices that carry update
// parameters: the outer copies O_i plus the inner vertices that appear as
// outer copies in some other fragment. Border() returns exactly that set.
type Fragment struct {
	// Index is the fragment number i ∈ [0, N).
	Index int
	// G is the local subgraph: inner vertices with their out-edges plus
	// outer copies.
	G *graph.Graph
	// Inner lists the vertices owned by this fragment, ascending.
	Inner []graph.ID
	// Outer lists the outer copies (owned elsewhere), ascending.
	Outer []graph.ID
	// InnerBorder lists inner vertices that some other fragment holds a copy
	// of (i.e. targets of cut edges from elsewhere), ascending.
	InnerBorder []graph.ID

	inner map[graph.ID]bool
	asg   *Assignment

	// Dense caches over G's vertex index, built lazily after the fragment is
	// assembled (Build/BuildExpanded/DecodeFragment finalize them eagerly).
	// innerAt/innerIdx never change after construction — graph updates only
	// ever add outer copies; the border caches are invalidated by
	// AddOuter/AddInnerBorder.
	innerAt   []bool     // dense index -> owned here
	innerIdx  []int32    // dense indices of Inner, parallel to Inner
	border    []graph.ID // cached Border(), ascending
	borderIdx []int32    // dense indices of border, parallel to border
	innerOK   bool
	borderOK  bool
}

// IsInner reports whether id is owned by this fragment.
func (f *Fragment) IsInner(id graph.ID) bool { return f.inner[id] }

// IsInnerAt reports whether the vertex at dense index i of the fragment graph
// is owned by this fragment. Vertices appended after construction (new outer
// copies from graph updates) fall past the cache and are never inner.
func (f *Fragment) IsInnerAt(i int32) bool {
	if !f.innerOK {
		f.buildInnerCache()
	}
	return int(i) < len(f.innerAt) && f.innerAt[i]
}

// InnerIndices returns the dense indices of the fragment's inner vertices,
// parallel to Inner. The caller must not mutate the returned slice.
func (f *Fragment) InnerIndices() []int32 {
	if !f.innerOK {
		f.buildInnerCache()
	}
	return f.innerIdx
}

func (f *Fragment) buildInnerCache() {
	f.innerAt = make([]bool, f.G.NumVertices())
	f.innerIdx = make([]int32, len(f.Inner))
	for k, id := range f.Inner {
		i, ok := f.G.Index(id)
		if !ok {
			i = -1
		} else {
			f.innerAt[i] = true
		}
		f.innerIdx[k] = i
	}
	f.innerOK = true
}

// Owner returns the fragment index owning id in the global assignment.
func (f *Fragment) Owner(id graph.ID) int { return f.asg.Owner(id) }

// Border returns the nodes of this fragment that carry update parameters:
// Outer ∪ InnerBorder, ascending. The slice is cached across calls (programs
// walk it every superstep); the caller must not mutate it.
func (f *Fragment) Border() []graph.ID {
	if !f.borderOK {
		f.buildBorderCache()
	}
	return f.border
}

// BorderIndices returns the dense indices of Border(), parallel to it. The
// caller must not mutate the returned slice.
func (f *Fragment) BorderIndices() []int32 {
	if !f.borderOK {
		f.buildBorderCache()
	}
	return f.borderIdx
}

func (f *Fragment) buildBorderCache() {
	out := make([]graph.ID, 0, len(f.Outer)+len(f.InnerBorder))
	out = append(out, f.Outer...)
	out = append(out, f.InnerBorder...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	f.border = out
	f.borderIdx = make([]int32, len(out))
	for k, id := range out {
		i, ok := f.G.Index(id)
		if !ok {
			i = -1
		}
		f.borderIdx[k] = i
	}
	f.borderOK = true
}

// finalize freezes the local subgraph and builds the dense caches. Build,
// BuildExpanded and DecodeFragment call it once the fragment is complete.
func (f *Fragment) finalize() {
	f.G.Freeze()
	f.buildInnerCache()
	f.buildBorderCache()
}

// AddOuter records a new outer copy (a vertex owned elsewhere that graph
// updates just replicated here), keeping the border caches consistent. It is
// a no-op if id is already an outer copy.
func (f *Fragment) AddOuter(id graph.ID) {
	n := len(f.Outer)
	f.Outer = insertSortedID(f.Outer, id)
	if len(f.Outer) != n {
		f.borderOK = false
	}
}

// AddInnerBorder records that the inner vertex id now has copies elsewhere,
// keeping the border caches consistent. It reports whether id was newly
// added.
func (f *Fragment) AddInnerBorder(id graph.ID) bool {
	n := len(f.InnerBorder)
	f.InnerBorder = insertSortedID(f.InnerBorder, id)
	if len(f.InnerBorder) == n {
		return false
	}
	f.borderOK = false
	return true
}

func insertSortedID(ids []graph.ID, id graph.ID) []graph.ID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// Layout is the result of cutting a graph into fragments: the fragments plus
// the placement map the coordinator uses to route update-parameter messages.
type Layout struct {
	Asg       *Assignment
	Fragments []*Fragment
	// Placement maps each border vertex to the sorted list of fragment
	// indices hosting it (its owner plus every fragment with an outer copy).
	// Non-border vertices are absent: their values never travel.
	Placement map[graph.ID][]int
	// ReplicationBytes estimates the data shipped to build the fragments
	// beyond the plain edge-cut: BuildExpanded replicates d-hop
	// neighborhoods (GRAPE's data-shipping PEval for locality-bounded
	// queries), and that replication is communication the engine charges to
	// the run. Plain Build leaves it zero — outer copies there are part of
	// the initial partitioning, as in the paper's accounting.
	ReplicationBytes int64

	// Dense host index: hostList[hostOff[i]:hostOff[i+1]] is the packed,
	// sorted host list of the vertex at dense index i of Asg.G — the owner
	// alone for non-border vertices. The coordinator routes every changed
	// value every superstep, so Hosts must not hash into Placement (a map of
	// individually allocated slices) on that path.
	hostOff  []int32
	hostList []int
	// overflow holds host lists that changed after the build: the session
	// layer extends placement when graph updates create new outer copies.
	// It stays nil until the first AddHost so static runs never consult it.
	overflow map[graph.ID][]int
}

// Hosts returns the fragments hosting id: its placement entry if id is a
// border node, else just its owner. The returned slice is shared; callers
// must not mutate it.
func (l *Layout) Hosts(id graph.ID) []int {
	if l.overflow != nil {
		if hs, ok := l.overflow[id]; ok {
			return hs
		}
	}
	if l.hostOff != nil {
		if i, ok := l.Asg.G.Index(id); ok {
			return l.hostList[l.hostOff[i]:l.hostOff[i+1]]
		}
	}
	if hs, ok := l.Placement[id]; ok {
		return hs
	}
	return []int{l.Asg.Owner(id)}
}

// AddHost records that fragment w now holds a copy of id, keeping Placement
// and the dense host index consistent. The session layer calls it when a
// graph update creates a new outer copy; it is a no-op if w already hosts id.
func (l *Layout) AddHost(id graph.ID, w int) {
	hosts := l.Hosts(id)
	for _, h := range hosts {
		if h == w {
			return
		}
	}
	merged := make([]int, 0, len(hosts)+1)
	merged = append(merged, hosts...)
	merged = append(merged, w)
	sort.Ints(merged)
	if l.overflow == nil {
		l.overflow = make(map[graph.ID][]int)
	}
	l.overflow[id] = merged
	l.Placement[id] = merged
}

// buildHostIndex packs Placement (plus the owner-only default) into the
// dense arrays Hosts reads on the routing hot path.
func (l *Layout) buildHostIndex() {
	g := l.Asg.G
	nv := g.NumVertices()
	size := 0
	for i := 0; i < nv; i++ {
		if hs, ok := l.Placement[g.IDAt(int32(i))]; ok {
			size += len(hs)
		} else {
			size++
		}
	}
	l.hostOff = make([]int32, nv+1)
	l.hostList = make([]int, 0, size)
	for i := 0; i < nv; i++ {
		id := g.IDAt(int32(i))
		if hs, ok := l.Placement[id]; ok {
			l.hostList = append(l.hostList, hs...)
		} else {
			l.hostList = append(l.hostList, l.Asg.Owner(id))
		}
		l.hostOff[i+1] = int32(len(l.hostList))
	}
}

// Build cuts g into fragments according to asg. Every inner vertex keeps all
// of its out-edges; remote endpoints become outer copies with labels and
// properties replicated (matching algorithms inspect them). A frozen input
// produces the fragments directly in CSR form via graph.SubgraphBuilder —
// the whole cut then costs one hash per fragment vertex and zero per edge;
// an unfrozen input goes through the mutable graph API and the fragments are
// frozen afterwards. Both paths yield identical fragments.
func Build(g *graph.Graph, asg *Assignment) *Layout {
	n := asg.N
	frags := make([]*Fragment, n)
	placement := make(map[graph.ID][]int)
	hasCopy := make(map[graph.ID]map[int]bool) // border vertex -> fragments with copies

	if g.Frozen() {
		builders := make([]*graph.SubgraphBuilder, n)
		nv := g.NumVertices()
		for i := 0; i < n; i++ {
			frags[i] = &Fragment{Index: i, inner: make(map[graph.ID]bool, nv/n+1), asg: asg}
			builders[i] = graph.NewSubgraphBuilder(g, nv/n+1)
		}
		order := g.SortedIndices()
		// inner vertices
		for _, i := range order {
			w := asg.OwnerAt(i)
			id := g.IDAt(i)
			builders[w].AddVertex(i)
			frags[w].inner[id] = true
			frags[w].Inner = append(frags[w].Inner, id)
		}
		// edges + outer copies
		directed := g.Directed()
		for _, ui := range order {
			uo := asg.OwnerAt(ui)
			b := builders[uo]
			u := g.IDAt(ui)
			for _, e := range g.OutAt(ui) {
				vo := asg.OwnerAt(e.To)
				if !directed && vo == uo && u > g.IDAt(e.To) {
					continue // undirected intra-fragment edge already added via the lower endpoint
				}
				if vo != uo && !b.Has(e.To) {
					b.AddVertex(e.To)
					v := g.IDAt(e.To)
					frags[uo].Outer = append(frags[uo].Outer, v)
					if hasCopy[v] == nil {
						hasCopy[v] = make(map[int]bool)
					}
					hasCopy[v][uo] = true
				}
				b.AddEdge(ui, e)
			}
		}
		for i := 0; i < n; i++ {
			frags[i].G = builders[i].Finish()
		}
	} else {
		for i := 0; i < n; i++ {
			var local *graph.Graph
			if g.Directed() {
				local = graph.New()
			} else {
				local = graph.NewUndirected()
			}
			frags[i] = &Fragment{Index: i, G: local, inner: make(map[graph.ID]bool), asg: asg}
		}
		// inner vertices
		for _, id := range g.SortedVertices() {
			f := frags[asg.Owner(id)]
			f.G.AddVertex(id, g.Label(id))
			if ps := g.Props(id); len(ps) > 0 {
				f.G.SetProps(id, append([]string(nil), ps...))
			}
			f.inner[id] = true
			f.Inner = append(f.Inner, id)
		}
		// edges + outer copies
		for _, u := range g.SortedVertices() {
			uo := asg.Owner(u)
			f := frags[uo]
			for _, e := range g.Out(u) {
				if !g.Directed() && u > e.To && asg.Owner(e.To) == uo {
					continue // undirected intra-fragment edge already added via the lower endpoint
				}
				vo := asg.Owner(e.To)
				if vo != uo && !f.G.Has(e.To) {
					f.G.AddVertex(e.To, g.Label(e.To))
					if ps := g.Props(e.To); len(ps) > 0 {
						f.G.SetProps(e.To, append([]string(nil), ps...))
					}
					f.Outer = append(f.Outer, e.To)
					if hasCopy[e.To] == nil {
						hasCopy[e.To] = make(map[int]bool)
					}
					hasCopy[e.To][uo] = true
				}
				f.G.AddLabeledEdge(u, e.To, e.W, e.Label)
			}
		}
	}
	// Finish border bookkeeping.
	for v, copies := range hasCopy {
		owner := asg.Owner(v)
		of := frags[owner]
		of.InnerBorder = append(of.InnerBorder, v)
		hosts := []int{owner}
		for w := range copies {
			hosts = append(hosts, w)
		}
		sort.Ints(hosts)
		placement[v] = hosts
	}
	for _, f := range frags {
		sort.Slice(f.Outer, func(i, j int) bool { return f.Outer[i] < f.Outer[j] })
		sort.Slice(f.InnerBorder, func(i, j int) bool { return f.InnerBorder[i] < f.InnerBorder[j] })
	}
	for _, f := range frags {
		f.finalize()
	}
	l := &Layout{Asg: asg, Fragments: frags, Placement: placement}
	l.buildHostIndex()
	return l
}

// BuildExpanded cuts g into fragments and then expands each with the full
// d-hop neighborhood (both edge directions) of its inner vertices, including
// every edge of g between contained vertices. This is the data-shipping
// variant GRAPE uses for locality-bounded queries such as subgraph
// isomorphism: matches anchored at inner vertices become entirely local, so
// PEval is exact and IncEval terminates in one round.
func BuildExpanded(g *graph.Graph, asg *Assignment, d int) *Layout {
	n := asg.N
	frags := make([]*Fragment, n)
	innerSets := make([]map[graph.ID]bool, n)
	for i := 0; i < n; i++ {
		innerSets[i] = make(map[graph.ID]bool)
	}
	for _, id := range g.Vertices() {
		innerSets[asg.Owner(id)][id] = true
	}
	for i := 0; i < n; i++ {
		seeds := make([]graph.ID, 0, len(innerSets[i]))
		for id := range innerSets[i] {
			seeds = append(seeds, id)
		}
		sort.Slice(seeds, func(a, b int) bool { return seeds[a] < seeds[b] })
		region := g.UndirectedNeighborhood(seeds, d)
		local := g.InducedSubgraph(region)
		f := &Fragment{Index: i, G: local, inner: innerSets[i], asg: asg}
		for _, id := range local.SortedVertices() {
			if f.inner[id] {
				f.Inner = append(f.Inner, id)
			} else {
				f.Outer = append(f.Outer, id)
			}
		}
		frags[i] = f
	}
	placement := make(map[graph.ID][]int)
	var replication int64
	for i, f := range frags {
		for _, v := range f.Outer {
			placement[v] = append(placement[v], i)
			// a replicated vertex ships its ID + label + properties…
			replication += 16
			// …and its locally stored out-edges (ID + target + weight)
			replication += int64(len(f.G.Out(v))) * 24
		}
	}
	for v, hosts := range placement {
		owner := asg.Owner(v)
		frags[owner].InnerBorder = append(frags[owner].InnerBorder, v)
		placement[v] = append(hosts, owner)
		sort.Ints(placement[v])
	}
	for _, f := range frags {
		sort.Slice(f.InnerBorder, func(i, j int) bool { return f.InnerBorder[i] < f.InnerBorder[j] })
		f.finalize()
	}
	l := &Layout{Asg: asg, Fragments: frags, Placement: placement, ReplicationBytes: replication}
	l.buildHostIndex()
	return l
}
