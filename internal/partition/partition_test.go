package partition

import (
	"testing"
	"testing/quick"

	"grape/internal/gen"
	"grape/internal/graph"
)

func TestEveryStrategyProducesTotalValidAssignment(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":   gen.RoadGrid(12, 12, 1),
		"social": gen.PreferentialAttachment(500, 3, 2),
		"random": gen.Random(200, 400, 3),
	}
	for gname, g := range graphs {
		for _, strat := range Strategies() {
			for _, n := range []int{1, 2, 7, 16} {
				asg, err := strat.Partition(g, n)
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", gname, strat.Name(), n, err)
				}
				if err := asg.Validate(); err != nil {
					t.Fatalf("%s/%s/%d: %v", gname, strat.Name(), n, err)
				}
				sizes := asg.Sizes()
				total := 0
				for _, s := range sizes {
					total += s
				}
				if total != g.NumVertices() {
					t.Fatalf("%s/%s/%d: assignment covers %d of %d", gname, strat.Name(), n, total, g.NumVertices())
				}
			}
		}
	}
}

func TestBalanceWithinTolerance(t *testing.T) {
	g := gen.PreferentialAttachment(2000, 4, 5)
	for _, strat := range Strategies() {
		asg, err := strat.Partition(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		if b := asg.Balance(); b > 1.6 {
			t.Errorf("%s: balance %.2f too skewed", strat.Name(), b)
		}
	}
}

func TestStructureAwareBeatsHashOnGrid(t *testing.T) {
	g := gen.RoadGrid(32, 32, 1)
	hash, _ := Hash{}.Partition(g, 8)
	metis, _ := MetisLike{}.Partition(g, 8)
	fennel, _ := Fennel{}.Partition(g, 8)
	ldg, _ := LDG{}.Partition(g, 8)
	twod, _ := TwoD{Cols: 32}.Partition(g, 8)
	hc := hash.EdgeCut()
	if mc := metis.EdgeCut(); mc >= hc {
		t.Errorf("metis cut %d should beat hash %d", mc, hc)
	}
	if fc := fennel.EdgeCut(); fc >= hc {
		t.Errorf("fennel cut %d should beat hash %d", fc, hc)
	}
	if lc := ldg.EdgeCut(); lc >= hc {
		t.Errorf("ldg cut %d should beat hash %d", lc, hc)
	}
	if tc := twod.EdgeCut(); tc >= hc/4 {
		t.Errorf("2d cut %d should crush hash %d on a grid", tc, hc)
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"hash", "range", "fennel", "ldg", "metis", "2d"} {
		s, err := ByName(want)
		if err != nil || s.Name() != want {
			t.Fatalf("ByName(%q): %v, %v", want, s, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}

func TestPartitionRejectsBadInput(t *testing.T) {
	g := gen.Random(10, 10, 1)
	if _, err := (Hash{}).Partition(g, 0); err == nil {
		t.Fatal("0 workers should fail")
	}
	if _, err := (Hash{}).Partition(graph.New(), 2); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestBuildFragmentsInvariants(t *testing.T) {
	g := gen.Random(300, 900, 11)
	asg, err := Fennel{}.Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	layout := Build(g, asg)
	if len(layout.Fragments) != 6 {
		t.Fatalf("want 6 fragments, got %d", len(layout.Fragments))
	}
	// 1. inner sets partition V
	seen := map[graph.ID]int{}
	for _, f := range layout.Fragments {
		for _, v := range f.Inner {
			seen[v]++
			if !f.IsInner(v) {
				t.Fatalf("IsInner inconsistent for %d", v)
			}
			if asg.Owner(v) != f.Index {
				t.Fatalf("inner %d of fragment %d owned by %d", v, f.Index, asg.Owner(v))
			}
		}
	}
	if len(seen) != g.NumVertices() {
		t.Fatalf("inner sets cover %d of %d vertices", len(seen), g.NumVertices())
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d inner in %d fragments", v, c)
		}
	}
	// 2. every edge of g is stored exactly once, on its source's fragment,
	// and outer endpoints exist as copies with labels
	edgeCount := 0
	for _, f := range layout.Fragments {
		for _, u := range f.Inner {
			edgeCount += len(f.G.Out(u))
			for _, e := range f.G.Out(u) {
				if !f.G.Has(e.To) {
					t.Fatalf("fragment %d: edge target %d missing", f.Index, e.To)
				}
			}
		}
		for _, o := range f.Outer {
			if f.IsInner(o) {
				t.Fatalf("outer %d marked inner", o)
			}
			if asg.Owner(o) == f.Index {
				t.Fatalf("outer copy %d owned locally", o)
			}
		}
	}
	if edgeCount != g.NumEdges() {
		t.Fatalf("fragments store %d edges, graph has %d", edgeCount, g.NumEdges())
	}
	// 3. placement lists owner + every fragment holding a copy, sorted
	for v, hosts := range layout.Placement {
		ownerFound := false
		for i := 1; i < len(hosts); i++ {
			if hosts[i-1] >= hosts[i] {
				t.Fatalf("placement of %d not sorted: %v", v, hosts)
			}
		}
		for _, h := range hosts {
			if h == asg.Owner(v) {
				ownerFound = true
			} else if !layout.Fragments[h].G.Has(v) {
				t.Fatalf("placement says %d hosts %d but fragment lacks it", h, v)
			}
		}
		if !ownerFound {
			t.Fatalf("placement of %d misses its owner", v)
		}
	}
	// 4. Hosts falls back to the owner for non-border vertices
	for _, v := range g.Vertices() {
		if _, ok := layout.Placement[v]; !ok {
			hs := layout.Hosts(v)
			if len(hs) != 1 || hs[0] != asg.Owner(v) {
				t.Fatalf("Hosts(%d) = %v, want owner only", v, hs)
			}
			break
		}
	}
	// 5. border = outer ∪ innerBorder, sorted, consistent with placement
	for _, f := range layout.Fragments {
		border := f.Border()
		for i := 1; i < len(border); i++ {
			if border[i-1] >= border[i] {
				t.Fatalf("border of %d not sorted", f.Index)
			}
		}
		for _, b := range f.InnerBorder {
			hosts := layout.Placement[b]
			if len(hosts) < 2 {
				t.Fatalf("inner border %d should have copies elsewhere: %v", b, hosts)
			}
		}
	}
}

func TestBuildPreservesLabelsOnCopies(t *testing.T) {
	g := gen.SocialCommerce(gen.SocialCommerceConfig{People: 100, Products: 5, Follows: 3, AdoptP: 0.5, Seed: 3})
	asg, _ := Hash{}.Partition(g, 4)
	layout := Build(g, asg)
	for _, f := range layout.Fragments {
		for _, o := range f.Outer {
			if f.G.Label(o) != g.Label(o) {
				t.Fatalf("outer copy %d lost its label", o)
			}
		}
	}
}

func TestBuildExpandedContainsNeighborhoods(t *testing.T) {
	g := gen.Random(150, 450, 7)
	asg, _ := Hash{}.Partition(g, 5)
	d := 2
	layout := BuildExpanded(g, asg, d)
	for _, f := range layout.Fragments {
		region := g.UndirectedNeighborhood(f.Inner, d)
		for v := range region {
			if !f.G.Has(v) {
				t.Fatalf("fragment %d misses %d from its %d-hop region", f.Index, v, d)
			}
		}
		// every edge of g inside the region must be present
		for v := range region {
			for _, e := range g.Out(v) {
				if region[e.To] && !hasEdge(f.G, v, e.To) {
					t.Fatalf("fragment %d misses edge %d->%d", f.Index, v, e.To)
				}
			}
		}
	}
}

func hasEdge(g *graph.Graph, u, v graph.ID) bool {
	for _, e := range g.Out(u) {
		if e.To == v {
			return true
		}
	}
	return false
}

func TestQualityMeasure(t *testing.T) {
	g := gen.RoadGrid(10, 10, 1)
	asg, _ := Range{}.Partition(g, 4)
	q := Measure("range", asg)
	if q.Strategy != "range" || q.Workers != 4 {
		t.Fatal("metadata wrong")
	}
	if q.EdgeCut <= 0 || q.CutFraction <= 0 || q.CutFraction > 1 {
		t.Fatalf("cut stats implausible: %+v", q)
	}
	if q.BorderNodes <= 0 || q.BorderNodes > g.NumVertices() {
		t.Fatalf("border count implausible: %d", q.BorderNodes)
	}
}

func TestAssignmentPropertyOwnersInRange(t *testing.T) {
	f := func(seed int64, nw uint8) bool {
		n := 1 + int(nw%9)
		g := gen.Random(20+int(uint(seed)%100), 60, seed)
		for _, strat := range Strategies() {
			asg, err := strat.Partition(g, n)
			if err != nil {
				return false
			}
			if asg.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedGraphFragments(t *testing.T) {
	g := graph.NewUndirected()
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	asg := NewAssignment(g, 2)
	asg.SetOwner(1, 0)
	asg.SetOwner(2, 0)
	asg.SetOwner(3, 1)
	asg.SetOwner(4, 1)
	layout := Build(g, asg)
	// the cut edge 2-3 must be visible from both sides
	if !hasEdge(layout.Fragments[0].G, 2, 3) {
		t.Fatal("fragment 0 misses cut edge 2-3")
	}
	if !hasEdge(layout.Fragments[1].G, 3, 2) {
		t.Fatal("fragment 1 misses cut edge 3-2")
	}
}
