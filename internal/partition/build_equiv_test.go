package partition

import (
	"reflect"
	"testing"

	"grape/internal/gen"
	"grape/internal/graph"
)

// TestBuildFrozenEquivalence: Build over a frozen input (the
// SubgraphBuilder CSR path) and over a thawed copy of the same graph (the
// mutable path) must produce identical layouts — same fragment graphs in
// the same dense order (checked via the wire encoding, which captures
// exact adjacency order), same Inner/Outer/InnerBorder, same placement.
func TestBuildFrozenEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"road", gen.RoadGrid(12, 17, 3)},
		{"social", gen.PreferentialAttachment(300, 4, 5)},
		{"commerce", gen.SocialCommerce(gen.SocialCommerceConfig{People: 200, Products: 5, Follows: 4, AdoptP: 0.7, Seed: 2})},
		{"ratings-undirected", gen.Ratings(gen.RatingsConfig{Users: 80, Items: 20, RatingsPerUser: 6, Factors: 3, Noise: 0.1, Seed: 4})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			frozen := tc.g // generators freeze
			if !frozen.Frozen() {
				t.Fatal("generator did not freeze")
			}
			thawed := frozen.Clone()
			thawed.AddVertex(frozen.IDAt(0), "") // no-op mutation thaws
			if thawed.Frozen() {
				t.Fatal("clone did not thaw")
			}

			for _, n := range []int{1, 3, 8} {
				asgF, err := Hash{}.Partition(frozen, n)
				if err != nil {
					t.Fatal(err)
				}
				asgT, err := Hash{}.Partition(thawed, n)
				if err != nil {
					t.Fatal(err)
				}
				lf := Build(frozen, asgF)
				lt := Build(thawed, asgT)
				if !reflect.DeepEqual(lf.Placement, lt.Placement) {
					t.Fatalf("n=%d: placement differs", n)
				}
				for i := range lf.Fragments {
					ff, ft := lf.Fragments[i], lt.Fragments[i]
					if !reflect.DeepEqual(ff.Inner, ft.Inner) ||
						!reflect.DeepEqual(ff.Outer, ft.Outer) ||
						!reflect.DeepEqual(ff.InnerBorder, ft.InnerBorder) {
						t.Fatalf("n=%d fragment %d: vertex lists differ", n, i)
					}
					if !ff.G.Frozen() || !ft.G.Frozen() {
						t.Fatalf("n=%d fragment %d: fragments must come out frozen", n, i)
					}
					bf := graph.AppendGraph(nil, ff.G)
					bt := graph.AppendGraph(nil, ft.G)
					if !reflect.DeepEqual(bf, bt) {
						t.Fatalf("n=%d fragment %d: wire encodings differ (dense order or adjacency changed)", n, i)
					}
					if err := ff.G.Validate(); err != nil {
						t.Fatalf("n=%d fragment %d: %v", n, i, err)
					}
				}
			}
		})
	}
}

// TestBuildExpandedFrozen: the data-shipping variant also yields frozen,
// valid fragments with intact caches.
func TestBuildExpandedFrozen(t *testing.T) {
	g := gen.SocialCommerce(gen.SocialCommerceConfig{People: 150, Products: 4, Follows: 4, AdoptP: 0.7, Seed: 9})
	asg, err := Hash{}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	l := BuildExpanded(g, asg, 2)
	for _, f := range l.Fragments {
		if !f.G.Frozen() {
			t.Fatal("expanded fragment not frozen")
		}
		if err := f.G.Validate(); err != nil {
			t.Fatal(err)
		}
		iidx := f.InnerIndices()
		for k, id := range f.Inner {
			if f.G.IDAt(iidx[k]) != id || !f.IsInnerAt(iidx[k]) {
				t.Fatalf("inner cache broken at %d", id)
			}
		}
		bidx := f.BorderIndices()
		for k, id := range f.Border() {
			if bidx[k] < 0 || f.G.IDAt(bidx[k]) != id {
				t.Fatalf("border cache broken at %d", id)
			}
		}
	}
}
