// Package partition implements GRAPE's Partition Manager: strategies that
// split a graph across n workers (hash, range, 2D blocks, Fennel-style
// streaming, and a METIS-like refined partitioner), the Fragment type each
// worker computes on, and partition-quality metrics (edge cut, balance,
// border size). The Section 3 demo lets users pick a strategy from a library;
// Strategies() exposes the same registry here.
package partition

import (
	"fmt"
	"sort"

	"grape/internal/graph"
)

// Assignment maps every vertex of a graph to one of N owners.
type Assignment struct {
	G     *graph.Graph
	N     int
	owner []int32 // indexed by the graph's dense vertex index
}

// NewAssignment returns an Assignment with all vertices owned by worker 0.
func NewAssignment(g *graph.Graph, n int) *Assignment {
	return &Assignment{G: g, N: n, owner: make([]int32, g.NumVertices())}
}

// SetOwner assigns id to worker w. It panics if id is absent or w out of range.
func (a *Assignment) SetOwner(id graph.ID, w int) {
	if w < 0 || w >= a.N {
		panic(fmt.Sprintf("partition: owner %d out of range [0,%d)", w, a.N))
	}
	i, ok := a.G.Index(id)
	if !ok {
		panic(fmt.Sprintf("partition: vertex %d not in graph", id))
	}
	a.owner[i] = int32(w)
}

// Owner returns the worker owning id. It panics if id is absent.
func (a *Assignment) Owner(id graph.ID) int {
	i, ok := a.G.Index(id)
	if !ok {
		panic(fmt.Sprintf("partition: vertex %d not in graph", id))
	}
	return int(a.owner[i])
}

// OwnerAt returns the worker owning the vertex at dense index i of G — the
// hash-free accessor engines use on per-vertex and per-edge hot paths.
func (a *Assignment) OwnerAt(i int32) int { return int(a.owner[i]) }

// Sizes returns the number of vertices per worker.
func (a *Assignment) Sizes() []int {
	s := make([]int, a.N)
	for _, w := range a.owner {
		s[w]++
	}
	return s
}

// EdgeCut returns the number of edges whose endpoints have different owners.
func (a *Assignment) EdgeCut() int {
	cut := 0
	for _, u := range a.G.Vertices() {
		uo := a.Owner(u)
		for _, e := range a.G.Out(u) {
			if a.Owner(e.To) != uo {
				cut++
			}
		}
	}
	return cut
}

// Balance returns max part size divided by the ideal size |V|/N; 1.0 is
// perfectly balanced.
func (a *Assignment) Balance() float64 {
	sizes := a.Sizes()
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	ideal := float64(a.G.NumVertices()) / float64(a.N)
	if ideal == 0 {
		return 1
	}
	return float64(max) / ideal
}

// BorderCount returns the number of distinct vertices incident to a cut edge
// (on either side). These are exactly the nodes carrying update parameters.
func (a *Assignment) BorderCount() int {
	border := make(map[graph.ID]bool)
	for _, u := range a.G.Vertices() {
		uo := a.Owner(u)
		for _, e := range a.G.Out(u) {
			if a.Owner(e.To) != uo {
				border[u] = true
				border[e.To] = true
			}
		}
	}
	return len(border)
}

// Validate checks that every vertex has an owner in range.
func (a *Assignment) Validate() error {
	if len(a.owner) != a.G.NumVertices() {
		return fmt.Errorf("partition: assignment covers %d of %d vertices", len(a.owner), a.G.NumVertices())
	}
	for i, w := range a.owner {
		if int(w) < 0 || int(w) >= a.N {
			return fmt.Errorf("partition: vertex %d owned by out-of-range worker %d", a.G.IDAt(int32(i)), w)
		}
	}
	return nil
}

// Strategy is a graph partitioning algorithm.
type Strategy interface {
	// Name identifies the strategy in the registry and in reports.
	Name() string
	// Partition assigns every vertex of g to one of n workers.
	Partition(g *graph.Graph, n int) (*Assignment, error)
}

// Strategies returns the built-in strategy library in a stable order,
// mirroring the strategy picker of the demo's play panel.
func Strategies() []Strategy {
	return []Strategy{Hash{}, Range{}, Fennel{}, LDG{}, MetisLike{}, TwoD{}}
}

// ByName returns the built-in strategy with the given name.
func ByName(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if s.Name() == name {
			return s, nil
		}
	}
	names := make([]string, 0, 5)
	for _, s := range Strategies() {
		names = append(names, s.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("partition: unknown strategy %q (have %v)", name, names)
}
