package partition

import (
	"encoding/binary"
	"fmt"

	"grape/internal/graph"
)

// Wire encoding of a Fragment, used by the socket transport to ship each
// worker its fragment during the setup handshake. Everything a worker-side
// PIE program touches is included: the local subgraph (in its exact dense
// order, via graph.AppendGraph), the Inner/Outer/InnerBorder lists, and a
// local ownership table so Fragment.Owner keeps answering for every local
// vertex.

// AppendFragment appends the wire encoding of f to buf and returns the
// extended buffer.
func AppendFragment(buf []byte, f *Fragment) []byte {
	buf = binary.AppendUvarint(buf, uint64(f.Index))
	buf = binary.AppendUvarint(buf, uint64(f.asg.N))
	buf = graph.AppendGraph(buf, f.G)
	for _, id := range f.G.Vertices() {
		buf = binary.AppendUvarint(buf, uint64(f.asg.Owner(id)))
	}
	buf = appendIDList(buf, f.Inner)
	buf = appendIDList(buf, f.Outer)
	return appendIDList(buf, f.InnerBorder)
}

// DecodeFragment decodes a fragment encoded by AppendFragment from the front
// of data, returning the fragment and the number of bytes consumed. The
// decoded fragment's ownership table covers its local vertices only (that is
// all a worker can see).
func DecodeFragment(data []byte) (*Fragment, int, error) {
	pos := 0
	idx, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return nil, 0, err
	}
	n, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return nil, 0, fmt.Errorf("partition: fragment encodes zero workers")
	}
	g, used, err := graph.DecodeGraph(data[pos:])
	if err != nil {
		return nil, 0, err
	}
	pos += used
	asg := NewAssignment(g, int(n))
	for _, id := range g.Vertices() {
		w, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return nil, 0, err
		}
		if w >= n {
			return nil, 0, fmt.Errorf("partition: vertex %d owned by out-of-range worker %d", id, w)
		}
		asg.SetOwner(id, int(w))
	}
	f := &Fragment{Index: int(idx), G: g, inner: make(map[graph.ID]bool), asg: asg}
	if f.Inner, err = decodeIDList(data, &pos); err != nil {
		return nil, 0, err
	}
	if f.Outer, err = decodeIDList(data, &pos); err != nil {
		return nil, 0, err
	}
	if f.InnerBorder, err = decodeIDList(data, &pos); err != nil {
		return nil, 0, err
	}
	for _, id := range f.Inner {
		if !g.Has(id) {
			return nil, 0, fmt.Errorf("partition: inner vertex %d missing from fragment graph", id)
		}
		f.inner[id] = true
	}
	for _, id := range append(append([]graph.ID(nil), f.Outer...), f.InnerBorder...) {
		if !g.Has(id) {
			return nil, 0, fmt.Errorf("partition: border vertex %d missing from fragment graph", id)
		}
	}
	f.finalize()
	return f, pos, nil
}

func appendIDList(buf []byte, ids []graph.ID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

func decodeIDList(data []byte, pos *int) ([]graph.ID, error) {
	n, err := graph.ReadUvarint(data, pos)
	if err != nil {
		return nil, err
	}
	var ids []graph.ID
	for i := uint64(0); i < n; i++ {
		id, err := graph.ReadUvarint(data, pos)
		if err != nil {
			return nil, err
		}
		ids = append(ids, graph.ID(id))
	}
	return ids, nil
}

// Wire encoding of an Assignment's cut — the layout-persistence half of the
// durable store: a snapshot preserves a graph's dense vertex order exactly,
// so the cut is just the owner array in dense order and a restart can rebuild
// a Layout with partition.Build instead of re-running the strategy.

// AppendAssignment appends the wire encoding of a's cut to buf and returns
// the extended buffer: uvarint worker count, uvarint vertex count, then one
// uvarint owner per dense vertex index.
func AppendAssignment(buf []byte, a *Assignment) []byte {
	// a.G itself is never on the wire — the decode side supplies the graph
	// (a snapshot preserves dense order exactly) — but the cut must cover it.
	if len(a.owner) != a.G.NumVertices() {
		panic("partition: assignment out of sync with its graph")
	}
	buf = binary.AppendUvarint(buf, uint64(a.N))
	buf = binary.AppendUvarint(buf, uint64(len(a.owner)))
	for _, w := range a.owner {
		buf = binary.AppendUvarint(buf, uint64(w))
	}
	return buf
}

// DecodeAssignment decodes a cut encoded by AppendAssignment against g, which
// must have the same vertex set in the same dense order as the graph the cut
// was computed for. It returns the assignment and the number of bytes
// consumed.
func DecodeAssignment(data []byte, g *graph.Graph) (*Assignment, int, error) {
	pos := 0
	n, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return nil, 0, fmt.Errorf("partition: assignment encodes zero workers")
	}
	nv, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return nil, 0, err
	}
	if int(nv) != g.NumVertices() {
		return nil, 0, fmt.Errorf("partition: assignment covers %d vertices, graph has %d", nv, g.NumVertices())
	}
	a := &Assignment{G: g, N: int(n), owner: make([]int32, nv)}
	for i := range a.owner {
		w, err := graph.ReadUvarint(data, &pos)
		if err != nil {
			return nil, 0, err
		}
		if int(w) >= a.N {
			return nil, 0, fmt.Errorf("partition: vertex %d owned by out-of-range worker %d", g.IDAt(int32(i)), w)
		}
		a.owner[i] = int32(w)
	}
	return a, pos, nil
}
