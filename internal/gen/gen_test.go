package gen

import (
	"testing"

	"grape/internal/graph"
	"grape/internal/seq"
)

func TestRoadGridShape(t *testing.T) {
	g := RoadGrid(10, 20, 1)
	if g.NumVertices() != 200 {
		t.Fatalf("want 200 vertices, got %d", g.NumVertices())
	}
	// a grid is connected and has high hop diameter from a corner
	reach := 0
	g.BFS(0, func(graph.ID, int) bool { reach++; return true })
	if reach != 200 {
		t.Fatalf("grid should be connected, reached %d", reach)
	}
	if d := g.Diameter(0); d < 20 {
		t.Fatalf("grid diameter should be ≈ rows+cols, got %d", d)
	}
	// weights positive and roads bidirectional
	for _, u := range g.Vertices() {
		for _, e := range g.Out(u) {
			if e.W <= 0 {
				t.Fatalf("non-positive weight %g", e.W)
			}
		}
	}
}

func TestRoadGridDeterministic(t *testing.T) {
	a := RoadGrid(8, 8, 42)
	b := RoadGrid(8, 8, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	c := RoadGrid(8, 8, 43)
	if a.TotalWeight() == c.TotalWeight() {
		t.Fatal("different seeds should differ (weights)")
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	g := PreferentialAttachment(2000, 3, 7)
	if g.NumVertices() != 2000 {
		t.Fatalf("want 2000 vertices, got %d", g.NumVertices())
	}
	// heavy tail: the max in-degree should far exceed the average
	maxIn, sumIn := 0, 0
	for _, v := range g.Vertices() {
		d := g.InDegree(v)
		sumIn += d
		if d > maxIn {
			maxIn = d
		}
	}
	avg := float64(sumIn) / 2000
	if float64(maxIn) < 10*avg {
		t.Fatalf("expected a heavy tail: max %d vs avg %.1f", maxIn, avg)
	}
	// low diameter compared to a grid of the same size
	if d := g.Diameter(1999); d > 30 {
		t.Fatalf("social graph diameter too high: %d", d)
	}
}

func TestRandomAndConnectedRandom(t *testing.T) {
	g := Random(100, 300, 3)
	if g.NumVertices() != 100 {
		t.Fatalf("want 100 vertices, got %d", g.NumVertices())
	}
	cg := ConnectedRandom(100, 300, 3)
	reached := 0
	cg.BFS(0, func(graph.ID, int) bool { reached++; return true })
	if reached != 100 {
		t.Fatalf("ConnectedRandom must reach all from 0, got %d", reached)
	}
}

func TestSocialCommerceHasPlantedSignal(t *testing.T) {
	g := SocialCommerce(SocialCommerceConfig{People: 500, Products: 10, Follows: 3, AdoptP: 1.0, Seed: 5})
	counts := map[string]int{}
	for _, u := range g.Vertices() {
		for _, e := range g.Out(u) {
			counts[e.Label]++
		}
	}
	for _, label := range []string{EdgeFollow, EdgeRecommend, EdgeBuy} {
		if counts[label] == 0 {
			t.Fatalf("no %s edges generated: %v", label, counts)
		}
	}
	// labels must be set
	if g.Label(0) != LabelPerson || g.Label(graph.ID(500)) != LabelProduct {
		t.Fatal("vertex labels wrong")
	}
	// every buy planted with AdoptP=1 must satisfy the quantified condition
	// or be explicable as the 2% noise; count how many satisfy it.
	satisfied, buys := 0, 0
	for i := 0; i < 500; i++ {
		p := graph.ID(i)
		for _, e := range g.Out(p) {
			if e.Label != EdgeBuy {
				continue
			}
			buys++
			if example2Holds(g, p, e.To) {
				satisfied++
			}
		}
	}
	if buys == 0 || satisfied == 0 {
		t.Fatalf("planted signal missing: %d buys, %d satisfying", buys, satisfied)
	}
	if float64(satisfied) < 0.5*float64(buys) {
		t.Fatalf("too much noise: only %d of %d buys satisfy the rule", satisfied, buys)
	}
}

// example2Holds re-checks the generator's planted condition independently.
func example2Holds(g *graph.Graph, x, y graph.ID) bool {
	followees, recommenders := 0, 0
	for _, e := range g.Out(x) {
		if e.Label != EdgeFollow {
			continue
		}
		followees++
		for _, fe := range g.Out(e.To) {
			if fe.To != y {
				continue
			}
			if fe.Label == EdgeRateBad {
				return false
			}
			if fe.Label == EdgeRecommend {
				recommenders++
				break
			}
		}
	}
	return followees > 0 && float64(recommenders) >= 0.8*float64(followees)
}

func TestRatingsLearnable(t *testing.T) {
	g := Ratings(RatingsConfig{Users: 100, Items: 30, RatingsPerUser: 10, Factors: 3, Noise: 0.05, Seed: 9})
	// bipartite: users only connect to items
	for _, v := range g.Vertices() {
		if g.Label(v) == "user" {
			for _, e := range g.Out(v) {
				if g.Label(e.To) != "item" {
					t.Fatalf("user %d connects to non-item %d", v, e.To)
				}
				if e.W < 1 || e.W > 5 {
					t.Fatalf("rating out of range: %g", e.W)
				}
			}
		}
	}
	// a latent-factor model fits it far better than the constant predictor
	cfg := seq.DefaultCFConfig()
	cfg.Epochs = 25
	_, rmse := seq.TrainCF(g, seq.UsersOf(g), cfg)
	if rmse > 1.0 {
		t.Fatalf("planted ratings should be learnable: RMSE %.3f", rmse)
	}
}

func TestAttachKeywordsDeterministic(t *testing.T) {
	a := Random(50, 100, 1)
	b := Random(50, 100, 1)
	AttachKeywords(a, []string{"x", "y", "z"}, 2, 0.5, 7)
	AttachKeywords(b, []string{"x", "y", "z"}, 2, 0.5, 7)
	withProps := 0
	for _, v := range a.Vertices() {
		pa, pb := a.Props(v), b.Props(v)
		if len(pa) != len(pb) {
			t.Fatal("keyword attachment not deterministic")
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("keyword attachment not deterministic")
			}
		}
		if len(pa) > 0 {
			withProps++
		}
	}
	if withProps == 0 {
		t.Fatal("no keywords attached")
	}
}

// TestUpdateStreamLegal replays a generated stream against a live-edge
// multiset: every deletion must name an instance live at its point in the
// stream, every insertion must connect vertices of the graph, and the stream
// must be deterministic in its seed.
func TestUpdateStreamLegal(t *testing.T) {
	g := Random(40, 120, 3)
	cfg := StreamConfig{Batches: 6, BatchSize: 15, DeleteP: 0.4, Seed: 9}
	stream := UpdateStream(g, cfg)
	if len(stream) != 6 {
		t.Fatalf("batches = %d, want 6", len(stream))
	}
	type key struct {
		from, to graph.ID
		label    string
	}
	liveCount := map[key]int{}
	for _, u := range g.SortedVertices() {
		for _, e := range g.Out(u) {
			liveCount[key{u, e.To, e.Label}]++
		}
	}
	exists := map[graph.ID]bool{}
	for _, v := range g.Vertices() {
		exists[v] = true
	}
	dels, ins := 0, 0
	for _, batch := range stream {
		if len(batch) != 15 {
			t.Fatalf("batch size = %d, want 15", len(batch))
		}
		for _, u := range batch {
			k := key{u.From, u.To, u.Label}
			if u.Del {
				dels++
				if liveCount[k] <= 0 {
					t.Fatalf("deletion of dead edge %+v", u)
				}
				liveCount[k]--
				continue
			}
			ins++
			if !exists[u.From] || !exists[u.To] {
				t.Fatalf("insertion touches unknown vertex: %+v", u)
			}
			if u.W < 0 {
				t.Fatalf("negative insertion weight: %+v", u)
			}
			liveCount[k]++
		}
	}
	if dels == 0 || ins == 0 {
		t.Fatalf("stream should mix operations: %d inserts, %d deletes", ins, dels)
	}
	again := UpdateStream(Random(40, 120, 3), cfg)
	for b := range stream {
		for i := range stream[b] {
			if stream[b][i] != again[b][i] {
				t.Fatal("stream not deterministic in seed")
			}
		}
	}
}

func TestDirectedRatingsShape(t *testing.T) {
	g := DirectedRatings(RatingsConfig{Users: 30, Items: 10, RatingsPerUser: 5, Factors: 3, Noise: 0.1, Seed: 2})
	if !g.Directed() {
		t.Fatal("DirectedRatings must be directed")
	}
	for _, v := range g.Vertices() {
		switch g.Label(v) {
		case "user":
			for _, e := range g.Out(v) {
				if g.Label(e.To) != "item" {
					t.Fatalf("user %d rates non-item %d", v, e.To)
				}
				if e.W < 1 || e.W > 5 {
					t.Fatalf("rating %g out of [1,5]", e.W)
				}
			}
		case "item":
			if len(g.Out(v)) != 0 {
				t.Fatalf("item %d has out-edges", v)
			}
		default:
			t.Fatalf("unexpected label %q", g.Label(v))
		}
	}
}
