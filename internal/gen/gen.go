// Package gen builds the deterministic synthetic datasets used throughout the
// reproduction. Each generator targets the structural property that drives
// the corresponding experiment in the paper:
//
//   - RoadGrid: a weighted grid with O(√n) diameter, standing in for the US
//     road network of Table 1. High diameter is what makes vertex-centric
//     SSSP need thousands of supersteps.
//   - PreferentialAttachment: a scale-free social graph standing in for
//     LiveJournal in the partition-impact experiment; heavy-tailed degrees
//     and a small diameter make edge-cut quality matter.
//   - SocialCommerce: a labeled person/product graph with follow, recommend,
//     rate_bad and buy edges, standing in for Weibo in the GPAR demo.
//   - Ratings: a bipartite user–item rating graph drawn from a planted
//     latent-factor model, so collaborative filtering has signal to learn.
//   - Random: an Erdős–Rényi G(n, m) graph for property-based tests.
//
// Every generator takes an explicit seed and is fully deterministic, and
// every generator returns its graph frozen (graph.Freeze) so the engines and
// the partition layer start from the CSR form. Callers that want to mutate a
// generated graph can do so — the first mutation transparently thaws it.
package gen

import (
	"fmt"
	"math/rand"

	"grape/internal/graph"
)

// RoadGrid returns a directed rows×cols grid with bidirectional road segments
// of weight 1..10 and a sprinkling of longer "highway" shortcuts. Vertex IDs
// are r*cols+c. The graph is connected and has hop diameter ≈ rows+cols.
func RoadGrid(rows, cols int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	id := func(r, c int) graph.ID { return graph.ID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddVertex(id(r, c), "")
		}
	}
	addRoad := func(u, v graph.ID) {
		w := 1 + rng.Float64()*9
		g.AddEdge(u, v, w)
		g.AddEdge(v, u, w)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				addRoad(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				addRoad(id(r, c), id(r+1, c))
			}
		}
	}
	// A few highways: longer jumps with proportionally lower per-hop cost.
	highways := (rows * cols) / 100
	for i := 0; i < highways; i++ {
		r := rng.Intn(rows)
		c := rng.Intn(cols)
		span := 2 + rng.Intn(8)
		if c+span < cols {
			w := float64(span) * (0.5 + rng.Float64()*0.5)
			g.AddEdge(id(r, c), id(r, c+span), w)
			g.AddEdge(id(r, c+span), id(r, c), w)
		}
	}
	return g.Freeze()
}

// PreferentialAttachment returns a directed scale-free graph with n vertices
// where each new vertex attaches m out-edges preferentially to high-degree
// targets (Barabási–Albert flavored). Edge weights are 1. Vertex IDs are
// 0..n-1; the graph is weakly connected.
func PreferentialAttachment(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	// repeated-endpoint list implements preferential selection in O(1)
	targets := make([]graph.ID, 0, 2*n*m)
	for v := 0; v < n; v++ {
		id := graph.ID(v)
		g.AddVertex(id, "")
		k := m
		if v == 0 {
			continue
		}
		if v < m {
			k = v
		}
		chosen := make(map[graph.ID]bool, k)
		for len(chosen) < k {
			var t graph.ID
			if len(targets) == 0 || rng.Float64() < 0.1 {
				t = graph.ID(rng.Intn(v)) // uniform escape keeps it connected-ish
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if t == id || chosen[t] {
				continue
			}
			chosen[t] = true
			g.AddEdge(id, t, 1)
			// social edges are usually reciprocated occasionally
			if rng.Float64() < 0.3 {
				g.AddEdge(t, id, 1)
			}
			targets = append(targets, t, id)
		}
	}
	return g.Freeze()
}

// Random returns a directed Erdős–Rényi-style graph with n vertices and m
// edges (self-loops excluded, parallel edges possible). Weights are uniform
// in [1, 10).
func Random(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for v := 0; v < n; v++ {
		g.AddVertex(graph.ID(v), "")
	}
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		g.AddEdge(graph.ID(u), graph.ID(v), 1+rng.Float64()*9)
	}
	return g.Freeze()
}

// ConnectedRandom returns Random plus a random spanning path so that every
// vertex is reachable from vertex 0. Used where tests need full reachability.
func ConnectedRandom(n, m int, seed int64) *graph.Graph {
	g := Random(n, m, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	perm := rng.Perm(n)
	prev := graph.ID(0)
	for _, p := range perm {
		v := graph.ID(p)
		if v == prev {
			continue
		}
		g.AddEdge(prev, v, 1+rng.Float64()*9)
		prev = v
	}
	return g.Freeze()
}

// Labels used by SocialCommerce.
const (
	LabelPerson  = "person"
	LabelProduct = "product"

	EdgeFollow    = "follow"
	EdgeRecommend = "recommend"
	EdgeRateBad   = "rate_bad"
	EdgeBuy       = "buy"
)

// SocialCommerceConfig controls SocialCommerce generation.
type SocialCommerceConfig struct {
	People   int // number of person vertices
	Products int // number of product vertices
	Follows  int // follow out-degree per person (preferentially attached)
	// AdoptP is the probability that a follower of many recommenders also
	// recommends; it plants the ≥80%-of-followees GPAR signal of Example 2.
	AdoptP float64
	Seed   int64
}

// SocialCommerce returns a labeled directed graph of people and products.
// People cluster into per-product fan communities: they mostly follow within
// their community, and community members often recommend "their" product —
// so the Example 2 condition ("≥80% of x's followees recommend y, nobody
// rates it badly") genuinely occurs. The generator then plants the rule's
// consequent: people satisfying the condition buy with probability AdoptP.
// GPAR mining therefore has real positives to find, with noise edges
// (cross-community follows, bad ratings, random buys) around them.
func SocialCommerce(cfg SocialCommerceConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New()
	person := func(i int) graph.ID { return graph.ID(i) }
	product := func(j int) graph.ID { return graph.ID(cfg.People + j) }
	if cfg.Products < 1 {
		cfg.Products = 1
	}
	for i := 0; i < cfg.People; i++ {
		g.AddVertex(person(i), LabelPerson)
	}
	for j := 0; j < cfg.Products; j++ {
		id := product(j)
		g.AddVertex(id, LabelProduct)
		g.SetProps(id, []string{fmt.Sprintf("product_%d", j)})
	}
	community := func(i int) int { return i % cfg.Products }
	// Follow edges: mostly within the community, occasionally anywhere.
	for i := 1; i < cfg.People; i++ {
		k := cfg.Follows
		if i < k {
			k = i
		}
		seen := map[graph.ID]bool{}
		for len(seen) < k {
			var t graph.ID
			if rng.Float64() < 0.8 {
				// same community, lower index (keeps the graph acyclic-ish
				// in follow direction but that is irrelevant to the rule)
				c := community(i)
				cand := c + cfg.Products*rng.Intn(1+(i-1)/cfg.Products)
				if cand >= i || community(cand) != c {
					continue
				}
				t = person(cand)
			} else {
				t = person(rng.Intn(i))
			}
			if t == person(i) || seen[t] {
				continue
			}
			seen[t] = true
			g.AddLabeledEdge(person(i), t, 1, EdgeFollow)
		}
	}
	// Recommendations: community members recommend their product often,
	// other products rarely; a small fraction of people are detractors who
	// rate the community product badly instead.
	for i := 0; i < cfg.People; i++ {
		p := person(i)
		c := community(i)
		switch {
		case rng.Float64() < 0.03:
			g.AddLabeledEdge(p, product(c), 1, EdgeRateBad)
		case rng.Float64() < 0.7:
			g.AddLabeledEdge(p, product(c), 1, EdgeRecommend)
		}
		if rng.Float64() < 0.05 {
			g.AddLabeledEdge(p, product(rng.Intn(cfg.Products)), 1, EdgeRecommend)
		}
	}
	// Plant the consequent: exactly when the rule's condition holds, buy
	// with probability AdoptP; plus a trickle of random buys as noise.
	for i := 0; i < cfg.People; i++ {
		p := person(i)
		recs := map[graph.ID]int{}
		bads := map[graph.ID]bool{}
		nFollow := 0
		for _, e := range g.Out(p) {
			if e.Label != EdgeFollow {
				continue
			}
			nFollow++
			for _, fe := range g.Out(e.To) {
				switch fe.Label {
				case EdgeRecommend:
					recs[fe.To]++
				case EdgeRateBad:
					bads[fe.To] = true
				}
			}
		}
		if nFollow == 0 {
			continue
		}
		for prod, c := range recs {
			if float64(c) >= 0.8*float64(nFollow) && !bads[prod] && rng.Float64() < cfg.AdoptP {
				g.AddLabeledEdge(p, prod, 1, EdgeBuy)
			}
		}
		if rng.Float64() < 0.02 {
			g.AddLabeledEdge(p, product(rng.Intn(cfg.Products)), 1, EdgeBuy)
		}
	}
	return g.Freeze()
}

// RatingsConfig controls Ratings generation.
type RatingsConfig struct {
	Users, Items   int
	RatingsPerUser int
	Factors        int // planted latent dimension
	Noise          float64
	Seed           int64
}

// Ratings returns an undirected bipartite user–item graph whose edge weights
// are ratings in [1, 5] drawn from a planted latent-factor model
// r(u,i) = clamp(μ + p_u · q_i + ε). User IDs are 0..Users-1, item IDs are
// Users..Users+Items-1, and vertices are labeled "user" / "item".
func Ratings(cfg RatingsConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Factors <= 0 {
		cfg.Factors = 4
	}
	p := make([][]float64, cfg.Users)
	q := make([][]float64, cfg.Items)
	for u := range p {
		p[u] = randVec(rng, cfg.Factors)
	}
	for i := range q {
		q[i] = randVec(rng, cfg.Factors)
	}
	g := graph.NewUndirected()
	for u := 0; u < cfg.Users; u++ {
		g.AddVertex(graph.ID(u), "user")
	}
	for i := 0; i < cfg.Items; i++ {
		g.AddVertex(graph.ID(cfg.Users+i), "item")
	}
	for u := 0; u < cfg.Users; u++ {
		seen := map[int]bool{}
		for k := 0; k < cfg.RatingsPerUser; k++ {
			i := rng.Intn(cfg.Items)
			if seen[i] {
				continue
			}
			seen[i] = true
			r := 3.0 + dot(p[u], q[i]) + rng.NormFloat64()*cfg.Noise
			if r < 1 {
				r = 1
			}
			if r > 5 {
				r = 5
			}
			g.AddEdge(graph.ID(u), graph.ID(cfg.Users+i), r)
		}
	}
	return g.Freeze()
}

// DirectedRatings is Ratings with user→item edges on a directed graph — the
// shape incremental sessions need (sessions are directed-only). CF only ever
// walks out-edges of "user"-labeled vertices, so training sees the same
// rating multiset as on the undirected form.
func DirectedRatings(cfg RatingsConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Factors <= 0 {
		cfg.Factors = 4
	}
	p := make([][]float64, cfg.Users)
	q := make([][]float64, cfg.Items)
	for u := range p {
		p[u] = randVec(rng, cfg.Factors)
	}
	for i := range q {
		q[i] = randVec(rng, cfg.Factors)
	}
	g := graph.New()
	for u := 0; u < cfg.Users; u++ {
		g.AddVertex(graph.ID(u), "user")
	}
	for i := 0; i < cfg.Items; i++ {
		g.AddVertex(graph.ID(cfg.Users+i), "item")
	}
	for u := 0; u < cfg.Users; u++ {
		seen := map[int]bool{}
		for k := 0; k < cfg.RatingsPerUser; k++ {
			i := rng.Intn(cfg.Items)
			if seen[i] {
				continue
			}
			seen[i] = true
			r := 3.0 + dot(p[u], q[i]) + rng.NormFloat64()*cfg.Noise
			if r < 1 {
				r = 1
			}
			if r > 5 {
				r = 5
			}
			g.AddEdge(graph.ID(u), graph.ID(cfg.Users+i), r)
		}
	}
	return g.Freeze()
}

func randVec(rng *rand.Rand, k int) []float64 {
	v := make([]float64, k)
	for i := range v {
		v[i] = rng.NormFloat64() * 0.5
	}
	return v
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AttachKeywords assigns each vertex up to k random keywords from vocab with
// probability p each, for keyword-search workloads. Deterministic in seed.
func AttachKeywords(g *graph.Graph, vocab []string, k int, p float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, id := range g.Vertices() {
		var props []string
		for i := 0; i < k; i++ {
			if rng.Float64() < p {
				props = append(props, vocab[rng.Intn(len(vocab))])
			}
		}
		if len(props) > 0 {
			g.SetProps(id, props)
		}
	}
}
