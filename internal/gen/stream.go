package gen

import (
	"math/rand"

	"grape/internal/graph"
)

// Update is one edge mutation of a generated update stream: an insertion by
// default, a deletion of a live edge instance when Del is set. The type
// mirrors engine.EdgeUpdate field-for-field; gen cannot import engine (the
// engine's tests import gen), so harnesses convert at the call site.
type Update struct {
	From, To graph.ID
	W        float64
	Label    string
	Del      bool
}

// StreamConfig controls UpdateStream generation.
type StreamConfig struct {
	Batches   int
	BatchSize int
	// DeleteP is the probability each update is a deletion (when any live
	// edge remains to delete); the rest are insertions between existing
	// vertices.
	DeleteP float64
	// Labels, when non-empty, is the label pool insertions draw from;
	// otherwise insertions reuse the label of a random live edge (or "" on
	// an unlabeled graph).
	Labels []string
	// MaxW bounds insertion weights: uniform in [1, MaxW). Zero means 10.
	MaxW float64
	Seed int64
}

// UpdateStream returns cfg.Batches batches of edge updates that are legal to
// replay against g in order: every deletion names an edge instance live at
// its point in the stream (counting the stream's own earlier insertions and
// deletions), and every insertion connects vertices of g. The generator
// never mutates g — callers apply the batches to g and to any shadow copy
// themselves. Deterministic in cfg.Seed.
func UpdateStream(g *graph.Graph, cfg StreamConfig) [][]Update {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.MaxW <= 0 {
		cfg.MaxW = 10
	}
	vs := g.SortedVertices()
	type inst struct {
		from, to graph.ID
		label    string
	}
	var live []inst
	for _, u := range vs {
		for _, e := range g.Out(u) {
			live = append(live, inst{u, e.To, e.Label})
		}
	}
	pickLabel := func() string {
		if len(cfg.Labels) > 0 {
			return cfg.Labels[rng.Intn(len(cfg.Labels))]
		}
		if len(live) > 0 {
			return live[rng.Intn(len(live))].label
		}
		return ""
	}
	out := make([][]Update, cfg.Batches)
	for b := range out {
		batch := make([]Update, 0, cfg.BatchSize)
		for k := 0; k < cfg.BatchSize; k++ {
			if len(live) > 0 && rng.Float64() < cfg.DeleteP {
				i := rng.Intn(len(live))
				e := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				batch = append(batch, Update{From: e.from, To: e.to, Label: e.label, Del: true})
				continue
			}
			u := vs[rng.Intn(len(vs))]
			v := vs[rng.Intn(len(vs))]
			lbl := pickLabel()
			batch = append(batch, Update{From: u, To: v, W: 1 + rng.Float64()*(cfg.MaxW-1), Label: lbl})
			live = append(live, inst{u, v, lbl})
		}
		out[b] = batch
	}
	return out
}
