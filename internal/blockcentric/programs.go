package blockcentric

import (
	"math"
	"sort"

	"grape/internal/graph"
	"grape/internal/seq"
)

// SSSPBlock is single-source shortest paths as a block program: every
// activation runs Dijkstra inside the block seeded by improved boundary
// values, then ships improvements across block-leaving edges.
type SSSPBlock struct {
	Source graph.ID
}

// Name implements Program.
func (SSSPBlock) Name() string { return "sssp" }

// InitBlock implements Program.
func (p SSSPBlock) InitBlock(ctx *BCtx, b *Block) {
	if !b.Contains(p.Source) {
		return
	}
	ctx.SetValue(p.Source, 0)
	relaxBlock(ctx, b, []graph.ID{p.Source})
}

// ComputeBlock implements Program.
func (p SSSPBlock) ComputeBlock(ctx *BCtx, b *Block, msgs map[graph.ID][]float64) {
	var seeds []graph.ID
	for v, ms := range msgs {
		best := math.Inf(1)
		for _, m := range ms {
			ctx.AddWork(1)
			if m < best {
				best = m
			}
		}
		if cur, ok := ctx.Value(v); !ok || best < cur {
			ctx.SetValue(v, best)
			seeds = append(seeds, v)
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	relaxBlock(ctx, b, seeds)
}

// ssspScratch is SSSPBlock's per-block state: reusable relaxation buffers
// (a block is re-activated once per incoming wavefront, so the scratch pays
// for itself many times over a run).
type ssspScratch struct {
	dist, init []float64
	sidx       []int32
	outbound   []outMsg
}

type outMsg struct {
	to graph.ID
	d  float64
}

// relaxBlock runs Dijkstra over the block from the seeds, entirely on the
// frozen block subgraph's dense indices: distances live in a flat scratch
// array seeded from the global values, and only actual improvements are
// written back. Improvements to vertices outside the block become messages,
// combined per target (Blogel's combiner).
func relaxBlock(ctx *BCtx, b *Block, seeds []graph.ID) {
	sub := b.Sub
	n := sub.NumVertices()
	nm := len(b.Vertices) // members occupy Sub dense indices [0, nm)
	st, _ := b.State.(*ssspScratch)
	if st == nil {
		st = &ssspScratch{dist: make([]float64, n), init: make([]float64, n)}
		b.State = st
	}
	dist, init := st.dist, st.init
	for i := 0; i < nm; i++ {
		d := math.Inf(1)
		if v, ok := ctx.ValueAt(b.gIdx[i]); ok {
			d = v
		}
		dist[i] = d
		init[i] = d
	}
	for i := nm; i < n; i++ { // out-of-block targets start unreached
		dist[i] = math.Inf(1)
		init[i] = math.Inf(1)
	}
	sidx := st.sidx[:0]
	for _, s := range seeds {
		if i, ok := sub.Index(s); ok {
			sidx = append(sidx, i)
		}
	}
	st.sidx = sidx
	work := seq.RelaxIdx(sub, false, sidx,
		func(i int32) float64 { return dist[i] },
		func(i int32, d float64) { dist[i] = d })
	ctx.AddWork(work)
	for i := 0; i < nm; i++ {
		if dist[i] < init[i] {
			ctx.SetValueAt(b.gIdx[i], dist[i])
		}
	}
	// Out-of-block improvements ship as messages, ascending by target ID.
	outbound := st.outbound[:0]
	for i := nm; i < n; i++ {
		if dist[i] < init[i] {
			outbound = append(outbound, outMsg{sub.IDAt(int32(i)), dist[i]})
		}
	}
	sort.Slice(outbound, func(i, j int) bool { return outbound[i].to < outbound[j].to })
	for _, m := range outbound {
		ctx.Send(m.to, m.d)
	}
	st.outbound = outbound
}

// ccBlockState caches the block's internal connectivity: local sets never
// change, so ComputeBlock only moves labels. The union-find runs over the
// block subgraph's dense indices.
type ccBlockState struct {
	uf        *seq.DenseUnionFind
	rootLabel []graph.ID // by Sub dense root index
	rootHas   []bool
	// crossOf lists, per local root, the block-leaving edges of the set.
	crossOf map[int32][]graph.ID
}

// CCBlock is weakly connected components as a block program: min-label
// propagation at block granularity.
type CCBlock struct{}

// Name implements Program.
func (CCBlock) Name() string { return "cc" }

// InitBlock implements Program.
func (CCBlock) InitBlock(ctx *BCtx, b *Block) {
	sub := b.Sub
	n := sub.NumVertices()
	nm := len(b.Vertices)
	st := &ccBlockState{
		uf:        seq.NewDenseUnionFind(n),
		rootLabel: make([]graph.ID, n),
		rootHas:   make([]bool, n),
		crossOf:   map[int32][]graph.ID{},
	}
	b.State = st
	for i := int32(0); i < int32(nm); i++ {
		for _, e := range sub.OutAt(i) {
			ctx.AddWork(1)
			if int(e.To) < nm { // both endpoints in the block
				st.uf.Union(i, e.To)
			}
		}
	}
	for i := int32(0); i < int32(nm); i++ {
		r := st.uf.Find(i)
		if v := b.Vertices[i]; !st.rootHas[r] || v < st.rootLabel[r] {
			st.rootLabel[r] = v
			st.rootHas[r] = true
		}
	}
	for i := int32(0); i < int32(nm); i++ {
		for _, e := range sub.OutAt(i) {
			if int(e.To) >= nm {
				r := st.uf.Find(i)
				st.crossOf[r] = append(st.crossOf[r], sub.IDAt(e.To))
			}
		}
	}
	for i := 0; i < nm; i++ {
		ctx.SetValueAt(b.gIdx[i], float64(st.rootLabel[st.uf.Find(int32(i))]))
	}
	// initial label exchange
	for r, targets := range st.crossOf {
		l := float64(st.rootLabel[r])
		for _, to := range targets {
			ctx.Send(to, l)
			ctx.AddWork(1)
		}
	}
}

// ComputeBlock implements Program.
func (CCBlock) ComputeBlock(ctx *BCtx, b *Block, msgs map[graph.ID][]float64) {
	st := b.State.(*ccBlockState)
	sub := b.Sub
	best := make(map[int32]graph.ID) // root -> lowest incoming
	for v, ms := range msgs {
		vi, ok := sub.Index(v)
		if !ok {
			continue
		}
		r := st.uf.Find(vi)
		for _, m := range ms {
			ctx.AddWork(1)
			l := graph.ID(m)
			if cur, ok := best[r]; !ok || l < cur {
				best[r] = l
			}
		}
	}
	roots := make([]int32, 0, len(best))
	for r := range best {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		l := best[r]
		if st.rootHas[r] && l >= st.rootLabel[r] {
			continue
		}
		st.rootLabel[r] = l
		st.rootHas[r] = true
		for i := 0; i < len(b.Vertices); i++ {
			if st.uf.Find(int32(i)) == r {
				ctx.SetValueAt(b.gIdx[i], float64(l))
			}
		}
		for _, to := range st.crossOf[r] {
			ctx.Send(to, float64(l))
			ctx.AddWork(1)
		}
	}
}
