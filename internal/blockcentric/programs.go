package blockcentric

import (
	"math"
	"sort"

	"grape/internal/graph"
	"grape/internal/seq"
)

// SSSPBlock is single-source shortest paths as a block program: every
// activation runs Dijkstra inside the block seeded by improved boundary
// values, then ships improvements across block-leaving edges.
type SSSPBlock struct {
	Source graph.ID
}

// Name implements Program.
func (SSSPBlock) Name() string { return "sssp" }

// InitBlock implements Program.
func (p SSSPBlock) InitBlock(ctx *BCtx, b *Block) {
	if !b.Contains(p.Source) {
		return
	}
	ctx.SetValue(p.Source, 0)
	relaxBlock(ctx, b, []graph.ID{p.Source})
}

// ComputeBlock implements Program.
func (p SSSPBlock) ComputeBlock(ctx *BCtx, b *Block, msgs map[graph.ID][]float64) {
	var seeds []graph.ID
	for v, ms := range msgs {
		best := math.Inf(1)
		for _, m := range ms {
			ctx.AddWork(1)
			if m < best {
				best = m
			}
		}
		if cur, ok := ctx.Value(v); !ok || best < cur {
			ctx.SetValue(v, best)
			seeds = append(seeds, v)
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	relaxBlock(ctx, b, seeds)
}

// relaxBlock runs Dijkstra over the block from the seeds. Improvements to
// vertices outside the block become messages, combined per target (Blogel's
// combiner).
func relaxBlock(ctx *BCtx, b *Block, seeds []graph.ID) {
	outbound := make(map[graph.ID]float64)
	get := func(id graph.ID) float64 {
		if b.Contains(id) {
			if v, ok := ctx.Value(id); ok {
				return v
			}
			return math.Inf(1)
		}
		if v, ok := outbound[id]; ok {
			return v
		}
		return math.Inf(1)
	}
	set := func(id graph.ID, d float64) {
		if b.Contains(id) {
			ctx.SetValue(id, d)
			return
		}
		outbound[id] = d
	}
	work := seq.Relax(b.Sub, seeds, get, set)
	ctx.AddWork(work)
	targets := make([]graph.ID, 0, len(outbound))
	for id := range outbound {
		targets = append(targets, id)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, id := range targets {
		ctx.Send(id, outbound[id])
	}
}

// ccBlockState caches the block's internal connectivity: local sets never
// change, so ComputeBlock only moves labels.
type ccBlockState struct {
	uf        *seq.UnionFind
	rootLabel map[graph.ID]graph.ID
	// crossOf lists, per local root, the block-leaving edges of the set.
	crossOf map[graph.ID][]graph.ID
}

// CCBlock is weakly connected components as a block program: min-label
// propagation at block granularity.
type CCBlock struct{}

// Name implements Program.
func (CCBlock) Name() string { return "cc" }

// InitBlock implements Program.
func (CCBlock) InitBlock(ctx *BCtx, b *Block) {
	st := &ccBlockState{uf: seq.NewUnionFind(), rootLabel: map[graph.ID]graph.ID{}, crossOf: map[graph.ID][]graph.ID{}}
	b.State = st
	for _, v := range b.Vertices {
		st.uf.Add(v)
	}
	for _, u := range b.Vertices {
		for _, e := range b.Sub.Out(u) {
			ctx.AddWork(1)
			if b.Contains(e.To) {
				st.uf.Union(u, e.To)
			}
		}
	}
	for _, v := range b.Vertices {
		r := st.uf.Find(v)
		if cur, ok := st.rootLabel[r]; !ok || v < cur {
			st.rootLabel[r] = v
		}
	}
	for _, u := range b.Vertices {
		for _, e := range b.Sub.Out(u) {
			if !b.Contains(e.To) {
				r := st.uf.Find(u)
				st.crossOf[r] = append(st.crossOf[r], e.To)
			}
		}
	}
	for _, v := range b.Vertices {
		ctx.SetValue(v, float64(st.rootLabel[st.uf.Find(v)]))
	}
	// initial label exchange
	for r, targets := range st.crossOf {
		l := float64(st.rootLabel[r])
		for _, to := range targets {
			ctx.Send(to, l)
			ctx.AddWork(1)
		}
	}
}

// ComputeBlock implements Program.
func (CCBlock) ComputeBlock(ctx *BCtx, b *Block, msgs map[graph.ID][]float64) {
	st := b.State.(*ccBlockState)
	best := make(map[graph.ID]graph.ID) // root -> lowest incoming
	for v, ms := range msgs {
		r := st.uf.Find(v)
		for _, m := range ms {
			ctx.AddWork(1)
			l := graph.ID(m)
			if cur, ok := best[r]; !ok || l < cur {
				best[r] = l
			}
		}
	}
	roots := make([]graph.ID, 0, len(best))
	for r := range best {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		l := best[r]
		if l >= st.rootLabel[r] {
			continue
		}
		st.rootLabel[r] = l
		for _, v := range b.Vertices {
			if st.uf.Find(v) == r {
				ctx.SetValue(v, float64(l))
			}
		}
		for _, to := range st.crossOf[r] {
			ctx.Send(to, float64(l))
			ctx.AddWork(1)
		}
	}
}
