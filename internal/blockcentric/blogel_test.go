package blockcentric

import (
	"math"
	"testing"

	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/seq"
)

func TestBlockSSSPMatchesDijkstra(t *testing.T) {
	g := gen.ConnectedRandom(300, 900, 37)
	want := seq.Dijkstra(g, 0)
	for _, bpw := range []int{1, 4, 16} {
		got, stats, err := Run(g, SSSPBlock{Source: 0}, Config{Workers: 4, BlocksPerWorker: bpw})
		if err != nil {
			t.Fatal(err)
		}
		for v, d := range want {
			gv, ok := got[v]
			if !ok || math.Abs(gv-d) > 1e-9 {
				t.Fatalf("bpw=%d vertex %d: want %g got %g (ok=%v)", bpw, v, d, gv, ok)
			}
		}
		if stats.Supersteps < 2 {
			t.Fatalf("expected multiple supersteps, got %d", stats.Supersteps)
		}
	}
}

func TestBlockSSSPOnRoadGrid(t *testing.T) {
	g := gen.RoadGrid(20, 20, 3)
	want := seq.Dijkstra(g, 0)
	got, _, err := Run(g, SSSPBlock{Source: 0}, Config{Workers: 6, Strategy: partition.Range{}})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range want {
		if math.Abs(got[v]-d) > 1e-9 {
			t.Fatalf("vertex %d: want %g got %g", v, d, got[v])
		}
	}
}

func TestBlockCCMatchesSequential(t *testing.T) {
	g := gen.Random(150, 200, 41)
	want := seq.Components(g)
	got, _, err := Run(g.Symmetrized(), CCBlock{}, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range want {
		if graph.ID(got[v]) != c {
			t.Fatalf("vertex %d: want %d got %g", v, c, got[v])
		}
	}
}

func TestBlocksPartitionWorkerVertices(t *testing.T) {
	g := gen.RoadGrid(15, 15, 9)
	asg, err := (partition.Hash{}).Partition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	blocks := buildBlocks(g, asg, 4)
	seen := map[graph.ID]int{}
	for _, b := range blocks {
		if b.Worker < 0 || b.Worker >= 5 {
			t.Fatalf("block worker out of range: %d", b.Worker)
		}
		for _, v := range b.Vertices {
			seen[v]++
			if asg.Owner(v) != b.Worker {
				t.Fatalf("vertex %d in block of worker %d but owned by %d", v, b.Worker, asg.Owner(v))
			}
		}
	}
	if len(seen) != g.NumVertices() {
		t.Fatalf("blocks cover %d of %d vertices", len(seen), g.NumVertices())
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("vertex %d appears in %d blocks", v, n)
		}
	}
}

func TestBlockSuperstepsBetweenVertexAndGrape(t *testing.T) {
	// Structural expectation: block-centric needs far fewer supersteps than
	// the grid's hop diameter.
	g := gen.RoadGrid(24, 24, 1)
	_, stats, err := Run(g, SSSPBlock{Source: 0}, Config{Workers: 4, BlocksPerWorker: 4, Strategy: partition.Range{}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps >= 48 {
		t.Fatalf("block-centric should beat vertex-hop supersteps (48), got %d", stats.Supersteps)
	}
}
