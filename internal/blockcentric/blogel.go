// Package blockcentric implements the Blogel-style baseline of Table 1:
// "think like a block". Each worker's partition is split into connected
// blocks; a block program (B-compute) runs a sequential algorithm inside the
// block each superstep and exchanges vertex-addressed messages with other
// blocks. Blocks shrink the superstep count dramatically versus
// vertex-centric engines (one superstep per block-graph hop instead of per
// vertex hop) but still ship per-cross-edge messages and re-run block
// computations without GRAPE's coordinator-side aggregation or its
// contract of bounded incremental IncEval.
package blockcentric

import (
	"fmt"
	"sort"
	"time"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
)

// Block is one connected sub-block of a worker's partition.
type Block struct {
	ID       int
	Worker   int
	Vertices []graph.ID // sorted
	// Sub is the induced subgraph over the block's vertices plus their
	// out-edges (targets may be outside the block).
	Sub *graph.Graph
	// State is program-private block state persisted across supersteps.
	State any

	member map[graph.ID]bool
}

// Contains reports whether id belongs to the block.
func (b *Block) Contains(id graph.ID) bool { return b.member[id] }

// BCtx is the compute context of one block superstep.
type BCtx struct {
	step    int
	val     map[graph.ID]float64
	send    func(to graph.ID, v float64)
	workPtr *int64
}

// Superstep returns the current superstep.
func (c *BCtx) Superstep() int { return c.step }

// Value returns the current value of a vertex (any vertex; blocks read their
// own and write their own).
func (c *BCtx) Value(id graph.ID) (float64, bool) { v, ok := c.val[id]; return v, ok }

// SetValue updates a vertex value; callers only set vertices of their own
// block.
func (c *BCtx) SetValue(id graph.ID, v float64) { c.val[id] = v }

// Send delivers v to the block owning vertex `to` at the next superstep.
func (c *BCtx) Send(to graph.ID, v float64) { c.send(to, v) }

// AddWork charges n work units to the block's worker.
func (c *BCtx) AddWork(n int64) { *c.workPtr += n }

// Program is a block-centric program.
type Program interface {
	// Name identifies the program in stats.
	Name() string
	// InitBlock is B-compute at superstep 0.
	InitBlock(ctx *BCtx, b *Block)
	// ComputeBlock is B-compute on a block that received messages, keyed by
	// target vertex.
	ComputeBlock(ctx *BCtx, b *Block, msgs map[graph.ID][]float64)
}

// Config tunes a block-centric run.
type Config struct {
	Workers         int
	Strategy        partition.Strategy // worker-level partition; default hash
	BlocksPerWorker int                // target number of blocks per worker; default 8
	MaxSupersteps   int
	EngineName      string // default "blogel"
}

// Run executes the block-centric program and returns the vertex values.
func Run(g *graph.Graph, prog Program, cfg Config) (map[graph.ID]float64, *metrics.Stats, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Strategy == nil {
		cfg.Strategy = partition.Hash{}
	}
	if cfg.BlocksPerWorker == 0 {
		cfg.BlocksPerWorker = 8
	}
	if cfg.MaxSupersteps == 0 {
		cfg.MaxSupersteps = 1 << 20
	}
	name := cfg.EngineName
	if name == "" {
		name = "blogel"
	}
	start := time.Now()
	asg, err := cfg.Strategy.Partition(g, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	stats := &metrics.Stats{Engine: name + "/" + prog.Name(), Workers: cfg.Workers}

	blocks := buildBlocks(g, asg, cfg.BlocksPerWorker)
	blockOf := make(map[graph.ID]*Block, g.NumVertices())
	for _, b := range blocks {
		for _, v := range b.Vertices {
			blockOf[v] = b
		}
	}

	val := make(map[graph.ID]float64, g.NumVertices())
	inbox := make(map[int]map[graph.ID][]float64) // block ID -> vertex msgs
	work := make([]int64, cfg.Workers)

	const msgSize = 16
	runStep := func(step int, active []*Block, init bool) {
		for i := range work {
			work[i] = 0
		}
		type stagedMsg struct {
			to  graph.ID
			val float64
		}
		staged := make([][]stagedMsg, len(active))
		for i, b := range active {
			bi := i
			ctx := &BCtx{step: step, val: val, workPtr: &work[b.Worker]}
			ctx.send = func(to graph.ID, v float64) {
				staged[bi] = append(staged[bi], stagedMsg{to, v})
			}
			if init {
				prog.InitBlock(ctx, b)
			} else {
				prog.ComputeBlock(ctx, b, inbox[b.ID])
			}
		}
		var stepBytes int64
		next := make(map[int]map[graph.ID][]float64)
		for i, b := range active {
			for _, m := range staged[i] {
				tb, ok := blockOf[m.to]
				if !ok {
					continue
				}
				if tb.Worker != b.Worker {
					stats.Messages++
					stats.Bytes += msgSize
					stepBytes += msgSize
				}
				if next[tb.ID] == nil {
					next[tb.ID] = make(map[graph.ID][]float64)
				}
				next[tb.ID][m.to] = append(next[tb.ID][m.to], m.val)
			}
		}
		inbox = next
		stats.WorkPerStep = append(stats.WorkPerStep, append([]int64(nil), work...))
		stats.BytesPerStep = append(stats.BytesPerStep, stepBytes)
	}

	runStep(0, blocks, true)
	stats.Supersteps = 1
	for len(inbox) > 0 {
		if stats.Supersteps >= cfg.MaxSupersteps {
			return nil, stats, fmt.Errorf("blockcentric: superstep limit exceeded")
		}
		ids := make([]int, 0, len(inbox))
		for id := range inbox {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		active := make([]*Block, 0, len(ids))
		for _, id := range ids {
			active = append(active, blocks[id])
		}
		runStep(stats.Supersteps, active, false)
		stats.Supersteps++
	}
	stats.WallTime = time.Since(start)
	return val, stats, nil
}

// buildBlocks splits each worker's vertex set into connected blocks of
// roughly |part|/blocksPerWorker vertices by BFS region growing over the
// induced subgraph (Blogel's Voronoi-flavored block construction,
// simplified).
func buildBlocks(g *graph.Graph, asg *partition.Assignment, blocksPerWorker int) []*Block {
	parts := make([][]graph.ID, asg.N)
	for _, id := range g.SortedVertices() {
		w := asg.Owner(id)
		parts[w] = append(parts[w], id)
	}
	var blocks []*Block
	for w, ids := range parts {
		inPart := make(map[graph.ID]bool, len(ids))
		for _, id := range ids {
			inPart[id] = true
		}
		target := (len(ids) + blocksPerWorker - 1) / blocksPerWorker
		if target < 1 {
			target = 1
		}
		assigned := make(map[graph.ID]bool, len(ids))
		for _, seed := range ids {
			if assigned[seed] {
				continue
			}
			// BFS from seed within the partition, up to target vertices.
			b := &Block{ID: len(blocks), Worker: w, member: make(map[graph.ID]bool)}
			queue := []graph.ID{seed}
			assigned[seed] = true
			for len(queue) > 0 && len(b.Vertices) < target {
				u := queue[0]
				queue = queue[1:]
				b.Vertices = append(b.Vertices, u)
				b.member[u] = true
				for _, e := range g.Out(u) {
					if inPart[e.To] && !assigned[e.To] {
						assigned[e.To] = true
						queue = append(queue, e.To)
					}
				}
				for _, e := range g.In(u) {
					if inPart[e.To] && !assigned[e.To] {
						assigned[e.To] = true
						queue = append(queue, e.To)
					}
				}
			}
			// anything still queued goes back to the pool
			for _, u := range queue {
				assigned[u] = false
			}
			sort.Slice(b.Vertices, func(i, j int) bool { return b.Vertices[i] < b.Vertices[j] })
			// induced subgraph with out-edges (targets may leave the block)
			sub := graph.New()
			for _, u := range b.Vertices {
				sub.AddVertex(u, g.Label(u))
			}
			for _, u := range b.Vertices {
				for _, e := range g.Out(u) {
					sub.AddLabeledEdge(u, e.To, e.W, e.Label)
				}
			}
			b.Sub = sub
			blocks = append(blocks, b)
		}
	}
	return blocks
}
