// Package blockcentric implements the Blogel-style baseline of Table 1:
// "think like a block". Each worker's partition is split into connected
// blocks; a block program (B-compute) runs a sequential algorithm inside the
// block each superstep and exchanges vertex-addressed messages with other
// blocks. Blocks shrink the superstep count dramatically versus
// vertex-centric engines (one superstep per block-graph hop instead of per
// vertex hop) but still ship per-cross-edge messages and re-run block
// computations without GRAPE's coordinator-side aggregation or its
// contract of bounded incremental IncEval.
package blockcentric

import (
	"fmt"
	"sort"
	"time"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
)

// Block is one connected sub-block of a worker's partition.
type Block struct {
	ID       int
	Worker   int
	Vertices []graph.ID // sorted
	// Sub is the induced subgraph over the block's vertices plus their
	// out-edges (targets may be outside the block). It is frozen, and its
	// dense order starts with the members: the vertex at Sub dense index i <
	// len(Vertices) is Vertices[i]; later indices are out-of-block targets.
	Sub *graph.Graph
	// State is program-private block state persisted across supersteps.
	State any

	member map[graph.ID]bool
	gIdx   []int32 // parallel to Vertices: dense indices in the global graph
}

// Contains reports whether id belongs to the block.
func (b *Block) Contains(id graph.ID) bool { return b.member[id] }

// GlobalIndices returns, parallel to Vertices, the members' dense indices in
// the global graph — the handles BCtx.ValueAt/SetValueAt take. The caller
// must not mutate the returned slice.
func (b *Block) GlobalIndices() []int32 { return b.gIdx }

// BCtx is the compute context of one block superstep. Vertex values live in
// a flat array indexed by the global graph's dense vertex index; the
// ID-addressed accessors pay one index lookup, the At-accessors none.
type BCtx struct {
	step    int
	g       *graph.Graph
	val     []float64
	has     []bool
	send    func(to graph.ID, v float64)
	workPtr *int64
}

// Superstep returns the current superstep.
func (c *BCtx) Superstep() int { return c.step }

// Value returns the current value of a vertex (any vertex; blocks read their
// own and write their own).
func (c *BCtx) Value(id graph.ID) (float64, bool) {
	if i, ok := c.g.Index(id); ok && c.has[i] {
		return c.val[i], true
	}
	return 0, false
}

// SetValue updates a vertex value; callers only set vertices of their own
// block.
func (c *BCtx) SetValue(id graph.ID, v float64) {
	if i, ok := c.g.Index(id); ok {
		c.val[i] = v
		c.has[i] = true
	}
}

// ValueAt is Value addressed by the global graph's dense vertex index.
func (c *BCtx) ValueAt(i int32) (float64, bool) {
	if c.has[i] {
		return c.val[i], true
	}
	return 0, false
}

// SetValueAt is SetValue addressed by the global graph's dense vertex index.
func (c *BCtx) SetValueAt(i int32, v float64) {
	c.val[i] = v
	c.has[i] = true
}

// Send delivers v to the block owning vertex `to` at the next superstep.
func (c *BCtx) Send(to graph.ID, v float64) { c.send(to, v) }

// AddWork charges n work units to the block's worker.
func (c *BCtx) AddWork(n int64) { *c.workPtr += n }

// Program is a block-centric program.
type Program interface {
	// Name identifies the program in stats.
	Name() string
	// InitBlock is B-compute at superstep 0.
	InitBlock(ctx *BCtx, b *Block)
	// ComputeBlock is B-compute on a block that received messages, keyed by
	// target vertex.
	ComputeBlock(ctx *BCtx, b *Block, msgs map[graph.ID][]float64)
}

// Config tunes a block-centric run.
type Config struct {
	Workers         int
	Strategy        partition.Strategy // worker-level partition; default hash
	BlocksPerWorker int                // target number of blocks per worker; default 8
	MaxSupersteps   int
	EngineName      string // default "blogel"
}

// Run executes the block-centric program and returns the vertex values.
func Run(g *graph.Graph, prog Program, cfg Config) (map[graph.ID]float64, *metrics.Stats, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Strategy == nil {
		cfg.Strategy = partition.Hash{}
	}
	if cfg.BlocksPerWorker == 0 {
		cfg.BlocksPerWorker = 8
	}
	if cfg.MaxSupersteps == 0 {
		cfg.MaxSupersteps = 1 << 20
	}
	name := cfg.EngineName
	if name == "" {
		name = "blogel"
	}
	start := time.Now()
	asg, err := cfg.Strategy.Partition(g, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	stats := &metrics.Stats{Engine: name + "/" + prog.Name(), Workers: cfg.Workers}

	nv := g.NumVertices()
	blocks := buildBlocks(g, asg, cfg.BlocksPerWorker)
	blockAt := make([]int32, nv) // global dense index -> block ID
	for _, b := range blocks {
		for _, i := range b.gIdx {
			blockAt[i] = int32(b.ID)
		}
	}

	val := make([]float64, nv)
	has := make([]bool, nv)
	inbox := make(map[int]map[graph.ID][]float64) // block ID -> vertex msgs
	work := make([]int64, cfg.Workers)

	const msgSize = 16
	runStep := func(step int, active []*Block, init bool) {
		for i := range work {
			work[i] = 0
		}
		type stagedMsg struct {
			to  graph.ID
			val float64
		}
		staged := make([][]stagedMsg, len(active))
		for i, b := range active {
			bi := i
			ctx := &BCtx{step: step, g: g, val: val, has: has, workPtr: &work[b.Worker]}
			ctx.send = func(to graph.ID, v float64) {
				staged[bi] = append(staged[bi], stagedMsg{to, v})
			}
			if init {
				prog.InitBlock(ctx, b)
			} else {
				prog.ComputeBlock(ctx, b, inbox[b.ID])
			}
		}
		var stepBytes int64
		next := make(map[int]map[graph.ID][]float64)
		for i, b := range active {
			for _, m := range staged[i] {
				ti, ok := g.Index(m.to)
				if !ok {
					continue
				}
				tb := blocks[blockAt[ti]]
				if tb.Worker != b.Worker {
					stats.Messages++
					stats.Bytes += msgSize
					stepBytes += msgSize
				}
				if next[tb.ID] == nil {
					next[tb.ID] = make(map[graph.ID][]float64)
				}
				next[tb.ID][m.to] = append(next[tb.ID][m.to], m.val)
			}
		}
		inbox = next
		stats.WorkPerStep = append(stats.WorkPerStep, append([]int64(nil), work...))
		stats.BytesPerStep = append(stats.BytesPerStep, stepBytes)
	}

	runStep(0, blocks, true)
	stats.Supersteps = 1
	for len(inbox) > 0 {
		if stats.Supersteps >= cfg.MaxSupersteps {
			return nil, stats, fmt.Errorf("blockcentric: superstep limit exceeded")
		}
		ids := make([]int, 0, len(inbox))
		for id := range inbox {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		active := make([]*Block, 0, len(ids))
		for _, id := range ids {
			active = append(active, blocks[id])
		}
		runStep(stats.Supersteps, active, false)
		stats.Supersteps++
	}
	out := make(map[graph.ID]float64, nv)
	for i := 0; i < nv; i++ {
		if has[i] {
			out[g.IDAt(int32(i))] = val[i]
		}
	}
	stats.WallTime = time.Since(start)
	return out, stats, nil
}

// buildBlocks splits each worker's vertex set into connected blocks of
// roughly |part|/blocksPerWorker vertices by BFS region growing over the
// induced subgraph (Blogel's Voronoi-flavored block construction,
// simplified). The region growing runs over dense indices with flat visited
// arrays; each block's subgraph is frozen so B-compute traverses CSR.
func buildBlocks(g *graph.Graph, asg *partition.Assignment, blocksPerWorker int) []*Block {
	nv := g.NumVertices()
	frozen := g.Frozen()
	sortedIdx := g.SortedIndices()
	parts := make([][]int32, asg.N)
	for _, i := range sortedIdx {
		w := asg.OwnerAt(i)
		parts[w] = append(parts[w], i)
	}
	// neighbors visits u's undirected neighborhood as dense indices.
	neighbors := func(u int32, visit func(int32)) {
		if frozen {
			for _, e := range g.OutAt(u) {
				visit(e.To)
			}
			for _, e := range g.InAt(u) {
				visit(e.To)
			}
			return
		}
		id := g.IDAt(u)
		for _, e := range g.Out(id) {
			if i, ok := g.Index(e.To); ok {
				visit(i)
			}
		}
		for _, e := range g.In(id) {
			if i, ok := g.Index(e.To); ok {
				visit(i)
			}
		}
	}
	assigned := make([]bool, nv)
	var blocks []*Block
	for w, idxs := range parts {
		target := (len(idxs) + blocksPerWorker - 1) / blocksPerWorker
		if target < 1 {
			target = 1
		}
		for _, seed := range idxs {
			if assigned[seed] {
				continue
			}
			// BFS from seed within the partition, up to target vertices.
			b := &Block{ID: len(blocks), Worker: w, member: make(map[graph.ID]bool)}
			queue := []int32{seed}
			assigned[seed] = true
			for len(queue) > 0 && len(b.gIdx) < target {
				u := queue[0]
				queue = queue[1:]
				b.gIdx = append(b.gIdx, u)
				neighbors(u, func(t int32) {
					if asg.OwnerAt(t) == w && !assigned[t] {
						assigned[t] = true
						queue = append(queue, t)
					}
				})
			}
			// anything still queued goes back to the pool
			for _, u := range queue {
				assigned[u] = false
			}
			sort.Slice(b.gIdx, func(i, j int) bool { return g.IDAt(b.gIdx[i]) < g.IDAt(b.gIdx[j]) })
			b.Vertices = make([]graph.ID, len(b.gIdx))
			for i, u := range b.gIdx {
				id := g.IDAt(u)
				b.Vertices[i] = id
				b.member[id] = true
			}
			// induced subgraph with out-edges (targets may leave the block)
			if frozen && g.Directed() {
				bld := graph.NewSubgraphBuilder(g, 2*len(b.gIdx))
				for _, u := range b.gIdx {
					bld.AddVertex(u)
				}
				for _, u := range b.gIdx {
					for _, e := range g.OutAt(u) {
						if !bld.Has(e.To) {
							bld.AddVertex(e.To)
						}
						bld.AddEdge(u, e)
					}
				}
				b.Sub = bld.Finish()
			} else {
				sub := graph.New()
				for _, u := range b.Vertices {
					sub.AddVertex(u, g.Label(u))
				}
				for _, u := range b.Vertices {
					for _, e := range g.Out(u) {
						sub.AddLabeledEdge(u, e.To, e.W, e.Label)
					}
				}
				b.Sub = sub.Freeze()
			}
			blocks = append(blocks, b)
		}
	}
	return blocks
}
