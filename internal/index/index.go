// Package index implements GRAPE's Index Manager (Fig. 2): auxiliary
// structures loaded next to each fragment that sequential algorithms exploit
// directly — the paper's point (3), graph-level optimization, which is hard
// to express in vertex-centric systems. Two indices are provided: an
// inverted keyword index (property -> vertices) used by Keyword PEval, and a
// label index (vertex label -> vertices) used by SubIso/Sim candidate
// generation.
package index

import (
	"sort"

	"grape/internal/graph"
)

// Inverted maps each property string to the sorted vertices carrying it.
type Inverted struct {
	byKeyword map[string][]graph.ID
}

// BuildInverted scans g's vertex properties once and builds the index. A
// vertex carrying the same keyword multiple times is indexed once.
func BuildInverted(g *graph.Graph) *Inverted {
	ix := &Inverted{byKeyword: make(map[string][]graph.ID)}
	for _, v := range g.SortedVertices() {
		seen := map[string]bool{}
		for _, p := range g.Props(v) {
			if seen[p] {
				continue
			}
			seen[p] = true
			ix.byKeyword[p] = append(ix.byKeyword[p], v)
		}
	}
	return ix
}

// Lookup returns the vertices carrying keyword w (sorted, shared slice —
// callers must not mutate).
func (ix *Inverted) Lookup(w string) []graph.ID { return ix.byKeyword[w] }

// Keywords returns all indexed keywords, sorted.
func (ix *Inverted) Keywords() []string {
	ws := make([]string, 0, len(ix.byKeyword))
	for w := range ix.byKeyword {
		ws = append(ws, w)
	}
	sort.Strings(ws)
	return ws
}

// Labels maps each vertex label to the sorted vertices carrying it.
type Labels struct {
	byLabel map[string][]graph.ID
}

// BuildLabels scans g's vertex labels once and builds the index.
func BuildLabels(g *graph.Graph) *Labels {
	ix := &Labels{byLabel: make(map[string][]graph.ID)}
	for _, v := range g.SortedVertices() {
		ix.byLabel[g.Label(v)] = append(ix.byLabel[g.Label(v)], v)
	}
	return ix
}

// Lookup returns the vertices labeled l (sorted, shared slice — callers must
// not mutate).
func (ix *Labels) Lookup(l string) []graph.ID { return ix.byLabel[l] }

// Count returns how many vertices carry label l.
func (ix *Labels) Count(l string) int { return len(ix.byLabel[l]) }
