package index

import (
	"testing"

	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/seq"
)

func TestInvertedAgainstScan(t *testing.T) {
	g := gen.Random(300, 600, 5)
	vocab := []string{"a", "b", "c", "d"}
	gen.AttachKeywords(g, vocab, 2, 0.3, 5)
	ix := BuildInverted(g)
	for _, w := range vocab {
		var want []graph.ID
		for _, v := range g.SortedVertices() {
			if seq.HasKeyword(g, v, w) {
				want = append(want, v)
			}
		}
		got := ix.Lookup(w)
		if len(got) != len(want) {
			t.Fatalf("keyword %q: index %d vs scan %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("keyword %q: entry %d differs", w, i)
			}
		}
	}
	if ix.Lookup("absent") != nil {
		t.Fatal("absent keyword should return nil")
	}
}

func TestInvertedKeywordsSorted(t *testing.T) {
	g := graph.New()
	g.AddVertex(1, "")
	g.SetProps(1, []string{"zebra", "apple"})
	ix := BuildInverted(g)
	ws := ix.Keywords()
	if len(ws) != 2 || ws[0] != "apple" || ws[1] != "zebra" {
		t.Fatalf("keywords not sorted: %v", ws)
	}
}

func TestLabels(t *testing.T) {
	g := gen.SocialCommerce(gen.SocialCommerceConfig{People: 50, Products: 5, Follows: 2, AdoptP: 0.5, Seed: 1})
	ix := BuildLabels(g)
	if ix.Count(gen.LabelPerson) != 50 || ix.Count(gen.LabelProduct) != 5 {
		t.Fatalf("label counts wrong: %d people, %d products",
			ix.Count(gen.LabelPerson), ix.Count(gen.LabelProduct))
	}
	people := ix.Lookup(gen.LabelPerson)
	for i := 1; i < len(people); i++ {
		if people[i-1] >= people[i] {
			t.Fatal("label index not sorted")
		}
	}
	for _, p := range people {
		if g.Label(p) != gen.LabelPerson {
			t.Fatalf("vertex %d mislabeled in index", p)
		}
	}
}
