package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzSnapshotRoundTrip throws arbitrary bytes at the snapshot parser: it
// must never panic, and anything it does accept must be a valid graph. The
// corpus is seeded with real snapshots (and light mutations of them) so the
// fuzzer starts past the magic/CRC gates.
func FuzzSnapshotRoundTrip(f *testing.F) {
	dir := f.TempDir()
	for seed := int64(0); seed < 4; seed++ {
		for _, directed := range []bool{true, false} {
			g := testGraph(seed, directed).Freeze()
			path := filepath.Join(dir, "seed.grs")
			if _, err := WriteSnapshotFile(path, g, uint64(seed)); err != nil {
				f.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
			if len(data) > snapHeaderSize {
				flipped := append([]byte(nil), data...)
				flipped[snapHeaderSize+seedOffset(seed, len(flipped)-snapHeaderSize)] ^= 0x10
				f.Add(flipped)
				f.Add(data[:snapHeaderSize])
				f.Add(data[:len(data)-1])
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte("GRAPESNP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Parse from aligned memory, exactly as the plain-read path does —
		// fuzz inputs carry no alignment guarantee.
		buf := aligned8Buf(len(data))
		copy(buf, data)
		g, si, err := parseSnapshot(buf)
		if err != nil {
			return
		}
		defer si.Close()
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted snapshot decodes to invalid graph: %v", err)
		}
		// Round-trip: re-writing the accepted graph must succeed.
		p := filepath.Join(t.TempDir(), "rt.grs")
		if _, err := WriteSnapshotFile(p, g, si.Epoch); err != nil {
			t.Fatalf("rewriting accepted snapshot: %v", err)
		}
	})
}

func seedOffset(seed int64, span int) int64 {
	if span <= 0 {
		return 0
	}
	return (seed * 37) % int64(span)
}
