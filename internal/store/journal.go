package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"

	"grape/internal/engine"
	"grape/internal/graph"
)

// Journal file format (version 1) — the append-only mutation log paired with
// one snapshot:
//
//	offset  0  magic "GRAPEWAL" (8 bytes)
//	offset  8  u32 format version (1)
//	offset 12  u32 zero
//	offset 16  u64 base epoch (the paired snapshot's epoch)
//	offset 24  SHA-256 binding of the paired snapshot's header (32 bytes)
//	offset 56  records
//
// Each record is `uvarint payload length · payload · 32-byte chain hash`,
// where chain_i = SHA-256(chain_{i-1} ∥ payload_i) and chain_{-1} is the
// SHA-256 of the 56-byte header. The chain makes the log tamper-evident and
// truncation-detecting: flipping a byte of any record breaks every hash from
// that record on, and a torn tail fails to parse — in both cases recovery
// keeps the longest intact prefix and refuses the rest.
//
// The payload is the mutation batch in the engine's wire codecs: uvarint
// pre-mutation epoch, the program name and canonical query (length-prefixed),
// then the edge updates via engine.AppendEdgeUpdates. Records are fsync-ed
// before the session mutates, so every applied batch is on disk.

const (
	walMagic      = "GRAPEWAL"
	walVersion    = 1
	walHeaderSize = 8 + 4 + 4 + 8 + 32 // 56
	maxRecordLen  = 1 << 28
)

// Record is one journaled mutation batch. PreEpoch is the graph epoch the
// batch was applied against — replay asserts it, so a divergent replay fails
// loudly instead of landing on a silently different state.
type Record struct {
	PreEpoch uint64
	Program  string
	Query    string // canonical form; replay re-parses it
	Updates  []engine.EdgeUpdate
}

// AppendRecord appends the wire encoding of r to buf and returns the
// extended buffer.
func AppendRecord(buf []byte, r Record) []byte {
	buf = binary.AppendUvarint(buf, r.PreEpoch)
	buf = appendStr(buf, r.Program)
	buf = appendStr(buf, r.Query)
	return engine.AppendEdgeUpdates(buf, r.Updates)
}

// DecodeRecord decodes a record payload encoded by AppendRecord; the payload
// must be consumed exactly.
func DecodeRecord(data []byte) (Record, error) {
	var r Record
	pos := 0
	var err error
	if r.PreEpoch, err = graph.ReadUvarint(data, &pos); err != nil {
		return r, err
	}
	if r.Program, err = graph.ReadString(data, &pos); err != nil {
		return r, err
	}
	if r.Query, err = graph.ReadString(data, &pos); err != nil {
		return r, err
	}
	ups, used, err := engine.DecodeEdgeUpdates(data[pos:])
	if err != nil {
		return r, err
	}
	r.Updates = ups
	pos += used
	if pos != len(data) {
		return r, fmt.Errorf("store: %d trailing bytes in journal record", len(data)-pos)
	}
	return r, nil
}

// Damage describes a journal whose tail could not be trusted: a torn record
// (crash mid-append) or a broken hash chain (tampering, bit rot). Recovery
// keeps the Intact leading records and truncates the rest — the chain
// guarantees nothing past the first break is served.
type Damage struct {
	Reason string
	Intact int
}

func (d *Damage) Error() string {
	return fmt.Sprintf("store: journal damaged (%s); %d intact records retained", d.Reason, d.Intact)
}

// Journal is an open mutation log positioned for appending.
type Journal struct {
	f       *os.File
	path    string
	prev    [32]byte
	records int
	size    int64
}

func walHeader(baseEpoch uint64, binding [32]byte) []byte {
	h := make([]byte, walHeaderSize)
	copy(h, walMagic)
	binary.LittleEndian.PutUint32(h[8:], walVersion)
	binary.LittleEndian.PutUint64(h[16:], baseEpoch)
	copy(h[24:], binding[:])
	return h
}

// createJournal starts a fresh journal at path bound to the snapshot
// identified by (baseEpoch, binding), truncating anything already there.
func createJournal(path string, baseEpoch uint64, binding [32]byte) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	header := walHeader(baseEpoch, binding)
	if _, err := f.Write(header); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	syncParentDir(path)
	return &Journal{f: f, path: path, prev: sha256.Sum256(header), size: walHeaderSize}, nil
}

// openJournal opens an existing journal, verifies its pairing and its hash
// chain, and returns the intact records plus the journal positioned for
// appending. A file shorter than the header is the crash window between
// snapshot rename and journal creation — it is recreated empty. A damaged
// tail (torn record or broken chain) is reported via Damage and truncated,
// so later appends extend the intact chain.
func openJournal(path string, baseEpoch uint64, binding [32]byte) (*Journal, []Record, *Damage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			j, cerr := createJournal(path, baseEpoch, binding)
			return j, nil, nil, cerr
		}
		return nil, nil, nil, err
	}
	if len(data) < walHeaderSize {
		j, cerr := createJournal(path, baseEpoch, binding)
		return j, nil, nil, cerr
	}
	header := data[:walHeaderSize]
	if string(header[:8]) != walMagic {
		return nil, nil, nil, fmt.Errorf("store: journal %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(header[8:]); v != walVersion {
		return nil, nil, nil, fmt.Errorf("store: journal %s: unsupported version %d", path, v)
	}
	if got := binary.LittleEndian.Uint64(header[16:]); got != baseEpoch {
		return nil, nil, nil, fmt.Errorf("store: journal %s: based on epoch %d, snapshot is %d", path, got, baseEpoch)
	}
	if !bytesEqual32(header[24:], binding) {
		return nil, nil, nil, fmt.Errorf("store: journal %s: bound to a different snapshot", path)
	}

	prev := sha256.Sum256(header)
	var recs []Record
	var damage *Damage
	pos := walHeaderSize
	intactEnd := pos
	for pos < len(data) {
		n, used := binary.Uvarint(data[pos:])
		if used <= 0 || n > maxRecordLen {
			damage = &Damage{Reason: "torn record length", Intact: len(recs)}
			break
		}
		body := pos + used
		if uint64(len(data)-body) < n+32 {
			damage = &Damage{Reason: "truncated record", Intact: len(recs)}
			break
		}
		payload := data[body : body+int(n)]
		h := sha256.New()
		h.Write(prev[:])
		h.Write(payload)
		var chain [32]byte
		h.Sum(chain[:0])
		if !bytesEqual32(data[body+int(n):body+int(n)+32], chain) {
			damage = &Damage{Reason: "broken hash chain", Intact: len(recs)}
			break
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			damage = &Damage{Reason: fmt.Sprintf("undecodable record: %v", err), Intact: len(recs)}
			break
		}
		recs = append(recs, rec)
		prev = chain
		pos = body + int(n) + 32
		intactEnd = pos
	}

	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	if damage != nil {
		// Refuse the broken suffix: cut the file back to the intact prefix so
		// the on-disk chain matches what was recovered and future appends
		// extend it.
		if err := f.Truncate(int64(intactEnd)); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
	}
	if _, err := f.Seek(int64(intactEnd), 0); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return &Journal{f: f, path: path, prev: prev, records: len(recs), size: int64(intactEnd)}, recs, damage, nil
}

// Append encodes r, extends the hash chain, writes the record and fsyncs it.
// It returns only after the record is durable — callers mutate state after.
func (j *Journal) Append(r Record) error {
	payload := AppendRecord(nil, r)
	if len(payload) > maxRecordLen {
		return fmt.Errorf("store: journal record of %d bytes exceeds the %d cap", len(payload), maxRecordLen)
	}
	h := sha256.New()
	h.Write(j.prev[:])
	h.Write(payload)
	var chain [32]byte
	h.Sum(chain[:0])
	buf := binary.AppendUvarint(nil, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = append(buf, chain[:]...)
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("store: appending to journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing journal %s: %w", j.path, err)
	}
	j.prev = chain
	j.records++
	j.size += int64(len(buf))
	return nil
}

// Records returns the number of records in the journal.
func (j *Journal) Records() int { return j.records }

// Size returns the journal file size in bytes (header included).
func (j *Journal) Size() int64 { return j.size }

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

func bytesEqual32(b []byte, want [32]byte) bool {
	if len(b) < 32 {
		return false
	}
	var got [32]byte
	copy(got[:], b)
	return got == want
}
