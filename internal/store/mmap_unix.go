//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapSupported selects the zero-copy open path on unix-like platforms.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and returns the mapping plus its
// unmap function. A zero-size file cannot be mapped; callers reject those
// earlier (a snapshot is never empty — the header alone is 224 bytes).
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
