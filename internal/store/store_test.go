package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/partition"
)

func testGraph(seed int64, directed bool) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var g *graph.Graph
	if directed {
		g = graph.New()
	} else {
		g = graph.NewUndirected()
	}
	nv := 5 + rng.Intn(40)
	vlabels := []string{"", "a", "b", "person"}
	elabels := []string{"", "x", "follows"}
	ids := make([]graph.ID, 0, nv)
	for i := 0; i < nv; i++ {
		id := graph.ID(rng.Intn(500))
		g.AddVertex(id, vlabels[rng.Intn(len(vlabels))])
		ids = append(ids, id)
		if rng.Intn(4) == 0 {
			g.SetProps(id, []string{"k", "w"}[:1+rng.Intn(2)])
		}
	}
	ne := rng.Intn(120)
	for i := 0; i < ne; i++ {
		u, v := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		g.AddLabeledEdge(u, v, float64(rng.Intn(8))+0.5, elabels[rng.Intn(len(elabels))])
	}
	return g
}

// assertSameGraph compares two graphs through the canonical wire encoding,
// which covers vertex set, labels, props, and the full edge multiset.
func assertSameGraph(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("recovered graph invalid: %v", err)
	}
	wb := graph.AppendGraph(nil, want)
	gb := graph.AppendGraph(nil, got)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("graphs differ: wire encodings %d vs %d bytes", len(wb), len(gb))
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		for _, directed := range []bool{true, false} {
			g := testGraph(seed, directed).Freeze()
			path := filepath.Join(t.TempDir(), "g.grs")
			epoch := uint64(seed) + 3
			if _, err := WriteSnapshotFile(path, g, epoch); err != nil {
				t.Fatalf("seed %d: write: %v", seed, err)
			}

			rg, rsi, err := ReadSnapshotFile(path)
			if err != nil {
				t.Fatalf("seed %d: read: %v", seed, err)
			}
			if rsi.Epoch != epoch {
				t.Fatalf("seed %d: read epoch %d, want %d", seed, rsi.Epoch, epoch)
			}
			assertSameGraph(t, g, rg)
			rsi.Close()

			if mmapSupported && aliasOK() {
				mg, msi, err := MapSnapshotFile(path)
				if err != nil {
					t.Fatalf("seed %d: map: %v", seed, err)
				}
				if !msi.Mapped {
					t.Fatalf("seed %d: MapSnapshotFile not mapped", seed)
				}
				assertSameGraph(t, g, mg)
				// Mutating the mapped graph must thaw into heap memory, not
				// write through the read-only mapping.
				mg.AddVertex(graph.ID(99999), "fresh")
				msi.Close()
			}
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	g := testGraph(7, true).Freeze()
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.grs"), filepath.Join(dir, "b.grs")
	b1, err := WriteSnapshotFile(p1, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := WriteSnapshotFile(p2, g, 42)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("bindings differ across identical writes")
	}
	d1, _ := os.ReadFile(p1)
	d2, _ := os.ReadFile(p2)
	if !bytes.Equal(d1, d2) {
		t.Fatal("snapshot bytes differ across identical writes")
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	g := testGraph(3, true).Freeze()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.grs")
	if _, err := WriteSnapshotFile(path, g, 1); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte at a spread of offsets across the whole file; every
	// flip must be caught by the header or a section checksum.
	for off := 0; off < len(orig); off += 1 + len(orig)/97 {
		bad := append([]byte(nil), orig...)
		bad[off] ^= 0x40
		p := filepath.Join(dir, "bad.grs")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, si, err := ReadSnapshotFile(p); err == nil {
			si.Close()
			t.Fatalf("flip at offset %d not detected", off)
		}
	}
	// Truncation at any length must also fail.
	for _, cut := range []int{0, 1, snapHeaderSize - 1, snapHeaderSize, len(orig) / 2, len(orig) - 1} {
		p := filepath.Join(dir, "cut.grs")
		if err := os.WriteFile(p, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, si, err := ReadSnapshotFile(p); err == nil {
			si.Close()
			t.Fatalf("truncation to %d bytes not detected", cut)
		}
	}
}

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			PreEpoch: uint64(i) + 1,
			Program:  "sssp",
			Query:    fmt.Sprintf("sssp src=%d", i),
			Updates: []engine.EdgeUpdate{
				{From: graph.ID(i), To: graph.ID(i + 1), W: 1.5, Label: "x"},
				{From: graph.ID(i + 1), To: graph.ID(i), W: 2, Del: true},
			},
		}
	}
	return recs
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(AppendRecord(nil, a[i]), AppendRecord(nil, b[i])) {
			return false
		}
	}
	return true
}

func TestJournalAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.grj")
	binding := [32]byte{1, 2, 3}
	j, err := createJournal(path, 5, binding)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(7)
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, got, damage, err := openJournal(path, 5, binding)
	if err != nil {
		t.Fatal(err)
	}
	if damage != nil {
		t.Fatalf("unexpected damage: %v", damage)
	}
	if !sameRecords(recs, got) {
		t.Fatal("records changed across reopen")
	}
	// Appending after reopen extends the same chain.
	extra := Record{PreEpoch: 99, Program: "cc", Query: "cc"}
	if err := j2.Append(extra); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, got, damage, err = openJournal(path, 5, binding)
	if err != nil || damage != nil {
		t.Fatalf("reopen after append: %v %v", err, damage)
	}
	if !sameRecords(append(append([]Record(nil), recs...), extra), got) {
		t.Fatal("appended record lost")
	}

	// A journal bound to a different snapshot must be refused outright.
	other := [32]byte{9}
	if _, _, _, err := openJournal(path, 5, other); err == nil {
		t.Fatal("mismatched binding accepted")
	}
	if _, _, _, err := openJournal(path, 6, binding); err == nil {
		t.Fatal("mismatched base epoch accepted")
	}
}

// TestJournalTruncateEveryByte is the torture test: for every possible
// truncation point, recovery must land on exactly the records whose bytes
// (and chain hash) fully survived, and never more.
func TestJournalTruncateEveryByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.grj")
	binding := [32]byte{0xaa}
	j, err := createJournal(path, 1, binding)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(5)
	// Record the file size after each append: boundaries[i] = size with i
	// records fully on disk.
	boundaries := []int64{j.Size()}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, j.Size())
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	intactAt := func(cut int64) int {
		n := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				n = i
			}
		}
		return n
	}

	tp := filepath.Join(dir, "cut.grj")
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		if err := os.WriteFile(tp, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, got, damage, err := openJournal(tp, 1, binding)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		j2.Close()
		if cut < walHeaderSize {
			// Short header: the crash window between snapshot rename and
			// journal creation — recreated empty.
			if len(got) != 0 || damage != nil {
				t.Fatalf("cut %d: want empty recreate, got %d records damage=%v", cut, len(got), damage)
			}
			continue
		}
		want := intactAt(cut)
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		if !sameRecords(recs[:want], got) {
			t.Fatalf("cut %d: recovered records differ", cut)
		}
		wantDamage := cut != boundaries[want]
		if (damage != nil) != wantDamage {
			t.Fatalf("cut %d: damage=%v, want damaged=%v", cut, damage, wantDamage)
		}
		// After recovery the file must be truncated to the intact prefix and
		// appendable.
		if fi, _ := os.Stat(tp); fi.Size() != boundaries[want] {
			t.Fatalf("cut %d: file not truncated to intact prefix: %d != %d", cut, fi.Size(), boundaries[want])
		}
	}
}

// TestJournalTamper flips bits through the record region and checks the
// chain refuses everything from the damaged record on.
func TestJournalTamper(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.grj")
	binding := [32]byte{0xbb}
	j, err := createJournal(path, 2, binding)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(4)
	boundaries := []int64{j.Size()}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, j.Size())
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	recordOf := func(off int64) int {
		for i := 1; i < len(boundaries); i++ {
			if off < boundaries[i] {
				return i - 1
			}
		}
		return len(recs)
	}

	tp := filepath.Join(dir, "tampered.grj")
	for off := int64(walHeaderSize); off < int64(len(full)); off++ {
		bad := append([]byte(nil), full...)
		bad[off] ^= 0x01
		if err := os.WriteFile(tp, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, got, damage, err := openJournal(tp, 2, binding)
		if err != nil {
			t.Fatalf("tamper at %d: %v", off, err)
		}
		j2.Close()
		want := recordOf(off)
		if len(got) > want {
			t.Fatalf("tamper at %d: served %d records past the break (want ≤ %d)", off, len(got), want)
		}
		if damage == nil {
			t.Fatalf("tamper at %d: no damage reported", off)
		}
		if !sameRecords(recs[:len(got)], got) {
			t.Fatalf("tamper at %d: recovered records differ", off)
		}
	}

	// Tampering with the header itself must be a hard refusal, not recovery.
	for _, off := range []int64{0, 9, 20, 30, 50} {
		bad := append([]byte(nil), full...)
		bad[off] ^= 0x01
		if err := os.WriteFile(tp, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if j2, _, _, err := openJournal(tp, 2, binding); err == nil {
			j2.Close()
			t.Fatalf("header tamper at %d accepted", off)
		}
	}
}

func TestStoreCreateOpenCompact(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := s.Graph("social")
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(11, true).Freeze()
	if err := gs.Create(g, 1); err != nil {
		t.Fatal(err)
	}
	recs := testRecords(3)
	for _, r := range recs {
		if err := gs.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st := gs.Stats()
	if st.SnapshotEpoch != 1 || st.JournalRecords != 3 {
		t.Fatalf("stats = %+v", st)
	}
	gs.Close()

	names, err := s.List()
	if err != nil || len(names) != 1 || names[0] != "social" {
		t.Fatalf("List = %v, %v", names, err)
	}

	gs2, err := s.Graph("social")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := gs2.Open()
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotEpoch != 1 || rec.Damage != nil {
		t.Fatalf("recovered epoch %d damage %v", rec.SnapshotEpoch, rec.Damage)
	}
	assertSameGraph(t, g, rec.Graph)
	if !sameRecords(recs, rec.Records) {
		t.Fatal("journal records changed across restart")
	}

	// Compact at a later epoch: journal resets, old pair is collected.
	g2 := testGraph(12, true).Freeze()
	if err := gs2.Compact(g2, 4); err != nil {
		t.Fatal(err)
	}
	st = gs2.Stats()
	if st.SnapshotEpoch != 4 || st.JournalRecords != 0 {
		t.Fatalf("post-compact stats = %+v", st)
	}
	if _, err := os.Stat(gs2.snapPath(1)); !os.IsNotExist(err) {
		t.Fatal("old snapshot not collected")
	}
	if _, err := os.Stat(gs2.walPath(1)); !os.IsNotExist(err) {
		t.Fatal("old journal not collected")
	}
	gs2.Close()

	gs3, _ := s.Graph("social")
	rec, err = gs3.Open()
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotEpoch != 4 || len(rec.Records) != 0 {
		t.Fatalf("post-compact recovery: epoch %d, %d records", rec.SnapshotEpoch, len(rec.Records))
	}
	assertSameGraph(t, g2, rec.Graph)
	gs3.Close()
}

// TestStoreTornCompaction simulates a crash between writing the new pair and
// deleting the old one: both pairs on disk, startup must pick the newer.
// Then it corrupts the newer snapshot and checks startup falls back to the
// older pair.
func TestStoreTornCompaction(t *testing.T) {
	root := t.TempDir()
	s, _ := Open(root)
	gs, _ := s.Graph("g")
	g1 := testGraph(21, false).Freeze()
	if err := gs.Create(g1, 2); err != nil {
		t.Fatal(err)
	}
	gs.Close()

	// Hand-write a newer pair alongside, as a torn compaction would leave.
	g2 := testGraph(22, false).Freeze()
	binding, err := WriteSnapshotFile(gs.snapPath(9), g2, 9)
	if err != nil {
		t.Fatal(err)
	}
	j, err := createJournal(gs.walPath(9), 9, binding)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	gsA, _ := s.Graph("g")
	rec, err := gsA.Open()
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotEpoch != 9 {
		t.Fatalf("picked epoch %d, want 9", rec.SnapshotEpoch)
	}
	assertSameGraph(t, g2, rec.Graph)
	gsA.Close()
	if _, err := os.Stat(gsA.snapPath(2)); !os.IsNotExist(err) {
		t.Fatal("superseded pair not collected")
	}

	// Corrupt the surviving snapshot: with no older fallback left, open
	// must refuse rather than serve damaged data.
	data, _ := os.ReadFile(gsA.snapPath(9))
	data[len(data)/2] ^= 0xff
	os.WriteFile(gsA.snapPath(9), data, 0o644)
	gsB, _ := s.Graph("g")
	if _, err := gsB.Open(); err == nil {
		t.Fatal("corrupt sole snapshot accepted")
	}
}

func TestStoreOpenEmpty(t *testing.T) {
	s, _ := Open(t.TempDir())
	gs, _ := s.Graph("nothing")
	if _, err := gs.Open(); err != ErrNoSnapshot {
		t.Fatalf("Open on empty dir: %v, want ErrNoSnapshot", err)
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	s, _ := Open(t.TempDir())
	gs, _ := s.Graph("g")
	g := testGraph(31, true).Freeze()
	if err := gs.Create(g, 1); err != nil {
		t.Fatal(err)
	}
	strat, err := partition.ByName("hash")
	if err != nil {
		t.Fatal(err)
	}
	a, err := strat.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.SaveLayout(a, 1, "hash", 4, 2); err != nil {
		t.Fatal(err)
	}
	got, err := gs.LoadLayout(g, 1, "hash", 4, 2)
	if err != nil || got == nil {
		t.Fatalf("LoadLayout: %v %v", got, err)
	}
	for i := int32(0); i < int32(g.NumVertices()); i++ {
		if a.OwnerAt(i) != got.OwnerAt(i) {
			t.Fatalf("owner[%d] = %d, want %d", i, got.OwnerAt(i), a.OwnerAt(i))
		}
	}
	// Wrong key or epoch: a silent miss, never a wrong cut.
	if miss, err := gs.LoadLayout(g, 2, "hash", 4, 2); miss != nil || err != nil {
		t.Fatalf("epoch miss: %v %v", miss, err)
	}
	if miss, err := gs.LoadLayout(g, 1, "hash", 5, 2); miss != nil || err != nil {
		t.Fatalf("key miss: %v %v", miss, err)
	}
	// Corrupt the layout file: load must miss (and recompute), not error.
	path := gs.layoutPath(1, "hash", 4, 2)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)
	if miss, err := gs.LoadLayout(g, 1, "hash", 4, 2); miss != nil || err != nil {
		t.Fatalf("corrupt layout served: %v %v", miss, err)
	}
	gs.Close()
}

func TestGraphNameValidation(t *testing.T) {
	s, _ := Open(t.TempDir())
	for _, bad := range []string{"", "..", "../x", "a/b", ".hidden", "a b", "x\x00y"} {
		if _, err := s.Graph(bad); err == nil {
			t.Fatalf("name %q accepted", bad)
		}
	}
	for _, good := range []string{"g", "social-2024", "A_b.c"} {
		if _, err := s.Graph(good); err != nil {
			t.Fatalf("name %q rejected: %v", good, err)
		}
	}
}
