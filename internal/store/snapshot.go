package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"grape/internal/graph"
)

// Snapshot file format (version 1) — a frozen CSR graph laid out so the
// fixed-width arrays can be mmap-ed and served zero-copy:
//
//	offset   0  magic "GRAPESNP" (8 bytes)
//	offset   8  u32 format version (1)
//	offset  12  u32 flags (bit 0: directed)
//	offset  16  u64 epoch
//	offset  24  u64 |V|
//	offset  32  u64 packed edge count (len of outDense; both directions for
//	            undirected graphs)
//	offset  40  u64 |E| (logical; undirected edges count once)
//	offset  48  section table: 7 entries × {u64 offset, u64 length, u32 CRC32C,
//	            u32 zero} for ids, vlab, outOff, outDense, inOff, inDense, strs
//	offset 216  u32 CRC32C of bytes [0, 216)
//	offset 220  u32 zero
//	offset 224  sections, each starting 8-aligned (zero padding between)
//
// All fixed-width integers are little-endian. Sections ids (int64), vlab
// (int32), outOff (int32, |V|+1 entries), outDense/inDense (16-byte packed
// edges: u32 dense target, u32 interned label, f64 weight) and inOff mirror
// the graph package's frozen arrays exactly; inOff/inDense are empty for
// undirected graphs. The strs section holds everything string-shaped —
// the label-intern table and vertex properties — uvarint-encoded; it is
// reconstructed on the heap at open (strings cannot alias a mapping).
//
// The snapshot's identity is the SHA-256 of its 224-byte header (the section
// CRCs bind the content), used by the journal to pair a WAL with exactly one
// snapshot.

const (
	snapMagic      = "GRAPESNP"
	snapVersion    = 1
	snapFlagDir    = 1
	snapSections   = 7
	snapHeaderSize = 8 + 4 + 4 + 8 + 8 + 8 + 8 + snapSections*24 + 8 // 224
	maxSectionLen  = 1 << 34
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SnapshotInfo describes an opened snapshot. Close releases the file mapping
// backing a mapped graph — call it only after every reference to the graph
// (clones included: they share the CSR arrays) is gone. A server that served
// the graph keeps the mapping for the process lifetime instead.
type SnapshotInfo struct {
	Epoch   uint64
	Mapped  bool
	Binding [32]byte // SHA-256 of the header; pairs the journal to this snapshot
	close   func() error
}

// Close releases the resources behind the snapshot (the mapping, if mapped).
func (si *SnapshotInfo) Close() error {
	if si == nil || si.close == nil {
		return nil
	}
	c := si.close
	si.close = nil
	return c()
}

type snapSection struct {
	off, n uint64
	crc    uint32
}

// WriteSnapshotFile writes a snapshot of the frozen graph g at epoch to path
// atomically (tmp file + fsync + rename + directory fsync) and returns the
// snapshot's binding hash. The encoding is deterministic: the same graph and
// epoch produce byte-identical files.
func WriteSnapshotFile(path string, g *graph.Graph, epoch uint64) ([32]byte, error) {
	var binding [32]byte
	d, err := g.CSRView()
	if err != nil {
		return binding, fmt.Errorf("store: snapshot: %w", err)
	}
	strs := appendStrs(nil, d)
	secs := [snapSections][]byte{
		rawIDs(d.IDs),
		rawInt32s(d.VLabels),
		rawInt32s(d.OutOff),
		rawDense(d.OutDense),
		rawInt32s(d.InOff),
		rawDense(d.InDense),
		strs,
	}

	header := make([]byte, snapHeaderSize)
	copy(header, snapMagic)
	le := binary.LittleEndian
	le.PutUint32(header[8:], snapVersion)
	if d.Directed {
		le.PutUint32(header[12:], snapFlagDir)
	}
	le.PutUint64(header[16:], epoch)
	le.PutUint64(header[24:], uint64(len(d.IDs)))
	le.PutUint64(header[32:], uint64(len(d.OutDense)))
	le.PutUint64(header[40:], uint64(d.NumEdges))
	off := uint64(snapHeaderSize)
	for i, sec := range secs {
		off = align8(off)
		e := 48 + i*24
		le.PutUint64(header[e:], off)
		le.PutUint64(header[e+8:], uint64(len(sec)))
		le.PutUint32(header[e+16:], crc32.Checksum(sec, castagnoli))
		off += uint64(len(sec))
	}
	le.PutUint32(header[snapHeaderSize-8:], crc32.Checksum(header[:snapHeaderSize-8], castagnoli))
	binding = sha256.Sum256(header)

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return binding, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	written := uint64(0)
	write := func(b []byte) {
		if err == nil {
			var n int
			n, err = w.Write(b)
			written += uint64(n)
		}
	}
	write(header)
	var pad [8]byte
	for _, sec := range secs {
		if p := align8(written) - written; p > 0 {
			write(pad[:p])
		}
		write(sec)
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return binding, fmt.Errorf("store: writing snapshot %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return binding, err
	}
	syncParentDir(path)
	return binding, nil
}

// ReadSnapshotFile loads a snapshot with a plain read — the fallback path for
// platforms without mmap, and the "load into private memory" option. The
// buffer is allocated 8-aligned so the same zero-copy array views are used.
func ReadSnapshotFile(path string) (*graph.Graph, *SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	data := aligned8Buf(int(st.Size()))
	if _, err := readFull(f, data); err != nil {
		return nil, nil, fmt.Errorf("store: reading snapshot %s: %w", path, err)
	}
	g, si, err := parseSnapshot(data)
	if err != nil {
		return nil, nil, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	return g, si, nil
}

// OpenSnapshotFile opens a snapshot for serving: mmap-ed zero-copy where the
// platform supports it (the graph's CSR arrays alias the mapping), a plain
// read otherwise. Callers must keep the returned SnapshotInfo alive as long
// as the graph (or any clone of it) is in use.
func OpenSnapshotFile(path string) (*graph.Graph, *SnapshotInfo, error) {
	if !mmapSupported || !aliasOK() {
		return ReadSnapshotFile(path)
	}
	g, si, err := MapSnapshotFile(path)
	if err != nil {
		// A mapping failure (resource limits, odd filesystem) is not a corrupt
		// snapshot; fall back to the plain read before giving up.
		return ReadSnapshotFile(path)
	}
	return g, si, err
}

// MapSnapshotFile opens a snapshot via mmap. The returned graph's fixed-width
// CSR arrays alias the read-only mapping; SnapshotInfo.Close unmaps it.
func MapSnapshotFile(path string) (*graph.Graph, *SnapshotInfo, error) {
	if !mmapSupported {
		return nil, nil, fmt.Errorf("store: mmap not supported on this platform")
	}
	if !aliasOK() {
		return nil, nil, fmt.Errorf("store: host layout cannot alias snapshot sections")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	data, unmap, err := mmapFile(f, int(st.Size()))
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	g, si, err := parseSnapshot(data)
	if err != nil {
		unmap()
		return nil, nil, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	si.Mapped = true
	si.close = unmap
	return g, si, nil
}

// parseSnapshot validates and decodes a whole snapshot image. When the host
// can alias (little-endian, packed edge layout), the fixed-width arrays are
// zero-copy views into data; otherwise they are decoded into fresh memory.
// Every section is CRC-checked before anything dereferences it, so a corrupt
// or truncated file errors instead of panicking.
func parseSnapshot(data []byte) (*graph.Graph, *SnapshotInfo, error) {
	if len(data) < snapHeaderSize {
		return nil, nil, fmt.Errorf("short header: %d bytes", len(data))
	}
	header := data[:snapHeaderSize]
	if string(header[:8]) != snapMagic {
		return nil, nil, fmt.Errorf("bad magic")
	}
	le := binary.LittleEndian
	if v := le.Uint32(header[8:]); v != snapVersion {
		return nil, nil, fmt.Errorf("unsupported format version %d", v)
	}
	if got, want := crc32.Checksum(header[:snapHeaderSize-8], castagnoli), le.Uint32(header[snapHeaderSize-8:]); got != want {
		return nil, nil, fmt.Errorf("header checksum mismatch")
	}
	directed := le.Uint32(header[12:])&snapFlagDir != 0
	epoch := le.Uint64(header[16:])
	nv := le.Uint64(header[24:])
	nd := le.Uint64(header[32:])
	ne := le.Uint64(header[40:])
	if nv > 1<<31-2 || nd > 1<<31-1 || ne > nd {
		return nil, nil, fmt.Errorf("implausible counts |V|=%d packed=%d |E|=%d", nv, nd, ne)
	}
	var secs [snapSections]snapSection
	for i := range secs {
		e := 48 + i*24
		secs[i] = snapSection{off: le.Uint64(header[e:]), n: le.Uint64(header[e+8:]), crc: le.Uint32(header[e+16:])}
		s := secs[i]
		if s.n > maxSectionLen || s.off%8 != 0 || s.off > uint64(len(data)) || s.n > uint64(len(data))-s.off {
			return nil, nil, fmt.Errorf("section %d out of bounds (off=%d len=%d file=%d)", i, s.off, s.n, len(data))
		}
	}
	want := [snapSections]uint64{nv * 8, nv * 4, (nv + 1) * 4, nd * 16, (nv + 1) * 4, nd * 16, secs[6].n}
	if !directed {
		want[4], want[5] = 0, 0
	}
	for i, s := range secs {
		if s.n != want[i] {
			return nil, nil, fmt.Errorf("section %d is %d bytes, want %d", i, s.n, want[i])
		}
	}
	sec := func(i int) ([]byte, error) {
		s := secs[i]
		b := data[s.off : s.off+s.n]
		if crc32.Checksum(b, castagnoli) != s.crc {
			return nil, fmt.Errorf("section %d checksum mismatch", i)
		}
		return b, nil
	}
	var raw [snapSections][]byte
	for i := range raw {
		b, err := sec(i)
		if err != nil {
			return nil, nil, err
		}
		raw[i] = b
	}
	labels, props, err := parseStrs(raw[6], int(nv))
	if err != nil {
		return nil, nil, err
	}
	d := graph.CSRData{
		Directed: directed,
		NumEdges: int(ne),
		IDs:      viewIDs(raw[0]),
		VLabels:  viewInt32s(raw[1]),
		OutOff:   viewInt32s(raw[2]),
		OutDense: viewDense(raw[3]),
		InOff:    viewInt32s(raw[4]),
		InDense:  viewDense(raw[5]),
		Labels:   labels,
		Props:    props,
	}
	g, err := graph.FromMapped(d)
	if err != nil {
		return nil, nil, err
	}
	si := &SnapshotInfo{Epoch: epoch}
	si.Binding = sha256.Sum256(header)
	return g, si, nil
}

// appendStrs appends the string-shaped section: the label-intern table, then
// the sparse property entries (uvarint dense index, uvarint count, strings).
func appendStrs(buf []byte, d graph.CSRData) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.Labels)))
	for _, s := range d.Labels {
		buf = appendStr(buf, s)
	}
	entries := 0
	for _, ps := range d.Props {
		if len(ps) > 0 {
			entries++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(entries))
	for i, ps := range d.Props {
		if len(ps) == 0 {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(i))
		buf = binary.AppendUvarint(buf, uint64(len(ps)))
		for _, p := range ps {
			buf = appendStr(buf, p)
		}
	}
	return buf
}

func parseStrs(data []byte, nv int) (labels []string, props [][]string, err error) {
	pos := 0
	nl, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return nil, nil, err
	}
	if nl > uint64(len(data)) {
		return nil, nil, fmt.Errorf("implausible label count %d", nl)
	}
	labels = make([]string, nl)
	for i := range labels {
		if labels[i], err = graph.ReadString(data, &pos); err != nil {
			return nil, nil, err
		}
	}
	entries, err := graph.ReadUvarint(data, &pos)
	if err != nil {
		return nil, nil, err
	}
	if entries > 0 {
		props = make([][]string, nv)
		for e := uint64(0); e < entries; e++ {
			idx, err := graph.ReadUvarint(data, &pos)
			if err != nil {
				return nil, nil, err
			}
			if idx >= uint64(nv) {
				return nil, nil, fmt.Errorf("property entry for vertex %d of %d", idx, nv)
			}
			np, err := graph.ReadUvarint(data, &pos)
			if err != nil {
				return nil, nil, err
			}
			if np > uint64(len(data)) {
				return nil, nil, fmt.Errorf("implausible property count %d", np)
			}
			ps := make([]string, np)
			for j := range ps {
				if ps[j], err = graph.ReadString(data, &pos); err != nil {
					return nil, nil, err
				}
			}
			props[idx] = ps
		}
	}
	if pos != len(data) {
		return nil, nil, fmt.Errorf("%d trailing bytes in string section", len(data)-pos)
	}
	return labels, props, nil
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func align8(v uint64) uint64 { return (v + 7) &^ 7 }
