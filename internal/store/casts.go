package store

import (
	"encoding/binary"
	"io"
	"math"
	"unsafe"

	"grape/internal/graph"
)

// Zero-copy views between the snapshot's on-disk section bytes and the typed
// CSR slices. The file format is little-endian with 16-byte packed edges
// (u32 target, u32 label, f64 weight at offsets 0/4/8); when the host memory
// layout matches — little-endian, and graph.DenseEdge packed exactly like
// that — sections alias memory directly via unsafe.Slice, in both directions
// (writing a snapshot and opening one). Any other host transparently falls
// back to an encode/decode copy, so snapshots stay portable across
// architectures: the bytes on disk are identical either way.

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

var denseEdgePacked = unsafe.Sizeof(graph.DenseEdge{}) == 16 &&
	unsafe.Offsetof(graph.DenseEdge{}.To) == 0 &&
	unsafe.Offsetof(graph.DenseEdge{}.Label) == 4 &&
	unsafe.Offsetof(graph.DenseEdge{}.W) == 8

// aliasOK reports whether typed slices may alias section bytes directly.
func aliasOK() bool { return hostLittleEndian && denseEdgePacked }

func sliceBytes[T any](v []T) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*int(unsafe.Sizeof(v[0])))
}

func bytesSlice[T any](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	var z T
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/int(unsafe.Sizeof(z)))
}

// rawIDs returns the file bytes of an ID section (write path).
func rawIDs(v []graph.ID) []byte {
	if aliasOK() {
		return sliceBytes(v)
	}
	buf := make([]byte, 0, len(v)*8)
	for _, id := range v {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	return buf
}

func rawInt32s(v []int32) []byte {
	if aliasOK() {
		return sliceBytes(v)
	}
	buf := make([]byte, 0, len(v)*4)
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	return buf
}

func rawDense(v []graph.DenseEdge) []byte {
	if aliasOK() {
		return sliceBytes(v)
	}
	buf := make([]byte, 0, len(v)*16)
	for _, e := range v {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.To))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Label))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.W))
	}
	return buf
}

// viewIDs returns the typed view of an ID section (read path). The section
// bytes must be 8-aligned (the format guarantees it) and stay alive as long
// as the returned slice.
func viewIDs(b []byte) []graph.ID {
	if aliasOK() {
		return bytesSlice[graph.ID](b)
	}
	v := make([]graph.ID, len(b)/8)
	for i := range v {
		v[i] = graph.ID(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return v
}

func viewInt32s(b []byte) []int32 {
	if aliasOK() {
		return bytesSlice[int32](b)
	}
	v := make([]int32, len(b)/4)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return v
}

func viewDense(b []byte) []graph.DenseEdge {
	if aliasOK() {
		return bytesSlice[graph.DenseEdge](b)
	}
	v := make([]graph.DenseEdge, len(b)/16)
	for i := range v {
		e := b[i*16:]
		v[i] = graph.DenseEdge{
			To:    int32(binary.LittleEndian.Uint32(e)),
			Label: int32(binary.LittleEndian.Uint32(e[4:])),
			W:     math.Float64frombits(binary.LittleEndian.Uint64(e[8:])),
		}
	}
	return v
}

// aligned8Buf allocates an n-byte buffer whose base address is 8-aligned, so
// a plain-read snapshot can use the same zero-copy views as a mapping (which
// is page-aligned by construction).
func aligned8Buf(n int) []byte {
	words := make([]uint64, (n+7)/8)
	if len(words) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

func readFull(r io.Reader, buf []byte) (int, error) { return io.ReadFull(r, buf) }
