// Package store is the durable backend of the serving path: versioned binary
// snapshots of frozen CSR graphs (mmap-able, zero-copy), an append-only
// hash-chained mutation journal fsync-ed ahead of every applied batch, and
// partition-layout caches — together they let a killed server restart onto
// the exact epoch and bit-identical answers it was serving, without reloading
// text or repartitioning.
//
// On-disk layout, one directory per named graph:
//
//	<root>/<name>/snap-<epoch>.grs    snapshot frozen at <epoch>
//	<root>/<name>/wal-<epoch>.grj     journal of batches applied since it
//	<root>/<name>/layout-<epoch>-<strategy>-wN-hH.grl   cached partition cuts
//
// Snapshot and journal always travel as a pair: the journal header embeds
// the SHA-256 of its snapshot's header, so a mixed pair (from a torn
// compaction, a copy mistake, tampering) is rejected rather than replayed.
// Compaction writes the new pair under the new epoch before deleting the
// old one, so a crash at any byte leaves at least one complete pair; startup
// picks the highest-epoch valid snapshot and garbage-collects the rest.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"grape/internal/graph"
	"grape/internal/partition"
)

// ErrNoSnapshot reports that a graph directory holds no usable snapshot —
// the caller should build the graph from its original source and Create.
var ErrNoSnapshot = fmt.Errorf("store: no usable snapshot")

// Store is the root of a durable data directory, one subdirectory per graph.
type Store struct {
	root string
}

// Open opens (creating if needed) the data directory at root.
func Open(root string) (*Store, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &Store{root: root}, nil
}

// Root returns the data directory path.
func (s *Store) Root() string { return s.root }

// List returns the names of graphs with a directory under the store, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && validGraphName(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Graph opens (creating if needed) the per-graph store for name.
func (s *Store) Graph(name string) (*GraphStore, error) {
	if !validGraphName(name) {
		return nil, fmt.Errorf("store: invalid graph name %q", name)
	}
	dir := filepath.Join(s.root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &GraphStore{name: name, dir: dir}, nil
}

// validGraphName rejects names that would escape the data directory or
// collide with the store's own file patterns.
func validGraphName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Recovered is the result of opening a graph store: the snapshot graph plus
// the journaled batches to replay through the session layer on top of it.
type Recovered struct {
	Graph         *graph.Graph
	SnapshotEpoch uint64
	Mapped        bool     // snapshot is served zero-copy off an mmap
	Records       []Record // intact journal records, in append order
	Damage        *Damage  // non-nil if a broken journal tail was truncated
}

// Stats is a point-in-time view of a graph store's durable state.
type Stats struct {
	SnapshotEpoch  uint64
	JournalRecords int
	JournalBytes   int64
	Mapped         bool
}

// GraphStore manages the snapshot + journal pair for one named graph.
type GraphStore struct {
	name string
	dir  string

	mu        sync.Mutex
	journal   *Journal
	snapEpoch uint64
	binding   [32]byte
	mapped    bool
	closers   []func() error // live mmap unmaps; run only at Close
}

// Name returns the graph name this store serves.
func (gs *GraphStore) Name() string { return gs.name }

func (gs *GraphStore) snapPath(epoch uint64) string {
	return filepath.Join(gs.dir, fmt.Sprintf("snap-%016x.grs", epoch))
}

func (gs *GraphStore) walPath(epoch uint64) string {
	return filepath.Join(gs.dir, fmt.Sprintf("wal-%016x.grj", epoch))
}

func (gs *GraphStore) layoutPath(epoch uint64, strategy string, workers, hops int) string {
	return filepath.Join(gs.dir, fmt.Sprintf("layout-%016x-%s-w%d-h%d.grl", epoch, strategy, workers, hops))
}

// Create wipes any prior state and persists g as the graph's snapshot at
// epoch, with an empty journal bound to it.
func (gs *GraphStore) Create(g *graph.Graph, epoch uint64) error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.journal != nil {
		gs.journal.Close()
		gs.journal = nil
	}
	if err := gs.removeFilesLocked(func(kind string, e uint64) bool { return true }); err != nil {
		return err
	}
	binding, err := WriteSnapshotFile(gs.snapPath(epoch), g, epoch)
	if err != nil {
		return err
	}
	j, err := createJournal(gs.walPath(epoch), epoch, binding)
	if err != nil {
		return err
	}
	gs.journal = j
	gs.snapEpoch = epoch
	gs.binding = binding
	gs.mapped = false
	return nil
}

// Open recovers the graph: it loads the highest-epoch valid snapshot
// (falling back to older ones if the newest fails validation), opens the
// paired journal — truncating any damaged tail to its intact prefix — and
// garbage-collects superseded pairs and stale layout caches. The caller
// replays Records through the session layer to reach the pre-crash epoch.
// Returns ErrNoSnapshot if the directory holds no usable snapshot.
func (gs *GraphStore) Open() (*Recovered, error) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	epochs, err := gs.snapshotEpochsLocked()
	if err != nil {
		return nil, err
	}
	var firstErr error
	for i := len(epochs) - 1; i >= 0; i-- {
		epoch := epochs[i]
		g, si, err := OpenSnapshotFile(gs.snapPath(epoch))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("snapshot epoch %d: %w", epoch, err)
			}
			continue
		}
		j, recs, damage, err := openJournal(gs.walPath(epoch), epoch, si.Binding)
		if err != nil {
			si.Close()
			if firstErr == nil {
				firstErr = fmt.Errorf("journal for epoch %d: %w", epoch, err)
			}
			continue
		}
		gs.journal = j
		gs.snapEpoch = epoch
		gs.binding = si.Binding
		gs.mapped = si.Mapped
		if si.Mapped {
			// The graph's CSR arrays alias the mapping; keep it alive for the
			// store's lifetime.
			gs.closers = append(gs.closers, si.Close)
		}
		gs.gcLocked(epoch)
		return &Recovered{
			Graph:         g,
			SnapshotEpoch: epoch,
			Mapped:        si.Mapped,
			Records:       recs,
			Damage:        damage,
		}, nil
	}
	if firstErr != nil {
		return nil, fmt.Errorf("%w (%v)", ErrNoSnapshot, firstErr)
	}
	return nil, ErrNoSnapshot
}

// Append journals one mutation batch, fsync-ing before returning. Callers
// apply the batch to the in-memory session only after Append succeeds.
func (gs *GraphStore) Append(r Record) error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.journal == nil {
		return fmt.Errorf("store: graph %s has no open journal", gs.name)
	}
	return gs.journal.Append(r)
}

// Stats reports the journal length and snapshot epoch.
func (gs *GraphStore) Stats() Stats {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	st := Stats{SnapshotEpoch: gs.snapEpoch, Mapped: gs.mapped}
	if gs.journal != nil {
		st.JournalRecords = gs.journal.Records()
		st.JournalBytes = gs.journal.Size()
	}
	return st
}

// Compact re-snapshots g (the current in-memory graph) at epoch and swaps in
// a fresh journal, then deletes the superseded pair and stale layouts. The
// new pair is fully written before anything is removed, so a crash at any
// point leaves a complete pair on disk. The caller must ensure g is frozen
// and not mutated for the duration (the server holds the graph's read lock).
func (gs *GraphStore) Compact(g *graph.Graph, epoch uint64) error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if epoch <= gs.snapEpoch {
		return fmt.Errorf("store: compacting %s to epoch %d, already at %d", gs.name, epoch, gs.snapEpoch)
	}
	binding, err := WriteSnapshotFile(gs.snapPath(epoch), g, epoch)
	if err != nil {
		return err
	}
	j, err := createJournal(gs.walPath(epoch), epoch, binding)
	if err != nil {
		os.Remove(gs.snapPath(epoch))
		return err
	}
	if gs.journal != nil {
		gs.journal.Close()
	}
	gs.journal = j
	gs.snapEpoch = epoch
	gs.binding = binding
	gs.mapped = false
	gs.gcLocked(epoch)
	return nil
}

// SaveLayout caches a partition cut for (strategy, workers, hops) computed
// on the graph state at epoch.
func (gs *GraphStore) SaveLayout(a *partition.Assignment, epoch uint64, strategy string, workers, hops int) error {
	return writeLayoutFile(gs.layoutPath(epoch, strategy, workers, hops), a, epoch, strategy, workers, hops)
}

// LoadLayout returns the cached cut for (epoch, strategy, workers, hops), or
// (nil, nil) when absent or unusable — a missing or corrupt layout cache is
// never an error, just a recompute.
func (gs *GraphStore) LoadLayout(g *graph.Graph, epoch uint64, strategy string, workers, hops int) (*partition.Assignment, error) {
	path := gs.layoutPath(epoch, strategy, workers, hops)
	a, err := readLayoutFile(path, g, epoch, strategy, workers, hops)
	if err != nil {
		if !os.IsNotExist(err) {
			// Corrupt cache: drop it so the rewrite after recompute is clean.
			os.Remove(path)
		}
		return nil, nil
	}
	return a, nil
}

// Close closes the journal and releases any live snapshot mappings. The
// graph recovered from a mapped snapshot must not be used after Close.
func (gs *GraphStore) Close() error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	var firstErr error
	if gs.journal != nil {
		if err := gs.journal.Close(); err != nil {
			firstErr = err
		}
		gs.journal = nil
	}
	for _, c := range gs.closers {
		if err := c(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	gs.closers = nil
	return firstErr
}

// snapshotEpochsLocked lists epochs with a snapshot file present, ascending.
func (gs *GraphStore) snapshotEpochsLocked() ([]uint64, error) {
	entries, err := os.ReadDir(gs.dir)
	if err != nil {
		return nil, err
	}
	var epochs []uint64
	for _, e := range entries {
		if epoch, ok := parseEpochFile(e.Name(), "snap-", ".grs"); ok {
			epochs = append(epochs, epoch)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// gcLocked removes snapshot/journal pairs other than keep's, and layout
// caches older than keep (layouts at epochs > keep remain valid: they can
// be reached again by replaying the journal).
func (gs *GraphStore) gcLocked(keep uint64) {
	gs.removeFilesLocked(func(kind string, epoch uint64) bool {
		if kind == "layout" {
			return epoch < keep
		}
		return epoch != keep
	})
}

// removeFilesLocked deletes store files matching drop(kind, epoch), where
// kind is "snap", "wal" or "layout". Removal errors are ignored — GC retries
// on the next open/compaction — but listing errors are returned.
func (gs *GraphStore) removeFilesLocked(drop func(kind string, epoch uint64) bool) error {
	entries, err := os.ReadDir(gs.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		var kind string
		var epoch uint64
		var ok bool
		switch {
		case strings.HasSuffix(name, ".tmp"):
			kind, epoch, ok = "tmp", 0, true
		default:
			if epoch, ok = parseEpochFile(name, "snap-", ".grs"); ok {
				kind = "snap"
			} else if epoch, ok = parseEpochFile(name, "wal-", ".grj"); ok {
				kind = "wal"
			} else if epoch, ok = parseLayoutEpoch(name); ok {
				kind = "layout"
			}
		}
		if ok && (kind == "tmp" || drop(kind, epoch)) {
			os.Remove(filepath.Join(gs.dir, name))
		}
	}
	return nil
}

// parseEpochFile extracts the epoch from names like "snap-<16 hex>.grs".
func parseEpochFile(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	return parseHex16(hex)
}

// parseLayoutEpoch extracts the epoch from "layout-<16 hex>-<key>.grl".
func parseLayoutEpoch(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "layout-") || !strings.HasSuffix(name, ".grl") {
		return 0, false
	}
	rest := name[len("layout-"):]
	if len(rest) < 17 || rest[16] != '-' {
		return 0, false
	}
	return parseHex16(rest[:16])
}

func parseHex16(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

// syncFile fsyncs the file at path.
func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// syncParentDir best-effort fsyncs the directory containing path, making a
// preceding rename or create durable. Failures are ignored: some platforms
// and filesystems reject directory fsync, and the data files themselves are
// already synced.
func syncParentDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
