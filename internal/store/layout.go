package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"grape/internal/graph"
	"grape/internal/partition"
)

// Layout files persist a partition cut next to the snapshot it was computed
// on, keyed by (strategy, workers, hops), so a restart skips repartitioning:
//
//	magic "GRAPELAY" (8 bytes)
//	u32 format version (1) · u32 zero
//	u64 epoch the cut was computed at
//	length-prefixed strategy name · uvarint hops · uvarint workers
//	partition.AppendAssignment blob (per-vertex owners)
//	u32 CRC32C over everything before it
//
// A layout is only valid for the exact graph state it was cut on, so the
// epoch must match the caller's and the assignment must span the graph's
// current vertex set — both are checked on load, and any mismatch or
// corruption falls back to recomputing the cut (layouts are a cache, never
// a source of truth).

const (
	layoutMagic   = "GRAPELAY"
	layoutVersion = 1
)

// writeLayoutFile atomically persists the assignment for (strategy, workers,
// hops) at epoch.
func writeLayoutFile(path string, a *partition.Assignment, epoch uint64, strategy string, workers, hops int) error {
	buf := make([]byte, 0, 24+len(strategy)+a.G.NumVertices()*2)
	buf = append(buf, layoutMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, layoutVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = appendStr(buf, strategy)
	buf = binary.AppendUvarint(buf, uint64(hops))
	buf = binary.AppendUvarint(buf, uint64(workers))
	buf = partition.AppendAssignment(buf, a)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := syncFile(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncParentDir(path)
	return nil
}

// readLayoutFile loads a persisted assignment for g, verifying integrity and
// that it matches (epoch, strategy, workers, hops).
func readLayoutFile(path string, g *graph.Graph, epoch uint64, strategy string, workers, hops int) (*partition.Assignment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 24+4 {
		return nil, fmt.Errorf("store: layout %s: too short", path)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("store: layout %s: checksum mismatch", path)
	}
	if string(body[:8]) != layoutMagic {
		return nil, fmt.Errorf("store: layout %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(body[8:]); v != layoutVersion {
		return nil, fmt.Errorf("store: layout %s: unsupported version %d", path, v)
	}
	if got := binary.LittleEndian.Uint64(body[16:]); got != epoch {
		return nil, fmt.Errorf("store: layout %s: epoch %d, want %d", path, got, epoch)
	}
	pos := 24
	gotStrategy, err := graph.ReadString(body, &pos)
	if err != nil {
		return nil, err
	}
	gotHops, err := graph.ReadUvarint(body, &pos)
	if err != nil {
		return nil, err
	}
	gotWorkers, err := graph.ReadUvarint(body, &pos)
	if err != nil {
		return nil, err
	}
	if gotStrategy != strategy || int(gotHops) != hops || int(gotWorkers) != workers {
		return nil, fmt.Errorf("store: layout %s: keyed (%s,w%d,h%d), want (%s,w%d,h%d)",
			path, gotStrategy, gotWorkers, gotHops, strategy, workers, hops)
	}
	a, used, err := partition.DecodeAssignment(body[pos:], g)
	if err != nil {
		return nil, err
	}
	if pos+used != len(body) {
		return nil, fmt.Errorf("store: layout %s: trailing bytes", path)
	}
	if a.N != workers {
		return nil, fmt.Errorf("store: layout %s: %d parts, want %d", path, a.N, workers)
	}
	return a, nil
}
