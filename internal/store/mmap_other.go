//go:build !unix

package store

import (
	"fmt"
	"os"
)

// mmapSupported gates the zero-copy open path; without it OpenSnapshotFile
// falls back to ReadSnapshotFile (a plain read into aligned memory), which
// serves identically, just without sharing pages with the file cache.
const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	return nil, nil, fmt.Errorf("store: mmap not supported on this platform")
}
