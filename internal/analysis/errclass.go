package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errclass guards the failure-classification contract behind fault recovery:
// every error surfaced by a recv/send path — the socket transport's
// Recv/Send/reader/pinger/pump/frame functions and the engine's wire-layer
// serve loop — must be classified worker-fatal or run-fatal
// (mpi.WorkerFatal / mpi.RunFatal), because the coordinator's recovery
// machinery dispatches on exactly that distinction: worker-fatal errors
// trigger fragment reassignment and checkpoint replay, run-fatal errors fail
// the run. An unclassified error escaping one of these paths defeats
// recovery silently — the run dies where it could have survived.
//
// A return passes when the returned expression
//   - calls a classification helper (WorkerFatal / RunFatal), or
//   - comes from an already-classified producer — a call whose callee is
//     Recv, Send, readFrame, writeFrame or replyWire, all of which return
//     classified errors by this same rule, or
//   - wraps an identifier that was assigned from either of the above
//     anywhere in the function (lexical blessing, the same review-time
//     precision mapdet uses for its sort pairing).
//
// Deliberate exceptions — context errors, sentinel outcomes like
// ErrAborted, framing-layer internals whose callers classify — are waived
// with //grapevet:keep on the return (or on the function declaration to
// waive the whole function), reason mandatory as always.
var Errclass = &Analyzer{
	Name: "errclass",
	Doc: "recv/send paths in the transport and the engine wire layer must return " +
		"classified errors (mpi.WorkerFatal/mpi.RunFatal) so recovery can dispatch on them",
	Run: runErrclass,
}

// errclassFuncs are the recv/send-path function names under the contract,
// matched case-insensitively and exactly: the transport's link machinery
// and the engine wire layer's serve loop.
var errclassFuncs = []string{
	"recv", "send", "reader", "pinger", "pump",
	"readframe", "writeframe",
	"wireframe", "servewire", "replywire", "serveworker",
}

// errclassSources are callee names whose errors are already classified —
// the classification helpers themselves plus the producers this analyzer
// certifies.
var errclassSources = []string{
	"workerfatal", "runfatal",
	"recv", "send", "readframe", "writeframe", "replywire",
}

func inErrclassScope(name string) bool {
	for _, fn := range errclassFuncs {
		if strings.EqualFold(name, fn) {
			return true
		}
	}
	return false
}

func runErrclass(p *Pass) error {
	// The contract lives where the substrates meet the wire; everywhere
	// else (including mpi itself, which defines the helpers) error style is
	// the callers' business.
	if name := p.Pkg.Types.Name(); name != "transport" && name != "engine" {
		return nil
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !inErrclassScope(fd.Name.Name) {
				continue
			}
			// A keep on the declaration waives the whole function — the
			// framing layer uses this: its callers classify.
			if p.SuppressedAt(fd.Pos()) {
				continue
			}
			checkErrclassFunc(p, fd)
		}
	}
	return nil
}

func checkErrclassFunc(p *Pass, fd *ast.FuncDecl) {
	results := flattenResults(fd.Type.Results)
	errPos := []int{}
	for i, r := range results {
		if isErrorExpr(p.Pkg.Info, r.typ) {
			errPos = append(errPos, i)
		}
	}
	if len(errPos) == 0 {
		return
	}
	blessed := blessedIdents(p.Pkg.Info, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns answer to its own signature
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		exprs := ret.Results
		if len(exprs) == 0 {
			// Naked return: the named results carry whatever was last
			// assigned; judge the named error idents by blessing.
			for _, i := range errPos {
				if results[i].name == "" || blessed[results[i].name] {
					continue
				}
				p.Reportf(ret.Pos(), "unclassified error return in %s: named result %s was never assigned a classified error; wrap with mpi.WorkerFatal/mpi.RunFatal", fd.Name.Name, results[i].name)
			}
			return true
		}
		if len(exprs) != len(results) {
			// Single-call passthrough (`return f()`): the call covers every
			// result including the error; it must itself be a blessed source.
			if len(exprs) == 1 && !errclassOK(exprs[0], blessed) {
				p.Reportf(ret.Pos(), "unclassified error return in %s: wrap with mpi.WorkerFatal/mpi.RunFatal or derive it from a classified Recv/Send/frame call", fd.Name.Name)
			}
			return true
		}
		for _, i := range errPos {
			if !errclassOK(exprs[i], blessed) {
				p.Reportf(ret.Pos(), "unclassified error return in %s: wrap with mpi.WorkerFatal/mpi.RunFatal or derive it from a classified Recv/Send/frame call", fd.Name.Name)
				break
			}
		}
		return true
	})
}

// result is one flattened result slot of a function signature.
type result struct {
	name string
	typ  ast.Expr
}

func flattenResults(fl *ast.FieldList) []result {
	if fl == nil {
		return nil
	}
	var out []result
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			out = append(out, result{typ: f.Type})
			continue
		}
		for _, n := range f.Names {
			out = append(out, result{name: n.Name, typ: f.Type})
		}
	}
	return out
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorExpr(info *types.Info, typ ast.Expr) bool {
	tv, ok := info.Types[typ]
	return ok && types.Identical(tv.Type, errorType)
}

// errclassOK reports whether an expression returned at an error position is
// acceptably classified: nil, a subtree containing a blessed call, or a
// reference to a blessed identifier.
func errclassOK(e ast.Expr, blessed map[string]bool) bool {
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	ok := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isErrclassSource(n) {
				ok = true
				return false
			}
		case *ast.Ident:
			if blessed[n.Name] {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

// blessedIdents collects, per function body, every error-typed identifier
// assigned (anywhere, lexically) from a right-hand side containing a blessed
// call. Only error-typed names are blessed — `env, err := link.Recv()` must
// not certify a later return that merely mentions env. Classification
// survives wrapping: fmt.Errorf("...: %w", err) of a blessed err is still
// classified, since both wrapper types unwrap.
func blessedIdents(info *types.Info, body *ast.BlockStmt) map[string]bool {
	blessed := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		src := false
		for _, rhs := range as.Rhs {
			ast.Inspect(rhs, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isErrclassSource(call) {
					src = true
					return false
				}
				return true
			})
		}
		if !src {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if t := info.TypeOf(id); t != nil && types.Identical(t, errorType) {
				blessed[id.Name] = true
			}
		}
		return true
	})
	return blessed
}

// isErrclassSource matches a call to a classification helper or a certified
// producer by callee name — bare (RunFatal(...), readFrame(...)) or selected
// (mpi.RunFatal(...), link.Recv(...)).
func isErrclassSource(call *ast.CallExpr) bool {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return false
	}
	for _, s := range errclassSources {
		if strings.EqualFold(name, s) {
			return true
		}
	}
	return false
}
