package analysis

import (
	"go/ast"
	"go/types"
)

// Poolreset guards the scratch-recycling invariant behind engine.Resident:
// any struct that travels through a sync.Pool and exposes a reset() method
// must assign every one of its fields in reset. The reset methods are
// hand-maintained field lists — add a field to the struct, forget the line
// in reset, and one run's state leaks into the next run's pooled scratch.
// That bug is invisible to tests that construct fresh state and only bites
// under a resident server's recycling, exactly where it is hardest to
// debug.
//
// Fields that are construction-time identity (set once, valid across runs)
// are annotated //grapevet:keep on their declaration.
var Poolreset = &Analyzer{
	Name: "poolreset",
	Doc: "every field of a sync.Pool-recycled struct with a reset() method must be " +
		"assigned in reset or carry //grapevet:keep on its declaration",
	Run: runPoolreset,
}

func runPoolreset(p *Pass) error {
	roots := pooledRoots(p)
	if len(roots) == 0 {
		return nil
	}

	// Pool-reachable structs: the pooled roots plus every same-package named
	// struct reachable through fields, pointers, slices, arrays and maps —
	// Resident pools a *runScratch whose fields hold the actual Contexts and
	// fold state, so reachability is the honest definition of "recycled".
	reach := map[*types.Named]bool{}
	var expand func(t types.Type)
	expand = func(t types.Type) {
		switch tt := t.(type) {
		case *types.Pointer:
			expand(tt.Elem())
		case *types.Slice:
			expand(tt.Elem())
		case *types.Array:
			expand(tt.Elem())
		case *types.Map:
			expand(tt.Elem())
		case *types.Named:
			if tt.Obj().Pkg() != p.Pkg.Types {
				return
			}
			orig := tt.Origin()
			if reach[orig] {
				return
			}
			st, ok := orig.Underlying().(*types.Struct)
			if !ok {
				return
			}
			reach[orig] = true
			for i := 0; i < st.NumFields(); i++ {
				expand(st.Field(i).Type())
			}
		}
	}
	for n := range roots {
		expand(n)
	}

	resets := resetMethods(p)
	for named := range reach {
		fd, ok := resets[named.Obj().Name()]
		if !ok {
			continue
		}
		st := named.Origin().Underlying().(*types.Struct)
		assigned := map[string]bool{}
		assignedFields(p, fd, assigned, map[string]bool{})
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if assigned[f.Name()] || p.SuppressedAt(f.Pos()) {
				continue
			}
			p.Reportf(fd.Name.Pos(), "pooled %s.reset does not assign field %q: a recycled scratch would leak the previous run's %s (reset it, or annotate the field //grapevet:keep <why>)",
				named.Obj().Name(), f.Name(), f.Name())
		}
	}
	return nil
}

// pooledRoots finds the named struct types that enter a sync.Pool in this
// package: arguments of Pool.Put, targets of type assertions on Pool.Get,
// and results of Pool.New functions.
func pooledRoots(p *Pass) map[*types.Named]bool {
	info := p.Pkg.Info
	roots := map[*types.Named]bool{}
	add := func(t types.Type) {
		if n := namedStructOf(t); n != nil && n.Obj().Pkg() == p.Pkg.Types {
			roots[n] = true
		}
	}
	isPoolSel := func(sel *ast.SelectorExpr, method string) bool {
		if sel.Sel.Name != method {
			return false
		}
		tv, ok := info.Types[sel.X]
		if !ok {
			return false
		}
		n := namedOf(tv.Type)
		return n != nil && n.Obj().Name() == "Pool" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
	}
	p.inspect(func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			if sel, ok := nn.Fun.(*ast.SelectorExpr); ok && isPoolSel(sel, "Put") && len(nn.Args) == 1 {
				if tv, ok := info.Types[nn.Args[0]]; ok {
					add(tv.Type)
				}
			}
		case *ast.TypeAssertExpr:
			if call, ok := nn.X.(*ast.CallExpr); ok && nn.Type != nil {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isPoolSel(sel, "Get") {
					if tv, ok := info.Types[nn.Type]; ok {
						add(tv.Type)
					}
				}
			}
		case *ast.AssignStmt:
			// pool.New = func() any { return &T{...} }
			for i, lhs := range nn.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || !isPoolSel(sel, "New") || i >= len(nn.Rhs) {
					continue
				}
				if fl, ok := nn.Rhs[i].(*ast.FuncLit); ok {
					ast.Inspect(fl.Body, func(m ast.Node) bool {
						if ret, ok := m.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
							if tv, ok := info.Types[ret.Results[0]]; ok {
								add(tv.Type)
							}
						}
						return true
					})
				}
			}
		}
		return true
	})
	return roots
}

// resetMethods maps receiver type name -> the reset FuncDecl in this package.
func resetMethods(p *Pass) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "reset" || fd.Body == nil {
				continue
			}
			if name := recvTypeName(fd); name != "" {
				out[name] = fd
			}
		}
	}
	return out
}

// recvTypeName extracts the receiver's type name, looking through pointers
// and generic instantiations: `func (c *Context[V]) reset()` -> "Context".
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// assignedFields collects the receiver fields a method assigns, following
// calls to sibling methods on the same receiver (r.helper() counting
// helper's assignments too). seen breaks recursion cycles.
func assignedFields(p *Pass, fd *ast.FuncDecl, out map[string]bool, seen map[string]bool) {
	if seen[fd.Name.Name] {
		return
	}
	seen[fd.Name.Name] = true
	recv := ""
	if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv = fd.Recv.List[0].Names[0].Name
	}
	if recv == "" {
		return
	}
	typeName := recvTypeName(fd)

	// fieldOf unwraps index expressions: r.F, r.F[i], r.F[i][j] all assign F.
	fieldOf := func(e ast.Expr) string {
		for {
			if ix, ok := e.(*ast.IndexExpr); ok {
				e = ix.X
				continue
			}
			break
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
				return sel.Sel.Name
			}
		}
		return ""
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range nn.Lhs {
				if f := fieldOf(lhs); f != "" {
					out[f] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := nn.Fun.(*ast.Ident); ok && (id.Name == "clear" || id.Name == "copy") && len(nn.Args) > 0 {
				if f := fieldOf(nn.Args[0]); f != "" {
					out[f] = true
				}
			}
			if sel, ok := nn.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
					// sibling method call on the receiver: count its work
					if sib := findMethod(p, typeName, sel.Sel.Name); sib != nil {
						assignedFields(p, sib, out, seen)
					}
				}
			}
		}
		return true
	})
}

// findMethod locates a method FuncDecl by receiver type name and method name.
func findMethod(p *Pass, typeName, method string) *ast.FuncDecl {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != method || fd.Body == nil {
				continue
			}
			if recvTypeName(fd) == typeName {
				return fd
			}
		}
	}
	return nil
}

// namedOf unwraps pointers and generic instantiations to the origin named
// type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Origin()
	}
	return nil
}

// namedStructOf is namedOf restricted to struct underlyings.
func namedStructOf(t types.Type) *types.Named {
	n := namedOf(t)
	if n == nil {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	return n
}
