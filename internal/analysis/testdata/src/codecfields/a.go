// Package codecfields exercises the codecfields analyzer: every exported
// field of a struct with a paired Encode/Decode must appear in both bodies.
package codecfields

type Msg struct {
	A    int32
	B    int32
	Skip int32 //grapevet:keep fixture: derived from A at decode time, never on the wire
}

// EncodeMsg forgets B — the silent wire-drift bug.
func EncodeMsg(buf []byte, m Msg) []byte { // want "EncodeMsg does not reference Msg.B"
	buf = append(buf, byte(m.A))
	return buf
}

func DecodeMsg(buf []byte) (Msg, []byte, error) {
	var m Msg
	m.A = int32(buf[0])
	m.B = int32(buf[1])
	return m, buf[2:], nil
}

// Pair round-trips completely; the keyed composite literal counts as decode
// references.
type Pair struct {
	X int32
	Y int32
}

func AppendPair(buf []byte, p Pair) []byte {
	buf = append(buf, byte(p.X), byte(p.Y))
	return buf
}

func DecodePair(buf []byte) (Pair, []byte) {
	return Pair{X: int32(buf[0]), Y: int32(buf[1])}, buf[2:]
}
