// Package poolreset exercises the poolreset analyzer: a sync.Pool-recycled
// struct whose reset() misses a field leaks one run's state into the next.
package poolreset

import "sync"

type scratch struct {
	buf  []byte
	n    int
	lost int
	name string //grapevet:keep fixture: construction-time identity, never varies across runs
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

func get() *scratch { return pool.Get().(*scratch) }

func put(s *scratch) {
	s.reset()
	pool.Put(s)
}

func (s *scratch) reset() { // want "pooled scratch.reset does not assign field \"lost\""
	s.buf = s.buf[:0]
	s.n = 0
}

// clean resets every field, partly through a sibling method — both spellings
// count as assignment.
type clean struct {
	a int
	b int
	m map[int]int
}

var cleanPool = sync.Pool{}

func cleanPut(c *clean) {
	c.reset()
	cleanPool.Put(c)
}

func (c *clean) reset() {
	c.a = 0
	clear(c.m)
	c.clearB()
}

func (c *clean) clearB() { c.b = 0 }

var _, _ = get, cleanPut
