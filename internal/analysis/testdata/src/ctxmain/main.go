// Package main pins ctxfirst's deliberate exemption: the process entry point
// owns the root context, so Background() is legitimate here.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error {
	_ = ctx
	return nil
}
