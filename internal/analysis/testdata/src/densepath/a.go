// Package densepath exercises the densepath analyzer with a miniature of the
// engine's accessor shape: a Context offering sparse by-ID methods next to
// dense ...At twins, and PIE-named method bodies using them.
package densepath

type Graph struct{ frozen bool }

func (g *Graph) Frozen() bool { return g.frozen }

type Context struct {
	G     *Graph
	vals  map[int64]float64
	dense []float64
}

func (c *Context) Get(id int64) float64     { return c.vals[id] }
func (c *Context) GetAt(i int32) float64    { return c.dense[i] }
func (c *Context) Set(id int64, v float64)  { c.vals[id] = v }
func (c *Context) SetAt(i int32, v float64) { c.dense[i] = v }

type Prog struct{}

// PEval's sparse tail is a recognized fallback: it sits lexically behind a
// Frozen()-guarded block that returns.
func (Prog) PEval(c *Context) error {
	if c.G.Frozen() {
		c.SetAt(0, 1)
		return nil
	}
	c.Set(1, 1)
	return nil
}

// IncEval reaches for the sparse accessor with no guard — the violation.
func (Prog) IncEval(c *Context) error {
	c.Set(2, 2) // want "Context.Set in IncEval hashes per call"
	return nil
}

// Assemble shows both escape hatches: an annotated keep and the else branch
// of a Frozen() test.
func (Prog) Assemble(c *Context) error {
	//grapevet:keep fixture: documented thawed fallback
	c.Set(3, 3)
	if g := c.G; g.Frozen() {
		_ = c.GetAt(0)
	} else {
		_ = c.Get(4)
	}
	return nil
}
