// Package ctxfirst exercises the ctxfirst analyzer: ctx is the first
// parameter, never a struct field, never minted outside package main — and
// the flight recorder, which rides the context, is never a struct field
// either.
package ctxfirst

import (
	"context"

	"trace"
)

// Run is conforming: ctx first, passed through.
func Run(ctx context.Context, n int) error {
	_ = ctx
	return nil
}

// Late buries the context mid-signature.
func Late(n int, ctx context.Context) error { // want "context.Context is parameter 2 of Late"
	_ = ctx
	return nil
}

type holder struct {
	ctx context.Context // want "context.Context stored in a struct"
	n   int
}

var _ = holder{}

// mint conjures a root context inside a library.
func mint() context.Context {
	return context.Background() // want "context.Background\(\) outside package main"
}

// mintTODO is the TODO spelling of the same escape.
func mintTODO() context.Context {
	return context.TODO() // want "context.TODO\(\) outside package main"
}

// drain is the annotated exception: a cleanup path whose parent context is
// already cancelled needs its own fresh bound.
func drain() context.Context {
	//grapevet:keep fixture: the run ctx is already cancelled; the drain needs a fresh bound
	return context.Background()
}

var _, _ = mint, drain

// pinned holds the run-scoped recorder past its run: the pool can hand its
// buffers to the next run while this struct still points at them.
type pinned struct {
	rec *trace.Recorder // want "trace.Recorder stored in a struct"
	n   int
}

var _ = pinned{}

// traced is the conforming shape: the recorder rides the context and is
// recovered where it is used.
func traced(ctx context.Context) int {
	rec := trace.FromContext(ctx)
	if rec == nil {
		return 0
	}
	return 1
}

// keptRecorder is the annotated exception — mirrors the engine's pooled
// scratch, which owns its recorder for exactly one run between get and put.
type keptRecorder struct {
	//grapevet:keep fixture: scratch owns the recorder for exactly one run
	rec *trace.Recorder
}

var _, _ = traced, keptRecorder{}
