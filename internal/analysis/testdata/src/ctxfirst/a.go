// Package ctxfirst exercises the ctxfirst analyzer: ctx is the first
// parameter, never a struct field, never minted outside package main.
package ctxfirst

import "context"

// Run is conforming: ctx first, passed through.
func Run(ctx context.Context, n int) error {
	_ = ctx
	return nil
}

// Late buries the context mid-signature.
func Late(n int, ctx context.Context) error { // want "context.Context is parameter 2 of Late"
	_ = ctx
	return nil
}

type holder struct {
	ctx context.Context // want "context.Context stored in a struct"
	n   int
}

var _ = holder{}

// mint conjures a root context inside a library.
func mint() context.Context {
	return context.Background() // want "context.Background\(\) outside package main"
}

// mintTODO is the TODO spelling of the same escape.
func mintTODO() context.Context {
	return context.TODO() // want "context.TODO\(\) outside package main"
}

// drain is the annotated exception: a cleanup path whose parent context is
// already cancelled needs its own fresh bound.
func drain() context.Context {
	//grapevet:keep fixture: the run ctx is already cancelled; the drain needs a fresh bound
	return context.Background()
}

var _, _ = mint, drain
