// Package mapdet exercises the mapdet analyzer: a bare map range inside an
// encode-path function is nondeterministic; collect-then-sort and annotated
// keeps are quiet.
package mapdet

import (
	"fmt"
	"sort"
)

// EncodeCounts emits in randomized map order — the bug mapdet exists for.
func EncodeCounts(m map[string]int) []byte {
	var out []byte
	for k, v := range m { // want "map iteration in deterministic path EncodeCounts"
		out = append(out, fmt.Sprintf("%s=%d;", k, v)...)
	}
	return out
}

// EncodeSorted is the blessed idiom: collect keys, sort, then emit.
func EncodeSorted(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d;", k, m[k])...)
	}
	return out
}

// EncodeSize only aggregates an order-insensitive total; the keep waives it.
func EncodeSize(m map[string]int) int {
	n := 0
	//grapevet:keep fixture: the sum is order-insensitive, nothing is emitted
	for k := range m {
		n += len(k)
	}
	return n
}

// tally is outside mapdet's scope prefixes: map order is anyone's business.
func tally(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

var _ = tally
