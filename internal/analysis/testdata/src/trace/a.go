// Package trace is a miniature of the repo's internal/trace flight recorder,
// here so the ctxfirst and poolreset fixtures exercise the recorder-specific
// rules against the same (package-path suffix, type name) shape the real
// package has: Recorder rides the run context and is pool-recycled, so its
// reset must clear every run-scoped field and no struct may hold one.
package trace

import (
	"context"
	"sync"
)

// Step is one recorded superstep span.
type Step struct {
	Step    int
	Workers []int64
}

// Recorder is the conforming pooled recorder: reset keeps the backing arrays
// but reassigns every run-scoped field, and the mutex is construction-time
// identity.
type Recorder struct {
	mu    sync.Mutex //grapevet:keep fixture: identity, never varies across runs
	steps []Step
	open  int
}

var pool = sync.Pool{New: func() any { return &Recorder{open: -1} }}

// NewRecorder hands out a recycled recorder.
func NewRecorder() *Recorder { return pool.Get().(*Recorder) }

// Release resets the recorder and returns it to the pool.
func (r *Recorder) Release() {
	r.reset()
	pool.Put(r)
}

func (r *Recorder) reset() {
	r.steps = r.steps[:0]
	r.open = -1
}

// leaky is the violating twin: its reset trims the span buffer but forgets
// the open-step cursor, so a recycled recorder resumes a span left open by
// the previous run.
type leaky struct {
	steps []Step
	open  int
}

var leakPool = sync.Pool{New: func() any { return new(leaky) }}

func (l *leaky) reset() { // want "pooled leaky.reset does not assign field \"open\""
	l.steps = l.steps[:0]
}

func putLeaky(l *leaky) {
	l.reset()
	leakPool.Put(l)
}

type recorderKey struct{}

// WithRecorder is the one sanctioned way a recorder travels: on the context.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, r)
}

// FromContext recovers the run's recorder, nil when tracing is off.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}

var _ = putLeaky
