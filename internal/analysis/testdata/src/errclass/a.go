// Package transport (fixture errclass) exercises the errclass analyzer:
// recv/send-path functions must return classified errors. Local RunFatal /
// WorkerFatal stubs stand in for grape/internal/mpi — the analyzer matches
// classification calls by callee name.
package transport

import (
	"errors"
	"fmt"
)

// Envelope stands in for mpi.Envelope.
type Envelope struct{ Frame []byte }

// RunFatal mimics mpi.RunFatal for the fixture.
func RunFatal(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("run-fatal: %w", err)
}

// WorkerFatal mimics mpi.WorkerFatal for the fixture.
func WorkerFatal(w int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("worker %d: %w", w, err)
}

type link struct{}

func (link) readFrame() ([]byte, error) { return nil, nil }
func (link) send(b []byte) error        { return nil }

// Recv mixes the shapes: a wrap of a blessed ident passes, a bare
// errors.New in the same function is still flagged.
func (l link) Recv() (Envelope, error) {
	b, err := l.readFrame()
	if err != nil {
		return Envelope{}, fmt.Errorf("recv: %w", err)
	}
	if len(b) == 0 {
		return Envelope{}, errors.New("empty frame") // want "unclassified error return in Recv"
	}
	return Envelope{Frame: b}, nil
}

// Send returns a classification call and a certified-producer passthrough —
// both quiet.
func (l link) Send(b []byte) error {
	if len(b) == 0 {
		return RunFatal(errors.New("empty send"))
	}
	if len(b) > 1<<20 {
		return WorkerFatal(0, errors.New("oversized"))
	}
	return l.send(b)
}

// reader returns an identifier no blessed call ever assigned.
func reader(l link) error {
	err := errors.New("boom")
	return err // want "unclassified error return in reader"
}

// pinger waives one return with a keep on the line above.
func pinger() error {
	//grapevet:keep fixture: deliberate waiver, reason reviewed like code
	return errors.New("quiet by annotation")
}

//grapevet:keep fixture: framing layer, callers classify
func writeFrame(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty frame") // quiet: function-level keep
	}
	return nil
}

// pump's naked return is judged by the named result's assignments: err was
// last fed by errors.New, never a classified source.
func pump(l link) (err error) {
	err = errors.New("lost link")
	return // want "unclassified error return in pump: named result err"
}

// ServeWorker's naked return passes: the named result came from a certified
// producer.
func ServeWorker(l link) (err error) {
	err = l.Send(nil)
	return
}

// helper is outside the recv/send scope: unclassified errors are fine here.
func helper() error { return errors.New("anyone's business") }
