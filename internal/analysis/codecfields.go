package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Codecfields guards the wire format against silent drift: for every
// Encode<S>/Append<S> + Decode<S> pair that serializes a named struct, each
// exported field of that struct must be referenced in both bodies. Adding a
// field to a query or wire type and touching only one side compiles cleanly,
// round-trips in unit tests that never set the field, and ships a wire
// format that disagrees between coordinator and worker binaries — behind the
// version handshake, which only catches protocol-version skew, not payload
// skew.
//
// The serialized subject of a pair is resolved from the signatures: the one
// named struct type that appears on both sides (encode parameters vs decode
// results/pointer parameters). Pairs with zero or several candidates are
// skipped — EncodePartial/DecodePartial serialize worker state through
// *engine.Context, not a declared struct, and are covered by the codec
// round-trip fuzz instead. A field that is intentionally absent from the
// encoding carries //grapevet:keep on its declaration.
var Codecfields = &Analyzer{
	Name: "codecfields",
	Doc: "every exported field of a struct with paired Encode*/Append* and Decode* " +
		"functions must be referenced in both bodies",
	Run: runCodecfields,
}

// codecPair is one Encode/Decode family keyed by receiver type and suffix.
type codecPair struct {
	encode, decode *ast.FuncDecl
}

func runCodecfields(p *Pass) error {
	pairs := map[string]*codecPair{}
	key := func(fd *ast.FuncDecl, suffix string) string {
		recv := ""
		if fd.Recv != nil {
			recv = recvTypeName(fd)
		}
		return recv + "\x00" + suffix
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			switch {
			case strings.HasPrefix(name, "Encode"):
				k := key(fd, strings.TrimPrefix(name, "Encode"))
				pair(pairs, k).encode = fd
			case strings.HasPrefix(name, "Append"):
				k := key(fd, strings.TrimPrefix(name, "Append"))
				pair(pairs, k).encode = fd
			case strings.HasPrefix(name, "Decode"):
				k := key(fd, strings.TrimPrefix(name, "Decode"))
				pair(pairs, k).decode = fd
			}
		}
	}

	for _, pr := range pairs {
		if pr.encode == nil || pr.decode == nil {
			continue
		}
		subject := subjectOf(p, pr)
		if subject == nil {
			continue
		}
		st, ok := subject.Origin().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		encRefs := fieldRefs(p, pr.encode, subject)
		decRefs := fieldRefs(p, pr.decode, subject)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || p.SuppressedAt(f.Pos()) {
				continue
			}
			if !encRefs[f.Name()] {
				p.Reportf(pr.encode.Name.Pos(), "%s does not reference %s.%s: the field will silently drop off the wire (encode it, or annotate the field //grapevet:keep <why>)",
					pr.encode.Name.Name, subject.Obj().Name(), f.Name())
			}
			if !decRefs[f.Name()] {
				p.Reportf(pr.decode.Name.Pos(), "%s does not reference %s.%s: decoded values will silently zero the field (decode it, or annotate the field //grapevet:keep <why>)",
					pr.decode.Name.Name, subject.Obj().Name(), f.Name())
			}
		}
	}
	return nil
}

func pair(m map[string]*codecPair, k string) *codecPair {
	if m[k] == nil {
		m[k] = &codecPair{}
	}
	return m[k]
}

// subjectOf resolves the one named struct type serialized by the pair: it
// must appear among the encode function's parameters and among the decode
// function's results or pointer parameters. Ambiguity (0 or >1 candidates)
// skips the pair.
func subjectOf(p *Pass, pr *codecPair) *types.Named {
	enc := signatureStructs(p, pr.encode, false)
	dec := signatureStructs(p, pr.decode, true)
	var subject *types.Named
	n := 0
	for named := range enc {
		if dec[named] {
			subject = named
			n++
		}
	}
	if n != 1 {
		return nil
	}
	return subject
}

// signatureStructs collects candidate named struct types from a signature.
// For the decode side (decodeSide=true) candidates come from results and
// pointer parameters — the places a decoder writes into. The receiver (for
// method pairs like (*T).Encode/(*T).Decode) is a candidate on both sides.
// Structs with no exported fields carry nothing checkable and are dropped,
// which also keeps empty marker types (program structs, parameterless
// queries) from making pairs ambiguous.
func signatureStructs(p *Pass, fd *ast.FuncDecl, decodeSide bool) map[*types.Named]bool {
	info := p.Pkg.Info
	out := map[*types.Named]bool{}
	add := func(named *types.Named) {
		if named == nil {
			return
		}
		// generic containers (engine.Context[V] in partial codecs) carry
		// program state, not a declared wire struct — never a subject
		if named.Origin().TypeParams().Len() > 0 {
			return
		}
		if st, ok := named.Origin().Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i).Exported() {
					out[named] = true
					return
				}
			}
		}
	}
	collect := func(e ast.Expr, ptrOnly bool) {
		tv, ok := info.Types[e]
		if !ok {
			return
		}
		if ptrOnly {
			if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
				return
			}
		}
		add(namedStructOf(tv.Type))
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		collect(fd.Recv.List[0].Type, false)
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			collect(f.Type, decodeSide)
		}
	}
	if decodeSide && fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			collect(f.Type, false)
		}
	}
	return out
}

// fieldRefs collects the subject's field names referenced in the body:
// selector expressions on values of the subject type and keys of composite
// literals of the subject type. An unkeyed composite literal or a wholesale
// pass of the subject to another function counts as referencing everything —
// the encoding responsibility moved elsewhere.
func fieldRefs(p *Pass, fd *ast.FuncDecl, subject *types.Named) map[string]bool {
	info := p.Pkg.Info
	out := map[string]bool{}
	all := func() {
		st := subject.Origin().Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			out[st.Field(i).Name()] = true
		}
	}
	isSubject := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && namedStructOf(tv.Type) == subject
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.SelectorExpr:
			if isSubject(nn.X) {
				out[nn.Sel.Name] = true
			}
		case *ast.CompositeLit:
			if !isSubject(nn) {
				return true
			}
			if len(nn.Elts) > 0 {
				if _, keyed := nn.Elts[0].(*ast.KeyValueExpr); !keyed {
					all()
					return true
				}
			}
			for _, el := range nn.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		case *ast.CallExpr:
			for _, arg := range nn.Args {
				if id, ok := arg.(*ast.Ident); ok && isSubject(id) {
					all()
				}
			}
		}
		return true
	})
	return out
}
