package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks module packages with nothing but the standard
// library: `go list -export` materializes compiled export data for every
// dependency (stdlib included) in the build cache, and go/importer's gc
// importer reads those files through a lookup function. This is the same
// mechanism gopls-less vet drivers use, and it keeps grapevet free of any
// module requirement beyond the Go toolchain itself.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Package is one loaded, parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load lists the packages matched by patterns (relative to dir), parses their
// sources and type-checks them against export data produced by the go tool.
// Test files are not loaded: the invariants grapevet guards live on non-test
// run paths, and ctxfirst explicitly exempts tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		pkg, info, err := check(t.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Path: t.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return pkgs, nil
}

// check type-checks one package's parsed files.
func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return pkg, info, nil
}

// LoadDir loads fixture packages for analyzer tests: every directory under
// root/src is one package whose import path is its path relative to src.
// Fixture-to-fixture imports resolve in dependency order within the set;
// anything else (stdlib) resolves through export data from the go tool.
// It mirrors golang.org/x/tools' analysistest testdata layout so fixtures
// read identically, without requiring the x/tools module.
func LoadDir(root string) ([]*Package, error) {
	src := filepath.Join(root, "src")
	var dirs []string
	err := filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && p != src {
			if m, _ := filepath.Glob(filepath.Join(p, "*.go")); len(m) > 0 {
				dirs = append(dirs, p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking %s: %v", src, err)
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	type fixture struct {
		path    string
		files   []*ast.File
		imports []string
	}
	fixtures := map[string]*fixture{}
	var order []string
	stdlib := map[string]bool{}
	for _, d := range dirs {
		rel, _ := filepath.Rel(src, d)
		path := filepath.ToSlash(rel)
		names, _ := filepath.Glob(filepath.Join(d, "*.go"))
		fx := &fixture{path: path}
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing fixture %s: %v", name, err)
			}
			fx.files = append(fx.files, f)
			for _, spec := range f.Imports {
				fx.imports = append(fx.imports, strings.Trim(spec.Path.Value, `"`))
			}
		}
		fixtures[path] = fx
		order = append(order, path)
	}
	for _, fx := range fixtures {
		for _, im := range fx.imports {
			if _, ok := fixtures[im]; !ok {
				stdlib[im] = true
			}
		}
	}

	exports := map[string]string{}
	if len(stdlib) > 0 {
		args := append([]string{"list", "-e", "-export", "-deps",
			"-json=ImportPath,Export,Error"}, sortedKeys(stdlib)...)
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysis: go list (fixture deps): %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	checked := map[string]*types.Package{}
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return gc.Import(path)
	})

	// Type-check in dependency order within the fixture set.
	var pkgs []*Package
	done := map[string]bool{}
	var visit func(path string) error
	visit = func(path string) error {
		if done[path] {
			return nil
		}
		done[path] = true
		fx := fixtures[path]
		for _, im := range fx.imports {
			if _, ok := fixtures[im]; ok {
				if err := visit(im); err != nil {
					return err
				}
			}
		}
		pkg, info, err := check(path, fset, fx.files, imp)
		if err != nil {
			return fmt.Errorf("fixture %s: %v", path, err)
		}
		checked[path] = pkg
		pkgs = append(pkgs, &Package{Path: path, Fset: fset, Files: fx.files, Types: pkg, Info: info})
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
