package analysis

import (
	"go/ast"
	"go/types"
)

// Densepath protects the PR 3 performance property: kernels traverse frozen
// CSR graphs through hash-free dense-index accessors (GetAt/SetAt/
// IsInnerAt/...), worth 2–8× end to end on most query classes. The sparse
// by-ID accessors hash on every call, and nothing but review stops a kernel
// edit from quietly reaching for them — the program still returns the right
// answer, just slower, which no test catches.
//
// Inside PIE-program bodies (PEval/IncEval/Assemble/ApplyUpdate), a call to
// a method M whose receiver also offers M+"At" is flagged, unless the call
// is in a recognized sparse fallback: lexically behind a branch on
// (*graph.Graph).Frozen(), the documented thawed-graph path taken after a
// session mutation. Anything else needs //grapevet:keep with a reason.
var Densepath = &Analyzer{
	Name: "densepath",
	Doc: "PIE kernel bodies must use dense ...At accessors when one exists, unless " +
		"guarded by a Frozen() fallback branch",
	Run: runDensepath,
}

// densepathBodies are the PIE program entry points whose bodies are kernels.
var densepathBodies = map[string]bool{
	"PEval": true, "IncEval": true, "Assemble": true, "ApplyUpdate": true,
}

// densepathSparse limits matching to the engine's known sparse accessors, so
// an unrelated pair like Shape/ShapeAt on some other type cannot misfire.
var densepathSparse = map[string]bool{
	"Get": true, "Set": true, "SetLocal": true,
	"IsBorder": true, "IsInner": true, "Updated": true, "Vars": true,
}

func runDensepath(p *Pass) error {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !densepathBodies[fd.Name.Name] {
				continue
			}
			checkDense(p, fd)
		}
	}
	return nil
}

func checkDense(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	frozen := frozenVars(info, fd.Body)

	// Walk with an explicit ancestor stack so each call site can see the
	// branches that guard it.
	var stack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		stack = append(stack, n)
		if sel, ok := n.(*ast.SelectorExpr); ok && densepathSparse[sel.Sel.Name] {
			if named := recvWithDenseTwin(info, sel); named != nil && !inFrozenFallback(info, stack, frozen) {
				p.Reportf(sel.Sel.Pos(), "%s.%s in %s hashes per call; the dense %sAt counterpart exists — resolve the index once and stay on the CSR fast path (or //grapevet:keep <why> for a thawed fallback)",
					named.Obj().Name(), sel.Sel.Name, fd.Name.Name, sel.Sel.Name)
			}
		}
		children(n, walk)
		stack = stack[:len(stack)-1]
	}
	walk(fd.Body)
}

// recvWithDenseTwin returns the receiver's named type if sel selects a
// method M on it and the type also has a method M+"At".
func recvWithDenseTwin(info *types.Info, sel *ast.SelectorExpr) *types.Named {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	named := namedOf(s.Recv())
	if named == nil || !hasMethod(named, sel.Sel.Name+"At") {
		return nil
	}
	return named
}

func hasMethod(n *types.Named, name string) bool {
	ms := types.NewMethodSet(types.NewPointer(n))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// frozenVars collects identifiers assigned from a .Frozen() call, e.g.
// `frozen := g.Frozen()`, so guards spelled through a variable count.
func frozenVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); !ok || sel.Sel.Name != "Frozen" {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// mentionsFrozen reports whether the condition involves a Frozen() call or a
// variable bound to one.
func mentionsFrozen(info *types.Info, cond ast.Expr, frozen map[types.Object]bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.SelectorExpr:
			if nn.Sel.Name == "Frozen" {
				found = true
			}
		case *ast.Ident:
			if obj := info.Uses[nn]; obj != nil && frozen[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// inFrozenFallback reports whether the innermost node of stack sits in a
// recognized sparse-fallback region: the else branch of an if on Frozen(),
// or lexically after a sibling `if ...Frozen()... { ...; return/continue/
// break }` in an enclosing block. This matches the repo's idiom exactly —
// the dense path exits early and the sparse fallback follows.
func inFrozenFallback(info *types.Info, stack []ast.Node, frozen map[types.Object]bool) bool {
	target := stack[len(stack)-1]
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if n.Else != nil && within(target, n.Else) && mentionsFrozen(info, n.Cond, frozen) {
				return true
			}
		case *ast.BlockStmt:
			for _, stmt := range n.List {
				if stmt.End() > target.Pos() {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || !mentionsFrozen(info, ifs.Cond, frozen) {
					continue
				}
				if endsInExit(ifs.Body) {
					return true
				}
			}
		}
	}
	return false
}

func within(n ast.Node, outer ast.Node) bool {
	return n.Pos() >= outer.Pos() && n.End() <= outer.End()
}

// endsInExit reports whether the block's last statement leaves the enclosing
// region (return, continue, break, or a panic call).
func endsInExit(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// children invokes walk on each direct child of n, in source order.
func children(n ast.Node, walk func(ast.Node)) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			walk(m)
		}
		return false
	})
}
