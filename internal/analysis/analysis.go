// Package analysis is grapevet: a suite of custom static-analysis passes
// enforcing the engine invariants that keep results, comm bytes and
// supersteps byte-identical across the bus and wire substrates. Generic
// linters cannot see these rules — they are properties of this codebase's
// architecture (deterministic encode paths, complete pool reset, context
// discipline, dense-index kernels, codec/field coherence) — so the tree
// carries its own checkers and runs them in CI next to staticcheck.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, testdata-based fixture tests) but is built on the standard
// library alone: packages are type-checked against `go list -export` data,
// so the module needs no dependency beyond the Go toolchain.
//
// A finding can be waived with a trailing or preceding comment of the form
//
//	//grapevet:keep <reason>
//
// on the offending line (or, for field-based findings, on the field's
// declaration). The reason is mandatory by convention and reviewed like
// code: an unexplained keep is a review rejection, not a compile error.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	// Name identifies the pass in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description printed by grapevet -help.
	Doc string
	// Run reports findings on one package through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
	// keep maps file -> set of lines carrying a //grapevet:keep comment.
	keep map[*token.File]map[int]bool
}

// A Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// KeepDirective is the comment prefix that waives a finding.
const KeepDirective = "//grapevet:keep"

// Reportf records a finding at pos unless the line (or the line above it)
// carries a //grapevet:keep comment.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.SuppressedAt(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// SuppressedAt reports whether pos's line or the line directly above it
// carries a keep directive. Analyzers that attach blame to a different
// node than they report at (e.g. poolreset blaming a struct field) call
// this directly.
func (p *Pass) SuppressedAt(pos token.Pos) bool {
	tf := p.Pkg.Fset.File(pos)
	if tf == nil {
		return false
	}
	lines := p.keep[tf]
	if lines == nil {
		return false
	}
	l := tf.Line(pos)
	return lines[l] || lines[l-1]
}

func newPass(a *Analyzer, pkg *Package, diags *[]Diagnostic) *Pass {
	p := &Pass{Analyzer: a, Pkg: pkg, diags: diags, keep: map[*token.File]map[int]bool{}}
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, KeepDirective) {
					if p.keep[tf] == nil {
						p.keep[tf] = map[int]bool{}
					}
					p.keep[tf][tf.Line(c.Pos())] = true
				}
			}
		}
	}
	return p
}

// Run applies every analyzer to every package and returns the findings
// sorted by position. An analyzer error aborts the run: a pass that cannot
// complete is a bug in the pass, not a clean tree.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if err := a.Run(newPass(a, pkg, &diags)); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full grapevet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Mapdet, Poolreset, Ctxfirst, Densepath, Codecfields, Errclass}
}

// inspect walks every file of the pass's package.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
