package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Mapdet guards the first cross-substrate invariant: everything that emits
// bytes onto the wire, builds a cache key, or folds update parameters must
// iterate deterministically. Go's map iteration order is randomized per run,
// so a bare map range inside an Encode*/Append*/canonical*/fold path makes
// encode bytes differ between two runs over identical state — results still
// agree, but comm-byte metering drifts, cache keys stop matching, and the
// byte-identical-across-substrates property the benches pin is silently
// gone.
//
// The one blessed idiom is collect-then-sort: a range whose body only
// appends to slices, followed by a sort call later in the same function.
// Anything else needs a //grapevet:keep with a reason.
var Mapdet = &Analyzer{
	Name: "mapdet",
	Doc: "flag nondeterministic map iteration in encode/canonicalize/fold paths; " +
		"the collect-keys-then-sort idiom is recognized as safe",
	Run: runMapdet,
}

// mapdetScopes are the function-name prefixes that mark a deterministic
// path: wire encoders (Encode*/Append*), cache-key canonicalization and the
// coordinator's fold/flush machinery.
var mapdetScopes = []string{
	"Encode", "encode", "Append", "append",
	"Canonical", "canonical", "Fold", "fold", "Flush", "flush",
}

func inMapdetScope(name string) bool {
	for _, pre := range mapdetScopes {
		if strings.HasPrefix(name, pre) {
			return true
		}
	}
	return false
}

func runMapdet(p *Pass) error {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !inMapdetScope(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if isCollectLoop(rs) && sortsAfter(fd.Body, rs) {
					return true
				}
				p.Reportf(rs.Pos(), "map iteration in deterministic path %s: emission order is randomized per run; collect keys into a slice and sort before emitting", fd.Name.Name)
				return true
			})
		}
	}
	return nil
}

// isCollectLoop reports whether every statement of the range body is an
// append into a slice (`x = append(x, ...)`): the loop gathers keys/values
// without emitting anything order-dependent.
func isCollectLoop(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return false
		}
	}
	return true
}

// sortsAfter reports whether a sort-package call appears lexically after the
// range statement inside the function body — the second half of the
// collect-then-sort idiom. The pairing is lexical, not data-flow, which is
// precise enough for review-time enforcement.
func sortsAfter(body *ast.BlockStmt, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sort" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
