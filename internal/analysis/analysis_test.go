package analysis

// The fixture tests mirror golang.org/x/tools' analysistest: each package
// under testdata/src is a small program exercising one analyzer, and every
// line expected to produce a finding carries a trailing comment of the form
//
//	// want "regex" ["regex" ...]
//
// The test fails on any diagnostic without a matching want on its line and on
// any want without a matching diagnostic — so each fixture proves both that
// the violation fires and that the conforming/suppressed variants stay quiet.

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	fixturesOnce sync.Once
	fixturePkgs  []*Package
	fixturesErr  error
)

func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	fixturesOnce.Do(func() {
		fixturePkgs, fixturesErr = LoadDir("testdata")
	})
	if fixturesErr != nil {
		t.Fatalf("loading fixtures: %v", fixturesErr)
	}
	return fixturePkgs
}

// wantRx extracts the quoted patterns of a `// want "..." "..."` comment.
var wantRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantDiag struct {
	rx      *regexp.Regexp
	matched bool
}

func checkFixture(t *testing.T, a *Analyzer, pkgPath string) {
	t.Helper()
	checkFixtureAll(t, []*Analyzer{a}, pkgPath)
}

// checkFixtureAll runs several analyzers over one fixture package against its
// combined want set — for fixtures (like trace) that one analyzer must flag
// and another must stay quiet on.
func checkFixtureAll(t *testing.T, as []*Analyzer, pkgPath string) {
	t.Helper()
	var pkg *Package
	for _, p := range loadFixtures(t) {
		if p.Path == pkgPath {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatalf("fixture package %q not found under testdata/src", pkgPath)
	}

	wants := map[string][]*wantDiag{} // "file:line" -> expectations
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				key := fmt.Sprintf("%s:%d", tf.Name(), tf.Line(c.Pos()))
				for _, m := range wantRx.FindAllStringSubmatch(text, -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &wantDiag{rx: rx})
				}
			}
		}
	}

	diags, err := Run(as, []*Package{pkg})
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.rx)
			}
		}
	}
}

func TestMapdet(t *testing.T)      { checkFixture(t, Mapdet, "mapdet") }
func TestPoolreset(t *testing.T)   { checkFixture(t, Poolreset, "poolreset") }
func TestCtxfirst(t *testing.T)    { checkFixture(t, Ctxfirst, "ctxfirst") }
func TestDensepath(t *testing.T)   { checkFixture(t, Densepath, "densepath") }
func TestCodecfields(t *testing.T) { checkFixture(t, Codecfields, "codecfields") }
func TestErrclass(t *testing.T)    { checkFixture(t, Errclass, "errclass") }

// TestCtxfirstMainExempt pins the one deliberate hole in ctxfirst: package
// main owns the process and is where root contexts are minted.
func TestCtxfirstMainExempt(t *testing.T) { checkFixture(t, Ctxfirst, "ctxmain") }

// TestRecorderFixture runs poolreset and ctxfirst together over the
// miniature trace package: the conforming pooled Recorder (reset reassigns
// steps and open, mutex kept) is quiet, the leaky twin whose reset forgets
// the open-step cursor fires, and ctxfirst stays silent — the recorder
// legitimately lives in a pool and on the context there, never in a struct
// (the violating struct-held recorder lives in the ctxfirst fixture).
func TestRecorderFixture(t *testing.T) { checkFixtureAll(t, []*Analyzer{Poolreset, Ctxfirst}, "trace") }
