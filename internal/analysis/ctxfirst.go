package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxfirst enforces the PR 5 context discipline that makes every run
// cancellable and deadline-bounded end to end: a context.Context travels as
// the first parameter of any function that takes one, is never stored in a
// struct (a stored context outlives the call it bounds and silently detaches
// cancellation), and is never minted via context.Background()/TODO() outside
// package main — a library that conjures its own root context has broken the
// request→run chain, and the caller's deadline no longer reaches the
// superstep barrier.
//
// The flight recorder rides the same discipline: trace.Recorder is run-scoped
// state carried by the run context (trace.WithRecorder), and its span buffers
// are pool-recycled when the run's snapshot is retained. A Recorder stored in
// a struct outlives its run exactly like a stored context does — and worse,
// a later run's Release can hand the pooled buffers back while the struct
// still points at them. So ctxfirst flags Recorder struct fields too.
var Ctxfirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context must be the first parameter, never a struct field, and " +
		"never created with Background()/TODO() outside package main; " +
		"trace.Recorder rides the context and is never a struct field either",
	Run: runCtxfirst,
}

func runCtxfirst(p *Pass) error {
	info := p.Pkg.Info
	isCtx := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		n := namedOf(tv.Type)
		return n != nil && n.Obj().Name() == "Context" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
	}
	isMain := p.Pkg.Types.Name() == "main"
	// The recorder type is matched by (package path suffix, name) so the
	// fixture's miniature trace package exercises the same code path as the
	// real grape/internal/trace.
	isRecorder := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		n := namedOf(tv.Type)
		if n == nil || n.Obj().Name() != "Recorder" || n.Obj().Pkg() == nil {
			return false
		}
		path := n.Obj().Pkg().Path()
		return path == "trace" || strings.HasSuffix(path, "/trace")
	}

	p.inspect(func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncDecl:
			if nn.Type.Params == nil {
				return true
			}
			pos := 0
			for _, field := range nn.Type.Params.List {
				w := len(field.Names)
				if w == 0 {
					w = 1
				}
				if isCtx(field.Type) && pos > 0 {
					p.Reportf(field.Pos(), "context.Context is parameter %d of %s, not first: run-path signatures are ctx-first so cancellation reads uniformly at every call site", pos+1, nn.Name.Name)
				}
				pos += w
			}
		case *ast.StructType:
			for _, field := range nn.Fields.List {
				if isCtx(field.Type) {
					p.Reportf(field.Pos(), "context.Context stored in a struct: a kept context outlives the call it bounds; pass it as the first parameter of each method instead")
				}
				if isRecorder(field.Type) && !p.SuppressedAt(field.Pos()) {
					p.Reportf(field.Pos(), "trace.Recorder stored in a struct: the recorder is run-scoped, pool-recycled state that rides the run context (trace.WithRecorder); a struct-held recorder outlives its run and can alias buffers the pool already handed to the next run")
				}
			}
		case *ast.CallExpr:
			sel, ok := nn.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if obj, ok := info.Uses[id]; ok {
				if pn, ok := obj.(*types.PkgName); ok && pn.Imported().Path() == "context" && !isMain {
					p.Reportf(nn.Pos(), "context.%s() outside package main severs the caller's cancellation chain; accept a ctx parameter and pass it through", sel.Sel.Name)
				}
			}
		}
		return true
	})
	return nil
}
