package graph

import (
	"reflect"
	"testing"
)

func TestGraphWireRoundTrip(t *testing.T) {
	for _, directed := range []bool{true, false} {
		var g *Graph
		if directed {
			g = New()
		} else {
			g = NewUndirected()
		}
		g.AddVertex(10, "person")
		g.AddVertex(3, "")
		g.AddVertex(77, "product")
		g.SetProps(10, []string{"db", "graph"})
		g.AddLabeledEdge(10, 3, 1.5, "follows")
		g.AddLabeledEdge(3, 77, 2.25, "")
		g.AddEdge(10, 77, 0.125)

		buf := AppendGraph(nil, g)
		got, used, err := DecodeGraph(buf)
		if err != nil {
			t.Fatalf("directed=%v: %v", directed, err)
		}
		if used != len(buf) {
			t.Fatalf("directed=%v: consumed %d of %d bytes", directed, used, len(buf))
		}
		if !reflect.DeepEqual(got, g.Clone()) && !sameGraph(got, g) {
			t.Fatalf("directed=%v: decoded graph differs", directed)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("directed=%v: decoded graph invalid: %v", directed, err)
		}
		// dense order must be preserved exactly — worker-side iteration
		// order, and hence PEval behaviour, depends on it
		if !reflect.DeepEqual(got.Vertices(), g.Vertices()) {
			t.Fatalf("directed=%v: vertex order changed: %v vs %v", directed, got.Vertices(), g.Vertices())
		}
	}
}

func sameGraph(a, b *Graph) bool {
	if a.Directed() != b.Directed() || a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for _, v := range b.Vertices() {
		if a.Label(v) != b.Label(v) || !reflect.DeepEqual(a.Props(v), b.Props(v)) {
			return false
		}
		if !reflect.DeepEqual(a.Out(v), b.Out(v)) {
			return false
		}
	}
	return true
}

func TestDecodeGraphRejectsGarbage(t *testing.T) {
	good := AppendGraph(nil, func() *Graph {
		g := New()
		g.AddVertex(1, "a")
		g.AddEdge(1, 1, 2)
		return g
	}())
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := DecodeGraph(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, _, err := DecodeGraph([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage decoded without error")
	}
}
