package graph

import (
	"reflect"
	"sync"
	"testing"
)

// buildLabeled returns a small directed graph exercising labels, props,
// parallel edges and a self-loop.
func buildLabeled() *Graph {
	g := New()
	g.AddVertex(10, "person")
	g.AddVertex(3, "")
	g.AddVertex(77, "product")
	g.SetProps(10, []string{"db", "graph"})
	g.AddLabeledEdge(10, 3, 1.5, "follows")
	g.AddLabeledEdge(10, 3, 2.5, "follows") // parallel
	g.AddLabeledEdge(3, 77, 2.25, "buy")
	g.AddLabeledEdge(77, 77, 1, "") // self-loop
	g.AddEdge(10, 77, 0.125)
	return g
}

func TestFreezePreservesBoundaryAPI(t *testing.T) {
	g := buildLabeled()
	want := g.Clone() // stays mutable
	g.Freeze()
	if !g.Frozen() {
		t.Fatal("Freeze did not freeze")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != want.NumVertices() || g.NumEdges() != want.NumEdges() {
		t.Fatal("counts changed")
	}
	for _, v := range want.Vertices() {
		if g.Label(v) != want.Label(v) {
			t.Fatalf("label of %d changed", v)
		}
		if !reflect.DeepEqual(g.Props(v), want.Props(v)) {
			t.Fatalf("props of %d changed", v)
		}
		if !reflect.DeepEqual(g.Out(v), want.Out(v)) {
			t.Fatalf("out of %d changed: %v vs %v", v, g.Out(v), want.Out(v))
		}
		if !reflect.DeepEqual(g.In(v), want.In(v)) {
			t.Fatalf("in of %d changed: %v vs %v", v, g.In(v), want.In(v))
		}
	}
}

func TestDenseAccessorsAgreeWithBoundaryAPI(t *testing.T) {
	g := buildLabeled().Freeze()
	for i := int32(0); i < int32(g.NumVertices()); i++ {
		id := g.IDAt(i)
		if g.LabelAt(i) != g.Label(id) {
			t.Fatalf("LabelAt(%d) mismatch", i)
		}
		if g.LabelName(g.LabelIDAt(i)) != g.Label(id) {
			t.Fatalf("LabelIDAt(%d) interning mismatch", i)
		}
		if g.OutDegreeAt(i) != len(g.Out(id)) || g.InDegreeAt(i) != len(g.In(id)) {
			t.Fatalf("degrees at %d mismatch", i)
		}
		for k, e := range g.OutAt(i) {
			sparse := g.Out(id)[k]
			if g.IDAt(e.To) != sparse.To || e.W != sparse.W || g.LabelName(e.Label) != sparse.Label {
				t.Fatalf("OutAt(%d)[%d] = %+v does not match %+v", i, k, e, sparse)
			}
		}
		for k, e := range g.InAt(i) {
			sparse := g.In(id)[k]
			if g.IDAt(e.To) != sparse.To || e.W != sparse.W || g.LabelName(e.Label) != sparse.Label {
				t.Fatalf("InAt(%d)[%d] = %+v does not match %+v", i, k, e, sparse)
			}
		}
	}
	if _, ok := g.LabelID("follows"); !ok {
		t.Fatal("edge label not interned")
	}
	if _, ok := g.LabelID("no-such-label"); ok {
		t.Fatal("phantom label interned")
	}
}

// TestThawRestoresMutability: mutating a frozen graph transparently thaws
// it, preserving everything and allowing further growth; re-freezing works.
func TestThawRestoresMutability(t *testing.T) {
	g := buildLabeled().Freeze()
	g.AddLabeledEdge(3, 10, 9, "back") // thaws
	if g.Frozen() {
		t.Fatal("mutation did not thaw")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Out(3)) != 2 {
		t.Fatalf("out(3) = %v", g.Out(3))
	}
	if len(g.In(10)) != 1 || g.In(10)[0].Label != "back" {
		t.Fatalf("in(10) = %v", g.In(10))
	}
	g.AddVertex(500, "new")
	g.Freeze()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Label(500) != "new" || len(g.Out(10)) != 3 {
		t.Fatal("refreeze lost data")
	}
}

// TestFrozenConcurrentReads is the regression test for the buildIn race: on
// a frozen graph every read accessor — In() included — must be safe for
// concurrent use (run under -race in CI). Before Freeze existed, In() built
// the reverse adjacency lazily with no synchronization.
func TestFrozenConcurrentReads(t *testing.T) {
	g := New()
	for v := 0; v < 200; v++ {
		g.AddVertex(ID(v), "")
	}
	for v := 0; v < 200; v++ {
		g.AddEdge(ID(v), ID((v*7+1)%200), 1)
		g.AddEdge(ID(v), ID((v*13+5)%200), 2)
	}
	g.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			total := 0
			for v := 0; v < 200; v++ {
				id := ID((v + seed) % 200)
				total += len(g.In(id)) + len(g.Out(id))
				i, _ := g.Index(id)
				total += len(g.InAt(i)) + len(g.OutAt(i))
				_ = g.LabelIDAt(i)
				g.BFS(id, func(ID, int) bool { return true })
			}
			if total == 0 {
				t.Error("no edges seen")
			}
		}(w)
	}
	wg.Wait()
}

func TestCloneFrozenIsIndependent(t *testing.T) {
	g := buildLabeled().Freeze()
	c := g.Clone()
	if !c.Frozen() {
		t.Fatal("clone of frozen graph should be frozen")
	}
	c.AddEdge(3, 10, 1) // thaws the clone only
	if c.Frozen() || !g.Frozen() {
		t.Fatal("thaw leaked between clone and original")
	}
	if len(g.Out(3)) != 1 || len(c.Out(3)) != 2 {
		t.Fatalf("adjacency leaked: orig %v clone %v", g.Out(3), c.Out(3))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// ---- CSR microbenchmarks: the isolated traversal win, independent of any
// engine machinery. Run with -bench 'BenchmarkTraversal' -benchmem.

func benchGraph(n int) *Graph {
	g := New()
	for v := 0; v < n; v++ {
		g.AddVertex(ID(v), "")
	}
	for v := 0; v < n; v++ {
		for k := 1; k <= 8; k++ {
			g.AddEdge(ID(v), ID((v*k+k)%n), float64(k))
		}
	}
	return g
}

// The benchmark bodies do what every traversal kernel does per edge hop:
// land on the target and touch per-target state. On the unfrozen path
// Edge.To is a sparse ID, so the landing costs a hash lookup; on the frozen
// path DenseEdge.To indexes directly.
func BenchmarkTraversalOut(b *testing.B) {
	const n = 10000
	b.Run("unfrozen", func(b *testing.B) {
		g := benchGraph(n)
		b.ReportAllocs()
		b.ResetTimer()
		sum := 0
		for i := 0; i < b.N; i++ {
			for v := 0; v < n; v++ {
				for _, e := range g.Out(ID(v)) {
					sum += g.OutDegree(e.To) // sparse target: hash per hop
				}
			}
		}
		_ = sum
	})
	b.Run("frozen", func(b *testing.B) {
		g := benchGraph(n).Freeze()
		b.ReportAllocs()
		b.ResetTimer()
		sum := 0
		for i := 0; i < b.N; i++ {
			for vi := int32(0); vi < int32(n); vi++ {
				for _, e := range g.OutAt(vi) {
					sum += g.OutDegreeAt(e.To) // dense target: direct index
				}
			}
		}
		_ = sum
	})
}

func BenchmarkTraversalIn(b *testing.B) {
	const n = 10000
	b.Run("unfrozen", func(b *testing.B) {
		g := benchGraph(n)
		g.In(0) // build the lazy reverse adjacency outside the timing loop
		b.ReportAllocs()
		b.ResetTimer()
		sum := 0
		for i := 0; i < b.N; i++ {
			for v := 0; v < n; v++ {
				for _, e := range g.In(ID(v)) {
					sum += g.OutDegree(e.To)
				}
			}
		}
		_ = sum
	})
	b.Run("frozen", func(b *testing.B) {
		g := benchGraph(n).Freeze()
		b.ReportAllocs()
		b.ResetTimer()
		sum := 0
		for i := 0; i < b.N; i++ {
			for vi := int32(0); vi < int32(n); vi++ {
				for _, e := range g.InAt(vi) {
					sum += g.OutDegreeAt(e.To)
				}
			}
		}
		_ = sum
	})
}
