package graph

import "sort"

// SubgraphBuilder assembles a frozen subgraph of a frozen source graph
// without touching the mutable build API: vertices and edges are identified
// by the source graph's dense indices and interned labels, remapped through
// flat arrays, so copying a fragment costs one hash per vertex (the new
// graph's own ID index) and zero per edge. partition.Build and
// InducedSubgraph use it to cut fragments straight into CSR form.
//
// Usage: add vertices (idempotent, in the order their dense indices should
// come out), then stream edges in any order; Finish counting-sorts the
// stream by source — stably, so each vertex keeps its edges in insertion
// order, exactly as the mutable API would have.
type SubgraphBuilder struct {
	src   *Graph
	ids   []ID
	lbl   []string
	props [][]string
	vlab  []int32 // new dense index -> source label ID
	index map[ID]int32
	local []int32 // source dense index -> new dense index, -1 if absent

	esrc, eto []int32 // edge stream endpoints, new dense indices
	elab      []int32 // edge stream labels, source label IDs
	ew        []float64
	numEdges  int
}

// NewSubgraphBuilder returns a builder for a subgraph of src, which must be
// frozen. sizeHint sizes the vertex index.
func NewSubgraphBuilder(src *Graph, sizeHint int) *SubgraphBuilder {
	local := make([]int32, src.NumVertices())
	for i := range local {
		local[i] = -1
	}
	return &SubgraphBuilder{src: src, index: make(map[ID]int32, sizeHint), local: local}
}

// Has reports whether the vertex at source dense index i has been added.
func (b *SubgraphBuilder) Has(i int32) bool { return b.local[i] >= 0 }

// Local returns the subgraph dense index of the vertex at source dense index
// i, or -1 if it has not been added.
func (b *SubgraphBuilder) Local(i int32) int32 { return b.local[i] }

// AddVertex copies the vertex at source dense index i — ID, label and a
// fresh copy of its properties — and returns its dense index in the
// subgraph. It is idempotent.
func (b *SubgraphBuilder) AddVertex(i int32) int32 {
	if li := b.local[i]; li >= 0 {
		return li
	}
	li := int32(len(b.ids))
	b.local[i] = li
	id := b.src.ids[i]
	b.ids = append(b.ids, id)
	b.lbl = append(b.lbl, b.src.labels[i])
	var props []string
	if ps := b.src.props[i]; len(ps) > 0 {
		props = append([]string(nil), ps...)
	}
	b.props = append(b.props, props)
	b.vlab = append(b.vlab, b.src.vlab[i])
	b.index[id] = li
	return li
}

// AddEdge records a copy of the source's packed edge e leaving the vertex at
// source dense index from. Both endpoints must have been added. One call per
// logical edge: for an undirected source the mirror direction is stored
// automatically, as the mutable AddEdge does.
func (b *SubgraphBuilder) AddEdge(from int32, e DenseEdge) {
	u, v := b.local[from], b.local[e.To]
	b.esrc = append(b.esrc, u)
	b.eto = append(b.eto, v)
	b.elab = append(b.elab, e.Label)
	b.ew = append(b.ew, e.W)
	if !b.src.directed {
		b.esrc = append(b.esrc, v)
		b.eto = append(b.eto, u)
		b.elab = append(b.elab, e.Label)
		b.ew = append(b.ew, e.W)
	}
	b.numEdges++
}

// Finish assembles and returns the frozen subgraph. The builder must not be
// reused afterwards.
func (b *SubgraphBuilder) Finish() *Graph {
	g := &Graph{
		directed: b.src.directed,
		ids:      b.ids,
		index:    b.index,
		labels:   b.lbl,
		props:    b.props,
		numEdges: b.numEdges,
		frozen:   true,
	}
	nv := len(b.ids)
	lmap := make([]int32, b.src.NumLabels())
	for i := range lmap {
		lmap[i] = -1
	}
	intern := func(sid int32) int32 {
		if nid := lmap[sid]; nid >= 0 {
			return nid
		}
		nid := int32(len(g.labelNames))
		g.labelNames = append(g.labelNames, b.src.labelNames[sid])
		lmap[sid] = nid
		return nid
	}
	g.vlab = make([]int32, nv)
	for i, sid := range b.vlab {
		g.vlab[i] = intern(sid)
	}
	// Stable counting sort of the edge stream by source.
	g.outOff = make([]int32, nv+1)
	for _, s := range b.esrc {
		g.outOff[s+1]++
	}
	for i := 0; i < nv; i++ {
		g.outOff[i+1] += g.outOff[i]
	}
	ne := len(b.esrc)
	g.outCSR = make([]Edge, ne)
	g.outDense = make([]DenseEdge, ne)
	next := make([]int32, nv)
	copy(next, g.outOff[:nv])
	for k := 0; k < ne; k++ {
		s := b.esrc[k]
		pos := next[s]
		next[s]++
		lid := intern(b.elab[k])
		g.outDense[pos] = DenseEdge{To: b.eto[k], Label: lid, W: b.ew[k]}
		g.outCSR[pos] = Edge{To: g.ids[b.eto[k]], W: b.ew[k], Label: g.labelNames[lid]}
	}
	g.labelIDs = make(map[string]int32, len(g.labelNames))
	for i, s := range g.labelNames {
		g.labelIDs[s] = int32(i)
	}
	g.buildReverseCSR()
	return g
}

// SortedIndices returns the graph's dense vertex indices ordered by
// ascending vertex ID — the dense counterpart of SortedVertices (a fresh
// slice).
func (g *Graph) SortedIndices() []int32 {
	out := make([]int32, len(g.ids))
	for i := range out {
		out[i] = int32(i)
	}
	sort.Slice(out, func(a, b int) bool { return g.ids[out[a]] < g.ids[out[b]] })
	return out
}
