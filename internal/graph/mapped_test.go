package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// equalFrozen checks that two frozen graphs are indistinguishable through
// every public observation: the struct-level wire encoding (ids, labels,
// props and adjacency in dense order), the dense accessors, the reverse CSR
// and the label intern table.
func equalFrozen(t *testing.T, want, got *Graph) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("reconstructed graph invalid: %v", err)
	}
	if !bytes.Equal(AppendGraph(nil, want), AppendGraph(nil, got)) {
		t.Fatal("wire encodings differ")
	}
	if want.NumEdges() != got.NumEdges() || want.Directed() != got.Directed() {
		t.Fatal("edge count or kind differ")
	}
	if want.NumLabels() != got.NumLabels() {
		t.Fatalf("label tables differ: %d vs %d", want.NumLabels(), got.NumLabels())
	}
	for l := int32(0); l < int32(want.NumLabels()); l++ {
		if want.LabelName(l) != got.LabelName(l) {
			t.Fatalf("label %d: %q vs %q", l, want.LabelName(l), got.LabelName(l))
		}
	}
	for i := int32(0); i < int32(want.NumVertices()); i++ {
		if want.LabelIDAt(i) != got.LabelIDAt(i) {
			t.Fatalf("vertex %d: interned label differs", i)
		}
		if !reflect.DeepEqual(want.OutAt(i), got.OutAt(i)) {
			t.Fatalf("vertex %d: packed out-edges differ", i)
		}
		if !reflect.DeepEqual(want.InAt(i), got.InAt(i)) {
			t.Fatalf("vertex %d: packed in-edges differ", i)
		}
		id := want.IDAt(i)
		if !reflect.DeepEqual(want.In(id), got.In(id)) {
			t.Fatalf("vertex %d: sparse in-edges differ", id)
		}
	}
}

// randomGraph builds a random labeled graph from a seed: sparse IDs, a few
// distinct vertex and edge labels, props on some vertices, parallel edges and
// self-loops all possible.
func randomGraph(seed int64, directed bool) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var g *Graph
	if directed {
		g = New()
	} else {
		g = NewUndirected()
	}
	nv := rng.Intn(40)
	vlabels := []string{"", "a", "b", "person"}
	elabels := []string{"", "x", "follows"}
	ids := make([]ID, 0, nv)
	for i := 0; i < nv; i++ {
		id := ID(rng.Intn(500))
		g.AddVertex(id, vlabels[rng.Intn(len(vlabels))])
		ids = append(ids, id)
		if rng.Intn(4) == 0 {
			g.SetProps(id, []string{"k", "w"}[:1+rng.Intn(2)])
		}
	}
	if len(ids) > 0 {
		ne := rng.Intn(80)
		for i := 0; i < ne; i++ {
			u, v := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			g.AddLabeledEdge(u, v, float64(rng.Intn(8))+0.5, elabels[rng.Intn(len(elabels))])
		}
	}
	return g
}

// TestFromMappedFreezeEquivalence is the Freeze()-equivalence property test:
// for random graphs, FromMapped(CSRView(Freeze(g))) must be indistinguishable
// from Freeze(g) itself — the flat form round-trips every observation.
func TestFromMappedFreezeEquivalence(t *testing.T) {
	prop := func(seed int64, directed bool) bool {
		g := randomGraph(seed, directed).Freeze()
		d, err := g.CSRView()
		if err != nil {
			t.Fatal(err)
		}
		got, err := FromMapped(d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		equalFrozen(t, g, got)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFromMappedCopiesOnMutate proves a mapped graph never writes through the
// arrays it was built from: mutate it, and the caller's slices are unchanged.
func TestFromMappedCopiesOnMutate(t *testing.T) {
	g := randomGraph(7, true).Freeze()
	d, err := g.CSRView()
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot the mapped arrays the way a file mapping would hold them.
	ids := append([]ID(nil), d.IDs...)
	outOff := append([]int32(nil), d.OutOff...)
	outDense := append([]DenseEdge(nil), d.OutDense...)
	m, err := FromMapped(CSRData{
		Directed: d.Directed, NumEdges: d.NumEdges,
		IDs: ids, VLabels: append([]int32(nil), d.VLabels...),
		OutOff: outOff, OutDense: outDense,
		InOff: append([]int32(nil), d.InOff...), InDense: append([]DenseEdge(nil), d.InDense...),
		Labels: append([]string(nil), d.Labels...),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.AddLabeledEdge(9999, 9998, 1.25, "new")
	m.AddVertex(9997, "fresh")
	for i := int32(0); i < int32(len(ids)); i++ {
		if es := m.Out(ids[i]); len(es) > 0 {
			if _, ok := m.RemoveEdge(ids[i], es[0].To, es[0].Label); !ok {
				t.Fatal("remove failed")
			}
			break
		}
	}
	m.Freeze()
	if !reflect.DeepEqual(ids[:len(d.IDs)], d.IDs) ||
		!reflect.DeepEqual(outOff, d.OutOff) ||
		!reflect.DeepEqual(outDense, d.OutDense) {
		t.Fatal("mutation wrote through the mapped arrays")
	}
}

// TestFromMappedRejectsCorruptInput spot-checks the bounds validation.
func TestFromMappedRejectsCorruptInput(t *testing.T) {
	g := randomGraph(11, true).Freeze()
	base, err := g.CSRView()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 2 || len(base.OutDense) == 0 {
		t.Skip("degenerate seed")
	}
	corrupt := func(name string, mut func(*CSRData)) {
		d := base
		d.IDs = append([]ID(nil), base.IDs...)
		d.VLabels = append([]int32(nil), base.VLabels...)
		d.OutOff = append([]int32(nil), base.OutOff...)
		d.OutDense = append([]DenseEdge(nil), base.OutDense...)
		mut(&d)
		if _, err := FromMapped(d); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
	corrupt("dup id", func(d *CSRData) { d.IDs[1] = d.IDs[0] })
	corrupt("label out of range", func(d *CSRData) { d.VLabels[0] = int32(len(d.Labels)) })
	corrupt("target out of range", func(d *CSRData) { d.OutDense[0].To = int32(len(d.IDs)) })
	corrupt("offsets not monotone", func(d *CSRData) { d.OutOff[1] = d.OutOff[len(d.OutOff)-1] + 1 })
	corrupt("short vlab", func(d *CSRData) { d.VLabels = d.VLabels[:len(d.VLabels)-1] })
}
