package graph

// BFS runs a breadth-first traversal from src over out-edges, invoking visit
// with each reached vertex and its hop distance. If visit returns false the
// traversal stops. src must exist.
func (g *Graph) BFS(src ID, visit func(id ID, depth int) bool) {
	seen := map[ID]bool{src: true}
	frontier := []ID{src}
	depth := 0
	for len(frontier) > 0 {
		var next []ID
		for _, u := range frontier {
			if !visit(u, depth) {
				return
			}
			for _, e := range g.Out(u) {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		frontier = next
		depth++
	}
}

// Neighborhood returns the set of vertices within d hops of each seed
// (following out-edges), including the seeds themselves.
func (g *Graph) Neighborhood(seeds []ID, d int) map[ID]bool {
	if g.frozen {
		return g.neighborhoodIdx(seeds, d, false)
	}
	seen := make(map[ID]bool, len(seeds))
	frontier := make([]ID, 0, len(seeds))
	for _, s := range seeds {
		if g.Has(s) && !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
		}
	}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []ID
		for _, u := range frontier {
			for _, e := range g.Out(u) {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return seen
}

// UndirectedNeighborhood is Neighborhood following both edge directions.
func (g *Graph) UndirectedNeighborhood(seeds []ID, d int) map[ID]bool {
	if g.frozen {
		return g.neighborhoodIdx(seeds, d, true)
	}
	seen := make(map[ID]bool, len(seeds))
	frontier := make([]ID, 0, len(seeds))
	for _, s := range seeds {
		if g.Has(s) && !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
		}
	}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []ID
		for _, u := range frontier {
			for _, e := range g.Out(u) {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, e := range g.In(u) {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return seen
}

// neighborhoodIdx is the frozen fast path shared by Neighborhood and
// UndirectedNeighborhood: the BFS runs over dense indices with a flat
// visited array, hashing only to resolve the seeds and build the result set.
func (g *Graph) neighborhoodIdx(seeds []ID, d int, undirected bool) map[ID]bool {
	visited := make([]bool, len(g.ids))
	frontier := make([]int32, 0, len(seeds))
	n := 0
	for _, s := range seeds {
		if i, ok := g.index[s]; ok && !visited[i] {
			visited[i] = true
			frontier = append(frontier, i)
			n++
		}
	}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []int32
		for _, u := range frontier {
			for _, e := range g.OutAt(u) {
				if !visited[e.To] {
					visited[e.To] = true
					next = append(next, e.To)
					n++
				}
			}
			if undirected {
				for _, e := range g.InAt(u) {
					if !visited[e.To] {
						visited[e.To] = true
						next = append(next, e.To)
						n++
					}
				}
			}
		}
		frontier = next
	}
	seen := make(map[ID]bool, n)
	for i, ok := range visited {
		if ok {
			seen[g.ids[i]] = true
		}
	}
	return seen
}

// Diameter returns the hop eccentricity of src: the maximum BFS depth reached
// from src. It is a cheap lower bound on graph diameter used by tests and the
// dataset report in cmd/grape-gen.
func (g *Graph) Diameter(src ID) int {
	max := 0
	g.BFS(src, func(_ ID, depth int) bool {
		if depth > max {
			max = depth
		}
		return true
	})
	return max
}
