package graph

// Frozen CSR form. A Graph lives in one of two phases:
//
//	build phase (mutable)  — AddVertex/AddEdge grow per-vertex adjacency
//	                         slices; not safe for concurrent use; In() builds
//	                         the reverse adjacency lazily on first call.
//	query phase (frozen)   — Freeze() flattens adjacency into CSR
//	                         offset+packed-edge arrays whose edges carry the
//	                         dense target index, interns vertex and edge
//	                         labels into an int table, and eagerly builds the
//	                         reverse CSR. All read methods — including In() —
//	                         are then safe for concurrent use, and the dense
//	                         accessors (OutAt, InAt, LabelIDAt, …) traverse
//	                         without a single hash lookup.
//
// Mutating adjacency or the vertex set after Freeze (AddVertex, AddEdge)
// transparently thaws the graph back to the build phase: dense vertex
// indices are stable across freeze/thaw, but the CSR arrays and the label
// table are dropped and OutAt/InAt become invalid until the next Freeze.
// Property mutation (SetProps, AddProp) does not thaw — properties are not
// part of the CSR form.

// DenseEdge is the packed CSR edge of a frozen graph: the dense index of the
// target vertex, the interned edge label, and the weight. The sparse target
// ID is recovered with IDAt(e.To) — a slice read, not a hash lookup.
type DenseEdge struct {
	To    int32 // dense index of the target vertex
	Label int32 // interned edge label; resolve with LabelName
	W     float64
}

// Frozen reports whether the graph is in its immutable CSR form.
func (g *Graph) Frozen() bool { return g.frozen }

// Freeze converts the graph to its frozen CSR form and returns it (for
// chaining). It is idempotent. The per-vertex adjacency slices are released;
// Out/In keep working (they slice the flat CSR arrays, contiguously and
// allocation-free) and the dense accessors become available.
func (g *Graph) Freeze() *Graph {
	if g.frozen {
		return g
	}
	nv := len(g.ids)
	ne := 0
	for _, es := range g.out {
		ne += len(es)
	}
	g.outOff = make([]int32, nv+1)
	g.outCSR = make([]Edge, 0, ne)
	for i, es := range g.out {
		g.outCSR = append(g.outCSR, es...)
		g.outOff[i+1] = int32(len(g.outCSR))
	}
	g.out = nil
	g.in = nil
	g.inBuilt = false
	g.finishFreeze()
	return g
}

// finishFreeze builds the label table, the dense-target edge array and the
// eager reverse CSR from ids/index/labels/outOff/outCSR. It is shared by
// Freeze and the wire decoder (which fills the flat arrays directly).
func (g *Graph) finishFreeze() {
	nv := len(g.ids)
	g.labelIDs = make(map[string]int32)
	g.labelNames = nil
	intern := func(s string) int32 {
		if id, ok := g.labelIDs[s]; ok {
			return id
		}
		id := int32(len(g.labelNames))
		g.labelNames = append(g.labelNames, s)
		g.labelIDs[s] = id
		return id
	}
	g.vlab = make([]int32, nv)
	for i, l := range g.labels {
		g.vlab[i] = intern(l)
	}
	g.outDense = make([]DenseEdge, len(g.outCSR))
	for k, e := range g.outCSR {
		g.outDense[k] = DenseEdge{To: g.index[e.To], Label: intern(e.Label), W: e.W}
	}
	g.buildReverseCSR()
	g.frozen = true
}

// buildReverseCSR derives inOff/inCSR/inDense from the out CSR by counting
// sort over targets, scanning sources in dense order — the exact per-target
// edge order the lazy buildIn produced, so frozen and unfrozen In() agree
// element for element. Undirected graphs alias In to Out and skip it.
func (g *Graph) buildReverseCSR() {
	if !g.directed {
		return
	}
	nv := len(g.ids)
	g.inOff = make([]int32, nv+1)
	for _, e := range g.outDense {
		g.inOff[e.To+1]++
	}
	for i := 0; i < nv; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	g.inCSR = make([]Edge, len(g.outCSR))
	g.inDense = make([]DenseEdge, len(g.outCSR))
	next := make([]int32, nv)
	copy(next, g.inOff[:nv])
	for ui := 0; ui < nv; ui++ {
		for k := g.outOff[ui]; k < g.outOff[ui+1]; k++ {
			de := g.outDense[k]
			pos := next[de.To]
			next[de.To]++
			g.inCSR[pos] = Edge{To: g.ids[ui], W: de.W, Label: g.outCSR[k].Label}
			g.inDense[pos] = DenseEdge{To: int32(ui), Label: de.Label, W: de.W}
		}
	}
}

// thaw returns the graph to the mutable build phase. The CSR arrays are never
// mutated in place, so the restored per-vertex slices alias them with full
// capacity — the first append to a vertex's adjacency reallocates.
func (g *Graph) thaw() {
	if !g.frozen {
		return
	}
	nv := len(g.ids)
	g.out = make([][]Edge, nv)
	for i := 0; i < nv; i++ {
		a, b := g.outOff[i], g.outOff[i+1]
		if a != b {
			g.out[i] = g.outCSR[a:b:b]
		}
	}
	if g.directed {
		g.in = make([][]Edge, nv)
		for i := 0; i < nv; i++ {
			a, b := g.inOff[i], g.inOff[i+1]
			if a != b {
				g.in[i] = g.inCSR[a:b:b]
			}
		}
		g.inBuilt = true
	}
	g.outOff, g.outCSR, g.outDense = nil, nil, nil
	g.inOff, g.inCSR, g.inDense = nil, nil, nil
	g.vlab, g.labelNames, g.labelIDs = nil, nil, nil
	g.frozen = false
}

// OutAt returns the packed out-edges of the vertex at dense index i. Frozen
// graphs only; the caller must not mutate the returned slice.
func (g *Graph) OutAt(i int32) []DenseEdge {
	return g.outDense[g.outOff[i]:g.outOff[i+1]]
}

// InAt returns the packed in-edges of the vertex at dense index i (for
// undirected graphs, its out-edges). Frozen graphs only; the caller must not
// mutate the returned slice.
func (g *Graph) InAt(i int32) []DenseEdge {
	if !g.directed {
		return g.OutAt(i)
	}
	return g.inDense[g.inOff[i]:g.inOff[i+1]]
}

// OutDegreeAt returns the out-degree of the vertex at dense index i. Frozen
// graphs only.
func (g *Graph) OutDegreeAt(i int32) int {
	return int(g.outOff[i+1] - g.outOff[i])
}

// InDegreeAt returns the in-degree of the vertex at dense index i. Frozen
// graphs only.
func (g *Graph) InDegreeAt(i int32) int {
	if !g.directed {
		return g.OutDegreeAt(i)
	}
	return int(g.inOff[i+1] - g.inOff[i])
}

// LabelIDAt returns the interned label of the vertex at dense index i.
// Frozen graphs only.
func (g *Graph) LabelIDAt(i int32) int32 { return g.vlab[i] }

// LabelAt returns the label string of the vertex at dense index i.
func (g *Graph) LabelAt(i int32) string { return g.labels[i] }

// PropsAt returns the property list of the vertex at dense index i. The
// caller must not mutate the returned slice.
func (g *Graph) PropsAt(i int32) []string { return g.props[i] }

// LabelID returns the interned ID of a vertex or edge label and whether the
// label occurs in the graph at all. Frozen graphs only. Pattern-matching
// kernels resolve pattern label strings once and compare int32s per edge.
func (g *Graph) LabelID(s string) (int32, bool) {
	id, ok := g.labelIDs[s]
	return id, ok
}

// LabelName returns the label string interned as lid. Frozen graphs only.
func (g *Graph) LabelName(lid int32) string { return g.labelNames[lid] }

// NumLabels returns the number of distinct interned labels (vertex and edge
// labels share one table). Frozen graphs only.
func (g *Graph) NumLabels() int { return len(g.labelNames) }
