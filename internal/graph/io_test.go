package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadTextBasic(t *testing.T) {
	in := `
# a comment
v 1 person alpha beta
v 2 product
e 1 2 2.5 buys
e 2 3
`
	g, err := ReadText(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Label(1) != "person" || len(g.Props(1)) != 2 {
		t.Fatalf("vertex 1 metadata wrong: %q %v", g.Label(1), g.Props(1))
	}
	e := g.Out(1)[0]
	if e.To != 2 || e.W != 2.5 || e.Label != "buys" {
		t.Fatalf("edge wrong: %+v", e)
	}
	if g.Out(2)[0].W != 1 {
		t.Fatal("default weight should be 1")
	}
}

func TestReadTextDashLabel(t *testing.T) {
	g, err := ReadText(strings.NewReader("v 7 - kw1 kw2\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.Label(7) != "" || len(g.Props(7)) != 2 {
		t.Fatalf("dash label handling wrong: %q %v", g.Label(7), g.Props(7))
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"v\n",            // vertex without id
		"v abc\n",        // non-numeric id
		"e 1\n",          // edge without target
		"e 1 x\n",        // non-numeric target
		"e 1 2 notnum\n", // bad weight
		"z 1 2\n",        // unknown record
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in), true); err == nil {
			t.Fatalf("input %q should fail", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := New()
	g.AddVertex(1, "person")
	g.SetProps(1, []string{"db", "graph"})
	g.AddVertex(2, "product")
	g.AddVertex(3, "") // implied vertex, no metadata
	g.AddLabeledEdge(1, 2, 2.5, "buys")
	g.AddEdge(2, 3, 1.25)

	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	r, err := ReadText(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumVertices() != g.NumVertices() || r.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip size mismatch: %d/%d vs %d/%d",
			r.NumVertices(), r.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if r.Label(1) != "person" || len(r.Props(1)) != 2 {
		t.Fatal("vertex metadata lost")
	}
	if e := r.Out(1)[0]; e.To != 2 || e.W != 2.5 || e.Label != "buys" {
		t.Fatalf("edge lost: %+v", e)
	}
}

func TestWriteReadRoundTripUndirected(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 4)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	r, err := ReadText(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != 2 {
		t.Fatalf("undirected edges should count once: %d", r.NumEdges())
	}
	if len(r.Out(2)) != 2 {
		t.Fatal("undirected adjacency lost")
	}
}
