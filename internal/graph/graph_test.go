package graph

import (
	"testing"
	"testing/quick"
)

func TestAddVertexAndLookup(t *testing.T) {
	g := New()
	i := g.AddVertex(10, "a")
	if g.NumVertices() != 1 || !g.Has(10) || g.Label(10) != "a" {
		t.Fatal("vertex not stored")
	}
	// re-add keeps index, updates non-empty label
	j := g.AddVertex(10, "")
	if i != j || g.Label(10) != "a" {
		t.Fatal("re-add must keep index and label")
	}
	g.AddVertex(10, "b")
	if g.Label(10) != "b" {
		t.Fatal("non-empty label should update")
	}
	if g.Has(99) || g.Label(99) != "" {
		t.Fatal("absent vertex misbehaves")
	}
}

func TestAddEdgeCreatesEndpoints(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 3.5)
	if !g.Has(1) || !g.Has(2) || g.NumEdges() != 1 {
		t.Fatal("edge endpoints missing")
	}
	out := g.Out(1)
	if len(out) != 1 || out[0].To != 2 || out[0].W != 3.5 {
		t.Fatalf("bad out edges: %v", out)
	}
	if len(g.Out(2)) != 0 {
		t.Fatal("directed graph must not mirror edges")
	}
}

func TestUndirectedMirrorsEdges(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(1, 2, 1)
	if len(g.Out(1)) != 1 || len(g.Out(2)) != 1 {
		t.Fatal("undirected edge must appear on both endpoints")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("undirected edge counts once, got %d", g.NumEdges())
	}
	if len(g.In(1)) != 1 {
		t.Fatal("In == Out for undirected graphs")
	}
}

func TestInEdgesLazyBuild(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 2, 2)
	in := g.In(2)
	if len(in) != 2 {
		t.Fatalf("want 2 in-edges, got %d", len(in))
	}
	// edges added after In() was built must still appear
	g.AddEdge(4, 2, 3)
	if len(g.In(2)) != 3 {
		t.Fatalf("in-edges stale after AddEdge: %d", len(g.In(2)))
	}
	if g.InDegree(2) != 3 || g.OutDegree(2) != 0 {
		t.Fatal("degree accessors wrong")
	}
}

func TestProps(t *testing.T) {
	g := New()
	g.AddVertex(5, "x")
	g.SetProps(5, []string{"k1", "k2"})
	g.AddProp(5, "k3")
	if len(g.Props(5)) != 3 || g.Props(5)[2] != "k3" {
		t.Fatalf("props wrong: %v", g.Props(5))
	}
	if g.Props(42) != nil {
		t.Fatal("absent vertex should have nil props")
	}
}

func TestSetPropsPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().SetProps(1, []string{"a"})
}

func TestCloneIsDeep(t *testing.T) {
	g := New()
	g.AddVertex(1, "a")
	g.SetProps(1, []string{"p"})
	g.AddEdge(1, 2, 1)
	c := g.Clone()
	c.AddEdge(2, 1, 1)
	c.AddProp(1, "q")
	c.AddVertex(3, "z")
	if g.NumEdges() != 1 || g.NumVertices() != 2 || len(g.Props(1)) != 1 {
		t.Fatal("clone mutated the original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New()
	g.AddVertex(1, "a")
	g.AddVertex(2, "b")
	g.AddVertex(3, "c")
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 1, 1)
	s := g.InducedSubgraph(map[ID]bool{1: true, 2: true})
	if s.NumVertices() != 2 || s.NumEdges() != 1 {
		t.Fatalf("induced subgraph wrong: %d vertices %d edges", s.NumVertices(), s.NumEdges())
	}
	if s.Label(1) != "a" || s.Label(2) != "b" {
		t.Fatal("labels not copied")
	}
}

func TestSymmetrized(t *testing.T) {
	g := New()
	g.AddLabeledEdge(1, 2, 5, "x")
	s := g.Symmetrized()
	if len(s.Out(2)) != 1 || s.Out(2)[0].To != 1 || s.Out(2)[0].Label != "x" {
		t.Fatalf("mirror edge missing: %v", s.Out(2))
	}
}

func TestBFSAndNeighborhood(t *testing.T) {
	g := New()
	// path 0 -> 1 -> 2 -> 3
	for i := ID(0); i < 3; i++ {
		g.AddEdge(i, i+1, 1)
	}
	depths := map[ID]int{}
	g.BFS(0, func(id ID, d int) bool {
		depths[id] = d
		return true
	})
	if depths[3] != 3 || len(depths) != 4 {
		t.Fatalf("bfs depths wrong: %v", depths)
	}
	// early stop
	count := 0
	g.BFS(0, func(ID, int) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("bfs should stop early, visited %d", count)
	}
	nb := g.Neighborhood([]ID{0}, 2)
	if len(nb) != 3 || !nb[2] || nb[3] {
		t.Fatalf("2-hop neighborhood wrong: %v", nb)
	}
	un := g.UndirectedNeighborhood([]ID{3}, 1)
	if !un[2] || un[1] {
		t.Fatalf("undirected neighborhood wrong: %v", un)
	}
	if d := g.Diameter(0); d != 3 {
		t.Fatalf("eccentricity from 0 should be 3, got %d", d)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// corrupt: edge to a vertex we sneak out of the index
	g.out[0] = append(g.out[0], Edge{To: 999})
	if err := g.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSortedVerticesProperty(t *testing.T) {
	f := func(ids []uint16) bool {
		g := New()
		for _, id := range ids {
			g.AddVertex(ID(id), "")
		}
		sorted := g.SortedVertices()
		if len(sorted) != g.NumVertices() {
			return false
		}
		for i := 1; i < len(sorted); i++ {
			if sorted[i-1] >= sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexStability(t *testing.T) {
	g := New()
	for i := ID(0); i < 100; i++ {
		g.AddVertex(i*7, "")
	}
	for i := ID(0); i < 100; i++ {
		idx, ok := g.Index(i * 7)
		if !ok || g.IDAt(idx) != i*7 {
			t.Fatalf("index roundtrip broken for %d", i*7)
		}
	}
}

func TestTotalWeight(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	if w := g.TotalWeight(); w != 5 {
		t.Fatalf("undirected total weight should count once: %g", w)
	}
	d := New()
	d.AddEdge(1, 2, 2)
	d.AddEdge(2, 1, 3)
	if w := d.TotalWeight(); w != 5 {
		t.Fatalf("directed total weight: %g", w)
	}
}
