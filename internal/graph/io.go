package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format used by ReadText / WriteText is line oriented:
//
//	# comment
//	v <id> <label> [prop ...]
//	e <from> <to> <weight> [label]
//
// Vertices referenced only by edges are created with empty labels, so a bare
// edge list (lines "e u v w") is a valid graph file.

// ReadText parses a graph in the text format above. directed selects the
// graph kind.
func ReadText(r io.Reader, directed bool) (*Graph, error) {
	var g *Graph
	if directed {
		g = New()
	} else {
		g = NewUndirected()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "v":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: vertex needs an id", lineNo)
			}
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			label := ""
			if len(fields) >= 3 && fields[2] != "-" {
				label = fields[2]
			}
			g.AddVertex(ID(id), label)
			if len(fields) > 3 {
				g.SetProps(ID(id), append([]string(nil), fields[3:]...))
			}
		case "e":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: edge needs endpoints", lineNo)
			}
			u, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			w := 1.0
			if len(fields) >= 4 {
				w, err = strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
				}
			}
			label := ""
			if len(fields) >= 5 {
				label = fields[4]
			}
			g.AddLabeledEdge(ID(u), ID(v), w, label)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteText writes the graph in the text format accepted by ReadText.
// Undirected edges are written once (smaller endpoint first by insertion).
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, id := range g.Vertices() {
		if g.Label(id) == "" && len(g.Props(id)) == 0 {
			continue // implied by edges
		}
		fmt.Fprintf(bw, "v %d %s", id, orDash(g.Label(id)))
		for _, p := range g.Props(id) {
			fmt.Fprintf(bw, " %s", p)
		}
		fmt.Fprintln(bw)
	}
	for _, u := range g.Vertices() {
		for _, e := range g.Out(u) {
			if !g.Directed() && u > e.To {
				continue
			}
			if e.Label != "" {
				fmt.Fprintf(bw, "e %d %d %g %s\n", u, e.To, e.W, e.Label)
			} else {
				fmt.Fprintf(bw, "e %d %d %g\n", u, e.To, e.W)
			}
		}
	}
	return bw.Flush()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
