package graph

import (
	"reflect"
	"testing"
	"testing/quick"
)

// op is one randomized mutation for the model-based property test.
type op struct {
	Kind    uint8
	U, V    uint8
	W       uint8
	Label   bool
	PropTag uint8
}

// TestGraphModelProperty replays random operation sequences against the
// Graph and a trivial model (edge list + vertex map), then checks every
// observable agrees: vertex/edge counts, adjacency in both directions,
// labels, and Validate.
func TestGraphModelProperty(t *testing.T) {
	f := func(ops []op) bool {
		g := New()
		type edge struct {
			u, v ID
			w    float64
		}
		var modelEdges []edge
		modelVerts := map[ID]string{}

		for _, o := range ops {
			u, v := ID(o.U%32), ID(o.V%32)
			switch o.Kind % 3 {
			case 0: // add vertex
				label := ""
				if o.Label {
					label = "L"
				}
				g.AddVertex(u, label)
				if old, ok := modelVerts[u]; !ok || label != "" {
					_ = old
					if _, ok := modelVerts[u]; !ok {
						modelVerts[u] = label
					} else if label != "" {
						modelVerts[u] = label
					}
				}
			case 1: // add edge
				w := float64(o.W) + 1
				g.AddEdge(u, v, w)
				modelEdges = append(modelEdges, edge{u, v, w})
				if _, ok := modelVerts[u]; !ok {
					modelVerts[u] = ""
				}
				if _, ok := modelVerts[v]; !ok {
					modelVerts[v] = ""
				}
			case 2: // add property
				g.AddVertex(u, "")
				g.AddProp(u, "p")
				if _, ok := modelVerts[u]; !ok {
					modelVerts[u] = ""
				}
			}
		}
		if g.NumVertices() != len(modelVerts) {
			return false
		}
		if g.NumEdges() != len(modelEdges) {
			return false
		}
		// out-degree per vertex matches the model
		outDeg := map[ID]int{}
		inDeg := map[ID]int{}
		for _, e := range modelEdges {
			outDeg[e.u]++
			inDeg[e.v]++
		}
		for id, lbl := range modelVerts {
			if !g.Has(id) || g.Label(id) != lbl {
				return false
			}
			if len(g.Out(id)) != outDeg[id] || len(g.In(id)) != inDeg[id] {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFreezeProperty replays random operation sequences, freezes a clone,
// and checks that Freeze preserves every observable — Out/In adjacency,
// labels, properties, vertex and edge counts — exactly, that the dense
// accessors agree with the boundary API, and that the frozen graph
// round-trips through the wire codec byte-for-byte.
func TestFreezeProperty(t *testing.T) {
	f := func(ops []op) bool {
		g := New()
		for _, o := range ops {
			u, v := ID(o.U%32), ID(o.V%32)
			switch o.Kind % 3 {
			case 0:
				label := ""
				if o.Label {
					label = "L" + string(rune('a'+o.PropTag%3))
				}
				g.AddVertex(u, label)
			case 1:
				g.AddLabeledEdge(u, v, float64(o.W)+1, []string{"", "x", "y"}[o.PropTag%3])
			case 2:
				g.AddVertex(u, "")
				g.AddProp(u, "p"+string(rune('0'+o.PropTag%4)))
			}
		}
		fz := g.Clone().Freeze()
		if err := fz.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		if fz.NumVertices() != g.NumVertices() || fz.NumEdges() != g.NumEdges() {
			return false
		}
		for _, v := range g.Vertices() {
			if fz.Label(v) != g.Label(v) || !reflect.DeepEqual(fz.Props(v), g.Props(v)) {
				return false
			}
			if !reflect.DeepEqual(fz.Out(v), g.Out(v)) || !reflect.DeepEqual(fz.In(v), g.In(v)) {
				return false
			}
		}
		// dense accessors agree with the boundary API
		for i := int32(0); i < int32(fz.NumVertices()); i++ {
			id := fz.IDAt(i)
			if fz.LabelName(fz.LabelIDAt(i)) != fz.Label(id) {
				return false
			}
			out := fz.Out(id)
			if len(out) != fz.OutDegreeAt(i) {
				return false
			}
			for k, e := range fz.OutAt(i) {
				if fz.IDAt(e.To) != out[k].To || e.W != out[k].W || fz.LabelName(e.Label) != out[k].Label {
					return false
				}
			}
			in := fz.In(id)
			if len(in) != fz.InDegreeAt(i) {
				return false
			}
			for k, e := range fz.InAt(i) {
				if fz.IDAt(e.To) != in[k].To || e.W != in[k].W || fz.LabelName(e.Label) != in[k].Label {
					return false
				}
			}
		}
		// wire codec: mutable and frozen encodings are byte-identical, and
		// the decode (which reconstructs CSR directly) re-encodes to the
		// same bytes
		mutableBytes := AppendGraph(nil, g)
		frozenBytes := AppendGraph(nil, fz)
		if !reflect.DeepEqual(mutableBytes, frozenBytes) {
			return false
		}
		dec, used, err := DecodeGraph(frozenBytes)
		if err != nil || used != len(frozenBytes) {
			return false
		}
		if !dec.Frozen() || dec.Validate() != nil {
			return false
		}
		return reflect.DeepEqual(AppendGraph(nil, dec), frozenBytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSymmetrizedProperty: every edge of the symmetrized graph has its
// mirror, and degrees double (minus nothing: mirrors are always added).
func TestSymmetrizedProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		g := New()
		for _, p := range pairs {
			g.AddEdge(ID(p>>8), ID(p&0xff), 1)
		}
		s := g.Symmetrized()
		if s.NumEdges() != 2*g.NumEdges() {
			return false
		}
		for _, u := range s.Vertices() {
			for _, e := range s.Out(u) {
				found := false
				for _, back := range s.Out(e.To) {
					if back.To == u {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
