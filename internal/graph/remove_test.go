package graph

import (
	"reflect"
	"testing"
)

func TestRemoveEdgeBasic(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 5)
	g.AddEdge(2, 3, 7)
	removed, ok := g.RemoveEdge(1, 2, "")
	if !ok || removed.W != 5 || removed.To != 2 {
		t.Fatalf("RemoveEdge(1,2) = %+v, %v", removed, ok)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("numEdges = %d, want 1", g.NumEdges())
	}
	if len(g.Out(1)) != 0 {
		t.Fatalf("out(1) = %v, want empty", g.Out(1))
	}
	if _, ok := g.RemoveEdge(1, 2, ""); ok {
		t.Fatal("second removal of the same edge should fail")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("failed removal must not change numEdges: %d", g.NumEdges())
	}
}

func TestRemoveEdgeMatchesLabel(t *testing.T) {
	g := New()
	g.AddLabeledEdge(1, 2, 1, "a")
	g.AddLabeledEdge(1, 2, 2, "b")
	if _, ok := g.RemoveEdge(1, 2, "c"); ok {
		t.Fatal("no label-c edge exists")
	}
	removed, ok := g.RemoveEdge(1, 2, "b")
	if !ok || removed.W != 2 {
		t.Fatalf("RemoveEdge label b = %+v, %v", removed, ok)
	}
	if out := g.Out(1); len(out) != 1 || out[0].Label != "a" {
		t.Fatalf("out(1) = %v, want the label-a edge", out)
	}
}

func TestRemoveEdgeParallelOneInstance(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 10)
	g.AddEdge(1, 2, 20)
	removed, ok := g.RemoveEdge(1, 2, "")
	if !ok || removed.W != 10 {
		t.Fatalf("first instance in adjacency order should go: %+v, %v", removed, ok)
	}
	if out := g.Out(1); len(out) != 1 || out[0].W != 20 {
		t.Fatalf("out(1) = %v, want the w=20 instance", out)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("numEdges = %d, want 1", g.NumEdges())
	}
}

func TestRemoveEdgeInMirror(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 5)
	g.AddEdge(3, 2, 6)
	if len(g.In(2)) != 2 { // force the lazy reverse adjacency
		t.Fatalf("in(2) = %v", g.In(2))
	}
	if _, ok := g.RemoveEdge(1, 2, ""); !ok {
		t.Fatal("removal failed")
	}
	in := g.In(2)
	if len(in) != 1 || in[0].To != 3 {
		t.Fatalf("in(2) = %v, want only the edge from 3", in)
	}
}

func TestRemoveEdgeUndirected(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(1, 2, 5)
	g.AddEdge(2, 3, 6)
	if _, ok := g.RemoveEdge(2, 1, ""); !ok {
		t.Fatal("undirected removal via either endpoint should work")
	}
	if len(g.Out(1)) != 0 {
		t.Fatalf("out(1) = %v, want empty (reverse instance removed)", g.Out(1))
	}
	if len(g.Out(2)) != 1 {
		t.Fatalf("out(2) = %v, want only the edge to 3", g.Out(2))
	}
	if g.NumEdges() != 1 {
		t.Fatalf("numEdges = %d, want 1", g.NumEdges())
	}
}

func TestRemoveEdgeUndirectedSelfLoop(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(1, 1, 3)
	if _, ok := g.RemoveEdge(1, 1, ""); !ok {
		t.Fatal("self-loop removal failed")
	}
	if len(g.Out(1)) != 0 {
		t.Fatalf("out(1) = %v, want both stored copies gone", g.Out(1))
	}
	if g.NumEdges() != 0 {
		t.Fatalf("numEdges = %d, want 0", g.NumEdges())
	}
}

// TestRemoveEdgeFrozenCloneAliasSafety pins the contract that makes session
// deletions safe under the serving layer's cached frozen clones: thawing and
// deleting must never write through the CSR arrays a frozen Clone shares.
func TestRemoveEdgeFrozenCloneAliasSafety(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 5)
	g.AddEdge(1, 3, 6)
	g.AddEdge(2, 3, 7)
	g.Freeze()
	snapshot := g.Clone() // shares CSR arrays with g

	wantOut1 := append([]Edge(nil), snapshot.Out(1)...)
	if _, ok := g.RemoveEdge(1, 2, ""); !ok { // transparent thaw + delete
		t.Fatal("removal on frozen graph failed")
	}
	if g.Frozen() {
		t.Fatal("graph should have thawed")
	}
	if !reflect.DeepEqual(snapshot.Out(1), wantOut1) {
		t.Fatalf("frozen clone mutated through shared CSR: %v != %v", snapshot.Out(1), wantOut1)
	}
	if snapshot.NumEdges() != 3 || g.NumEdges() != 2 {
		t.Fatalf("edge counts: clone %d (want 3), graph %d (want 2)", snapshot.NumEdges(), g.NumEdges())
	}
	// the in-mirror restored by thaw aliases the reverse CSR too
	if in := snapshot.In(2); len(in) != 1 || in[0].To != 1 {
		t.Fatalf("clone in(2) = %v", in)
	}
	if in := g.In(2); len(in) != 0 {
		t.Fatalf("graph in(2) = %v, want empty", in)
	}
}

// TestRemoveEdgeFreezeThawCycleKeepsIndices covers the session lifecycle:
// thaw → delete → refreeze must keep every dense index stable so retained
// per-index state (contexts, union-finds) stays addressable.
func TestRemoveEdgeFreezeThawCycleKeepsIndices(t *testing.T) {
	g := New()
	for i := ID(0); i < 20; i++ {
		g.AddEdge(i, (i+1)%20, float64(i))
	}
	g.Freeze()
	before := make(map[ID]int32)
	for _, id := range g.Vertices() {
		i, _ := g.Index(id)
		before[id] = i
	}
	if _, ok := g.RemoveEdge(4, 5, ""); !ok {
		t.Fatal("removal failed")
	}
	g.Freeze()
	for _, id := range g.Vertices() {
		i, _ := g.Index(id)
		if before[id] != i {
			t.Fatalf("dense index of %d moved: %d -> %d", id, before[id], i)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Out(4)) != 0 || len(g.In(5)) != 0 {
		t.Fatalf("edge survived the cycle: out(4)=%v in(5)=%v", g.Out(4), g.In(5))
	}
}
