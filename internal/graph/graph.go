// Package graph provides the in-memory graph representation shared by every
// engine in this repository: the GRAPE core, the vertex-centric and
// block-centric baselines, and the sequential ground-truth algorithms.
//
// A Graph holds vertices identified by sparse int64 IDs, mapped internally to
// dense indices so adjacency and per-vertex attributes live in slices. Graphs
// may be directed or undirected; an undirected graph stores each edge in both
// endpoint adjacency lists. Vertices carry a label (used by pattern matching
// and GPARs) and a list of string properties (used by keyword search).
package graph

import (
	"fmt"
	"sort"
)

// ID identifies a vertex. IDs are sparse: any non-negative int64 may be used.
type ID int64

// NoID is returned by lookups that find no vertex.
const NoID ID = -1

// Edge is a directed connection to a target vertex with a weight and an
// optional label. For undirected graphs the reverse Edge is stored on the
// other endpoint as well.
type Edge struct {
	To    ID
	W     float64
	Label string
}

// Graph is a labeled, weighted graph. The zero value is not usable; call New
// or NewUndirected.
type Graph struct {
	directed bool
	ids      []ID         // dense index -> ID
	index    map[ID]int32 // ID -> dense index
	labels   []string     // dense index -> vertex label
	props    [][]string   // dense index -> vertex properties (keywords etc.)
	out      [][]Edge     // dense index -> out-edges
	in       [][]Edge     // dense index -> in-edges; built lazily
	inBuilt  bool
	numEdges int
}

// New returns an empty directed graph.
func New() *Graph { return &Graph{directed: true, index: make(map[ID]int32)} }

// NewUndirected returns an empty undirected graph. AddEdge stores both
// directions, and NumEdges counts each undirected edge once.
func NewUndirected() *Graph { return &Graph{directed: false, index: make(map[ID]int32)} }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.ids) }

// NumEdges returns the number of edges. Undirected edges count once.
func (g *Graph) NumEdges() int { return g.numEdges }

// AddVertex inserts a vertex with the given label if it does not exist, and
// returns its dense index. Re-adding an existing vertex updates its label
// only when label is non-empty.
func (g *Graph) AddVertex(id ID, label string) int32 {
	if i, ok := g.index[id]; ok {
		if label != "" {
			g.labels[i] = label
		}
		return i
	}
	i := int32(len(g.ids))
	g.index[id] = i
	g.ids = append(g.ids, id)
	g.labels = append(g.labels, label)
	g.props = append(g.props, nil)
	g.out = append(g.out, nil)
	if g.inBuilt {
		g.in = append(g.in, nil)
	}
	return i
}

// SetProps replaces the property list of id. It panics if id is absent.
func (g *Graph) SetProps(id ID, props []string) {
	g.props[g.mustIndex(id)] = props
}

// AddProp appends a property to id's property list. It panics if id is absent.
func (g *Graph) AddProp(id ID, prop string) {
	i := g.mustIndex(id)
	g.props[i] = append(g.props[i], prop)
}

// AddEdge inserts an edge from u to v, creating missing endpoints with empty
// labels. For undirected graphs the reverse edge is stored too. Parallel
// edges are allowed.
func (g *Graph) AddEdge(u, v ID, w float64) { g.AddLabeledEdge(u, v, w, "") }

// AddLabeledEdge is AddEdge with an edge label.
func (g *Graph) AddLabeledEdge(u, v ID, w float64, label string) {
	ui := g.AddVertex(u, "")
	vi := g.AddVertex(v, "")
	g.out[ui] = append(g.out[ui], Edge{To: v, W: w, Label: label})
	if !g.directed {
		g.out[vi] = append(g.out[vi], Edge{To: u, W: w, Label: label})
	}
	if g.inBuilt {
		g.in[vi] = append(g.in[vi], Edge{To: u, W: w, Label: label})
		if !g.directed {
			g.in[ui] = append(g.in[ui], Edge{To: v, W: w, Label: label})
		}
	}
	g.numEdges++
}

// Has reports whether the vertex exists.
func (g *Graph) Has(id ID) bool { _, ok := g.index[id]; return ok }

// Label returns the label of id, or "" if id is absent.
func (g *Graph) Label(id ID) string {
	if i, ok := g.index[id]; ok {
		return g.labels[i]
	}
	return ""
}

// Props returns the property list of id (nil if absent). The caller must not
// mutate the returned slice.
func (g *Graph) Props(id ID) []string {
	if i, ok := g.index[id]; ok {
		return g.props[i]
	}
	return nil
}

// Out returns the out-edges of id (nil if absent). The caller must not mutate
// the returned slice.
func (g *Graph) Out(id ID) []Edge {
	if i, ok := g.index[id]; ok {
		return g.out[i]
	}
	return nil
}

// In returns the in-edges of id, building the reverse adjacency on first use.
// For undirected graphs In equals Out.
func (g *Graph) In(id ID) []Edge {
	if !g.directed {
		return g.Out(id)
	}
	if !g.inBuilt {
		g.buildIn()
	}
	if i, ok := g.index[id]; ok {
		return g.in[i]
	}
	return nil
}

func (g *Graph) buildIn() {
	g.in = make([][]Edge, len(g.ids))
	for ui, edges := range g.out {
		u := g.ids[ui]
		for _, e := range edges {
			vi := g.index[e.To]
			g.in[vi] = append(g.in[vi], Edge{To: u, W: e.W, Label: e.Label})
		}
	}
	g.inBuilt = true
}

// OutDegree returns the out-degree of id, 0 if absent.
func (g *Graph) OutDegree(id ID) int { return len(g.Out(id)) }

// InDegree returns the in-degree of id, 0 if absent.
func (g *Graph) InDegree(id ID) int { return len(g.In(id)) }

// Vertices returns all vertex IDs in insertion order. The caller must not
// mutate the returned slice.
func (g *Graph) Vertices() []ID { return g.ids }

// SortedVertices returns all vertex IDs in ascending order (a fresh slice).
func (g *Graph) SortedVertices() []ID {
	out := make([]ID, len(g.ids))
	copy(out, g.ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Index returns the dense index of id and whether it exists. Dense indices
// are stable across the graph's lifetime and lie in [0, NumVertices).
func (g *Graph) Index(id ID) (int32, bool) {
	i, ok := g.index[id]
	return i, ok
}

// IDAt returns the vertex ID at dense index i.
func (g *Graph) IDAt(i int32) ID { return g.ids[i] }

func (g *Graph) mustIndex(id ID) int32 {
	i, ok := g.index[id]
	if !ok {
		panic(fmt.Sprintf("graph: vertex %d not present", id))
	}
	return i
}

// Clone returns a deep copy of the graph (reverse adjacency is not copied and
// will be rebuilt on demand).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		directed: g.directed,
		ids:      append([]ID(nil), g.ids...),
		index:    make(map[ID]int32, len(g.index)),
		labels:   append([]string(nil), g.labels...),
		props:    make([][]string, len(g.props)),
		out:      make([][]Edge, len(g.out)),
		numEdges: g.numEdges,
	}
	for id, i := range g.index {
		c.index[id] = i
	}
	for i, p := range g.props {
		c.props[i] = append([]string(nil), p...)
	}
	for i, es := range g.out {
		c.out[i] = append([]Edge(nil), es...)
	}
	return c
}

// InducedSubgraph returns the subgraph induced by keep: vertices in keep and
// every edge whose endpoints are both kept. Labels and properties are copied.
func (g *Graph) InducedSubgraph(keep map[ID]bool) *Graph {
	s := &Graph{directed: g.directed, index: make(map[ID]int32)}
	for _, id := range g.ids {
		if keep[id] {
			s.AddVertex(id, g.Label(id))
			s.SetProps(id, append([]string(nil), g.Props(id)...))
		}
	}
	for _, u := range g.ids {
		if !keep[u] {
			continue
		}
		for _, e := range g.Out(u) {
			if keep[e.To] {
				if g.directed || u <= e.To { // avoid double-adding undirected edges
					s.AddLabeledEdge(u, e.To, e.W, e.Label)
				}
			}
		}
	}
	return s
}

// Symmetrized returns a directed copy of g with every edge mirrored, so
// algorithms that flood along out-edges see weak connectivity. Labels,
// properties and weights are preserved; mirror edges reuse the original
// weight and label.
func (g *Graph) Symmetrized() *Graph {
	s := New()
	for _, id := range g.ids {
		s.AddVertex(id, g.Label(id))
		if ps := g.Props(id); len(ps) > 0 {
			s.SetProps(id, append([]string(nil), ps...))
		}
	}
	for _, u := range g.ids {
		for _, e := range g.Out(u) {
			s.AddLabeledEdge(u, e.To, e.W, e.Label)
			s.AddLabeledEdge(e.To, u, e.W, e.Label)
		}
	}
	return s
}

// TotalWeight returns the sum of all edge weights (undirected edges once).
func (g *Graph) TotalWeight() float64 {
	var t float64
	for ui, es := range g.out {
		u := g.ids[ui]
		for _, e := range es {
			if g.directed || u <= e.To {
				t += e.W
			}
		}
	}
	return t
}

// Validate checks internal consistency and returns an error describing the
// first problem found, or nil. It is used by tests and the storage layer
// after deserialization.
func (g *Graph) Validate() error {
	if len(g.ids) != len(g.labels) || len(g.ids) != len(g.out) || len(g.ids) != len(g.props) {
		return fmt.Errorf("graph: inconsistent slice lengths")
	}
	for id, i := range g.index {
		if int(i) >= len(g.ids) || g.ids[i] != id {
			return fmt.Errorf("graph: index entry %d -> %d broken", id, i)
		}
	}
	for ui, es := range g.out {
		for _, e := range es {
			if _, ok := g.index[e.To]; !ok {
				return fmt.Errorf("graph: edge from %d to missing vertex %d", g.ids[ui], e.To)
			}
		}
	}
	return nil
}
