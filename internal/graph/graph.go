// Package graph provides the in-memory graph representation shared by every
// engine in this repository: the GRAPE core, the vertex-centric and
// block-centric baselines, and the sequential ground-truth algorithms.
//
// A Graph holds vertices identified by sparse int64 IDs, mapped internally to
// dense indices so adjacency and per-vertex attributes live in slices. Graphs
// may be directed or undirected; an undirected graph stores each edge in both
// endpoint adjacency lists. Vertices carry a label (used by pattern matching
// and GPARs) and a list of string properties (used by keyword search).
//
// A Graph has two phases (see csr.go): a mutable build phase, which is not
// safe for concurrent use, and a frozen CSR query phase entered via Freeze(),
// in which all read methods are safe for concurrent use and the dense
// accessors (OutAt, InAt, LabelIDAt, …) traverse without hash lookups. The
// engines freeze fragments at partition time; kernels take the dense path
// whenever Frozen() reports true.
package graph

import (
	"fmt"
	"sort"
)

// ID identifies a vertex. IDs are sparse: any non-negative int64 may be used.
type ID int64

// NoID is returned by lookups that find no vertex.
const NoID ID = -1

// Edge is a directed connection to a target vertex with a weight and an
// optional label. For undirected graphs the reverse Edge is stored on the
// other endpoint as well.
type Edge struct {
	To    ID
	W     float64
	Label string
}

// Graph is a labeled, weighted graph. The zero value is not usable; call New
// or NewUndirected.
type Graph struct {
	directed bool
	ids      []ID         // dense index -> ID
	index    map[ID]int32 // ID -> dense index
	labels   []string     // dense index -> vertex label
	props    [][]string   // dense index -> vertex properties (keywords etc.)
	out      [][]Edge     // dense index -> out-edges (build phase)
	in       [][]Edge     // dense index -> in-edges; built lazily (build phase)
	inBuilt  bool
	numEdges int

	// Frozen CSR form (see csr.go). When frozen, out/in above are nil and
	// adjacency lives in the flat offset+packed arrays below.
	frozen     bool
	outOff     []int32     // dense index -> [outOff[i], outOff[i+1]) in outCSR
	outCSR     []Edge      // flat out-adjacency, sparse-ID edges (boundary API)
	outDense   []DenseEdge // parallel to outCSR: dense targets, interned labels
	inOff      []int32     // reverse CSR offsets (directed graphs)
	inCSR      []Edge
	inDense    []DenseEdge
	vlab       []int32 // dense index -> interned vertex label
	labelNames []string
	labelIDs   map[string]int32
}

// New returns an empty directed graph.
func New() *Graph { return &Graph{directed: true, index: make(map[ID]int32)} }

// NewUndirected returns an empty undirected graph. AddEdge stores both
// directions, and NumEdges counts each undirected edge once.
func NewUndirected() *Graph { return &Graph{directed: false, index: make(map[ID]int32)} }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.ids) }

// NumEdges returns the number of edges. Undirected edges count once.
func (g *Graph) NumEdges() int { return g.numEdges }

// AddVertex inserts a vertex with the given label if it does not exist, and
// returns its dense index. Re-adding an existing vertex updates its label
// only when label is non-empty.
func (g *Graph) AddVertex(id ID, label string) int32 {
	if g.frozen {
		g.thaw()
	}
	if i, ok := g.index[id]; ok {
		if label != "" {
			g.labels[i] = label
		}
		return i
	}
	i := int32(len(g.ids))
	g.index[id] = i
	g.ids = append(g.ids, id)
	g.labels = append(g.labels, label)
	g.props = append(g.props, nil)
	g.out = append(g.out, nil)
	if g.inBuilt {
		g.in = append(g.in, nil)
	}
	return i
}

// SetProps replaces the property list of id. It panics if id is absent.
func (g *Graph) SetProps(id ID, props []string) {
	g.props[g.mustIndex(id)] = props
}

// AddProp appends a property to id's property list. It panics if id is absent.
func (g *Graph) AddProp(id ID, prop string) {
	i := g.mustIndex(id)
	g.props[i] = append(g.props[i], prop)
}

// AddEdge inserts an edge from u to v, creating missing endpoints with empty
// labels. For undirected graphs the reverse edge is stored too. Parallel
// edges are allowed.
func (g *Graph) AddEdge(u, v ID, w float64) { g.AddLabeledEdge(u, v, w, "") }

// AddLabeledEdge is AddEdge with an edge label.
func (g *Graph) AddLabeledEdge(u, v ID, w float64, label string) {
	if g.frozen {
		g.thaw()
	}
	ui := g.AddVertex(u, "")
	vi := g.AddVertex(v, "")
	g.out[ui] = append(g.out[ui], Edge{To: v, W: w, Label: label})
	if !g.directed {
		g.out[vi] = append(g.out[vi], Edge{To: u, W: w, Label: label})
	}
	if g.inBuilt {
		g.in[vi] = append(g.in[vi], Edge{To: u, W: w, Label: label})
		if !g.directed {
			g.in[ui] = append(g.in[ui], Edge{To: v, W: w, Label: label})
		}
	}
	g.numEdges++
}

// RemoveEdge removes one edge instance from u to v with the given label
// (weight is not part of the match; parallel edges with the same label are
// removed one instance per call, first in adjacency order) and returns the
// removed edge. A frozen graph is transparently thawed, exactly as the Add*
// mutators do. The surviving adjacency is freshly allocated, never edited in
// place: after a thaw the per-vertex slices alias the CSR arrays, which
// frozen Clones may still share. When no edge matches, the graph's edges are
// unchanged and ok is false.
func (g *Graph) RemoveEdge(u, v ID, label string) (removed Edge, ok bool) {
	ui, uok := g.index[u]
	vi, vok := g.index[v]
	if !uok || !vok {
		return Edge{}, false
	}
	if g.frozen {
		g.thaw()
	}
	removed, ok = removeEdgeOnce(&g.out[ui], v, label, nil)
	if !ok {
		return Edge{}, false
	}
	if !g.directed {
		// the stored reverse instance (for self-loops, the second copy)
		removeEdgeOnce(&g.out[vi], u, label, &removed.W)
	}
	if g.directed && g.inBuilt {
		removeEdgeOnce(&g.in[vi], u, label, &removed.W)
	}
	g.numEdges--
	return removed, true
}

// removeEdgeOnce deletes the first edge in *es targeting to with the given
// label (and, when w is non-nil, exactly weight *w) by rebuilding the slice
// into fresh memory — *es may alias a shared CSR array.
func removeEdgeOnce(es *[]Edge, to ID, label string, w *float64) (Edge, bool) {
	for k, e := range *es {
		if e.To == to && e.Label == label && (w == nil || e.W == *w) {
			var rest []Edge
			if len(*es) > 1 {
				rest = make([]Edge, 0, len(*es)-1)
				rest = append(rest, (*es)[:k]...)
				rest = append(rest, (*es)[k+1:]...)
			}
			*es = rest
			return e, true
		}
	}
	return Edge{}, false
}

// Has reports whether the vertex exists.
func (g *Graph) Has(id ID) bool { _, ok := g.index[id]; return ok }

// Label returns the label of id, or "" if id is absent.
func (g *Graph) Label(id ID) string {
	if i, ok := g.index[id]; ok {
		return g.labels[i]
	}
	return ""
}

// Props returns the property list of id (nil if absent). The caller must not
// mutate the returned slice.
func (g *Graph) Props(id ID) []string {
	if i, ok := g.index[id]; ok {
		return g.props[i]
	}
	return nil
}

// Out returns the out-edges of id (nil if absent). The caller must not mutate
// the returned slice.
func (g *Graph) Out(id ID) []Edge {
	if i, ok := g.index[id]; ok {
		if g.frozen {
			a, b := g.outOff[i], g.outOff[i+1]
			if a == b {
				return nil
			}
			return g.outCSR[a:b:b]
		}
		return g.out[i]
	}
	return nil
}

// In returns the in-edges of id. On frozen graphs the eagerly built reverse
// CSR is sliced; on mutable graphs the reverse adjacency is built lazily on
// first use (single-goroutine only — see the package phase contract). For
// undirected graphs In equals Out.
func (g *Graph) In(id ID) []Edge {
	if !g.directed {
		return g.Out(id)
	}
	if g.frozen {
		if i, ok := g.index[id]; ok {
			a, b := g.inOff[i], g.inOff[i+1]
			if a == b {
				return nil
			}
			return g.inCSR[a:b:b]
		}
		return nil
	}
	if !g.inBuilt {
		g.buildIn()
	}
	if i, ok := g.index[id]; ok {
		return g.in[i]
	}
	return nil
}

func (g *Graph) buildIn() {
	g.in = make([][]Edge, len(g.ids))
	for ui, edges := range g.out {
		u := g.ids[ui]
		for _, e := range edges {
			vi := g.index[e.To]
			g.in[vi] = append(g.in[vi], Edge{To: u, W: e.W, Label: e.Label})
		}
	}
	g.inBuilt = true
}

// OutDegree returns the out-degree of id, 0 if absent.
func (g *Graph) OutDegree(id ID) int { return len(g.Out(id)) }

// InDegree returns the in-degree of id, 0 if absent.
func (g *Graph) InDegree(id ID) int { return len(g.In(id)) }

// Vertices returns all vertex IDs in insertion order. The caller must not
// mutate the returned slice.
func (g *Graph) Vertices() []ID { return g.ids }

// SortedVertices returns all vertex IDs in ascending order (a fresh slice).
func (g *Graph) SortedVertices() []ID {
	out := make([]ID, len(g.ids))
	copy(out, g.ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Index returns the dense index of id and whether it exists. Dense indices
// are stable across the graph's lifetime and lie in [0, NumVertices).
func (g *Graph) Index(id ID) (int32, bool) {
	i, ok := g.index[id]
	return i, ok
}

// IDAt returns the vertex ID at dense index i.
func (g *Graph) IDAt(i int32) ID { return g.ids[i] }

func (g *Graph) mustIndex(id ID) int32 {
	i, ok := g.index[id]
	if !ok {
		panic(fmt.Sprintf("graph: vertex %d not present", id))
	}
	return i
}

// Clone returns a deep copy of the graph. A frozen graph clones frozen,
// sharing the immutable CSR arrays and label table (they are never mutated
// in place — thawing a clone drops the references, it does not write through
// them); a mutable graph clones mutable, with the reverse adjacency rebuilt
// on demand.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		directed: g.directed,
		ids:      append([]ID(nil), g.ids...),
		index:    make(map[ID]int32, len(g.index)),
		labels:   append([]string(nil), g.labels...),
		props:    make([][]string, len(g.props)),
		numEdges: g.numEdges,
	}
	for id, i := range g.index {
		c.index[id] = i
	}
	for i, p := range g.props {
		c.props[i] = append([]string(nil), p...)
	}
	if g.frozen {
		c.frozen = true
		c.outOff, c.outCSR, c.outDense = g.outOff, g.outCSR, g.outDense
		c.inOff, c.inCSR, c.inDense = g.inOff, g.inCSR, g.inDense
		c.vlab, c.labelNames, c.labelIDs = g.vlab, g.labelNames, g.labelIDs
		return c
	}
	c.out = make([][]Edge, len(g.out))
	for i, es := range g.out {
		c.out[i] = append([]Edge(nil), es...)
	}
	return c
}

// InducedSubgraph returns the subgraph induced by keep: vertices in keep and
// every edge whose endpoints are both kept. Labels and properties are copied.
// A frozen graph produces a frozen subgraph directly in CSR form.
func (g *Graph) InducedSubgraph(keep map[ID]bool) *Graph {
	if g.frozen {
		b := NewSubgraphBuilder(g, len(keep))
		for i := int32(0); i < int32(len(g.ids)); i++ {
			if keep[g.ids[i]] {
				b.AddVertex(i)
			}
		}
		for i := int32(0); i < int32(len(g.ids)); i++ {
			if !b.Has(i) {
				continue
			}
			u := g.ids[i]
			for _, e := range g.OutAt(i) {
				if b.Has(e.To) && (g.directed || u <= g.ids[e.To]) {
					b.AddEdge(i, e)
				}
			}
		}
		return b.Finish()
	}
	s := &Graph{directed: g.directed, index: make(map[ID]int32)}
	for _, id := range g.ids {
		if keep[id] {
			s.AddVertex(id, g.Label(id))
			s.SetProps(id, append([]string(nil), g.Props(id)...))
		}
	}
	for _, u := range g.ids {
		if !keep[u] {
			continue
		}
		for _, e := range g.Out(u) {
			if keep[e.To] {
				if g.directed || u <= e.To { // avoid double-adding undirected edges
					s.AddLabeledEdge(u, e.To, e.W, e.Label)
				}
			}
		}
	}
	return s
}

// Symmetrized returns a directed copy of g with every edge mirrored, so
// algorithms that flood along out-edges see weak connectivity. Labels,
// properties and weights are preserved; mirror edges reuse the original
// weight and label.
func (g *Graph) Symmetrized() *Graph {
	s := New()
	for _, id := range g.ids {
		s.AddVertex(id, g.Label(id))
		if ps := g.Props(id); len(ps) > 0 {
			s.SetProps(id, append([]string(nil), ps...))
		}
	}
	for _, u := range g.ids {
		for _, e := range g.Out(u) {
			s.AddLabeledEdge(u, e.To, e.W, e.Label)
			s.AddLabeledEdge(e.To, u, e.W, e.Label)
		}
	}
	return s
}

// TotalWeight returns the sum of all edge weights (undirected edges once).
func (g *Graph) TotalWeight() float64 {
	var t float64
	for _, u := range g.ids {
		for _, e := range g.Out(u) {
			if g.directed || u <= e.To {
				t += e.W
			}
		}
	}
	return t
}

// Validate checks internal consistency and returns an error describing the
// first problem found, or nil. It is used by tests and the storage layer
// after deserialization.
func (g *Graph) Validate() error {
	nv := len(g.ids)
	if nv != len(g.labels) || nv != len(g.props) {
		return fmt.Errorf("graph: inconsistent slice lengths")
	}
	if !g.frozen && nv != len(g.out) {
		return fmt.Errorf("graph: inconsistent slice lengths")
	}
	for id, i := range g.index {
		if int(i) >= nv || g.ids[i] != id {
			return fmt.Errorf("graph: index entry %d -> %d broken", id, i)
		}
	}
	if g.frozen {
		if len(g.outOff) != nv+1 || len(g.outDense) != len(g.outCSR) || len(g.vlab) != nv {
			return fmt.Errorf("graph: inconsistent CSR lengths")
		}
		for i := 0; i < nv; i++ {
			if g.outOff[i] > g.outOff[i+1] {
				return fmt.Errorf("graph: CSR offsets not monotone at %d", i)
			}
		}
		if int(g.outOff[nv]) != len(g.outCSR) {
			return fmt.Errorf("graph: CSR offsets do not cover the edge array")
		}
		for k, e := range g.outCSR {
			d := g.outDense[k]
			if int(d.To) >= nv || g.ids[d.To] != e.To {
				return fmt.Errorf("graph: packed edge %d targets %d, sparse view says %d", k, d.To, e.To)
			}
			if g.labelNames[d.Label] != e.Label {
				return fmt.Errorf("graph: packed edge %d label %q, sparse view says %q", k, g.labelNames[d.Label], e.Label)
			}
		}
		return nil
	}
	for ui, es := range g.out {
		for _, e := range es {
			if _, ok := g.index[e.To]; !ok {
				return fmt.Errorf("graph: edge from %d to missing vertex %d", g.ids[ui], e.To)
			}
		}
	}
	return nil
}
