package graph

import "fmt"

// CSRData is the flat frozen form of a Graph: exactly the arrays Freeze()
// builds, exposed so a storage layer can lay them out in a file and hand them
// back without re-deriving anything. The fixed-width slices (IDs, VLabels,
// OutOff, OutDense, InOff, InDense) are the mmap-able half — FromMapped
// aliases them as given, so they may point into a read-only file mapping.
// The string-bearing half (Labels, Props) is always heap-resident; FromMapped
// reconstructs the sparse CSR views and the intern maps from it.
type CSRData struct {
	Directed bool
	// NumEdges is the logical edge count (undirected edges count once; the
	// adjacency arrays store both directions, so it is not derivable).
	NumEdges int
	IDs      []ID        // dense index -> sparse vertex ID
	VLabels  []int32     // dense index -> interned vertex label
	OutOff   []int32     // len NumVertices+1; OutOff[0] == 0
	OutDense []DenseEdge // packed out-edges in dense source order
	InOff    []int32     // reverse CSR offsets; empty for undirected graphs
	InDense  []DenseEdge // packed in-edges; empty for undirected graphs
	Labels   []string    // intern table (vertex and edge labels share it)
	Props    [][]string  // dense index -> vertex properties; nil if none anywhere
}

// CSRView returns the graph's flat frozen form. The returned slices alias the
// graph's internal arrays — read-only, valid until the graph thaws. The graph
// must be frozen.
func (g *Graph) CSRView() (CSRData, error) {
	if !g.frozen {
		return CSRData{}, fmt.Errorf("graph: CSRView needs a frozen graph")
	}
	d := CSRData{
		Directed: g.directed,
		NumEdges: g.numEdges,
		IDs:      g.ids,
		VLabels:  g.vlab,
		OutOff:   g.outOff,
		OutDense: g.outDense,
		InOff:    g.inOff,
		InDense:  g.inDense,
		Labels:   g.labelNames,
	}
	for _, ps := range g.props {
		if len(ps) > 0 {
			d.Props = g.props
			break
		}
	}
	return d, nil
}

// FromMapped constructs a frozen Graph from its flat form without calling
// Freeze: the fixed-width slices of d are aliased as-is (they may live in a
// read-only mmap — the graph never writes through them; mutation thaws into
// freshly allocated memory first), and the derived structures Freeze would
// have produced — the ID index, the label intern map, the sparse-ID edge
// views — are rebuilt on the heap, exactly as finishFreeze defines them.
// Every array is bounds-checked first, so corrupt input errors instead of
// panicking later.
func FromMapped(d CSRData) (*Graph, error) {
	nv := len(d.IDs)
	ne := len(d.OutDense)
	if len(d.VLabels) != nv {
		return nil, fmt.Errorf("graph: mapped vlab covers %d of %d vertices", len(d.VLabels), nv)
	}
	if len(d.OutOff) != nv+1 {
		return nil, fmt.Errorf("graph: mapped outOff has %d entries, want %d", len(d.OutOff), nv+1)
	}
	if d.Props != nil && len(d.Props) != nv {
		return nil, fmt.Errorf("graph: mapped props cover %d of %d vertices", len(d.Props), nv)
	}
	if err := checkOffsets(d.OutOff, ne); err != nil {
		return nil, fmt.Errorf("graph: mapped out CSR: %w", err)
	}
	if d.Directed {
		if len(d.InOff) != nv+1 || len(d.InDense) != ne {
			return nil, fmt.Errorf("graph: mapped reverse CSR has %d offsets / %d edges, want %d / %d",
				len(d.InOff), len(d.InDense), nv+1, ne)
		}
		if err := checkOffsets(d.InOff, ne); err != nil {
			return nil, fmt.Errorf("graph: mapped in CSR: %w", err)
		}
	} else if len(d.InOff) != 0 || len(d.InDense) != 0 {
		return nil, fmt.Errorf("graph: mapped undirected graph carries a reverse CSR")
	}

	g := &Graph{
		directed:   d.Directed,
		ids:        d.IDs,
		index:      make(map[ID]int32, nv),
		numEdges:   d.NumEdges,
		outOff:     d.OutOff,
		outDense:   d.OutDense,
		vlab:       d.VLabels,
		labelNames: d.Labels,
		labelIDs:   make(map[string]int32, len(d.Labels)),
	}
	for i, id := range d.IDs {
		if _, dup := g.index[id]; dup {
			return nil, fmt.Errorf("graph: mapped vertex %d appears twice", id)
		}
		g.index[id] = int32(i)
	}
	for i, s := range d.Labels {
		if _, dup := g.labelIDs[s]; dup {
			return nil, fmt.Errorf("graph: mapped label %q interned twice", s)
		}
		g.labelIDs[s] = int32(i)
	}
	nl := int32(len(d.Labels))
	g.labels = make([]string, nv)
	for i, l := range d.VLabels {
		if l < 0 || l >= nl {
			return nil, fmt.Errorf("graph: mapped vertex %d has label id %d of %d", i, l, nl)
		}
		g.labels[i] = d.Labels[l]
	}
	if d.Props != nil {
		g.props = d.Props
	} else {
		g.props = make([][]string, nv)
	}
	var err error
	if g.outCSR, err = sparseEdges(d.OutDense, d.IDs, d.Labels); err != nil {
		return nil, fmt.Errorf("graph: mapped out CSR: %w", err)
	}
	if d.Directed {
		g.inOff = d.InOff
		g.inDense = d.InDense
		if g.inCSR, err = sparseEdges(d.InDense, d.IDs, d.Labels); err != nil {
			return nil, fmt.Errorf("graph: mapped in CSR: %w", err)
		}
	}
	g.frozen = true
	return g, nil
}

// checkOffsets validates a CSR offset array: starts at 0, monotone, and
// covers exactly ne packed edges.
func checkOffsets(off []int32, ne int) error {
	if off[0] != 0 {
		return fmt.Errorf("offsets start at %d", off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("offsets not monotone at %d", i)
		}
	}
	if int(off[len(off)-1]) != ne {
		return fmt.Errorf("offsets cover %d of %d edges", off[len(off)-1], ne)
	}
	return nil
}

// sparseEdges rebuilds the sparse-ID edge view of a packed edge array — the
// inverse of what finishFreeze interns: Edge{To: ids[e.To], W, labels[e.Label]}.
func sparseEdges(dense []DenseEdge, ids []ID, labels []string) ([]Edge, error) {
	nv, nl := int32(len(ids)), int32(len(labels))
	out := make([]Edge, len(dense))
	for k, e := range dense {
		if e.To < 0 || e.To >= nv {
			return nil, fmt.Errorf("packed edge %d targets dense index %d of %d", k, e.To, nv)
		}
		if e.Label < 0 || e.Label >= nl {
			return nil, fmt.Errorf("packed edge %d has label id %d of %d", k, e.Label, nl)
		}
		out[k] = Edge{To: ids[e.To], W: e.W, Label: labels[e.Label]}
	}
	return out, nil
}
