package graph

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire encoding of a Graph, used by the socket transport to ship fragments
// and pattern graphs between the coordinator and worker processes. The
// encoding is struct-level — vertices in dense-index order with their exact
// adjacency lists — so a decoded graph reproduces the original's dense
// indices and iteration order bit for bit; sequential algorithms therefore
// behave identically on both sides of the wire.
//
// Layout (all integers unsigned varints unless noted):
//
//	byte     directed
//	uvarint  numVertices
//	per vertex, dense order: uvarint id · string label · uvarint nprops · props
//	per vertex, dense order: uvarint degree · per edge (uvarint targetID ·
//	                         8-byte float weight · string label)
//	uvarint  numEdges (undirected edges count once; not derivable from the
//	                   adjacency because both directions are stored)
//
// Strings are uvarint length + raw bytes.

// AppendGraph appends the wire encoding of g to buf and returns the extended
// buffer.
func AppendGraph(buf []byte, g *Graph) []byte {
	if g.directed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(g.ids)))
	for i, id := range g.ids {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = appendString(buf, g.labels[i])
		buf = binary.AppendUvarint(buf, uint64(len(g.props[i])))
		for _, p := range g.props[i] {
			buf = appendString(buf, p)
		}
	}
	for i := range g.ids {
		var es []Edge
		if g.frozen {
			es = g.outCSR[g.outOff[i]:g.outOff[i+1]]
		} else {
			es = g.out[i]
		}
		buf = binary.AppendUvarint(buf, uint64(len(es)))
		for _, e := range es {
			buf = binary.AppendUvarint(buf, uint64(e.To))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.W))
			buf = appendString(buf, e.Label)
		}
	}
	return binary.AppendUvarint(buf, uint64(g.numEdges))
}

// DecodeGraph decodes a graph encoded by AppendGraph from the front of data,
// returning the graph and the number of bytes consumed. The decoder fills the
// CSR arrays directly and returns the graph already frozen — workers query
// shipped fragments, they do not mutate them — so decoding pays no per-edge
// append/index churn and the dense accessors are immediately available.
func DecodeGraph(data []byte) (*Graph, int, error) {
	pos := 0
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("graph: truncated encoding")
	}
	directed := data[pos] != 0
	pos++
	nv, err := ReadUvarint(data, &pos)
	if err != nil {
		return nil, 0, err
	}
	g := &Graph{directed: directed, index: make(map[ID]int32, nv)}
	for i := uint64(0); i < nv; i++ {
		id, err := ReadUvarint(data, &pos)
		if err != nil {
			return nil, 0, err
		}
		label, err := ReadString(data, &pos)
		if err != nil {
			return nil, 0, err
		}
		if _, dup := g.index[ID(id)]; dup {
			return nil, 0, fmt.Errorf("graph: duplicate vertex %d in encoding", id)
		}
		g.index[ID(id)] = int32(i)
		g.ids = append(g.ids, ID(id))
		g.labels = append(g.labels, label)
		np, err := ReadUvarint(data, &pos)
		if err != nil {
			return nil, 0, err
		}
		var props []string
		for j := uint64(0); j < np; j++ {
			p, err := ReadString(data, &pos)
			if err != nil {
				return nil, 0, err
			}
			props = append(props, p)
		}
		g.props = append(g.props, props)
	}
	g.outOff = make([]int32, nv+1)
	for i := uint64(0); i < nv; i++ {
		deg, err := ReadUvarint(data, &pos)
		if err != nil {
			return nil, 0, err
		}
		for j := uint64(0); j < deg; j++ {
			to, err := ReadUvarint(data, &pos)
			if err != nil {
				return nil, 0, err
			}
			if pos+8 > len(data) {
				return nil, 0, fmt.Errorf("graph: truncated edge weight")
			}
			w := math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
			label, err := ReadString(data, &pos)
			if err != nil {
				return nil, 0, err
			}
			if _, ok := g.index[ID(to)]; !ok {
				return nil, 0, fmt.Errorf("graph: edge to unknown vertex %d", to)
			}
			g.outCSR = append(g.outCSR, Edge{To: ID(to), W: w, Label: label})
		}
		g.outOff[i+1] = int32(len(g.outCSR))
	}
	ne, err := ReadUvarint(data, &pos)
	if err != nil {
		return nil, 0, err
	}
	g.numEdges = int(ne)
	g.finishFreeze()
	return g, pos, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ReadUvarint decodes one unsigned varint from data at *pos, advancing it.
// It is the bounds-checked primitive shared by every wire decoder in the
// repository (graph, partition, engine, queries) — network input must error,
// never panic.
func ReadUvarint(data []byte, pos *int) (uint64, error) {
	v, n := binary.Uvarint(data[*pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad varint at offset %d", *pos)
	}
	*pos += n
	return v, nil
}

// ReadString decodes one length-prefixed string from data at *pos,
// advancing it.
func ReadString(data []byte, pos *int) (string, error) {
	n, err := ReadUvarint(data, pos)
	if err != nil {
		return "", err
	}
	if uint64(len(data)-*pos) < n {
		return "", fmt.Errorf("wire: truncated string at offset %d", *pos)
	}
	s := string(data[*pos : *pos+int(n)])
	*pos += int(n)
	return s, nil
}
