// Package transport is the wire implementation of mpi.Transport: a
// length-prefixed binary frame protocol over TCP or Unix-domain sockets that
// lets each GRAPE worker run as a separate OS process. It is the second of
// the engine's two substrates — internal/mpi's Bus keeps workers as
// goroutines and estimates traffic; this package puts real sockets between
// the parties and meters the actual encoded bytes.
//
// Topology and handshake: the coordinator listens; each worker process
// (cmd/grape-worker) dials, sends a 8-byte hello (magic + protocol version),
// and receives its assigned worker index, the total worker count, and the
// liveness window. Workers are indexed in accept order. After the handshake
// the engine takes over: the coordinator ships each worker a setup frame
// (program name, encoded query, its fragment) followed by the PIE command
// stream; the worker answers with encoded replies and, after the fixpoint,
// its partial answer (see internal/engine/wire.go for the frame contents).
//
// Frame layout on the socket, all integers big-endian:
//
//	uint32  length of the rest (fragment + step + size + payload)
//	int32   fragment the frame addresses (coordinator → worker) or comes
//	        from (worker → coordinator); -2 is a ping, -3 a pong
//	int32   superstep
//	int32   metered data size (0 = control; only data counts as traffic,
//	        matching the in-process bus's accounting)
//	bytes   payload (engine-encoded)
//
// Failure model (protocol v3+): every link failure is *classified* (see
// internal/mpi): a broken, silent, or frame-corrupting worker link surfaces
// as one worker-fatal envelope per fragment assigned to that link — which
// the engine either turns into a run error or, with recovery enabled,
// survives by reassigning the fragments to other links (Reassign) and
// replaying them from its superstep checkpoint. Liveness is active on both
// sides: the coordinator pings every link and kills one that stays silent
// past the window; a worker's reads are deadline-bounded by the same window
// (pings reset it), so a vanished coordinator unblocks the worker instead of
// hanging it forever.
//
// Cancellation: the coordinator's Recv is context-aware, so a cancelled run
// stops waiting at the superstep barrier immediately; the engine then
// broadcasts an abort command frame that makes each worker process discard
// the run (engine.ErrAborted), and the setup frame carries the run deadline
// so a worker bounds itself even if the coordinator dies first. Both were
// added in protocol version 2.
package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"grape/internal/mpi"
)

// retryableDial reports whether a dial error means "the coordinator is not
// up yet" rather than a permanent misconfiguration.
func retryableDial(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ENOENT) ||
		errors.Is(err, os.ErrNotExist)
}

const (
	magic = "GRPW"
	// version 4 appends each worker's per-superstep compute/apply
	// nanoseconds to the reply frame for the flight recorder; the decoder
	// tolerates their absence, so the coordinator still accepts version 3
	// workers (their timings read as zero). Version 3 added fault tolerance:
	// the fragment field of the frame header (one link can host several
	// fragments after reassignment), ping/pong liveness frames, and the
	// liveness window in the handshake response. Version 2 added run
	// cancellation (the abort frame and the setup frame's deadline). Older
	// binaries are rejected at the handshake.
	version = 4
	// minVersion is the oldest worker protocol the coordinator still
	// accepts (see version 4's compat note).
	minVersion = 3
	// maxFrame caps a single frame: fragments of very large graphs dominate
	// frame sizes; 1 GiB is far beyond anything this repo generates while
	// still bounding a corrupted length prefix.
	maxFrame = 1 << 30

	// pingFrag and pongFrag are the fragment-field sentinels of the liveness
	// frames. Real fragments are never negative.
	pingFrag = -2
	pongFrag = -3

	frameHeaderLen = 16

	// Liveness defaults: the coordinator pings every link at pingEvery and
	// declares one dead after window of silence; workers bound their reads
	// by the same window. The window is several pings wide so one delayed
	// scheduler tick cannot kill a healthy link.
	defaultPingEvery = 5 * time.Second
	defaultWindow    = 20 * time.Second
)

// AcceptOption configures AcceptWorkers.
type AcceptOption func(*acceptConfig)

type acceptConfig struct {
	every  time.Duration
	window time.Duration
}

// WithLiveness overrides the liveness schedule: the coordinator pings every
// link at interval every and kills a link silent for longer than window;
// workers deadline their reads by the same window. WithLiveness(0, 0)
// disables liveness entirely (no pings, unbounded reads — the v2 behavior).
func WithLiveness(every, window time.Duration) AcceptOption {
	return func(c *acceptConfig) {
		c.every = every
		c.window = window
	}
}

// Listener accepts worker connections for one distributed run.
type Listener struct {
	ln net.Listener
}

// NewListener starts listening on network ("tcp" or "unix") and addr.
// Use Addr to discover the bound address when addr requests an ephemeral
// port (":0").
func NewListener(network, addr string) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s %s: %w", network, addr, err)
	}
	return &Listener{ln: ln}, nil
}

// Addr returns the listener's bound address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Close stops accepting workers.
func (l *Listener) Close() error { return l.ln.Close() }

// AcceptWorkers blocks until n workers have dialed and completed the
// handshake (or timeout elapses), then returns the connected coordinator
// transport. The listener stays open and can accept another round.
func (l *Listener) AcceptWorkers(n int, timeout time.Duration, opts ...AcceptOption) (*Coordinator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: need a positive worker count, got %d", n)
	}
	cfg := acceptConfig{every: defaultPingEvery, window: defaultWindow}
	for _, o := range opts {
		o(&cfg)
	}
	deadline := time.Now().Add(timeout)
	c := &Coordinator{
		n:         n,
		conns:     make([]*conn, n),
		inbox:     make(chan mpi.Envelope, 4*n+16),
		assign:    make([]int, n),
		alive:     make([]bool, n),
		lastHeard: make([]atomic.Int64, n),
		pingEvery: cfg.every,
		window:    cfg.window,
		done:      make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		for {
			if d, ok := l.ln.(interface{ SetDeadline(time.Time) error }); ok {
				d.SetDeadline(deadline)
			}
			nc, err := l.ln.Accept()
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("transport: accepting worker %d of %d: %w", i, n, err)
			}
			cn := newConn(nc)
			if err := handshakeCoordinator(cn, i, n, cfg.window, deadline); err != nil {
				// A stray connection (port scanner, wrong client) must not
				// abort the workers already accepted: drop it and keep the
				// slot open until the deadline.
				nc.Close()
				if time.Now().After(deadline) {
					c.Close()
					return nil, fmt.Errorf("transport: worker %d handshake: %w", i, err)
				}
				continue
			}
			c.conns[i] = cn
			break
		}
	}
	if d, ok := l.ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(time.Time{})
	}
	now := time.Now().UnixNano()
	for i, cn := range c.conns {
		c.assign[i] = i
		c.alive[i] = true
		c.lastHeard[i].Store(now)
		c.wg.Add(1)
		go c.reader(i, cn)
	}
	if c.pingEvery > 0 && c.window > 0 {
		c.wg.Add(1)
		go c.pinger()
	}
	return c, nil
}

// Listen is NewListener + AcceptWorkers for callers with a fixed address.
func Listen(network, addr string, n int, timeout time.Duration, opts ...AcceptOption) (*Coordinator, *Listener, error) {
	l, err := NewListener(network, addr)
	if err != nil {
		return nil, nil, err
	}
	c, err := l.AcceptWorkers(n, timeout, opts...)
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	return c, l, nil
}

// Coordinator is the coordinator's side of the socket transport: an
// mpi.Transport whose workers live in other processes. A Coordinator is
// single-use per engine run; Close it when the run finishes. It implements
// mpi.Reassigner: a fragment can be re-homed onto another worker's link
// after its own died, which is how the engine's recovery path survives
// worker crashes.
type Coordinator struct {
	n     int
	conns []*conn
	inbox chan mpi.Envelope

	msgs  atomic.Int64
	bytes atomic.Int64

	// mu guards assign and alive. A reader marks its link dead and
	// snapshots the fragments assigned to it in one critical section, so a
	// racing Reassign onto a dying link either lands before the snapshot
	// (and gets a worker-fatal envelope for the fragment) or fails cleanly.
	mu     sync.Mutex
	assign []int  // fragment -> link index
	alive  []bool // link index -> still usable

	lastHeard []atomic.Int64 // link index -> UnixNano of the last frame
	pingEvery time.Duration
	window    time.Duration

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

var _ mpi.Transport = (*Coordinator)(nil)
var _ mpi.Reassigner = (*Coordinator)(nil)

// Workers returns the number of fragments the transport serves (equal to
// the number of worker processes accepted; reassignment can concentrate
// several fragments on one surviving process).
func (c *Coordinator) Workers() int { return c.n }

// Wire reports that payloads cross a process boundary.
func (c *Coordinator) Wire() bool { return true }

// Reassign re-homes fragment frag onto worker host's link: subsequent
// frames addressed to frag are written there. It fails if host's link is
// already dead — the caller picks another survivor.
func (c *Coordinator) Reassign(frag, host int) error {
	if frag < 0 || frag >= c.n || host < 0 || host >= c.n {
		return fmt.Errorf("transport: reassign fragment %d to worker %d: out of range", frag, host)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.alive[host] {
		return fmt.Errorf("transport: reassign fragment %d: worker %d link is dead", frag, host)
	}
	c.assign[frag] = host
	return nil
}

// Send writes e's frame to the link hosting fragment e.To and meters
// e.Size. A failed write — socket error or a frame over the size limit —
// closes that link, so its reader surfaces the failure (one worker-fatal
// envelope per hosted fragment) on the next Recv, which is where the engine
// handles faults; Send itself stays error-free for the hot path. A send to
// an already-dead link is dropped: its fault has already been surfaced.
func (c *Coordinator) Send(e mpi.Envelope) {
	if e.To < 0 || e.To >= c.n {
		panic(fmt.Sprintf("transport: send to unknown fragment %d", e.To))
	}
	if e.Size > 0 {
		c.msgs.Add(1)
		c.bytes.Add(int64(e.Size))
	}
	c.mu.Lock()
	h := c.assign[e.To]
	ok := c.alive[h]
	c.mu.Unlock()
	if !ok {
		return
	}
	if err := c.conns[h].writeFrame(e.To, e.Step, e.Size, e.Frame); err != nil {
		c.conns[h].nc.Close()
	}
}

// Recv blocks until any worker delivers a frame (party must be
// mpi.Coordinator; workers hold their own WorkerConn in their own process)
// or ctx is done, in which case the engine is abandoning the superstep —
// it will broadcast abort frames and return. A broken link yields one
// Envelope per fragment it hosted, each with a nil Frame and the classified
// worker-fatal error in Payload.
func (c *Coordinator) Recv(ctx context.Context, party int) (mpi.Envelope, error) {
	if party != mpi.Coordinator {
		panic(fmt.Sprintf("transport: coordinator cannot receive for party %d", party))
	}
	done := ctx.Done()
	if done == nil {
		env := <-c.inbox
		if env.Size > 0 {
			c.msgs.Add(1)
			c.bytes.Add(int64(env.Size))
		}
		return env, nil
	}
	select {
	case env := <-c.inbox:
		if env.Size > 0 {
			c.msgs.Add(1)
			c.bytes.Add(int64(env.Size))
		}
		return env, nil
	case <-done:
		//grapevet:keep context cancellation is the engine's own bound, not a link fault to classify
		return mpi.Envelope{}, ctx.Err()
	}
}

// Messages returns the number of data messages metered so far.
func (c *Coordinator) Messages() int64 { return c.msgs.Load() }

// Bytes returns the number of data bytes metered so far.
func (c *Coordinator) Bytes() int64 { return c.bytes.Load() }

// AddTraffic meters communication that bypasses Send, e.g. the d-hop
// replication charged when fragments were expanded.
func (c *Coordinator) AddTraffic(msgs, bytes int64) {
	c.msgs.Add(msgs)
	c.bytes.Add(bytes)
}

// Close tears the links down and waits for the readers to drain.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		for _, cn := range c.conns {
			if cn != nil {
				cn.nc.Close()
			}
		}
	})
	c.wg.Wait()
	return nil
}

// reader pumps one link's frames into the shared inbox until the link
// breaks or the coordinator closes. Link death — a socket error, a
// malformed frame, or the pinger closing a silent link — is classified
// worker-fatal and surfaced once per fragment the link was hosting.
func (c *Coordinator) reader(h int, cn *conn) {
	defer c.wg.Done()
	for {
		frag, step, size, payload, err := cn.readFrame()
		if err == nil && frag != pongFrag && (frag < 0 || frag >= c.n) {
			err = fmt.Errorf("transport: frame from fragment %d, which this run does not have", frag)
		}
		if err != nil {
			cn.nc.Close()
			c.mu.Lock()
			c.alive[h] = false
			var frags []int
			for f := 0; f < c.n; f++ {
				if c.assign[f] == h {
					frags = append(frags, f)
				}
			}
			c.mu.Unlock()
			select {
			case <-c.done: // deliberate shutdown; not a fault
				return
			default:
			}
			for _, f := range frags {
				env := mpi.Envelope{From: f, To: mpi.Coordinator, Payload: mpi.WorkerFatal(f, fmt.Errorf("worker link: %w", err))}
				select {
				case c.inbox <- env:
				case <-c.done:
					return
				}
			}
			return
		}
		c.lastHeard[h].Store(time.Now().UnixNano())
		if frag == pongFrag {
			continue
		}
		select {
		case c.inbox <- mpi.Envelope{From: frag, To: mpi.Coordinator, Step: step, Size: size, Frame: payload}:
		case <-c.done:
			return
		}
	}
}

// pinger keeps every link's liveness fresh: a ping per interval, and a
// close — which makes the link's reader surface classified faults — for any
// link silent past the window.
func (c *Coordinator) pinger() {
	defer c.wg.Done()
	t := time.NewTicker(c.pingEvery)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		now := time.Now()
		for h := 0; h < len(c.conns); h++ {
			c.mu.Lock()
			ok := c.alive[h]
			c.mu.Unlock()
			if !ok {
				continue
			}
			if now.Sub(time.Unix(0, c.lastHeard[h].Load())) > c.window {
				// Silent past the window: kill the link so its reader
				// surfaces the fault instead of stalling the barrier.
				c.conns[h].nc.Close()
				continue
			}
			if err := c.conns[h].writeFrame(pingFrag, 0, 0, nil); err != nil {
				c.conns[h].nc.Close()
			}
		}
	}
}

// workerFrame is what the worker-side pump hands Recv: a delivered envelope
// or the link's terminal (classified) error.
type workerFrame struct {
	env mpi.Envelope
	err error
}

// WorkerConn is a worker process's end of the transport; it implements
// engine.WorkerLink. Obtain one with Dial.
type WorkerConn struct {
	cn     *conn
	index  int
	n      int
	window time.Duration

	frames    chan workerFrame
	done      chan struct{}
	closeOnce sync.Once
}

// Dial connects to a coordinator at addr, retrying "not up yet" failures
// (connection refused, unix socket not created) with capped exponential
// backoff and jitter until timeout — worker processes often start before
// the coordinator listens — and completes the handshake. Permanent errors
// (bad network kind, unroutable address) fail immediately.
func Dial(network, addr string, timeout time.Duration) (*WorkerConn, error) {
	nc, deadline, err := stdDialer().dialRetry(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	cn := newConn(nc)
	index, n, window, err := handshakeWorker(cn, deadline)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("transport: handshake with %s: %w", addr, err)
	}
	w := &WorkerConn{
		cn:     cn,
		index:  index,
		n:      n,
		window: window,
		frames: make(chan workerFrame, 16),
		done:   make(chan struct{}),
	}
	go w.pump()
	return w, nil
}

// Index returns the worker index the coordinator assigned.
func (w *WorkerConn) Index() int { return w.index }

// N returns the total number of workers in the run.
func (w *WorkerConn) N() int { return w.n }

// pump reads frames off the socket continuously — so liveness pings are
// answered immediately even while the serve loop is deep in PEval/IncEval —
// answering pings inline and queueing everything else for Recv. With a
// liveness window, each read carries a deadline one window out: a
// coordinator that vanishes (netsplit, SIGKILL) stops pinging, the deadline
// fires, and the worker unblocks with a classified error instead of hanging
// at a barrier forever. The deadline is armed only after the first frame,
// so a worker waiting for peers to finish the accept round is not killed by
// its own patience.
func (w *WorkerConn) pump() {
	armed := false
	for {
		if w.window > 0 && armed {
			w.cn.nc.SetReadDeadline(time.Now().Add(w.window))
		}
		frag, step, size, payload, err := w.cn.readFrame()
		if err != nil {
			w.deliver(workerFrame{err: mpi.RunFatal(fmt.Errorf("transport: coordinator link: %w", err))})
			return
		}
		armed = true
		if frag == pingFrag {
			if err := w.cn.writeFrame(pongFrag, 0, 0, nil); err != nil {
				w.deliver(workerFrame{err: mpi.RunFatal(fmt.Errorf("transport: coordinator link: %w", err))})
				return
			}
			continue
		}
		if !w.deliver(workerFrame{env: mpi.Envelope{From: mpi.Coordinator, To: frag, Step: step, Size: size, Frame: payload}}) {
			return
		}
	}
}

func (w *WorkerConn) deliver(f workerFrame) bool {
	select {
	case w.frames <- f:
		return true
	case <-w.done:
		return false
	}
}

// Recv blocks until a frame from the coordinator arrives. Link errors —
// including a liveness timeout on a vanished coordinator — come back
// classified (mpi.RunFatal: from the worker's perspective, losing the
// coordinator ends the run).
func (w *WorkerConn) Recv() (mpi.Envelope, error) {
	select {
	case f := <-w.frames:
		//grapevet:keep f.err was classified by pump before it entered the frames channel
		return f.env, f.err
	case <-w.done:
		return mpi.Envelope{}, mpi.RunFatal(errors.New("transport: connection closed"))
	}
}

// Send delivers a frame to the coordinator, stamped with the fragment it
// speaks for (e.From). A write failure is classified run-fatal: a worker
// that cannot reach its coordinator has no run left.
func (w *WorkerConn) Send(e mpi.Envelope) error {
	if err := w.cn.writeFrame(e.From, e.Step, e.Size, e.Frame); err != nil {
		return mpi.RunFatal(fmt.Errorf("transport: coordinator link: %w", err))
	}
	return nil
}

// Close closes the link.
func (w *WorkerConn) Close() error {
	w.closeOnce.Do(func() { close(w.done) })
	return w.cn.nc.Close()
}

// conn wraps a socket with buffered framing; writes are serialized by mu.
type conn struct {
	nc net.Conn
	br *bufio.Reader
	mu sync.Mutex
	bw *bufio.Writer
}

func newConn(nc net.Conn) *conn {
	return &conn{nc: nc, br: bufio.NewReaderSize(nc, 1<<16), bw: bufio.NewWriterSize(nc, 1<<16)}
}

//grapevet:keep framing layer: callers (reader, pump, Send, Recv) classify its errors
func (c *conn) writeFrame(frag, step, size int, payload []byte) error {
	if len(payload) > maxFrame-(frameHeaderLen-4) {
		return fmt.Errorf("transport: frame payload of %d bytes exceeds the %d limit", len(payload), maxFrame-(frameHeaderLen-4))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(frameHeaderLen-4+len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(int32(frag)))
	binary.BigEndian.PutUint32(hdr[8:], uint32(int32(step)))
	binary.BigEndian.PutUint32(hdr[12:], uint32(int32(size)))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// readFrame validates the header hard: a truncated, oversized or
// internally-inconsistent frame is an error that closes the link (the
// caller classifies it), never a stall — a corrupted length prefix must not
// leave the peer waiting at a barrier for bytes that will never come.
//
//grapevet:keep framing layer: callers (reader, pump, Send, Recv) classify its errors
func (c *conn) readFrame() (frag, step, size int, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[0:])
	if length < frameHeaderLen-4 || length > maxFrame {
		return 0, 0, 0, nil, fmt.Errorf("transport: frame length %d outside [%d, %d]", length, frameHeaderLen-4, maxFrame)
	}
	frag = int(int32(binary.BigEndian.Uint32(hdr[4:])))
	step = int(int32(binary.BigEndian.Uint32(hdr[8:])))
	size = int(int32(binary.BigEndian.Uint32(hdr[12:])))
	if size < 0 || uint32(size) > length-(frameHeaderLen-4) {
		return 0, 0, 0, nil, fmt.Errorf("transport: frame data size %d inconsistent with length %d", size, length)
	}
	payload = make([]byte, length-(frameHeaderLen-4))
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, 0, 0, nil, err
	}
	return frag, step, size, payload, nil
}

func handshakeCoordinator(cn *conn, index, n int, window time.Duration, deadline time.Time) error {
	cn.nc.SetDeadline(deadline)
	defer cn.nc.SetDeadline(time.Time{})
	var hello [8]byte
	if _, err := io.ReadFull(cn.br, hello[:]); err != nil {
		return err
	}
	if string(hello[:4]) != magic {
		return fmt.Errorf("bad magic %q", hello[:4])
	}
	if v := binary.BigEndian.Uint32(hello[4:]); v < minVersion || v > version {
		return fmt.Errorf("protocol version %d, want %d-%d", v, minVersion, version)
	}
	var resp [16]byte
	binary.BigEndian.PutUint32(resp[0:], uint32(index))
	binary.BigEndian.PutUint32(resp[4:], uint32(n))
	binary.BigEndian.PutUint32(resp[8:], uint32(window/time.Millisecond))
	// resp[12:16] reserved
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if _, err := cn.bw.Write(resp[:]); err != nil {
		return err
	}
	return cn.bw.Flush()
}

func handshakeWorker(cn *conn, deadline time.Time) (index, n int, window time.Duration, err error) {
	cn.nc.SetDeadline(deadline)
	defer cn.nc.SetDeadline(time.Time{})
	var hello [8]byte
	copy(hello[:4], magic)
	binary.BigEndian.PutUint32(hello[4:], version)
	cn.mu.Lock()
	_, err = cn.bw.Write(hello[:])
	if err == nil {
		err = cn.bw.Flush()
	}
	cn.mu.Unlock()
	if err != nil {
		return 0, 0, 0, err
	}
	var resp [16]byte
	if _, err := io.ReadFull(cn.br, resp[:]); err != nil {
		return 0, 0, 0, err
	}
	index = int(binary.BigEndian.Uint32(resp[0:]))
	n = int(binary.BigEndian.Uint32(resp[4:]))
	window = time.Duration(binary.BigEndian.Uint32(resp[8:])) * time.Millisecond
	if n <= 0 || index < 0 || index >= n {
		return 0, 0, 0, fmt.Errorf("bad handshake response: index %d of %d", index, n)
	}
	return index, n, window, nil
}
