// Package transport is the wire implementation of mpi.Transport: a
// length-prefixed binary frame protocol over TCP or Unix-domain sockets that
// lets each GRAPE worker run as a separate OS process. It is the second of
// the engine's two substrates — internal/mpi's Bus keeps workers as
// goroutines and estimates traffic; this package puts real sockets between
// the parties and meters the actual encoded bytes.
//
// Topology and handshake: the coordinator listens; each worker process
// (cmd/grape-worker) dials, sends a 8-byte hello (magic + protocol version),
// and receives its assigned worker index and the total worker count. Workers
// are indexed in accept order. After the handshake the engine takes over:
// the coordinator ships each worker a setup frame (program name, encoded
// query, its fragment) followed by the PIE command stream; the worker
// answers with encoded replies and, after the fixpoint, its partial answer
// (see internal/engine/wire.go for the frame contents).
//
// Frame layout on the socket, all integers big-endian:
//
//	uint32  length of the rest (step + size + payload)
//	int32   superstep
//	int32   metered data size (0 = control; only data counts as traffic,
//	        matching the in-process bus's accounting)
//	bytes   payload (engine-encoded)
//
// Failure model: a worker link that breaks mid-run surfaces as an Envelope
// with a nil Frame and the error in Payload, which the engine turns into a
// run error; sends to a broken link are dropped (the subsequent Recv fails
// the run). The transport adds no retries — a lost worker fails the run, as
// it would in the paper's MPI setting.
//
// Cancellation: the coordinator's Recv is context-aware, so a cancelled run
// stops waiting at the superstep barrier immediately; the engine then
// broadcasts an abort command frame that makes each worker process discard
// the run (engine.ErrAborted), and the setup frame carries the run deadline
// so a worker bounds itself even if the coordinator dies first. Both were
// added in protocol version 2.
package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"grape/internal/mpi"
)

// retryableDial reports whether a dial error means "the coordinator is not
// up yet" rather than a permanent misconfiguration.
func retryableDial(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ENOENT) ||
		errors.Is(err, os.ErrNotExist)
}

const (
	magic = "GRPW"
	// version 2 added run cancellation to the protocol: the abort command
	// frame (coordinator → worker, "discard the run and exit") and the
	// deadline field of the setup frame (see internal/engine's wire layer).
	// A version-1 worker would ignore both and keep computing a cancelled
	// run, so mismatched binaries are rejected at the handshake.
	version = 2
	// maxFrame caps a single frame: fragments of very large graphs dominate
	// frame sizes; 1 GiB is far beyond anything this repo generates while
	// still bounding a corrupted length prefix.
	maxFrame = 1 << 30
)

// Listener accepts worker connections for one distributed run.
type Listener struct {
	ln net.Listener
}

// NewListener starts listening on network ("tcp" or "unix") and addr.
// Use Addr to discover the bound address when addr requests an ephemeral
// port (":0").
func NewListener(network, addr string) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s %s: %w", network, addr, err)
	}
	return &Listener{ln: ln}, nil
}

// Addr returns the listener's bound address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Close stops accepting workers.
func (l *Listener) Close() error { return l.ln.Close() }

// AcceptWorkers blocks until n workers have dialed and completed the
// handshake (or timeout elapses), then returns the connected coordinator
// transport. The listener stays open and can accept another round.
func (l *Listener) AcceptWorkers(n int, timeout time.Duration) (*Coordinator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: need a positive worker count, got %d", n)
	}
	deadline := time.Now().Add(timeout)
	c := &Coordinator{
		n:     n,
		conns: make([]*conn, n),
		inbox: make(chan mpi.Envelope, 4*n+16),
		done:  make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		for {
			if d, ok := l.ln.(interface{ SetDeadline(time.Time) error }); ok {
				d.SetDeadline(deadline)
			}
			nc, err := l.ln.Accept()
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("transport: accepting worker %d of %d: %w", i, n, err)
			}
			cn := newConn(nc)
			if err := handshakeCoordinator(cn, i, n, deadline); err != nil {
				// A stray connection (port scanner, wrong client) must not
				// abort the workers already accepted: drop it and keep the
				// slot open until the deadline.
				nc.Close()
				if time.Now().After(deadline) {
					c.Close()
					return nil, fmt.Errorf("transport: worker %d handshake: %w", i, err)
				}
				continue
			}
			c.conns[i] = cn
			break
		}
	}
	if d, ok := l.ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(time.Time{})
	}
	for i, cn := range c.conns {
		c.wg.Add(1)
		go c.reader(i, cn)
	}
	return c, nil
}

// Listen is NewListener + AcceptWorkers for callers with a fixed address.
func Listen(network, addr string, n int, timeout time.Duration) (*Coordinator, *Listener, error) {
	l, err := NewListener(network, addr)
	if err != nil {
		return nil, nil, err
	}
	c, err := l.AcceptWorkers(n, timeout)
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	return c, l, nil
}

// Coordinator is the coordinator's side of the socket transport: an
// mpi.Transport whose workers live in other processes. A Coordinator is
// single-use per engine run; Close it when the run finishes.
type Coordinator struct {
	n     int
	conns []*conn
	inbox chan mpi.Envelope

	msgs  atomic.Int64
	bytes atomic.Int64

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

var _ mpi.Transport = (*Coordinator)(nil)

// Workers returns the number of connected worker processes.
func (c *Coordinator) Workers() int { return c.n }

// Wire reports that payloads cross a process boundary.
func (c *Coordinator) Wire() bool { return true }

// Send writes e's frame to worker e.To and meters e.Size. A failed write —
// socket error or a frame over the size limit — closes that worker's link,
// so the reader surfaces the failure on the next Recv, which is where the
// engine handles faults; Send itself stays error-free for the hot path.
func (c *Coordinator) Send(e mpi.Envelope) {
	if e.To < 0 || e.To >= c.n {
		panic(fmt.Sprintf("transport: send to unknown worker %d", e.To))
	}
	if e.Size > 0 {
		c.msgs.Add(1)
		c.bytes.Add(int64(e.Size))
	}
	if err := c.conns[e.To].writeFrame(e.Step, e.Size, e.Frame); err != nil {
		c.conns[e.To].nc.Close()
	}
}

// Recv blocks until any worker delivers a frame (party must be
// mpi.Coordinator; workers hold their own WorkerConn in their own process)
// or ctx is done, in which case the engine is abandoning the superstep —
// it will broadcast abort frames and return. A broken link yields an
// Envelope with a nil Frame and the error in Payload.
func (c *Coordinator) Recv(ctx context.Context, party int) (mpi.Envelope, error) {
	if party != mpi.Coordinator {
		panic(fmt.Sprintf("transport: coordinator cannot receive for party %d", party))
	}
	done := ctx.Done()
	if done == nil {
		env := <-c.inbox
		if env.Size > 0 {
			c.msgs.Add(1)
			c.bytes.Add(int64(env.Size))
		}
		return env, nil
	}
	select {
	case env := <-c.inbox:
		if env.Size > 0 {
			c.msgs.Add(1)
			c.bytes.Add(int64(env.Size))
		}
		return env, nil
	case <-done:
		return mpi.Envelope{}, ctx.Err()
	}
}

// Messages returns the number of data messages metered so far.
func (c *Coordinator) Messages() int64 { return c.msgs.Load() }

// Bytes returns the number of data bytes metered so far.
func (c *Coordinator) Bytes() int64 { return c.bytes.Load() }

// AddTraffic meters communication that bypasses Send, e.g. the d-hop
// replication charged when fragments were expanded.
func (c *Coordinator) AddTraffic(msgs, bytes int64) {
	c.msgs.Add(msgs)
	c.bytes.Add(bytes)
}

// Close tears the links down and waits for the readers to drain.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		for _, cn := range c.conns {
			if cn != nil {
				cn.nc.Close()
			}
		}
	})
	c.wg.Wait()
	return nil
}

// reader pumps one worker's frames into the shared inbox until the link
// breaks or the coordinator closes.
func (c *Coordinator) reader(w int, cn *conn) {
	defer c.wg.Done()
	for {
		step, size, payload, err := cn.readFrame()
		if err != nil {
			select {
			case <-c.done: // deliberate shutdown; not a fault
			default:
				select {
				case c.inbox <- mpi.Envelope{From: w, To: mpi.Coordinator, Payload: fmt.Errorf("worker %d link: %w", w, err)}:
				case <-c.done:
				}
			}
			return
		}
		select {
		case c.inbox <- mpi.Envelope{From: w, To: mpi.Coordinator, Step: step, Size: size, Frame: payload}:
		case <-c.done:
			return
		}
	}
}

// WorkerConn is a worker process's end of the transport; it implements
// engine.WorkerLink. Obtain one with Dial.
type WorkerConn struct {
	cn    *conn
	index int
	n     int
}

// Dial connects to a coordinator at addr, retrying "not up yet" failures
// (connection refused, unix socket not created) until timeout — worker
// processes often start before the coordinator listens — and completes the
// handshake. Permanent errors (bad network kind, unroutable address) fail
// immediately.
func Dial(network, addr string, timeout time.Duration) (*WorkerConn, error) {
	deadline := time.Now().Add(timeout)
	var nc net.Conn
	var err error
	for {
		d := net.Dialer{Deadline: deadline}
		nc, err = d.Dial(network, addr)
		if err == nil {
			break
		}
		if !retryableDial(err) || time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial %s %s: %w", network, addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	cn := newConn(nc)
	index, n, err := handshakeWorker(cn, deadline)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("transport: handshake with %s: %w", addr, err)
	}
	return &WorkerConn{cn: cn, index: index, n: n}, nil
}

// Index returns the worker index the coordinator assigned.
func (w *WorkerConn) Index() int { return w.index }

// N returns the total number of workers in the run.
func (w *WorkerConn) N() int { return w.n }

// Recv blocks until a frame from the coordinator arrives.
func (w *WorkerConn) Recv() (mpi.Envelope, error) {
	step, size, payload, err := w.cn.readFrame()
	if err != nil {
		return mpi.Envelope{}, err
	}
	return mpi.Envelope{From: mpi.Coordinator, To: w.index, Step: step, Size: size, Frame: payload}, nil
}

// Send delivers a frame to the coordinator.
func (w *WorkerConn) Send(e mpi.Envelope) error {
	return w.cn.writeFrame(e.Step, e.Size, e.Frame)
}

// Close closes the link.
func (w *WorkerConn) Close() error { return w.cn.nc.Close() }

// conn wraps a socket with buffered framing; writes are serialized by mu.
type conn struct {
	nc net.Conn
	br *bufio.Reader
	mu sync.Mutex
	bw *bufio.Writer
}

func newConn(nc net.Conn) *conn {
	return &conn{nc: nc, br: bufio.NewReaderSize(nc, 1<<16), bw: bufio.NewWriterSize(nc, 1<<16)}
}

func (c *conn) writeFrame(step, size int, payload []byte) error {
	if len(payload) > maxFrame-8 {
		return fmt.Errorf("transport: frame payload of %d bytes exceeds the %d limit", len(payload), maxFrame-8)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(8+len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(int32(step)))
	binary.BigEndian.PutUint32(hdr[8:], uint32(int32(size)))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *conn) readFrame() (step, size int, payload []byte, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[0:])
	if length < 8 || length > maxFrame {
		return 0, 0, nil, fmt.Errorf("transport: bad frame length %d", length)
	}
	step = int(int32(binary.BigEndian.Uint32(hdr[4:])))
	size = int(int32(binary.BigEndian.Uint32(hdr[8:])))
	if size < 0 {
		return 0, 0, nil, fmt.Errorf("transport: negative frame data size %d", size)
	}
	payload = make([]byte, length-8)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, 0, nil, err
	}
	return step, size, payload, nil
}

func handshakeCoordinator(cn *conn, index, n int, deadline time.Time) error {
	cn.nc.SetDeadline(deadline)
	defer cn.nc.SetDeadline(time.Time{})
	var hello [8]byte
	if _, err := io.ReadFull(cn.br, hello[:]); err != nil {
		return err
	}
	if string(hello[:4]) != magic {
		return fmt.Errorf("bad magic %q", hello[:4])
	}
	if v := binary.BigEndian.Uint32(hello[4:]); v != version {
		return fmt.Errorf("protocol version %d, want %d", v, version)
	}
	var resp [8]byte
	binary.BigEndian.PutUint32(resp[0:], uint32(index))
	binary.BigEndian.PutUint32(resp[4:], uint32(n))
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if _, err := cn.bw.Write(resp[:]); err != nil {
		return err
	}
	return cn.bw.Flush()
}

func handshakeWorker(cn *conn, deadline time.Time) (index, n int, err error) {
	cn.nc.SetDeadline(deadline)
	defer cn.nc.SetDeadline(time.Time{})
	var hello [8]byte
	copy(hello[:4], magic)
	binary.BigEndian.PutUint32(hello[4:], version)
	cn.mu.Lock()
	_, err = cn.bw.Write(hello[:])
	if err == nil {
		err = cn.bw.Flush()
	}
	cn.mu.Unlock()
	if err != nil {
		return 0, 0, err
	}
	var resp [8]byte
	if _, err := io.ReadFull(cn.br, resp[:]); err != nil {
		return 0, 0, err
	}
	index = int(binary.BigEndian.Uint32(resp[0:]))
	n = int(binary.BigEndian.Uint32(resp[4:]))
	if n <= 0 || index < 0 || index >= n {
		return 0, 0, fmt.Errorf("bad handshake response: index %d of %d", index, n)
	}
	return index, n, nil
}
