package transport

import (
	"errors"
	"net"
	"syscall"
	"testing"
	"time"
)

// fakeClock drives dialRetry deterministically: dial attempts fail with a
// retryable error until upAt, sleeps advance the clock instantly, and
// jitter is identity so the schedule is exactly the doubling sequence.
type fakeClock struct {
	t        time.Time
	upAt     time.Time
	sleeps   []time.Duration
	attempts int
}

func (f *fakeClock) dialer() *dialer {
	return &dialer{
		now:   func() time.Time { return f.t },
		sleep: func(d time.Duration) { f.sleeps = append(f.sleeps, d); f.t = f.t.Add(d) },
		dial: func(network, addr string, timeout time.Duration) (net.Conn, error) {
			f.attempts++
			if !f.t.Before(f.upAt) {
				c, s := net.Pipe()
				s.Close()
				return c, nil
			}
			return nil, syscall.ECONNREFUSED
		},
		jitter: func(d time.Duration) time.Duration { return d },
	}
}

func TestDialBackoffSchedule(t *testing.T) {
	f := &fakeClock{t: time.Unix(0, 0), upAt: time.Unix(0, 0).Add(5 * time.Second)}
	nc, _, err := f.dialer().dialRetry("tcp", "fake", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	nc.Close()
	// 25ms, 50ms, ... doubling and capping at 1s; the clock crosses 5s
	// after 25+50+100+200+400+800+1000+1000+1000+1000 = 5575ms, so the
	// 11th attempt connects.
	want := []time.Duration{
		25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond,
		time.Second, time.Second, time.Second, time.Second,
	}
	if len(f.sleeps) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(f.sleeps), f.sleeps, len(want))
	}
	for i, d := range want {
		if f.sleeps[i] != d {
			t.Fatalf("sleep %d was %v, want %v (schedule %v)", i, f.sleeps[i], d, f.sleeps)
		}
	}
	if f.attempts != len(want)+1 {
		t.Fatalf("%d dial attempts, want %d", f.attempts, len(want)+1)
	}
}

func TestDialBackoffRespectsDeadline(t *testing.T) {
	// Coordinator never comes up: the retry loop must stop at the timeout
	// window and never sleep past the deadline.
	f := &fakeClock{t: time.Unix(0, 0), upAt: time.Unix(0, 0).Add(time.Hour)}
	start := f.t
	_, _, err := f.dialer().dialRetry("tcp", "fake", 3*time.Second)
	if err == nil {
		t.Fatal("dial succeeded with no coordinator")
	}
	if elapsed := f.t.Sub(start); elapsed > 3*time.Second {
		t.Fatalf("retry loop overshot the %v window by %v", 3*time.Second, elapsed-3*time.Second)
	}
	for i, d := range f.sleeps {
		if d > time.Second {
			t.Fatalf("sleep %d was %v, above the cap", i, d)
		}
	}
}

func TestDialBackoffPermanentErrorFailsFast(t *testing.T) {
	perm := errors.New("no such host")
	d := &dialer{
		now:   func() time.Time { return time.Unix(0, 0) },
		sleep: func(time.Duration) { panic("slept on a permanent error") },
		dial: func(network, addr string, timeout time.Duration) (net.Conn, error) {
			return nil, perm
		},
		jitter: func(d time.Duration) time.Duration { return d },
	}
	_, _, err := d.dialRetry("tcp", "fake", time.Minute)
	if !errors.Is(err, perm) {
		t.Fatalf("got %v, want wrapped permanent error", err)
	}
}

func TestStdJitterRange(t *testing.T) {
	d := stdDialer()
	for i := 0; i < 100; i++ {
		j := d.jitter(time.Second)
		if j < 500*time.Millisecond || j >= time.Second {
			t.Fatalf("jitter(%v) = %v outside [d/2, d)", time.Second, j)
		}
	}
}
