package transport_test

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/queries"
	"grape/internal/seq"
	"grape/internal/transport"
)

// killerTransport wraps the socket coordinator and SIGKILLs a real worker
// process the first time a command frame for superstep >= step crosses it —
// a genuine mid-fixpoint crash, not a simulated one. Reassign is promoted
// from the embedded Coordinator, so the engine's recovery path works
// unchanged through the wrapper.
type killerTransport struct {
	*transport.Coordinator
	step int
	once sync.Once
	kill func()
}

func (k *killerTransport) Send(e mpi.Envelope) {
	if e.Step >= k.step {
		k.once.Do(k.kill)
	}
	k.Coordinator.Send(e)
}

func buildWorkerBin(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "grape-worker")
	build := exec.Command("go", "build", "-o", bin, "grape/cmd/grape-worker")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building grape-worker: %v\n%s", err, out)
	}
	return bin
}

// spawnFleet starts workers grape-worker processes against a fresh listener
// and returns the coordinator plus a kill func for one of the processes.
func spawnFleet(t *testing.T, bin string, workers int) (*transport.Coordinator, func()) {
	t.Helper()
	l, err := transport.NewListener("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	procs := make([]*exec.Cmd, workers)
	for i := 0; i < workers; i++ {
		cmd := exec.Command(bin, "-connect", l.Addr().String(), "-quiet")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting worker %d: %v", i, err)
		}
		procs[i] = cmd
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	}
	tr, err := l.AcceptWorkers(workers, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	victim := procs[0]
	return tr, func() { victim.Process.Kill() }
}

// TestKillWorkerMidFixpoint SIGKILLs one of four real grape-worker OS
// processes in the middle of the fixpoint, for every query class, and
// asserts the run still returns the exact failure-free answer (diffed
// against the in-process bus run), with the recovery recorded in stats.
func TestKillWorkerMidFixpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns processes")
	}
	bin := buildWorkerBin(t)
	const workers = 4

	ssspG := gen.RoadGrid(24, 24, 1)
	ccG := gen.PreferentialAttachment(800, 3, 2)
	simG := gen.Random(150, 450, 21)
	simLabels := []string{"a", "b", "c"}
	for i, v := range simG.SortedVertices() {
		simG.AddVertex(v, simLabels[i%len(simLabels)])
	}
	simP := graph.New()
	simP.AddVertex(0, "a")
	simP.AddVertex(1, "b")
	simP.AddEdge(0, 1, 1)
	simP.AddEdge(1, 0, 1)
	subG := gen.Random(80, 240, 3)
	subLabels := []string{"x", "y"}
	for i, v := range subG.SortedVertices() {
		subG.AddVertex(v, subLabels[i%len(subLabels)])
	}
	subP := graph.New()
	subP.AddVertex(0, "x")
	subP.AddVertex(1, "y")
	subP.AddEdge(0, 1, 1)
	kwG := gen.PreferentialAttachment(400, 3, 5)
	gen.AttachKeywords(kwG, []string{"db", "graph", "ml"}, 2, 0.15, 31)
	kwQ := queries.KeywordQuery{Keywords: []string{"db", "graph"}, Bound: 12, UseIndex: true}
	cfG := gen.Ratings(gen.RatingsConfig{Users: 60, Items: 15, RatingsPerUser: 6, Factors: 4, Noise: 0.1, Seed: 5})
	cfCfg := seq.DefaultCFConfig()
	cfCfg.Epochs = 4
	triG := gen.Random(120, 480, 7)

	cases := []struct {
		name string
		run  func(opts engine.Options) (any, *metrics.Stats, error)
	}{
		{"sssp", func(opts engine.Options) (any, *metrics.Stats, error) {
			return anyRun(engine.Run(context.Background(), ssspG, queries.SSSP{}, queries.SSSPQuery{Source: 0}, opts))
		}},
		{"cc", func(opts engine.Options) (any, *metrics.Stats, error) {
			return anyRun(engine.Run(context.Background(), ccG, queries.CC{}, queries.CCQuery{}, opts))
		}},
		{"sim", func(opts engine.Options) (any, *metrics.Stats, error) {
			return anyRun(engine.Run(context.Background(), simG, queries.Sim{}, queries.SimQuery{Pattern: simP}, opts))
		}},
		{"subiso", func(opts engine.Options) (any, *metrics.Stats, error) {
			return anyRun(queries.RunSubIso(context.Background(), subG, queries.SubIsoQuery{Pattern: subP}, opts))
		}},
		{"keyword", func(opts engine.Options) (any, *metrics.Stats, error) {
			return anyRun(engine.Run(context.Background(), kwG, queries.Keyword{}, kwQ, opts))
		}},
		{"cf", func(opts engine.Options) (any, *metrics.Stats, error) {
			return anyRun(engine.Run(context.Background(), cfG, queries.CF{}, queries.CFQuery{Cfg: cfCfg}, opts))
		}},
		{"tricount", func(opts engine.Options) (any, *metrics.Stats, error) {
			return anyRun(queries.RunTriCount(context.Background(), triG, opts))
		}},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cleanRes, clean, err := c.run(engine.Options{Workers: workers})
			if err != nil {
				t.Fatalf("bus reference run: %v", err)
			}
			// Strike mid-fixpoint when the run has multiple supersteps,
			// during PEval when it converges in one.
			killStep := 2
			if clean.Supersteps < 2 {
				killStep = 1
			}
			tr, kill := spawnFleet(t, bin, workers)
			res, stats, err := c.run(engine.Options{
				Workers:   workers,
				Transport: &killerTransport{Coordinator: tr, step: killStep, kill: kill},
				Recover:   true,
			})
			if err != nil {
				t.Fatalf("run with a killed worker: %v", err)
			}
			if !reflect.DeepEqual(cleanRes, res) {
				t.Fatalf("result differs from the failure-free run:\nclean: %v\ngot:   %v", cleanRes, res)
			}
			if stats.Supersteps != clean.Supersteps {
				t.Fatalf("supersteps %d, failure-free run took %d", stats.Supersteps, clean.Supersteps)
			}
			if !reflect.DeepEqual(stats.WorkPerStep, clean.WorkPerStep) {
				t.Fatalf("work profile differs:\nclean: %v\ngot:   %v", clean.WorkPerStep, stats.WorkPerStep)
			}
			if len(stats.Recoveries) == 0 {
				t.Fatal("a worker was SIGKILLed but stats.Recoveries is empty")
			}
		})
	}
}

func anyRun[R any](res R, stats *metrics.Stats, err error) (any, *metrics.Stats, error) {
	return res, stats, err
}

// TestKillWorkerBytesMatchCleanWire compares a killed-worker wire run
// against a failure-free wire run of the same query: the recovery machinery
// must not change the measured traffic — the dropped command and the
// replayed reply take over exactly the metering slots of their failure-free
// counterparts.
func TestKillWorkerBytesMatchCleanWire(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns processes")
	}
	bin := buildWorkerBin(t)
	const workers = 4
	g := gen.RoadGrid(24, 24, 1)
	run := func(tr *transport.Coordinator, kill func()) (map[graph.ID]float64, *metrics.Stats, error) {
		var mtr mpi.Transport = tr
		if kill != nil {
			mtr = &killerTransport{Coordinator: tr, step: 2, kill: kill}
		}
		return engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0},
			engine.Options{Workers: workers, Transport: mtr, Recover: true})
	}
	trClean, _ := spawnFleet(t, bin, workers)
	cleanRes, clean, err := run(trClean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Recoveries) != 0 {
		t.Fatalf("failure-free run recorded recoveries: %+v", clean.Recoveries)
	}
	trKill, kill := spawnFleet(t, bin, workers)
	res, stats, err := run(trKill, kill)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cleanRes, res) {
		t.Fatal("result differs from the failure-free wire run")
	}
	if stats.Bytes != clean.Bytes || stats.Messages != clean.Messages {
		t.Fatalf("traffic %d msgs / %d bytes, failure-free wire run %d / %d",
			stats.Messages, stats.Bytes, clean.Messages, clean.Bytes)
	}
	if !reflect.DeepEqual(stats.BytesPerStep, clean.BytesPerStep) {
		t.Fatalf("per-step traffic differs:\nclean: %v\ngot:   %v", clean.BytesPerStep, stats.BytesPerStep)
	}
	if len(stats.Recoveries) == 0 {
		t.Fatal("a worker was SIGKILLed but stats.Recoveries is empty")
	}
}

// TestLivenessDetectsSilentWorker handshakes a fake worker that then goes
// completely silent — no frames, no pong answers. The coordinator's pinger
// must declare it dead within the liveness window and surface a classified
// worker-fatal envelope, instead of blocking a barrier forever.
func TestLivenessDetectsSilentWorker(t *testing.T) {
	l, err := transport.NewListener("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type result struct {
		c   *transport.Coordinator
		err error
	}
	done := make(chan result, 1)
	go func() {
		c, err := l.AcceptWorkers(1, 5*time.Second, transport.WithLiveness(50*time.Millisecond, 200*time.Millisecond))
		done <- result{c, err}
	}()
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Handshake by hand: magic + version, then read the 16-byte response —
	// and never speak again.
	var hello [8]byte
	copy(hello[:4], "GRPW")
	binary.BigEndian.PutUint32(hello[4:], 3)
	if _, err := nc.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	var resp [16]byte
	if _, err := io.ReadFull(nc, resp[:]); err != nil {
		t.Fatal(err)
	}
	if w := binary.BigEndian.Uint32(resp[8:]); w != 200 {
		t.Fatalf("handshake advertised a %dms liveness window, want 200", w)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	env, err := r.c.Recv(ctx, mpi.Coordinator)
	if err != nil {
		t.Fatalf("liveness never fired: %v", err)
	}
	perr, ok := env.Payload.(error)
	if !ok || env.Frame != nil {
		t.Fatalf("expected a fatal envelope, got %+v", env)
	}
	if w, ok := mpi.WorkerFatalOf(perr); !ok || w != 0 {
		t.Fatalf("silence not classified worker-fatal for worker 0: %v", perr)
	}
}

// TestWorkerDeadlineUnblocksOnDeadCoordinator: a worker whose coordinator
// vanishes mid-run must unblock via its read deadline with a classified
// run-fatal error, not hang forever.
func TestWorkerDeadlineUnblocksOnDeadCoordinator(t *testing.T) {
	l, err := transport.NewListener("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type dialResult struct {
		w   *transport.WorkerConn
		err error
	}
	dialed := make(chan dialResult, 1)
	go func() {
		w, err := transport.Dial("tcp", l.Addr().String(), 5*time.Second)
		dialed <- dialResult{w, err}
	}()
	tr, err := l.AcceptWorkers(1, 5*time.Second, transport.WithLiveness(50*time.Millisecond, 300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	d := <-dialed
	if d.err != nil {
		t.Fatal(d.err)
	}
	defer d.w.Close()
	// Let one ping flow so the worker arms its read deadline, then kill the
	// coordinator outright.
	time.Sleep(100 * time.Millisecond)
	tr.Close()
	start := time.Now()
	for {
		_, err = d.w.Recv()
		if err != nil {
			break
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("worker took %v to notice the dead coordinator", elapsed)
	}
	var rf *mpi.RunFatalError
	if !errors.As(err, &rf) {
		t.Fatalf("worker error not classified run-fatal: %v", err)
	}
}
