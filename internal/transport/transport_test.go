package transport

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := newConn(a), newConn(b)
	payload := bytes.Repeat([]byte{0xab, 0x01}, 1000)
	go func() {
		if err := ca.writeFrame(3, 7, 42, payload); err != nil {
			t.Error(err)
		}
	}()
	frag, step, size, got, err := cb.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if frag != 3 || step != 7 || size != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("frame mangled: frag %d step %d size %d len %d", frag, step, size, len(got))
	}
}

func TestFrameRejectsBadLength(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		// 4-byte length claiming 2 GiB
		a.Write([]byte{0x80, 0x00, 0x00, 0x00, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	}()
	if _, _, _, _, err := newConn(b).readFrame(); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestFrameRejectsInconsistentSize: the metered data size can never exceed
// the payload the frame actually carries.
func TestFrameRejectsInconsistentSize(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		// length = 12 (header only, empty payload) but size claims 100 bytes
		a.Write([]byte{0x00, 0x00, 0x00, 0x0c, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 100})
	}()
	if _, _, _, _, err := newConn(b).readFrame(); err == nil {
		t.Fatal("frame with data size exceeding payload accepted")
	}
}

// TestFrameRejectsTruncatedHeader: a length prefix below the fixed header
// size must error out, not underflow into a huge read.
func TestFrameRejectsTruncatedHeader(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		a.Write([]byte{0x00, 0x00, 0x00, 0x04, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	}()
	if _, _, _, _, err := newConn(b).readFrame(); err == nil {
		t.Fatal("truncated frame header accepted")
	}
}

// TestHandshakeSurvivesBadMagic: a stray connection (wrong magic) must be
// dropped without aborting the accept round — a later legitimate worker
// still gets the slot.
func TestHandshakeSurvivesBadMagic(t *testing.T) {
	l, err := NewListener("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type result struct {
		c   *Coordinator
		err error
	}
	done := make(chan result, 1)
	go func() {
		c, err := l.AcceptWorkers(1, 5*time.Second)
		done <- result{c, err}
	}()
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte("NOPE\x00\x00\x00\x01"))
	w, err := Dial("tcp", l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("legitimate worker rejected after stray connection: %v", err)
	}
	defer w.Close()
	r := <-done
	if r.err != nil {
		t.Fatalf("accept round failed: %v", r.err)
	}
	r.c.Close()
	if w.Index() != 0 || w.N() != 1 {
		t.Fatalf("worker got index %d of %d", w.Index(), w.N())
	}
}

func TestDialFailsFastOnPermanentError(t *testing.T) {
	start := time.Now()
	_, err := Dial("unixx", "/nonexistent", 10*time.Second)
	if err == nil {
		t.Fatal("bad network kind accepted")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("permanent dial error retried for %v", elapsed)
	}
}
