package transport_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/queries"
	"grape/internal/seq"
	"grape/internal/transport"
)

// TestDistributedSmoke is the distributed smoke job: SSSP and CC across 4
// real grape-worker OS processes over the socket transport, diffed against
// the sequential ground truth in internal/seq. CI runs it explicitly; it
// skips under -short because it builds the worker binary.
func TestDistributedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns processes")
	}
	bin := filepath.Join(t.TempDir(), "grape-worker")
	build := exec.Command("go", "build", "-o", bin, "grape/cmd/grape-worker")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building grape-worker: %v\n%s", err, out)
	}

	const workers = 4
	spawn := func(t *testing.T, addr string) {
		t.Helper()
		for i := 0; i < workers; i++ {
			cmd := exec.Command(bin, "-connect", addr, "-quiet")
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatalf("starting worker %d: %v", i, err)
			}
			proc := cmd
			t.Cleanup(func() { proc.Process.Kill(); proc.Wait() })
		}
	}
	listen := func(t *testing.T) (*transport.Coordinator, string) {
		t.Helper()
		l, err := transport.NewListener("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		addr := l.Addr().String()
		spawn(t, addr)
		tr, err := l.AcceptWorkers(workers, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr, addr
	}

	t.Run("sssp", func(t *testing.T) {
		g := gen.RoadGrid(48, 48, 1)
		tr, _ := listen(t)
		got, stats, err := engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0},
			engine.Options{Workers: workers, Transport: tr})
		if err != nil {
			t.Fatal(err)
		}
		if want := seq.Dijkstra(g, 0); !reflect.DeepEqual(got, want) {
			t.Fatalf("distributed SSSP differs from sequential Dijkstra (%d vs %d vertices)", len(got), len(want))
		}
		busRes, busStats, err := engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0},
			engine.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, busRes) {
			t.Fatal("distributed SSSP differs from the in-process bus result")
		}
		if stats.Supersteps != busStats.Supersteps {
			t.Fatalf("superstep counts differ: wire %d, bus %d", stats.Supersteps, busStats.Supersteps)
		}
	})

	t.Run("cc", func(t *testing.T) {
		g := gen.PreferentialAttachment(2000, 3, 7)
		for v := 5000; v < 5010; v++ { // a few extra components
			g.AddVertex(graph.ID(v), "")
		}
		tr, _ := listen(t)
		got, stats, err := engine.Run(context.Background(), g, queries.CC{}, queries.CCQuery{},
			engine.Options{Workers: workers, Transport: tr})
		if err != nil {
			t.Fatal(err)
		}
		if want := seq.Components(g); !reflect.DeepEqual(got, want) {
			t.Fatal("distributed CC differs from sequential union-find")
		}
		busRes, busStats, err := engine.Run(context.Background(), g, queries.CC{}, queries.CCQuery{},
			engine.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, busRes) {
			t.Fatal("distributed CC differs from the in-process bus result")
		}
		if stats.Supersteps != busStats.Supersteps {
			t.Fatalf("superstep counts differ: wire %d, bus %d", stats.Supersteps, busStats.Supersteps)
		}
	})
}
