package transport

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Dial's retry schedule: exponential backoff from backoffBase, doubling up
// to backoffCap, with jitter drawn uniformly from [d/2, d) so a fleet of
// worker processes started by the same script does not hammer the
// coordinator's accept queue in lockstep.
const (
	backoffBase = 25 * time.Millisecond
	backoffCap  = 1 * time.Second
)

// dialer carries the clock, sleeper, and socket factory so the backoff
// schedule is unit-testable with a fake clock; Dial uses the real ones.
type dialer struct {
	now    func() time.Time
	sleep  func(time.Duration)
	dial   func(network, addr string, timeout time.Duration) (net.Conn, error)
	jitter func(d time.Duration) time.Duration
}

var (
	stdJitterMu  sync.Mutex
	stdJitterRNG = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func stdDialer() *dialer {
	return &dialer{
		now:   time.Now,
		sleep: time.Sleep,
		dial: func(network, addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout(network, addr, timeout)
		},
		jitter: func(d time.Duration) time.Duration {
			stdJitterMu.Lock()
			defer stdJitterMu.Unlock()
			return d/2 + time.Duration(stdJitterRNG.Int63n(int64(d/2)))
		},
	}
}

// dialRetry dials until it connects, a permanent error occurs, or the
// timeout window closes. Only "coordinator not up yet" errors (see
// retryableDial) are retried; each retry waits a jittered, capped
// exponential backoff, truncated so the last sleep never overshoots the
// deadline. It returns the connection and the deadline for the handshake.
func (d *dialer) dialRetry(network, addr string, timeout time.Duration) (net.Conn, time.Time, error) {
	deadline := d.now().Add(timeout)
	wait := backoffBase
	for {
		remaining := deadline.Sub(d.now())
		if remaining <= 0 {
			return nil, time.Time{}, fmt.Errorf("transport: dial %s %s: coordinator did not come up within %v", network, addr, timeout)
		}
		nc, err := d.dial(network, addr, remaining)
		if err == nil {
			return nc, deadline, nil
		}
		if !retryableDial(err) {
			return nil, time.Time{}, fmt.Errorf("transport: dial %s %s: %w", network, addr, err)
		}
		sleep := d.jitter(wait)
		if left := deadline.Sub(d.now()); sleep > left {
			sleep = left
		}
		if sleep > 0 {
			d.sleep(sleep)
		}
		if wait < backoffCap {
			wait *= 2
			if wait > backoffCap {
				wait = backoffCap
			}
		}
	}
}
