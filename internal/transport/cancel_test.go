package transport_test

import (
	"context"
	"encoding/binary"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/transport"
)

// The wire twin of internal/engine's cancellation tests: a deliberately
// endless PIE program runs across real sockets with each worker served by
// engine.ServeWorker (the exact cmd/grape-worker code path), the coordinator
// context is cancelled during superstep k, and the test asserts the run
// fails with the context error, every worker observes the abort frame
// (ServeWorker returns engine.ErrAborted), no worker computes past it, and
// a subsequent run over the same layout is unaffected.

// spinQuery bounds the spinner: values grow by one per superstep until
// limit, so a huge limit is an effectively endless run.
type spinQuery struct{ limit int64 }

// spinner raises border values every superstep; see the engine-side stepper
// for the convergence argument. steps signals every PEval/IncEval
// activation so the test can cancel mid-run deterministically.
type spinner struct{ steps chan struct{} }

func (spinner) Name() string { return "cancel-spinner" }

func (spinner) Spec() engine.VarSpec[int64] {
	return engine.VarSpec[int64]{
		Default: 0,
		Agg: func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		},
		Eq: func(a, b int64) bool { return a == b },
	}
}

func (s spinner) signal() {
	select {
	case s.steps <- struct{}{}:
	default:
	}
}

func (s spinner) PEval(q spinQuery, ctx *engine.Context[int64]) error {
	s.signal()
	if ctx.Frag.IsInner(0) {
		for _, id := range ctx.Frag.Border() {
			ctx.Set(id, 1)
		}
	}
	return nil
}

func (s spinner) IncEval(q spinQuery, ctx *engine.Context[int64]) error {
	s.signal()
	var m int64
	for _, id := range ctx.Frag.Border() {
		if v := ctx.Get(id); v > m {
			m = v
		}
	}
	if m >= q.limit {
		return nil
	}
	for _, id := range ctx.Frag.Border() {
		ctx.Set(id, m+1)
	}
	ctx.AddWork(1)
	return nil
}

func (s spinner) Assemble(q spinQuery, ctxs []*engine.Context[int64]) (map[graph.ID]int64, error) {
	out := map[graph.ID]int64{}
	for _, ctx := range ctxs {
		ctx.Vars(func(id graph.ID, v int64) {
			if ctx.Frag.IsInner(id) {
				out[id] = v
			}
		})
	}
	return out, nil
}

type spinCodec struct{}

func (spinCodec) AppendVal(buf []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(buf, uint64(v))
}

func (spinCodec) DecodeVal(data []byte) (int64, int, error) {
	if len(data) < 8 {
		return 0, 0, errors.New("short int64")
	}
	return int64(binary.BigEndian.Uint64(data)), 8, nil
}

func (spinner) WireCodec() engine.Codec[int64] { return spinCodec{} }

func (spinner) EncodeQuery(q spinQuery) ([]byte, error) {
	return binary.BigEndian.AppendUint64(nil, uint64(q.limit)), nil
}

func (spinner) DecodeQuery(data []byte) (spinQuery, error) {
	if len(data) < 8 {
		return spinQuery{}, errors.New("short spin query")
	}
	return spinQuery{limit: int64(binary.BigEndian.Uint64(data))}, nil
}

// spinSteps is the side channel worker-side spinner instances signal on.
// The worker goroutines run in this test process (over real sockets), so
// the captured channel crosses the "process" boundary the way a log line
// would in production.
var spinSteps = make(chan struct{}, 65536)

func init() {
	engine.Register(engine.MakeEntry(engine.EntrySpec[spinQuery, int64, map[graph.ID]int64]{
		Prog:        spinner{steps: spinSteps},
		Description: "endless stepper for wire cancellation tests",
		QueryHelp:   "limit=<n>",
		Parse:       func(string) (spinQuery, error) { return spinQuery{limit: 1 << 40}, nil },
		Canonical:   func(spinQuery) string { return "" },
	}))
}

// startAbortableWorkers is startWorkers with the finish condition inverted
// for cancellation runs: every worker must exit with engine.ErrAborted.
func startAbortableWorkers(t *testing.T, n int) (*transport.Coordinator, func() []error) {
	t.Helper()
	l, err := transport.NewListener("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := transport.Dial("tcp", addr, 5*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			errs[i] = engine.ServeWorker(context.Background(), conn)
		}(i)
	}
	tr, err := l.AcceptWorkers(n, 10*time.Second)
	if err != nil {
		l.Close()
		t.Fatal(err)
	}
	return tr, func() []error {
		tr.Close()
		l.Close()
		wg.Wait()
		return errs
	}
}

func drainSpin() {
	for {
		select {
		case <-spinSteps:
		default:
			return
		}
	}
}

func TestWireCancelMidFixpoint(t *testing.T) {
	const n = 4
	g := graph.New()
	for i := 0; i < 64; i++ {
		g.AddEdge(graph.ID(i), graph.ID((i+1)%64), 1)
	}
	g.Freeze()
	layout, err := engine.BuildLayout(g, engine.Options{Workers: n})
	if err != nil {
		t.Fatal(err)
	}
	drainSpin()

	tr, finish := startAbortableWorkers(t, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := spinner{steps: spinSteps}

	runDone := make(chan error, 1)
	go func() {
		_, _, err := engine.RunOnLayout(ctx, layout, prog, spinQuery{limit: 1 << 40},
			engine.Options{Workers: n, Transport: tr, MaxSupersteps: 1 << 30})
		runDone <- err
	}()

	// Cancel during superstep k: wait for a few rounds of worker
	// activations (signalled from inside the worker serve loops), then pull
	// the plug.
	for i := 0; i < 16; i++ {
		select {
		case <-spinSteps:
		case <-time.After(10 * time.Second):
			t.Fatal("wire workers never started computing")
		}
	}
	cancel()
	var runErr error
	select {
	case runErr = <-runDone:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled wire run did not return")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", runErr)
	}

	// Every worker observed the abort frame and exited with ErrAborted —
	// not a link error, not a clean stop: the protocol told it the run was
	// cancelled.
	for i, err := range finish() {
		if !errors.Is(err, engine.ErrAborted) {
			t.Fatalf("worker %d: want engine.ErrAborted, got %v", i, err)
		}
	}
	// With all workers exited, no activation can arrive anymore: the
	// cancelled run stopped consuming worker CPU.
	drainSpin()
	time.Sleep(100 * time.Millisecond)
	if len(spinSteps) != 0 {
		t.Fatalf("%d worker activations after every worker exited", len(spinSteps))
	}

	// The same layout serves a fresh (bounded) run across both substrates,
	// and the answers agree — cancellation left nothing behind.
	busRes, _, err := engine.RunOnLayout(context.Background(), layout, prog, spinQuery{limit: 12}, engine.Options{Workers: n})
	if err != nil {
		t.Fatal(err)
	}
	tr2, finish2 := startWorkers(t, n)
	defer finish2()
	wireRes, _, err := engine.RunOnLayout(context.Background(), layout, prog, spinQuery{limit: 12},
		engine.Options{Workers: n, Transport: tr2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(busRes, wireRes) {
		t.Fatalf("post-cancellation runs differ between substrates:\nbus:  %v\nwire: %v", busRes, wireRes)
	}
}

// TestWireDeadlinePropagates runs the endless spinner under a short
// coordinator deadline and asserts the deadline — not a hang, not a link
// failure — ends the run on both sides of the socket.
func TestWireDeadlinePropagates(t *testing.T) {
	const n = 2
	g := graph.New()
	for i := 0; i < 32; i++ {
		g.AddEdge(graph.ID(i), graph.ID((i+1)%32), 1)
	}
	g.Freeze()
	layout, err := engine.BuildLayout(g, engine.Options{Workers: n})
	if err != nil {
		t.Fatal(err)
	}
	drainSpin()

	tr, finish := startAbortableWorkers(t, n)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, _, err = engine.RunOnLayout(ctx, layout, spinner{steps: spinSteps}, spinQuery{limit: 1 << 40},
		engine.Options{Workers: n, Transport: tr, MaxSupersteps: 1 << 30})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	// Each worker ends through whichever bound fires first: the
	// coordinator's abort frame (ErrAborted) or its own copy of the
	// propagated deadline from the setup frame (DeadlineExceeded). Either
	// way the deadline — not a hang, not a link failure — ended the run.
	for i, werr := range finish() {
		if !errors.Is(werr, engine.ErrAborted) && !errors.Is(werr, context.DeadlineExceeded) {
			t.Fatalf("worker %d: want ErrAborted or DeadlineExceeded, got %v", i, werr)
		}
	}
}
