package transport_test

import (
	"context"
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/queries"
	"grape/internal/seq"
	"grape/internal/transport"
)

// startWorkers brings up n in-process workers on real TCP sockets: each
// dials the coordinator in its own goroutine and serves via
// engine.ServeWorker, exactly the code path cmd/grape-worker runs. The
// returned finish func must be called after the run; it tears the transport
// down and fails the test if any worker exited uncleanly.
func startWorkers(t *testing.T, n int) (*transport.Coordinator, func()) {
	t.Helper()
	l, err := transport.NewListener("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := transport.Dial("tcp", addr, 5*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			errs[i] = engine.ServeWorker(context.Background(), conn)
		}(i)
	}
	tr, err := l.AcceptWorkers(n, 10*time.Second)
	if err != nil {
		l.Close()
		t.Fatal(err)
	}
	finish := func() {
		tr.Close()
		l.Close()
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}
	}
	return tr, finish
}

// runBoth executes run twice — on the in-process bus and over the socket
// transport with nWorkers separate worker loops — and returns both results
// with their stats.
func runBoth[R any](t *testing.T, nWorkers int, run func(opts engine.Options) (R, *metrics.Stats, error)) (busRes, wireRes R, busStats, wireStats *metrics.Stats) {
	t.Helper()
	busRes, busStats, err := run(engine.Options{Workers: nWorkers})
	if err != nil {
		t.Fatalf("bus run: %v", err)
	}
	tr, finish := startWorkers(t, nWorkers)
	defer finish()
	wireRes, wireStats, err = run(engine.Options{Workers: nWorkers, Transport: tr})
	if err != nil {
		t.Fatalf("wire run: %v", err)
	}
	return busRes, wireRes, busStats, wireStats
}

func checkParity[R any](t *testing.T, busRes, wireRes R, busStats, wireStats *metrics.Stats) {
	t.Helper()
	if !reflect.DeepEqual(busRes, wireRes) {
		t.Fatalf("results differ between bus and wire:\nbus:  %v\nwire: %v", busRes, wireRes)
	}
	if busStats.Supersteps != wireStats.Supersteps {
		t.Fatalf("superstep counts differ: bus %d, wire %d", busStats.Supersteps, wireStats.Supersteps)
	}
	if !reflect.DeepEqual(busStats.WorkPerStep, wireStats.WorkPerStep) {
		t.Fatalf("work profiles differ: bus %v, wire %v", busStats.WorkPerStep, wireStats.WorkPerStep)
	}
	if wireStats.Transport != "wire" {
		t.Fatalf("wire stats not marked: Transport = %q", wireStats.Transport)
	}
	if busStats.Transport != "" {
		t.Fatalf("bus stats marked as wire: Transport = %q", busStats.Transport)
	}
}

// TestWireMatchesBus runs every registered wire program over the socket
// transport and asserts results, superstep counts and work profiles are
// identical to the in-process bus — the engine's superstep schedule does not
// depend on the substrate.
func TestWireMatchesBus(t *testing.T) {
	t.Run("sssp", func(t *testing.T) {
		g := gen.RoadGrid(24, 24, 1)
		busRes, wireRes, b, w := runBoth(t, 4, func(opts engine.Options) (map[graph.ID]float64, *metrics.Stats, error) {
			return engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0}, opts)
		})
		checkParity(t, busRes, wireRes, b, w)
		want := seq.Dijkstra(g, 0)
		if !reflect.DeepEqual(busRes, want) {
			t.Fatalf("distances differ from sequential ground truth")
		}
	})
	t.Run("cc", func(t *testing.T) {
		g := gen.PreferentialAttachment(800, 3, 2)
		busRes, wireRes, b, w := runBoth(t, 4, func(opts engine.Options) (map[graph.ID]graph.ID, *metrics.Stats, error) {
			return engine.Run(context.Background(), g, queries.CC{}, queries.CCQuery{}, opts)
		})
		checkParity(t, busRes, wireRes, b, w)
		if want := seq.Components(g); !reflect.DeepEqual(busRes, want) {
			t.Fatalf("labels differ from sequential ground truth")
		}
	})
	t.Run("sim", func(t *testing.T) {
		g := gen.Random(150, 450, 21)
		labels := []string{"a", "b", "c"}
		for i, v := range g.SortedVertices() {
			g.AddVertex(v, labels[i%len(labels)])
		}
		p := graph.New()
		p.AddVertex(0, "a")
		p.AddVertex(1, "b")
		p.AddEdge(0, 1, 1)
		p.AddEdge(1, 0, 1)
		busRes, wireRes, b, w := runBoth(t, 4, func(opts engine.Options) (queries.SimResult, *metrics.Stats, error) {
			return engine.Run(context.Background(), g, queries.Sim{}, queries.SimQuery{Pattern: p}, opts)
		})
		checkParity(t, busRes, wireRes, b, w)
	})
	t.Run("subiso", func(t *testing.T) {
		g := gen.Random(80, 240, 3)
		labels := []string{"x", "y"}
		for i, v := range g.SortedVertices() {
			g.AddVertex(v, labels[i%len(labels)])
		}
		p := graph.New()
		p.AddVertex(0, "x")
		p.AddVertex(1, "y")
		p.AddEdge(0, 1, 1)
		busRes, wireRes, b, w := runBoth(t, 4, func(opts engine.Options) ([]seq.Match, *metrics.Stats, error) {
			return queries.RunSubIso(context.Background(), g, queries.SubIsoQuery{Pattern: p}, opts)
		})
		checkParity(t, busRes, wireRes, b, w)
	})
	t.Run("keyword", func(t *testing.T) {
		g := gen.PreferentialAttachment(400, 3, 5)
		gen.AttachKeywords(g, []string{"db", "graph", "ml"}, 2, 0.15, 31)
		q := queries.KeywordQuery{Keywords: []string{"db", "graph"}, Bound: 12, UseIndex: true}
		busRes, wireRes, b, w := runBoth(t, 4, func(opts engine.Options) ([]seq.KeywordMatch, *metrics.Stats, error) {
			return engine.Run(context.Background(), g, queries.Keyword{}, q, opts)
		})
		checkParity(t, busRes, wireRes, b, w)
	})
	t.Run("cf", func(t *testing.T) {
		g := gen.Ratings(gen.RatingsConfig{Users: 60, Items: 15, RatingsPerUser: 6, Factors: 4, Noise: 0.1, Seed: 5})
		cfg := seq.DefaultCFConfig()
		cfg.Epochs = 4
		busRes, wireRes, b, w := runBoth(t, 4, func(opts engine.Options) (queries.CFResult, *metrics.Stats, error) {
			return engine.Run(context.Background(), g, queries.CF{}, queries.CFQuery{Cfg: cfg}, opts)
		})
		checkParity(t, busRes, wireRes, b, w)
	})
	t.Run("tricount", func(t *testing.T) {
		g := gen.Random(120, 480, 7)
		busRes, wireRes, b, w := runBoth(t, 4, func(opts engine.Options) (queries.TriCountResult, *metrics.Stats, error) {
			return queries.RunTriCount(context.Background(), g, opts)
		})
		checkParity(t, busRes, wireRes, b, w)
		if want := queries.SeqTriangles(g); busRes.Total != want {
			t.Fatalf("triangle count %d differs from sequential %d", busRes.Total, want)
		}
	})
}

// recordingTransport wraps a Coordinator and logs every envelope that
// crosses it, so tests can audit the engine's byte metering against the
// frames themselves.
type recordingTransport struct {
	*transport.Coordinator
	mu   sync.Mutex
	sent []mpi.Envelope
	recv []mpi.Envelope
}

func (r *recordingTransport) Send(e mpi.Envelope) {
	r.mu.Lock()
	r.sent = append(r.sent, e)
	r.mu.Unlock()
	r.Coordinator.Send(e)
}

func (r *recordingTransport) Recv(ctx context.Context, party int) (mpi.Envelope, error) {
	e, err := r.Coordinator.Recv(ctx, party)
	if err != nil {
		return e, err
	}
	r.mu.Lock()
	r.recv = append(r.recv, e)
	r.mu.Unlock()
	return e, nil
}

// TestWireBytesAreEncodedLengths audits the satellite requirement that byte
// counters under a wire transport come from actual encoded lengths: every
// data envelope's Size must equal the re-encoded length of its decoded
// update batch, and the run's total must be exactly the sum of those sizes —
// no VarSpec.Size estimates anywhere.
func TestWireBytesAreEncodedLengths(t *testing.T) {
	g := gen.RoadGrid(16, 16, 1)
	inner, finish := startWorkers(t, 4)
	defer finish()
	rec := &recordingTransport{Coordinator: inner}
	res, stats, err := engine.Run(context.Background(), g, queries.SSSP{}, queries.SSSPQuery{Source: 0}, engine.Options{Workers: 4, Transport: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != g.NumVertices() {
		t.Fatalf("unexpected result size %d", len(res))
	}
	codec := queries.SSSP{}.WireCodec()
	var total int64
	// Coordinator → worker: IncEval command frames carry kind byte, update
	// batch, dirty list; Size must equal the batch's encoded length.
	for _, e := range rec.sent {
		if e.Size == 0 {
			continue
		}
		total += int64(e.Size)
		ups, used, err := engine.DecodeUpdates(codec, e.Frame[1:])
		if err != nil {
			t.Fatalf("decoding sent frame: %v", err)
		}
		if used != e.Size {
			t.Fatalf("sent envelope Size %d != encoded update length %d", e.Size, used)
		}
		if got := len(engine.AppendUpdates(codec, nil, ups)); got != e.Size {
			t.Fatalf("re-encoded length %d != envelope Size %d", got, e.Size)
		}
	}
	// Worker → coordinator: reply frames start with the change batch; the
	// final 4 envelopes are the assemble-phase partial results, whose Size
	// is the blob length.
	if len(rec.recv) < 4 {
		t.Fatalf("expected at least 4 received envelopes, got %d", len(rec.recv))
	}
	replies, partials := rec.recv[:len(rec.recv)-4], rec.recv[len(rec.recv)-4:]
	for _, e := range replies {
		if e.Size == 0 {
			continue
		}
		total += int64(e.Size)
		ups, used, err := engine.DecodeUpdates(codec, e.Frame)
		if err != nil {
			t.Fatalf("decoding received frame: %v", err)
		}
		if used != e.Size {
			t.Fatalf("received envelope Size %d != encoded change length %d", e.Size, used)
		}
		if got := len(engine.AppendUpdates(codec, nil, ups)); got != e.Size {
			t.Fatalf("re-encoded length %d != envelope Size %d", got, e.Size)
		}
	}
	for _, e := range partials {
		total += int64(e.Size)
		blobLen, n := binary.Uvarint(e.Frame[1:])
		if e.Frame[0] != 1 || n <= 0 || int(blobLen) != e.Size || 1+n+int(blobLen) != len(e.Frame) {
			t.Fatalf("partial frame Size %d does not match its blob length %d", e.Size, blobLen)
		}
	}
	if stats.Bytes != total {
		t.Fatalf("stats.Bytes = %d, sum of encoded envelope sizes = %d", stats.Bytes, total)
	}
}

// TestWorkerErrorPropagates ships a PEval failure (a pattern beyond Sim's
// 64-vertex limit) across the wire and expects the coordinator to fail the
// run with the worker's message.
func TestWorkerErrorPropagates(t *testing.T) {
	g := gen.Random(60, 120, 1)
	p := graph.New()
	for i := 0; i < 65; i++ {
		p.AddVertex(graph.ID(i), "a")
	}
	tr, finish := startWorkers(t, 2)
	defer finish()
	_, _, err := engine.Run(context.Background(), g, queries.Sim{}, queries.SimQuery{Pattern: p}, engine.Options{Workers: 2, Transport: tr})
	if err == nil || !strings.Contains(err.Error(), "max 64") {
		t.Fatalf("expected the worker's PEval error, got: %v", err)
	}
}

// fakeWire pretends to be a wire transport so the engine's WireProgram check
// runs; it must never be reached.
type fakeWire struct{ n int }

func (f fakeWire) Workers() int                                    { return f.n }
func (f fakeWire) Send(mpi.Envelope)                               { panic("unreachable") }
func (f fakeWire) Recv(context.Context, int) (mpi.Envelope, error) { panic("unreachable") }
func (f fakeWire) Messages() int64                                 { return 0 }
func (f fakeWire) Bytes() int64                                    { return 0 }
func (f fakeWire) AddTraffic(_, _ int64)                           {}
func (f fakeWire) Wire() bool                                      { return true }

// plainProgram is a PIE program without a wire codec.
type plainProgram struct{}

func (plainProgram) Name() string                                                    { return "plain" }
func (plainProgram) Spec() engine.VarSpec[float64]                                   { return queries.SSSP{}.Spec() }
func (plainProgram) PEval(q queries.SSSPQuery, ctx *engine.Context[float64]) error   { return nil }
func (plainProgram) IncEval(q queries.SSSPQuery, ctx *engine.Context[float64]) error { return nil }
func (plainProgram) Assemble(q queries.SSSPQuery, ctxs []*engine.Context[float64]) (map[graph.ID]float64, error) {
	return nil, nil
}

func TestNoWireSupportFailsFast(t *testing.T) {
	g := gen.RoadGrid(4, 4, 1)
	_, _, err := engine.Run(context.Background(), g, plainProgram{}, queries.SSSPQuery{Source: 0}, engine.Options{Workers: 2, Transport: fakeWire{n: 2}})
	if !errors.Is(err, engine.ErrNoWireSupport) {
		t.Fatalf("expected ErrNoWireSupport, got: %v", err)
	}
}
