package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"grape/internal/gen"
	"grape/internal/server"
	"grape/internal/server/servebench"
)

// BenchmarkServeThroughput measures end-to-end serving throughput over the
// real HTTP stack: N concurrent clients issuing sssp queries against one
// resident road graph, with the result cache on (clients rotate through a
// handful of sources, so most queries hit) and off (NoCache forces a full
// engine run per request). ns/op is per served query; the qps metric is the
// aggregate rate. grape-bench -json records the same matrix — driven by the
// shared internal/server/servebench package — in BENCH_PR*.json.
func BenchmarkServeThroughput(b *testing.B) {
	road := gen.RoadGrid(48, 48, 1)
	for _, clients := range []int{1, 8, 64} {
		for _, cached := range []bool{true, false} {
			name := fmt.Sprintf("c%d/cache=%v", clients, cached)
			b.Run(name, func(b *testing.B) {
				s := server.New(servebench.ServerConfig())
				if err := s.AddGraph("road", road); err != nil {
					b.Fatal(err)
				}
				ts := httptest.NewServer(s.Handler())
				defer ts.Close()
				if _, err := servebench.Warm(context.Background(), ts.URL, cached); err != nil {
					b.Fatal(err)
				}
				servebench.Drive(context.Background(), b, ts.URL, clients, cached)
			})
		}
	}
}
