package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"grape/internal/engine"
	"grape/internal/metrics"
	"grape/internal/store"
)

// Crash recovery and journal compaction for servers backed by Config.Durable.
//
// The epoch invariant: a graph's epoch starts at 1 (or at the snapshot's
// epoch), and each successfully applied mutation batch bumps it by exactly
// one; rejected batches do not. The journal records every batch with the
// epoch it was applied against (Record.PreEpoch), and replay pushes each
// record through the same applyBatchLocked as the live path — so a recovered
// graph lands on exactly the pre-crash epoch, with the same session state
// and bit-identical answers. Replay checks PreEpoch record by record and
// refuses to serve a divergent recovery rather than guessing.
//
// One documented caveat: a live batch whose application was torn by
// cancellation mid-update (epoch bumped, session dropped) replays to
// completion on restart — recovery lands on the batch's full effect, a
// superset of the torn live state. The journaled write-ahead contract makes
// this the safe direction: nothing journaled is ever lost.

// RecoveryInfo reports what recovering one graph cost (RecoverAll).
type RecoveryInfo struct {
	Graph         string
	SnapshotEpoch uint64  // epoch of the snapshot recovery started from
	Epoch         uint64  // epoch after journal replay (= pre-crash epoch)
	Replayed      int     // journal records replayed
	Mapped        bool    // snapshot served zero-copy off an mmap
	DurationMs    float64 // snapshot load + replay wall time
	Damage        string  // non-empty if a broken journal tail was truncated
}

// RecoverAll recovers every graph with durable state, making each resident
// at its pre-crash epoch. Call it once at startup, before serving traffic.
// Graphs without durable state are skipped (they load lazily, or via
// AddGraph). Requires Config.Durable.
func (s *Server) RecoverAll(ctx context.Context) ([]RecoveryInfo, error) {
	if s.cfg.Durable == nil {
		return nil, fmt.Errorf("server: RecoverAll without Config.Durable")
	}
	names, err := s.cfg.Durable.List()
	if err != nil {
		return nil, err
	}
	var infos []RecoveryInfo
	for _, name := range names {
		rg, err := s.recoverGraph(ctx, name)
		if err != nil {
			if errors.Is(err, store.ErrNoSnapshot) {
				continue // directory exists but holds no usable state
			}
			return infos, fmt.Errorf("server: recovering %q: %w", name, err)
		}
		rg.mu.RLock()
		epoch := rg.epoch
		rg.mu.RUnlock()
		st := rg.ds.Stats()
		info := RecoveryInfo{
			Graph:         name,
			SnapshotEpoch: st.SnapshotEpoch,
			Epoch:         epoch,
			Replayed:      rg.replayed,
			Mapped:        st.Mapped,
			DurationMs:    rg.recoveryMs,
			Damage:        rg.damage,
		}
		infos = append(infos, info)
		if lg := s.cfg.Logger; lg != nil {
			lg.Info("graph recovered", "graph", name, "epoch", epoch,
				"snapshot_epoch", st.SnapshotEpoch, "replayed", rg.replayed,
				"mapped", st.Mapped, "ms", rg.recoveryMs, "damage", rg.damage)
		}
	}
	return infos, nil
}

// recoverGraph opens name's durable state, replays its journal through the
// session layer, and publishes the graph resident at its pre-crash epoch.
// Returns store.ErrNoSnapshot (wrapped) when name has no durable state.
func (s *Server) recoverGraph(ctx context.Context, name string) (*residentGraph, error) {
	start := time.Now()
	gs, err := s.cfg.Durable.Graph(name)
	if err != nil {
		return nil, err
	}
	rec, err := gs.Open()
	if err != nil {
		gs.Close()
		return nil, err
	}

	s.mu.Lock()
	rg := s.newResident(name, rec.Graph)
	s.mu.Unlock()
	rg.epoch = rec.SnapshotEpoch
	rg.ds = gs
	if rec.Damage != nil {
		rg.damage = rec.Damage.Reason
		if lg := s.cfg.Logger; lg != nil {
			lg.Warn("journal tail truncated", "graph", name, "reason", rec.Damage.Reason, "intact", rec.Damage.Intact)
		}
	}

	// Replay. rg is not yet published, so the lock is uncontended — held
	// anyway because applyBatchLocked requires it.
	rg.mu.Lock()
	for i, r := range rec.Records {
		if rg.epoch != r.PreEpoch {
			rg.mu.Unlock()
			gs.Close()
			return nil, fmt.Errorf("replaying record %d: journaled against epoch %d but replay reached %d — refusing divergent recovery", i, r.PreEpoch, rg.epoch)
		}
		e, err := engine.Lookup(r.Program)
		if err != nil {
			rg.mu.Unlock()
			gs.Close()
			return nil, fmt.Errorf("replaying record %d: %w", i, err)
		}
		pq, err := e.Parse(r.Query)
		if err != nil {
			rg.mu.Unlock()
			gs.Close()
			return nil, fmt.Errorf("replaying record %d (%s %q): %w", i, r.Program, r.Query, err)
		}
		res, st, applied, err := s.applyBatchLocked(ctx, rg, e, r.Program, pq, r.Updates)
		if err != nil && !applied {
			// Rejected by the session's deterministic validation — it was
			// rejected live too; the epoch stays, replay continues.
			continue
		}
		if err != nil {
			// The batch broke the session partway live and did so again (or
			// the replay context ended); the epoch bumped either way and the
			// next record starts a fresh session, exactly like the live path.
			continue
		}
		rs := RunStats{Supersteps: st.Supersteps, Messages: st.Messages, Bytes: st.Bytes, WallMs: st.WallTime.Seconds() * 1e3}
		s.primeSessionResult(rg, r.Program, pq.Canonical, res, rs)
	}
	rg.mu.Unlock()
	rg.replayed = len(rec.Records)
	rg.recoveryMs = time.Since(start).Seconds() * 1e3

	s.mu.Lock()
	if cur, ok := s.graphs[name]; ok {
		// AddGraph published this name while we were replaying: the explicit
		// graph wins; retire our store (its mapping may back rg.g until the
		// server closes).
		s.retired = append(s.retired, gs)
		s.mu.Unlock()
		return cur, nil
	}
	s.graphs[name] = rg
	s.mu.Unlock()
	s.publishDurability(rg)
	return rg, nil
}

// publishDurability pushes the graph's current durable-store gauges into the
// serving metrics (GET /stats and /metrics).
func (s *Server) publishDurability(rg *residentGraph) {
	st := rg.ds.Stats()
	s.serving.SetDurability(metrics.GraphDurability{
		Graph:          rg.name,
		SnapshotEpoch:  st.SnapshotEpoch,
		JournalRecords: st.JournalRecords,
		JournalBytes:   st.JournalBytes,
		Mapped:         st.Mapped,
		Compactions:    rg.compactions.Load(),
		RecoveryMs:     rg.recoveryMs,
		Replayed:       rg.replayed,
	})
}

// compactLoop periodically re-snapshots graphs whose journal crossed the
// configured thresholds. Runs until Close.
func (s *Server) compactLoop() {
	defer close(s.compactDone)
	ticker := time.NewTicker(s.cfg.CompactInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.compactStop:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		rgs := make([]*residentGraph, 0, len(s.graphs))
		for _, rg := range s.graphs {
			if rg.ds != nil {
				rgs = append(rgs, rg)
			}
		}
		s.mu.Unlock()
		for _, rg := range rgs {
			s.maybeCompact(rg)
		}
	}
}

// maybeCompact re-snapshots rg at its current epoch if the journal crossed a
// threshold, truncating the journal. It holds the graph's read lock for the
// duration: queries keep running; mutations (which need the write lock) wait
// — the snapshot must capture a quiescent graph.
func (s *Server) maybeCompact(rg *residentGraph) {
	st := rg.ds.Stats()
	overRecords := s.cfg.CompactRecords > 0 && st.JournalRecords >= s.cfg.CompactRecords
	overBytes := s.cfg.CompactBytes > 0 && st.JournalBytes >= s.cfg.CompactBytes
	if !overRecords && !overBytes {
		return
	}
	rg.mu.RLock()
	defer rg.mu.RUnlock()
	if rg.epoch <= st.SnapshotEpoch {
		// Journal grew without the epoch moving (rejected batches only):
		// nothing new to snapshot, and the journal replays to a no-op.
		return
	}
	start := time.Now()
	if err := rg.ds.Compact(rg.g, rg.epoch); err != nil {
		if lg := s.cfg.Logger; lg != nil {
			lg.Warn("compaction failed", "graph", rg.name, "err", err.Error())
		}
		return
	}
	rg.compactions.Add(1)
	s.publishDurability(rg)
	if lg := s.cfg.Logger; lg != nil {
		lg.Info("journal compacted", "graph", rg.name, "epoch", rg.epoch,
			"records", st.JournalRecords, "bytes", st.JournalBytes,
			"ms", time.Since(start).Seconds()*1e3)
	}
}

// Close stops the background compactor and releases every durable store —
// journals are closed and snapshot mappings unmapped, so graphs recovered
// from mapped snapshots must not be used afterwards. Only meaningful on a
// durable server; otherwise a no-op. Safe to call more than once.
func (s *Server) Close() error {
	var firstErr error
	s.closeOnce.Do(func() {
		if s.compactStop != nil {
			close(s.compactStop)
			<-s.compactDone
		}
		s.mu.Lock()
		stores := append([]*store.GraphStore(nil), s.retired...)
		s.retired = nil
		for _, rg := range s.graphs {
			if rg.ds != nil {
				stores = append(stores, rg.ds)
			}
		}
		s.mu.Unlock()
		for _, gs := range stores {
			if err := gs.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	})
	return firstErr
}
