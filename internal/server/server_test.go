package server

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/queries"
	"grape/internal/storage"
)

// testGraphs builds one graph per query-class family and the query each
// registered program answers on it.
func testGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	road := gen.RoadGrid(24, 24, 1)
	social := gen.PreferentialAttachment(1500, 4, 7)
	gen.AttachKeywords(social, []string{"db", "graph", "ml"}, 2, 0.05, 7)
	commerce := gen.SocialCommerce(gen.SocialCommerceConfig{People: 400, Products: 8, Follows: 4, AdoptP: 0.9, Seed: 3})
	ratings := gen.Ratings(gen.RatingsConfig{Users: 80, Items: 30, RatingsPerUser: 10, Factors: 4, Noise: 0.1, Seed: 5})
	return map[string]*graph.Graph{"road": road, "social": social, "commerce": commerce, "ratings": ratings}
}

// programCases maps every registered program to the (graph, query) it runs
// in these tests — one entry per query class, kept in sync with the
// registry by TestEveryProgramCovered.
var programCases = []struct {
	program, graph, query string
}{
	{"sssp", "road", "source=0"},
	{"cc", "social", ""},
	{"sim", "commerce", "pattern=follows-recommend"},
	{"subiso", "commerce", "pattern=follows-recommend max=50"},
	{"keyword", "social", "k=db,graph bound=4"},
	{"cf", "ratings", "epochs=5"},
	{"tricount", "social", ""},
}

func TestEveryProgramCovered(t *testing.T) {
	covered := map[string]bool{}
	for _, c := range programCases {
		covered[c.program] = true
	}
	for _, e := range engine.Library() {
		if e.Name == "server-spinner" {
			continue // cancellation-test fixture registered by cancel_test.go
		}
		if !covered[e.Name] {
			t.Errorf("registered program %q has no serving test case", e.Name)
		}
	}
}

func newTestServer(t testing.TB, cfg Config) (*Server, map[string]*graph.Graph) {
	t.Helper()
	gs := testGraphs(t)
	s := New(cfg)
	for name, g := range gs {
		if err := s.AddGraph(name, g); err != nil {
			t.Fatal(err)
		}
	}
	return s, gs
}

// TestServerMatchesEngineRun is the core acceptance: every registered query
// class answered through the server must be identical to a solo engine run
// on the same graph with the same layout parameters.
func TestServerMatchesEngineRun(t *testing.T) {
	s, gs := newTestServer(t, Config{Workers: 8, Strategy: "hash"})
	strat := partition.Hash{}
	for _, c := range programCases {
		t.Run(c.program, func(t *testing.T) {
			resp, err := s.Query(context.Background(), QueryRequest{Graph: c.graph, Program: c.program, Query: c.query})
			if err != nil {
				t.Fatal(err)
			}
			e, err := engine.Lookup(c.program)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := e.Run(context.Background(), gs[c.graph], engine.Options{Workers: 8, Strategy: strat}, c.query)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resp.Result, want) {
				t.Fatalf("server result differs from engine.Run for %s %q", c.program, c.query)
			}
			if resp.Cached {
				t.Fatal("first query reported cached")
			}
			if resp.Stats.Supersteps == 0 {
				t.Fatal("missing run stats")
			}
		})
	}
}

// TestServerConcurrentQueries answers every class with at least 8 queries in
// flight at once (the acceptance criterion's concurrency bar; CI runs this
// under -race) and checks each against its solo run.
func TestServerConcurrentQueries(t *testing.T) {
	s, gs := newTestServer(t, Config{Workers: 4, Strategy: "hash", MaxInFlight: 16, MaxQueue: 128})
	want := make(map[string]any)
	for _, c := range programCases {
		e, err := engine.Lookup(c.program)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := e.Run(context.Background(), gs[c.graph], engine.Options{Workers: 4, Strategy: partition.Hash{}}, c.query)
		if err != nil {
			t.Fatal(err)
		}
		want[c.program] = res
	}
	const perProgram = 3 // 7 programs x 3 > 8 concurrent, NoCache keeps them real runs
	var wg sync.WaitGroup
	errs := make(chan error, len(programCases)*perProgram)
	for _, c := range programCases {
		for i := 0; i < perProgram; i++ {
			wg.Add(1)
			go func(program, graphName, query string) {
				defer wg.Done()
				resp, err := s.Query(context.Background(), QueryRequest{Graph: graphName, Program: program, Query: query, NoCache: true})
				if err != nil {
					errs <- fmt.Errorf("%s: %w", program, err)
					return
				}
				if !reflect.DeepEqual(resp.Result, want[program]) {
					errs <- fmt.Errorf("%s: concurrent result differs from solo run", program)
				}
			}(c.program, c.graph, c.query)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.CacheMisses < uint64(len(programCases)*perProgram) {
		t.Fatalf("expected %d real runs, misses = %d", len(programCases)*perProgram, st.CacheMisses)
	}
}

func TestServerCache(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 4})
	req := QueryRequest{Graph: "road", Program: "sssp", Query: "source=0"}
	first, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("cold query reported cached")
	}
	second, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("warm query not served from cache")
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Fatal("cache returned a different result")
	}
	// equivalent spellings canonicalize to one entry
	alias, err := s.Query(context.Background(), QueryRequest{Graph: "road", Program: "keyword", Query: "bound=4.0 k=db"})
	if err == nil {
		_ = alias // road has no keywords; the run may legitimately error or return empty
	}
	canon, err := s.Query(context.Background(), QueryRequest{Graph: "road", Program: "sssp", Query: "  source=0 "})
	if err != nil {
		t.Fatal(err)
	}
	if !canon.Cached {
		t.Fatal("whitespace variant of the same query missed the cache")
	}
	// NoCache bypasses the read path but still reports the fresh answer
	nocache, err := s.Query(context.Background(), QueryRequest{Graph: "road", Program: "sssp", Query: "source=0", NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if nocache.Cached {
		t.Fatal("NoCache query served from cache")
	}
	st := s.Stats()
	if st.CacheHits < 2 {
		t.Fatalf("cache hits = %d, want >= 2", st.CacheHits)
	}
	if st.CacheHitRate <= 0 {
		t.Fatal("hit rate not reported")
	}
}

// TestMutateBumpsEpochAndInvalidates is the continuous-update acceptance: a
// mutation through the session path bumps the epoch, cached results for the
// old epoch stop being served, and post-mutation answers match a fresh solo
// run on the mutated graph.
func TestMutateBumpsEpochAndInvalidates(t *testing.T) {
	s, gs := newTestServer(t, Config{Workers: 4, Strategy: "hash"})
	req := QueryRequest{Graph: "road", Program: "sssp", Query: "source=0", Workers: 4, Strategy: "hash"}
	before, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if before.Epoch != 1 {
		t.Fatalf("initial epoch = %d, want 1", before.Epoch)
	}
	// a shortcut edge that lowers many distances
	far := before.Result.(map[graph.ID]float64)
	var target graph.ID
	var best float64
	for v, d := range far {
		if d > best {
			best, target = d, v
		}
	}
	mut, err := s.Mutate(context.Background(), "road", "", "", []EdgeJSON{{From: 0, To: int64(target), W: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if mut.Epoch != 2 {
		t.Fatalf("post-mutation epoch = %d, want 2", mut.Epoch)
	}
	after, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("post-mutation query served the stale cached result")
	}
	if after.Epoch != 2 {
		t.Fatalf("post-mutation answer epoch = %d, want 2", after.Epoch)
	}
	if got := after.Result.(map[graph.ID]float64)[target]; got != 0.01 {
		t.Fatalf("distance to %d after shortcut = %g, want 0.01", target, got)
	}
	want, _, err := engine.Run(context.Background(), gs["road"], queries.SSSP{}, queries.SSSPQuery{Source: 0},
		engine.Options{Workers: 4, Strategy: partition.Hash{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Result, want) {
		t.Fatal("post-mutation server result differs from a fresh engine run on the mutated graph")
	}
	// the mutation's incrementally refreshed CC answer was primed under the
	// new epoch: a cc query at server defaults is a cache hit...
	cc, err := s.Query(context.Background(), QueryRequest{Graph: "road", Program: "cc", Query: ""})
	if err != nil {
		t.Fatal(err)
	}
	if !cc.Cached {
		t.Fatal("cc answer was not primed by the mutation")
	}
	// ...and identical to a fresh run
	wantCC, _, err := engine.Run(context.Background(), gs["road"], queries.CC{}, queries.CCQuery{},
		engine.Options{Workers: 4, Strategy: partition.Hash{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cc.Result, wantCC) {
		t.Fatal("primed cc result differs from a fresh engine run")
	}
}

// TestMutateProgramRouting pins the generalized mutation path: mutations
// name the (program, query) whose session they flow through, deletions are
// accepted, the session's refreshed answer is primed under that program's
// cache key, and switching programs drops the retained session without
// losing correctness.
func TestMutateProgramRouting(t *testing.T) {
	s, gs := newTestServer(t, Config{Workers: 4, Strategy: "hash"})
	req := QueryRequest{Graph: "road", Program: "sssp", Query: "source=0"}
	fresh := func() map[graph.ID]float64 {
		t.Helper()
		want, _, err := engine.Run(context.Background(), gs["road"], queries.SSSP{}, queries.SSSPQuery{Source: 0},
			engine.Options{Workers: 4, Strategy: partition.Hash{}})
		if err != nil {
			t.Fatal(err)
		}
		return want
	}
	// insert through an sssp session: the primed answer is a cache hit for
	// the same canonical query and matches a fresh run
	mut, err := s.Mutate(context.Background(), "road", "sssp", "source=0", []EdgeJSON{{From: 0, To: 37, W: 0.01, Label: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if mut.Program != "sssp" || mut.Canonical != "source=0" {
		t.Fatalf("mutation reported (%s, %q), want (sssp, source=0)", mut.Program, mut.Canonical)
	}
	resp, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("sssp answer was not primed by the sssp-session mutation")
	}
	if !reflect.DeepEqual(resp.Result, fresh()) {
		t.Fatal("primed sssp result differs from a fresh run on the mutated graph")
	}
	// delete the shortcut again through the same retained session
	if _, err := s.Mutate(context.Background(), "road", "sssp", "source=0",
		[]EdgeJSON{{From: 0, To: 37, Label: "x", Del: true}}); err != nil {
		t.Fatal(err)
	}
	resp, err = s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("sssp answer was not primed by the deletion")
	}
	if !reflect.DeepEqual(resp.Result, fresh()) {
		t.Fatal("post-deletion sssp result differs from a fresh run")
	}
	// switching to the default cc session drops the sssp one and primes cc
	if _, err := s.Mutate(context.Background(), "road", "", "", []EdgeJSON{{From: 0, To: 38, W: 1, Label: "y"}}); err != nil {
		t.Fatal(err)
	}
	cc, err := s.Query(context.Background(), QueryRequest{Graph: "road", Program: "cc", Query: ""})
	if err != nil {
		t.Fatal(err)
	}
	if !cc.Cached {
		t.Fatal("cc answer was not primed after the program switch")
	}
	rg, err := s.resident(context.Background(), "road")
	if err != nil {
		t.Fatal(err)
	}
	rg.mu.Lock()
	prog := rg.sessProg
	rg.mu.Unlock()
	if prog != "cc" {
		t.Fatalf("retained session program = %q, want cc", prog)
	}
}

func TestServerErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  QueryRequest
		want error
	}{
		{"unknown graph", QueryRequest{Graph: "nope", Program: "sssp", Query: "source=0"}, ErrNotFound},
		{"unknown program", QueryRequest{Graph: "road", Program: "nope"}, ErrNotFound},
		{"bad query", QueryRequest{Graph: "road", Program: "sssp", Query: "source=abc"}, ErrBadQuery},
		{"bad strategy", QueryRequest{Graph: "road", Program: "sssp", Query: "source=0", Strategy: "nope"}, ErrBadQuery},
		{"workers over cap", QueryRequest{Graph: "road", Program: "sssp", Query: "source=0", Workers: 1 << 20}, ErrBadQuery},
		{"negative subiso max", QueryRequest{Graph: "road", Program: "subiso", Query: "pattern=triangle max=-1"}, ErrBadQuery},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := s.Query(context.Background(), c.req)
			if err == nil || !errorsIs(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
	if _, err := s.Mutate(context.Background(), "ratings", "", "", []EdgeJSON{{From: 0, To: 1, W: 1}}); err == nil {
		t.Fatal("mutating an undirected graph must fail (sessions are directed-only)")
	}
}

// errorsIs avoids importing errors just for the test.
func errorsIs(err, target error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == target {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// TestLayoutSharing checks the partition-once promise: two programs on the
// same (graph, strategy, workers, hops) share one layout slot.
func TestLayoutSharing(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 4})
	for _, q := range []QueryRequest{
		{Graph: "road", Program: "sssp", Query: "source=0"},
		{Graph: "road", Program: "cc"},
		{Graph: "road", Program: "tricount"}, // hops=1: its own slot
	} {
		if _, err := s.Query(context.Background(), q); err != nil {
			t.Fatalf("%s: %v", q.Program, err)
		}
	}
	rg, err := s.resident(context.Background(), "road")
	if err != nil {
		t.Fatal(err)
	}
	rg.lmu.Lock()
	defer rg.lmu.Unlock()
	if len(rg.layouts) != 2 {
		t.Fatalf("layout slots = %d, want 2 (hops 0 shared by sssp+cc, hops 1 for tricount)", len(rg.layouts))
	}
	for k, slot := range rg.layouts {
		wantRunners := 2
		if k.hops == 1 {
			wantRunners = 1
		}
		slot.rmu.Lock()
		if len(slot.runners) != wantRunners {
			t.Fatalf("slot %+v has %d runners, want %d", k, len(slot.runners), wantRunners)
		}
		slot.rmu.Unlock()
	}
}

// TestReplacedGraphCannotServeStaleCache pins the generation half of the
// cache key: answers computed against a graph instance that AddGraph has
// since replaced — even by a Mutate that resolved the old instance before
// the replacement — must never be served for the new instance.
func TestReplacedGraphCannotServeStaleCache(t *testing.T) {
	s := New(Config{Workers: 4, Strategy: "hash"})
	old := gen.RoadGrid(8, 8, 1)
	if err := s.AddGraph("g", old); err != nil {
		t.Fatal(err)
	}
	req := QueryRequest{Graph: "g", Program: "sssp", Query: "source=0"}
	first, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// mutate (primes cc under the old instance's key space) then replace
	if _, err := s.Mutate(context.Background(), "g", "", "", []EdgeJSON{{From: 0, To: 63, W: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddGraph("g", gen.RoadGrid(12, 12, 2)); err != nil {
		t.Fatal(err)
	}
	for _, r := range []QueryRequest{req, {Graph: "g", Program: "cc", Query: ""}} {
		resp, err := s.Query(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cached {
			t.Fatalf("%s: replacement graph served a cached answer from the old instance", r.Program)
		}
		if r.Program == "sssp" {
			if len(resp.Result.(map[graph.ID]float64)) == len(first.Result.(map[graph.ID]float64)) {
				t.Fatal("replacement graph returned the old graph's answer shape")
			}
		}
	}
}

// TestLazyStoreLoad pins Config.Store: a graph not resident loads from the
// store on first query, concurrent first queries deduplicate the load, and
// unknown names still 404.
func TestLazyStoreLoad(t *testing.T) {
	st := &storage.Store{Root: t.TempDir()}
	g := gen.RoadGrid(10, 10, 3)
	if err := st.SaveGraph("stored", g); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 4, Strategy: "hash", Store: st})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Query(context.Background(), QueryRequest{Graph: "stored", Program: "cc", Query: ""})
			if err != nil {
				errs <- err
				return
			}
			if got := len(resp.Result.(map[graph.ID]graph.ID)); got != g.NumVertices() {
				errs <- fmt.Errorf("cc over %d vertices, want %d", got, g.NumVertices())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if len(s.Graphs()) != 1 {
		t.Fatalf("graphs = %+v, want the one loaded instance", s.Graphs())
	}
	if _, err := s.Query(context.Background(), QueryRequest{Graph: "missing", Program: "cc"}); !errorsIs(err, ErrNotFound) {
		t.Fatalf("unknown stored graph: %v, want ErrNotFound", err)
	}
}
