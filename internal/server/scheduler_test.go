package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSchedulerAdmitsUpToMaxInFlight(t *testing.T) {
	s := newScheduler(2, 4)
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if q, f := s.gauges(); q != 0 || f != 2 {
		t.Fatalf("gauges = %d queued / %d in flight, want 0/2", q, f)
	}
}

func TestSchedulerRejectsBeyondQueue(t *testing.T) {
	s := newScheduler(1, 1)
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// fill the single queue seat with a waiter that never gets a slot
	waiting := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		waiting <- s.acquire(ctx)
	}()
	for {
		if q, _ := s.gauges(); q == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire = %v, want ErrOverloaded", err)
	}
	s.release() // hand the slot to the queued waiter
	if err := <-waiting; err != nil {
		t.Fatalf("queued waiter = %v, want granted", err)
	}
	s.release()
}

func TestSchedulerFIFO(t *testing.T) {
	s := newScheduler(1, 8)
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	const n = 5
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		for { // wait until the previous waiter is queued, to fix arrival order
			if q, _ := s.gauges(); q == i {
				break
			}
			time.Sleep(time.Millisecond)
		}
		go func() {
			if err := s.acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			order <- i
			s.release()
		}()
	}
	for {
		if q, _ := s.gauges(); q == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.release()
	for want := 0; want < n; want++ {
		if got := <-order; got != want {
			t.Fatalf("grant order: got waiter %d in position %d", got, want)
		}
	}
}

func TestSchedulerCanceledWaiterLeavesQueue(t *testing.T) {
	s := newScheduler(1, 2)
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.acquire(ctx) }()
	for {
		if q, _ := s.gauges(); q == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter = %v, want context.Canceled", err)
	}
	for { // the waiter must drop out of the queue
		if q, _ := s.gauges(); q == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// the slot is still held exactly once: releasing frees it for a new acquire
	s.release()
	if err := s.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release = %v", err)
	}
}
