package server_test

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"grape/internal/engine"
	"grape/internal/gen"
	"grape/internal/graph"
	"grape/internal/server"
)

// An endless registered program, so a served query can be cancelled
// mid-fixpoint: values grow by one per superstep forever (the query's limit
// is fixed by the parser at 2^40). srvSpins signals every activation.
type srvSpinQuery struct{ limit int64 }

type srvSpinner struct{ steps chan struct{} }

var srvSpins = make(chan struct{}, 65536)

func (srvSpinner) Name() string { return "server-spinner" }

func (srvSpinner) Spec() engine.VarSpec[int64] {
	return engine.VarSpec[int64]{
		Default: 0,
		Agg: func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		},
		Eq: func(a, b int64) bool { return a == b },
	}
}

func (s srvSpinner) signal() {
	select {
	case s.steps <- struct{}{}:
	default:
	}
}

func (s srvSpinner) PEval(q srvSpinQuery, ctx *engine.Context[int64]) error {
	s.signal()
	if ctx.Frag.IsInner(0) {
		for _, id := range ctx.Frag.Border() {
			ctx.Set(id, 1)
		}
	}
	return nil
}

func (s srvSpinner) IncEval(q srvSpinQuery, ctx *engine.Context[int64]) error {
	s.signal()
	var m int64
	for _, id := range ctx.Frag.Border() {
		if v := ctx.Get(id); v > m {
			m = v
		}
	}
	if m >= q.limit {
		return nil
	}
	for _, id := range ctx.Frag.Border() {
		ctx.Set(id, m+1)
	}
	return nil
}

func (s srvSpinner) Assemble(q srvSpinQuery, ctxs []*engine.Context[int64]) (int64, error) {
	var m int64
	for _, ctx := range ctxs {
		ctx.Vars(func(_ graph.ID, v int64) {
			if v > m {
				m = v
			}
		})
	}
	return m, nil
}

func (srvSpinner) WireCodec() engine.Codec[int64] { return srvSpinCodec{} }

type srvSpinCodec struct{}

func (srvSpinCodec) AppendVal(buf []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(buf, uint64(v))
}

func (srvSpinCodec) DecodeVal(data []byte) (int64, int, error) {
	if len(data) < 8 {
		return 0, 0, errors.New("short int64")
	}
	return int64(binary.BigEndian.Uint64(data)), 8, nil
}

func (srvSpinner) EncodeQuery(q srvSpinQuery) ([]byte, error) {
	return binary.BigEndian.AppendUint64(nil, uint64(q.limit)), nil
}

func (srvSpinner) DecodeQuery(data []byte) (srvSpinQuery, error) {
	if len(data) < 8 {
		return srvSpinQuery{}, errors.New("short query")
	}
	return srvSpinQuery{limit: int64(binary.BigEndian.Uint64(data))}, nil
}

func init() {
	engine.Register(engine.MakeEntry(engine.EntrySpec[srvSpinQuery, int64, int64]{
		Prog:        srvSpinner{steps: srvSpins},
		Description: "endless program for serving-path cancellation tests",
		QueryHelp:   "(none; the parser fixes limit=2^40)",
		Parse:       func(string) (srvSpinQuery, error) { return srvSpinQuery{limit: 1 << 40}, nil },
		Canonical:   func(srvSpinQuery) string { return "" },
	}))
}

// TestServedQueryCancellationFreesWorkers is the serving-path twin of the
// engine cancellation tests: the per-query context threads HTTP-request →
// scheduler admission → resident run, so cancelling it mid-fixpoint must
// abort the engine run (the PR 4 behavior was to 504 the client while the
// run burned cores to convergence). It then asserts the layout still serves
// a normal query afterwards and the cancelled query cached nothing.
func TestServedQueryCancellationFreesWorkers(t *testing.T) {
	s := server.New(server.Config{Workers: 4, MaxInFlight: 2, QueryTimeout: time.Minute})
	if err := s.AddGraph("road", gen.RoadGrid(12, 12, 1)); err != nil {
		t.Fatal(err)
	}
	for len(srvSpins) > 0 {
		<-srvSpins
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := s.Query(ctx, server.QueryRequest{Graph: "road", Program: "server-spinner", Query: ""})
		done <- err
	}()
	for i := 0; i < 16; i++ {
		select {
		case <-srvSpins:
		case <-time.After(10 * time.Second):
			t.Fatal("served spinner never started")
		}
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled served query did not return")
	}
	// The run aborted rather than being detached: give any straggler one
	// superstep's grace, then require silence.
	for len(srvSpins) > 0 {
		<-srvSpins
	}
	time.Sleep(100 * time.Millisecond)
	for len(srvSpins) > 0 {
		<-srvSpins
	}
	time.Sleep(100 * time.Millisecond)
	if n := len(srvSpins); n != 0 {
		t.Fatalf("%d worker activations after the cancelled query returned — the run was not aborted", n)
	}

	// The shared layout is unharmed and the cancelled run cached nothing.
	resp, err := s.Query(context.Background(), server.QueryRequest{Graph: "road", Program: "sssp", Query: "source=0"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("first sssp query cannot be a cache hit")
	}
	st := s.Stats()
	if st.CacheHits != 0 {
		t.Fatalf("cancelled query must not populate the cache (hits=%d)", st.CacheHits)
	}
}

// TestRejectedMutationKeepsState: a mutation batch rejected by the
// session's pre-mutation validation (unknown vertex, negative weight) maps
// to bad input and must not bump the epoch, drop layouts, or tear down the
// update session — nothing was mutated.
func TestRejectedMutationKeepsState(t *testing.T) {
	s := server.New(server.Config{Workers: 4})
	if err := s.AddGraph("road", gen.RoadGrid(12, 12, 1)); err != nil {
		t.Fatal(err)
	}
	// a first valid mutation establishes the session and epoch 2
	m1, err := s.Mutate(context.Background(), "road", "", "", []server.EdgeJSON{{From: 0, To: 100, W: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mutate(context.Background(), "road", "", "", []server.EdgeJSON{{From: 0, To: 1, W: 1}, {From: 0, To: 999999, W: 1}}); !errors.Is(err, server.ErrBadQuery) {
		t.Fatalf("unknown vertex must map to ErrBadQuery, got %v", err)
	}
	gs := s.Graphs()
	if len(gs) != 1 || gs[0].Epoch != m1.Epoch {
		t.Fatalf("rejected mutation must not bump the epoch: %v", gs)
	}
	// the retained session still applies valid updates incrementally
	m2, err := s.Mutate(context.Background(), "road", "", "", []server.EdgeJSON{{From: 1, To: 101, W: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Epoch != m1.Epoch+1 {
		t.Fatalf("valid mutation after a rejection: epoch %d, want %d", m2.Epoch, m1.Epoch+1)
	}
}
