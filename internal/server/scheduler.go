package server

import (
	"context"
	"errors"
	"sync"
)

// ErrOverloaded is returned when a query arrives while the admission queue
// is already full — the server sheds load instead of buffering unboundedly.
var ErrOverloaded = errors.New("server: overloaded: admission queue full")

// scheduler is the server's admission controller: at most maxInFlight
// queries run at once, at most maxQueue more wait in strict FIFO order, and
// anything beyond that is rejected immediately. A waiter that gives up
// (deadline, canceled request) leaves the queue without consuming a slot.
type scheduler struct {
	mu          sync.Mutex
	maxInFlight int
	maxQueue    int
	free        int // slots not running anyone
	waiters     []*waiter
}

// waiter is one queued query. granted is written under the scheduler mutex:
// release hands a slot directly to the head waiter, and a waiter that times
// out at that exact moment must pass the slot on rather than leak it.
type waiter struct {
	ch      chan struct{}
	granted bool
}

func newScheduler(maxInFlight, maxQueue int) *scheduler {
	return &scheduler{maxInFlight: maxInFlight, maxQueue: maxQueue, free: maxInFlight}
}

// acquire blocks until a run slot is free, the queue is full (ErrOverloaded)
// or ctx expires. On nil error the caller owns a slot and must release it.
func (s *scheduler) acquire(ctx context.Context) error {
	s.mu.Lock()
	if s.free > 0 {
		s.free--
		s.mu.Unlock()
		return nil
	}
	if len(s.waiters) >= s.maxQueue {
		s.mu.Unlock()
		return ErrOverloaded
	}
	w := &waiter{ch: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// release closed our channel while we were giving up: the slot
			// is ours, hand it to the next waiter
			s.mu.Unlock()
			s.release()
			return ctx.Err()
		}
		for i, x := range s.waiters {
			if x == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// release returns a slot: the head waiter gets it directly, else it goes
// back to the free pool.
func (s *scheduler) release() {
	s.mu.Lock()
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.granted = true
		close(w.ch)
		s.mu.Unlock()
		return
	}
	if s.free < s.maxInFlight {
		s.free++
	}
	s.mu.Unlock()
}

// gauges reports the current queue depth and in-flight count.
func (s *scheduler) gauges() (queued, inFlight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters), s.maxInFlight - s.free
}
