package server_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"grape/internal/gen"
	"grape/internal/seq"
	"grape/internal/server"
	"grape/internal/server/client"
)

func TestHTTPRoundTrip(t *testing.T) {
	road := gen.RoadGrid(16, 16, 1)
	s := server.New(server.Config{Workers: 4, Strategy: "hash"})
	if err := s.AddGraph("road", road); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := context.Background()

	res, err := c.Query(ctx, server.QueryRequest{Graph: "road", Program: "sssp", Query: "source=0"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if want := seq.Dijkstra(road, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("HTTP sssp answer differs from sequential Dijkstra (%d vs %d vertices)", len(got), len(want))
	}
	if res.Canonical != "source=0" || res.Epoch != 1 || res.Cached {
		t.Fatalf("unexpected response envelope: %+v", res)
	}

	// warm: second identical query is a cache hit over the wire too
	res2, err := c.Query(ctx, server.QueryRequest{Graph: "road", Program: "sssp", Query: "source=0"})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("second HTTP query not served from cache")
	}

	graphs, err := c.Graphs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 1 || graphs[0].Name != "road" || graphs[0].Vertices != road.NumVertices() {
		t.Fatalf("graphs = %+v", graphs)
	}

	mut, err := c.Mutate(ctx, "road", []server.EdgeJSON{{From: 0, To: 255, W: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if mut.Epoch != 2 {
		t.Fatalf("epoch after mutation = %d, want 2", mut.Epoch)
	}
	res3, err := c.Query(ctx, server.QueryRequest{Graph: "road", Program: "sssp", Query: "source=0"})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cached || res3.Epoch != 2 {
		t.Fatalf("post-mutation query: cached=%v epoch=%d, want fresh at epoch 2", res3.Cached, res3.Epoch)
	}
	d3, err := res3.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if d3[255] != 0.25 {
		t.Fatalf("distance to 255 after shortcut = %g, want 0.25", d3[255])
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries < 3 || st.CacheHits < 1 {
		t.Fatalf("stats = %+v", st)
	}

	// error mapping
	if _, err := c.Query(ctx, server.QueryRequest{Graph: "road", Program: "nope"}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown program error = %v, want HTTP 404", err)
	}
	if _, err := c.Query(ctx, server.QueryRequest{Graph: "road", Program: "sssp", Query: "source=x"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad query error = %v, want HTTP 400", err)
	}
}
