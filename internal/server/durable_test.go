package server

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"grape/internal/store"
)

// newDurableServer builds a server persisting to dir with the test graphs
// resident (AddGraph snapshots each at epoch 1).
func newDurableServer(t testing.TB, dir string, cfg Config) *Server {
	t.Helper()
	ds, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Durable = ds
	s, _ := newTestServer(t, cfg)
	return s
}

// reopenDurable starts a fresh server over dir and recovers every graph, as
// a restart after a crash would.
func reopenDurable(t testing.TB, dir string, cfg Config) (*Server, []RecoveryInfo) {
	t.Helper()
	ds, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Durable = ds
	s := New(cfg)
	infos, err := s.RecoverAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return s, infos
}

func graphEpochs(s *Server) map[string]uint64 {
	out := map[string]uint64{}
	for _, gi := range s.Graphs() {
		out[gi.Name] = gi.Epoch
	}
	return out
}

// TestDurableRestartIdenticalAnswers is the in-process crash-recovery
// acceptance: mutate with mixed insert/delete batches, record every query
// class's answer and epoch, drop the server (no clean shutdown of the
// sessions — only what the write-ahead journal guarantees), restart over the
// same directory and demand identical answers at the identical epoch.
func TestDurableRestartIdenticalAnswers(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 4, Strategy: "hash"}
	s := newDurableServer(t, dir, cfg)
	ctx := context.Background()

	// Mixed streams on the two mutable (directed) graphs; road's flows
	// through an sssp session, social's through the default cc session.
	mutate := func(graphName, program, query string, edges []EdgeJSON) uint64 {
		t.Helper()
		m, err := s.Mutate(ctx, graphName, program, query, edges)
		if err != nil {
			t.Fatalf("mutating %s: %v", graphName, err)
		}
		return m.Epoch
	}
	mutate("road", "sssp", "source=0", []EdgeJSON{{From: 0, To: 100, W: 0.5}, {From: 1, To: 101, W: 0.25}})
	mutate("road", "sssp", "source=0", []EdgeJSON{{From: 0, To: 100, W: 0.5, Del: true}, {From: 2, To: 102, W: 0.75}})
	mutate("social", "", "", []EdgeJSON{{From: 10, To: 900, W: 1}})
	if e := mutate("social", "", "", []EdgeJSON{{From: 10, To: 900, W: 1, Del: true}, {From: 11, To: 901, W: 1}}); e != 3 {
		t.Fatalf("social epoch after 2 mutations = %d, want 3", e)
	}

	wantEpochs := graphEpochs(s)
	if wantEpochs["road"] != 3 || wantEpochs["social"] != 3 {
		t.Fatalf("pre-crash epochs = %v", wantEpochs)
	}
	wantResults := map[string]any{}
	for _, c := range programCases {
		resp, err := s.Query(ctx, QueryRequest{Graph: c.graph, Program: c.program, Query: c.query, NoCache: true})
		if err != nil {
			t.Fatalf("%s pre-crash: %v", c.program, err)
		}
		if resp.Epoch != wantEpochs[c.graph] {
			t.Fatalf("%s answered at epoch %d, graph is at %d", c.program, resp.Epoch, wantEpochs[c.graph])
		}
		wantResults[c.program] = resp.Result
	}
	// Simulated SIGKILL: the server is dropped without flushing anything —
	// only the fsync-ed snapshot + journal survive. (Close would be a clean
	// shutdown; not calling it is the point. The stores are leaked for the
	// test's duration, which is fine.)
	s = nil

	s2, infos := reopenDurable(t, dir, cfg)
	defer s2.Close()
	if len(infos) != 4 {
		t.Fatalf("recovered %d graphs, want 4", len(infos))
	}
	for _, info := range infos {
		if info.Damage != "" {
			t.Fatalf("%s recovered with damage %q from a clean journal", info.Graph, info.Damage)
		}
		if info.Epoch != wantEpochs[info.Graph] {
			t.Fatalf("%s recovered at epoch %d, want %d", info.Graph, info.Epoch, wantEpochs[info.Graph])
		}
	}
	if got := graphEpochs(s2); !reflect.DeepEqual(got, wantEpochs) {
		t.Fatalf("post-recovery epochs %v, want %v", got, wantEpochs)
	}
	for _, c := range programCases {
		resp, err := s2.Query(ctx, QueryRequest{Graph: c.graph, Program: c.program, Query: c.query, NoCache: true})
		if err != nil {
			t.Fatalf("%s post-recovery: %v", c.program, err)
		}
		if resp.Epoch != wantEpochs[c.graph] {
			t.Fatalf("%s post-recovery epoch %d, want %d", c.program, resp.Epoch, wantEpochs[c.graph])
		}
		if !reflect.DeepEqual(resp.Result, wantResults[c.program]) {
			t.Fatalf("%s answer changed across restart", c.program)
		}
	}
	// The journal keeps working after recovery: one more mutation lands on
	// the next epoch.
	m, err := s2.Mutate(ctx, "road", "sssp", "source=0", []EdgeJSON{{From: 3, To: 103, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != wantEpochs["road"]+1 {
		t.Fatalf("post-recovery mutation landed on epoch %d, want %d", m.Epoch, wantEpochs["road"]+1)
	}
}

// TestDurableRejectedBatchReplay checks the epoch invariant across rejected
// batches: a journaled batch the session's validation rejects bumps nothing
// live, re-rejects identically on replay, and the recovered epoch still
// matches.
func TestDurableRejectedBatchReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 4, Strategy: "hash"}
	s := newDurableServer(t, dir, cfg)
	ctx := context.Background()

	if _, err := s.Mutate(ctx, "road", "", "", []EdgeJSON{{From: 0, To: 200, W: 1}}); err != nil {
		t.Fatal(err)
	}
	// A batch naming a vertex that doesn't exist is rejected by validation
	// after it was journaled: nothing applied, epoch stays.
	if _, err := s.Mutate(ctx, "road", "", "", []EdgeJSON{{From: 0, To: 1, W: 1}, {From: 0, To: 999999, W: 1}}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("invalid batch: %v, want ErrBadQuery", err)
	}
	if _, err := s.Mutate(ctx, "road", "", "", []EdgeJSON{{From: 1, To: 201, W: 1}}); err != nil {
		t.Fatal(err)
	}
	want := graphEpochs(s)["road"]
	if want != 3 {
		t.Fatalf("epoch after 2 applied + 1 rejected = %d, want 3", want)
	}

	s2, infos := reopenDurable(t, dir, cfg)
	defer s2.Close()
	for _, info := range infos {
		if info.Graph == "road" {
			if info.Replayed != 3 {
				t.Fatalf("replayed %d records, want 3 (rejected batch included)", info.Replayed)
			}
			if info.Epoch != want {
				t.Fatalf("recovered epoch %d, want %d", info.Epoch, want)
			}
		}
	}
}

// TestDurableTamperedJournal flips a byte in a journal record and checks the
// restart refuses the broken suffix: the graph comes back at the epoch of
// the intact prefix, with the damage surfaced.
func TestDurableTamperedJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 4, Strategy: "hash"}
	s := newDurableServer(t, dir, cfg)
	ctx := context.Background()
	for i := int64(0); i < 3; i++ {
		if _, err := s.Mutate(ctx, "road", "", "", []EdgeJSON{{From: i, To: 300 + i, W: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() // release the journal before editing it

	wals, err := filepath.Glob(filepath.Join(dir, "road", "wal-*.grj"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("journal files: %v %v", wals, err)
	}
	data, err := os.ReadFile(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the second record's region: the first record must
	// survive, everything after must be refused. Records here are equal-size
	// (one identical-shape update each), so split the record region in 3.
	recBytes := (len(data) - 56) / 3
	data[56+recBytes+recBytes/2] ^= 0x01
	if err := os.WriteFile(wals[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, infos := reopenDurable(t, dir, cfg)
	defer s2.Close()
	for _, info := range infos {
		if info.Graph != "road" {
			continue
		}
		if info.Damage == "" {
			t.Fatal("tampered journal recovered without damage report")
		}
		if info.Replayed != 1 || info.Epoch != 2 {
			t.Fatalf("recovered %d records to epoch %d, want 1 record to epoch 2", info.Replayed, info.Epoch)
		}
	}
	// The tampered suffix is gone for good: a mutation after recovery
	// extends the intact chain and the next restart is clean.
	if _, err := s2.Mutate(ctx, "road", "", "", []EdgeJSON{{From: 5, To: 305, W: 1}}); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCompaction drives the background compactor: once the journal
// crosses the record threshold the graph is re-snapshotted at its current
// epoch, the journal truncates, and a restart replays (almost) nothing.
func TestDurableCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 4, Strategy: "hash", CompactRecords: 2, CompactBytes: -1, CompactInterval: 20 * time.Millisecond}
	s := newDurableServer(t, dir, cfg)
	defer s.Close()
	ctx := context.Background()
	for i := int64(0); i < 3; i++ {
		if _, err := s.Mutate(ctx, "road", "", "", []EdgeJSON{{From: i, To: 400 + i, W: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var d *struct {
			snap    uint64
			records int
		}
		for _, g := range s.Stats().Durable {
			if g.Graph == "road" {
				d = &struct {
					snap    uint64
					records int
				}{g.SnapshotEpoch, g.JournalRecords}
			}
		}
		if d != nil && d.snap == 4 && d.records == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction did not run: %+v", d)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The old pair is gone; exactly one (snapshot, journal) pair remains.
	snaps, _ := filepath.Glob(filepath.Join(dir, "road", "snap-*.grs"))
	wals, _ := filepath.Glob(filepath.Join(dir, "road", "wal-*.grj"))
	if len(snaps) != 1 || len(wals) != 1 {
		t.Fatalf("post-compaction files: snaps=%v wals=%v", snaps, wals)
	}
	if !strings.HasSuffix(snaps[0], "snap-0000000000000004.grs") {
		t.Fatalf("snapshot not at epoch 4: %s", snaps[0])
	}

	s2, infos := reopenDurable(t, dir, cfg)
	defer s2.Close()
	for _, info := range infos {
		if info.Graph == "road" {
			if info.SnapshotEpoch != 4 || info.Replayed != 0 || info.Epoch != 4 {
				t.Fatalf("post-compaction recovery: %+v", info)
			}
		}
	}
}

// TestDurableLayoutReuse checks the partition-cut cache: a query after
// restart at the same epoch rebuilds its layout from the persisted cut
// (visible as a layout file on disk keyed to the epoch), and the answer
// matches the pre-restart one.
func TestDurableLayoutReuse(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 4, Strategy: "fennel"}
	s := newDurableServer(t, dir, cfg)
	ctx := context.Background()
	resp, err := s.Query(ctx, QueryRequest{Graph: "road", Program: "sssp", Query: "source=0"})
	if err != nil {
		t.Fatal(err)
	}
	layouts, err := filepath.Glob(filepath.Join(dir, "road", "layout-*.grl"))
	if err != nil || len(layouts) != 1 {
		t.Fatalf("layout cache files after first query: %v %v", layouts, err)
	}
	if !strings.Contains(layouts[0], "-fennel-w4-h0.grl") {
		t.Fatalf("layout file not keyed by (strategy, workers, hops): %s", layouts[0])
	}

	s2, infos := reopenDurable(t, dir, cfg)
	defer s2.Close()
	if len(infos) != 4 {
		t.Fatalf("recovered %d graphs", len(infos))
	}
	resp2, err := s2.Query(ctx, QueryRequest{Graph: "road", Program: "sssp", Query: "source=0", NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Result, resp2.Result) {
		t.Fatal("answer from the reloaded cut differs")
	}
}
