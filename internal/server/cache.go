package server

import (
	"container/list"
	"encoding/json"
	"sync"
)

// cacheKey identifies one answer: the graph *instance* (gen — AddGraph
// replacing a name mints a new generation, so a detached old graph can
// never collide with its successor) *at one epoch*, the program, the
// canonical query, and the layout parameters that shaped the run. Mutating
// a graph bumps its epoch, so every key minted before the mutation simply
// stops being generated — stale entries are never served, they just age out
// of the LRU.
type cacheKey struct {
	graph     string
	gen       uint64
	epoch     uint64
	program   string
	canonical string
	strategy  string
	workers   int
}

// cacheVal is a served answer. result is the program's Go result value,
// shared by reference with every later hit: results are treated as immutable
// once cached. The HTTP layer additionally memoizes the result's JSON
// encoding here — marshaling a large distance map dominates the hit path
// otherwise (profiled: sorted-map encoding is milliseconds, the memcpy of
// the cached bytes is not).
type cacheVal struct {
	result any
	stats  RunStats

	encOnce sync.Once
	enc     []byte
	encErr  error
}

// encodedResult returns the JSON encoding of result, computed once.
func (v *cacheVal) encodedResult() ([]byte, error) {
	v.encOnce.Do(func() { v.enc, v.encErr = json.Marshal(v.result) })
	return v.enc, v.encErr
}

// resultCache is a mutex-guarded LRU over complete query answers.
type resultCache struct {
	mu      sync.Mutex
	maxSize int
	order   *list.List // front = most recent; values are *cacheEnt
	byKey   map[cacheKey]*list.Element
}

type cacheEnt struct {
	key cacheKey
	val *cacheVal
}

func newResultCache(maxSize int) *resultCache {
	if maxSize <= 0 {
		return nil // disabled: every method tolerates the nil receiver
	}
	return &resultCache{maxSize: maxSize, order: list.New(), byKey: make(map[cacheKey]*list.Element)}
}

func (c *resultCache) get(k cacheKey) (*cacheVal, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEnt).val, true
}

func (c *resultCache) put(k cacheKey, v *cacheVal) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*cacheEnt).val = v
		c.order.MoveToFront(el)
		return
	}
	c.byKey[k] = c.order.PushFront(&cacheEnt{key: k, val: v})
	for c.order.Len() > c.maxSize {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEnt).key)
	}
}

// len reports the live entry count (testing hook).
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
