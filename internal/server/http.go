package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"grape/internal/metrics"
	"grape/internal/trace"
)

// Handler returns the server's HTTP/JSON API:
//
//	POST /query   QueryRequest  -> QueryResponse
//	POST /update  MutateRequest -> MutateResponse
//	GET  /graphs  -> []GraphInfo
//	GET  /stats   -> metrics.ServingSnapshot
//	GET  /healthz -> Health (liveness + resident graph count; readiness probe)
//	GET  /metrics -> Prometheus text exposition (see metrics.WritePrometheus)
//	GET  /debug/runs      -> flight-recorder index: retained run summaries + events
//	GET  /debug/runs/{id} -> one run's trace as Chrome trace-event JSON
//	                         (load it in Perfetto / chrome://tracing)
//
// Errors come back as {"error": "..."} with 400 (bad query), 404 (unknown
// graph/program), 429 (admission queue full), 504 (deadline exceeded or
// client gone — the engine run is cancelled with the request unless
// Config.DetachRuns) or 500 (run failure).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if err := decodeBody(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		resp, err := s.Query(r.Context(), req)
		if err != nil {
			writeErr(w, statusOf(err), err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		var req MutateRequest
		if err := decodeBody(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		resp, err := s.Mutate(r.Context(), req.Graph, req.Program, req.Query, req.Edges)
		if err != nil {
			writeErr(w, statusOf(err), err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Graphs())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Health())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", metrics.PromContentType)
		s.WriteMetrics(w)
	})
	mux.HandleFunc("GET /debug/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, FlightIndex{Runs: s.flight.Runs(), Events: s.flight.Events()})
	})
	mux.HandleFunc("GET /debug/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		run, ok := s.flight.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("%w: no retained run %q (the flight ring evicts old traces)", ErrNotFound, r.PathValue("id")))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, run)
	})
	return mux
}

func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// headers are gone; nothing useful left to do
		return
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
