// Package server is the resident query-serving runtime of the paper's
// Fig. 2 system: graphs are loaded and partitioned once, stay resident as
// frozen fragment layouts, and answer a stream of concurrent client queries
// — the missing piece between a one-shot CLI run and a service under
// traffic. See ARCHITECTURE.md's "Serving queries" section for the design:
// admission scheduler, per-graph epochs, and the (epoch, program, canonical
// query) result cache.
package server

import (
	"encoding/json"

	"grape/internal/trace"
)

// QueryRequest is one query against a named resident graph. Workers and
// Strategy override the server defaults for the layout the query runs on
// (layouts are cached per combination); NoCache skips the result-cache read
// so the engine runs even if the answer is known.
type QueryRequest struct {
	Graph    string `json:"graph"`
	Program  string `json:"program"`
	Query    string `json:"query"`
	Workers  int    `json:"workers,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	NoCache  bool   `json:"nocache,omitempty"`
}

// RunStats summarizes the engine run that produced an answer. Cache hits
// return the stats of the run that originally computed the cached result,
// not zeroes — Supersteps/Bytes describe the answer's provenance, not work
// done by this request.
type RunStats struct {
	Supersteps int     `json:"supersteps"`
	Messages   int64   `json:"messages"`
	Bytes      int64   `json:"bytes"`
	WallMs     float64 `json:"wall_ms"`
}

// QueryResponse is a served answer. Result is the program's result value
// (JSON-marshaled on the wire; program-specific shape — e.g. sssp returns a
// vertex→distance object). Cached reports whether it came from the result
// cache; Epoch is the graph epoch it is valid for.
type QueryResponse struct {
	Graph     string   `json:"graph"`
	Epoch     uint64   `json:"epoch"`
	Program   string   `json:"program"`
	Canonical string   `json:"canonical"`
	Cached    bool     `json:"cached"`
	Result    any      `json:"result"`
	Stats     RunStats `json:"stats"`
	// TraceID names the flight-recorder trace of the engine run that
	// computed this answer — fetch it via GET /debug/runs/{id}. Empty for
	// cache hits (no run happened) and when retention already evicted it.
	TraceID string `json:"trace_id,omitempty"`

	// resultJSON, when set, is Result's memoized encoding (cache hits reuse
	// it instead of re-marshaling a possibly large result per request).
	resultJSON []byte
}

// MarshalJSON writes the wire shape, splicing in the memoized result
// encoding when the cache already holds one.
func (r QueryResponse) MarshalJSON() ([]byte, error) {
	raw := json.RawMessage(r.resultJSON)
	if raw == nil {
		var err error
		if raw, err = json.Marshal(r.Result); err != nil {
			return nil, err
		}
	}
	// alias with identical tags; Result pre-encoded
	type wire struct {
		Graph     string          `json:"graph"`
		Epoch     uint64          `json:"epoch"`
		Program   string          `json:"program"`
		Canonical string          `json:"canonical"`
		Cached    bool            `json:"cached"`
		Result    json.RawMessage `json:"result"`
		Stats     RunStats        `json:"stats"`
		TraceID   string          `json:"trace_id,omitempty"`
	}
	return json.Marshal(wire{r.Graph, r.Epoch, r.Program, r.Canonical, r.Cached, raw, r.Stats, r.TraceID})
}

// FlightIndex is the GET /debug/runs answer: the flight recorder's retained
// run summaries (newest last) plus its recent discrete events (cache hits,
// session updates). Fetch one run's full trace at /debug/runs/{id}.
type FlightIndex struct {
	Runs   []trace.RunSummary `json:"runs"`
	Events []trace.Event      `json:"events,omitempty"`
}

// Health is the GET /healthz liveness answer: the process serves HTTP and
// reports how many graphs are resident. The serve-smoke CI job (and any
// orchestrator) polls it as the readiness gate before sending queries.
type Health struct {
	OK     bool `json:"ok"`
	Graphs int  `json:"graphs"`
}

// GraphInfo describes one resident graph.
type GraphInfo struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Directed bool   `json:"directed"`
	Epoch    uint64 `json:"epoch"`
}

// EdgeJSON is one edge update of a mutation request: an insertion by
// default, a deletion when Del is set (From/To/Label select the edge to
// remove; W is ignored for deletions).
type EdgeJSON struct {
	From  int64   `json:"from"`
	To    int64   `json:"to"`
	W     float64 `json:"w"`
	Label string  `json:"label,omitempty"`
	Del   bool    `json:"del,omitempty"`
}

// MutateRequest applies edge updates to a named graph. Program and Query
// pick the incremental session the mutation flows through (and whose fresh
// answer is primed into the result cache); they default to the
// parameterless "cc" query.
type MutateRequest struct {
	Graph   string     `json:"graph"`
	Program string     `json:"program,omitempty"`
	Query   string     `json:"query,omitempty"`
	Edges   []EdgeJSON `json:"edges"`
}

// MutateResponse reports the graph's epoch after the mutation; every cached
// result keyed to earlier epochs is now unreachable except the session's
// fresh (Program, Canonical) answer, primed under the new epoch.
type MutateResponse struct {
	Graph     string   `json:"graph"`
	Epoch     uint64   `json:"epoch"`
	Program   string   `json:"program"`
	Canonical string   `json:"canonical"`
	Stats     RunStats `json:"stats"`
}
