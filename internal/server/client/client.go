// Package client is the Go client of the grape-serve HTTP/JSON API: typed
// wrappers over POST /query, POST /update, GET /graphs and GET /stats. The
// request/response shapes are shared with the server package, so client and
// server cannot drift.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/seq"
	"grape/internal/server"
)

// Client talks to one grape-serve instance.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g. "http://127.0.0.1:8080").
// hc nil means http.DefaultClient; per-request deadlines come from the
// context (the server enforces its own query timeout regardless).
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// QueryResult is a served answer with the result left raw: its JSON shape is
// program-specific. Decode it yourself or through the typed helpers below.
type QueryResult struct {
	Graph     string          `json:"graph"`
	Epoch     uint64          `json:"epoch"`
	Program   string          `json:"program"`
	Canonical string          `json:"canonical"`
	Cached    bool            `json:"cached"`
	Result    json.RawMessage `json:"result"`
	Stats     server.RunStats `json:"stats"`
	// TraceID names the run's flight-recorder trace (GET /debug/runs/{id});
	// empty for cache hits.
	TraceID string `json:"trace_id"`
}

// Query runs one query.
func (c *Client) Query(ctx context.Context, req server.QueryRequest) (*QueryResult, error) {
	var out QueryResult
	if err := c.post(ctx, "/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Mutate applies edge updates to a named graph and returns its new epoch.
// The mutation flows through the server's default session (the
// parameterless cc query); use MutateProgram to maintain a different class
// incrementally.
func (c *Client) Mutate(ctx context.Context, graphName string, edges []server.EdgeJSON) (*server.MutateResponse, error) {
	return c.MutateProgram(ctx, graphName, "", "", edges)
}

// MutateProgram applies edge updates through an incremental session of the
// given program and query; the session's refreshed answer is primed into
// the server's result cache under the new epoch. Empty program means "cc".
func (c *Client) MutateProgram(ctx context.Context, graphName, program, query string, edges []server.EdgeJSON) (*server.MutateResponse, error) {
	var out server.MutateResponse
	req := server.MutateRequest{Graph: graphName, Program: program, Query: query, Edges: edges}
	if err := c.post(ctx, "/update", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Graphs lists the resident graphs.
func (c *Client) Graphs(ctx context.Context) ([]server.GraphInfo, error) {
	var out []server.GraphInfo
	if err := c.get(ctx, "/graphs", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats snapshots the server's serving metrics.
func (c *Client) Stats(ctx context.Context) (*metrics.ServingSnapshot, error) {
	var out metrics.ServingSnapshot
	if err := c.get(ctx, "/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz probes the server's liveness endpoint; the returned Health also
// carries the resident graph count. Use it as a readiness wait after
// starting grape-serve.
func (c *Client) Healthz(ctx context.Context) (*server.Health, error) {
	var out server.Health
	if err := c.get(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Distances decodes an sssp result (vertex -> distance).
func (r *QueryResult) Distances() (map[graph.ID]float64, error) {
	out := map[graph.ID]float64{}
	return out, json.Unmarshal(r.Result, &out)
}

// Components decodes a cc result (vertex -> component label).
func (r *QueryResult) Components() (map[graph.ID]graph.ID, error) {
	out := map[graph.ID]graph.ID{}
	return out, json.Unmarshal(r.Result, &out)
}

// Matches decodes a subiso result (pattern vertex -> data vertex, one map
// per embedding).
func (r *QueryResult) Matches() ([]seq.Match, error) {
	var out []seq.Match
	return out, json.Unmarshal(r.Result, &out)
}

// KeywordMatches decodes a keyword result.
func (r *QueryResult) KeywordMatches() ([]seq.KeywordMatch, error) {
	var out []seq.KeywordMatch
	return out, json.Unmarshal(r.Result, &out)
}

func (c *Client) post(ctx context.Context, path string, body, into any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, into)
}

func (c *Client) get(ctx context.Context, path string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, into)
}

func (c *Client) do(req *http.Request, into any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("client: %s %s: %s (HTTP %d)", req.Method, req.URL.Path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("client: %s %s: HTTP %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	return json.Unmarshal(data, into)
}
