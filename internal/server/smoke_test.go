package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"grape"
	"grape/internal/engine"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/queries"
	"grape/internal/seq"
	"grape/internal/server"
	"grape/internal/server/client"
)

// TestServeSmoke is the serve-smoke CI job: build and start the real
// grape-serve binary, issue one query per registered program through the
// HTTP client, and compare every answer against the sequential ground truth
// in internal/seq (CF, whose distributed parameter averaging has no
// sequential twin, is checked against a solo engine run instead). It skips
// under -short because it builds a binary and spawns a process.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns a process")
	}
	bin := filepath.Join(t.TempDir(), "grape-serve")
	build := exec.Command("go", "build", "-o", bin, "grape/cmd/grape-serve")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building grape-serve: %v\n%s", err, out)
	}

	const seed = 1
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "8", "-strategy", "fennel",
		"-preload", "road,social,commerce,ratings",
		"-rows", "24", "-cols", "24", "-n", "1500", "-deg", "4",
		"-people", "400", "-products", "8", "-users", "80", "-items", "30",
		"-seed", fmt.Sprint(seed), "-keywords", "db,graph,ml")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	// the binary prints "grape-serve: listening on http://ADDR" once ready
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if i := strings.Index(sc.Text(), "listening on "); i >= 0 {
				addrCh <- strings.TrimSpace(sc.Text()[i+len("listening on "):])
				return
			}
		}
	}()
	var base string
	select {
	case base = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("grape-serve did not report a listen address")
	}
	c := client.New(base, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Readiness wait: poll GET /healthz until the process answers and all 4
	// preloaded graphs are resident — the same probe an orchestrator would
	// use, so the liveness endpoint itself is under test here.
	for deadline := time.Now().Add(30 * time.Second); ; {
		h, err := c.Healthz(ctx)
		if err == nil && h.OK && h.Graphs == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("grape-serve not healthy in time: healthz=%+v err=%v", h, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// the same datasets the server preloaded (identical facade calls, same
	// seed), for ground truth
	road := grape.RoadGrid(24, 24, seed)
	social := grape.SocialNetwork(1500, 4, seed)
	grape.AttachKeywords(social, []string{"db", "graph", "ml"}, 2, 0.05, seed)
	commerce := grape.SocialCommerce(400, 8, seed)
	ratings := grape.Ratings(80, 30, 12, seed)
	pattern, err := queries.PatternByName("follows-recommend")
	if err != nil {
		t.Fatal(err)
	}

	query := func(t *testing.T, graphName, program, q string) *client.QueryResult {
		t.Helper()
		res, err := c.Query(ctx, server.QueryRequest{Graph: graphName, Program: program, Query: q})
		if err != nil {
			t.Fatalf("%s %q: %v", program, q, err)
		}
		return res
	}

	t.Run("sssp", func(t *testing.T) {
		got, err := query(t, "road", "sssp", "source=0").Distances()
		if err != nil {
			t.Fatal(err)
		}
		if want := seq.Dijkstra(road, 0); !reflect.DeepEqual(got, want) {
			t.Fatalf("served sssp differs from sequential Dijkstra (%d vs %d vertices)", len(got), len(want))
		}
	})
	t.Run("cc", func(t *testing.T) {
		got, err := query(t, "social", "cc", "").Components()
		if err != nil {
			t.Fatal(err)
		}
		if want := seq.Components(social); !reflect.DeepEqual(got, want) {
			t.Fatal("served cc differs from sequential components")
		}
	})
	t.Run("sim", func(t *testing.T) {
		var got map[graph.ID][]graph.ID
		if err := json.Unmarshal(query(t, "commerce", "sim", "pattern=follows-recommend").Result, &got); err != nil {
			t.Fatal(err)
		}
		want := seq.Sim(pattern, commerce)
		if len(got) != len(want) {
			t.Fatalf("sim: %d pattern vertices, want %d", len(got), len(want))
		}
		for u := range want {
			if !reflect.DeepEqual(got[u], want[u]) {
				t.Fatalf("sim: pattern vertex %d: %d data vertices, want %d", u, len(got[u]), len(want[u]))
			}
		}
	})
	t.Run("subiso", func(t *testing.T) {
		got, err := query(t, "commerce", "subiso", "pattern=follows-recommend").Matches()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := seq.SubIso(pattern, commerce, seq.SubIsoOptions{})
		if !sameMatchSet(got, want) {
			t.Fatalf("subiso: %d matches, want %d", len(got), len(want))
		}
	})
	t.Run("keyword", func(t *testing.T) {
		got, err := query(t, "social", "keyword", "k=db,graph bound=4").KeywordMatches()
		if err != nil {
			t.Fatal(err)
		}
		want := seq.KeywordSearch(social, []string{"db", "graph"}, 4)
		if len(got) != len(want) {
			t.Fatalf("keyword: %d roots, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Root != want[i].Root || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("keyword rank %d: got (%d, %g) want (%d, %g)", i, got[i].Root, got[i].Score, want[i].Root, want[i].Score)
			}
		}
	})
	t.Run("cf", func(t *testing.T) {
		var got queries.CFResult
		if err := json.Unmarshal(query(t, "ratings", "cf", "epochs=5").Result, &got); err != nil {
			t.Fatal(err)
		}
		e, err := engine.Lookup("cf")
		if err != nil {
			t.Fatal(err)
		}
		strat, err := grape.StrategyByName("fennel")
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := e.Run(context.Background(), ratings, engine.Options{Workers: 8, Strategy: strat}, "epochs=5")
		if err != nil {
			t.Fatal(err)
		}
		want := res.(queries.CFResult)
		if math.Abs(got.RMSE-want.RMSE) > 1e-9 || len(got.Factors) != len(want.Factors) {
			t.Fatalf("cf: RMSE %g over %d factors, want %g over %d", got.RMSE, len(got.Factors), want.RMSE, len(want.Factors))
		}
	})
	t.Run("tricount", func(t *testing.T) {
		var got struct {
			Total int64
		}
		if err := json.Unmarshal(query(t, "social", "tricount", "").Result, &got); err != nil {
			t.Fatal(err)
		}
		if want := queries.SeqTriangles(social); got.Total != want {
			t.Fatalf("tricount: %d triangles, want %d", got.Total, want)
		}
	})

	// Observability over the real binary: scrape GET /metrics and validate
	// the Prometheus exposition (ParseExposition is the in-repo promtool
	// stand-in), then fetch one run's flight trace.
	t.Run("metrics", func(t *testing.T) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("Content-Type"); got != metrics.PromContentType {
			t.Fatalf("/metrics Content-Type = %q, want %q", got, metrics.PromContentType)
		}
		samples, err := metrics.ParseExposition(body)
		if err != nil {
			t.Fatalf("/metrics does not parse: %v\n%s", err, body)
		}
		// The seven t.Run queries above all ran the engine at least once.
		if samples["grape_queries_total"] < 7 {
			t.Fatalf("grape_queries_total = %g after 7 served classes", samples["grape_queries_total"])
		}
		for _, class := range []string{"sssp", "cc", "sim", "subiso", "keyword", "cf", "tricount"} {
			if samples[`grape_runs_total{class="`+class+`"}`] < 1 {
				t.Fatalf("no grape_runs_total sample for class %q\n%s", class, body)
			}
		}
	})
	t.Run("trace", func(t *testing.T) {
		res := query(t, "road", "sssp", "source=1")
		if res.TraceID == "" {
			t.Fatal("served run reports no trace_id")
		}
		resp, err := http.Get(base + "/debug/runs/" + res.TraceID)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /debug/runs/%s = %d\n%s", res.TraceID, resp.StatusCode, body)
		}
		var tf struct {
			TraceEvents []struct {
				Name string `json:"name"`
				Ph   string `json:"ph"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(body, &tf); err != nil {
			t.Fatalf("trace is not Chrome JSON: %v", err)
		}
		steps := 0
		for _, ev := range tf.TraceEvents {
			if ev.Ph == "X" && strings.HasPrefix(ev.Name, "superstep ") {
				steps++
			}
		}
		if steps != res.Stats.Supersteps {
			t.Fatalf("trace has %d superstep spans, stats say %d", steps, res.Stats.Supersteps)
		}
	})
}

// sameMatchSet compares embeddings as sets (the engine's global rank order
// is a tie-broken sort; the sequential enumeration order differs).
func sameMatchSet(a, b []seq.Match) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(m seq.Match) string {
		ks := make([]graph.ID, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		var sb strings.Builder
		for _, k := range ks {
			fmt.Fprintf(&sb, "%d>%d;", k, m[k])
		}
		return sb.String()
	}
	seen := map[string]int{}
	for _, m := range a {
		seen[key(m)]++
	}
	for _, m := range b {
		seen[key(m)]--
	}
	for _, n := range seen {
		if n != 0 {
			return false
		}
	}
	return true
}
