package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"grape/internal/gen"
	"grape/internal/metrics"
	"grape/internal/server"
)

// The observability surface: /stats JSON shape, /metrics Prometheus
// exposition, the /debug/runs flight-recorder endpoints, and the structured
// request log. These pin the contract a dashboard or scraper depends on.

func observeServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Strategy == "" {
		cfg.Strategy = "hash"
	}
	s := server.New(cfg)
	if err := s.AddGraph("road", gen.RoadGrid(12, 12, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestStatsEndpointShape pins GET /stats: Content-Type application/json and
// the exact top-level field set. Adding a field here is fine — extend the
// list — but renaming or dropping one breaks deployed dashboards.
func TestStatsEndpointShape(t *testing.T) {
	s, ts := observeServer(t, server.Config{})
	if _, err := s.Query(context.Background(), server.QueryRequest{Graph: "road", Program: "sssp", Query: "source=0"}); err != nil {
		t.Fatal(err)
	}

	resp, body := getBody(t, ts.URL+"/stats")
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("/stats Content-Type = %q, want application/json", got)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("/stats is not JSON: %v\n%s", err, body)
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	// The omitempty fields (histogram, runs_by_class, worker_imbalance) are
	// present because the query above ran the engine.
	want := []string{
		"cache_hit_rate", "cache_hits", "cache_misses", "errors", "histogram",
		"in_flight", "latency_max_ms", "latency_mean_ms", "latency_p50_ms",
		"latency_p90_ms", "latency_p99_ms", "queries", "queue_depth",
		"recoveries", "rejected", "runs_by_class", "timeouts",
		"worker_imbalance",
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("/stats field set changed:\n got %v\nwant %v", got, want)
	}
}

// TestMetricsEndpoint scrapes GET /metrics and validates the exposition with
// the same parser CI uses in place of promtool.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := observeServer(t, server.Config{})
	ctx := context.Background()
	req := server.QueryRequest{Graph: "road", Program: "sssp", Query: "source=0"}
	if _, err := s.Query(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(ctx, req); err != nil { // cache hit
		t.Fatal(err)
	}

	resp, body := getBody(t, ts.URL+"/metrics")
	if got := resp.Header.Get("Content-Type"); got != metrics.PromContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", got, metrics.PromContentType)
	}
	samples, err := metrics.ParseExposition(body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	if samples["grape_queries_total"] != 2 || samples["grape_cache_hits_total"] != 1 {
		t.Fatalf("counters after hit+miss: %v", samples)
	}
	if samples[`grape_runs_total{class="sssp"}`] != 1 {
		t.Fatalf("runs_total{class=sssp} = %g, want 1", samples[`grape_runs_total{class="sssp"}`])
	}
	if samples[`grape_request_duration_seconds_bucket{le="+Inf"}`] != 2 {
		t.Fatalf("histogram +Inf = %g, want 2", samples[`grape_request_duration_seconds_bucket{le="+Inf"}`])
	}
}

// TestDebugRuns exercises the flight recorder end to end over HTTP: a served
// query reports its trace_id, the index lists it, and fetching it yields
// Chrome trace-event JSON whose superstep span count matches the run's
// Stats.Supersteps.
func TestDebugRuns(t *testing.T) {
	s, ts := observeServer(t, server.Config{})
	ctx := context.Background()

	res, err := s.Query(ctx, server.QueryRequest{Graph: "road", Program: "cc", Query: ""})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("engine-run response carries no trace_id")
	}

	// Cache hits carry no trace_id: no run happened.
	res2, err := s.Query(ctx, server.QueryRequest{Graph: "road", Program: "cc", Query: ""})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached || res2.TraceID != "" {
		t.Fatalf("cache hit: cached=%v trace_id=%q, want cached with empty trace_id", res2.Cached, res2.TraceID)
	}

	// Index lists the run and records the cache hit as an event.
	_, body := getBody(t, ts.URL+"/debug/runs")
	var idx server.FlightIndex
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatalf("/debug/runs is not JSON: %v\n%s", err, body)
	}
	if len(idx.Runs) != 1 || idx.Runs[0].ID != res.TraceID {
		t.Fatalf("flight index runs = %+v, want one run %s", idx.Runs, res.TraceID)
	}
	if idx.Runs[0].Supersteps != res.Stats.Supersteps {
		t.Fatalf("summary supersteps = %d, stats say %d", idx.Runs[0].Supersteps, res.Stats.Supersteps)
	}
	var sawHit bool
	for _, ev := range idx.Events {
		if ev.Kind == "cache-hit" {
			sawHit = true
		}
	}
	if !sawHit {
		t.Fatalf("no cache-hit event in flight index: %+v", idx.Events)
	}

	// The retained trace is Chrome trace-event JSON with one superstep span
	// per superstep the stats counted.
	resp, body := getBody(t, ts.URL+"/debug/runs/"+res.TraceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/runs/%s = %d\n%s", res.TraceID, resp.StatusCode, body)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tf); err != nil {
		t.Fatalf("trace is not Chrome JSON: %v", err)
	}
	steps := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "superstep ") {
			steps++
		}
	}
	if steps != res.Stats.Supersteps {
		t.Fatalf("trace has %d superstep spans, stats say %d", steps, res.Stats.Supersteps)
	}

	// Unknown IDs 404.
	resp404, _ := getBody(t, ts.URL+"/debug/runs/run-999")
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run id status = %d, want 404", resp404.StatusCode)
	}
}

// TestServerLogging wires a slog JSON handler through Config.Logger and
// checks served queries and mutations emit structured records carrying the
// run ID.
func TestServerLogging(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s, _ := observeServer(t, server.Config{Logger: lg})
	ctx := context.Background()

	res, err := s.Query(ctx, server.QueryRequest{Graph: "road", Program: "sssp", Query: "source=0"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mutate(ctx, "road", "", "", []server.EdgeJSON{{From: 0, To: 7, W: 1}}); err != nil {
		t.Fatal(err)
	}

	var sawServed, sawRun, sawMutation bool
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
		}
		switch rec["msg"] {
		case "query served":
			sawServed = true
			if rec["run"] != res.TraceID {
				t.Fatalf("query-served log run=%v, response trace_id=%s", rec["run"], res.TraceID)
			}
		case "run complete":
			sawRun = true
			if rec["run"] != res.TraceID {
				t.Fatalf("run-complete log run=%v, response trace_id=%s", rec["run"], res.TraceID)
			}
		case "mutation applied":
			sawMutation = true
		}
	}
	if !sawServed || !sawRun || !sawMutation {
		t.Fatalf("log stream missing records: served=%v run=%v mutation=%v\n%s", sawServed, sawRun, sawMutation, buf.String())
	}
}
